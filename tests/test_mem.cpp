// Refcounted pooled buffer tests (mem::Bytes, BufferPool, SurfacePool),
// ending with the PR's acceptance gate: a warmed-up threaded 2x2 wall run
// performs zero hot-path pool misses (= hot-path mallocs) per picture.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstring>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "enc/encoder.h"
#include "mem/pool.h"
#include "obs/metrics.h"
#include "video/generator.h"

namespace pdw::mem {
namespace {

// --- Bytes handle semantics ------------------------------------------------

TEST(Bytes, RefcountLifecycle) {
  Bytes a = Bytes::filled(100, 0x42);
  EXPECT_TRUE(a.owning());
  EXPECT_TRUE(a.unique());
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a[57], 0x42);

  Bytes b = a;  // copy = ref bump, same storage
  EXPECT_FALSE(a.unique());
  EXPECT_EQ(a.data(), b.data());

  Bytes c = std::move(b);  // move steals the ref
  EXPECT_EQ(c.data(), a.data());
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): reset to empty

  c.reset();
  EXPECT_TRUE(a.unique());  // last remaining handle
  EXPECT_EQ(a[0], 0x42);    // storage stayed alive throughout
}

TEST(Bytes, ViewsShareTheBlockAndPinIt) {
  Bytes whole = Bytes::copy_of({{1, 2, 3, 4, 5, 6, 7, 8}});
  Bytes mid = whole.view(2, 4);
  EXPECT_EQ(mid.size(), 4u);
  EXPECT_EQ(mid[0], 3);
  EXPECT_EQ(mid.data(), whole.data() + 2);
  whole.reset();
  // The view keeps the underlying block alive.
  EXPECT_EQ(mid[3], 6);
}

TEST(Bytes, MakeUniqueCopiesOnlyWhenShared) {
  Bytes a = Bytes::filled(64, 1);
  const uint8_t* p = a.data();
  a.make_unique();  // sole owner of the full block: no-op
  EXPECT_EQ(a.data(), p);

  Bytes b = a;
  b.make_unique();  // shared: must detach
  EXPECT_NE(b.data(), a.data());
  b.mutable_data()[0] = 9;
  EXPECT_EQ(a[0], 1);  // the original is untouched
}

TEST(Bytes, BorrowDoesNotOwn) {
  const std::vector<uint8_t> backing(32, 7);
  Bytes b = Bytes::borrow(backing);
  EXPECT_FALSE(b.owning());
  EXPECT_EQ(b.data(), backing.data());
  EXPECT_EQ(b, Bytes::filled(32, 7));  // content equality, not identity
}

// --- BufferPool: size-class freelists --------------------------------------

TEST(BufferPool, RecyclesBySizeClass) {
  BufferPool pool;
  const uint8_t* first;
  {
    Bytes a = pool.alloc(1000);  // class for 1000 -> 1024
    first = a.data();
  }
  Bytes b = pool.alloc(900);  // same class: must reuse the freed block
  EXPECT_EQ(b.data(), first);
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.recycles, 1u);
}

TEST(BufferPool, ClassForRoundsToPowersOfTwo) {
  EXPECT_EQ(BufferPool::class_for(1), 0);
  EXPECT_EQ(BufferPool::class_for(64), 0);
  EXPECT_EQ(BufferPool::class_for(65), 1);
  EXPECT_EQ(BufferPool::class_for(1024), 4);
  EXPECT_EQ(BufferPool::class_for(BufferPool::kMaxClassBytes), 16);
  EXPECT_EQ(BufferPool::class_for(BufferPool::kMaxClassBytes + 1), -1);
}

TEST(BufferPool, OversizedRequestsFallBackToHeap) {
  BufferPool pool;
  Bytes big = pool.alloc(BufferPool::kMaxClassBytes + 1);
  EXPECT_EQ(big.size(), BufferPool::kMaxClassBytes + 1);
  big.mutable_data()[BufferPool::kMaxClassBytes] = 0xEE;  // usable end to end
  big.reset();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.recycles, 0u);  // heap blocks are freed, not recycled
}

TEST(BufferPool, BudgetExhaustionDegradesToHeap) {
  // Budget of one 64-byte block: the second concurrent allocation must fall
  // back to the heap but still work.
  BufferPool pool(/*max_pool_bytes=*/64);
  Bytes a = pool.alloc(64);
  Bytes b = pool.alloc(64);
  std::memset(b.mutable_data(), 0x5A, b.size());
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_LE(pool.stats().pooled_bytes, 64u);
  a.reset();
  b.reset();  // heap fallback block: freed silently
  Bytes c = pool.alloc(64);  // the pooled block is back on the freelist
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPool, PressureSignalDistinguishesBudgetExhaustion) {
  // `fullness` alone is not overload: a pool can be 100% minted and healthy.
  // Only budget_fallbacks growing means demand exceeds the budget.
  BufferPool pool(/*max_pool_bytes=*/256);
  EXPECT_DOUBLE_EQ(pool.pressure().fullness, 0.0);
  EXPECT_EQ(pool.pressure().budget_fallbacks, 0u);

  Bytes a = pool.alloc(128);
  Bytes b = pool.alloc(128);  // budget fully minted, nothing degraded yet
  EXPECT_DOUBLE_EQ(pool.pressure().fullness, 1.0);
  EXPECT_EQ(pool.pressure().budget_fallbacks, 0u);

  Bytes c = pool.alloc(128);  // third concurrent block: heap fallback
  EXPECT_EQ(pool.pressure().budget_fallbacks, 1u);
  EXPECT_EQ(c.size(), 128u);  // degraded, not failed

  a.reset();
  b.reset();
  c.reset();
  Bytes d = pool.alloc(128);  // recycle, not a fallback
  EXPECT_EQ(pool.pressure().budget_fallbacks, 1u);
  EXPECT_EQ(pool.stats().budget_fallbacks, 1u);  // stats carry the counter too
}

TEST(SurfacePool, BudgetEdgeUnderConcurrentStreams) {
  // The production surface pool runs a 512 MiB budget; this is the same
  // scenario scaled for CI: N concurrent streams each holding picture
  // surfaces against a budget sized for N-1 of them. At the budget edge
  // allocation must degrade to heap fallbacks (never fail, never corrupt),
  // the pressure signal must report the squeeze, and every byte must come
  // back when the streams detach.
  constexpr int kStreams = 4;
  constexpr size_t kSurface = 64 * 1024;         // one "plane" per picture
  constexpr int kSurfacesPerStream = 4;          // reference window
  SurfacePool pool(kSurface * kSurfacesPerStream * (kStreams - 1));

  std::atomic<bool> failed{false};
  std::barrier sync(kStreams);
  std::vector<std::thread> streams;
  for (int s = 0; s < kStreams; ++s) {
    streams.emplace_back([&, s] {
      std::vector<Bytes> window;
      for (int i = 0; i < kSurfacesPerStream; ++i) {
        Bytes plane = pool.alloc(kSurface);
        if (plane.size() != kSurface) failed.store(true);
        plane.mutable_data()[0] = uint8_t(s);
        plane.mutable_data()[kSurface - 1] = uint8_t(i);
        window.push_back(std::move(plane));
      }
      // All streams hold their full window at once: guaranteed one window
      // over budget, whatever the thread schedule.
      sync.arrive_and_wait();
      window.clear();
      // Post-squeeze churn: the minted blocks recycle for everyone.
      for (int pic = 0; pic < 20; ++pic) {
        Bytes plane = pool.alloc(kSurface);
        if (plane.size() != kSurface) failed.store(true);
        plane.mutable_data()[0] = uint8_t(pic);
      }
    });
  }
  for (std::thread& t : streams) t.join();

  EXPECT_FALSE(failed.load());
  const PoolPressure pressure = pool.pressure();
  EXPECT_DOUBLE_EQ(pressure.fullness, 1.0);   // budget fully minted...
  EXPECT_GT(pressure.budget_fallbacks, 0u);   // ...and demand exceeded it
  const PoolStats st = pool.stats();
  EXPECT_EQ(st.bytes_in_flight, 0);           // everything drained
  EXPECT_EQ(st.budget_fallbacks, pressure.budget_fallbacks);
  EXPECT_LE(st.pooled_bytes, kSurface * kSurfacesPerStream * (kStreams - 1));
}

TEST(BufferPool, CrossThreadFreeThenAlloc) {
  // Blocks allocated here, released on other threads, must land back on a
  // freelist this thread (or a sibling) can steal from — and the whole dance
  // must be race-free (TSan covers the interleavings).
  BufferPool pool;
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool] {
      for (int i = 0; i < kRounds; ++i) {
        Bytes b = pool.alloc(512);
        b.mutable_data()[0] = uint8_t(i);
        Bytes v = b.view(0, 256);
        b.reset();
        EXPECT_EQ(v[0], uint8_t(i));  // the view still pins the block
      }
    });
  }
  for (auto& w : workers) w.join();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.bytes_in_flight, 0);
  EXPECT_EQ(s.hits + s.misses, uint64_t(kThreads) * kRounds);
  // Reuse must dominate: at worst each thread minted a handful of blocks.
  EXPECT_LE(s.misses, uint64_t(kThreads) * BufferPool::kShards);
}

TEST(BufferPool, PoolOutlivedByBlocksIsSafe) {
  Bytes survivor;
  {
    BufferPool pool;
    survivor = pool.alloc(128);
    std::memset(survivor.mutable_data(), 3, survivor.size());
  }
  // The pool handle is gone; the block degrades to a heap free on release.
  EXPECT_EQ(survivor[127], 3);
  survivor.reset();
}

// --- SurfacePool: geometry-keyed reuse -------------------------------------

TEST(SurfacePool, ReusesExactGeometryOnly) {
  SurfacePool pool;
  const uint8_t* luma;
  {
    Bytes a = pool.alloc(1920 * 1080);
    luma = a.data();
  }
  Bytes b = pool.alloc(1920 * 1080);  // same geometry: recycled block
  EXPECT_EQ(b.data(), luma);
  Bytes c = pool.alloc(960 * 540);  // different geometry: fresh block
  EXPECT_NE(c.data(), luma);
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
}

// --- Runtime pooling switch -------------------------------------------------

TEST(Pooling, DisabledMeansEveryAllocIsAMiss) {
  set_pooling_enabled(false);
  BufferPool pool;
  { Bytes a = pool.alloc(256); }
  { Bytes b = pool.alloc(256); }  // would be a hit with pooling on
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
  set_pooling_enabled(true);
  { Bytes c = pool.alloc(256); }
  { Bytes d = pool.alloc(256); }
  EXPECT_EQ(pool.stats().hits, 1u);
}

// --- Acceptance gate: zero hot-path mallocs per picture at steady state ----

TEST(SteadyState, ZeroPoolMissesPerPictureOnWarm2x2Wall) {
  // Encode a short stream once, then run the full threaded 2x2 pipeline
  // twice. The first run warms the process-wide pools; the second must be
  // served entirely from freelists: miss-delta == 0 across all its pictures.
  // (Misses correspond 1:1 to hot-path mallocs; STL node allocations in
  // cold control structures are out of scope by design — see mem/pool.h.)
  constexpr int kW = 192, kH = 128, kFrames = 8;
  enc::EncoderConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.gop_size = 4;
  cfg.b_frames = 1;
  cfg.target_bpp = 0.4;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, kW, kH, 7);
  enc::Mpeg2Encoder encoder(cfg);
  const std::vector<uint8_t> es =
      encoder.encode(kFrames, [&](int i, mpeg2::Frame* f) { gen->render(i, f); });

  const wall::TileGeometry geo(kW, kH, 2, 2, /*overlap=*/16);
  const auto run_once = [&] {
    core::ClusterPipeline pipeline(geo, /*k=*/1, es);
    const core::ClusterStats st = pipeline.run(nullptr);
    EXPECT_EQ(st.pictures, kFrames);
  };

  run_once();  // warm-up: pools mint their working set here
  const uint64_t wire_misses0 = BufferPool::wire().stats().misses;
  const uint64_t surf_misses0 = SurfacePool::global().stats().misses;
  run_once();  // steady state
  EXPECT_EQ(BufferPool::wire().stats().misses - wire_misses0, 0u)
      << "wire-pool mallocs on the hot path after warm-up";
  EXPECT_EQ(SurfacePool::global().stats().misses - surf_misses0, 0u)
      << "surface-pool mallocs on the hot path after warm-up";

  // The same numbers must be visible through the obs registry (that is what
  // scripts/run_benches.sh and wall_top read).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  EXPECT_EQ(reg.counter(obs::family::kPoolMisses).value(),
            BufferPool::wire().stats().misses);
  EXPECT_EQ(reg.counter(obs::family::kSurfacePoolMisses).value(),
            SurfacePool::global().stats().misses);
  EXPECT_GT(reg.counter(obs::family::kPoolHits).value(), 0u);
}

}  // namespace
}  // namespace pdw::mem
