// Failure-injection tests: corrupt elementary streams must never corrupt
// memory; kStrict surfaces a CheckError, kConceal drops the damaged slices
// and keeps playing.
#include <gtest/gtest.h>

#include "bitstream/start_code.h"
#include "common/stats.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "video/generator.h"

namespace pdw::mpeg2 {
namespace {

std::vector<uint8_t> make_stream(int frames = 9) {
  enc::EncoderConfig cfg;
  cfg.width = 192;
  cfg.height = 160;
  cfg.gop_size = 6;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.5;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, 192, 160, 77);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, Frame* f) { gen->render(i, f); });
}

// Find the byte offset of the n-th slice start code.
size_t nth_slice_offset(const std::vector<uint8_t>& es, int n) {
  int seen = 0;
  for (const StartCodeHit& hit : find_all_start_codes(es)) {
    if (!start_code::is_slice(hit.code)) continue;
    if (seen++ == n) return hit.offset;
  }
  ADD_FAILURE() << "stream has fewer than " << n + 1 << " slices";
  return 0;
}

int count_decoded(const std::vector<uint8_t>& es, Mpeg2Decoder& dec) {
  int n = 0;
  dec.decode(es, [&](const Frame&, const DecodedPictureInfo&) { ++n; });
  return n;
}

TEST(ErrorResilience, CleanStreamHasNoConcealment) {
  const auto es = make_stream();
  Mpeg2Decoder dec(ErrorPolicy::kConceal);
  EXPECT_EQ(count_decoded(es, dec), 9);
  EXPECT_EQ(dec.concealed_pictures(), 0);
  EXPECT_EQ(dec.dropped_slices(), 0);
}

TEST(ErrorResilience, StrictModeThrowsOnSliceDamage) {
  auto es = make_stream();
  // Stomp the payload of slice 3 with an invalid pattern (0xFFFF... makes
  // the macroblock-type VLC fail quickly in I, or DCT codes in P/B).
  const size_t off = nth_slice_offset(es, 3);
  for (size_t i = off + 6; i < off + 14 && i < es.size(); ++i) es[i] = 0xFF;
  Mpeg2Decoder dec;  // strict
  EXPECT_THROW(count_decoded(es, dec), CheckError);
}

TEST(ErrorResilience, ConcealDropsDamagedSliceAndContinues) {
  auto es = make_stream();
  const size_t off = nth_slice_offset(es, 3);
  for (size_t i = off + 6; i < off + 14 && i < es.size(); ++i) es[i] = 0xFF;
  Mpeg2Decoder dec(ErrorPolicy::kConceal);
  EXPECT_EQ(count_decoded(es, dec), 9) << "all pictures still display";
  EXPECT_GE(dec.dropped_slices(), 1);
  EXPECT_GE(dec.concealed_pictures(), 1);
}

TEST(ErrorResilience, RandomBitFlipsNeverCrashConcealingDecoder) {
  const auto clean = make_stream();
  SplitMix64 rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    auto es = clean;
    // Flip a handful of random bits anywhere in the stream.
    for (int i = 0; i < 5; ++i) {
      const size_t pos = size_t(rng.next() % es.size());
      es[pos] ^= uint8_t(1u << rng.next_below(8));
    }
    Mpeg2Decoder dec(ErrorPolicy::kConceal);
    int n = 0;
    // Corruption may hit the sequence header itself, in which case even a
    // concealing decoder can legitimately produce nothing — but it must
    // never crash or corrupt memory.
    try {
      n = count_decoded(es, dec);
    } catch (const CheckError&) {
      // Damage before the first sequence header is unrecoverable by design.
    }
    EXPECT_LE(n, 9);
  }
}

TEST(ErrorResilience, TruncatedStreamConcealsTail) {
  const auto clean = make_stream();
  for (double frac : {0.85, 0.5, 0.2}) {
    std::vector<uint8_t> es(clean.begin(),
                            clean.begin() + ptrdiff_t(clean.size() * frac));
    Mpeg2Decoder dec(ErrorPolicy::kConceal);
    int n = 0;
    try {
      n = count_decoded(es, dec);
    } catch (const CheckError&) {
      FAIL() << "concealing decoder must survive truncation at " << frac;
    }
    EXPECT_LT(n, 10);
  }
}

TEST(ErrorResilience, GarbageInputProducesNothingButNoCrash) {
  SplitMix64 rng(7);
  std::vector<uint8_t> garbage(5000);
  for (auto& b : garbage) b = uint8_t(rng.next());
  Mpeg2Decoder dec(ErrorPolicy::kConceal);
  int n = 0;
  try {
    n = count_decoded(garbage, dec);
  } catch (const CheckError&) {
  }
  EXPECT_EQ(n, 0);
}

TEST(ErrorResilience, ConcealedPictureStillBitExactElsewhere) {
  // Damage one slice of one B picture; every *other* displayed frame must
  // stay bit-exact with the clean decode (errors must not leak).
  const auto clean = make_stream();
  std::vector<Frame> reference;
  {
    Mpeg2Decoder dec;
    dec.decode(clean, [&](const Frame& f, const DecodedPictureInfo&) {
      reference.push_back(f);
    });
  }

  // Find a B picture's slice: B pictures are safe to damage without
  // polluting the reference chain. In *coded* order the GOP is
  // I P B B P B B ..., so coded index 2 is the first B picture.
  const auto spans = scan_pictures(clean);
  auto es = clean;
  const PictureSpan& target = spans[2];
  // Corrupt a slice inside that picture.
  size_t slice_off = 0;
  for (const StartCodeHit& hit : find_all_start_codes(clean)) {
    if (hit.offset < target.begin || hit.offset >= target.end) continue;
    if (start_code::is_slice(hit.code) && hit.code >= 0x04) {
      slice_off = hit.offset;
      break;
    }
  }
  ASSERT_GT(slice_off, 0u);
  for (size_t i = slice_off + 6; i < slice_off + 12; ++i) es[i] = 0xFF;

  Mpeg2Decoder dec(ErrorPolicy::kConceal);
  int index = 0;
  int mismatched_frames = 0;
  dec.decode(es, [&](const Frame& f, const DecodedPictureInfo&) {
    if (!(f == reference[size_t(index)])) ++mismatched_frames;
    ++index;
  });
  EXPECT_EQ(index, int(reference.size()));
  EXPECT_LE(mismatched_frames, 1) << "only the damaged B frame may differ";
  EXPECT_GE(dec.dropped_slices(), 1);
}

}  // namespace
}  // namespace pdw::mpeg2

// ---------------------------------------------------------------------------
// Transport-level corruption: sub-picture (SPH) and MEI payloads damaged in
// flight must be caught by the reliable transport's CRC — retransmitted when
// possible, skipped (with concealment until the next closed-GOP I picture)
// when persistent — and NEVER silently decoded as valid data.

#include <map>
#include <memory>

#include "core/pipeline.h"
#include "net/fault.h"
#include "wall/assembler.h"

namespace pdw {
namespace {

using core::TileDisplayInfo;
using mpeg2::Frame;

struct WallRun {
  std::vector<Frame> frames;
  std::vector<bool> degraded;
  core::ClusterStats stats;
};

WallRun wall_decode(const std::vector<uint8_t>& es,
                    const wall::TileGeometry& geo, int k, core::FtOptions ft) {
  core::ClusterPipeline pipeline(geo, k, es, ft);
  struct Slot {
    std::unique_ptr<wall::WallAssembler> assembler;
    bool degraded = false;
  };
  std::map<int, Slot> slots;
  WallRun run;
  run.stats = pipeline.run([&](int tile, const mpeg2::TileFrame& tf,
                               const TileDisplayInfo& info) {
    Slot& s = slots[info.display_index];
    if (!s.assembler) s.assembler = std::make_unique<wall::WallAssembler>(geo);
    s.assembler->add_tile(tile, tf, /*exact=*/!info.degraded);
    s.degraded = s.degraded || info.degraded;
  });
  run.frames.reserve(slots.size());
  const Frame* prev = nullptr;
  for (auto& [index, s] : slots) {
    if (!s.assembler->coverage_complete()) {
      s.assembler->fill_uncovered(prev);
      s.degraded = true;
    }
    run.frames.push_back(s.assembler->frame());
    run.degraded.push_back(s.degraded);
    prev = &run.frames.back();
  }
  return run;
}

// gop_size 4: closed-GOP resync points at coded pictures 0, 4, 8.
std::vector<uint8_t> make_gop4_stream(int w, int h, int frames) {
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 4;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.5;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, w, h, 77);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, Frame* f) { gen->render(i, f); });
}

std::vector<Frame> serial_decode(const std::vector<uint8_t>& es) {
  std::vector<Frame> out;
  mpeg2::Mpeg2Decoder dec;
  dec.decode(es, [&](const Frame& f, const mpeg2::DecodedPictureInfo&) {
    out.push_back(f);
  });
  return out;
}

// Corrupt every transmission (including retransmissions) on the first
// splitter -> first decoder link for ordinals [from, to).
net::FaultInjector sp_link_corruptor(int k, uint64_t from, uint64_t to) {
  net::FaultInjector inj;
  for (uint64_t ord = from; ord < to; ++ord) {
    net::FaultEvent ev;
    ev.kind = net::FaultEvent::Kind::kCorrupt;
    ev.src = 1;          // splitter 0's node
    ev.dst = 1 + k + 0;  // tile 0's decoder node
    ev.at_ordinal = ord;
    inj.add_event(ev);
  }
  return inj;
}

TEST(TransportCrc, CorruptedSubPictureIsRetransmittedNotDecoded) {
  const int w = 192, h = 160, k = 2;
  const auto es = make_gop4_stream(w, h, 9);
  const auto serial = serial_decode(es);
  wall::TileGeometry geo(w, h, 2, 2, 16);

  // A burst of corruption, but each transmission retries often enough that
  // an intact copy always gets through: the wall stays bit-exact and the
  // damage is visible only in the CRC-drop counter.
  const auto injector = sp_link_corruptor(k, 2, 8);
  core::FtOptions ft;
  ft.injector = &injector;
  const WallRun run = wall_decode(es, geo, k, ft);

  EXPECT_GT(run.stats.ft.transport.crc_drops, 0u);
  EXPECT_EQ(run.stats.ft.transport.abandoned, 0u);
  EXPECT_EQ(run.stats.ft.skipped_pictures, 0u);
  ASSERT_EQ(run.frames.size(), serial.size());
  for (size_t i = 0; i < run.frames.size(); ++i) {
    EXPECT_FALSE(run.degraded[i]) << "slot " << i;
    const Frame a = wall::crop_frame(serial[i], w, h);
    const Frame b = wall::crop_frame(run.frames[i], w, h);
    EXPECT_TRUE(a.y == b.y && a.cb == b.cb && a.cr == b.cr) << "slot " << i;
  }
}

TEST(TransportCrc, PersistentCorruptionSkipsPictureAndResyncsAtNextGop) {
  const int w = 192, h = 160, k = 2;
  const auto es = make_gop4_stream(w, h, 12);
  const auto serial = serial_decode(es);
  wall::TileGeometry geo(w, h, 2, 2, 16);

  // Corrupt a long stretch of the link with a tiny retry budget: some
  // sub-picture exhausts its retries, the splitter broadcasts a skip, the
  // tile conceals (freeze + taint) until the next closed-GOP I picture.
  const auto injector = sp_link_corruptor(k, 4, 16);
  core::FtOptions ft;
  ft.injector = &injector;
  ft.protocol.reliable.max_retries = 2;
  const WallRun run = wall_decode(es, geo, k, ft);

  EXPECT_GT(run.stats.ft.transport.crc_drops, 0u);
  EXPECT_GT(run.stats.ft.transport.abandoned, 0u);
  EXPECT_GE(run.stats.ft.skipped_pictures, 1u);
  EXPECT_GT(run.stats.ft.degraded_frames, 0u);
  EXPECT_TRUE(run.stats.ft.recoveries.empty()) << "no node died here";

  // Every display slot exists; none is silently wrong; and by the final
  // closed GOP (coded picture 8 on) the wall is bit-exact again.
  ASSERT_EQ(run.frames.size(), serial.size());
  int degraded_slots = 0;
  for (size_t i = 0; i < run.frames.size(); ++i) {
    const Frame a = wall::crop_frame(serial[i], w, h);
    const Frame b = wall::crop_frame(run.frames[i], w, h);
    const bool exact = a.y == b.y && a.cb == b.cb && a.cr == b.cr;
    EXPECT_TRUE(run.degraded[i] || exact) << "slot " << i << " silently wrong";
    if (i >= 8) {
      EXPECT_TRUE(exact) << "slot " << i << " not resynced";
      EXPECT_FALSE(run.degraded[i]) << "slot " << i;
    }
    degraded_slots += run.degraded[i] ? 1 : 0;
  }
  EXPECT_GT(degraded_slots, 0);
}

}  // namespace
}  // namespace pdw
