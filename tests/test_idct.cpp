// IDCT accuracy tests (IEEE 1180-style statistical comparison against the
// double-precision reference) and forward/inverse consistency. The accuracy
// checks run once per supported kernel dispatch level, so the SSE2 and AVX2
// IDCTs must independently meet the same tolerances as the scalar reference.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/stats.h"
#include "kernels/kernels.h"
#include "mpeg2/idct.h"

namespace pdw::mpeg2 {
namespace {

// Runs `fn` once for every supported dispatch level, restoring the original
// level afterwards. fast_idct_8x8 follows the active table, so this makes
// the existing assertions cover each SIMD variant.
template <typename Fn>
void for_each_level(Fn&& fn) {
  const kernels::Level original = kernels::active_level();
  for (int i = 0; i < kernels::kLevelCount; ++i) {
    const kernels::Level l = kernels::Level(i);
    if (!kernels::level_supported(l)) continue;
    ASSERT_TRUE(kernels::set_active_level(l));
    SCOPED_TRACE(testing::Message() << "kernel level " << kernels::level_name(l));
    fn();
  }
  ASSERT_TRUE(kernels::set_active_level(original));
}

TEST(Idct, DcOnlyBlockIsFlat) {
  for_each_level([] {
    int16_t block[64] = {};
    block[0] = 256;  // DC
    fast_idct_8x8(block);
    // Expected spatial value: 256 / 8 = 32 everywhere.
    for (int i = 0; i < 64; ++i) EXPECT_EQ(block[i], 32) << i;
  });
}

TEST(Idct, ZeroBlockStaysZero) {
  for_each_level([] {
    int16_t block[64] = {};
    fast_idct_8x8(block);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(block[i], 0);
  });
}

TEST(Idct, MatchesReferenceWithinIeee1180Tolerances) {
  // Random coefficient blocks in the post-dequantisation range; the fast
  // integer IDCT must stay within 1 of the rounded reference everywhere,
  // with low mean error (IEEE 1180 criteria: peak 1, mean <= 0.0015).
  for_each_level([] {
    SplitMix64 rng(42);
    double err_sum = 0.0;
    int64_t count = 0;
    for (int trial = 0; trial < 2000; ++trial) {
      int16_t block[64];
      // Realistic sparse blocks: a few significant low-frequency coefficients.
      std::memset(block, 0, sizeof(block));
      const int n = 1 + int(rng.next_below(12));
      for (int i = 0; i < n; ++i) {
        const int pos = int(rng.next_below(64));
        block[pos] = int16_t(int(rng.next_below(601)) - 300);
      }
      double ref[64];
      reference_idct_8x8(block, ref);
      fast_idct_8x8(block);
      for (int i = 0; i < 64; ++i) {
        const double clamped =
            double(std::lround(std::clamp(ref[i], -256.0, 255.0)));
        const double e = std::abs(double(block[i]) - clamped);
        EXPECT_LE(e, 1.0) << "trial " << trial << " index " << i;
        err_sum += e;
        ++count;
      }
    }
    EXPECT_LE(err_sum / double(count), 0.06);
  });
}

TEST(Idct, OutputIsClampedTo256Range) {
  for_each_level([] {
    SplitMix64 rng(7);
    for (int trial = 0; trial < 200; ++trial) {
      int16_t block[64];
      for (int i = 0; i < 64; ++i)
        block[i] = int16_t(int(rng.next_below(4096)) - 2048);
      fast_idct_8x8(block);
      for (int i = 0; i < 64; ++i) {
        EXPECT_GE(block[i], -256);
        EXPECT_LE(block[i], 255);
      }
    }
  });
}

TEST(Dct, ForwardInverseRoundtripOnPixels) {
  // fdct followed by idct must reproduce pixel blocks near-exactly.
  SplitMix64 rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    int16_t pixels[64], coeff[64];
    for (int i = 0; i < 64; ++i) pixels[i] = int16_t(rng.next_below(256));
    forward_dct_8x8(pixels, coeff);
    int16_t recon[64];
    std::memcpy(recon, coeff, sizeof(coeff));
    fast_idct_8x8(recon);
    for (int i = 0; i < 64; ++i)
      EXPECT_NEAR(recon[i], pixels[i], 2) << "trial " << trial << " i=" << i;
  }
}

TEST(Dct, FlatBlockHasOnlyDc) {
  int16_t pixels[64];
  for (int i = 0; i < 64; ++i) pixels[i] = 128;
  int16_t coeff[64];
  forward_dct_8x8(pixels, coeff);
  EXPECT_EQ(coeff[0], 1024);  // 128 * 8
  for (int i = 1; i < 64; ++i) EXPECT_EQ(coeff[i], 0) << i;
}

TEST(Dct, ParsevalEnergyPreserved) {
  SplitMix64 rng(5);
  int16_t pixels[64], coeff[64];
  for (int i = 0; i < 64; ++i) pixels[i] = int16_t(rng.next_below(256));
  forward_dct_8x8(pixels, coeff);
  double ep = 0, ec = 0;
  for (int i = 0; i < 64; ++i) {
    ep += double(pixels[i]) * pixels[i];
    ec += double(coeff[i]) * coeff[i];
  }
  EXPECT_NEAR(ec / ep, 1.0, 0.01);
}

}  // namespace
}  // namespace pdw::mpeg2
