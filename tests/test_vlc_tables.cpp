// Annex B VLC table tests: literal codes from the standard, encode/decode
// roundtrips over every table entry, and structural cross-checks.
#include <gtest/gtest.h>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "mpeg2/tables.h"

namespace pdw::mpeg2 {
namespace {

// Helper: decode `table` from a literal bit string.
int decode_bits(const Vlc& table, const std::string& bits) {
  BitWriter w;
  for (char c : bits) w.put_bit(c == '1');
  w.align_to_byte();
  auto bytes = w.take();
  BitReader r(bytes);
  return table.decode(r);
}

TEST(AddressIncrement, LiteralCodes) {
  EXPECT_EQ(decode_bits(vlc_mb_address_increment(), "1"), 1);
  EXPECT_EQ(decode_bits(vlc_mb_address_increment(), "011"), 2);
  EXPECT_EQ(decode_bits(vlc_mb_address_increment(), "010"), 3);
  EXPECT_EQ(decode_bits(vlc_mb_address_increment(), "00000011000"), 33);
}

TEST(AddressIncrement, RoundtripAllValues) {
  for (int inc = 1; inc <= 200; ++inc) {
    BitWriter w;
    encode_address_increment(w, inc);
    w.align_to_byte();
    auto bytes = w.take();
    BitReader r(bytes);
    EXPECT_EQ(decode_address_increment(r), inc) << "increment " << inc;
  }
}

TEST(AddressIncrement, EscapeAdds33) {
  BitWriter w;
  encode_address_increment(w, 34);  // escape + code for 1
  w.align_to_byte();
  auto bytes = w.take();
  // 11 bits escape + 1 bit code + padding = 2 bytes.
  EXPECT_EQ(bytes.size(), 2u);
  BitReader r(bytes);
  EXPECT_EQ(decode_address_increment(r), 34);
}

TEST(MbType, IPictureLiterals) {
  using namespace mb_flags;
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::I), "1"), kIntra);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::I), "01"), kIntra | kQuant);
}

TEST(MbType, PPictureLiterals) {
  using namespace mb_flags;
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::P), "1"),
            kMotionForward | kPattern);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::P), "01"), kPattern);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::P), "001"), kMotionForward);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::P), "00011"), kIntra);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::P), "00010"),
            kMotionForward | kPattern | kQuant);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::P), "00001"), kPattern | kQuant);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::P), "000001"), kIntra | kQuant);
}

TEST(MbType, BPictureLiterals) {
  using namespace mb_flags;
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::B), "10"),
            kMotionForward | kMotionBackward);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::B), "11"),
            kMotionForward | kMotionBackward | kPattern);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::B), "010"), kMotionBackward);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::B), "011"),
            kMotionBackward | kPattern);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::B), "0010"), kMotionForward);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::B), "0011"),
            kMotionForward | kPattern);
  EXPECT_EQ(decode_bits(vlc_mb_type(PicType::B), "00011"), kIntra);
}

TEST(CodedBlockPattern, Literals) {
  EXPECT_EQ(decode_bits(vlc_coded_block_pattern(), "111"), 60);
  EXPECT_EQ(decode_bits(vlc_coded_block_pattern(), "1101"), 4);
  EXPECT_EQ(decode_bits(vlc_coded_block_pattern(), "001101"), 3);
  EXPECT_EQ(decode_bits(vlc_coded_block_pattern(), "001100"), 63);
  EXPECT_EQ(decode_bits(vlc_coded_block_pattern(), "000000001"), 0);
}

TEST(CodedBlockPattern, RoundtripAll64) {
  const Vlc& t = vlc_coded_block_pattern();
  for (int cbp = 0; cbp < 64; ++cbp) {
    BitWriter w;
    t.encode(w, cbp);
    w.align_to_byte();
    auto bytes = w.take();
    BitReader r(bytes);
    EXPECT_EQ(t.decode(r), cbp) << "cbp " << cbp;
  }
}

TEST(MotionCode, LiteralCodesFromStandard) {
  // Sample literal codes from Table B.10.
  EXPECT_EQ(decode_bits(vlc_motion_code(), "1"), 0);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "010"), 1);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "011"), -1);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "0010"), 2);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "0011"), -2);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "00010"), 3);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "0000110"), 4);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "00001010"), 5);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "0000010110"), 8);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "0000010111"), -8);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "00000011000"), 16);
  EXPECT_EQ(decode_bits(vlc_motion_code(), "00000011001"), -16);
}

TEST(MotionCode, RoundtripAllValues) {
  const Vlc& t = vlc_motion_code();
  for (int v = -16; v <= 16; ++v) {
    BitWriter w;
    t.encode(w, v);
    w.align_to_byte();
    auto bytes = w.take();
    BitReader r(bytes);
    EXPECT_EQ(t.decode(r), v);
  }
}

TEST(DctDcSize, Literals) {
  EXPECT_EQ(decode_bits(vlc_dct_dc_size_luma(), "100"), 0);
  EXPECT_EQ(decode_bits(vlc_dct_dc_size_luma(), "00"), 1);
  EXPECT_EQ(decode_bits(vlc_dct_dc_size_luma(), "01"), 2);
  EXPECT_EQ(decode_bits(vlc_dct_dc_size_luma(), "111111111"), 11);
  EXPECT_EQ(decode_bits(vlc_dct_dc_size_chroma(), "00"), 0);
  EXPECT_EQ(decode_bits(vlc_dct_dc_size_chroma(), "1111111111"), 11);
}

TEST(DctDcSize, RoundtripAllSizes) {
  for (const Vlc* t : {&vlc_dct_dc_size_luma(), &vlc_dct_dc_size_chroma()}) {
    for (int size = 0; size <= 11; ++size) {
      BitWriter w;
      t->encode(w, size);
      w.align_to_byte();
      auto bytes = w.take();
      BitReader r(bytes);
      EXPECT_EQ(t->decode(r), size);
    }
  }
}

// --- Table B.14 --------------------------------------------------------------

DctCoeff decode_b14_bits(const std::string& bits, bool first) {
  BitWriter w;
  for (char c : bits) w.put_bit(c == '1');
  // Pad with ones so zero-padding cannot silently extend a code.
  for (int i = 0; i < 16; ++i) w.put_bit(1);
  w.align_to_byte();
  auto bytes = w.take();
  BitReader r(bytes);
  return decode_dct_coeff_b14(r, first);
}

TEST(DctCoeffB14, FirstCoefficientConvention) {
  // '1s' as first coefficient: run 0, level +/-1.
  auto c = decode_b14_bits("10", true);
  EXPECT_FALSE(c.eob);
  EXPECT_EQ(c.run, 0);
  EXPECT_EQ(c.level, 1);
  c = decode_b14_bits("11", true);
  EXPECT_EQ(c.level, -1);
  // As subsequent coefficient, '10' is EOB and '11s' is run 0 level 1.
  c = decode_b14_bits("10", false);
  EXPECT_TRUE(c.eob);
  c = decode_b14_bits("110", false);
  EXPECT_EQ(c.run, 0);
  EXPECT_EQ(c.level, 1);
  c = decode_b14_bits("111", false);
  EXPECT_EQ(c.level, -1);
}

TEST(DctCoeffB14, LiteralCodes) {
  auto c = decode_b14_bits("0110", false);  // 011 + sign 0 => run 1 level 1
  EXPECT_EQ(c.run, 1);
  EXPECT_EQ(c.level, 1);
  c = decode_b14_bits("01000", false);  // 0100 + s=0 => run 0 level 2
  EXPECT_EQ(c.run, 0);
  EXPECT_EQ(c.level, 2);
  c = decode_b14_bits("01011", false);  // 0101 + s=1 => run 2 level -1
  EXPECT_EQ(c.run, 2);
  EXPECT_EQ(c.level, -1);
  c = decode_b14_bits("0010110", false);  // 001011 is not a code; 00101+1 => run 0 level -3
  EXPECT_EQ(c.run, 0);
  EXPECT_EQ(c.level, -3);
}

TEST(DctCoeffB14, EscapeRoundtrip) {
  for (int level : {-2047, -129, -41, 41, 300, 2047}) {
    BitWriter w;
    encode_dct_coeff_b14(w, 45, level, false);
    w.align_to_byte();
    auto bytes = w.take();
    BitReader r(bytes);
    auto c = decode_dct_coeff_b14(r, false);
    EXPECT_EQ(c.run, 45);
    EXPECT_EQ(c.level, level);
  }
}

TEST(DctCoeffB14, RoundtripTableAndEscapeSpace) {
  // Every (run, level) with run 0..63 and |level| 1..60, both signs, both
  // first/subsequent conventions: encode then decode must be identity.
  for (int run = 0; run <= 63; ++run) {
    for (int mag = 1; mag <= 60; ++mag) {
      for (int sign = -1; sign <= 1; sign += 2) {
        for (bool first : {false, true}) {
          const int level = sign * mag;
          BitWriter w;
          encode_dct_coeff_b14(w, run, level, first);
          encode_eob_b14(w);
          w.align_to_byte();
          auto bytes = w.take();
          BitReader r(bytes);
          auto c = decode_dct_coeff_b14(r, first);
          ASSERT_FALSE(c.eob);
          EXPECT_EQ(c.run, run) << "run=" << run << " level=" << level;
          EXPECT_EQ(c.level, level);
          EXPECT_TRUE(decode_dct_coeff_b14(r, false).eob);
        }
      }
    }
  }
}

TEST(DctCoeffB14, HasCodePredicateMatchesEncoder) {
  // When b14_has_code is true the code must be shorter than the 24-bit escape.
  for (int run = 0; run <= 31; ++run) {
    for (int mag = 1; mag <= 40; ++mag) {
      if (!b14_has_code(run, mag)) continue;
      BitWriter w;
      encode_dct_coeff_b14(w, run, mag, false);
      EXPECT_LT(w.bit_pos(), 24u) << run << "/" << mag;
    }
  }
  EXPECT_TRUE(b14_has_code(0, 1));
  EXPECT_TRUE(b14_has_code(31, 1));
  EXPECT_TRUE(b14_has_code(0, 40));
  EXPECT_FALSE(b14_has_code(0, 41));
  EXPECT_FALSE(b14_has_code(32, 1));
}

TEST(QuantiserScale, LinearAndNonLinear) {
  EXPECT_EQ(quantiser_scale(false, 1), 2);
  EXPECT_EQ(quantiser_scale(false, 31), 62);
  EXPECT_EQ(quantiser_scale(true, 1), 1);
  EXPECT_EQ(quantiser_scale(true, 8), 8);
  EXPECT_EQ(quantiser_scale(true, 9), 10);
  EXPECT_EQ(quantiser_scale(true, 31), 112);
}

}  // namespace
}  // namespace pdw::mpeg2
