// Corrupt-bitstream survival tests.
//
// Two properties, matching the error-resilience design (DESIGN.md §6b):
//
//  1. Survival: for EVERY single-bit flip of a small encoded stream, the
//     concealing serial decoder and the splitter hierarchy process the
//     damaged stream without crashing. Damage surfaces as DecodeStatus
//     (dropped slices / concealed macroblocks / dropped pictures), never as
//     InternalError or a signal. BitstreamError is allowed only from the
//     RootSplitter constructor on streams with no usable sequence header —
//     its documented contract.
//
//  2. Equivalence under damage: when corruption is restricted to slice data
//     (headers intact, so serial and parallel agree on the picture list),
//     the parallel pipeline's concealment must stay bit-exact with the
//     serial concealing decoder — the same macroblocks concealed the same
//     way through CONCEAL instructions as through the serial resync path.
#include <gtest/gtest.h>

#include <map>

#include "common/stats.h"
#include "common/text_table.h"
#include "core/lockstep.h"
#include "core/mb_splitter.h"
#include "core/root_splitter.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "mpeg2/headers.h"
#include "video/generator.h"
#include "wall/assembler.h"

namespace pdw {
namespace {

using mpeg2::Frame;

std::vector<uint8_t> make_stream(int w, int h, int frames, int gop, int b,
                                 uint64_t scene_seed, double bpp = 0.4) {
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = gop;
  cfg.b_frames = b;
  cfg.target_bpp = bpp;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, w, h, scene_seed);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, Frame* f) { gen->render(i, f); });
}

// Byte ranges holding slice data (everything from the first slice start code
// to the end of each picture span), computed on the intact stream. Damage
// confined here leaves every picture/sequence header parseable, so serial
// and parallel decoders agree on the picture list and differ only in how
// they conceal.
std::vector<std::pair<size_t, size_t>> slice_data_ranges(
    const std::vector<uint8_t>& es) {
  std::vector<std::pair<size_t, size_t>> ranges;
  mpeg2::SequenceHeader seq;
  bool have_seq = false;
  for (const PictureSpan& ps : scan_pictures(es)) {
    const auto span =
        std::span<const uint8_t>(es).subspan(ps.begin, ps.end - ps.begin);
    mpeg2::ParsedPictureHeaders headers;
    const DecodeStatus hs =
        mpeg2::parse_picture_headers(span, &seq, &have_seq, &headers);
    PDW_CHECK(hs.ok()) << "clean stream must parse";
    // Leave the slice start codes themselves intact (+4 past the first one):
    // a flipped start code deletes the slice from the scan, which is also a
    // fine concealment case, but a flip that *creates* a start code can
    // re-cut the picture list and legitimately diverge. The schedules below
    // avoid that by never writing 0x00/0x01 bytes.
    if (headers.first_slice_offset + 4 < span.size())
      ranges.emplace_back(ps.begin + headers.first_slice_offset + 4, ps.end);
  }
  return ranges;
}

// ---------------------------------------------------------------------------
// 1. Exhaustive single-bit-flip survival sweep.
// ---------------------------------------------------------------------------

TEST(BitflipSurvival, ExhaustiveSingleBitFlipNeverCrashes) {
  // Small on purpose: the sweep decodes the stream once per bit.
  const auto es = make_stream(48, 32, 3, 3, 1, 7, 0.35);
  ASSERT_LT(es.size(), size_t(8192)) << "keep the sweep bounded";

  int serial_ok = 0, splitter_ok = 0, rejected_streams = 0;
  std::vector<uint8_t> damaged = es;
  for (size_t bit = 0; bit < es.size() * 8; ++bit) {
    damaged[bit / 8] ^= uint8_t(1u << (bit % 8));

    // Serial concealing decoder: must never throw.
    {
      mpeg2::Mpeg2Decoder dec(mpeg2::ErrorPolicy::kConceal);
      int frames = 0;
      dec.decode(damaged, [&](const Frame&, const mpeg2::DecodedPictureInfo&) {
        ++frames;
      });
      serial_ok += frames > 0;
    }

    // Splitter hierarchy front end: BitstreamError allowed only from the
    // RootSplitter constructor (hopeless stream), nothing else anywhere.
    try {
      core::RootSplitter root(damaged);
      // The wall is configured from the stream the operator schedules: a
      // flip inside the sequence header changes the advertised dimensions,
      // and a wall built for the original ones rejects the stream at setup
      // (a deliberate CHECK, not part of this sweep). Derive the geometry
      // from whatever the damaged stream advertises instead.
      const mpeg2::SequenceHeader& seq = root.stream_info().seq;
      if (seq.width < 2 || seq.height < 2) {
        // Valid MPEG-2, but no operator could build a 2x2 wall from it.
        ++rejected_streams;
        damaged[bit / 8] ^= uint8_t(1u << (bit % 8));
        continue;
      }
      wall::TileGeometry geo(seq.width, seq.height, 2, 2, 0);
      core::MacroblockSplitter splitter(geo);
      splitter.set_stream_info(root.stream_info());
      for (int i = 0; i < root.picture_count(); ++i)
        (void)splitter.split(root.picture(i), uint32_t(i));
      ++splitter_ok;
    } catch (const BitstreamError&) {
      ++rejected_streams;
    }

    damaged[bit / 8] ^= uint8_t(1u << (bit % 8));  // restore
  }
  // The sweep is only meaningful if most flips leave a processable stream.
  EXPECT_GT(serial_ok, int(es.size() * 8) / 2);
  EXPECT_GT(splitter_ok, int(es.size() * 8) / 2);
  // Flips inside the lone sequence header may reject the whole stream; that
  // path must stay rare (headers are a sliver of the stream).
  EXPECT_LT(rejected_streams, int(es.size()));
}

// ---------------------------------------------------------------------------
// 2. Parallel concealment bit-exact with the serial concealing decoder.
// ---------------------------------------------------------------------------

struct Corruption {
  uint64_t seed;
  int hits;  // corrupted bytes
};

// Deterministically corrupt `hits` bytes inside slice-data ranges. The XOR
// mask never produces 0x00 or 0x01 bytes, so no new start codes can appear
// and the picture list survives.
void corrupt_slices(const std::vector<std::pair<size_t, size_t>>& ranges,
                    uint64_t seed, int hits, std::vector<uint8_t>* es) {
  SplitMix64 rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  for (int h = 0; h < hits; ++h) {
    const auto& [lo, hi] = ranges[rng.next_below(uint32_t(ranges.size()))];
    const size_t pos = lo + size_t(rng.next_below(uint32_t(hi - lo)));
    uint8_t& b = (*es)[pos];
    const uint8_t mask = uint8_t(1 + rng.next_below(255));
    const uint8_t flipped = b ^ mask;
    b = (flipped <= 0x01) ? uint8_t(flipped | 0x80) : flipped;
  }
}

class ConcealEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ConcealEquivalence, ParallelConcealsBitExactWithSerial) {
  const Corruption schedules[8] = {{11, 1}, {23, 2}, {37, 3}, {41, 4},
                                   {53, 6}, {67, 8}, {79, 12}, {97, 16}};
  const Corruption& c = schedules[GetParam()];
  SCOPED_TRACE(format("schedule seed=%llu hits=%d",
                      (unsigned long long)c.seed, c.hits));

  const int w = 96, h = 80, frames = 6;
  auto es = make_stream(w, h, frames, 6, 2, 13);
  const auto ranges = slice_data_ranges(es);
  ASSERT_FALSE(ranges.empty());
  corrupt_slices(ranges, c.seed, c.hits, &es);

  // Serial concealing reference.
  std::vector<Frame> serial;
  mpeg2::Mpeg2Decoder dec(mpeg2::ErrorPolicy::kConceal);
  dec.decode(es, [&](const Frame& f, const mpeg2::DecodedPictureInfo&) {
    serial.push_back(f);
  });
  ASSERT_EQ(int(serial.size()), frames)
      << "slice-restricted damage must keep every picture decodable";

  // Parallel: 2 splitters, 2x2 wall, assembled per display index.
  wall::TileGeometry geo(w, h, 2, 2, 0);
  core::LockstepPipeline pipeline(geo, /*splitters=*/2, es);
  struct Pending {
    std::unique_ptr<wall::WallAssembler> assembler;
    int tiles = 0;
  };
  std::map<int, Pending> pending;
  int verified = 0;
  pipeline.run(
      [&](int tile, const mpeg2::TileFrame& tf,
          const core::TileDisplayInfo& info) {
        Pending& p = pending[info.display_index];
        if (!p.assembler)
          p.assembler = std::make_unique<wall::WallAssembler>(geo);
        p.assembler->add_tile(tile, tf);
        if (++p.tiles == geo.tiles()) {
          p.assembler->check_coverage();
          ASSERT_LT(size_t(info.display_index), serial.size());
          const Frame a =
              wall::crop_frame(serial[size_t(info.display_index)], w, h);
          const Frame b = wall::crop_frame(p.assembler->frame(), w, h);
          ASSERT_EQ(a.y, b.y) << "frame " << info.display_index;
          ASSERT_EQ(a.cb, b.cb) << "frame " << info.display_index;
          ASSERT_EQ(a.cr, b.cr) << "frame " << info.display_index;
          ++verified;
          pending.erase(info.display_index);
        }
      },
      nullptr);
  EXPECT_EQ(verified, frames);
  EXPECT_TRUE(pending.empty());
}

INSTANTIATE_TEST_SUITE_P(Schedules, ConcealEquivalence, ::testing::Range(0, 8));

TEST(ConcealEquivalenceMeta, SchedulesActuallyExerciseConcealment) {
  // The equivalence above would pass vacuously if no schedule damaged
  // anything the decoder noticed. Require that, across all 8 schedules, the
  // serial decoder concealed macroblocks at least once.
  const Corruption schedules[8] = {{11, 1}, {23, 2}, {37, 3}, {41, 4},
                                   {53, 6}, {67, 8}, {79, 12}, {97, 16}};
  const int w = 96, h = 80, frames = 6;
  int total_concealed = 0, total_dropped_slices = 0;
  for (const Corruption& c : schedules) {
    auto es = make_stream(w, h, frames, 6, 2, 13);
    corrupt_slices(slice_data_ranges(es), c.seed, c.hits, &es);
    mpeg2::Mpeg2Decoder dec(mpeg2::ErrorPolicy::kConceal);
    dec.decode(es, [](const Frame&, const mpeg2::DecodedPictureInfo&) {});
    total_concealed += dec.concealed_macroblocks();
    total_dropped_slices += dec.dropped_slices();
  }
  EXPECT_GT(total_concealed, 0);
  EXPECT_GT(total_dropped_slices, 0);
}

}  // namespace
}  // namespace pdw
