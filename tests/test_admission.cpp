// Admission controller and QoS degradation ladder tests.
//
// Three layers pinned down here:
//   * the pure controller — typed verdicts against a declared-cost budget,
//     strict priority order in the degradation ladder, a balanced ledger;
//   * engine equivalence — the same request script through direct offer()
//     calls and through offer_wire() pumped over a threaded net::Fabric must
//     produce identical replies and identical Action logs (the controller is
//     sans-io: the hosting engine cannot change a decision);
//   * bit-exact resync — a degraded stream that reverts at the next
//     closed-GOP I picture must emit frames identical to an never-degraded
//     run from that picture onward.
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "enc/encoder.h"
#include "net/fabric.h"
#include "proto/admission.h"
#include "proto/session.h"
#include "video/generator.h"

namespace pdw::proto {
namespace {

using mpeg2::PicType;

// Cost unit: one SD tenant (45x30 mb at 24 fps).
TenantSpec sd_spec(PriorityClass cls) {
  TenantSpec s;
  s.width_mb = 45;
  s.height_mb = 30;
  s.fps = 24;
  s.priority = cls;
  return s;
}

const double kCost = tenant_cost(sd_spec(PriorityClass::kStandard));

AdmissionController::Config config(double tenants_worth) {
  AdmissionController::Config cfg;
  cfg.capacity.mb_per_s = kCost * tenants_worth;
  cfg.capacity.admit_headroom = 1.0;  // exact budgets make the math readable
  return cfg;
}

TEST(AdmissionOffer, AcceptWithinBudget) {
  AdmissionController adm(config(2.0));
  const StreamReply r0 = adm.offer(to_request(sd_spec(PriorityClass::kStandard), 0));
  const StreamReply r1 = adm.offer(to_request(sd_spec(PriorityClass::kStandard), 1));
  EXPECT_EQ(r0.verdict, AdmissionVerdict::kAccept);
  EXPECT_EQ(r0.level, DegradeLevel::kNone);
  EXPECT_EQ(r1.verdict, AdmissionVerdict::kAccept);
  EXPECT_TRUE(adm.admitted(0));
  EXPECT_TRUE(adm.admitted(1));
  EXPECT_DOUBLE_EQ(adm.committed_load(), 2.0 * kCost);
  EXPECT_DOUBLE_EQ(adm.utilization(), 1.0);
}

TEST(AdmissionOffer, RenegotiateAtShallowestFittingLevel) {
  // Budget for 1.7 tenants: the second same-class tenant cannot displace the
  // first, but fits at skip-B (0.5x with the default b_share).
  AdmissionController adm(config(1.7));
  ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kStandard), 0)).verdict,
            AdmissionVerdict::kAccept);
  const StreamReply r = adm.offer(to_request(sd_spec(PriorityClass::kStandard), 1));
  EXPECT_EQ(r.verdict, AdmissionVerdict::kRenegotiate);
  EXPECT_EQ(r.level, DegradeLevel::kSkipB);
  EXPECT_EQ(adm.level(1), DegradeLevel::kSkipB);
  EXPECT_DOUBLE_EQ(adm.committed_load(), 1.5 * kCost);
}

TEST(AdmissionOffer, RejectWhenNoLevelFits) {
  // Budget for 1.1 tenants: even skip-P (0.2x) does not fit a second
  // same-class tenant, and equal-priority tenants are never degraded for it.
  AdmissionController adm(config(1.1));
  ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kStandard), 0)).verdict,
            AdmissionVerdict::kAccept);
  const StreamReply r = adm.offer(to_request(sd_spec(PriorityClass::kStandard), 1));
  EXPECT_EQ(r.verdict, AdmissionVerdict::kReject);
  EXPECT_EQ(r.level, DegradeLevel::kFreeze);
  EXPECT_FALSE(adm.admitted(1));
  EXPECT_EQ(adm.level(0), DegradeLevel::kNone);  // incumbent untouched
  EXPECT_DOUBLE_EQ(adm.committed_load(), kCost);
}

TEST(AdmissionOffer, DuplicateLiveIdAndZeroCostAreProtocolErrors) {
  AdmissionController adm(config(8.0));
  ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kStandard), 3)).verdict,
            AdmissionVerdict::kAccept);
  EXPECT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kPremium), 3)).verdict,
            AdmissionVerdict::kReject);  // id 3 is live
  EXPECT_EQ(adm.level(3), DegradeLevel::kNone);  // original tenant untouched

  TenantSpec zero;  // 0x0 @ 0 fps
  EXPECT_EQ(adm.offer(to_request(zero, 4)).verdict, AdmissionVerdict::kReject);
  EXPECT_FALSE(adm.admitted(4));

  // After release the id is reusable.
  adm.release(3);
  EXPECT_FALSE(adm.admitted(3));
  EXPECT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kStandard), 3)).verdict,
            AdmissionVerdict::kAccept);
}

TEST(AdmissionOffer, HigherClassArrivalDegradesLowerClassesFirst) {
  // background + standard admitted; a premium arrival must make room by
  // walking the background tenant all the way down before touching standard.
  AdmissionController adm(config(2.1));
  ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kBackground), 0)).verdict,
            AdmissionVerdict::kAccept);
  ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kStandard), 1)).verdict,
            AdmissionVerdict::kAccept);
  const StreamReply r = adm.offer(to_request(sd_spec(PriorityClass::kPremium), 2));
  EXPECT_EQ(r.verdict, AdmissionVerdict::kAccept);
  EXPECT_EQ(adm.level(0), DegradeLevel::kFreeze);  // background froze...
  EXPECT_EQ(adm.level(1), DegradeLevel::kNone);    // ...standard untouched
  // Every ladder step is in the log, in order, all against stream 0.
  int degrades = 0;
  for (const auto& a : adm.log())
    if (a.kind == AdmissionController::Action::Kind::kDegrade) {
      EXPECT_EQ(a.stream, 0);
      ++degrades;
    }
  EXPECT_EQ(degrades, 3);  // kNone -> kSkipB -> kSkipP -> kFreeze
}

TEST(AdmissionOffer, LowerClassArrivalCannotDegradeHigher) {
  AdmissionController adm(config(1.1));
  ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kPremium), 0)).verdict,
            AdmissionVerdict::kAccept);
  EXPECT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kBackground), 1)).verdict,
            AdmissionVerdict::kReject);
  EXPECT_EQ(adm.level(0), DegradeLevel::kNone);
}

TEST(AdmissionLadder, PressureDegradesLowestClassFirstRevertsMirror) {
  AdmissionController adm(config(4.0));
  ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kBackground), 0)).verdict,
            AdmissionVerdict::kAccept);
  ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kPremium), 1)).verdict,
            AdmissionVerdict::kAccept);

  // Overload signal: background absorbs every step before premium is touched.
  adm.on_pressure(1.5);
  EXPECT_EQ(adm.level(0), DegradeLevel::kSkipB);
  adm.on_pressure(1.5);
  EXPECT_EQ(adm.level(0), DegradeLevel::kSkipP);
  adm.on_pressure(1.5);
  EXPECT_EQ(adm.level(0), DegradeLevel::kFreeze);
  EXPECT_EQ(adm.level(1), DegradeLevel::kNone);
  adm.on_pressure(1.5);  // only premium left; now it degrades
  EXPECT_EQ(adm.level(1), DegradeLevel::kSkipB);

  // Recovery signal: premium reverts first (mirror order). The revert is
  // armed, not applied — the level holds until a closed-GOP picture.
  adm.on_pressure(0.2);
  EXPECT_EQ(adm.level(1), DegradeLevel::kSkipB);
  ASSERT_NE(adm.tenant(1), nullptr);
  EXPECT_EQ(adm.tenant(1)->target, DegradeLevel::kNone);
  EXPECT_EQ(adm.log().back().kind, AdmissionController::Action::Kind::kArmRevert);

  // Non-resync pictures do not apply it.
  adm.should_shed(1, PicType::P, /*closed_gop=*/false);
  EXPECT_EQ(adm.level(1), DegradeLevel::kSkipB);
  // The closed-GOP I picture does.
  adm.should_shed(1, PicType::I, /*closed_gop=*/true);
  EXPECT_EQ(adm.level(1), DegradeLevel::kNone);
  EXPECT_EQ(adm.log().back().kind, AdmissionController::Action::Kind::kRevert);
}

TEST(AdmissionLadder, DeadBandHoldsTheLadderStill) {
  AdmissionController adm(config(4.0));
  ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kBackground), 0)).verdict,
            AdmissionVerdict::kAccept);
  adm.on_pressure(1.2);
  ASSERT_EQ(adm.level(0), DegradeLevel::kSkipB);
  const size_t log_size = adm.log().size();
  for (double s : {0.8, 0.9, 0.99}) adm.on_pressure(s);  // inside the band
  EXPECT_EQ(adm.log().size(), log_size);
  EXPECT_EQ(adm.level(0), DegradeLevel::kSkipB);
}

TEST(AdmissionLadder, ShedMatrixPerLevel) {
  AdmissionController adm(config(4.0));
  ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kBackground), 0)).verdict,
            AdmissionVerdict::kAccept);
  const auto shed = [&](PicType t) {
    return adm.should_shed(0, t, /*closed_gop=*/false);
  };
  // kNone: everything decodes.
  EXPECT_FALSE(shed(PicType::I));
  EXPECT_FALSE(shed(PicType::P));
  EXPECT_FALSE(shed(PicType::B));
  adm.on_pressure(2.0);  // kSkipB
  EXPECT_FALSE(shed(PicType::I));
  EXPECT_FALSE(shed(PicType::P));
  EXPECT_TRUE(shed(PicType::B));
  adm.on_pressure(2.0);  // kSkipP
  EXPECT_FALSE(shed(PicType::I));
  EXPECT_TRUE(shed(PicType::P));
  EXPECT_TRUE(shed(PicType::B));
  adm.on_pressure(2.0);  // kFreeze
  EXPECT_TRUE(shed(PicType::I));
  EXPECT_TRUE(shed(PicType::P));
  EXPECT_TRUE(shed(PicType::B));
  ASSERT_NE(adm.tenant(0), nullptr);
  EXPECT_EQ(adm.tenant(0)->shed, 6u);
  EXPECT_EQ(adm.tenant(0)->pictures, 12u);
  // An un-admitted stream never sheds (the session must not consult a ghost).
  EXPECT_FALSE(adm.should_shed(7, PicType::B, false));
}

TEST(AdmissionLedger, ReleaseDrainsCommittedLoad) {
  AdmissionController adm(config(3.0));
  for (uint8_t id = 0; id < 3; ++id)
    ASSERT_EQ(adm.offer(to_request(sd_spec(PriorityClass::kStandard), id)).verdict,
              AdmissionVerdict::kAccept);
  adm.release(1);
  EXPECT_DOUBLE_EQ(adm.committed_load(), 2.0 * kCost);
  adm.release(1);  // double release is a no-op
  EXPECT_DOUBLE_EQ(adm.committed_load(), 2.0 * kCost);
  adm.release(0);
  adm.release(2);
  EXPECT_NEAR(adm.committed_load(), 0.0, 1e-9);
}

// --------------------------------------------------------------------------
// Engine equivalence: the identical request script through direct offer()
// and through offer_wire() bytes pumped over a threaded fabric.

TEST(AdmissionWire, FabricHostedControllerMatchesDirectCalls) {
  struct Op {
    bool is_release = false;
    TenantSpec spec;
    uint8_t stream = 0;
  };
  std::vector<Op> script;
  const auto offer_op = [&](PriorityClass cls, uint8_t id) {
    script.push_back({false, sd_spec(cls), id});
  };
  offer_op(PriorityClass::kBackground, 0);
  offer_op(PriorityClass::kStandard, 1);
  offer_op(PriorityClass::kPremium, 2);   // forces degrades
  offer_op(PriorityClass::kStandard, 3);  // renegotiate or reject
  script.push_back({true, {}, 1});
  offer_op(PriorityClass::kStandard, 4);
  offer_op(PriorityClass::kStandard, 4);  // duplicate -> reject

  // Direct run.
  AdmissionController direct(config(2.1));
  std::vector<StreamReply> direct_replies;
  for (const Op& op : script) {
    if (op.is_release)
      direct.release(op.stream);
    else
      direct_replies.push_back(direct.offer(to_request(op.spec, op.stream)));
  }

  // Wire run: client on node 0, controller hosted on node 1. The host
  // answers StreamRequest with offer_wire() and treats EndOfStream as a
  // release; per-link FIFO makes the op order identical to the script.
  AdmissionController hosted(config(2.1));
  net::Fabric fabric(2);
  std::thread host([&] {
    net::Message msg;
    while (fabric.receive(1, &msg)) {
      const auto any = decode_any(msg.payload);
      ASSERT_TRUE(any.has_value());
      if (std::holds_alternative<EndOfStream>(*any)) {
        hosted.release(std::get<EndOfStream>(*any).stream);
        continue;
      }
      const Packed rep = hosted.offer_wire(msg.payload);
      net::Message out;
      out.type = int(rep.type);
      out.stream = rep.stream;
      out.payload = rep.body;
      fabric.send(1, 0, std::move(out));
    }
  });
  std::vector<StreamReply> wire_replies;
  for (const Op& op : script) {
    Packed p;
    if (op.is_release) {
      EndOfStream eos;
      eos.stream = op.stream;
      p = pack(eos);
    } else {
      p = pack(to_request(op.spec, op.stream));
    }
    net::Message msg;
    msg.type = int(p.type);
    msg.stream = p.stream;
    msg.payload = p.body;
    ASSERT_EQ(fabric.send(0, 1, std::move(msg)), net::SendStatus::kOk);
    if (op.is_release) continue;
    net::Message back;
    ASSERT_TRUE(fabric.receive(0, &back));
    StreamReply rep;
    ASSERT_TRUE(decode(back.payload.span(), &rep));
    wire_replies.push_back(rep);
  }
  fabric.shutdown();
  host.join();

  EXPECT_EQ(wire_replies, direct_replies);
  EXPECT_EQ(hosted.log(), direct.log());
  EXPECT_DOUBLE_EQ(hosted.committed_load(), direct.committed_load());
}

TEST(AdmissionWire, MalformedRequestGetsTypedReject) {
  AdmissionController adm(config(4.0));
  const size_t log_size = adm.log().size();
  const uint8_t garbage[] = {0xDE, 0xAD, 0xBE};
  const Packed rep = adm.offer_wire(mem::Bytes::copy_of(garbage));
  EXPECT_EQ(rep.type, MsgType::kStreamReply);
  StreamReply out;
  ASSERT_TRUE(decode(rep.body, &out));
  EXPECT_EQ(out.verdict, AdmissionVerdict::kReject);
  EXPECT_EQ(adm.log().size(), log_size);  // never reached the controller
}

// --------------------------------------------------------------------------
// Bit-exact resync: degrade mid-stream, revert at the next closed-GOP I,
// compare every later frame against a never-degraded run.

constexpr int kW = 256, kH = 192, kFrames = 12;

const std::vector<uint8_t>& stream_es() {
  static const std::vector<uint8_t> es = [] {
    enc::EncoderConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.gop_size = 4;  // closed-GOP I pictures at coded indexes 0, 4, 8
    cfg.b_frames = 2;
    cfg.target_bpp = 0.4;
    const auto gen =
        video::make_scene(video::SceneKind::kMovingObjects, kW, kH, 21);
    enc::Mpeg2Encoder encoder(cfg);
    return encoder.encode(kFrames,
                          [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
  }();
  return es;
}

using FrameMap = std::map<std::pair<int, int>, mpeg2::TileFrame>;  // (slot, tile)

TEST(AdmissionResync, RevertIsBitExactFromClosedGopOnward) {
  const wall::TileGeometry geo(kW, kH, 2, 2, 16);
  const auto capture = [&](FrameMap* frames) {
    return [frames](int tile, const mpeg2::TileFrame& tf,
                    const core::TileDisplayInfo& info) {
      (*frames)[{info.display_index, tile}] = tf;
    };
  };

  FrameMap ref;
  {
    SerialStream ss(geo, 2, stream_es());
    const auto fn = capture(&ref);
    while (!ss.done()) ss.step(fn, nullptr);
    ss.finish(fn);
  }

  FrameMap gated;
  AdmissionController adm(config(4.0));
  TenantSpec spec = sd_spec(PriorityClass::kStandard);
  ASSERT_EQ(adm.offer(to_request(spec, 0)).verdict, AdmissionVerdict::kAccept);
  uint64_t shed_count = 0;
  {
    SerialStream ss(geo, 2, stream_es());
    const auto fn = capture(&gated);
    while (!ss.done()) {
      const uint32_t pic = ss.next_picture();
      if (pic == 1) adm.on_pressure(2.0);  // degrade to skip-B inside GOP 0
      if (pic == 5) adm.on_pressure(0.2);  // arm the revert inside GOP 1
      const bool shed =
          adm.should_shed(0, ss.next_picture_type(), ss.next_gop_start());
      if (shed) ++shed_count;
      ss.step(fn, nullptr, shed);
    }
    ss.finish(fn);
    EXPECT_EQ(ss.pictures_shed(), shed_count);
  }
  EXPECT_GT(shed_count, 0u);  // the ladder actually engaged
  EXPECT_EQ(adm.level(0), DegradeLevel::kNone);  // and cleanly disengaged
  bool reverted = false;
  for (const auto& a : adm.log())
    reverted |= a.kind == AdmissionController::Action::Kind::kRevert;
  EXPECT_TRUE(reverted);

  // Display invariant: shed pictures emit frozen frames, never holes.
  ASSERT_EQ(gated.size(), ref.size());

  // Bit-exact from the revert picture's GOP onward: coded picture 8 opens
  // the last closed GOP, its frames land in display slots 8..11.
  for (const auto& [key, frame] : ref) {
    if (key.first < 8) continue;
    const auto it = gated.find(key);
    ASSERT_NE(it, gated.end());
    EXPECT_TRUE(it->second.y() == frame.y() && it->second.cb() == frame.cb() &&
                it->second.cr() == frame.cr())
        << "slot " << key.first << " tile " << key.second;
  }
}

}  // namespace
}  // namespace pdw::proto
