// Chaos/soak harness: every seeded schedule must pass the composed
// invariant suite (admission ledger balance, priority-ordered shedding,
// premium deadline budget, no deadlock under wire faults, display
// invariant, pool drain), and a schedule must replay deterministically.
#include <gtest/gtest.h>

#include <vector>

#include "enc/encoder.h"
#include "sim/chaos.h"
#include "video/generator.h"
#include "wall/geometry.h"

namespace pdw::sim {
namespace {

constexpr int kW = 256, kH = 192, kFrames = 12;

const std::vector<uint8_t>& stream_es() {
  static const std::vector<uint8_t> es = [] {
    enc::EncoderConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.gop_size = 4;
    cfg.b_frames = 2;
    cfg.target_bpp = 0.4;
    const auto gen =
        video::make_scene(video::SceneKind::kMovingObjects, kW, kH, 7);
    enc::Mpeg2Encoder encoder(cfg);
    return encoder.encode(kFrames,
                          [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
  }();
  return es;
}

ChaosSchedule schedule(uint64_t seed) {
  static const wall::TileGeometry geo(kW, kH, 2, 2, 16);
  ChaosSchedule s;
  s.seed = seed;
  s.es = stream_es();
  s.geo = &geo;
  s.sim_seconds = 30;            // bounded wall-clock for CI
  s.pool_allocs_per_thread = 1000;
  return s;
}

void expect_ok(const ChaosReport& rep, uint64_t seed) {
  EXPECT_TRUE(rep.ok())
      << "seed " << seed << ": accounting=" << rep.overload_accounting_ok
      << " priority_order=" << rep.overload_priority_order_ok
      << " premium_miss=" << rep.premium_miss_rate
      << " (ok=" << rep.premium_miss_rate_ok << ")"
      << " fault_completed=" << rep.fault_completed
      << " fault_display=" << rep.fault_display_invariant_ok
      << " pool_drained=" << rep.pool_drained
      << " pool_fallbacks=" << rep.pool_budget_fallbacks
      << " shed_display=" << rep.shed_display_invariant_ok
      << " shed_pictures=" << rep.shed_pictures;
}

TEST(ChaosSoak, EightSeededSchedulesHoldEveryInvariant) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const ChaosReport rep = run_chaos(schedule(seed));
    expect_ok(rep, seed);
  }
}

TEST(ChaosSoak, ScheduleReplaysDeterministically) {
  const ChaosReport a = run_chaos(schedule(3));
  const ChaosReport b = run_chaos(schedule(3));
  // The DES-driven legs are pure functions of the seed; the threaded legs'
  // invariant verdicts (not their timings) must agree as well.
  EXPECT_EQ(a.premium_miss_rate, b.premium_miss_rate);
  EXPECT_EQ(a.background_shed_rate, b.background_shed_rate);
  EXPECT_EQ(a.degrades, b.degrades);
  EXPECT_EQ(a.fault_pictures, b.fault_pictures);
  EXPECT_EQ(a.shed_pictures, b.shed_pictures);
  EXPECT_EQ(a.ok(), b.ok());
}

}  // namespace
}  // namespace pdw::sim
