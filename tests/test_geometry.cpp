// Tile geometry tests: partitioning, overlap handling, macroblock ownership.
#include <gtest/gtest.h>

#include "wall/geometry.h"

namespace pdw::wall {
namespace {

TEST(TileGeometry, SingleTileCoversEverything) {
  TileGeometry g(720, 480, 1, 1);
  EXPECT_EQ(g.tiles(), 1);
  EXPECT_EQ(g.tile_pixels(0).width(), 720);
  EXPECT_EQ(g.tile_mbs(0).count(), 45 * 30);
  EXPECT_EQ(g.owner_of_mb(0, 0), 0);
  EXPECT_EQ(g.owner_of_mb(44, 29), 0);
}

TEST(TileGeometry, UniformPartitionWithoutOverlap) {
  TileGeometry g(1280, 720, 2, 1, 0);
  EXPECT_EQ(g.tiles(), 2);
  EXPECT_EQ(g.tile_pixels(0).x1, 640);
  EXPECT_EQ(g.tile_pixels(1).x0, 640);
  // Macroblock rects are disjoint when the boundary is MB aligned.
  EXPECT_EQ(g.tile_mbs(0).x1, 40);
  EXPECT_EQ(g.tile_mbs(1).x0, 40);
}

TEST(TileGeometry, OverlapDuplicatesBoundaryMacroblocks) {
  TileGeometry g(1280, 720, 2, 1, 40);
  // Interior edges widen by overlap/2 = 20px each way.
  EXPECT_EQ(g.tile_pixels(0).x1, 660);
  EXPECT_EQ(g.tile_pixels(1).x0, 620);
  std::vector<int> tiles;
  g.tiles_of_mb(39, 0, &tiles);  // pixel 624..639: in both tiles
  EXPECT_EQ(tiles.size(), 2u);
  g.tiles_of_mb(41, 0, &tiles);  // pixel 656..671: tile 1 only... but 656<660
  // mb 41 covers 656..671, tile 0 pixels end at 660 -> still shared.
  EXPECT_EQ(tiles.size(), 2u);
  g.tiles_of_mb(0, 0, &tiles);
  EXPECT_EQ(tiles.size(), 1u);
  g.tiles_of_mb(79, 0, &tiles);
  EXPECT_EQ(tiles.size(), 1u);
}

TEST(TileGeometry, OwnerIsUniqueAndOwnsTheMacroblock) {
  for (int overlap : {0, 40}) {
    TileGeometry g(1920, 1088, 4, 4, overlap);
    for (int mby = 0; mby < g.mb_height(); ++mby) {
      for (int mbx = 0; mbx < g.mb_width(); ++mbx) {
        const int owner = g.owner_of_mb(mbx, mby);
        EXPECT_TRUE(g.tile_has_mb(owner, mbx, mby));
      }
    }
  }
}

TEST(TileGeometry, EveryMacroblockHasAtLeastOneTile) {
  TileGeometry g(3840, 2912, 4, 4, 40);
  std::vector<int> tiles;
  int max_tiles = 0;
  for (int mby = 0; mby < g.mb_height(); ++mby) {
    for (int mbx = 0; mbx < g.mb_width(); ++mbx) {
      g.tiles_of_mb(mbx, mby, &tiles);
      ASSERT_GE(tiles.size(), 1u) << mbx << "," << mby;
      max_tiles = std::max(max_tiles, int(tiles.size()));
    }
  }
  // Corner overlap regions belong to up to 4 tiles.
  EXPECT_LE(max_tiles, 4);
  EXPECT_GE(max_tiles, 2);
}

TEST(TileGeometry, TilePixelsCoverTheWholePicture) {
  TileGeometry g(1000, 700, 3, 2, 24);  // non-MB-aligned sizes allowed
  std::vector<int> cover(size_t(1000) * 700, 0);
  for (int t = 0; t < g.tiles(); ++t) {
    const PixelRect& r = g.tile_pixels(t);
    for (int y = r.y0; y < r.y1; ++y)
      for (int x = r.x0; x < r.x1; ++x) ++cover[size_t(y) * 1000 + x];
  }
  for (size_t i = 0; i < cover.size(); ++i) ASSERT_GE(cover[i], 1) << i;
}

TEST(TileGeometry, MbRectCoversPixelRect) {
  TileGeometry g(1280, 720, 3, 3, 40);
  for (int t = 0; t < g.tiles(); ++t) {
    const PixelRect& p = g.tile_pixels(t);
    const MbRect& m = g.tile_mbs(t);
    EXPECT_LE(m.x0 * 16, p.x0);
    EXPECT_LE(m.y0 * 16, p.y0);
    EXPECT_GE(m.x1 * 16, std::min(p.x1, 1280));
    EXPECT_GE(m.y1 * 16, std::min(p.y1, 720));
  }
}

TEST(TileGeometry, RejectsExcessiveOverlap) {
  EXPECT_THROW(TileGeometry(320, 240, 4, 1, 100), CheckError);
}

TEST(TileGeometry, PaperConfigurations) {
  // All screen configurations used in the paper's experiments.
  const int configs[][2] = {{1, 1}, {2, 1}, {2, 2}, {3, 2},
                            {3, 3}, {4, 3}, {4, 4}};
  for (auto [m, n] : configs) {
    TileGeometry g(3840, 2912, m, n, 40);
    EXPECT_EQ(g.tiles(), m * n);
    std::vector<int> tiles;
    for (int t = 0; t < g.tiles(); ++t)
      EXPECT_GT(g.tile_mbs(t).count(), 0);
  }
}

}  // namespace
}  // namespace pdw::wall
