// Tile geometry tests: partitioning, overlap handling, macroblock ownership.
#include <gtest/gtest.h>

#include <algorithm>

#include "wall/geometry.h"
#include "wall/partition.h"

namespace pdw::wall {
namespace {

TEST(TileGeometry, SingleTileCoversEverything) {
  TileGeometry g(720, 480, 1, 1);
  EXPECT_EQ(g.tiles(), 1);
  EXPECT_EQ(g.tile_pixels(0).width(), 720);
  EXPECT_EQ(g.tile_mbs(0).count(), 45 * 30);
  EXPECT_EQ(g.owner_of_mb(0, 0), 0);
  EXPECT_EQ(g.owner_of_mb(44, 29), 0);
}

TEST(TileGeometry, UniformPartitionWithoutOverlap) {
  TileGeometry g(1280, 720, 2, 1, 0);
  EXPECT_EQ(g.tiles(), 2);
  EXPECT_EQ(g.tile_pixels(0).x1, 640);
  EXPECT_EQ(g.tile_pixels(1).x0, 640);
  // Macroblock rects are disjoint when the boundary is MB aligned.
  EXPECT_EQ(g.tile_mbs(0).x1, 40);
  EXPECT_EQ(g.tile_mbs(1).x0, 40);
}

TEST(TileGeometry, OverlapDuplicatesBoundaryMacroblocks) {
  TileGeometry g(1280, 720, 2, 1, 40);
  // Interior edges widen by overlap/2 = 20px each way.
  EXPECT_EQ(g.tile_pixels(0).x1, 660);
  EXPECT_EQ(g.tile_pixels(1).x0, 620);
  std::vector<int> tiles;
  g.tiles_of_mb(39, 0, &tiles);  // pixel 624..639: in both tiles
  EXPECT_EQ(tiles.size(), 2u);
  g.tiles_of_mb(41, 0, &tiles);  // pixel 656..671: tile 1 only... but 656<660
  // mb 41 covers 656..671, tile 0 pixels end at 660 -> still shared.
  EXPECT_EQ(tiles.size(), 2u);
  g.tiles_of_mb(0, 0, &tiles);
  EXPECT_EQ(tiles.size(), 1u);
  g.tiles_of_mb(79, 0, &tiles);
  EXPECT_EQ(tiles.size(), 1u);
}

TEST(TileGeometry, OwnerIsUniqueAndOwnsTheMacroblock) {
  for (int overlap : {0, 40}) {
    TileGeometry g(1920, 1088, 4, 4, overlap);
    for (int mby = 0; mby < g.mb_height(); ++mby) {
      for (int mbx = 0; mbx < g.mb_width(); ++mbx) {
        const int owner = g.owner_of_mb(mbx, mby);
        EXPECT_TRUE(g.tile_has_mb(owner, mbx, mby));
      }
    }
  }
}

TEST(TileGeometry, EveryMacroblockHasAtLeastOneTile) {
  TileGeometry g(3840, 2912, 4, 4, 40);
  std::vector<int> tiles;
  int max_tiles = 0;
  for (int mby = 0; mby < g.mb_height(); ++mby) {
    for (int mbx = 0; mbx < g.mb_width(); ++mbx) {
      g.tiles_of_mb(mbx, mby, &tiles);
      ASSERT_GE(tiles.size(), 1u) << mbx << "," << mby;
      max_tiles = std::max(max_tiles, int(tiles.size()));
    }
  }
  // Corner overlap regions belong to up to 4 tiles.
  EXPECT_LE(max_tiles, 4);
  EXPECT_GE(max_tiles, 2);
}

TEST(TileGeometry, TilePixelsCoverTheWholePicture) {
  TileGeometry g(1000, 700, 3, 2, 24);  // non-MB-aligned sizes allowed
  std::vector<int> cover(size_t(1000) * 700, 0);
  for (int t = 0; t < g.tiles(); ++t) {
    const PixelRect& r = g.tile_pixels(t);
    for (int y = r.y0; y < r.y1; ++y)
      for (int x = r.x0; x < r.x1; ++x) ++cover[size_t(y) * 1000 + x];
  }
  for (size_t i = 0; i < cover.size(); ++i) ASSERT_GE(cover[i], 1) << i;
}

TEST(TileGeometry, MbRectCoversPixelRect) {
  TileGeometry g(1280, 720, 3, 3, 40);
  for (int t = 0; t < g.tiles(); ++t) {
    const PixelRect& p = g.tile_pixels(t);
    const MbRect& m = g.tile_mbs(t);
    EXPECT_LE(m.x0 * 16, p.x0);
    EXPECT_LE(m.y0 * 16, p.y0);
    EXPECT_GE(m.x1 * 16, std::min(p.x1, 1280));
    EXPECT_GE(m.y1 * 16, std::min(p.y1, 720));
  }
}

TEST(TileGeometry, RejectsExcessiveOverlap) {
  EXPECT_THROW(TileGeometry(320, 240, 4, 1, 100), CheckError);
}

TEST(TileGeometry, PaperConfigurations) {
  // All screen configurations used in the paper's experiments.
  const int configs[][2] = {{1, 1}, {2, 1}, {2, 2}, {3, 2},
                            {3, 3}, {4, 3}, {4, 4}};
  for (auto [m, n] : configs) {
    TileGeometry g(3840, 2912, m, n, 40);
    EXPECT_EQ(g.tiles(), m * n);
    std::vector<int> tiles;
    for (int t = 0; t < g.tiles(); ++t)
      EXPECT_GT(g.tile_mbs(t).count(), 0);
  }
}

TEST(TileGeometry, SingleRowAndSingleColumnWalls) {
  // 1xN and Mx1 walls: degenerate grids every layer must survive.
  for (int overlap : {0, 16}) {
    TileGeometry row_wall(1280, 720, 4, 1, overlap);
    TileGeometry col_wall(1280, 720, 1, 4, overlap);
    EXPECT_EQ(row_wall.tiles(), 4);
    EXPECT_EQ(col_wall.tiles(), 4);
    std::vector<int> tiles;
    for (const TileGeometry* g : {&row_wall, &col_wall}) {
      for (int mby = 0; mby < g->mb_height(); ++mby) {
        for (int mbx = 0; mbx < g->mb_width(); ++mbx) {
          const int owner = g->owner_of_mb(mbx, mby);
          ASSERT_TRUE(g->tile_has_mb(owner, mbx, mby));
          g->tiles_of_mb(mbx, mby, &tiles);
          ASSERT_TRUE(std::find(tiles.begin(), tiles.end(), owner) !=
                      tiles.end());
        }
      }
    }
    // The single cross axis spans the full picture.
    EXPECT_EQ(row_wall.tile_pixels(0).y1, 720);
    EXPECT_EQ(col_wall.tile_pixels(0).x1, 1280);
  }
}

TEST(TileGeometry, PartitionRejectsBandNarrowerThanOverlap) {
  // A 2-MB band is 32px wide; overlap 40 swallows it whole.
  Partition p;
  p.col_cuts_mb = {2};
  EXPECT_THROW(TileGeometry(640, 480, p, 40), CheckError);
  // The same cuts clear a smaller overlap.
  TileGeometry ok(640, 480, p, 24);
  EXPECT_EQ(ok.tiles(), 2);
}

TEST(TileGeometry, PartitionRejectsDegenerateCuts) {
  Partition dup;
  dup.col_cuts_mb = {5, 5};  // zero-width band (tile narrower than one MB)
  EXPECT_THROW(TileGeometry(640, 480, dup, 0), CheckError);

  Partition backwards;
  backwards.col_cuts_mb = {20, 10};
  EXPECT_THROW(TileGeometry(640, 480, backwards, 0), CheckError);

  Partition past_edge;
  past_edge.row_cuts_mb = {30};  // mb_height(480) == 30; cut must be interior
  EXPECT_THROW(TileGeometry(640, 480, past_edge, 0), CheckError);

  Partition at_zero;
  at_zero.col_cuts_mb = {0};
  EXPECT_THROW(TileGeometry(640, 480, at_zero, 0), CheckError);
}

TEST(TileGeometry, PartitionOwnerMapAgreesAcrossOverlapSettings) {
  // The splitter builds its geometry with overlap 0, the wall with the
  // projector overlap; MB ownership must agree or MEIs go to the wrong tile.
  Partition p;
  p.epoch = 3;
  p.col_cuts_mb = {11, 19, 31};
  p.row_cuts_mb = {9, 17};
  TileGeometry splitter_view(640, 480, p, 0);
  TileGeometry wall_view(640, 480, p, 32);
  EXPECT_EQ(wall_view.epoch(), 3u);
  std::vector<int> tiles;
  for (int mby = 0; mby < wall_view.mb_height(); ++mby) {
    for (int mbx = 0; mbx < wall_view.mb_width(); ++mbx) {
      const int owner = wall_view.owner_of_mb(mbx, mby);
      ASSERT_EQ(owner, splitter_view.owner_of_mb(mbx, mby));
      ASSERT_TRUE(wall_view.tile_has_mb(owner, mbx, mby));
      wall_view.tiles_of_mb(mbx, mby, &tiles);
      ASSERT_TRUE(std::find(tiles.begin(), tiles.end(), owner) != tiles.end());
    }
  }
}

TEST(TileGeometry, UniformPartitionOwnerMapMatchesUniformGeometry) {
  // Epoch 0 of an adaptive wall is the uniform grid: a Partition built by
  // Partition::uniform must route every MB exactly like the classic ctor.
  const int w = 1000, h = 700;  // non-MB-aligned on purpose
  TileGeometry classic(w, h, 3, 2, 24);
  TileGeometry from_partition(w, h, Partition::uniform(w, h, 3, 2), 24);
  for (int mby = 0; mby < classic.mb_height(); ++mby)
    for (int mbx = 0; mbx < classic.mb_width(); ++mbx)
      ASSERT_EQ(classic.owner_of_mb(mbx, mby),
                from_partition.owner_of_mb(mbx, mby))
          << mbx << "," << mby;
}

}  // namespace
}  // namespace pdw::wall
