// Transport-stream tests: packetization rules, PSI tables with CRC,
// continuity counters, PCR, roundtrip, and multi-PID tolerance.
#include <gtest/gtest.h>

#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "ps/transport_stream.h"
#include "video/generator.h"

namespace pdw::ps {
namespace {

std::vector<uint8_t> make_es(int frames = 9) {
  enc::EncoderConfig cfg;
  cfg.width = 192;
  cfg.height = 160;
  cfg.gop_size = 6;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.5;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, 192, 160, 66);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
}

TEST(Crc32, KnownVector) {
  // CRC-32/MPEG-2 of "123456789" is 0x0376E6E7.
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(mpeg_crc32(data), 0x0376E6E7u);
  // A section followed by its own CRC hashes to zero (the demux check).
  std::vector<uint8_t> with_crc(data, data + 9);
  const uint32_t crc = mpeg_crc32(data);
  with_crc.push_back(uint8_t(crc >> 24));
  with_crc.push_back(uint8_t(crc >> 16));
  with_crc.push_back(uint8_t(crc >> 8));
  with_crc.push_back(uint8_t(crc));
  EXPECT_EQ(mpeg_crc32(with_crc), 0u);
}

TEST(TransportStream, PacketsAre188BytesWithSync) {
  const auto es = make_es(3);
  const auto ts = mux_transport_stream(es);
  ASSERT_EQ(ts.size() % kTsPacketSize, 0u);
  for (size_t i = 0; i < ts.size(); i += kTsPacketSize)
    ASSERT_EQ(ts[i], kTsSyncByte) << "packet " << i / kTsPacketSize;
}

TEST(TransportStream, MuxDemuxRoundtripsElementaryStream) {
  const auto es = make_es();
  const auto ts = mux_transport_stream(es);
  const auto d = demux_transport_stream(ts);
  EXPECT_EQ(d.video_es, es);
  EXPECT_EQ(d.continuity_errors, 0);
  EXPECT_GT(d.psi_packets, 0);
  EXPECT_EQ(d.video_pid, TsMuxConfig{}.video_pid);
  EXPECT_EQ(d.pts.size(), 9u);
}

TEST(TransportStream, CustomPidsAreDiscoveredViaPsi) {
  const auto es = make_es(3);
  TsMuxConfig cfg;
  cfg.pmt_pid = 0x0ABC;
  cfg.video_pid = 0x0DEF & 0x1FFF;
  cfg.program_number = 42;
  const auto ts = mux_transport_stream(es, cfg);
  const auto d = demux_transport_stream(ts);
  EXPECT_EQ(d.video_pid, cfg.video_pid);
  EXPECT_EQ(d.video_es, es);
}

TEST(TransportStream, PcrIsMonotoneAt27MHz) {
  const auto es = make_es(12);
  TsMuxConfig cfg;
  cfg.pcr_interval_pictures = 2;
  const auto ts = mux_transport_stream(es, cfg);
  const auto d = demux_transport_stream(ts);
  ASSERT_GE(d.pcr.size(), 5u);
  for (size_t i = 1; i < d.pcr.size(); ++i)
    EXPECT_GT(d.pcr[i], d.pcr[i - 1]);
  // Consecutive PCRs are two frame periods apart (27 MHz clock, 30 fps).
  const double expect = 2.0 * 27e6 / 30.0;
  EXPECT_NEAR(double(d.pcr[2] - d.pcr[1]), expect, 27e6 / 30.0 * 0.1);
}

TEST(TransportStream, DecodesThroughTheContainer) {
  const auto es = make_es();
  const auto ts = mux_transport_stream(es);
  const auto d = demux_transport_stream(ts);
  int frames = 0;
  mpeg2::Mpeg2Decoder dec;
  dec.decode(d.video_es,
             [&](const mpeg2::Frame&, const mpeg2::DecodedPictureInfo&) {
               ++frames;
             });
  EXPECT_EQ(frames, 9);
}

TEST(TransportStream, IgnoresNullAndForeignPackets) {
  const auto es = make_es(3);
  auto ts = mux_transport_stream(es);
  // Interleave a null packet and a foreign-PID packet after the first 10
  // packets (not between a PES's packets... insert at a packet boundary
  // after PSI; continuity per PID is untouched by foreign PIDs).
  std::vector<uint8_t> null_pkt(kTsPacketSize, 0xFF);
  null_pkt[0] = kTsSyncByte;
  null_pkt[1] = 0x1F;
  null_pkt[2] = 0xFF;
  null_pkt[3] = 0x10;
  std::vector<uint8_t> foreign(kTsPacketSize, 0xAA);
  foreign[0] = kTsSyncByte;
  foreign[1] = 0x05;  // PID 0x05xx: neither PAT, PMT nor video
  foreign[2] = 0x55;
  foreign[3] = 0x11;
  ts.insert(ts.begin() + long(kTsPacketSize) * 2, foreign.begin(),
            foreign.end());
  ts.insert(ts.begin() + long(kTsPacketSize) * 2, null_pkt.begin(),
            null_pkt.end());
  const auto d = demux_transport_stream(ts);
  EXPECT_EQ(d.video_es, es);
  EXPECT_GE(d.ignored_packets, 2);
  EXPECT_EQ(d.continuity_errors, 0);
}

TEST(TransportStream, DetectsContinuityGaps) {
  const auto es = make_es(6);
  auto ts = mux_transport_stream(es);
  // Drop one mid-stream video packet (aligned removal keeps sync).
  const size_t victim = (ts.size() / kTsPacketSize) / 2 * kTsPacketSize;
  ts.erase(ts.begin() + long(victim), ts.begin() + long(victim + kTsPacketSize));
  const auto d = demux_transport_stream(ts);
  EXPECT_GE(d.continuity_errors, 1);
}

TEST(TransportStream, MisalignedInputReportsTruncation) {
  const auto es = make_es(2);
  auto ts = mux_transport_stream(es);
  ts.pop_back();
  // A torn final packet is recorded as truncation; every whole packet before
  // it still demuxes, so the recovered video is a prefix of the original.
  const auto d = demux_transport_stream(ts);
  EXPECT_FALSE(d.status.ok());
  EXPECT_EQ(d.status.code, DecodeErr::kTruncated);
  ASSERT_FALSE(d.video_es.empty());
  ASSERT_LE(d.video_es.size(), es.size());
  EXPECT_TRUE(std::equal(d.video_es.begin(), d.video_es.end(), es.begin()));
}

TEST(TransportStream, ResynchronizesAfterLostSync) {
  const auto es = make_es(2);
  auto ts = mux_transport_stream(es);
  ts[kTsPacketSize * 3] = 0x00;  // clobber a sync byte
  const auto d = demux_transport_stream(ts);
  // The demux hunts byte-wise for the next sync byte instead of giving up.
  EXPECT_GE(d.sync_losses, 1);
  // Exactly one packet is lost; the stream after it demuxes normally.
  EXPECT_GT(d.packets, 0);
  EXPECT_FALSE(d.video_es.empty());
}

}  // namespace
}  // namespace pdw::ps
