// GM-like fabric tests: posted-receive credits, accounting, shutdown.
#include <gtest/gtest.h>

#include <thread>

#include "net/fabric.h"
#include "net/reliable.h"

namespace pdw::net {
namespace {

Message bulk_msg(int type, mem::Bytes payload) {
  Message m;
  m.type = type;
  m.bulk = true;
  m.payload = std::move(payload);
  return m;
}

TEST(Fabric, DeliversInFifoOrder) {
  Fabric f(2);
  f.post_receive(1);
  f.post_receive(1);
  f.send(0, 1, bulk_msg(1, {1, 2, 3}));
  f.send(0, 1, bulk_msg(2, {}));
  Message m;
  ASSERT_TRUE(f.receive(1, &m));
  EXPECT_EQ(m.type, 1);
  EXPECT_EQ(m.src, 0);
  EXPECT_EQ(m.payload.size(), 3u);
  ASSERT_TRUE(f.receive(1, &m));
  EXPECT_EQ(m.type, 2);
}

TEST(Fabric, BulkWithoutCreditReportsNoCredit) {
  // A flow-control overrun is no longer a hard abort: the reliable transport
  // needs to see it and back off, so it surfaces as a typed status.
  Fabric f(2);
  EXPECT_EQ(f.send(0, 1, bulk_msg(1, {})), SendStatus::kNoCredit);
  // Nothing was delivered.
  Message m;
  EXPECT_EQ(f.receive_for(1, 0.0, &m), RecvStatus::kTimeout);
}

TEST(Fabric, NonBulkNeedsNoCredit) {
  Fabric f(2);
  Message m;
  m.type = 7;
  f.send(0, 1, std::move(m));
  Message got;
  ASSERT_TRUE(f.receive(1, &got));
  EXPECT_EQ(got.type, 7);
}

TEST(Fabric, TwoBufferFlowControl) {
  // The paper's scheme: two posted buffers; a third bulk send without a
  // recycle must fail, and recycling re-enables it.
  Fabric f(2);
  f.post_receive(1);
  f.post_receive(1);
  EXPECT_EQ(f.send(0, 1, bulk_msg(1, {})), SendStatus::kOk);
  EXPECT_EQ(f.send(0, 1, bulk_msg(2, {})), SendStatus::kOk);
  EXPECT_EQ(f.send(0, 1, bulk_msg(3, {})), SendStatus::kNoCredit);
  Message m;
  ASSERT_TRUE(f.receive(1, &m));
  f.post_receive(1);  // recycle
  EXPECT_EQ(f.send(0, 1, bulk_msg(3, {})), SendStatus::kOk);
}

TEST(Fabric, CountersTrackBothDirections) {
  Fabric f(3);
  f.post_receive(2);
  f.send(1, 2, bulk_msg(1, mem::Bytes::filled(100, 0)));
  const NodeCounters sender = f.counters(1);
  const NodeCounters receiver = f.counters(2);
  EXPECT_EQ(sender.sent_bytes, 100 + Message::kHeaderBytes);
  EXPECT_EQ(sender.sent_messages, 1u);
  EXPECT_EQ(sender.recv_bytes, 0u);
  EXPECT_EQ(receiver.recv_bytes, 100 + Message::kHeaderBytes);
  EXPECT_EQ(receiver.recv_messages, 1u);
}

TEST(Fabric, TrafficMatrix) {
  Fabric f(3);
  Message m;
  m.payload = mem::Bytes::filled(84, 0);  // 100 bytes on the wire
  f.send(0, 2, std::move(m));
  const auto traffic = f.traffic_matrix();
  EXPECT_EQ(traffic.at(0, 2), 100u);
  EXPECT_EQ(traffic.at(2, 0), 0u);
}

TEST(Fabric, ConservationOfBytes) {
  Fabric f(4);
  for (int i = 0; i < 20; ++i) {
    Message m;
    m.payload = mem::Bytes::filled(size_t(i * 13 % 50), 0);
    f.send(i % 4, (i + 1) % 4, std::move(m));
  }
  uint64_t sent = 0, recv = 0;
  for (int n = 0; n < 4; ++n) {
    sent += f.counters(n).sent_bytes;
    recv += f.counters(n).recv_bytes;
  }
  EXPECT_EQ(sent, recv);
}

TEST(Fabric, BlockingReceiveWakesOnSend) {
  Fabric f(2);
  Message got;
  std::thread receiver([&] { ASSERT_TRUE(f.receive(1, &got)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Message m;
  m.type = 9;
  f.send(0, 1, std::move(m));
  receiver.join();
  EXPECT_EQ(got.type, 9);
}

TEST(Fabric, ShutdownUnblocksReceivers) {
  Fabric f(2);
  bool result = true;
  std::thread receiver([&] {
    Message m;
    result = f.receive(1, &m);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  f.shutdown();
  receiver.join();
  EXPECT_FALSE(result);
}

TEST(Fabric, TimedReceiveTimesOutAndStillDelivers) {
  Fabric f(2);
  Message m;
  EXPECT_EQ(f.receive_for(1, 0.005, &m), RecvStatus::kTimeout);
  Message s;
  s.type = 4;
  f.send(0, 1, std::move(s));
  EXPECT_EQ(f.receive_for(1, 0.005, &m), RecvStatus::kOk);
  EXPECT_EQ(m.type, 4);
}

TEST(Fabric, KilledNodeLosesQueueAndGoesSilent) {
  Fabric f(3);
  Message s;
  s.type = 1;
  f.send(0, 1, std::move(s));
  f.kill(1);
  EXPECT_TRUE(f.is_dead(1));
  // Receives at the corpse report kDead, even though a message was queued.
  Message m;
  EXPECT_EQ(f.receive_for(1, 0.0, &m), RecvStatus::kDead);
  EXPECT_FALSE(f.receive(1, &m));
  // Sends to it vanish silently — the network does not tell the sender.
  Message s2;
  s2.type = 2;
  EXPECT_EQ(f.send(0, 1, std::move(s2)), SendStatus::kOk);
  // Sends *from* it are refused: a dead node cannot transmit.
  Message s3;
  s3.type = 3;
  EXPECT_EQ(f.send(1, 2, std::move(s3)), SendStatus::kSrcDead);
  f.kill(1);  // idempotent
}

TEST(Fabric, InjectedDropIsCountedAndInvisibleToSender) {
  FaultInjector inj;
  inj.add_event(
      {.kind = FaultEvent::Kind::kDrop, .src = 0, .dst = 1, .at_ordinal = 0});
  Fabric f(2);
  f.set_fault_injector(&inj);
  Message a;
  a.type = 1;
  EXPECT_EQ(f.send(0, 1, std::move(a)), SendStatus::kOk);  // dropped silently
  Message b;
  b.type = 2;
  EXPECT_EQ(f.send(0, 1, std::move(b)), SendStatus::kOk);
  Message m;
  ASSERT_EQ(f.receive_for(1, 0.05, &m), RecvStatus::kOk);
  EXPECT_EQ(m.type, 2);  // only the second message arrived
  EXPECT_EQ(f.counters(1).dropped_messages, 1u);
  EXPECT_EQ(f.receive_for(1, 0.0, &m), RecvStatus::kTimeout);
}

TEST(Fabric, DelayedMessageReleasedByTimeout) {
  FaultInjector inj;
  inj.add_event({.kind = FaultEvent::Kind::kDelay,
                 .src = 0,
                 .dst = 1,
                 .at_ordinal = 0,
                 .param = 100});  // hold ~forever
  Fabric f(2);
  f.set_fault_injector(&inj);
  Message a;
  a.type = 1;
  f.send(0, 1, std::move(a));
  Message m;
  // A blocked receiver's timeout force-releases the parked message — it
  // arrives "late" instead of never, which keeps the fabric live.
  ASSERT_EQ(f.receive_for(1, 0.002, &m), RecvStatus::kOk);
  EXPECT_EQ(m.type, 1);
}

TEST(FaultInjector, DecisionsAreDeterministic) {
  const FaultRates rates{.drop = 0.3, .dup = 0.2, .corrupt = 0.2, .delay = 0.2};
  FaultInjector a(1234, rates), b(1234, rates), c(99, rates);
  int diff_from_c = 0;
  for (uint64_t ord = 0; ord < 200; ++ord) {
    const auto da = a.decide(0, 1, ord, ord, 64);
    const auto db = b.decide(0, 1, ord, ord, 64);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.dup, db.dup);
    EXPECT_EQ(da.corrupt, db.corrupt);
    EXPECT_EQ(da.delay_hold, db.delay_hold);
    const auto dc = c.decide(0, 1, ord, ord, 64);
    diff_from_c += (da.drop != dc.drop) || (da.dup != dc.dup);
  }
  EXPECT_GT(diff_from_c, 0);  // a different seed gives a different schedule
}

TEST(FaultInjector, CorruptPayloadChangesBytesDeterministically) {
  FaultInjector inj(7, FaultRates{.corrupt_bytes = 4});
  std::vector<uint8_t> p1(64, 0xAB), p2(64, 0xAB);
  inj.corrupt_payload(0, 1, 5, p1);
  inj.corrupt_payload(0, 1, 5, p2);
  EXPECT_NE(p1, std::vector<uint8_t>(64, 0xAB));  // actually flipped bytes
  EXPECT_EQ(p1, p2);                              // identically per replay
}

TEST(FaultInjector, StreamTagIsolatesSchedulesStream0IsLegacy) {
  const FaultRates rates{.drop = 0.3, .dup = 0.2, .corrupt = 0.2, .delay = 0.2};
  FaultInjector inj(1234, rates);
  int diff_across_streams = 0;
  for (uint64_t ord = 0; ord < 200; ++ord) {
    // Stream 0 keys exactly as the pre-multi-stream scheme: old seeds replay.
    const auto legacy = inj.decide(0, 1, ord, ord, 64);
    const auto s0 = inj.decide(0, 1, ord, ord, 64, /*stream=*/0);
    EXPECT_EQ(legacy.drop, s0.drop);
    EXPECT_EQ(legacy.dup, s0.dup);
    EXPECT_EQ(legacy.corrupt, s0.corrupt);
    EXPECT_EQ(legacy.delay_hold, s0.delay_hold);
    // Another stream on the same link draws an independent schedule.
    const auto s1 = inj.decide(0, 1, ord, ord, 64, /*stream=*/1);
    diff_across_streams += (s0.drop != s1.drop) || (s0.dup != s1.dup) ||
                           (s0.delay_hold != s1.delay_hold);
  }
  EXPECT_GT(diff_across_streams, 0);
}

TEST(Fabric, StreamScheduleIsIndependentOfInterleaving) {
  // Drop exactly stream 1's second message on link 0->1. However much
  // stream-0 traffic interleaves with it, the same stream-1 message must
  // meet that fate — per-(link, stream) ordinals make schedules composable
  // with multi-stream sessions.
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::kDrop;
  ev.src = 0;
  ev.dst = 1;
  ev.at_ordinal = 1;
  ev.stream = 1;
  for (int burst : {0, 1, 5}) {
    FaultInjector inj;
    inj.add_event(ev);
    Fabric f(2);
    f.set_fault_injector(&inj);
    const auto send = [&](uint8_t stream, int type) {
      Message m;
      m.type = type;
      m.stream = stream;
      ASSERT_EQ(f.send(0, 1, std::move(m)), SendStatus::kOk);
    };
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < burst; ++j) send(0, 7);
      send(1, 100 + i);
    }
    std::vector<int> stream1_types;
    Message m;
    while (f.receive_for(1, 0.0, &m) == RecvStatus::kOk)
      if (m.stream == 1) stream1_types.push_back(m.type);
    EXPECT_EQ(stream1_types, (std::vector<int>{100, 102}))
        << "burst=" << burst;
    // Stream 0 was never touched by stream 1's schedule.
    EXPECT_EQ(f.counters(1).dropped_messages, 1u) << "burst=" << burst;
  }
}

TEST(Crc32, DetectsCorruption) {
  std::vector<uint8_t> data(256);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i * 31);
  const uint32_t good = crc32(data);
  EXPECT_EQ(crc32(data), good);  // stable
  data[100] ^= 0x40;
  EXPECT_NE(crc32(data), good);  // single-bit flip detected
  // Known-answer check: CRC-32 of "123456789" is 0xCBF43926.
  const uint8_t kCheck[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(kCheck), 0xCBF43926u);
}

TEST(Reliable, AbandonedHoleIsSkippedAfterTimeout) {
  // An abandoned send leaves a hole in the tseq space; in-order delivery
  // must not wait on it forever. Drop every transmission of message A
  // (link ordinals 0 and 2 — B's initial send takes ordinal 1) so the
  // sender abandons it, then check the receiver eventually concedes the
  // hole and delivers B.
  FaultInjector inj;
  inj.add_event(
      {.kind = FaultEvent::Kind::kDrop, .src = 0, .dst = 1, .at_ordinal = 0});
  inj.add_event(
      {.kind = FaultEvent::Kind::kDrop, .src = 0, .dst = 1, .at_ordinal = 2});
  Fabric f(2);
  f.set_fault_injector(&inj);
  ReliableConfig cfg;
  cfg.rto_initial_s = 0.002;
  cfg.rto_max_s = 0.004;
  cfg.max_retries = 1;  // A: initial + one retry, both dropped -> abandoned
  cfg.hole_timeout_s = 0.05;
  ReliableEndpoint tx(&f, 0, cfg);
  ReliableEndpoint rx(&f, 1, cfg);

  Message a;
  a.type = 1;
  tx.send(1, std::move(a));
  Message b;
  b.type = 2;
  tx.send(1, std::move(b));

  Message got;
  bool delivered = false;
  for (int i = 0; i < 400 && !delivered; ++i) {
    Message m;
    tx.recv(&m, 0.002);  // drives retransmit deadlines and eats t-acks
    delivered = rx.recv(&got, 0.002) == ReliableEndpoint::Status::kMessage;
  }
  ASSERT_TRUE(delivered);
  EXPECT_EQ(got.type, 2);
  EXPECT_EQ(rx.stats().holes, 1u);
  EXPECT_EQ(tx.stats().abandoned, 1u);
  const auto abandoned = tx.take_abandoned();
  ASSERT_EQ(abandoned.size(), 1u);
  EXPECT_EQ(abandoned[0].type, 1);
  EXPECT_EQ(abandoned[0].dst, 1);
}

}  // namespace
}  // namespace pdw::net
