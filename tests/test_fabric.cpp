// GM-like fabric tests: posted-receive credits, accounting, shutdown.
#include <gtest/gtest.h>

#include <thread>

#include "net/fabric.h"

namespace pdw::net {
namespace {

Message bulk_msg(int type, std::vector<uint8_t> payload) {
  Message m;
  m.type = type;
  m.bulk = true;
  m.payload = std::move(payload);
  return m;
}

TEST(Fabric, DeliversInFifoOrder) {
  Fabric f(2);
  f.post_receive(1);
  f.post_receive(1);
  f.send(0, 1, bulk_msg(1, {1, 2, 3}));
  f.send(0, 1, bulk_msg(2, {}));
  Message m;
  ASSERT_TRUE(f.receive(1, &m));
  EXPECT_EQ(m.type, 1);
  EXPECT_EQ(m.src, 0);
  EXPECT_EQ(m.payload.size(), 3u);
  ASSERT_TRUE(f.receive(1, &m));
  EXPECT_EQ(m.type, 2);
}

TEST(Fabric, BulkWithoutCreditIsAProtocolViolation) {
  Fabric f(2);
  EXPECT_THROW(f.send(0, 1, bulk_msg(1, {})), CheckError);
}

TEST(Fabric, NonBulkNeedsNoCredit) {
  Fabric f(2);
  Message m;
  m.type = 7;
  f.send(0, 1, std::move(m));
  Message got;
  ASSERT_TRUE(f.receive(1, &got));
  EXPECT_EQ(got.type, 7);
}

TEST(Fabric, TwoBufferFlowControl) {
  // The paper's scheme: two posted buffers; a third bulk send without a
  // recycle must fail, and recycling re-enables it.
  Fabric f(2);
  f.post_receive(1);
  f.post_receive(1);
  f.send(0, 1, bulk_msg(1, {}));
  f.send(0, 1, bulk_msg(2, {}));
  EXPECT_THROW(f.send(0, 1, bulk_msg(3, {})), CheckError);
  Message m;
  ASSERT_TRUE(f.receive(1, &m));
  f.post_receive(1);  // recycle
  f.send(0, 1, bulk_msg(3, {}));
}

TEST(Fabric, CountersTrackBothDirections) {
  Fabric f(3);
  f.post_receive(2);
  f.send(1, 2, bulk_msg(1, std::vector<uint8_t>(100)));
  const NodeCounters sender = f.counters(1);
  const NodeCounters receiver = f.counters(2);
  EXPECT_EQ(sender.sent_bytes, 100 + Message::kHeaderBytes);
  EXPECT_EQ(sender.sent_messages, 1u);
  EXPECT_EQ(sender.recv_bytes, 0u);
  EXPECT_EQ(receiver.recv_bytes, 100 + Message::kHeaderBytes);
  EXPECT_EQ(receiver.recv_messages, 1u);
}

TEST(Fabric, TrafficMatrix) {
  Fabric f(3);
  Message m;
  m.payload.resize(84);  // 100 bytes on the wire
  f.send(0, 2, std::move(m));
  const auto traffic = f.traffic_matrix();
  EXPECT_EQ(traffic[0 * 3 + 2], 100u);
  EXPECT_EQ(traffic[2 * 3 + 0], 0u);
}

TEST(Fabric, ConservationOfBytes) {
  Fabric f(4);
  for (int i = 0; i < 20; ++i) {
    Message m;
    m.payload.resize(size_t(i * 13 % 50));
    f.send(i % 4, (i + 1) % 4, std::move(m));
  }
  uint64_t sent = 0, recv = 0;
  for (int n = 0; n < 4; ++n) {
    sent += f.counters(n).sent_bytes;
    recv += f.counters(n).recv_bytes;
  }
  EXPECT_EQ(sent, recv);
}

TEST(Fabric, BlockingReceiveWakesOnSend) {
  Fabric f(2);
  Message got;
  std::thread receiver([&] { ASSERT_TRUE(f.receive(1, &got)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Message m;
  m.type = 9;
  f.send(0, 1, std::move(m));
  receiver.join();
  EXPECT_EQ(got.type, 9);
}

TEST(Fabric, ShutdownUnblocksReceivers) {
  Fabric f(2);
  bool result = true;
  std::thread receiver([&] {
    Message m;
    result = f.receive(1, &m);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  f.shutdown();
  receiver.join();
  EXPECT_FALSE(result);
}

}  // namespace
}  // namespace pdw::net
