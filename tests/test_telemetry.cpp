// Cluster telemetry sideband (DESIGN.md §13): the NTP-style clock estimator
// must recover a known offset exactly from symmetric probes and stay within
// 2x min-RTT of the truth under deterministic one-way delay (ImpairProxy);
// the wire codec must round-trip every record type and reject every
// truncation; a live exporter/collector pair must merge a skewed process
// into the collector clock domain; the flight recorder must produce a
// parseable post-mortem; and an in-process 7-node socket wall must stream
// itself into ONE merged multi-pid trace.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/socket_wall.h"
#include "enc/encoder.h"
#include "net/impair.h"
#include "net/socket_fabric.h"
#include "obs/collector.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "video/generator.h"
#include "wall/geometry.h"

namespace pdw {
namespace {

using obs::ClockEstimator;
using obs::Collector;
using obs::TelemetryEndpoint;
using obs::TelemetryExporter;
using obs::TelemetryExporterConfig;
using obs::TelemetryFrame;

// ---------------------------------------------------------------------------
// ClockEstimator: exact math on hand-built probe quadruples.
// ---------------------------------------------------------------------------

TEST(ClockEstimator, SymmetricProbeRecoversOffsetExactly) {
  // Remote = local + 5000, one-way delay 100 ns each leg.
  ClockEstimator est;
  est.add_sample(/*t0=*/1000, /*t1=*/6100, /*t2=*/6150, /*t3=*/1250);
  ASSERT_TRUE(est.valid());
  EXPECT_EQ(est.offset_ns(), 5000);
  EXPECT_EQ(est.min_rtt_ns(), 200u);  // (t3-t0) - (t2-t1)
  EXPECT_EQ(est.samples(), 1u);
}

TEST(ClockEstimator, MinimumRttSampleWins) {
  ClockEstimator est;
  est.add_sample(1000, 6100, 6150, 1250);  // offset 5000, rtt 200
  // A slower probe (rtt 900) reporting a different offset must not displace
  // the estimate...
  est.add_sample(2000, 9000, 9100, 3000);  // offset 6550, rtt 900
  EXPECT_EQ(est.offset_ns(), 5000);
  EXPECT_EQ(est.min_rtt_ns(), 200u);
  EXPECT_EQ(est.samples(), 2u);
  // ...but a faster one (rtt 20) does.
  est.add_sample(5000, 9810, 9820, 5030);  // offset 4800, rtt 20
  EXPECT_EQ(est.offset_ns(), 4800);
  EXPECT_EQ(est.min_rtt_ns(), 20u);
  EXPECT_EQ(est.samples(), 3u);
}

TEST(ClockEstimator, GarbageNegativeRttSampleIgnored) {
  ClockEstimator est;
  // Remote hold time (t2-t1 = 1000) exceeds the measured round trip
  // (t3-t0 = 50): impossible, computed rtt is negative.
  est.add_sample(100, 1000, 2000, 150);
  EXPECT_FALSE(est.valid());
  EXPECT_EQ(est.samples(), 0u);
  EXPECT_EQ(est.min_rtt_ns(), 0u);
}

TEST(ClockEstimator, NegativeOffsetRecovered) {
  // Remote = local - 5000, one-way delay 100 ns.
  ClockEstimator est;
  est.add_sample(10000, 5100, 5150, 10250);
  ASSERT_TRUE(est.valid());
  EXPECT_EQ(est.offset_ns(), -5000);
  EXPECT_EQ(est.min_rtt_ns(), 200u);
}

// ---------------------------------------------------------------------------
// Wire codec: round trip and adversarial truncation.
// ---------------------------------------------------------------------------

TelemetryFrame full_frame() {
  TelemetryFrame f;
  f.token = 0xDEADBEEFCAFE1234ull;
  f.seq = 42;
  obs::HelloRecord hello;
  hello.os_pid = 1234;
  hello.k = 2;
  hello.tiles = 4;
  hello.nodes = 7;
  hello.hosted = {3, 4};
  f.hello = hello;
  obs::MetricRecord c;
  c.family = "pictures_decoded";
  c.node = 3;
  c.stream = 0;
  c.kind = obs::MetricKind::kCounter;
  c.count = 17;
  obs::MetricRecord g;
  g.family = "queue_depth";
  g.node = -1;
  g.stream = -1;
  g.kind = obs::MetricKind::kGauge;
  g.gauge = -5;
  obs::MetricRecord h;
  h.family = "rtt_ns";
  h.node = 4;
  h.kind = obs::MetricKind::kHistogram;
  h.count = 3;
  h.sum = 7000;
  h.buckets = {{11, 2}, {12, 1}};
  f.metrics = {c, g, h};
  obs::SpanRecord s1;
  s1.name = "decode_sp";
  s1.ph = 'X';
  s1.pid = 3;
  s1.tid = 1;
  s1.ts_ns = 1000;
  s1.dur_ns = 250;
  s1.pic = 7;
  obs::SpanRecord s2;
  s2.name = "adopt_tile";
  s2.ph = 'i';
  s2.pid = 4;
  s2.ts_ns = 2000;
  f.spans = {s1, s2};
  obs::ClockProbeRecord p;
  p.seq = 9;
  p.t0 = 5555;
  p.reply_to = {obs::kTelemetryLoopbackIp, 47999};
  f.probes = {p};
  obs::ClockReplyRecord r;
  r.seq = 9;
  r.t0 = 5555;
  r.t1 = 6000;
  r.t2 = 6001;
  f.replies = {r};
  obs::OffsetRecord o;
  o.offset_ns = -123456;
  o.min_rtt_ns = 789;
  o.samples = 6;
  o.valid = 1;
  f.offset = o;
  f.bye = true;
  return f;
}

TEST(TelemetryCodec, RoundTripsEveryRecordType) {
  const TelemetryFrame f = full_frame();
  const std::vector<uint8_t> wire = obs::encode_frame(f);
  TelemetryFrame d;
  ASSERT_TRUE(obs::decode_frame(wire.data(), wire.size(), &d));

  EXPECT_EQ(d.token, f.token);
  EXPECT_EQ(d.seq, f.seq);
  ASSERT_TRUE(d.hello.has_value());
  EXPECT_EQ(d.hello->os_pid, 1234u);
  EXPECT_EQ(d.hello->k, 2);
  EXPECT_EQ(d.hello->tiles, 4);
  EXPECT_EQ(d.hello->nodes, 7);
  EXPECT_EQ(d.hello->hosted, (std::vector<uint16_t>{3, 4}));
  ASSERT_EQ(d.metrics.size(), 3u);
  EXPECT_EQ(d.metrics[0].family, "pictures_decoded");
  EXPECT_EQ(d.metrics[0].count, 17u);
  EXPECT_EQ(d.metrics[1].gauge, -5);
  EXPECT_EQ(d.metrics[2].buckets,
            (std::vector<std::pair<uint8_t, uint64_t>>{{11, 2}, {12, 1}}));
  ASSERT_EQ(d.spans.size(), 2u);
  EXPECT_EQ(d.spans[0].name, "decode_sp");
  EXPECT_EQ(d.spans[0].ph, 'X');
  EXPECT_EQ(d.spans[0].dur_ns, 250u);
  EXPECT_EQ(d.spans[0].pic, 7u);
  EXPECT_EQ(d.spans[1].ph, 'i');
  ASSERT_EQ(d.probes.size(), 1u);
  EXPECT_EQ(d.probes[0].t0, 5555u);
  EXPECT_EQ(d.probes[0].reply_to.port, 47999);
  ASSERT_EQ(d.replies.size(), 1u);
  EXPECT_EQ(d.replies[0].t1, 6000u);
  ASSERT_TRUE(d.offset.has_value());
  EXPECT_EQ(d.offset->offset_ns, -123456);
  EXPECT_EQ(d.offset->min_rtt_ns, 789u);
  EXPECT_EQ(d.offset->valid, 1);
  EXPECT_TRUE(d.bye);
}

TEST(TelemetryCodec, EveryTruncationRejectedWithoutCrashing) {
  const std::vector<uint8_t> wire = obs::encode_frame(full_frame());
  ASSERT_GT(wire.size(), 22u);
  for (size_t len = 0; len < wire.size(); ++len) {
    TelemetryFrame d;
    EXPECT_FALSE(obs::decode_frame(wire.data(), len, &d))
        << "prefix of " << len << " bytes decoded as a full frame";
  }
}

TEST(TelemetryCodec, CorruptMagicRejected) {
  std::vector<uint8_t> wire = obs::encode_frame(full_frame());
  wire[0] ^= 0xFF;
  TelemetryFrame d;
  EXPECT_FALSE(obs::decode_frame(wire.data(), wire.size(), &d));
}

// ---------------------------------------------------------------------------
// Live exporter -> collector, loopback.
// ---------------------------------------------------------------------------

// Polls `pred` until it holds or ~2 s elapse (collector runs on a background
// thread; datagrams need a moment to land).
bool eventually(const std::function<bool()>& pred) {
  for (int i = 0; i < 200; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// True collector-minus-exporter clock offset, bracketed by two local reads;
// *slack_ns bounds the measurement's own uncertainty.
int64_t truth_offset_ns(const Collector& c, const TelemetryExporter& e,
                        uint64_t* slack_ns) {
  const uint64_t a = e.local_now_ns();
  const uint64_t mid = c.now_ns();
  const uint64_t b = e.local_now_ns();
  *slack_ns = b - a;
  return int64_t(mid) - int64_t((a + b) / 2);
}

TEST(TelemetrySideband, SkewedProcessMergesIntoCollectorDomain) {
  Collector collector;
  ASSERT_TRUE(collector.ok());
  collector.start();

  obs::Tracer tracer;
  tracer.enable(size_t(1) << 12);
  tracer.set_epoch_offset_ns(37'000'000);  // node clock runs 37 ms ahead
  obs::MetricsRegistry reg;
  reg.counter("pictures_decoded", {.node = 2, .stream = 0}).add(42);
  reg.histogram("decode_ns", {.node = 2}).observe(4096);
  tracer.record(obs::span::kDecodeSp, 2, tracer.now_ns(), 1000, 3);

  TelemetryExporterConfig cfg;
  cfg.collector = collector.endpoint();
  cfg.probe_wait_s = 0.05;
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  cfg.k = 1;
  cfg.tiles = 1;
  cfg.nodes = 3;
  cfg.hosted = {0, 1, 2};
  TelemetryExporter exporter(cfg);
  for (int i = 0; i < 5; ++i) exporter.flush();

  const ClockEstimator clk = exporter.clock();
  ASSERT_TRUE(clk.valid());
  ASSERT_GT(clk.min_rtt_ns(), 0u);
  uint64_t slack = 0;
  const int64_t truth = truth_offset_ns(collector, exporter, &slack);
  const int64_t err = clk.offset_ns() - truth;
  EXPECT_LE(uint64_t(err < 0 ? -err : err), 2 * clk.min_rtt_ns() + slack)
      << "estimate " << clk.offset_ns() << " truth " << truth << " min_rtt "
      << clk.min_rtt_ns();

  exporter.stop();  // final flush + Bye
  ASSERT_TRUE(eventually([&] {
    const auto procs = collector.processes();
    return procs.size() == 1 && procs[0].bye;
  }));
  const auto procs = collector.processes();
  ASSERT_EQ(procs.size(), 1u);
  EXPECT_EQ(procs[0].token, exporter.token());
  EXPECT_EQ(procs[0].nodes, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(procs[0].offset_valid);
  // The final flush inside stop() probes once more, so the collector holds
  // the *post-stop* estimate.
  EXPECT_EQ(procs[0].offset_ns, exporter.clock().offset_ns());
  EXPECT_GE(procs[0].span_events, 1u);
  EXPECT_TRUE(collector.all_nodes_seen());
  EXPECT_TRUE(collector.all_bye());
  const obs::MetricsSnapshot merged = collector.merged_metrics();
  EXPECT_EQ(merged.counter_total("pictures_decoded"), 42u);
  collector.stop();
}

// The acceptance bound from the issue: under a deterministic one-way delay
// (the forward leg runs through an ImpairProxy that holds every datagram
// 3 ms, replies come back direct), the estimated offset must stay within
// 2x min-RTT of the true skew. The probe's reply_to field is what makes
// this work at all — the proxy forwards one way only, so the collector
// must answer the exporter's socket directly.
TEST(TelemetrySideband, OffsetWithinTwoMinRttUnderAsymmetricDelay) {
  Collector collector;
  ASSERT_TRUE(collector.ok());
  collector.start();

  net::ImpairConfig icfg;
  icfg.seed = 7;
  icfg.delay = 1.0;  // hold every forwarded datagram...
  icfg.delay_s = 0.003;  // ...for 3 ms
  net::ImpairProxy proxy(
      {net::Endpoint{net::kLoopbackIp, collector.endpoint().port}}, icfg);
  const net::Endpoint front = proxy.proxied()[0];

  obs::Tracer tracer;
  tracer.enable(size_t(1) << 12);
  tracer.set_epoch_offset_ns(91'000'000);
  obs::MetricsRegistry reg;

  TelemetryExporterConfig cfg;
  cfg.collector = {obs::kTelemetryLoopbackIp, front.port};
  cfg.probe_wait_s = 0.05;
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  cfg.nodes = 1;
  cfg.hosted = {0};
  TelemetryExporter exporter(cfg);
  exporter.set_reply_to(exporter.local_endpoint());
  for (int i = 0; i < 6; ++i) exporter.flush();

  const ClockEstimator clk = exporter.clock();
  ASSERT_TRUE(clk.valid());
  // The 3 ms held leg is physically real: the best observed RTT cannot beat
  // it.
  EXPECT_GE(clk.min_rtt_ns(), 2'500'000u);
  uint64_t slack = 0;
  const int64_t truth = truth_offset_ns(collector, exporter, &slack);
  const int64_t err = clk.offset_ns() - truth;
  EXPECT_LE(uint64_t(err < 0 ? -err : err), 2 * clk.min_rtt_ns() + slack)
      << "estimate " << clk.offset_ns() << " truth " << truth << " min_rtt "
      << clk.min_rtt_ns();

  exporter.stop();
  proxy.stop();
  collector.stop();
}

// ---------------------------------------------------------------------------
// Flight recorder: a dump is a parseable post-mortem and the budget holds.
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, DumpHoldsSpansWireAndMetricsAndBudgetCaps) {
  obs::FlightRecorder& fr = obs::FlightRecorder::global();
  obs::FlightRecorder::Config cfg;
  cfg.dir = ::testing::TempDir();
  cfg.node = 5;
  cfg.max_dumps = 2;
  fr.configure(cfg);  // enables the global tracer if off
  ASSERT_TRUE(fr.enabled());
  ASSERT_TRUE(obs::Tracer::global().enabled());

  obs::Tracer& tr = obs::Tracer::global();
  tr.record(obs::span::kDecodeSp, 5, tr.now_ns(), 2000, 11);
  fr.note_wire(/*tx=*/true, /*self=*/5, /*peer=*/0, /*msg_type=*/3,
               /*seq=*/77, /*aux=*/11, /*bytes=*/1500);
  fr.note_wire(false, 5, 1, 4, 78, 11, 900);

  const std::string path = fr.dump("black_box_test");
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string dump = ss.str();
  EXPECT_NE(dump.find("black_box_test"), std::string::npos);
  EXPECT_NE(dump.find("\"spans\""), std::string::npos);
  EXPECT_NE(dump.find("\"wire\""), std::string::npos);
  EXPECT_NE(dump.find("\"metrics\""), std::string::npos);
  EXPECT_NE(dump.find("decode_sp"), std::string::npos);

  // max_dumps = 2: the second dump lands, the third is refused.
  EXPECT_FALSE(fr.dump("second").empty());
  EXPECT_TRUE(fr.dump("third").empty());
  EXPECT_EQ(fr.dumps_written(), 2u);
}

// ---------------------------------------------------------------------------
// End to end: an in-process 7-node socket wall streaming itself into one
// merged multi-pid trace.
// ---------------------------------------------------------------------------

std::vector<uint8_t> tiny_stream(int w, int h, int frames) {
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, w, h, 21);
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 6;
  cfg.b_frames = 2;
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
}

TEST(TelemetrySideband, SocketWallStreamsOneMergedTrace) {
  obs::Tracer::global().enable(size_t(1) << 15);
  Collector collector;
  ASSERT_TRUE(collector.ok());
  collector.start();

  const int w = 256, h = 192, k = 2;
  const auto es = tiny_stream(w, h, 8);
  wall::TileGeometry geo(w, h, 2, 2, 0);

  obs::MetricsRegistry reg;
  core::SocketWallOptions so;
  so.metrics = &reg;
  so.telemetry_port = collector.endpoint().port;
  so.telemetry_interval_s = 0.05;
  core::run_socket_wall(geo, k, es, nullptr, so);
  // The final flush + Bye datagrams may still be queued on the collector
  // socket when the wall returns; let the receive loop drain them.
  ASSERT_TRUE(eventually(
      [&] { return collector.all_nodes_seen() && collector.all_bye(); }));
  collector.stop();

  // One process hosting all 7 nodes, seen and said goodbye.
  EXPECT_EQ(collector.k(), 2);
  EXPECT_EQ(collector.tiles(), 4);
  EXPECT_EQ(collector.nodes_expected(), 7);
  EXPECT_TRUE(collector.all_nodes_seen());
  EXPECT_TRUE(collector.all_bye());
  const auto procs = collector.processes();
  ASSERT_EQ(procs.size(), 1u);
  EXPECT_EQ(procs[0].nodes, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_GT(procs[0].span_events, 0u);
  EXPECT_GT(collector.merged_metrics().counter_total("pictures_decoded"), 0u);

  const std::string path = ::testing::TempDir() + "merged_wall_trace.json";
  ASSERT_TRUE(collector.write_merged_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string trace = ss.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("pic_flow"), std::string::npos);  // cross-pid flows
  EXPECT_NE(trace.find("process_name"), std::string::npos);
  EXPECT_NE(trace.find("clockOffsets"), std::string::npos);
}

}  // namespace
}  // namespace pdw
