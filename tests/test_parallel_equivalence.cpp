// THE core invariant of the whole system (DESIGN.md §5.1):
// for every tiling configuration (m, n, k, overlap) and every stream class,
// the assembled output of the hierarchical parallel decoder is bit-exact
// with the serial reference decoder, frame by frame.
//
// This exercises the full chain: root picture split -> macroblock split with
// SPH state propagation -> MEI remote-macroblock pre-calculation -> tile
// decode with halo MC -> wall assembly.
#include <gtest/gtest.h>

#include <map>

#include "core/lockstep.h"
#include "core/mb_splitter.h"
#include "core/pipeline.h"
#include "core/socket_wall.h"
#include "core/root_splitter.h"
#include "enc/encoder.h"
#include "mem/bytes.h"
#include "mpeg2/decoder.h"
#include "obs/metrics.h"
#include "video/generator.h"
#include "wall/assembler.h"

namespace pdw {
namespace {

using core::LockstepPipeline;
using core::TileDisplayInfo;
using mpeg2::Frame;
using video::SceneKind;

std::vector<uint8_t> make_stream(int w, int h, SceneKind scene, int frames,
                                 const std::function<void(enc::EncoderConfig&)>&
                                     tweak = nullptr,
                                 uint64_t seed = 3) {
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 8;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.4;
  cfg.me_range = 15;  // large vectors force cross-tile references
  if (tweak) tweak(cfg);
  const auto gen = video::make_scene(scene, w, h, seed);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, Frame* f) { gen->render(i, f); });
}

// Decode serially, returning frames in display order.
std::vector<Frame> serial_decode(const std::vector<uint8_t>& es) {
  std::vector<Frame> out;
  mpeg2::Mpeg2Decoder dec;
  dec.decode(es, [&](const Frame& f, const mpeg2::DecodedPictureInfo&) {
    out.push_back(f);
  });
  return out;
}

// Run the lockstep parallel pipeline, assembling wall frames per display
// index; verify coverage and overlap consistency along the way.
std::vector<Frame> parallel_decode(const std::vector<uint8_t>& es,
                                   const wall::TileGeometry& geo, int k) {
  LockstepPipeline pipeline(geo, k, es);
  // Collect tiles per display index; assemble when all tiles arrived.
  struct Pending {
    std::unique_ptr<wall::WallAssembler> assembler;
    int tiles = 0;
  };
  std::map<int, Pending> pending;
  std::vector<Frame> out;
  std::map<int, Frame> finished;
  int next_emit = 0;

  pipeline.run(
      [&](int tile, const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
        Pending& p = pending[info.display_index];
        if (!p.assembler)
          p.assembler = std::make_unique<wall::WallAssembler>(geo);
        p.assembler->add_tile(tile, tf);
        if (++p.tiles == geo.tiles()) {
          p.assembler->check_coverage();
          finished.emplace(info.display_index, p.assembler->frame());
          pending.erase(info.display_index);
        }
      },
      nullptr);

  EXPECT_TRUE(pending.empty()) << "incomplete wall frames";
  while (finished.count(next_emit)) {
    out.push_back(std::move(finished.at(next_emit)));
    finished.erase(next_emit);
    ++next_emit;
  }
  EXPECT_TRUE(finished.empty());
  return out;
}

void expect_bit_exact(const std::vector<uint8_t>& es,
                      const wall::TileGeometry& geo, int k) {
  const std::vector<Frame> serial = serial_decode(es);
  const std::vector<Frame> parallel = parallel_decode(es, geo, k);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    // Compare the display region (tiles only cover display pixels; the
    // frames are MB-aligned so compare the crop).
    const Frame a = wall::crop_frame(serial[i], geo.width(), geo.height());
    const Frame b = wall::crop_frame(parallel[i], geo.width(), geo.height());
    ASSERT_EQ(a.y, b.y) << "luma mismatch at display frame " << i;
    ASSERT_EQ(a.cb, b.cb) << "cb mismatch at display frame " << i;
    ASSERT_EQ(a.cr, b.cr) << "cr mismatch at display frame " << i;
  }
}

// ---------------------------------------------------------------------------
// Parameterized sweep over screen configurations.
// ---------------------------------------------------------------------------

struct ConfigParam {
  int m, n, k, overlap;
};

class ParallelEquivalence : public ::testing::TestWithParam<ConfigParam> {};

TEST_P(ParallelEquivalence, MovingObjectsStreamBitExact) {
  const ConfigParam p = GetParam();
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, SceneKind::kMovingObjects, 10);
  wall::TileGeometry geo(w, h, p.m, p.n, p.overlap);
  expect_bit_exact(es, geo, p.k);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ParallelEquivalence,
    ::testing::Values(ConfigParam{1, 1, 1, 0}, ConfigParam{2, 1, 1, 0},
                      ConfigParam{2, 2, 1, 0}, ConfigParam{2, 2, 2, 0},
                      ConfigParam{3, 2, 2, 0}, ConfigParam{3, 3, 3, 32},
                      ConfigParam{4, 4, 4, 0}, ConfigParam{2, 2, 1, 32},
                      ConfigParam{4, 3, 5, 16}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "n" +
             std::to_string(info.param.n) + "k" + std::to_string(info.param.k) +
             "ov" + std::to_string(info.param.overlap);
    });

// ---------------------------------------------------------------------------
// Stream-class sweep at a fixed nontrivial configuration.
// ---------------------------------------------------------------------------

class SceneEquivalence : public ::testing::TestWithParam<SceneKind> {};

TEST_P(SceneEquivalence, BitExactAt2x2WithOverlap) {
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, GetParam(), 9);
  wall::TileGeometry geo(w, h, 2, 2, 32);
  expect_bit_exact(es, geo, 2);
}

INSTANTIATE_TEST_SUITE_P(Scenes, SceneEquivalence,
                         ::testing::Values(SceneKind::kPanningTexture,
                                           SceneKind::kMovingObjects,
                                           SceneKind::kAnimation,
                                           SceneKind::kLocalizedDetail),
                         [](const auto& info) {
                           std::string n = video::scene_kind_name(info.param);
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ---------------------------------------------------------------------------
// Encoder-option sweeps: skips, adaptive quant, alternate scan, B-frames.
// ---------------------------------------------------------------------------

TEST(ParallelEquivalenceOptions, NoSkipsNoAdaptiveQuant) {
  const auto es = make_stream(320, 240, SceneKind::kAnimation, 8,
                              [](enc::EncoderConfig& c) {
                                c.allow_skip = false;
                                c.adaptive_quant = false;
                              });
  wall::TileGeometry geo(320, 240, 2, 2, 0);
  expect_bit_exact(es, geo, 2);
}

TEST(ParallelEquivalenceOptions, ManySkips) {
  // Static scene + B frames => lots of skipped macroblocks, including whole
  // skipped tile rows (lead/trail skip synthesis paths).
  const auto es = make_stream(320, 240, SceneKind::kAnimation, 10,
                              [](enc::EncoderConfig& c) {
                                c.target_bpp = 0.08;
                                c.b_frames = 3;
                                c.gop_size = 12;
                              });
  wall::TileGeometry geo(320, 240, 4, 2, 0);
  expect_bit_exact(es, geo, 2);
}

TEST(ParallelEquivalenceOptions, NonLinearQuantAlternateScan) {
  const auto es = make_stream(320, 240, SceneKind::kPanningTexture, 8,
                              [](enc::EncoderConfig& c) {
                                c.q_scale_type = true;
                                c.alternate_scan = true;
                              });
  wall::TileGeometry geo(320, 240, 2, 2, 16);
  expect_bit_exact(es, geo, 2);
}

TEST(ParallelEquivalenceOptions, LargeMotionRange) {
  const auto es = make_stream(320, 240, SceneKind::kMovingObjects, 8,
                              [](enc::EncoderConfig& c) { c.me_range = 40; });
  wall::TileGeometry geo(320, 240, 3, 3, 0);
  expect_bit_exact(es, geo, 3);
}

TEST(ParallelEquivalenceOptions, IntraOnlyStream) {
  const auto es = make_stream(192, 160, SceneKind::kMovingObjects, 4,
                              [](enc::EncoderConfig& c) {
                                c.gop_size = 1;
                                c.b_frames = 0;
                              });
  wall::TileGeometry geo(192, 160, 2, 2, 0);
  expect_bit_exact(es, geo, 2);
}

TEST(ParallelEquivalenceOptions, POnlyStream) {
  const auto es = make_stream(192, 160, SceneKind::kPanningTexture, 8,
                              [](enc::EncoderConfig& c) { c.b_frames = 0; });
  wall::TileGeometry geo(192, 160, 2, 2, 0);
  expect_bit_exact(es, geo, 2);
}

TEST(ParallelEquivalenceOptions, TilesNotAlignedToMacroblocks) {
  // 3 tiles across 320px: home boundaries at 106/213 — not MB aligned, so
  // boundary macroblocks are shared even without overlap.
  const auto es = make_stream(320, 240, SceneKind::kMovingObjects, 6);
  wall::TileGeometry geo(320, 240, 3, 1, 0);
  expect_bit_exact(es, geo, 2);
}

// ---------------------------------------------------------------------------
// Protocol equivalence: the threaded pipeline and the lockstep reference run
// the same proto/ state machines, so a fault-free run must emit the *same*
// protocol messages — identical per-type counts, identical node x node wire
// traffic, and identical per-picture tile x tile exchange matrices.
// (Heartbeats and transport-level retransmits/acks are excluded from
// WireAccounting by design; they are the only timing-dependent traffic.)
// ---------------------------------------------------------------------------

TEST(ProtocolEquivalence, ThreadedMatchesLockstepWireForWire) {
  const int w = 256, h = 192, k = 2;
  const auto es = make_stream(w, h, SceneKind::kMovingObjects, 8);
  wall::TileGeometry geo(w, h, 2, 2, 0);

  LockstepPipeline lockstep(geo, k, es);
  std::map<uint32_t, TrafficMatrix> trace_exchange;
  lockstep.run(nullptr, [&](const core::PictureTrace& tr) {
    if (tr.exchange_bytes.total() > 0)
      trace_exchange.emplace(tr.pic_index, tr.exchange_bytes);
  });
  const proto::WireAccounting& serial = lockstep.accounting();

  core::FtOptions ft;
  ft.per_picture_exchange = true;
  core::ClusterPipeline threaded(geo, k, es, ft);
  const core::ClusterStats stats = threaded.run(nullptr);

  // Message counts per type, exactly.
  ASSERT_EQ(stats.wire.counts.size(), serial.counts.size());
  for (const auto& [type, n] : serial.counts) {
    const auto it = stats.wire.counts.find(type);
    ASSERT_NE(it, stats.wire.counts.end()) << proto::msg_type_name(type);
    EXPECT_EQ(it->second, n) << proto::msg_type_name(type);
  }

  // Node x node protocol bytes, exactly.
  EXPECT_TRUE(stats.wire.traffic == serial.traffic);

  // Per-picture exchange matrices: threaded == lockstep accounting ==
  // lockstep per-picture traces.
  EXPECT_TRUE(stats.wire.exchange_by_picture == serial.exchange_by_picture);
  EXPECT_EQ(serial.exchange_by_picture.size(), trace_exchange.size());
  for (const auto& [pic, tm] : serial.exchange_by_picture) {
    const auto it = trace_exchange.find(pic);
    ASSERT_NE(it, trace_exchange.end()) << "picture " << pic;
    EXPECT_TRUE(it->second == tm) << "picture " << pic;
  }

  // Sanity: the run did real work through every message type.
  EXPECT_GT(serial.counts.at(proto::MsgType::kPicture), 0u);
  EXPECT_GT(serial.counts.at(proto::MsgType::kSubPicture), 0u);
  EXPECT_GT(serial.counts.at(proto::MsgType::kExchange), 0u);
  EXPECT_GT(serial.counts.at(proto::MsgType::kGoAheadAck), 0u);
}

// The real-socket transport must be invisible to the protocol: the same
// wall run over per-node UDP socket fabrics (rendezvous discovery, datagram
// framing, receiver-side flow control) produces exactly the message counts
// and node x node protocol bytes of the threaded in-process engine. Wire
// accounting is recorded at emit, so retransmissions cannot perturb it —
// any difference means the socket backend dropped, duplicated or invented
// a protocol message.
TEST(ProtocolEquivalence, SocketMatchesThreadedWireForWire) {
  const int w = 256, h = 192, k = 2;
  const auto es = make_stream(w, h, SceneKind::kMovingObjects, 8);
  wall::TileGeometry geo(w, h, 2, 2, 0);

  core::FtOptions ft;
  ft.per_picture_exchange = true;
  core::ClusterPipeline threaded(geo, k, es, ft);
  const core::ClusterStats tstats = threaded.run(nullptr);

  core::SocketWallOptions so;
  so.per_picture_exchange = true;
  const core::ClusterStats sstats = core::run_socket_wall(geo, k, es, nullptr, so);

  ASSERT_EQ(sstats.wire.counts.size(), tstats.wire.counts.size());
  for (const auto& [type, n] : tstats.wire.counts) {
    const auto it = sstats.wire.counts.find(type);
    ASSERT_NE(it, sstats.wire.counts.end()) << proto::msg_type_name(type);
    EXPECT_EQ(it->second, n) << proto::msg_type_name(type);
  }
  EXPECT_TRUE(sstats.wire.traffic == tstats.wire.traffic);
  EXPECT_TRUE(sstats.wire.exchange_by_picture ==
              tstats.wire.exchange_by_picture);
  // Clean loopback: nothing abandoned, nothing degraded.
  EXPECT_EQ(sstats.ft.transport.abandoned, 0u);
  EXPECT_EQ(sstats.ft.degraded_frames, 0u);
}

// Datagrams really lost on the socket path (5% loss, plus duplication and
// delay, via the deterministic impairment proxy) must change nothing about
// the output: retransmission recovers every message and the assembled wall
// stays bit-exact with the serial reference decoder.
TEST(ProtocolEquivalence, SocketWallBitExactUnderRealLoss) {
  const int w = 192, h = 128, k = 2;
  const auto es = make_stream(w, h, SceneKind::kMovingObjects, 8);
  wall::TileGeometry geo(w, h, 2, 2, 0);

  core::SocketWallOptions so;
  so.impair = true;
  so.impair_cfg.seed = 11;
  so.impair_cfg.loss = 0.05;
  so.impair_cfg.dup = 0.02;
  so.impair_cfg.delay = 0.05;
  so.impair_cfg.delay_s = 0.002;

  std::map<int, std::unique_ptr<wall::WallAssembler>> pending;
  std::map<int, int> tiles_seen;
  std::map<int, Frame> finished;
  const core::ClusterStats stats = core::run_socket_wall(
      geo, k, es,
      [&](int tile, const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
        auto& asmb = pending[info.display_index];
        if (!asmb) asmb = std::make_unique<wall::WallAssembler>(geo);
        asmb->add_tile(tile, tf);
        if (++tiles_seen[info.display_index] == geo.tiles()) {
          asmb->check_coverage();
          finished.emplace(info.display_index, asmb->frame());
          pending.erase(info.display_index);
        }
      },
      so);

  // Enough datagrams crossed the proxy that a silent no-loss run is
  // statistically impossible; losses surface as retransmissions.
  EXPECT_GT(stats.ft.transport.retransmits, 0u);
  EXPECT_EQ(stats.ft.transport.abandoned, 0u);
  EXPECT_EQ(stats.ft.degraded_frames, 0u);

  const std::vector<Frame> serial = serial_decode(es);
  ASSERT_EQ(finished.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(finished.count(int(i))) << "missing display index " << i;
    const Frame a = wall::crop_frame(serial[i], geo.width(), geo.height());
    const Frame b =
        wall::crop_frame(finished.at(int(i)), geo.width(), geo.height());
    EXPECT_TRUE(a == b) << "frame " << i << " not bit-exact";
  }
}

// The pooled buffer subsystem must be invisible on the wire: with pooling
// disabled (every allocation a plain heap malloc/free) the protocol must
// produce byte-identical messages, identical per-node traffic matrices and
// identical decoded frames. Anything else means a pooled buffer was reused
// while still referenced, or a view aliased bytes it did not own.
TEST(ProtocolEquivalence, PooledMatchesUnpooledWireForWire) {
  const int w = 256, h = 192, k = 2;
  const auto es = make_stream(w, h, SceneKind::kMovingObjects, 8);
  wall::TileGeometry geo(w, h, 2, 2, 0);

  // Byte-for-byte: the same split sub-picture serialized through the legacy
  // vector path and the pooled path, then packed through pack() and the
  // direct-into-body pack_sp().
  core::RootSplitter root(es);
  core::MacroblockSplitter splitter(geo);
  splitter.set_stream_info(root.stream_info());
  core::SplitResult sr =
      splitter.split(mem::Bytes::copy_of(root.picture(0)), 0);
  ASSERT_TRUE(sr.status.ok());
  for (int t = 0; t < geo.tiles(); ++t) {
    const core::SubPicture& sub = sr.subpictures[size_t(t)];
    std::vector<uint8_t> vec;
    sub.serialize(&vec);
    const mem::Bytes pooled = sub.serialize_pooled();
    EXPECT_EQ(pooled, mem::Bytes::borrow(vec)) << "tile " << t;

    proto::SpMsg m;
    m.pic_index = 0;
    m.tile = uint16_t(t);
    m.subpicture = pooled;
    m.mei = sr.mei[size_t(t)];
    const proto::Packed a = proto::pack(m);
    const proto::Packed b =
        proto::pack_sp(0, uint16_t(t), 0, sub, sr.mei[size_t(t)]);
    EXPECT_EQ(a.body, b.body) << "tile " << t;
  }

  // Full-run equivalence, pooling on vs off: identical message counts,
  // node x node traffic, per-picture exchange matrices and output frames.
  struct PoolingOff {
    PoolingOff() { mem::set_pooling_enabled(false); }
    ~PoolingOff() { mem::set_pooling_enabled(true); }
  };
  proto::WireAccounting unpooled_acct;
  std::vector<Frame> unpooled_frames;
  {
    PoolingOff off;
    LockstepPipeline lockstep(geo, k, es);
    lockstep.run(nullptr, nullptr);
    unpooled_acct = lockstep.accounting();
    unpooled_frames = parallel_decode(es, geo, k);
  }
  LockstepPipeline lockstep(geo, k, es);
  lockstep.run(nullptr, nullptr);
  const proto::WireAccounting& pooled_acct = lockstep.accounting();
  const std::vector<Frame> pooled_frames = parallel_decode(es, geo, k);

  ASSERT_EQ(pooled_acct.counts.size(), unpooled_acct.counts.size());
  for (const auto& [type, n] : unpooled_acct.counts)
    EXPECT_EQ(pooled_acct.counts.at(type), n) << proto::msg_type_name(type);
  EXPECT_TRUE(pooled_acct.traffic == unpooled_acct.traffic);
  EXPECT_TRUE(pooled_acct.exchange_by_picture ==
              unpooled_acct.exchange_by_picture);
  ASSERT_EQ(pooled_frames.size(), unpooled_frames.size());
  for (size_t i = 0; i < pooled_frames.size(); ++i) {
    EXPECT_EQ(pooled_frames[i].y, unpooled_frames[i].y) << "frame " << i;
    EXPECT_EQ(pooled_frames[i].cb, unpooled_frames[i].cb) << "frame " << i;
    EXPECT_EQ(pooled_frames[i].cr, unpooled_frames[i].cr) << "frame " << i;
  }
}

// Both engines mirror their protocol progress into the telemetry registry
// through the same obs:: instrument bundles, so a fault-free run must report
// identical totals for every engine-deterministic metric family, per node.
// (Heartbeat / control / retransmit families are wall-clock driven and
// excluded by design — see obs/metrics.h.)
TEST(ProtocolEquivalence, ThreadedMatchesLockstepMetricTotals) {
  const int w = 256, h = 192, k = 2;
  const auto es = make_stream(w, h, SceneKind::kMovingObjects, 8);
  wall::TileGeometry geo(w, h, 2, 2, 0);

  obs::MetricsRegistry serial_reg;
  LockstepPipeline lockstep(geo, k, es, &serial_reg);
  lockstep.run(nullptr, nullptr);

  obs::MetricsRegistry threaded_reg;
  core::FtOptions ft;
  ft.metrics = &threaded_reg;
  core::ClusterPipeline threaded(geo, k, es, ft);
  threaded.run(nullptr);

  const obs::MetricsSnapshot a = serial_reg.snapshot();
  const obs::MetricsSnapshot b = threaded_reg.snapshot();

  const char* const families[] = {
      obs::family::kPicturesDispatched, obs::family::kPicturesSplit,
      obs::family::kPicturesDecoded,    obs::family::kPicturesSkipped,
      obs::family::kSpBytesSent,        obs::family::kExchangeBytesSent,
      obs::family::kExchangeBytesRecv,  obs::family::kGoAheadsSeen,
      obs::family::kAcksSent,           obs::family::kAcksRecv,
      obs::family::kConcealedMbs,
  };
  const proto::Topology topo{k, geo.tiles()};
  for (const char* family : families) {
    for (int node = 0; node < topo.nodes(); ++node) {
      const obs::Labels l{node, 0};
      EXPECT_EQ(a.counter_value(family, l), b.counter_value(family, l))
          << family << " node " << node;
    }
    EXPECT_EQ(a.counter_total(family), b.counter_total(family)) << family;
  }

  // And the totals are real work, not two zeros agreeing with each other.
  EXPECT_EQ(a.counter_total(obs::family::kPicturesDispatched), 8u);
  EXPECT_EQ(a.counter_total(obs::family::kPicturesDecoded),
            8u * uint64_t(geo.tiles()));
  EXPECT_GT(a.counter_total(obs::family::kSpBytesSent), 0u);
  EXPECT_GT(a.counter_total(obs::family::kExchangeBytesSent), 0u);
  EXPECT_EQ(a.counter_total(obs::family::kExchangeBytesSent),
            a.counter_total(obs::family::kExchangeBytesRecv));
}

}  // namespace
}  // namespace pdw
