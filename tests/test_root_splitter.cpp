// Root (picture-level) splitter tests: picture work units, header
// attachment, stream info extraction, scan cost accounting.
#include <gtest/gtest.h>

#include "core/root_splitter.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "video/generator.h"

namespace pdw::core {
namespace {

std::vector<uint8_t> make_stream(int frames, bool repeat_seq = true) {
  enc::EncoderConfig cfg;
  cfg.width = 192;
  cfg.height = 160;
  cfg.gop_size = 6;
  cfg.b_frames = 2;
  cfg.repeat_sequence_header = repeat_seq;
  const auto gen =
      video::make_scene(video::SceneKind::kPanningTexture, 192, 160, 44);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
}

TEST(RootSplitter, OnePictureUnitPerCodedPicture) {
  const auto es = make_stream(13);
  RootSplitter root(es);
  EXPECT_EQ(root.picture_count(), 13);
}

TEST(RootSplitter, UnitsAreContiguousAndCoverAllPictureBytes) {
  const auto es = make_stream(9);
  RootSplitter root(es);
  size_t expected_begin = 0;
  for (int i = 0; i < root.picture_count(); ++i) {
    const PictureSpan& s = root.span(i);
    EXPECT_EQ(s.begin, expected_begin) << "picture " << i;
    expected_begin = s.end;
    EXPECT_GT(s.end, s.begin);
  }
  // Only the sequence_end_code remains after the last picture.
  EXPECT_EQ(es.size() - expected_begin, 4u);
}

TEST(RootSplitter, HeadersTravelWithTheirPicture) {
  const auto es = make_stream(13);
  RootSplitter root(es);
  // GOP size 6 with 13 frames => pictures 0, 6 and 12 start GOPs.
  int with_seq = 0, with_gop = 0;
  for (int i = 0; i < root.picture_count(); ++i) {
    with_seq += root.span(i).has_sequence_header;
    with_gop += root.span(i).has_gop_header;
  }
  EXPECT_EQ(with_gop, 3);
  EXPECT_EQ(with_seq, 3);  // repeated sequence headers
  EXPECT_TRUE(root.span(0).has_sequence_header);
}

TEST(RootSplitter, SingleSequenceHeaderMode) {
  const auto es = make_stream(13, /*repeat_seq=*/false);
  RootSplitter root(es);
  int with_seq = 0;
  for (int i = 0; i < root.picture_count(); ++i)
    with_seq += root.span(i).has_sequence_header;
  EXPECT_EQ(with_seq, 1);
}

TEST(RootSplitter, StreamInfoMatchesSequenceHeader) {
  const auto es = make_stream(3);
  RootSplitter root(es);
  EXPECT_EQ(root.stream_info().seq.width, 192);
  EXPECT_EQ(root.stream_info().seq.height, 160);
  EXPECT_TRUE(root.stream_info().seq.progressive_sequence);
}

TEST(RootSplitter, PictureUnitsDecodeIndependentlyViaSpans) {
  // Feeding the units one by one into a decoder reproduces a whole-stream
  // decode — the property that makes picture-level splitting correct.
  const auto es = make_stream(9);
  RootSplitter root(es);

  std::vector<mpeg2::Frame> whole, units;
  {
    mpeg2::Mpeg2Decoder dec;
    dec.decode(es, [&](const mpeg2::Frame& f,
                       const mpeg2::DecodedPictureInfo&) {
      whole.push_back(f);
    });
  }
  {
    mpeg2::Mpeg2Decoder dec;
    for (int i = 0; i < root.picture_count(); ++i)
      dec.decode_picture_span(es, root.span(i),
                              [&](const mpeg2::Frame& f,
                                  const mpeg2::DecodedPictureInfo&) {
                                units.push_back(f);
                              });
    dec.flush([&](const mpeg2::Frame& f, const mpeg2::DecodedPictureInfo&) {
      units.push_back(f);
    });
  }
  ASSERT_EQ(units.size(), whole.size());
  for (size_t i = 0; i < whole.size(); ++i) EXPECT_EQ(units[i], whole[i]);
}

TEST(RootSplitter, ScanCostIsTiny) {
  const auto es = make_stream(13);
  RootSplitter root(es);
  // Start-code scanning must be orders of magnitude below a millisecond per
  // picture — the premise of cheap picture-level splitting.
  EXPECT_LT(root.scan_seconds_per_picture(), 1e-3);
}

TEST(RootSplitter, RejectsStreamsWithoutPictures) {
  const std::vector<uint8_t> empty;
  EXPECT_THROW(RootSplitter{empty}, CheckError);
  const std::vector<uint8_t> noise = {0x12, 0x34, 0x56, 0x78};
  EXPECT_THROW(RootSplitter{noise}, CheckError);
}

}  // namespace
}  // namespace pdw::core
