// Bit reader/writer and start-code scanner unit tests.
#include <gtest/gtest.h>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "bitstream/start_code.h"
#include "common/stats.h"

namespace pdw {
namespace {

TEST(BitWriter, WritesMsbFirst) {
  BitWriter w;
  w.put(0b1011, 4);
  w.put(0b0010, 4);
  auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110010);
}

TEST(BitWriter, AlignPadsWithZeros) {
  BitWriter w;
  w.put_bit(1);
  w.align_to_byte();
  auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x80);
}

TEST(BitWriter, StartCodeIsByteAligned) {
  BitWriter w;
  w.put(0b101, 3);
  w.put_start_code(0xB3);
  auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 5u);
  EXPECT_EQ(bytes[0], 0xA0);
  EXPECT_EQ(bytes[1], 0x00);
  EXPECT_EQ(bytes[2], 0x00);
  EXPECT_EQ(bytes[3], 0x01);
  EXPECT_EQ(bytes[4], 0xB3);
}

TEST(BitReader, ReadsBackWrittenBits) {
  BitWriter w;
  w.put(0x5A, 8);
  w.put(0x3, 2);
  w.put(0x1FFFF, 17);
  w.put(0, 5);
  auto bytes = w.take();

  BitReader r(bytes);
  EXPECT_EQ(r.read(8), 0x5Au);
  EXPECT_EQ(r.read(2), 0x3u);
  EXPECT_EQ(r.read(17), 0x1FFFFu);
  EXPECT_EQ(r.read(5), 0u);
}

TEST(BitReader, PeekDoesNotConsume) {
  const uint8_t data[] = {0xAB, 0xCD};
  BitReader r(data);
  EXPECT_EQ(r.peek(8), 0xABu);
  EXPECT_EQ(r.peek(16), 0xABCDu);
  EXPECT_EQ(r.bit_pos(), 0u);
  r.skip(4);
  EXPECT_EQ(r.peek(8), 0xBCu);
}

TEST(BitReader, BitOffsetConstructor) {
  const uint8_t data[] = {0b10110100, 0b01011111};
  BitReader r(data, 3);
  EXPECT_EQ(r.read(5), 0b10100u);
  EXPECT_EQ(r.read(4), 0b0101u);
}

TEST(BitReader, ZeroPadsPastEnd) {
  const uint8_t data[] = {0xFF};
  BitReader r(data);
  EXPECT_EQ(r.read(8), 0xFFu);
  EXPECT_EQ(r.read(16), 0u);  // past end reads as zero
  EXPECT_TRUE(r.overrun());
}

TEST(BitReader, ReadWide) {
  BitWriter w;
  w.put(0xDEADBEEF >> 16, 16);
  w.put(0xDEADBEEF & 0xFFFF, 16);
  auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_wide(32), 0xDEADBEEFu);
}

TEST(BitReader, Full32BitReadAndPeek) {
  // A whole start code (prefix + code byte) in one 32-bit access, including
  // from an unaligned position.
  const uint8_t data[] = {0x00, 0x00, 0x01, 0xB3, 0xCA, 0xFE, 0xBA, 0xBE};
  BitReader r(data);
  EXPECT_EQ(r.peek(32), 0x000001B3u);
  EXPECT_EQ(r.bit_pos(), 0u);
  EXPECT_EQ(r.read(32), 0x000001B3u);
  EXPECT_EQ(r.read(32), 0xCAFEBABEu);
  EXPECT_FALSE(r.overrun());

  BitReader r2(data, 4);  // mid-byte start
  EXPECT_EQ(r2.read(32), 0x00001B3Cu);
}

TEST(BitReader, SkipWiderThan32) {
  const uint8_t data[] = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x5A};
  BitReader r(data);
  r.skip(56);
  EXPECT_EQ(r.read(8), 0x5Au);
}

TEST(BitReader, Randomized32BitRoundtrip) {
  SplitMix64 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    BitWriter w;
    std::vector<std::pair<uint32_t, int>> fields;
    for (int i = 0; i < 100; ++i) {
      const int len = 25 + int(rng.next_below(8));  // 25..32: the new range
      const uint32_t v =
          uint32_t(rng.next()) & uint32_t((uint64_t(1) << len) - 1);
      fields.emplace_back(v, len);
      w.put(v, len);
    }
    w.align_to_byte();
    auto bytes = w.take();
    BitReader r(bytes);
    for (auto [v, len] : fields) EXPECT_EQ(r.read(len), v);
  }
}

TEST(BitReader, RandomizedRoundtrip) {
  SplitMix64 rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<std::pair<uint32_t, int>> fields;
    for (int i = 0; i < 200; ++i) {
      const int len = 1 + int(rng.next_below(24));
      const uint32_t v = uint32_t(rng.next()) & ((1u << len) - 1);
      fields.emplace_back(v, len);
      w.put(v, len);
    }
    w.align_to_byte();
    auto bytes = w.take();
    BitReader r(bytes);
    for (auto [v, len] : fields) EXPECT_EQ(r.read(len), v);
  }
}

TEST(BitReader, AlignToByte) {
  const uint8_t data[] = {0x12, 0x34, 0x56};
  BitReader r(data);
  r.skip(3);
  r.align_to_byte();
  EXPECT_EQ(r.bit_pos(), 8u);
  r.align_to_byte();  // idempotent when aligned
  EXPECT_EQ(r.bit_pos(), 8u);
  EXPECT_EQ(r.read(8), 0x34u);
}

TEST(StartCode, FindsSimpleCode) {
  const uint8_t data[] = {0x11, 0x00, 0x00, 0x01, 0xB3, 0x44};
  auto hit = find_start_code(data, 0);
  EXPECT_EQ(hit.offset, 1u);
  EXPECT_EQ(hit.code, 0xB3);
}

TEST(StartCode, FindsCodeAtStart) {
  const uint8_t data[] = {0x00, 0x00, 0x01, 0x00};
  auto hit = find_start_code(data, 0);
  EXPECT_EQ(hit.offset, 0u);
  EXPECT_EQ(hit.code, 0x00);
}

TEST(StartCode, IgnoresFalsePrefixes) {
  // 0x00 0x01 without a second leading zero must not match.
  const uint8_t data[] = {0x00, 0x01, 0x02, 0x00, 0x00, 0x02, 0x01, 0xFF};
  auto hit = find_start_code(data, 0);
  EXPECT_EQ(hit.offset, sizeof(data));
}

TEST(StartCode, FindAllReturnsInOrder) {
  BitWriter w;
  w.put_start_code(0xB3);
  w.put(0xAAAA, 16);
  w.put_start_code(0x00);
  w.put(0xBB, 8);
  w.put_start_code(0x01);
  auto bytes = w.take();
  auto hits = find_all_start_codes(bytes);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].code, 0xB3);
  EXPECT_EQ(hits[1].code, 0x00);
  EXPECT_EQ(hits[2].code, 0x01);
}

TEST(StartCode, OverlappingZeroRuns) {
  // 00 00 00 01 xx: the start code begins at offset 1.
  const uint8_t data[] = {0x00, 0x00, 0x00, 0x01, 0x42, 0x00};
  auto hit = find_start_code(data, 0);
  EXPECT_EQ(hit.offset, 1u);
  EXPECT_EQ(hit.code, 0x42);
}

TEST(ScanPictures, SplitsAtPictureBoundaries) {
  BitWriter w;
  w.put_start_code(0xB3);  // sequence header
  w.put(0x12345678, 32);
  w.put_start_code(0xB8);  // GOP
  w.put(0x9A, 8);
  w.put_start_code(0x00);  // picture 0
  w.put(0x11, 8);
  w.put_start_code(0x01);  // slice
  w.put(0x22, 8);
  w.put_start_code(0x00);  // picture 1
  w.put(0x33, 8);
  w.put_start_code(0xB7);  // sequence end
  auto bytes = w.take();

  auto spans = scan_pictures(bytes);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].begin, 0u);  // includes sequence + GOP headers
  EXPECT_TRUE(spans[0].has_sequence_header);
  EXPECT_TRUE(spans[0].has_gop_header);
  EXPECT_FALSE(spans[1].has_sequence_header);
  EXPECT_EQ(spans[0].end, spans[1].begin);
  // Sequence end code is not part of any picture span.
  EXPECT_EQ(spans[1].end, bytes.size() - 4);
}

TEST(ScanPictures, EmptyStream) {
  EXPECT_TRUE(scan_pictures({}).empty());
}

TEST(ScanPictures, PictureWithoutHeaders) {
  BitWriter w;
  w.put_start_code(0x00);
  w.put(0xFF, 8);
  auto bytes = w.take();
  auto spans = scan_pictures(bytes);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].has_sequence_header);
  EXPECT_EQ(spans[0].end, bytes.size());
}

}  // namespace
}  // namespace pdw
