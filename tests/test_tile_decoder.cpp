// Tile decoder unit tests: tile outputs equal the serial decoder's crop,
// halo-driven MC, MEI completeness enforcement, display ordering, flush.
#include <gtest/gtest.h>

#include "core/mb_splitter.h"
#include "core/root_splitter.h"
#include "core/tile_decoder.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "video/generator.h"

namespace pdw::core {
namespace {

std::vector<uint8_t> make_stream(int w, int h, int frames, int me_range = 15) {
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 6;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.4;
  cfg.me_range = me_range;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, w, h, 31);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
}

// Drives split + exchange + decode by hand for full control over the halo.
struct Harness {
  Harness(const std::vector<uint8_t>& es, const wall::TileGeometry& geo)
      : root(es), splitter(geo), geo_(geo) {
    splitter.set_stream_info(root.stream_info());
    for (int t = 0; t < geo.tiles(); ++t)
      decoders.push_back(
          std::make_unique<TileDecoder>(geo, t, root.stream_info()));
  }

  // Process picture i; returns per-tile displayed frames (may be empty).
  void step(int i, bool do_exchanges,
            const TileDecoder::DisplayFn& display = nullptr) {
    SplitResult r = splitter.split(root.picture(i), uint32_t(i));
    if (do_exchanges) {
      for (int t = 0; t < geo_.tiles(); ++t)
        for (const MeiInstruction& instr : r.mei[size_t(t)]) {
          if (instr.op != MeiOp::kSend) continue;
          const auto px = decoders[size_t(t)]->extract_for_send(r.info, instr);
          MeiInstruction recv = instr;
          recv.op = MeiOp::kRecv;
          decoders[size_t(instr.peer)]->add_halo_mb(recv, px);
        }
    }
    for (int t = 0; t < geo_.tiles(); ++t)
      decoders[size_t(t)]->decode(r.subpictures[size_t(t)], display);
  }

  RootSplitter root;
  MacroblockSplitter splitter;
  const wall::TileGeometry& geo_;
  std::vector<std::unique_ptr<TileDecoder>> decoders;
};

TEST(TileDecoder, TileEqualsSerialCrop) {
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, 8);
  wall::TileGeometry geo(w, h, 2, 2, 0);
  Harness hn(es, geo);

  // Serial reference frames in display order.
  std::vector<mpeg2::Frame> serial;
  mpeg2::Mpeg2Decoder dec;
  dec.decode(es, [&](const mpeg2::Frame& f, const mpeg2::DecodedPictureInfo&) {
    serial.push_back(f);
  });

  std::vector<int> per_tile_count(size_t(geo.tiles()), 0);
  auto check = [&](int t) {
    return [&, t](const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
      const mpeg2::Frame& ref = serial[size_t(info.display_index)];
      for (int y = tf.py0(); y < tf.py1(); ++y)
        for (int x = tf.px0(); x < tf.px1(); ++x)
          ASSERT_EQ(*tf.pixel(0, x, y), ref.y.at(x, y))
              << "tile " << t << " frame " << info.display_index << " at ("
              << x << "," << y << ")";
      ++per_tile_count[size_t(t)];
    };
  };

  for (int i = 0; i < hn.root.picture_count(); ++i) {
    SplitResult r = hn.splitter.split(hn.root.picture(i), uint32_t(i));
    for (int t = 0; t < geo.tiles(); ++t)
      for (const MeiInstruction& instr : r.mei[size_t(t)]) {
        if (instr.op != MeiOp::kSend) continue;
        const auto px = hn.decoders[size_t(t)]->extract_for_send(r.info, instr);
        MeiInstruction recv = instr;
        recv.op = MeiOp::kRecv;
        hn.decoders[size_t(instr.peer)]->add_halo_mb(recv, px);
      }
    for (int t = 0; t < geo.tiles(); ++t)
      hn.decoders[size_t(t)]->decode(r.subpictures[size_t(t)], check(t));
  }
  for (int t = 0; t < geo.tiles(); ++t)
    hn.decoders[size_t(t)]->flush(check(t));
  for (int t = 0; t < geo.tiles(); ++t)
    EXPECT_EQ(per_tile_count[size_t(t)], int(serial.size()));
}

TEST(TileDecoder, MissingHaloIsAHardError) {
  // Decoding a P picture without executing the MEI exchanges must CHECK-fail
  // (no silent on-demand fallback), unless no vector crosses the boundary.
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, 8, /*me_range=*/24);
  wall::TileGeometry geo(w, h, 4, 2, 0);
  Harness hn(es, geo);

  // Find the first picture that actually has exchanges.
  bool threw = false;
  for (int i = 0; i < hn.root.picture_count(); ++i) {
    SplitResult r = hn.splitter.split(hn.root.picture(i), uint32_t(i));
    int exchanges = 0;
    for (const auto& mei : r.mei) exchanges += int(mei.size());
    if (exchanges == 0) {
      for (int t = 0; t < geo.tiles(); ++t)
        hn.decoders[size_t(t)]->decode(r.subpictures[size_t(t)], nullptr);
      continue;
    }
    try {
      for (int t = 0; t < geo.tiles(); ++t)
        hn.decoders[size_t(t)]->decode(r.subpictures[size_t(t)], nullptr);
    } catch (const CheckError& e) {
      threw = true;
      EXPECT_NE(std::string(e.what()).find("halo"), std::string::npos);
    }
    break;
  }
  EXPECT_TRUE(threw) << "expected a missing-halo CHECK failure";
}

TEST(TileDecoder, DisplayOrderMatchesSerialSemantics) {
  const int w = 192, h = 160;
  const auto es = make_stream(w, h, 9);
  wall::TileGeometry geo(w, h, 1, 1, 0);
  Harness hn(es, geo);

  std::vector<uint32_t> display_pic_indices;
  std::vector<int> display_indices;
  auto record = [&](const mpeg2::TileFrame&, const TileDisplayInfo& info) {
    display_pic_indices.push_back(info.pic_index);
    display_indices.push_back(info.display_index);
  };
  for (int i = 0; i < hn.root.picture_count(); ++i)
    hn.step(i, true, record);
  hn.decoders[0]->flush(record);

  ASSERT_EQ(int(display_indices.size()), hn.root.picture_count());
  // display_index is a contiguous 0..N-1 sequence.
  for (int i = 0; i < int(display_indices.size()); ++i)
    EXPECT_EQ(display_indices[size_t(i)], i);
  // Decode order differs from display order iff B pictures exist.
  bool reordered = false;
  for (size_t i = 1; i < display_pic_indices.size(); ++i)
    if (display_pic_indices[i] < display_pic_indices[i - 1]) reordered = true;
  EXPECT_TRUE(reordered) << "stream with B pictures must reorder";
}

TEST(TileDecoder, StatsReportMacroblocksAndHalo) {
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, 8);
  wall::TileGeometry geo(w, h, 2, 2, 0);
  Harness hn(es, geo);
  size_t halo_total = 0;
  for (int i = 0; i < hn.root.picture_count(); ++i) {
    hn.step(i, true);
    for (int t = 0; t < geo.tiles(); ++t) {
      EXPECT_EQ(hn.decoders[size_t(t)]->macroblocks_decoded_last_picture(),
                geo.tile_mbs(t).count());
      halo_total += hn.decoders[size_t(t)]->halo_mbs_last_picture();
    }
  }
  EXPECT_GT(halo_total, 0u) << "P/B pictures should need remote macroblocks";
}

TEST(TileDecoder, FlushWithoutPicturesIsANoOp) {
  const auto es = make_stream(192, 160, 2);
  wall::TileGeometry geo(192, 160, 1, 1, 0);
  RootSplitter root(es);
  TileDecoder dec(geo, 0, root.stream_info());
  int calls = 0;
  dec.flush([&](const mpeg2::TileFrame&, const TileDisplayInfo&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace pdw::core
