// Program-stream (system layer) tests: structural correctness, mux/demux
// roundtrip, timestamps, tolerance of foreign packets, and end-to-end decode
// from the container.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "ps/program_stream.h"
#include "video/generator.h"

namespace pdw::ps {
namespace {

std::vector<uint8_t> make_es(int frames = 9, int w = 192, int h = 160) {
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 6;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.5;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, w, h, 55);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
}

TEST(ProgramStream, MuxDemuxRoundtripsElementaryStream) {
  const auto es = make_es();
  const auto program = mux_program_stream(es);
  EXPECT_GT(program.size(), es.size());  // container adds overhead
  const auto demuxed = demux_program_stream(program);
  EXPECT_EQ(demuxed.video_es, es);
  EXPECT_GT(demuxed.packs, 0);
  EXPECT_GE(demuxed.pes_packets, 9);
  EXPECT_EQ(demuxed.skipped_packets, 0);
}

TEST(ProgramStream, SmallPesPacketsSplitLargePictures) {
  const auto es = make_es();
  MuxConfig cfg;
  cfg.max_pes_payload = 512;  // force continuation packets
  const auto program = mux_program_stream(es, cfg);
  const auto demuxed = demux_program_stream(program);
  EXPECT_EQ(demuxed.video_es, es);
  EXPECT_GT(demuxed.pes_packets, 9 * 2);
  // Still exactly one timestamped packet per picture.
  EXPECT_EQ(demuxed.pts.size(), 9u);
}

TEST(ProgramStream, TimestampsFollowMpegSemantics) {
  const auto es = make_es(12);
  MuxConfig cfg;
  cfg.frame_rate = 30.0;
  const auto program = mux_program_stream(es, cfg);
  const auto d = demux_program_stream(program);
  ASSERT_EQ(d.pts.size(), 12u);
  ASSERT_EQ(d.dts.size(), 12u);
  const double period = k90kHz / 30.0;
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_GE(d.pts[i], d.dts[i]) << "PTS must not precede DTS";
    // DTS advances by exactly one frame period in decode order.
    if (i > 0) {
      EXPECT_NEAR(double(d.dts[i] - d.dts[i - 1]), period, 1.0);
    }
  }
  // PTS values, sorted, are consecutive display times.
  auto pts = d.pts;
  std::sort(pts.begin(), pts.end());
  for (size_t i = 1; i < pts.size(); ++i)
    EXPECT_NEAR(double(pts[i] - pts[i - 1]), period, 1.0);
  // B-frame reordering means raw PTS order differs from decode order.
  EXPECT_NE(pts, d.pts);
}

TEST(ProgramStream, ScrIsMonotoneAndBelowDts) {
  const auto es = make_es(12);
  MuxConfig cfg;
  cfg.pictures_per_pack = 2;
  const auto program = mux_program_stream(es, cfg);
  const auto d = demux_program_stream(program);
  EXPECT_EQ(d.packs, 6);
  for (size_t i = 1; i < d.scr.size(); ++i)
    EXPECT_GT(d.scr[i], d.scr[i - 1]);
  // SCR (27 MHz) of the first pack precedes the first DTS (90 kHz).
  EXPECT_LE(d.scr[0] / 300, d.dts[0]);
}

TEST(ProgramStream, DecodeFromContainerMatchesElementary) {
  const auto es = make_es();
  const auto program = mux_program_stream(es);
  const auto demuxed = demux_program_stream(program);

  std::vector<mpeg2::Frame> a, b;
  mpeg2::Mpeg2Decoder d1, d2;
  d1.decode(es, [&](const mpeg2::Frame& f, const mpeg2::DecodedPictureInfo&) {
    a.push_back(f);
  });
  d2.decode(demuxed.video_es,
            [&](const mpeg2::Frame& f, const mpeg2::DecodedPictureInfo&) {
              b.push_back(f);
            });
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ProgramStream, SkipsForeignPesPackets) {
  const auto es = make_es(3);
  auto program = mux_program_stream(es);
  // Splice an audio PES packet (stream id 0xC0) right after the system
  // header — demux must skip it without losing video bytes.
  std::vector<uint8_t> audio = {0x00, 0x00, 0x01, 0xC0, 0x00, 0x07,
                                0x80, 0x00, 0x00, 0xAA, 0xBB, 0xCC, 0xDD};
  // Find the first video PES and insert before it.
  for (size_t i = 0; i + 4 < program.size(); ++i) {
    const bool at_video = program[i] == 0 && program[i + 1] == 0 &&
                          program[i + 2] == 1 &&
                          program[i + 3] == kVideoStreamId;
    if (at_video) {
      program.insert(program.begin() + ptrdiff_t(i), audio.begin(),
                     audio.end());
      break;
    }
  }
  const auto d = demux_program_stream(program);
  EXPECT_EQ(d.video_es, es);
  EXPECT_EQ(d.skipped_packets, 1);
}

TEST(ProgramStream, PaddingBeforeFirstPackIsIgnored) {
  const auto es = make_es(3);
  auto program = mux_program_stream(es);
  program.insert(program.begin(), {0xFF, 0xFF, 0x00, 0x00});
  const auto d = demux_program_stream(program);
  EXPECT_EQ(d.video_es, es);
}

TEST(ProgramStream, TruncatedPesReportsStatusAndKeepsPrefix) {
  const auto es = make_es(3);
  auto program = mux_program_stream(es);
  // Cut inside the final PES packet (the one carrying the sequence end
  // code), past the program end code. Truncation mid-PES is recoverable
  // damage: demux stops with a status and keeps every complete packet it
  // saw, instead of throwing.
  program.resize(program.size() - 8);
  const auto d = demux_program_stream(program);
  EXPECT_FALSE(d.status.ok());
  EXPECT_EQ(d.status.code, DecodeErr::kTruncated);
  ASSERT_FALSE(d.video_es.empty());
  ASSERT_LT(d.video_es.size(), es.size());
  EXPECT_TRUE(std::equal(d.video_es.begin(), d.video_es.end(), es.begin()));
}

TEST(ProgramStream, BareElementaryStreamReportsBadStructure) {
  const auto es = make_es(2);
  // An ES has picture/sequence start codes at the top level where pack
  // headers belong; the demux records the structural damage and scans on.
  const auto d = demux_program_stream(es);
  EXPECT_FALSE(d.status.ok());
  EXPECT_EQ(d.status.code, DecodeErr::kBadStructure);
  EXPECT_TRUE(d.video_es.empty());
  EXPECT_EQ(d.packs, 0);
}

TEST(ProgramStream, MuxRejectsEmptyInput) {
  EXPECT_THROW(mux_program_stream({}), CheckError);
}

}  // namespace
}  // namespace pdw::ps
