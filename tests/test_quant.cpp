// Inverse/forward quantisation tests: spec arithmetic, saturation, mismatch
// control, and encoder-side invertibility.
#include <gtest/gtest.h>

#include <cstring>

#include "common/stats.h"
#include "mpeg2/quant.h"
#include "mpeg2/tables.h"

namespace pdw::mpeg2 {
namespace {

class QuantTest : public ::testing::Test {
 protected:
  const uint8_t* intra_w = kDefaultIntraQuant.data();
  const uint8_t* ninter_w = kDefaultNonIntraQuant.data();
  const uint8_t* scan = kZigzagScan.data();
};

TEST_F(QuantTest, IntraDcUsesMultiplier) {
  int16_t qfs[64] = {};
  qfs[0] = 100;
  int16_t out[64];
  dequant_intra(qfs, out, intra_w, 16, /*dc_mult=*/8, scan);
  EXPECT_EQ(out[0] & ~1, 800 & ~1);  // mismatch control may flip F[63], not DC
  EXPECT_EQ(out[0], 800);
}

TEST_F(QuantTest, IntraAcFollowsSpecFormula) {
  int16_t qfs[64] = {};
  qfs[1] = 10;  // scan position 1 -> raster position 1 (zigzag)
  int16_t out[64];
  dequant_intra(qfs, out, intra_w, 4, 8, scan);
  // F = 2*QF*W*qs/32 = 2*10*16*4/32 = 40  (W[1] = 16 in the intra matrix).
  EXPECT_EQ(out[kZigzagScan[1]], 40);
}

TEST_F(QuantTest, NonIntraAddsThirdTerm) {
  int16_t qfs[64] = {};
  qfs[3] = 5;
  qfs[7] = -5;
  int16_t out[64];
  dequant_non_intra(qfs, out, ninter_w, 4, scan);
  // F = (2*5+1)*16*4/32 = 22; negative: (2*-5-1)*16*4/32 = -22.
  EXPECT_EQ(out[kZigzagScan[3]], 22);
  EXPECT_EQ(out[kZigzagScan[7]], -22);
}

TEST_F(QuantTest, SaturatesTo2047) {
  int16_t qfs[64] = {};
  qfs[1] = 2000;
  int16_t out[64];
  dequant_intra(qfs, out, intra_w, 62, 8, scan);
  EXPECT_EQ(out[kZigzagScan[1]], 2047);
  qfs[1] = -2000;
  dequant_intra(qfs, out, intra_w, 62, 8, scan);
  EXPECT_EQ(out[kZigzagScan[1]], -2048);
}

TEST_F(QuantTest, MismatchControlTogglesLastCoefficient) {
  // A block whose coefficient sum is even must get F[63]'s LSB toggled.
  int16_t qfs[64] = {};
  qfs[0] = 4;  // DC only: sum = 4 * dc_mult -> even
  int16_t out[64];
  dequant_intra(qfs, out, intra_w, 16, 8, scan);
  EXPECT_EQ(out[63], 1);  // was 0 (even sum) -> +1
  // Odd sum: F[63] untouched.
  qfs[0] = 5;  // 5*8 = 40 even again; use dc_mult 1 for odd sum
  dequant_intra(qfs, out, intra_w, 16, 1, scan);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[63], 0);
}

TEST_F(QuantTest, MismatchControlDecrementsOddF63) {
  // Force F[63] odd with an even total sum: F[63] must be decremented.
  int16_t qfs[64] = {};
  // Scan position 63 maps to raster 63. Choose QF so F odd.
  // intra: F = 2*QF*W[63]*qs/32; W[63]=83, qs=... make it odd via DC instead:
  qfs[0] = 1;                      // F[0] = 1 (dc_mult 1)
  qfs[63] = 3;                     // F[63] = 2*3*83*2/32 = 31 (odd)
  int16_t out[64];
  dequant_intra(qfs, out, intra_w, 2, 1, scan);
  ASSERT_EQ(out[0], 1);
  // Sum = 1 + 31 = 32 even -> F[63] odd -> decrement to 30.
  EXPECT_EQ(out[63], 30);
}

TEST_F(QuantTest, IntraQuantRoundtripsSmallCoefficients) {
  SplitMix64 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    int16_t coeff[64] = {};
    coeff[0] = int16_t(rng.next_below(2040));
    for (int i = 0; i < 8; ++i)
      coeff[int(rng.next_below(63)) + 1] = int16_t(int(rng.next_below(400)) - 200);
    int16_t qfs[64];
    const int last = quant_intra(coeff, qfs, intra_w, 16, 8, scan);
    int16_t recon[64];
    dequant_intra(qfs, recon, intra_w, 16, 8, scan);
    // Reconstruction error bounded by half a quantisation step (+ mismatch).
    for (int i = 0; i < 64; ++i) {
      const double step = i == 0 ? 8.0 : 2.0 * intra_w[i] * 16 / 32.0;
      EXPECT_LE(std::abs(recon[i] - coeff[i]), step / 2 + 1.5)
          << "trial " << trial << " i " << i;
    }
    EXPECT_GE(last, 0);
  }
}

TEST_F(QuantTest, NonIntraDeadZoneSendsSmallValuesToZero) {
  int16_t coeff[64] = {};
  coeff[5] = 3;  // well below one step at scale 16 (W=16: step = 16)
  int16_t qfs[64];
  const int last = quant_non_intra(coeff, qfs, ninter_w, 16, scan);
  EXPECT_EQ(last, -1);  // nothing survives
}

TEST_F(QuantTest, NonIntraQuantDequantWithinOneStep) {
  SplitMix64 rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    int16_t coeff[64];
    for (int i = 0; i < 64; ++i)
      coeff[i] = int16_t(int(rng.next_below(1000)) - 500);
    int16_t qfs[64];
    quant_non_intra(coeff, qfs, ninter_w, 8, scan);
    int16_t recon[64];
    dequant_non_intra(qfs, recon, ninter_w, 8, scan);
    for (int i = 0; i < 64; ++i) {
      const double step = 2.0 * ninter_w[i] * 8 / 32.0;
      EXPECT_LE(std::abs(recon[i] - coeff[i]), step + 1.5);
    }
  }
}

TEST_F(QuantTest, AlternateScanPlacesCoefficientsCorrectly) {
  int16_t qfs[64] = {};
  qfs[1] = 10;
  int16_t out[64];
  dequant_non_intra(qfs, out, ninter_w, 4, kAlternateScan.data());
  // Alternate scan position 1 is raster position 8.
  EXPECT_NE(out[8], 0);
  EXPECT_EQ(out[1], 0);
}

}  // namespace
}  // namespace pdw::mpeg2
