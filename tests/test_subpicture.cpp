// Sub-picture / SPH / MEI wire-format tests.
#include <gtest/gtest.h>

#include "core/mei.h"
#include "core/subpicture.h"

namespace pdw::core {
namespace {

SpRun sample_run(int seed) {
  SpRun run;
  run.state.dc_pred[0] = 128 + seed;
  run.state.dc_pred[1] = 130;
  run.state.dc_pred[2] = -5;
  run.state.pmv[0][0] = int16_t(-33 + seed);
  run.state.pmv[1][1] = 900;
  run.state.quant_scale_code = uint8_t(1 + seed % 31);
  run.state.prev_motion_flags = 0x06;
  run.skip_bits = uint8_t(seed % 8);
  run.first_coded_addr = 1234 + uint32_t(seed);
  run.num_coded = 56;
  run.lead_skip_addr = 1200;
  run.lead_skip_count = 3;
  run.trail_skip_addr = 1290;
  run.trail_skip_count = 2;
  std::vector<uint8_t> payload;
  for (int i = 0; i < 100 + seed; ++i) payload.push_back(uint8_t(i * 7));
  run.payload = mem::Bytes::copy_of(payload);
  return run;
}

TEST(SubPicture, SerializeDeserializeRoundtrip) {
  SubPicture sp;
  sp.info.pic_index = 42;
  sp.info.type = mpeg2::PicType::B;
  sp.info.f_code[0][0] = 3;
  sp.info.f_code[1][1] = 4;
  sp.info.intra_dc_precision = 2;
  sp.info.q_scale_type = true;
  sp.info.alternate_scan = false;
  sp.info.temporal_reference = 7;
  sp.runs.push_back(sample_run(0));
  sp.runs.push_back(sample_run(5));

  std::vector<uint8_t> wire;
  sp.serialize(&wire);
  EXPECT_EQ(wire.size(), sp.wire_bytes());

  const SubPicture back = SubPicture::deserialize(wire);
  EXPECT_EQ(back.info.pic_index, 42u);
  EXPECT_EQ(back.info.type, mpeg2::PicType::B);
  EXPECT_EQ(back.info.f_code[0][0], 3);
  EXPECT_EQ(back.info.f_code[1][1], 4);
  EXPECT_TRUE(back.info.q_scale_type);
  ASSERT_EQ(back.runs.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.runs[i].state, sp.runs[i].state);
    EXPECT_EQ(back.runs[i].skip_bits, sp.runs[i].skip_bits);
    EXPECT_EQ(back.runs[i].first_coded_addr, sp.runs[i].first_coded_addr);
    EXPECT_EQ(back.runs[i].num_coded, sp.runs[i].num_coded);
    EXPECT_EQ(back.runs[i].lead_skip_count, sp.runs[i].lead_skip_count);
    EXPECT_EQ(back.runs[i].trail_skip_count, sp.runs[i].trail_skip_count);
    EXPECT_EQ(back.runs[i].payload, sp.runs[i].payload);
  }
}

TEST(SubPicture, EmptySubpictureRoundtrips) {
  SubPicture sp;
  sp.info.pic_index = 1;
  std::vector<uint8_t> wire;
  sp.serialize(&wire);
  const SubPicture back = SubPicture::deserialize(wire);
  EXPECT_TRUE(back.runs.empty());
}

TEST(SubPicture, PayloadBytesExcludesHeaders) {
  SubPicture sp;
  sp.runs.push_back(sample_run(0));
  EXPECT_EQ(sp.payload_bytes(), sp.runs[0].payload.size());
  EXPECT_GT(sp.wire_bytes(), sp.payload_bytes());
}

TEST(PicInfo, PceRoundtrip) {
  mpeg2::PictureHeader ph;
  ph.type = mpeg2::PicType::P;
  ph.temporal_reference = 3;
  mpeg2::PictureCodingExt pce;
  pce.f_code[0][0] = 2;
  pce.f_code[0][1] = 3;
  pce.intra_dc_precision = 1;
  pce.q_scale_type = true;
  pce.alternate_scan = true;
  const PicInfo info = PicInfo::from(9, ph, pce);
  const mpeg2::PictureCodingExt back = info.to_pce();
  EXPECT_EQ(back.f_code[0][0], 2);
  EXPECT_EQ(back.f_code[0][1], 3);
  EXPECT_EQ(back.intra_dc_precision, 1);
  EXPECT_TRUE(back.q_scale_type);
  EXPECT_TRUE(back.alternate_scan);
}

TEST(StreamInfo, Roundtrip) {
  StreamInfo si;
  si.seq.width = 3840;
  si.seq.height = 2912;
  si.seq.frame_rate_code = 5;
  for (int i = 0; i < 64; ++i) {
    si.seq.intra_quant[size_t(i)] = uint8_t(i + 1);
    si.seq.non_intra_quant[size_t(i)] = uint8_t(64 - i);
  }
  std::vector<uint8_t> wire;
  si.serialize(&wire);
  const StreamInfo back = StreamInfo::deserialize(wire);
  EXPECT_EQ(back.seq.width, 3840);
  EXPECT_EQ(back.seq.height, 2912);
  EXPECT_EQ(back.seq.intra_quant, si.seq.intra_quant);
  EXPECT_EQ(back.seq.non_intra_quant, si.seq.non_intra_quant);
}

TEST(Mei, SerializeDeserializeRoundtrip) {
  std::vector<MeiInstruction> list = {
      {MeiOp::kSend, 0, 10, 20, 3},
      {MeiOp::kRecv, 1, 200, 180, 15},
      {MeiOp::kSend, 1, 0, 0, 0},
  };
  std::vector<uint8_t> wire;
  serialize_mei(list, &wire);
  EXPECT_EQ(wire.size(), 4 + list.size() * kMeiWireBytes);
  const auto back = deserialize_mei(wire);
  EXPECT_EQ(back, list);
}

TEST(Mei, EmptyListRoundtrips) {
  std::vector<uint8_t> wire;
  serialize_mei({}, &wire);
  EXPECT_TRUE(deserialize_mei(wire).empty());
}

}  // namespace
}  // namespace pdw::core
