// Common utility tests: CHECK macros, byte serialization, running stats,
// text tables, RNG determinism.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/check.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "common/timing.h"

namespace pdw {
namespace {

TEST(Check, PassingConditionIsSilent) {
  PDW_CHECK(1 + 1 == 2);
  PDW_CHECK_EQ(3, 3) << "never evaluated";
}

TEST(Check, FailureThrowsWithContext) {
  try {
    PDW_CHECK_EQ(2, 3) << "custom context " << 42;
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("custom context 42"), std::string::npos);
    EXPECT_NE(msg.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Check, ComparisonVariants) {
  EXPECT_THROW(PDW_CHECK_LT(5, 5), CheckError);
  EXPECT_THROW(PDW_CHECK_GT(5, 5), CheckError);
  EXPECT_THROW(PDW_CHECK_NE(5, 5), CheckError);
  PDW_CHECK_LE(5, 5);
  PDW_CHECK_GE(5, 5);
}

TEST(Bytes, RoundtripAllTypes) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i16(-12345);
  w.i32(-7654321);
  w.f64(3.14159);
  const uint8_t blob[3] = {1, 2, 3};
  w.bytes(blob);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i16(), -12345);
  EXPECT_EQ(r.i32(), -7654321);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  auto got = r.bytes(3);
  EXPECT_EQ(got[2], 3);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, ReaderOverrunThrows) {
  std::vector<uint8_t> buf = {1, 2};
  ByteReader r(buf);
  r.u16();
  EXPECT_THROW(r.u8(), CheckError);
}

TEST(RunningStat, WelfordMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SplitMix, DeterministicAndUniform) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(7);
  int buckets[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++buckets[c.next_below(4)];
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(buckets[i], 1000, 150);
  SplitMix64 d(9);
  for (int i = 0; i < 100; ++i) {
    const double v = d.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(HumanBytes, Units) {
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KB");
  EXPECT_EQ(human_bytes(3.5 * 1024 * 1024), "3.50 MB");
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
  t.add_row({"x", "y"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(ScopedAccumulator, AddsOnDestruction) {
  double total = 0;
  {
    ScopedAccumulator acc(total);
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace pdw
