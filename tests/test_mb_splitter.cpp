// Macroblock splitter tests: run structure, SPH state snapshots, macroblock
// coverage, MEI symmetry/completeness — the structural properties behind the
// bit-exactness results.
#include <gtest/gtest.h>

#include <set>

#include "core/mb_splitter.h"
#include "core/root_splitter.h"
#include "enc/encoder.h"
#include "video/generator.h"

namespace pdw::core {
namespace {

std::vector<uint8_t> make_stream(int w, int h, int frames,
                                 double bpp = 0.35) {
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 6;
  cfg.b_frames = 2;
  cfg.target_bpp = bpp;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, w, h, 17);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
}

class MbSplitterTest : public ::testing::Test {
 protected:
  void split_all(const std::vector<uint8_t>& es, const wall::TileGeometry& geo,
                 std::vector<SplitResult>* results) {
    RootSplitter root(es);
    MacroblockSplitter splitter(geo);
    splitter.set_stream_info(root.stream_info());
    for (int i = 0; i < root.picture_count(); ++i)
      results->push_back(splitter.split(root.picture(i), uint32_t(i)));
  }
};

TEST_F(MbSplitterTest, EveryMacroblockCoveredExactlyByItsTiles) {
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, 6);
  wall::TileGeometry geo(w, h, 2, 2, 32);
  std::vector<SplitResult> results;
  split_all(es, geo, &results);

  for (const SplitResult& r : results) {
    // Per tile: lead + coded(from header counts) + trail macroblocks of all
    // runs equal at least the tile rect... exact equality holds only after
    // interior skips are parsed, so check the stats-level invariant instead:
    // the per-tile macroblock counts from the sink must each equal the
    // tile's rect size.
    for (int t = 0; t < geo.tiles(); ++t)
      EXPECT_EQ(r.stats.mbs_per_tile[size_t(t)], geo.tile_mbs(t).count())
          << "picture " << r.info.pic_index << " tile " << t;
    // Total macroblock count matches the picture.
    EXPECT_EQ(r.stats.macroblocks, geo.mb_width() * geo.mb_height());
  }
}

TEST_F(MbSplitterTest, AtMostOneRunPerSlicePerTile) {
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, 6);
  wall::TileGeometry geo(w, h, 3, 2, 16);
  std::vector<SplitResult> results;
  split_all(es, geo, &results);
  for (const SplitResult& r : results) {
    for (int t = 0; t < geo.tiles(); ++t) {
      const auto& runs = r.subpictures[size_t(t)].runs;
      // Runs per tile == rows the tile spans (one slice per row, and the
      // tile's share of a slice is contiguous => exactly one run).
      const auto& rect = geo.tile_mbs(t);
      EXPECT_EQ(int(runs.size()), rect.y1 - rect.y0);
      // Runs arrive in row order with strictly increasing addresses.
      int prev_addr = -1;
      for (const auto& run : runs) {
        const int addr = run.num_coded
                             ? int(run.first_coded_addr)
                             : int(run.lead_skip_addr);
        EXPECT_GT(addr, prev_addr);
        prev_addr = addr;
      }
    }
  }
}

TEST_F(MbSplitterTest, MeiSendRecvAreSymmetric) {
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, 9);
  wall::TileGeometry geo(w, h, 2, 2, 0);
  std::vector<SplitResult> results;
  split_all(es, geo, &results);
  for (const SplitResult& r : results) {
    // Build multisets of (src, dst, ref, x, y) from both directions.
    std::multiset<std::tuple<int, int, int, int, int>> sends, recvs;
    for (int t = 0; t < geo.tiles(); ++t) {
      for (const MeiInstruction& i : r.mei[size_t(t)]) {
        if (i.op == MeiOp::kSend)
          sends.insert({t, i.peer, i.ref, i.mb_x, i.mb_y});
        else
          recvs.insert({int(i.peer), t, i.ref, i.mb_x, i.mb_y});
      }
    }
    EXPECT_EQ(sends, recvs) << "picture " << r.info.pic_index;
  }
}

TEST_F(MbSplitterTest, MeiSendersOwnWhatTheySend) {
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, 9);
  wall::TileGeometry geo(w, h, 2, 2, 32);
  std::vector<SplitResult> results;
  split_all(es, geo, &results);
  for (const SplitResult& r : results)
    for (int t = 0; t < geo.tiles(); ++t)
      for (const MeiInstruction& i : r.mei[size_t(t)]) {
        if (i.op != MeiOp::kSend) continue;
        EXPECT_TRUE(geo.tile_has_mb(t, i.mb_x, i.mb_y));
        EXPECT_EQ(geo.owner_of_mb(i.mb_x, i.mb_y), t);
        // Receivers only receive what they do NOT decode themselves.
        EXPECT_FALSE(geo.tile_has_mb(i.peer, i.mb_x, i.mb_y));
      }
}

TEST_F(MbSplitterTest, IntraPicturesNeedNoExchanges) {
  enc::EncoderConfig cfg;
  cfg.width = 320;
  cfg.height = 240;
  cfg.gop_size = 1;  // all-I stream
  cfg.b_frames = 0;
  const auto gen =
      video::make_scene(video::SceneKind::kPanningTexture, 320, 240, 3);
  enc::Mpeg2Encoder encoder(cfg);
  const auto es = encoder.encode(
      4, [&](int i, mpeg2::Frame* f) { gen->render(i, f); });

  wall::TileGeometry geo(320, 240, 4, 4, 0);
  std::vector<SplitResult> results;
  split_all(es, geo, &results);
  for (const SplitResult& r : results) {
    EXPECT_EQ(r.stats.exchange_pairs, 0);
    for (const auto& mei : r.mei) EXPECT_TRUE(mei.empty());
  }
}

TEST_F(MbSplitterTest, SingleTileGetsWholePictureNoSph) {
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, 3);
  wall::TileGeometry geo(w, h, 1, 1, 0);
  std::vector<SplitResult> results;
  split_all(es, geo, &results);
  for (const SplitResult& r : results) {
    ASSERT_EQ(r.subpictures.size(), 1u);
    const auto& sp = r.subpictures[0];
    EXPECT_EQ(int(sp.runs.size()), geo.mb_height());  // one run per slice
    for (const auto& run : sp.runs) {
      // Whole slices: no lead/trail skips, and every payload starts with a
      // coded macroblock at column 0 (our encoder codes slice-first MBs).
      EXPECT_EQ(run.lead_skip_count, 0);
      EXPECT_EQ(run.first_coded_addr % uint32_t(geo.mb_width()), 0u);
    }
    EXPECT_TRUE(r.mei[0].empty());
  }
}

TEST_F(MbSplitterTest, SphStateSnapshotsHaveSliceResetAtRowStart) {
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, 3);
  wall::TileGeometry geo(w, h, 2, 1, 0);
  std::vector<SplitResult> results;
  split_all(es, geo, &results);
  const mpeg2::PictureCodingExt pce;  // defaults: precision 8
  for (const SplitResult& r : results) {
    // Tile 0 starts at column 0 of every slice, so its run states must be
    // exactly the fresh slice-start state (reset DC, zero PMV).
    for (const auto& run : r.subpictures[0].runs) {
      EXPECT_EQ(run.state.dc_pred[0], pce.dc_reset_value());
      EXPECT_EQ(run.state.pmv[0][0], 0);
      EXPECT_EQ(run.state.pmv[0][1], 0);
    }
  }
}

TEST_F(MbSplitterTest, OutputBytesAccountHeadersAndPayloads) {
  const int w = 320, h = 240;
  const auto es = make_stream(w, h, 3);
  wall::TileGeometry geo(w, h, 2, 2, 0);
  std::vector<SplitResult> results;
  split_all(es, geo, &results);
  for (const SplitResult& r : results) {
    size_t expected = 0;
    for (int t = 0; t < geo.tiles(); ++t) {
      expected += r.subpictures[size_t(t)].wire_bytes();
      expected += 4 + r.mei[size_t(t)].size() * kMeiWireBytes;
    }
    EXPECT_EQ(r.stats.output_bytes, expected);
    EXPECT_GT(r.stats.output_bytes, r.stats.input_bytes / 2);
  }
}

TEST_F(MbSplitterTest, RejectsGeometryMismatch) {
  const auto es = make_stream(320, 240, 2);
  wall::TileGeometry wrong(640, 480, 2, 2, 0);
  RootSplitter root(es);
  MacroblockSplitter splitter(wrong);
  // A mismatched deployment configuration is a bug, caught at setup time.
  EXPECT_THROW(splitter.set_stream_info(root.stream_info()), CheckError);
  // A stream whose embedded sequence header disagrees with the wall is
  // per-picture damage: the split fails with a status, not a throw.
  const SplitResult r = splitter.split(root.picture(0), 0);
  EXPECT_FALSE(r.status.ok());
  EXPECT_TRUE(r.subpictures.empty());
}

}  // namespace
}  // namespace pdw::core
