// Frame / TileFrame buffer tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "mpeg2/frame.h"
#include "mpeg2/recon.h"

namespace pdw::mpeg2 {
namespace {

TEST(Plane, RowAccessAndFill) {
  Plane p(32, 16, 7);
  EXPECT_EQ(p.at(0, 0), 7);
  p.set(31, 15, 200);
  EXPECT_EQ(p.at(31, 15), 200);
  p.fill(3);
  EXPECT_EQ(p.at(31, 15), 3);
}

TEST(Frame, ChromaIsHalfResolution) {
  Frame f(64, 48);
  EXPECT_EQ(f.y.width(), 64);
  EXPECT_EQ(f.cb.width(), 32);
  EXPECT_EQ(f.cr.height(), 24);
}

TEST(Psnr, IdenticalPlanesReport99) {
  Plane a(16, 16, 100), b(16, 16, 100);
  EXPECT_DOUBLE_EQ(psnr(a, b), 99.0);
}

TEST(Psnr, KnownMse) {
  Plane a(16, 16, 100), b(16, 16, 110);  // MSE = 100
  EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0), 1e-9);
}

TEST(FrameMbIo, StoreLoadRoundtrip) {
  Frame f(64, 64);
  MacroblockPixels px;
  for (int i = 0; i < 256; ++i) px.y[i] = uint8_t(i);
  for (int i = 0; i < 64; ++i) {
    px.cb[i] = uint8_t(i + 1);
    px.cr[i] = uint8_t(i + 2);
  }
  store_mb(&f, 2, 1, px);
  const MacroblockPixels back = load_mb(f, 2, 1);
  EXPECT_EQ(std::memcmp(&back, &px, sizeof(px)), 0);
  EXPECT_EQ(f.y.at(2 * 16, 1 * 16), 0);
  EXPECT_EQ(f.y.at(2 * 16 + 15, 1 * 16), 15);
}

TEST(TileFrame, GlobalCoordinateAccess) {
  // Tile covering macroblocks [2,4) x [1,3) of some larger picture.
  TileFrame t(2, 1, 4, 3);
  EXPECT_EQ(t.px0(), 32);
  EXPECT_EQ(t.py0(), 16);
  EXPECT_EQ(t.y().width(), 32);
  EXPECT_EQ(t.cb().width(), 16);
  *t.pixel(0, 33, 17) = 42;
  EXPECT_EQ(*t.pixel(0, 33, 17), 42);
  EXPECT_EQ(t.y().at(1, 1), 42);
  *t.pixel(1, 16, 8) = 9;  // chroma coordinates
  EXPECT_EQ(t.cb().at(0, 0), 9);
}

TEST(TileFrame, ContainsChecks) {
  TileFrame t(2, 1, 4, 3);
  EXPECT_TRUE(t.contains_mb(2, 1));
  EXPECT_TRUE(t.contains_mb(3, 2));
  EXPECT_FALSE(t.contains_mb(4, 2));
  EXPECT_FALSE(t.contains_mb(2, 0));
  EXPECT_TRUE(t.contains_rect(0, 32, 16, 32, 32));
  EXPECT_FALSE(t.contains_rect(0, 31, 16, 32, 32));
  EXPECT_TRUE(t.contains_rect(1, 16, 8, 16, 16));   // full chroma extent
  EXPECT_FALSE(t.contains_rect(1, 16, 8, 17, 16));
}

TEST(TileFrame, MacroblockExtractInsertRoundtrip) {
  TileFrame a(2, 1, 4, 3), b(2, 1, 4, 3);
  // Paint distinct values.
  for (int y = 0; y < a.y().height(); ++y)
    for (int x = 0; x < a.y().width(); ++x)
      a.y().set(x, y, uint8_t((x * 7 + y * 13) & 0xFF));
  for (int y = 0; y < a.cb().height(); ++y)
    for (int x = 0; x < a.cb().width(); ++x) {
      a.cb().set(x, y, uint8_t(x + y));
      a.cr().set(x, y, uint8_t(x * y));
    }
  for (int mby = 1; mby < 3; ++mby)
    for (int mbx = 2; mbx < 4; ++mbx)
      b.insert_mb(mbx, mby, a.extract_mb(mbx, mby));
  EXPECT_EQ(a.y(), b.y());
  EXPECT_EQ(a.cb(), b.cb());
  EXPECT_EQ(a.cr(), b.cr());
}

}  // namespace
}  // namespace pdw::mpeg2
