// Unit tests for the telemetry layer (obs/): histogram bucket arithmetic,
// percentile accessors, shard merging, registry snapshots, the span tracer's
// per-thread rings, and the Chrome-trace / JSON exporters.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdw::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket boundaries.
// ---------------------------------------------------------------------------

TEST(Histogram, BucketIndexBoundaries) {
  // Bucket 0 holds exactly {0}; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  EXPECT_EQ(Histogram::bucket_index(1023), 10);
  EXPECT_EQ(Histogram::bucket_index(1024), 11);
  EXPECT_EQ(Histogram::bucket_index(uint64_t(1) << 63), 64);
  EXPECT_EQ(Histogram::bucket_index(~uint64_t(0)), 64);
}

TEST(Histogram, BucketLowerIsInverseOfIndexAtPowersOfTwo) {
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t lo = Histogram::bucket_lower(i);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << "bucket " << i;
  }
}

TEST(Histogram, PowersOfTwoReportExactly) {
  // A power of two is the lower edge of its bucket, so percentile() (which
  // reports lower edges) returns such samples exactly.
  Histogram h;
  h.observe(8);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 8u);
  EXPECT_EQ(h.p50(), 8u);
  EXPECT_EQ(h.p95(), 8u);
  EXPECT_EQ(h.p99(), 8u);
}

TEST(Histogram, EmptyHistogramReportsZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p99(), 0u);
  EXPECT_EQ(h.percentile(100), 0u);
}

TEST(Histogram, PercentilePicksCorrectSample) {
  // 100 samples: 1..100. percentile(p) returns the lower bucket edge of the
  // ceil(p)-th sample.
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.observe(v);
  EXPECT_EQ(h.count(), 100u);
  // The 50th sample is 50, in bucket [32, 64).
  EXPECT_EQ(h.p50(), 32u);
  // The 95th sample is 95, in bucket [64, 128).
  EXPECT_EQ(h.p95(), 64u);
  // p=0 clamps to the first sample's bucket: 1 -> [1, 2).
  EXPECT_EQ(h.percentile(0), 1u);
  EXPECT_EQ(h.percentile(100), 64u);
}

TEST(Histogram, ZeroSamplesLandInBucketZero) {
  Histogram h;
  h.observe(0);
  h.observe(0);
  h.observe(1);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.p50(), 0u);      // 2nd of 3 samples is still a zero
  EXPECT_EQ(h.percentile(100), 1u);
}

TEST(Histogram, MergeAccumulatesShards) {
  // Per-thread shards combine bucket-wise; percentiles over the merged
  // histogram equal those of one histogram fed every sample.
  Histogram a, b, whole;
  for (uint64_t v = 1; v <= 50; ++v) {
    a.observe(v);
    whole.observe(v);
  }
  for (uint64_t v = 51; v <= 100; ++v) {
    b.observe(v);
    whole.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.sum(), whole.sum());
  for (int i = 0; i < Histogram::kBuckets; ++i)
    EXPECT_EQ(a.bucket(i), whole.bucket(i)) << "bucket " << i;
  EXPECT_EQ(a.p50(), whole.p50());
  EXPECT_EQ(a.p95(), whole.p95());
  EXPECT_EQ(a.p99(), whole.p99());
}

// ---------------------------------------------------------------------------
// Registry: resolution, labels, snapshot.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, LabelsSeparateInstruments) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("pics", {.node = 1, .stream = 0});
  Counter& c2 = reg.counter("pics", {.node = 2, .stream = 0});
  EXPECT_NE(&c1, &c2);
  // Resolving again returns the same instrument.
  EXPECT_EQ(&reg.counter("pics", {.node = 1, .stream = 0}), &c1);
  c1.add(3);
  c2.add(4);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("pics", {.node = 1, .stream = 0}), 3u);
  EXPECT_EQ(snap.counter_value("pics", {.node = 2, .stream = 0}), 4u);
  EXPECT_EQ(snap.counter_value("pics", {.node = 9, .stream = 0}), 0u);
  EXPECT_EQ(snap.counter_total("pics"), 7u);
  EXPECT_EQ(snap.counter_total("absent"), 0u);
}

TEST(MetricsRegistry, SnapshotCarriesAllKinds) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(-7);
  Histogram& h = reg.histogram("h");
  h.observe(16);
  h.observe(16);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.values.size(), 3u);
  bool saw_gauge = false, saw_hist = false;
  for (const MetricValue& v : snap.values) {
    if (v.family == "g") {
      saw_gauge = true;
      EXPECT_EQ(v.kind, MetricKind::kGauge);
      EXPECT_EQ(v.gauge, -7);
    }
    if (v.family == "h") {
      saw_hist = true;
      EXPECT_EQ(v.kind, MetricKind::kHistogram);
      EXPECT_EQ(v.count, 2u);
      EXPECT_EQ(v.sum, 32u);
      EXPECT_EQ(v.p50, 16u);
      ASSERT_EQ(v.buckets.size(), 1u);
      EXPECT_EQ(v.buckets[0], (std::pair<uint64_t, uint64_t>{16, 2}));
    }
  }
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST(MetricsRegistry, ResetValuesKeepsInstrumentsValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(9);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // previously resolved reference still works
  EXPECT_EQ(reg.snapshot().counter_total("c"), 1u);
}

// ---------------------------------------------------------------------------
// Tracer: per-thread rings, multi-thread merge, virtual-time spans.
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t;
  t.record("x", 1, 0, 10);
  { Span s("scoped", 1); }
  EXPECT_TRUE(t.collect().empty());
}

TEST(Tracer, CollectMergesThreadsSortedByStart) {
  // Real-time record() stamps the recording thread's ring tid; events from
  // different threads merge into one timeline sorted by start.
  Tracer t;
  t.enable(1024);
  t.record("late", 1, /*start_ns=*/2000, /*dur_ns=*/500, 7);
  std::thread other([&] { t.record("early", 2, /*start_ns=*/1000, 250); });
  other.join();
  t.disable();

  const auto events = t.collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "early");
  EXPECT_EQ(events[0].pid, 2);
  EXPECT_EQ(events[0].ts_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 250u);
  EXPECT_STREQ(events[1].name, "late");
  EXPECT_EQ(events[1].arg_pic, 7u);
  // Threads got distinct tids.
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, AddCompleteKeepsCallerLane) {
  // Virtual-time spans (the DES) name their own execution lane: the tid is
  // the caller's, not the recording thread's.
  Tracer t;
  t.enable(64);
  t.add_complete("a", 1, /*tid=*/3, 0.0, 1.0);
  t.add_complete("b", 1, /*tid=*/4, 1.0, 1.0);
  t.disable();
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tid, 3);
  EXPECT_EQ(events[1].tid, 4);
}

TEST(Tracer, RingWrapDropsOldestAndCounts) {
  Tracer t;
  // enable() clamps the per-thread capacity to a floor of 16 events.
  t.enable(/*capacity_per_thread=*/16);
  for (int i = 0; i < 20; ++i)
    t.add_complete("e", 0, 0, double(i), 0.5, uint32_t(i));
  t.disable();
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 16u);  // ring keeps the newest 16
  EXPECT_EQ(events.front().arg_pic, 4u);
  EXPECT_EQ(events.back().arg_pic, 19u);
  EXPECT_EQ(t.dropped(), 4u);
}

TEST(Tracer, AggregateSumsPerNamePid) {
  Tracer t;
  t.enable(64);
  t.add_complete("work", 3, 0, 0.0, 1.0);
  t.add_complete("work", 3, 0, 2.0, 0.5);
  t.add_complete("work", 4, 0, 0.0, 0.25);
  t.instant("mark", 3);  // instants excluded from aggregation
  t.disable();
  const auto agg = t.aggregate();
  const auto w3 = agg.at({"work", 3});
  EXPECT_EQ(w3.count, 2u);
  EXPECT_EQ(w3.total_ns, uint64_t(1.5e9));
  EXPECT_EQ(agg.at({"work", 4}).count, 1u);
  EXPECT_EQ(agg.count({"mark", 3}), 0u);
}

TEST(Tracer, EnableResetsPreviousRun) {
  Tracer t;
  t.enable(64);
  t.add_complete("a", 0, 0, 0.0, 1.0);
  t.disable();
  t.enable(64);
  t.add_complete("b", 0, 0, 0.0, 1.0);
  t.disable();
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "b");
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(Export, ChromeTraceContainsSpansAndMetadata) {
  Tracer t;
  t.enable(64);
  t.add_complete(span::kDecodeSp, 5, 1, 1.0, 0.5, 3);
  t.instant(span::kRetransmit, 5, 9);
  t.disable();

  const std::string path = ::testing::TempDir() + "/pdw_trace_test.json";
  ASSERT_TRUE(write_chrome_trace(t, path, [](int pid) {
    return "node" + std::to_string(pid);
  }));
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"decode_sp\""), std::string::npos);
  EXPECT_NE(json.find("\"retransmit\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("node5"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Export, MetricsJsonRoundsTripFamilies) {
  MetricsRegistry reg;
  reg.counter(family::kPicturesDecoded, {.node = 3, .stream = 0}).add(12);
  reg.histogram(family::kDecodeNs, {.node = 3, .stream = 0}).observe(1024);
  const std::string json = metrics_json(reg.snapshot());
  EXPECT_NE(json.find("\"pictures_decoded\""), std::string::npos);
  EXPECT_NE(json.find("\"decode_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":3"), std::string::npos);
  EXPECT_NE(json.find("12"), std::string::npos);
}

TEST(Export, Fig7BreakdownNormalizesShares) {
  Tracer t;
  t.enable(64);
  const int pid = 100;
  t.add_complete(span::kDecodeSp, pid, 0, 0.0, 0.6);
  t.add_complete(span::kServeSp, pid, 0, 0.6, 0.2);
  t.add_complete(span::kRecvSp, pid, 0, 0.8, 0.1);
  t.add_complete(span::kWaitHalo, pid, 0, 0.9, 0.05);
  t.add_complete(span::kAckPic, pid, 0, 0.95, 0.05);
  t.add_complete(span::kDecodeSp, pid + 5, 0, 0.0, 1.0);  // outside range
  t.disable();

  const auto shares = fig7_breakdown(t, pid, pid);
  ASSERT_EQ(shares.size(), 1u);
  const StageShare& s = shares.at(pid);
  EXPECT_NEAR(s.work, 0.6, 1e-9);
  EXPECT_NEAR(s.serve, 0.2, 1e-9);
  EXPECT_NEAR(s.receive, 0.1, 1e-9);
  EXPECT_NEAR(s.wait, 0.05, 1e-9);
  EXPECT_NEAR(s.ack, 0.05, 1e-9);
  EXPECT_NEAR(s.work + s.serve + s.receive + s.wait + s.ack, 1.0, 1e-9);
  EXPECT_EQ(s.total_ns, uint64_t(1e9));
}

}  // namespace
}  // namespace pdw::obs
