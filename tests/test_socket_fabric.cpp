// The real-socket transport: UDP datagram framing, fragmentation and
// reassembly, receiver-side flow control, rendezvous discovery, ICMP-driven
// peer-death detection, the adaptive RTO estimator, and the reliable layer
// surviving a deterministically impaired loopback path.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/impair.h"
#include "net/reliable.h"
#include "net/rendezvous.h"
#include "net/socket_fabric.h"

namespace pdw::net {
namespace {

// Wire two fabrics to each other (and themselves — self rows are unused).
void wire(std::vector<SocketFabric*> fabrics) {
  std::vector<Endpoint> map;
  for (SocketFabric* f : fabrics) map.push_back(f->local_endpoint());
  for (SocketFabric* f : fabrics) f->set_peers(map);
}

Message make_msg(int src, int type, uint32_t seq, size_t payload_bytes,
                 uint8_t fill = 0xab) {
  Message m;
  m.src = src;
  m.type = type;
  m.seq = seq;
  m.payload = mem::Bytes::alloc(payload_bytes);
  std::memset(m.payload.mutable_data(), fill, payload_bytes);
  return m;
}

// --- Hole-timeout derivation (documented worst case, pinned) ---------------

TEST(ReliableConfigDerivation, FixedRtoHoleTimeoutMatchesRetransmissionSpan) {
  ReliableConfig cfg;
  cfg.adaptive_rto = false;
  cfg.rto_initial_s = 0.004;
  cfg.rto_max_s = 0.064;
  cfg.max_retries = 12;
  // Worst-case sender span: timeouts double from rto_initial, capped at
  // rto_max, across the initial send plus max_retries retries:
  // 0.004 + 0.008 + 0.016 + 0.032 + 9 * 0.064 = 0.636. The receiver waits
  // 4x that plus scheduling slack before skipping a hole.
  EXPECT_NEAR(derive_hole_timeout(cfg), 4 * 0.636 + 0.1, 1e-9);
}

TEST(ReliableConfigDerivation, AdaptiveRtoDerivesFromWorstCaseRto) {
  ReliableConfig cfg;
  cfg.adaptive_rto = true;
  cfg.rto_initial_s = 0.004;
  cfg.rto_max_s = 0.064;
  cfg.max_retries = 12;
  // Adaptive RTO can sit at the ceiling the whole time, so the derivation
  // must assume every timeout is rto_max: 13 * 0.064 = 0.832.
  EXPECT_NEAR(derive_hole_timeout(cfg), 4 * 0.832 + 0.1, 1e-9);
}

TEST(ReliableConfigDerivation, EndpointAppliesDerivations) {
  Fabric f(2);
  ReliableConfig cfg;
  cfg.adaptive_rto = true;  // rto_min_s = 0 must derive to rto_initial_s
  ReliableEndpoint ep(&f, 0, cfg);
  EXPECT_DOUBLE_EQ(ep.rto_min_s(), cfg.rto_initial_s);
  EXPECT_NEAR(ep.hole_timeout_s(), derive_hole_timeout(cfg), 1e-9);
  // An explicit hole timeout is honored as-is.
  cfg.hole_timeout_s = 7.5;
  ReliableEndpoint ep2(&f, 1, cfg);
  EXPECT_DOUBLE_EQ(ep2.hole_timeout_s(), 7.5);
}

// --- Datagram framing ------------------------------------------------------

TEST(SocketFabric, RoundTripPreservesEveryHeaderField) {
  SocketFabric a(0, 2), b(1, 2);
  wire({&a, &b});
  Message m = make_msg(0, -7, 42, 100, 0x5c);
  m.aux = 7;
  m.stream = 3;
  m.tseq = 99;
  m.crc = 0xdeadbeef;
  ASSERT_EQ(a.send(0, 1, std::move(m)), SendStatus::kOk);
  Message got;
  ASSERT_EQ(b.receive_for(1, 2.0, &got), RecvStatus::kOk);
  EXPECT_EQ(got.src, 0);
  EXPECT_EQ(got.type, -7);  // negative types (transport acks) survive
  EXPECT_EQ(got.seq, 42u);
  EXPECT_EQ(got.aux, 7);
  EXPECT_EQ(got.stream, 3);
  EXPECT_EQ(got.tseq, 99u);
  EXPECT_EQ(got.crc, 0xdeadbeefu);
  ASSERT_EQ(got.payload.size(), 100u);
  for (uint8_t byte : got.payload.span()) EXPECT_EQ(byte, 0x5c);
}

TEST(SocketFabric, LargePayloadIsFragmentedAndReassembled) {
  SocketFabric a(0, 2), b(1, 2);
  wire({&a, &b});
  const size_t big = 300 * 1024;  // several 56 KiB fragments
  Message m = make_msg(0, 1, 0, big);
  for (size_t i = 0; i < big; ++i)
    m.payload.mutable_data()[i] = uint8_t(i * 31 + (i >> 9));
  ASSERT_EQ(a.send(0, 1, std::move(m)), SendStatus::kOk);
  Message got;
  ASSERT_EQ(b.receive_for(1, 2.0, &got), RecvStatus::kOk);
  ASSERT_EQ(got.payload.size(), big);
  for (size_t i = 0; i < big; ++i)
    ASSERT_EQ(got.payload.data()[i], uint8_t(i * 31 + (i >> 9))) << i;
  EXPECT_TRUE(b.quiescent());
}

TEST(SocketFabric, FragmentBytesIsClampedToTheDocumentedRange) {
  SocketFabricConfig cfg;
  EXPECT_EQ(SocketFabric(0, 1, cfg).fragment_bytes(),
            size_t(kMaxFragmentBytes));  // default unchanged: 56 KiB
  cfg.fragment_bytes = 512;  // below the floor
  EXPECT_EQ(SocketFabric(0, 1, cfg).fragment_bytes(),
            size_t(kMinFragmentBytes));
  cfg.fragment_bytes = 1 << 20;  // above the 64 KiB-datagram-safe ceiling
  EXPECT_EQ(SocketFabric(0, 1, cfg).fragment_bytes(),
            size_t(kMaxFragmentBytes));
  cfg.fragment_bytes = 8192;
  EXPECT_EQ(SocketFabric(0, 1, cfg).fragment_bytes(), 8192u);
}

TEST(SocketFabric, SmallFragmentsRoundTripAndInteropWithDefaultReceiver) {
  // Sender fragments at 4 KiB; the receiver is left at the default 56 KiB.
  // Reassembly is driven by the per-datagram framing fields, so mismatched
  // settings must interoperate.
  SocketFabricConfig small;
  small.fragment_bytes = kMinFragmentBytes;
  SocketFabric a(0, 2, small), b(1, 2);
  wire({&a, &b});
  const size_t big = 100 * 1024;  // 25 fragments at 4 KiB
  Message m = make_msg(0, 1, 5, big);
  for (size_t i = 0; i < big; ++i)
    m.payload.mutable_data()[i] = uint8_t(i * 13 + (i >> 8));
  m.aux = 3;
  ASSERT_EQ(a.send(0, 1, std::move(m)), SendStatus::kOk);
  Message got;
  ASSERT_EQ(b.receive_for(1, 2.0, &got), RecvStatus::kOk);
  EXPECT_EQ(got.seq, 5u);
  EXPECT_EQ(got.aux, 3);
  ASSERT_EQ(got.payload.size(), big);
  for (size_t i = 0; i < big; ++i)
    ASSERT_EQ(got.payload.data()[i], uint8_t(i * 13 + (i >> 8))) << i;
  EXPECT_TRUE(b.quiescent());

  // And the reverse direction: 56 KiB fragments into a 4 KiB-configured
  // receiver (receive buffers are sized for the max either way).
  Message back = make_msg(1, 2, 9, big, 0x3e);
  ASSERT_EQ(b.send(1, 0, std::move(back)), SendStatus::kOk);
  ASSERT_EQ(a.receive_for(0, 2.0, &got), RecvStatus::kOk);
  ASSERT_EQ(got.payload.size(), big);
  for (uint8_t byte : got.payload.span()) ASSERT_EQ(byte, 0x3e);
}

TEST(SocketFabric, BulkWithoutCreditIsDroppedAndRecoverable) {
  SocketFabric a(0, 2), b(1, 2);
  wire({&a, &b});
  Message m = make_msg(0, 1, 0, 64);
  m.bulk = true;
  ASSERT_EQ(a.send(0, 1, std::move(m)), SendStatus::kOk);
  Message got;
  EXPECT_EQ(b.receive_for(1, 0.2, &got), RecvStatus::kTimeout);
  EXPECT_EQ(b.credit_drops(), 1u);
  // With a buffer posted, the (re)sent copy goes through.
  b.post_receive(1);
  Message again = make_msg(0, 1, 0, 64);
  again.bulk = true;
  ASSERT_EQ(a.send(0, 1, std::move(again)), SendStatus::kOk);
  ASSERT_EQ(b.receive_for(1, 2.0, &got), RecvStatus::kOk);
  EXPECT_TRUE(got.bulk);
}

TEST(SocketFabric, SendToClosedPortReportsPeerError) {
  SocketFabric a(0, 2), b(1, 2);
  Endpoint dead;
  {
    SocketFabric ephemeral(1, 2);
    dead = ephemeral.local_endpoint();
  }  // port closed here
  std::vector<Endpoint> map{a.local_endpoint(), dead};
  a.set_peers(map);
  for (int i = 0; i < 3; ++i) {
    a.send(0, 1, make_msg(0, 1, uint32_t(i), 32));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::vector<int> errs = a.take_peer_errors();
    if (!errs.empty()) {
      EXPECT_EQ(errs[0], 1);
      return;
    }
  }
  FAIL() << "no peer error after sends to a closed port";
  (void)b;
}

// --- Rendezvous ------------------------------------------------------------

TEST(Rendezvous, AllJoinersReceiveTheSameCompleteMap) {
  const int n = 4;
  RendezvousServer server(n);
  RendezvousConfig cfg;
  cfg.timeout_s = 5.0;
  server.serve_async(cfg);

  std::vector<Endpoint> locals(n);
  for (int i = 0; i < n; ++i)
    locals[size_t(i)] = Endpoint{kLoopbackIp, uint16_t(9000 + i)};
  std::vector<std::vector<Endpoint>> maps(n);
  std::vector<RendezvousStatus> status(n, RendezvousStatus::kTimeout);
  std::vector<std::thread> joiners;
  for (int i = 0; i < n; ++i)
    joiners.emplace_back([&, i] {
      status[size_t(i)] = rendezvous_join(server.endpoint(), i,
                                          locals[size_t(i)], n,
                                          &maps[size_t(i)], cfg);
    });
  for (auto& t : joiners) t.join();
  EXPECT_EQ(server.result(), RendezvousStatus::kOk);
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(status[size_t(i)], RendezvousStatus::kOk) << i;
    ASSERT_EQ(maps[size_t(i)].size(), size_t(n));
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(maps[size_t(i)][size_t(j)].ip, locals[size_t(j)].ip);
      EXPECT_EQ(maps[size_t(i)][size_t(j)].port, locals[size_t(j)].port);
    }
  }
}

TEST(Rendezvous, JoinTimesOutWithoutAListener) {
  RendezvousConfig cfg;
  cfg.timeout_s = 0.3;
  std::vector<Endpoint> map;
  // Port 9 (discard) on loopback: nothing rendezvous-shaped listens there.
  EXPECT_EQ(rendezvous_join(Endpoint{kLoopbackIp, 9}, 0,
                            Endpoint{kLoopbackIp, 1000}, 2, &map, cfg),
            RendezvousStatus::kTimeout);
}

TEST(Rendezvous, MapTransformSubstitutesHandedOutEndpoints) {
  const int n = 2;
  RendezvousServer server(n);
  server.set_map_transform([](const std::vector<Endpoint>& real) {
    std::vector<Endpoint> fronts = real;
    for (Endpoint& ep : fronts) ep.port = uint16_t(ep.port + 1);
    return fronts;
  });
  RendezvousConfig cfg;
  cfg.timeout_s = 5.0;
  server.serve_async(cfg);
  std::vector<std::vector<Endpoint>> maps(n);
  std::vector<std::thread> joiners;
  for (int i = 0; i < n; ++i)
    joiners.emplace_back([&, i] {
      std::vector<Endpoint> got;
      rendezvous_join(server.endpoint(), i,
                      Endpoint{kLoopbackIp, uint16_t(7000 + i)}, n, &got, cfg);
      maps[size_t(i)] = got;
    });
  for (auto& t : joiners) t.join();
  EXPECT_EQ(server.result(), RendezvousStatus::kOk);
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(maps[size_t(i)].size(), size_t(n));
    EXPECT_EQ(maps[size_t(i)][0].port, 7001);
    EXPECT_EQ(maps[size_t(i)][1].port, 7002);
  }
}

// --- Adaptive RTO over real sockets ----------------------------------------

TEST(SocketReliable, AdaptiveRtoLearnsFromRttSamples) {
  SocketFabric fa(0, 2), fb(1, 2);
  wire({&fa, &fb});
  ReliableConfig cfg;  // adaptive by default
  ReliableEndpoint tx(&fa, 0, cfg);
  ReliableEndpoint rx(&fb, 1, cfg);
  EXPECT_DOUBLE_EQ(tx.srtt_s(1), 0.0);  // no samples yet

  std::atomic<bool> done{false};
  std::thread pump([&] {
    Message m;
    int received = 0;
    while (received < 20 && !done.load()) {
      if (rx.recv(&m, 0.02) == ReliableEndpoint::Status::kMessage) ++received;
    }
    // Keep t-acking the sender's tail until it has seen every ack.
    while (!done.load()) rx.recv(&m, 0.01);
  });
  for (uint32_t i = 0; i < 20; ++i) {
    tx.send(1, make_msg(0, 1, i, 256));
    Message m;
    tx.recv(&m, 0.005);
  }
  for (int i = 0; i < 1000 && tx.unacked() > 0; ++i) {
    Message m;
    tx.recv(&m, 0.005);
  }
  done.store(true);
  pump.join();

  EXPECT_EQ(tx.unacked(), 0u);
  EXPECT_GT(tx.stats().rtt_samples, 0u);
  EXPECT_GT(tx.srtt_s(1), 0.0);
  EXPECT_LT(tx.srtt_s(1), 0.05);  // loopback: well under 50 ms
  EXPECT_GE(tx.rto_s(1), tx.rto_min_s());
  EXPECT_LE(tx.rto_s(1), cfg.rto_max_s);
}

// --- Reliable delivery through the impaired path (satellite: seeded sweep) -

struct SweepResult {
  ReliableStats tx_stats;
  ReliableStats rx_stats;
  std::vector<uint32_t> delivered_seqs;
  ImpairProxy::Stats impair;
};

SweepResult run_impaired_transfer(uint64_t seed, double loss, double dup,
                                  double delay, int count) {
  SocketFabric fa(0, 2), fb(1, 2);
  std::vector<Endpoint> real{fa.local_endpoint(), fb.local_endpoint()};
  ImpairConfig ic;
  ic.seed = seed;
  ic.loss = loss;
  ic.dup = dup;
  ic.delay = delay;
  ic.delay_s = 0.001;
  ImpairProxy proxy(real, ic);
  fa.set_peers(proxy.proxied());
  fb.set_peers(proxy.proxied());

  ReliableConfig cfg;
  cfg.rto_initial_s = 0.002;
  cfg.rto_max_s = 0.032;
  ReliableEndpoint tx(&fa, 0, cfg);
  ReliableEndpoint rx(&fb, 1, cfg);

  SweepResult res;
  std::atomic<bool> done{false};
  std::thread rx_thread([&] {
    Message m;
    while (int(res.delivered_seqs.size()) < count && !done.load()) {
      if (rx.recv(&m, 0.02) == ReliableEndpoint::Status::kMessage)
        res.delivered_seqs.push_back(m.seq);
    }
    while (!done.load()) rx.recv(&m, 0.01);  // t-ack the sender's tail
  });

  for (uint32_t i = 0; i < uint32_t(count); ++i) {
    Message m = make_msg(0, 1, i, 400 + (i % 7) * 100);
    m.seq = i;  // the reliable layer overwrites tseq, not seq
    tx.send(1, std::move(m));
    Message got;
    tx.recv(&got, 0.001);
  }
  // Drive retransmissions until everything is acked (or a bounded deadline
  // passes — the assertions below catch a stall).
  for (int i = 0; i < 4000 && tx.unacked() > 0; ++i) {
    Message got;
    tx.recv(&got, 0.005);
  }
  done.store(true);
  rx_thread.join();
  proxy.stop();
  res.tx_stats = tx.stats();
  res.rx_stats = rx.stats();
  res.impair = proxy.stats();
  return res;
}

TEST(SocketReliable, SurvivesSeededLossDupDelaySweep) {
  int sweep_index = 0;
  for (const double loss : {0.02, 0.05, 0.10}) {
    SCOPED_TRACE(loss);
    const int count = 200;
    const SweepResult res = run_impaired_transfer(
        /*seed=*/uint64_t(1000 + sweep_index++), loss, /*dup=*/0.05,
        /*delay=*/0.10, count);

    // Exactly-once, in-order: the application saw every seq exactly once,
    // ascending, no matter what the wire did.
    ASSERT_EQ(res.delivered_seqs.size(), size_t(count));
    for (int i = 0; i < count; ++i)
      ASSERT_EQ(res.delivered_seqs[size_t(i)], uint32_t(i));

    // Wire-level damage really happened (the proxy is not a no-op)...
    EXPECT_GT(res.impair.dropped + res.impair.duplicated + res.impair.delayed,
              0u);
    // ...and the reliable layer paid for it with retransmissions, never
    // with abandonment at these rates.
    EXPECT_GT(res.tx_stats.retransmits, 0u);
    EXPECT_EQ(res.tx_stats.abandoned, 0u);

    // Stats consistency: sends dominate retransmits + abandonments, and the
    // receiver delivered exactly what the application got.
    EXPECT_GE(res.tx_stats.sent,
              res.tx_stats.retransmits + res.tx_stats.abandoned);
    EXPECT_EQ(res.rx_stats.delivered, uint64_t(count));
  }
}

TEST(ImpairProxy, ScheduleIsDeterministicForAFixedSeed) {
  auto run = [](uint64_t seed) {
    SocketFabric fa(0, 2), fb(1, 2);
    std::vector<Endpoint> real{fa.local_endpoint(), fb.local_endpoint()};
    ImpairConfig ic;
    ic.seed = seed;
    ic.loss = 0.25;
    ImpairProxy proxy(real, ic);
    fa.set_peers(proxy.proxied());
    fb.set_peers(proxy.proxied());
    std::vector<uint32_t> got;
    for (uint32_t i = 0; i < 40; ++i) fa.send(0, 1, make_msg(0, 1, i, 64));
    Message m;
    while (fb.receive_for(1, 0.1, &m) == RecvStatus::kOk) got.push_back(m.seq);
    proxy.stop();
    return got;
  };
  const std::vector<uint32_t> a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);          // same seed, same survivors
  EXPECT_NE(a.size(), 40u);  // at 25% loss some datagrams really died
  (void)c;  // a different seed need not differ, but usually does
}

}  // namespace
}  // namespace pdw::net
