// Multi-stream session edge cases: empty sessions, streams finishing out of
// attach order or mid-GOP, duplicate attaches, and the admission ledger
// draining as tenants finish. Decoded output is checked bit-exact against
// the serial reference decoder per stream.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "proto/session.h"
#include "video/generator.h"
#include "wall/assembler.h"

namespace pdw::proto {
namespace {

using mpeg2::Frame;

constexpr int kW = 256, kH = 192;

std::vector<uint8_t> encode_stream(int frames, uint64_t seed) {
  enc::EncoderConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.gop_size = 4;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.4;
  const auto gen = video::make_scene(video::SceneKind::kMovingObjects, kW, kH,
                                     uint32_t(seed));
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames, [&](int i, Frame* f) { gen->render(i, f); });
}

std::vector<Frame> reference_frames(const std::vector<uint8_t>& es) {
  std::vector<Frame> out;
  mpeg2::Mpeg2Decoder dec;
  dec.decode(es, [&](const Frame& f, const mpeg2::DecodedPictureInfo&) {
    out.push_back(f);
  });
  return out;
}

const wall::TileGeometry& geometry() {
  static const wall::TileGeometry geo(kW, kH, 2, 2, 16);
  return geo;
}

TenantSpec spec(PriorityClass cls = PriorityClass::kStandard) {
  TenantSpec s;
  s.width_mb = uint16_t(geometry().mb_width());
  s.height_mb = uint16_t(geometry().mb_height());
  s.fps = 24;
  s.priority = cls;
  return s;
}

AdmissionController::Config roomy_config() {
  AdmissionController::Config cfg;
  cfg.capacity.mb_per_s = tenant_cost(spec()) * 16;
  cfg.capacity.admit_headroom = 1.0;
  return cfg;
}

// Assemble full wall frames per (stream, display slot) and compare each
// stream bit-exact against its serial reference.
struct WallCapture {
  std::map<std::pair<int, int>, std::unique_ptr<wall::WallAssembler>> slots;

  StreamSession::DisplayFn fn() {
    return [this](int stream, int tile, const mpeg2::TileFrame& tf,
                  const core::TileDisplayInfo& info) {
      auto& slot = slots[{stream, info.display_index}];
      if (!slot) slot = std::make_unique<wall::WallAssembler>(geometry());
      slot->add_tile(tile, tf, /*exact=*/!info.degraded);
    };
  }

  void expect_matches(int stream, const std::vector<Frame>& ref) {
    for (size_t i = 0; i < ref.size(); ++i) {
      const auto it = slots.find({stream, int(i)});
      ASSERT_NE(it, slots.end()) << "stream " << stream << " slot " << i;
      ASSERT_TRUE(it->second->coverage_complete());
      const Frame got = wall::crop_frame(it->second->frame(), kW, kH);
      const Frame want = wall::crop_frame(ref[i], kW, kH);
      EXPECT_EQ(got, want) << "stream " << stream << " slot " << i;
    }
    EXPECT_EQ(slots.count({stream, int(ref.size())}), 0u) << "extra slots";
  }
};

TEST(StreamSession, ZeroStreamsRunCompletes) {
  StreamSession session(geometry(), 2);
  bool displayed = false;
  const StreamSession::Result r = session.run(
      [&](int, int, const mpeg2::TileFrame&, const core::TileDisplayInfo&) {
        displayed = true;
      });
  EXPECT_EQ(r.streams, 0);
  EXPECT_EQ(r.pictures, 0u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_TRUE(r.stream_pictures.empty());
  EXPECT_FALSE(displayed);
}

TEST(StreamSession, StreamsFinishOutOfAttachOrder) {
  // The stream attached first is the longest: it must keep stepping for
  // rounds after the others are done, and every stream must stay bit-exact.
  const std::vector<uint8_t> long_es = encode_stream(12, 21);
  const std::vector<uint8_t> short_es = encode_stream(4, 22);
  StreamSession session(geometry(), 2);
  ASSERT_EQ(session.add_stream(long_es), 0);
  ASSERT_EQ(session.add_stream(short_es), 1);

  WallCapture capture;
  const StreamSession::Result r = session.run(capture.fn());
  EXPECT_EQ(r.streams, 2);
  ASSERT_EQ(r.stream_pictures.size(), 2u);
  EXPECT_EQ(r.stream_pictures[0], 12u);
  EXPECT_EQ(r.stream_pictures[1], 4u);
  EXPECT_EQ(r.pictures, 16u);
  capture.expect_matches(0, reference_frames(long_es));
  capture.expect_matches(1, reference_frames(short_es));
}

TEST(StreamSession, StreamEndingMidGopCoexistsAndReleasesItsBudget) {
  // 10 frames with gop_size 4 ends mid-GOP; the other stream keeps going.
  const std::vector<uint8_t> mid_gop_es = encode_stream(10, 31);
  const std::vector<uint8_t> full_es = encode_stream(12, 32);
  StreamSession session(geometry(), 2);
  session.enable_admission(roomy_config());
  ASSERT_EQ(session.attach_stream(0, mid_gop_es, spec()).verdict,
            AdmissionVerdict::kAccept);
  ASSERT_EQ(session.attach_stream(1, full_es, spec()).verdict,
            AdmissionVerdict::kAccept);

  WallCapture capture;
  const StreamSession::Result r = session.run(capture.fn());
  ASSERT_EQ(r.stream_pictures.size(), 2u);
  EXPECT_EQ(r.stream_pictures[0], 10u);
  EXPECT_EQ(r.stream_pictures[1], 12u);
  capture.expect_matches(0, reference_frames(mid_gop_es));
  capture.expect_matches(1, reference_frames(full_es));

  // Both tenants were released as their streams finished.
  ASSERT_NE(session.admission(), nullptr);
  EXPECT_FALSE(session.admission()->admitted(0));
  EXPECT_FALSE(session.admission()->admitted(1));
  EXPECT_NEAR(session.admission()->committed_load(), 0.0, 1e-9);
}

TEST(StreamSession, DuplicateAttachOfSameIdIsRejected) {
  const std::vector<uint8_t> es = encode_stream(4, 41);
  StreamSession session(geometry(), 2);
  session.enable_admission(roomy_config());
  ASSERT_EQ(session.attach_stream(5, es, spec()).verdict,
            AdmissionVerdict::kAccept);
  const StreamReply dup = session.attach_stream(5, es, spec());
  EXPECT_EQ(dup.verdict, AdmissionVerdict::kReject);
  EXPECT_EQ(dup.level, DegradeLevel::kFreeze);
  EXPECT_EQ(session.streams(), 1);

  // Out-of-range ids are typed rejects too, not crashes.
  EXPECT_EQ(session.attach_stream(256, es, spec()).verdict,
            AdmissionVerdict::kReject);
  EXPECT_EQ(session.attach_stream(-1, es, spec()).verdict,
            AdmissionVerdict::kReject);
  EXPECT_EQ(session.streams(), 1);

  // The surviving stream still decodes to completion.
  const StreamSession::Result r = session.run(nullptr);
  ASSERT_EQ(r.stream_pictures.size(), 6u);  // indexed by id, 0..5
  EXPECT_EQ(r.stream_pictures[5], 4u);
  EXPECT_EQ(r.pictures, 4u);
}

TEST(StreamSession, RejectedTenantIsNeverStepped) {
  // Capacity for one tenant only: the second attach gets a typed reject and
  // the session never creates its stream.
  const std::vector<uint8_t> es = encode_stream(4, 51);
  AdmissionController::Config cfg;
  cfg.capacity.mb_per_s = tenant_cost(spec()) * 1.1;
  cfg.capacity.admit_headroom = 1.0;
  StreamSession session(geometry(), 2);
  session.enable_admission(cfg);
  ASSERT_EQ(session.attach_stream(0, es, spec()).verdict,
            AdmissionVerdict::kAccept);
  EXPECT_EQ(session.attach_stream(1, es, spec()).verdict,
            AdmissionVerdict::kReject);
  EXPECT_EQ(session.streams(), 1);
  const StreamSession::Result r = session.run(nullptr);
  EXPECT_EQ(r.pictures, 4u);
}

}  // namespace
}  // namespace pdw::proto
