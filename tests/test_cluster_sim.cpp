// Cluster simulator tests: protocol model consistency with the paper's §4.6
// frame-rate formula, monotonicity, breakdown/traffic invariants.
#include <gtest/gtest.h>

#include "core/config.h"
#include "sim/cluster_sim.h"

namespace pdw::sim {
namespace {

using core::PictureTrace;

// Synthetic traces: uniform pictures with given split/decode costs.
std::vector<PictureTrace> uniform_traces(int n, int tiles, double split_s,
                                         double decode_s,
                                         size_t picture_bytes = 50000,
                                         size_t sp_bytes = 15000,
                                         size_t exchange_bytes = 0) {
  std::vector<PictureTrace> traces(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    PictureTrace& tr = traces[size_t(i)];
    tr.pic_index = uint32_t(i);
    tr.picture_bytes = picture_bytes;
    tr.copy_s = 20e-6;
    tr.split_s = split_s;
    tr.splitter = 0;
    tr.sp_msg_bytes.assign(size_t(tiles), sp_bytes);
    tr.decode_s.assign(size_t(tiles), decode_s);
    tr.serve_s.assign(size_t(tiles), exchange_bytes ? 50e-6 : 0.0);
    tr.halo_mbs.assign(size_t(tiles), 0);
    tr.exchange_bytes.reset(tiles);
    if (exchange_bytes && tiles > 1 && i % 3 != 0) {
      // Ring exchange between adjacent tiles on P/B pictures.
      for (int t = 0; t < tiles; ++t)
        tr.exchange_bytes.at(t, (t + 1) % tiles) = exchange_bytes;
    }
  }
  return traces;
}

SimParams fast_net_params(int k, bool two_level = true) {
  SimParams p;
  p.k = k;
  p.two_level = two_level;
  p.link.bandwidth_bps = 1e12;  // effectively free network
  p.link.latency_s = 1e-9;
  p.link.ack_cpu_s = 1e-9;
  return p;
}

TEST(ClusterSim, DecoderBoundMatchesFormula) {
  // Fast splitter, slow decoders: fps -> 1/t_d.
  wall::TileGeometry geo(640, 480, 2, 2, 0);
  const double ts = 1e-3, td = 10e-3;
  const auto traces = uniform_traces(200, geo.tiles(), ts, td);
  const auto r = simulate_cluster(traces, geo, fast_net_params(1));
  EXPECT_NEAR(r.fps, core::predicted_fps(1, ts, td), 0.05 * r.fps);
}

TEST(ClusterSim, SplitterBoundMatchesFormula) {
  // Slow splitter, fast decoders: fps -> k/t_s.
  wall::TileGeometry geo(640, 480, 2, 2, 0);
  const double ts = 10e-3, td = 1e-3;
  for (int k : {1, 2, 4}) {
    const auto traces = uniform_traces(200, geo.tiles(), ts, td);
    const auto r = simulate_cluster(traces, geo, fast_net_params(k));
    EXPECT_NEAR(r.fps, core::predicted_fps(k, ts, td), 0.07 * r.fps) << k;
  }
}

TEST(ClusterSim, CrossoverAtOptimalK) {
  // Beyond k* = ceil(ts/td) adding splitters stops helping.
  wall::TileGeometry geo(640, 480, 2, 2, 0);
  const double ts = 8e-3, td = 2e-3;  // k* = 4
  double prev = 0;
  std::vector<double> fps_k;
  for (int k = 1; k <= 6; ++k) {
    const auto traces = uniform_traces(300, geo.tiles(), ts, td);
    const auto r = simulate_cluster(traces, geo, fast_net_params(k));
    EXPECT_GE(r.fps, prev * 0.999) << "fps must be non-decreasing in k";
    prev = r.fps;
    fps_k.push_back(r.fps);
  }
  EXPECT_EQ(core::choose_k(ts, td), 4);
  // k=4 within 10% of k=6; k=2 clearly below k=4.
  EXPECT_GT(fps_k[3], fps_k[5] * 0.9);
  EXPECT_LT(fps_k[1], fps_k[3] * 0.7);
}

TEST(ClusterSim, OneLevelSaturatesAtSplitRate) {
  wall::TileGeometry geo(640, 480, 4, 4, 0);
  const double ts = 5e-3, td = 1e-3;
  const auto traces = uniform_traces(200, geo.tiles(), ts, td);
  const auto r = simulate_cluster(traces, geo, fast_net_params(1, false));
  EXPECT_NEAR(r.fps, 1.0 / ts, 0.05 / ts);
  EXPECT_EQ(r.nodes, 1 + geo.tiles());
}

TEST(ClusterSim, BreakdownAccountsForWallTime) {
  wall::TileGeometry geo(640, 480, 2, 2, 0);
  const auto traces = uniform_traces(100, geo.tiles(), 4e-3, 3e-3, 50000,
                                     15000, 2000);
  SimParams p = fast_net_params(2);
  p.link.bandwidth_bps = 160e6 * 8;
  p.link.latency_s = 10e-6;
  const auto r = simulate_cluster(traces, geo, p);
  for (const auto& bd : r.decoders) {
    EXPECT_GT(bd.work, 0.0);
    // Work+Serve+Receive+Wait+Ack ~ makespan (modulo start/drain edges).
    EXPECT_NEAR(bd.total(), r.makespan_s, 0.1 * r.makespan_s);
  }
}

TEST(ClusterSim, TrafficConservation) {
  wall::TileGeometry geo(640, 480, 2, 2, 0);
  const auto traces =
      uniform_traces(50, geo.tiles(), 4e-3, 3e-3, 50000, 15000, 2000);
  const auto r = simulate_cluster(traces, geo, fast_net_params(2));
  double sent = 0, recv = 0;
  for (const auto& t : r.traffic) {
    sent += t.sent_bytes;
    recv += t.recv_bytes;
  }
  EXPECT_NEAR(sent, recv, 1.0);
  EXPECT_GT(sent, 50.0 * 50000);
}

TEST(ClusterSim, SlowNetworkReducesFps) {
  wall::TileGeometry geo(640, 480, 2, 2, 0);
  const auto traces =
      uniform_traces(100, geo.tiles(), 2e-3, 2e-3, 500000, 150000, 0);
  SimParams fast = fast_net_params(2);
  SimParams slow = fast;
  slow.link.bandwidth_bps = 10e6 * 8;  // 10 MB/s: transfers dominate
  const auto rf = simulate_cluster(traces, geo, fast);
  const auto rs = simulate_cluster(traces, geo, slow);
  EXPECT_LT(rs.fps, rf.fps * 0.8);
}

TEST(ClusterSim, CpuScaleScalesComputeBoundFps) {
  wall::TileGeometry geo(640, 480, 2, 2, 0);
  const auto traces = uniform_traces(100, geo.tiles(), 1e-3, 5e-3);
  SimParams p = fast_net_params(1);
  const auto r1 = simulate_cluster(traces, geo, p);
  p.cpu_scale = 2.0;
  const auto r2 = simulate_cluster(traces, geo, p);
  EXPECT_NEAR(r2.fps, r1.fps / 2.0, 0.05 * r1.fps);
}

TEST(ClusterSim, MeasureCosts) {
  auto traces = uniform_traces(10, 4, 3e-3, 2e-3);
  traces[0].decode_s[2] = 7e-3;  // one slow tile on one picture
  const auto c = measure_costs(traces);
  EXPECT_NEAR(c.t_split, 3e-3, 1e-9);
  EXPECT_NEAR(c.t_copy, 20e-6, 1e-9);
  EXPECT_GT(c.t_decode, 2e-3);        // max-based
  EXPECT_GT(c.t_decode, c.t_decode_mean);
}

TEST(ConfigModel, ChooseK) {
  EXPECT_EQ(core::choose_k(10e-3, 10e-3), 1);
  EXPECT_EQ(core::choose_k(10e-3, 5e-3), 2);
  EXPECT_EQ(core::choose_k(11e-3, 5e-3), 3);
  EXPECT_EQ(core::choose_k(1e-3, 5e-3), 1);
}

TEST(ConfigModel, ChooseTiling) {
  core::WallPanel panel;  // 1024x768, 40px overlap
  int m = 0, n = 0;
  core::choose_tiling(3840, 2912, panel, &m, &n);
  EXPECT_EQ(m, 4);
  EXPECT_EQ(n, 4);
  core::choose_tiling(720, 480, panel, &m, &n);
  EXPECT_EQ(m, 1);
  EXPECT_EQ(n, 1);
  core::choose_tiling(1280, 720, panel, &m, &n);
  EXPECT_EQ(m, 2);
  EXPECT_EQ(n, 1);
}

TEST(ConfigModel, TargetFpsK) {
  // ts = 40ms, td = 10ms: full-speed k = 4.
  EXPECT_EQ(core::choose_k_for_target_fps(100.0, 40e-3, 10e-3), 4);
  EXPECT_EQ(core::choose_k_for_target_fps(50.0, 40e-3, 10e-3), 2);
  EXPECT_EQ(core::choose_k_for_target_fps(10.0, 40e-3, 10e-3), 1);
}

}  // namespace
}  // namespace pdw::sim
