// End-to-end encoder -> serial decoder tests: the codec substrate must
// produce decodable, good-quality streams across GOP structures, scene
// kinds, quantiser options and picture sizes.
#include <gtest/gtest.h>

#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "video/generator.h"

namespace pdw {
namespace {

using enc::EncoderConfig;
using enc::Mpeg2Encoder;
using mpeg2::DecodedPictureInfo;
using mpeg2::Frame;
using mpeg2::Mpeg2Decoder;
using video::SceneKind;

struct RoundtripResult {
  int frames_decoded = 0;
  double min_psnr = 1e9;
  double avg_psnr = 0;
  double bpp = 0;
  std::vector<mpeg2::PicType> display_types;
};

RoundtripResult roundtrip(EncoderConfig cfg, SceneKind scene, int frames,
                          uint64_t seed = 1) {
  const auto gen = video::make_scene(scene, cfg.width, cfg.height, seed);
  enc::EncodeStats stats;
  Mpeg2Encoder encoder(cfg);
  const std::vector<uint8_t> es = encoder.encode(
      frames, [&](int i, Frame* f) { gen->render(i, f); }, &stats);

  RoundtripResult result;
  result.bpp = stats.avg_bpp(cfg.width, cfg.height);

  Frame expected(cfg.width, cfg.height);
  Mpeg2Decoder decoder;
  decoder.decode(es, [&](const Frame& f, const DecodedPictureInfo& info) {
    gen->render(info.display_index, &expected);
    const double p = mpeg2::psnr(f.y, expected.y);
    result.min_psnr = std::min(result.min_psnr, p);
    result.avg_psnr += p;
    result.display_types.push_back(info.type);
    EXPECT_EQ(info.display_index, result.frames_decoded);
    ++result.frames_decoded;
  });
  if (result.frames_decoded) result.avg_psnr /= result.frames_decoded;
  return result;
}

EncoderConfig base_config(int w, int h) {
  EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 9;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.4;
  return cfg;
}

TEST(CodecRoundtrip, IntraOnlyStreamDecodes) {
  EncoderConfig cfg = base_config(176, 144);
  cfg.gop_size = 1;
  cfg.b_frames = 0;
  const auto r = roundtrip(cfg, SceneKind::kPanningTexture, 5);
  EXPECT_EQ(r.frames_decoded, 5);
  EXPECT_GT(r.min_psnr, 26.0);
}

TEST(CodecRoundtrip, IPOnlyStream) {
  EncoderConfig cfg = base_config(176, 144);
  cfg.b_frames = 0;
  cfg.gop_size = 6;
  const auto r = roundtrip(cfg, SceneKind::kMovingObjects, 12);
  EXPECT_EQ(r.frames_decoded, 12);
  EXPECT_GT(r.min_psnr, 25.0);
}

TEST(CodecRoundtrip, FullIpbStream) {
  EncoderConfig cfg = base_config(192, 160);
  const auto r = roundtrip(cfg, SceneKind::kMovingObjects, 18);
  EXPECT_EQ(r.frames_decoded, 18);
  EXPECT_GT(r.min_psnr, 24.0) << "avg " << r.avg_psnr;
  // Stream must actually contain B pictures.
  int b = 0;
  for (auto t : r.display_types) b += t == mpeg2::PicType::B;
  EXPECT_GT(b, 4);
}

TEST(CodecRoundtrip, AllSceneKinds) {
  for (SceneKind scene :
       {SceneKind::kPanningTexture, SceneKind::kMovingObjects,
        SceneKind::kAnimation, SceneKind::kLocalizedDetail}) {
    EncoderConfig cfg = base_config(192, 160);
    const auto r = roundtrip(cfg, scene, 9, 7);
    EXPECT_EQ(r.frames_decoded, 9)
        << video::scene_kind_name(scene);
    EXPECT_GT(r.min_psnr, 22.0) << video::scene_kind_name(scene);
  }
}

TEST(CodecRoundtrip, NonLinearQuantAndAlternateScan) {
  EncoderConfig cfg = base_config(176, 144);
  cfg.q_scale_type = true;
  cfg.alternate_scan = true;
  const auto r = roundtrip(cfg, SceneKind::kPanningTexture, 9);
  EXPECT_EQ(r.frames_decoded, 9);
  EXPECT_GT(r.min_psnr, 25.0);
}

TEST(CodecRoundtrip, HighIntraDcPrecision) {
  EncoderConfig cfg = base_config(176, 144);
  cfg.intra_dc_precision = 2;  // 10-bit DC
  const auto r = roundtrip(cfg, SceneKind::kAnimation, 6);
  EXPECT_EQ(r.frames_decoded, 6);
  EXPECT_GT(r.min_psnr, 24.0);
}

TEST(CodecRoundtrip, AdaptiveQuantDisabled) {
  EncoderConfig cfg = base_config(176, 144);
  cfg.adaptive_quant = false;
  const auto r = roundtrip(cfg, SceneKind::kMovingObjects, 6);
  EXPECT_EQ(r.frames_decoded, 6);
  EXPECT_GT(r.min_psnr, 24.0);
}

TEST(CodecRoundtrip, SkipsDisabled) {
  EncoderConfig cfg = base_config(176, 144);
  cfg.allow_skip = false;
  const auto r = roundtrip(cfg, SceneKind::kAnimation, 6);
  EXPECT_EQ(r.frames_decoded, 6);
  EXPECT_GT(r.min_psnr, 24.0);
}

TEST(CodecRoundtrip, RateControlLandsNearTarget) {
  EncoderConfig cfg = base_config(320, 240);
  cfg.target_bpp = 0.3;
  const auto r = roundtrip(cfg, SceneKind::kMovingObjects, 24);
  EXPECT_EQ(r.frames_decoded, 24);
  EXPECT_GT(r.bpp, 0.3 * 0.5);
  EXPECT_LT(r.bpp, 0.3 * 2.0);
}

TEST(CodecRoundtrip, QualityImprovesWithBitrate) {
  EncoderConfig lo = base_config(192, 160);
  lo.target_bpp = 0.15;
  EncoderConfig hi = lo;
  hi.target_bpp = 0.8;
  const auto rl = roundtrip(lo, SceneKind::kMovingObjects, 9);
  const auto rh = roundtrip(hi, SceneKind::kMovingObjects, 9);
  EXPECT_GT(rh.avg_psnr, rl.avg_psnr);
}

TEST(CodecRoundtrip, ShortTailGop) {
  // Frame count not divisible by GOP/B pattern: tail handling.
  EncoderConfig cfg = base_config(176, 144);
  cfg.gop_size = 9;
  cfg.b_frames = 2;
  for (int frames : {1, 2, 4, 10, 11}) {
    const auto r = roundtrip(cfg, SceneKind::kPanningTexture, frames);
    EXPECT_EQ(r.frames_decoded, frames) << frames << " frames";
  }
}

TEST(CodecRoundtrip, TallPictureWithSliceExtension) {
  // Height > 2800 exercises slice_vertical_position_extension end to end.
  EncoderConfig cfg = base_config(64, 2912);
  cfg.gop_size = 2;
  cfg.b_frames = 0;
  cfg.target_bpp = 0.3;
  const auto r = roundtrip(cfg, SceneKind::kPanningTexture, 2);
  EXPECT_EQ(r.frames_decoded, 2);
  EXPECT_GT(r.min_psnr, 24.0);
}

TEST(CodecRoundtrip, EncoderReconMatchesDecoderOutput) {
  // Closed-loop invariant: what the encoder reconstructs for reference
  // pictures is exactly what a decoder reconstructs. Verified indirectly:
  // P pictures at the end of a long chain must not drift (min PSNR stays
  // near the I-picture PSNR).
  EncoderConfig cfg = base_config(176, 144);
  cfg.gop_size = 30;  // one I, many P
  cfg.b_frames = 0;
  const auto r = roundtrip(cfg, SceneKind::kPanningTexture, 30);
  EXPECT_EQ(r.frames_decoded, 30);
  EXPECT_GT(r.min_psnr, 24.0) << "drift along the P chain";
}

}  // namespace
}  // namespace pdw
