// Header write -> parse roundtrips for every header layer.
#include <gtest/gtest.h>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "mpeg2/headers.h"
#include "mpeg2/tables.h"

namespace pdw::mpeg2 {
namespace {

// Position a reader after the start code of `bytes` (which must begin with
// one) and return the code.
BitReader after_start_code(const std::vector<uint8_t>& bytes, uint8_t* code) {
  BitReader r(bytes);
  EXPECT_EQ(r.read(24), 0x000001u);
  *code = uint8_t(r.read(8));
  return r;
}

TEST(Headers, SequenceHeaderRoundtrip) {
  SequenceHeader seq;
  seq.width = 1920;
  seq.height = 1088;
  seq.frame_rate_code = 5;
  seq.bit_rate_value = 12345;
  seq.vbv_buffer_size = 112;
  seq.intra_quant = kDefaultIntraQuant;
  seq.non_intra_quant = kDefaultNonIntraQuant;

  BitWriter w;
  write_sequence_header(w, seq);
  write_sequence_extension(w, seq);
  w.align_to_byte();
  auto bytes = w.take();

  uint8_t code;
  BitReader r = after_start_code(bytes, &code);
  EXPECT_EQ(code, 0xB3);
  SequenceHeader parsed;
  EXPECT_TRUE(parse_sequence_header(r, &parsed).ok());
  r.align_to_byte();
  EXPECT_EQ(r.read(24), 0x000001u);
  EXPECT_EQ(r.read(8), 0xB5u);
  EXPECT_TRUE(parse_extension(r, &parsed, nullptr).ok());

  EXPECT_EQ(parsed.width, 1920);
  EXPECT_EQ(parsed.height, 1088);
  EXPECT_EQ(parsed.frame_rate_code, 5);
  EXPECT_EQ(parsed.bit_rate_value, 12345);
  EXPECT_TRUE(parsed.progressive_sequence);
  EXPECT_EQ(parsed.intra_quant, kDefaultIntraQuant);
  EXPECT_EQ(parsed.non_intra_quant, kDefaultNonIntraQuant);
}

TEST(Headers, UltraHighResolutionUsesSizeExtensionBits) {
  // 3840x2912 does not fit in the 12-bit sequence header fields alone...
  // (it does: 4095 max) — but 4096+ would not. Check a >4095 width round
  // trips through the 2-bit extension fields.
  SequenceHeader seq;
  seq.width = 4224;  // > 4095: needs horizontal_size_extension
  seq.height = 3200;
  BitWriter w;
  write_sequence_header(w, seq);
  write_sequence_extension(w, seq);
  w.align_to_byte();
  auto bytes = w.take();
  uint8_t code;
  BitReader r = after_start_code(bytes, &code);
  SequenceHeader parsed;
  EXPECT_TRUE(parse_sequence_header(r, &parsed).ok());
  r.align_to_byte();
  r.skip(32);
  EXPECT_TRUE(parse_extension(r, &parsed, nullptr).ok());
  EXPECT_EQ(parsed.width, 4224);
  EXPECT_EQ(parsed.height, 3200);
}

TEST(Headers, CustomQuantMatricesRoundtrip) {
  SequenceHeader seq;
  seq.width = 720;
  seq.height = 480;
  seq.loaded_intra_quant = true;
  seq.loaded_non_intra_quant = true;
  for (int i = 0; i < 64; ++i) {
    seq.intra_quant[i] = uint8_t(8 + i);
    seq.non_intra_quant[i] = uint8_t(16 + i);
  }
  BitWriter w;
  write_sequence_header(w, seq);
  w.align_to_byte();
  auto bytes = w.take();
  uint8_t code;
  BitReader r = after_start_code(bytes, &code);
  SequenceHeader parsed;
  EXPECT_TRUE(parse_sequence_header(r, &parsed).ok());
  EXPECT_EQ(parsed.intra_quant, seq.intra_quant);
  EXPECT_EQ(parsed.non_intra_quant, seq.non_intra_quant);
}

TEST(Headers, GopHeaderRoundtrip) {
  GopHeader gop;
  gop.time_code = 0x123456;
  gop.closed_gop = true;
  gop.broken_link = false;
  BitWriter w;
  write_gop_header(w, gop);
  w.align_to_byte();
  auto bytes = w.take();
  uint8_t code;
  BitReader r = after_start_code(bytes, &code);
  EXPECT_EQ(code, 0xB8);
  GopHeader parsed;
  EXPECT_TRUE(parse_gop_header(r, &parsed).ok());
  EXPECT_EQ(parsed.time_code, gop.time_code);
  EXPECT_EQ(parsed.closed_gop, gop.closed_gop);
  EXPECT_EQ(parsed.broken_link, gop.broken_link);
}

TEST(Headers, PictureHeaderRoundtripAllTypes) {
  for (PicType type : {PicType::I, PicType::P, PicType::B}) {
    PictureHeader ph;
    ph.temporal_reference = 777;
    ph.type = type;
    BitWriter w;
    write_picture_header(w, ph);
    w.align_to_byte();
  auto bytes = w.take();
    uint8_t code;
    BitReader r = after_start_code(bytes, &code);
    EXPECT_EQ(code, 0x00);
    PictureHeader parsed;
    EXPECT_TRUE(parse_picture_header(r, &parsed).ok());
    EXPECT_EQ(parsed.temporal_reference, 777);
    EXPECT_EQ(parsed.type, type);
  }
}

TEST(Headers, PictureCodingExtensionRoundtrip) {
  PictureCodingExt pce;
  pce.f_code[0][0] = 3;
  pce.f_code[0][1] = 4;
  pce.f_code[1][0] = 2;
  pce.f_code[1][1] = 5;
  pce.intra_dc_precision = 2;
  pce.q_scale_type = true;
  pce.alternate_scan = true;
  BitWriter w;
  write_picture_coding_extension(w, pce);
  w.align_to_byte();
  auto bytes = w.take();
  uint8_t code;
  BitReader r = after_start_code(bytes, &code);
  EXPECT_EQ(code, 0xB5);
  PictureCodingExt parsed;
  EXPECT_TRUE(parse_extension(r, nullptr, &parsed).ok());
  EXPECT_EQ(parsed.f_code[0][0], 3);
  EXPECT_EQ(parsed.f_code[0][1], 4);
  EXPECT_EQ(parsed.f_code[1][0], 2);
  EXPECT_EQ(parsed.f_code[1][1], 5);
  EXPECT_EQ(parsed.intra_dc_precision, 2);
  EXPECT_TRUE(parsed.q_scale_type);
  EXPECT_TRUE(parsed.alternate_scan);
}

TEST(Headers, SliceHeaderRoundtripNormalHeight) {
  SequenceHeader seq;
  seq.width = 1280;
  seq.height = 720;
  for (int row : {0, 1, 20, 44}) {
    BitWriter w;
    write_slice_header(w, seq, row, 13);
    w.align_to_byte();
  auto bytes = w.take();
    uint8_t code;
    BitReader r = after_start_code(bytes, &code);
    int parsed_row = -1;
    int q = -1;
    EXPECT_TRUE(parse_slice_header(r, seq, code, &parsed_row, &q).ok());
    EXPECT_EQ(parsed_row, row);
    EXPECT_EQ(q, 13);
  }
}

TEST(Headers, SliceHeaderUsesVerticalPositionExtensionAbove2800) {
  // The ultra-high-resolution case this paper targets: >175 macroblock rows.
  SequenceHeader seq;
  seq.width = 3840;
  seq.height = 2912;  // 182 macroblock rows
  for (int row : {0, 126, 127, 128, 174, 175, 181}) {
    BitWriter w;
    write_slice_header(w, seq, row, 7);
    w.align_to_byte();
  auto bytes = w.take();
    uint8_t code;
    BitReader r = after_start_code(bytes, &code);
    EXPECT_GE(code, 0x01);
    EXPECT_LE(code, 0xAF);
    int parsed_row = -1;
    int q = -1;
    EXPECT_TRUE(parse_slice_header(r, seq, code, &parsed_row, &q).ok());
    EXPECT_EQ(parsed_row, row) << "row " << row;
    EXPECT_EQ(q, 7);
  }
}

TEST(Headers, IntraDcPrecisionHelpers) {
  PictureCodingExt pce;
  pce.intra_dc_precision = 0;
  EXPECT_EQ(pce.intra_dc_mult(), 8);
  EXPECT_EQ(pce.dc_reset_value(), 128);
  pce.intra_dc_precision = 2;
  EXPECT_EQ(pce.intra_dc_mult(), 2);
  EXPECT_EQ(pce.dc_reset_value(), 512);
}

TEST(Headers, FrameRateCodeMapping) {
  SequenceHeader seq;
  seq.frame_rate_code = 5;
  EXPECT_DOUBLE_EQ(seq.frame_rate(), 30.0);
  seq.frame_rate_code = 8;
  EXPECT_DOUBLE_EQ(seq.frame_rate(), 60.0);
  seq.frame_rate_code = 2;
  EXPECT_DOUBLE_EQ(seq.frame_rate(), 24.0);
}

}  // namespace
}  // namespace pdw::mpeg2
