// Round-trip and rejection tests for the typed wire codec (proto/wire.h).
// Every message type must survive pack() -> decode() bit-exactly, the
// envelope must agree with the typed fields, and malformed bodies must be
// rejected by returning false — never by crashing.
#include <gtest/gtest.h>

#include <cstring>

#include "proto/wire.h"

namespace pdw::proto {
namespace {

PictureMsg sample_picture() {
  PictureMsg m;
  m.pic_index = 41;
  m.nsid = 2;
  m.stream = 3;
  m.epoch = 4;
  m.coded = {0x00, 0x00, 0x01, 0x00, 0xAB, 0xCD};
  return m;
}

SpMsg sample_sp() {
  SpMsg m;
  m.pic_index = 7;
  m.tile = 5;
  m.stream = 1;
  m.epoch = 2;
  m.subpicture = {1, 2, 3, 4, 5};
  core::MeiInstruction send;
  send.op = core::MeiOp::kSend;
  send.ref = 1;
  send.mb_x = 10;
  send.mb_y = 20;
  send.peer = 3;
  m.mei.push_back(send);
  m.mei.push_back(core::make_conceal(4, 6, 0x80, 0x70, 0x60));
  return m;
}

ExchangeMsg sample_exchange() {
  ExchangeMsg m;
  m.pic_index = 9;
  m.src_tile = 1;
  m.dst_tile = 2;
  m.stream = 0;
  ExchangeEntry e;
  e.instr.op = core::MeiOp::kRecv;
  e.instr.ref = 0;
  e.instr.mb_x = 11;
  e.instr.mb_y = 13;
  e.instr.peer = 1;
  e.tainted = true;
  for (size_t i = 0; i < sizeof(e.px.y); ++i) e.px.y[i] = uint8_t(i * 7);
  m.entries.push_back(e);
  e.tainted = false;
  e.instr.mb_x = 12;
  m.entries.push_back(e);
  return m;
}

template <typename T>
T roundtrip(const T& in) {
  const Packed p = pack(in);
  T out;
  EXPECT_TRUE(decode(p.body, &out));
  return out;
}

TEST(WireRoundtrip, Picture) {
  const PictureMsg m = sample_picture();
  EXPECT_EQ(roundtrip(m), m);
  const Packed p = pack(m);
  EXPECT_EQ(p.type, MsgType::kPicture);
  EXPECT_EQ(p.seq, m.pic_index);
  EXPECT_EQ(p.aux, m.nsid);
  EXPECT_EQ(p.stream, m.stream);
  EXPECT_TRUE(p.bulk);
  EXPECT_EQ(p.body.size(), picture_msg_wire_bytes(m.coded.size()));
}

TEST(WireRoundtrip, SubPicture) {
  const SpMsg m = sample_sp();
  EXPECT_EQ(roundtrip(m), m);
  const Packed p = pack(m);
  EXPECT_EQ(p.type, MsgType::kSubPicture);
  EXPECT_EQ(p.seq, m.pic_index);
  EXPECT_EQ(p.aux, m.tile);
  EXPECT_TRUE(p.bulk);
  EXPECT_EQ(p.body.size(),
            sp_msg_wire_bytes(m.subpicture.size(), m.mei.size()));
}

TEST(WireRoundtrip, GoAheadAck) {
  GoAheadAck m;
  m.pic_index = 123456;
  m.stream = 2;
  EXPECT_EQ(roundtrip(m), m);
  const Packed p = pack(m);
  EXPECT_EQ(p.type, MsgType::kGoAheadAck);
  EXPECT_EQ(p.seq, m.pic_index);
  EXPECT_FALSE(p.bulk);
}

TEST(WireRoundtrip, Exchange) {
  const ExchangeMsg m = sample_exchange();
  EXPECT_EQ(roundtrip(m), m);
  const Packed p = pack(m);
  EXPECT_EQ(p.type, MsgType::kExchange);
  EXPECT_EQ(p.seq, m.pic_index);
  EXPECT_EQ(p.aux, m.src_tile);
  EXPECT_EQ(p.body.size(), exchange_msg_wire_bytes(m.entries.size()));
}

TEST(WireRoundtrip, ControlMessages) {
  EndOfStream eos;
  eos.stream = 4;
  EXPECT_EQ(roundtrip(eos), eos);
  EXPECT_EQ(pack(eos).type, MsgType::kEndOfStream);

  Heartbeat hb;
  hb.tile = 6;
  EXPECT_EQ(roundtrip(hb), hb);
  EXPECT_EQ(pack(hb).aux, hb.tile);

  Finished fin;
  fin.tile = 2;
  fin.stream = 1;
  EXPECT_EQ(roundtrip(fin), fin);
  EXPECT_EQ(pack(fin).type, MsgType::kFinished);

  DeathNotice dn;
  dn.dead_tile = 3;
  dn.adopter_tile = kNoTile;  // degraded mode
  dn.resync_pic = 15;
  EXPECT_EQ(roundtrip(dn), dn);
  EXPECT_EQ(pack(dn).seq, dn.resync_pic);
  EXPECT_EQ(pack(dn).aux, dn.dead_tile);

  SkipBroadcast sk;
  sk.pic_index = 8;
  sk.tile = 1;
  EXPECT_EQ(roundtrip(sk), sk);
  EXPECT_EQ(pack(sk).seq, sk.pic_index);
}

TEST(WireRoundtrip, AdmissionMessages) {
  StreamRequest req;
  req.width_mb = 120;
  req.height_mb = 68;
  req.fps = 30;
  req.priority = PriorityClass::kPremium;
  req.stream = 9;
  EXPECT_EQ(roundtrip(req), req);
  const Packed p = pack(req);
  EXPECT_EQ(p.type, MsgType::kStreamRequest);
  EXPECT_EQ(p.aux, uint16_t(req.priority));
  EXPECT_EQ(p.stream, req.stream);
  EXPECT_FALSE(p.bulk);

  StreamReply rep;
  rep.verdict = AdmissionVerdict::kRenegotiate;
  rep.level = DegradeLevel::kSkipP;
  rep.stream = 9;
  EXPECT_EQ(roundtrip(rep), rep);
  const Packed pr = pack(rep);
  EXPECT_EQ(pr.type, MsgType::kStreamReply);
  EXPECT_EQ(pr.aux, uint16_t(rep.verdict));
}

PartitionUpdateMsg sample_partition_update() {
  PartitionUpdateMsg m;
  m.epoch = 3;
  m.apply_from_pic = 24;
  m.stream = 1;
  m.col_cuts_mb = {30, 61, 95};
  m.row_cuts_mb = {40, 77};
  return m;
}

CostReportMsg sample_cost_report() {
  CostReportMsg m;
  m.pic_index = 17;
  m.stream = 1;
  m.col_cost = {10, 900, 3, 0, 77};
  m.row_cost = {5, 5, 1200};
  return m;
}

TEST(WireRoundtrip, PartitionUpdate) {
  const PartitionUpdateMsg m = sample_partition_update();
  EXPECT_EQ(roundtrip(m), m);
  const Packed p = pack(m);
  EXPECT_EQ(p.type, MsgType::kPartitionUpdate);
  EXPECT_EQ(p.seq, m.apply_from_pic);
  EXPECT_EQ(p.aux, uint16_t(m.epoch));
  EXPECT_EQ(p.stream, m.stream);
  EXPECT_FALSE(p.bulk);
  EXPECT_EQ(p.body.size(), partition_update_wire_bytes(m.col_cuts_mb.size(),
                                                       m.row_cuts_mb.size()));

  // Empty cut lists (a 1x1 "wall") round-trip too.
  PartitionUpdateMsg flat;
  flat.epoch = 1;
  EXPECT_EQ(roundtrip(flat), flat);
}

TEST(WireRoundtrip, CostReport) {
  const CostReportMsg m = sample_cost_report();
  EXPECT_EQ(roundtrip(m), m);
  const Packed p = pack(m);
  EXPECT_EQ(p.type, MsgType::kCostReport);
  EXPECT_EQ(p.seq, m.pic_index);
  EXPECT_FALSE(p.bulk);
  EXPECT_EQ(p.body.size(),
            cost_report_wire_bytes(m.col_cost.size(), m.row_cost.size()));
}

TEST(WireReject, PartitionUpdateCutsMustStrictlyIncrease) {
  // Non-increasing or zero cut lines are malformed: a decoder must never
  // build a geometry from them.
  PartitionUpdateMsg m = sample_partition_update();
  m.col_cuts_mb = {30, 30};  // equal
  Packed p = pack(m);
  PartitionUpdateMsg out;
  EXPECT_FALSE(decode(p.body, &out));

  m.col_cuts_mb = {40, 20};  // decreasing
  p = pack(m);
  EXPECT_FALSE(decode(p.body, &out));

  m.col_cuts_mb = {0, 20};  // zero cut (empty first band)
  p = pack(m);
  EXPECT_FALSE(decode(p.body, &out));
}

TEST(WireReject, AdmissionEnumRanges) {
  // Out-of-range enum bytes in otherwise well-formed bodies must be
  // rejected, not reinterpreted.
  Packed p = pack(StreamRequest{45, 30, 24, PriorityClass::kStandard, 1});
  StreamRequest req;
  ASSERT_TRUE(decode(p.body, &req));
  p.body.mutable_data()[p.body.size() - 1] = 3;  // priority byte past kPremium
  EXPECT_FALSE(decode(p.body, &req));

  Packed pr = pack(StreamReply{AdmissionVerdict::kAccept,
                               DegradeLevel::kNone, 1});
  StreamReply rep;
  ASSERT_TRUE(decode(pr.body, &rep));
  pr.body.mutable_data()[pr.body.size() - 2] = 7;  // verdict byte
  EXPECT_FALSE(decode(pr.body, &rep));
  pr = pack(StreamReply{AdmissionVerdict::kAccept, DegradeLevel::kNone, 1});
  pr.body.mutable_data()[pr.body.size() - 1] = 9;  // level byte past kFreeze
  EXPECT_FALSE(decode(pr.body, &rep));
}

TEST(WireRoundtrip, DecodeAnyDispatchesEveryType) {
  const auto check = [](const auto& msg) {
    const auto any = decode_any(pack(msg).body);
    ASSERT_TRUE(any.has_value());
    using T = std::decay_t<decltype(msg)>;
    const T* typed = std::get_if<T>(&*any);
    ASSERT_NE(typed, nullptr) << msg_type_name(pack(msg).type);
    EXPECT_EQ(*typed, msg);
  };
  check(sample_picture());
  check(sample_sp());
  check(GoAheadAck{77, 0});
  check(sample_exchange());
  check(EndOfStream{});
  check(Heartbeat{3, 0});
  check(Finished{1, 2});
  check(DeathNotice{2, 0, 30, 0});
  check(SkipBroadcast{5, 3, 0});
  check(StreamRequest{80, 45, 30, PriorityClass::kBackground, 7});
  check(StreamReply{AdmissionVerdict::kReject, DegradeLevel::kFreeze, 7});
  check(sample_partition_update());
  check(sample_cost_report());
}

TEST(WireReject, EmptyAndTruncated) {
  PictureMsg out;
  EXPECT_FALSE(decode(std::span<const uint8_t>{}, &out));
  EXPECT_FALSE(decode_any(std::span<const uint8_t>{}).has_value());

  const Packed p = pack(sample_picture());
  // Every proper prefix of a valid body must be rejected.
  for (size_t n = 0; n < p.body.size(); ++n) {
    EXPECT_FALSE(decode(std::span<const uint8_t>(p.body.data(), n), &out))
        << "accepted a " << n << "-byte prefix";
  }
}

TEST(WireReject, TrailingGarbage) {
  const Packed p = pack(GoAheadAck{1, 0});
  std::vector<uint8_t> grown(p.body.span().begin(), p.body.span().end());
  grown.push_back(0xEE);
  GoAheadAck out;
  EXPECT_FALSE(decode(grown, &out));
}

TEST(WireReject, VersionSkew) {
  Packed p = pack(sample_sp());
  p.body.mutable_data()[0] = uint8_t(kWireVersion + 1);
  SpMsg out;
  EXPECT_FALSE(decode(p.body, &out));
  EXPECT_FALSE(decode_any(p.body).has_value());
}

TEST(WireReject, WrongTypeByte) {
  // A valid heartbeat body must not decode as any other message type.
  const Packed hb = pack(Heartbeat{1, 0});
  PictureMsg pic;
  SpMsg sp;
  ExchangeMsg ex;
  EXPECT_FALSE(decode(hb.body, &pic));
  EXPECT_FALSE(decode(hb.body, &sp));
  EXPECT_FALSE(decode(hb.body, &ex));
}

TEST(WireReject, UnknownTypeByte) {
  Packed p = pack(Heartbeat{1, 0});
  p.body.mutable_data()[1] = 0xFE;
  EXPECT_FALSE(decode_any(p.body).has_value());
}

TEST(WireReject, ExchangeCountOverflow) {
  // An entry count larger than the actual payload must not be trusted.
  const ExchangeMsg m = sample_exchange();
  Packed p = pack(m);
  ExchangeMsg out;
  ASSERT_TRUE(decode(p.body, &out));
  // The count field lives in the fixed prelude; force it huge.
  for (size_t i = 2; i + 4 <= p.body.size() && i < 16; ++i) {
    Packed corrupt = p;
    corrupt.body.make_unique();  // copy-on-write: don't scribble on p's block
    corrupt.body.mutable_data()[i] = 0xFF;
    // Either rejected or decoded to something self-consistent — never a
    // crash or an out-of-bounds read (ASan-checked in CI).
    ExchangeMsg dummy;
    (void)decode(corrupt.body, &dummy);
  }
}

TEST(WireSizes, AccountingHelpersMatchPackedBodies) {
  EXPECT_EQ(kExchangeEntryWireBytes,
            sizeof(mpeg2::MacroblockPixels) + core::kMeiWireBytes);
  const ExchangeMsg ex = sample_exchange();
  EXPECT_EQ(pack(ex).body.size(), exchange_msg_wire_bytes(ex.entries.size()));
  const SpMsg sp = sample_sp();
  EXPECT_EQ(pack(sp).body.size(),
            sp_msg_wire_bytes(sp.subpicture.size(), sp.mei.size()));
  const PictureMsg pic = sample_picture();
  EXPECT_EQ(pack(pic).body.size(), picture_msg_wire_bytes(pic.coded.size()));
}

}  // namespace
}  // namespace pdw::proto
