// Fault-tolerant cluster runtime tests.
//
// Three layers under test together:
//   * net::ReliableEndpoint over a faulty fabric — every non-fatal fault
//     schedule (drops, duplicates, corruption, delay/reorder) must leave the
//     decoded wall bit-exact against the serial decoder;
//   * the health monitor + recovery protocol — a killed decoder node is
//     detected by heartbeat timeout and its tile either adopted (bit-exact
//     again from the next closed-GOP picture) or frozen (degraded mode);
//   * the discrete-event simulator replaying the same schedules to predict
//     recovery latency and fps under faults.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/lockstep.h"
#include "core/pipeline.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "net/fault.h"
#include "sim/cluster_sim.h"
#include "video/generator.h"
#include "wall/assembler.h"

namespace pdw {
namespace {

using core::ClusterPipeline;
using core::FtOptions;
using core::RecoveryPolicy;
using core::TileDisplayInfo;
using mpeg2::Frame;

constexpr int kW = 256, kH = 192, kFrames = 12, kK = 2;

// gop_size 4 gives closed-GOP resync points at coded pictures 0, 4 and 8 —
// short enough that a mid-run crash always has a resync picture ahead.
const std::vector<uint8_t>& stream() {
  static const std::vector<uint8_t> es = [] {
    enc::EncoderConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.gop_size = 4;
    cfg.b_frames = 2;
    cfg.target_bpp = 0.4;
    const auto gen =
        video::make_scene(video::SceneKind::kMovingObjects, kW, kH, 21);
    enc::Mpeg2Encoder encoder(cfg);
    return encoder.encode(kFrames,
                          [&](int i, Frame* f) { gen->render(i, f); });
  }();
  return es;
}

const std::vector<Frame>& serial_frames() {
  static const std::vector<Frame> frames = [] {
    std::vector<Frame> out;
    mpeg2::Mpeg2Decoder dec;
    dec.decode(stream(), [&](const Frame& f, const mpeg2::DecodedPictureInfo&) {
      out.push_back(f);
    });
    return out;
  }();
  return frames;
}

const wall::TileGeometry& geometry() {
  static const wall::TileGeometry geo(kW, kH, 2, 2, 16);
  return geo;
}

struct FtRun {
  std::vector<Frame> frames;   // finalized wall frames, display order
  std::vector<bool> degraded;  // per slot: any degraded tile or filled hole
  core::ClusterStats stats;
};

// Run the threaded pipeline under `ft`, assembling wall frames the way a
// fault-tolerant display would: degraded tiles never overwrite exact pixels,
// and slots with holes (dead, unadopted tile) freeze the previous frame.
FtRun ft_decode(FtOptions ft) {
  const wall::TileGeometry& geo = geometry();
  ClusterPipeline pipeline(geo, kK, stream(), ft);
  struct Slot {
    std::unique_ptr<wall::WallAssembler> assembler;
    bool degraded = false;
  };
  std::map<int, Slot> slots;
  FtRun run;
  run.stats = pipeline.run([&](int tile, const mpeg2::TileFrame& tf,
                               const TileDisplayInfo& info) {
    Slot& s = slots[info.display_index];
    if (!s.assembler) s.assembler = std::make_unique<wall::WallAssembler>(geo);
    s.assembler->add_tile(tile, tf, /*exact=*/!info.degraded);
    s.degraded = s.degraded || info.degraded;
  });
  run.frames.reserve(slots.size());
  const Frame* prev = nullptr;
  for (auto& [index, s] : slots) {
    if (!s.assembler->coverage_complete()) {
      s.assembler->fill_uncovered(prev);  // freeze-last-frame recovery
      s.degraded = true;
    }
    run.frames.push_back(s.assembler->frame());
    run.degraded.push_back(s.degraded);
    prev = &run.frames.back();
  }
  return run;
}

bool slot_matches_serial(const FtRun& run, size_t i) {
  const Frame a = wall::crop_frame(serial_frames()[i], kW, kH);
  const Frame b = wall::crop_frame(run.frames[i], kW, kH);
  return a.y == b.y && a.cb == b.cb && a.cr == b.cr;
}

// ---------------------------------------------------------------------------
// Non-fatal fault schedules: the reliable transport must absorb every one of
// them and deliver a bit-exact wall with nothing flagged degraded.

struct Schedule {
  const char* name;
  uint64_t seed;
  net::FaultRates rates;
};

const Schedule kSchedules[] = {
    {"drop_light", 11, {.drop = 0.03}},
    {"drop_heavy", 12, {.drop = 0.15}},
    {"dup", 13, {.dup = 0.25}},
    {"corrupt", 14, {.corrupt = 0.12}},
    {"delay", 15, {.delay = 0.25, .delay_hold = 3}},
    {"drop_dup", 16, {.drop = 0.08, .dup = 0.12}},
    {"corrupt_delay", 17, {.corrupt = 0.15, .delay = 0.15}},
    {"everything", 18, {.drop = 0.05, .dup = 0.08, .corrupt = 0.06,
                        .delay = 0.10}},
};

class NonFatalSchedule : public ::testing::TestWithParam<Schedule> {};

TEST_P(NonFatalSchedule, StaysBitExact) {
  const Schedule& sched = GetParam();
  const net::FaultInjector injector(sched.seed, sched.rates);
  FtOptions ft;
  ft.injector = &injector;
  const FtRun run = ft_decode(ft);

  ASSERT_EQ(run.frames.size(), serial_frames().size());
  for (size_t i = 0; i < run.frames.size(); ++i) {
    EXPECT_FALSE(run.degraded[i]) << "slot " << i;
    EXPECT_TRUE(slot_matches_serial(run, i)) << "slot " << i;
  }
  EXPECT_EQ(run.stats.ft.degraded_frames, 0u);
  EXPECT_EQ(run.stats.ft.skipped_pictures, 0u);
  EXPECT_TRUE(run.stats.ft.recoveries.empty());

  // The transport actually had to work for it.
  const net::ReliableStats& tr = run.stats.ft.transport;
  if (sched.rates.drop > 0) EXPECT_GT(tr.retransmits, 0u) << sched.name;
  if (sched.rates.dup > 0) EXPECT_GT(tr.dup_drops, 0u) << sched.name;
  if (sched.rates.corrupt > 0) EXPECT_GT(tr.crc_drops, 0u) << sched.name;
  EXPECT_EQ(tr.abandoned, 0u) << sched.name;
}

INSTANTIATE_TEST_SUITE_P(Schedules, NonFatalSchedule,
                         ::testing::ValuesIn(kSchedules),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------------
// Node death.

net::FaultInjector crash_injector(int tile, uint64_t at_delivery) {
  net::FaultInjector inj;
  net::FaultEvent ev;
  ev.kind = net::FaultEvent::Kind::kCrash;
  ev.dst = 1 + kK + tile;  // the decoder node owning `tile`
  ev.at_ordinal = at_delivery;
  inj.add_event(ev);
  return inj;
}

FtOptions crash_options(const net::FaultInjector* inj, RecoveryPolicy policy) {
  FtOptions ft;
  ft.injector = inj;
  ft.recovery = policy;
  ft.protocol.heartbeat_interval_s = 0.01;
  ft.protocol.heartbeat_timeout_s = 0.25;
  return ft;
}

TEST(NodeDeath, AdoptionRecoversAtNextClosedGop) {
  // Kill tile 3's node mid-run (at its 25th delivered message, ~picture 3).
  const auto injector = crash_injector(3, 25);
  const FtRun run = ft_decode(crash_options(&injector, RecoveryPolicy::kAdopt));

  ASSERT_EQ(run.stats.ft.recoveries.size(), 1u);
  const core::RecoveryEvent& rec = run.stats.ft.recoveries[0];
  EXPECT_EQ(rec.dead_tile, 3);
  ASSERT_GE(rec.adopter_tile, 0);
  EXPECT_NE(rec.adopter_tile, 3);
  EXPECT_GT(rec.detect_time_s, 0.0);
  EXPECT_GT(rec.resync_time_s, rec.detect_time_s);
  // Resync must land on a closed-GOP boundary (gop_size 4).
  EXPECT_EQ(rec.resync_pic % 4, 0u);
  EXPECT_LT(rec.resync_pic, uint32_t(kFrames));

  // Every display slot still exists (holes were frozen), and everything from
  // the resync picture's slot on is bit-exact again.
  ASSERT_EQ(run.frames.size(), serial_frames().size());
  EXPECT_GT(run.stats.ft.degraded_frames, 0u);
  int degraded_slots = 0;
  for (size_t i = 0; i < run.frames.size(); ++i) {
    if (i >= size_t(rec.resync_pic)) {
      EXPECT_TRUE(slot_matches_serial(run, i)) << "slot " << i;
      EXPECT_FALSE(run.degraded[i]) << "slot " << i;
    }
    // Never silently wrong: a slot either matches the serial decode or is
    // flagged degraded.
    EXPECT_TRUE(run.degraded[i] || slot_matches_serial(run, i))
        << "slot " << i << " silently wrong";
    degraded_slots += run.degraded[i] ? 1 : 0;
  }
  EXPECT_GT(degraded_slots, 0);
}

TEST(NodeDeath, DegradePolicyFreezesTileForRestOfRun) {
  const auto injector = crash_injector(3, 25);
  const FtRun run =
      ft_decode(crash_options(&injector, RecoveryPolicy::kDegrade));

  ASSERT_EQ(run.stats.ft.recoveries.size(), 1u);
  const core::RecoveryEvent& rec = run.stats.ft.recoveries[0];
  EXPECT_EQ(rec.dead_tile, 3);
  EXPECT_EQ(rec.adopter_tile, -1);
  EXPECT_EQ(rec.resync_time_s, 0.0);  // never resynchronized

  // The run still completes with a full wall frame per display slot — the
  // dead tile's region is frozen, flagged degraded, never missing.
  ASSERT_EQ(run.frames.size(), serial_frames().size());
  EXPECT_TRUE(run.degraded.back());
  int degraded_slots = 0;
  for (size_t i = 0; i < run.frames.size(); ++i) {
    EXPECT_TRUE(run.degraded[i] || slot_matches_serial(run, i))
        << "slot " << i << " silently wrong";
    degraded_slots += run.degraded[i] ? 1 : 0;
  }
  EXPECT_GT(degraded_slots, 0);
  // The first slot precedes any possible crash fallout... it may still be
  // emitted after the crash, so only require that *some* early slot is exact.
  EXPECT_TRUE(slot_matches_serial(run, 0));
}

// ---------------------------------------------------------------------------
// DES replay: the simulator reports recovery latency and the fps cost of a
// fault schedule without running the threaded pipeline.

std::vector<core::PictureTrace> lockstep_traces() {
  static const std::vector<core::PictureTrace> traces = [] {
    std::vector<core::PictureTrace> out;
    core::LockstepPipeline lp(geometry(), kK, stream());
    lp.run(nullptr,
           [&](const core::PictureTrace& tr) { out.push_back(tr); });
    return out;
  }();
  return traces;
}

TEST(FaultSim, CrashReplayReportsRecoveryLatency) {
  const auto traces = lockstep_traces();
  sim::SimParams params;
  params.k = kK;
  const sim::SimResult clean = simulate_cluster(traces, geometry(), params);
  ASSERT_TRUE(clean.recoveries.empty());

  params.fault.crash_tile = 1;
  params.fault.crash_at_picture = 3;
  params.fault.hb_timeout_s = 0.25;
  const sim::SimResult r = simulate_cluster(traces, geometry(), params);

  ASSERT_EQ(r.recoveries.size(), 1u);
  const sim::SimRecovery& rec = r.recoveries[0];
  EXPECT_EQ(rec.tile, 1);
  EXPECT_GE(rec.adopter_tile, 0);
  ASSERT_GE(rec.resync_picture, 0);
  EXPECT_TRUE(traces[size_t(rec.resync_picture)].has_gop_header);
  // Detection alone costs a heartbeat timeout; full recovery strictly more.
  EXPECT_GE(rec.detect_time_s - rec.crash_time_s, 0.25);
  EXPECT_GT(rec.recovery_latency_s, 0.25);
  EXPECT_GT(r.degraded_frames, 0);
  EXPECT_LT(r.fps, clean.fps);  // the stall shows up in throughput
}

TEST(FaultSim, DegradedReplayFreezesTileWithoutResync) {
  const auto traces = lockstep_traces();
  sim::SimParams params;
  params.k = kK;
  params.fault.crash_tile = 0;
  params.fault.crash_at_picture = 4;
  params.fault.hb_timeout_s = 0.25;
  params.fault.adopt = false;
  const sim::SimResult r = simulate_cluster(traces, geometry(), params);

  ASSERT_EQ(r.recoveries.size(), 1u);
  EXPECT_EQ(r.recoveries[0].resync_picture, -1);
  EXPECT_EQ(r.recoveries[0].adopter_tile, -1);
  // Frozen from the crash to the end of the run.
  EXPECT_EQ(r.degraded_frames, int(traces.size()) - 5);
  EXPECT_DOUBLE_EQ(r.recoveries[0].recovery_latency_s, 0.25);
}

TEST(FaultSim, DropRateCostsRetransmitsAndThroughput) {
  const auto traces = lockstep_traces();
  sim::SimParams params;
  params.k = kK;
  const sim::SimResult clean = simulate_cluster(traces, geometry(), params);

  params.fault.seed = 3;
  params.fault.drop_rate = 0.05;
  const sim::SimResult lossy = simulate_cluster(traces, geometry(), params);
  EXPECT_GT(lossy.retransmits, 0u);
  EXPECT_GT(lossy.makespan_s, clean.makespan_s);

  // Same seed, same schedule — the replay is deterministic.
  const sim::SimResult again = simulate_cluster(traces, geometry(), params);
  EXPECT_EQ(lossy.retransmits, again.retransmits);
  EXPECT_DOUBLE_EQ(lossy.makespan_s, again.makespan_s);
}

}  // namespace
}  // namespace pdw
