// Partition table and balanced-cut planner tests: epoch resolution, install
// ordering rules, wire idempotency, cut placement, hysteresis.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "wall/geometry.h"
#include "wall/partition.h"
#include "wall/planner.h"

namespace pdw::wall {
namespace {

// ---------------------------------------------------------------------------
// Partition / PartitionTable

TEST(Partition, UniformMatchesGridShape) {
  const Partition p = Partition::uniform(640, 480, 2, 2);
  EXPECT_EQ(p.epoch, 0u);
  EXPECT_EQ(p.m(), 2);
  EXPECT_EQ(p.n(), 2);
  ASSERT_EQ(p.col_cuts_mb.size(), 1u);
  ASSERT_EQ(p.row_cuts_mb.size(), 1u);
  // Cuts sit on the MB boundary nearest each uniform pixel edge.
  EXPECT_EQ(p.col_cuts_mb[0], ((640 / 2) + 8) / 16);
  EXPECT_EQ(p.row_cuts_mb[0], ((480 / 2) + 8) / 16);
}

TEST(PartitionTable, EpochZeroIsTheBaseGeometry) {
  TileGeometry base(640, 480, 2, 2, 0);
  PartitionTable table(base);
  EXPECT_EQ(table.latest_epoch(), 0u);
  EXPECT_TRUE(table.has_epoch(0));
  EXPECT_FALSE(table.has_epoch(1));
  EXPECT_EQ(&table.geometry(0), &base);
  EXPECT_EQ(table.epoch_for(0), 0u);
  EXPECT_EQ(table.epoch_for(100000), 0u);
}

TEST(PartitionTable, EpochForResolvesApplyPoints) {
  TileGeometry base(640, 480, 2, 2, 0);
  PartitionTable table(base);

  Partition p1 = Partition::uniform(640, 480, 2, 2);
  p1.epoch = 1;
  p1.col_cuts_mb = {12};
  table.install(p1, 6);
  Partition p2 = p1;
  p2.epoch = 2;
  p2.col_cuts_mb = {26};
  table.install(p2, 12);

  EXPECT_EQ(table.latest_epoch(), 2u);
  EXPECT_EQ(table.epoch_for(0), 0u);
  EXPECT_EQ(table.epoch_for(5), 0u);
  EXPECT_EQ(table.epoch_for(6), 1u);
  EXPECT_EQ(table.epoch_for(11), 1u);
  EXPECT_EQ(table.epoch_for(12), 2u);
  EXPECT_EQ(table.epoch_for(99), 2u);
  EXPECT_EQ(table.apply_from(1), 6u);
  EXPECT_EQ(table.apply_from(2), 12u);
  EXPECT_EQ(table.partition(1), p1);
  EXPECT_EQ(table.geometry(1).epoch(), 1u);
  EXPECT_EQ(table.geometry(2).epoch(), 2u);
}

TEST(PartitionTable, InstallEnforcesDenseEpochsAndOrderedApplyPoints) {
  TileGeometry base(640, 480, 2, 2, 0);
  PartitionTable table(base);

  Partition skip = Partition::uniform(640, 480, 2, 2);
  skip.epoch = 2;  // next must be 1
  EXPECT_THROW(table.install(skip, 6), CheckError);

  Partition p1 = Partition::uniform(640, 480, 2, 2);
  p1.epoch = 1;
  table.install(p1, 10);
  Partition p2 = p1;
  p2.epoch = 2;
  EXPECT_THROW(table.install(p2, 4), CheckError);  // apply point regresses
  table.install(p2, 10);                           // equal is fine
  EXPECT_EQ(table.latest_epoch(), 2u);
}

TEST(PartitionTable, InstallRejectsShapeChange) {
  TileGeometry base(640, 480, 2, 2, 0);
  PartitionTable table(base);
  Partition wide = Partition::uniform(640, 480, 4, 2);  // 4x2 on a 2x2 wall
  wide.epoch = 1;
  EXPECT_THROW(table.install(wide, 6), CheckError);
}

TEST(PartitionTable, InstallWireIsIdempotentAcrossBroadcastFanout) {
  TileGeometry base(640, 480, 2, 2, 0);
  PartitionTable table(base);
  const std::vector<uint16_t> col = {14};
  const std::vector<uint16_t> row = {16};
  EXPECT_TRUE(table.install_wire(1, 8, col, row));
  // A co-hosted node sees the same broadcast once per machine: no-op.
  EXPECT_FALSE(table.install_wire(1, 8, col, row));
  EXPECT_EQ(table.latest_epoch(), 1u);
  EXPECT_EQ(table.partition(1).col_cuts_mb, std::vector<int>{14});
  EXPECT_EQ(table.partition(1).row_cuts_mb, std::vector<int>{16});
}

TEST(PartitionTable, GeometryReferencesSurviveLaterInstalls) {
  TileGeometry base(640, 480, 2, 2, 0);
  PartitionTable table(base);
  Partition p1 = Partition::uniform(640, 480, 2, 2);
  p1.epoch = 1;
  p1.col_cuts_mb = {10};
  const TileGeometry* g1 = &table.install(p1, 6);
  for (uint32_t e = 2; e < 10; ++e) {
    Partition p = p1;
    p.epoch = e;
    p.col_cuts_mb = {10 + int(e)};
    table.install(p, 6 * e);
  }
  // Heap-allocated, pointer-stable: serving an old epoch stays valid.
  EXPECT_EQ(g1, &table.geometry(1));
  EXPECT_EQ(g1->tile_pixels(0).x1, 10 * 16);
}

// ---------------------------------------------------------------------------
// balanced_cuts

TEST(BalancedCuts, EqualCostSplitsEvenly) {
  const std::vector<uint64_t> cost(16, 7);
  EXPECT_EQ(balanced_cuts(cost, 4, 2), (std::vector<int>{4, 8, 12}));
  EXPECT_EQ(balanced_cuts(cost, 2, 2), (std::vector<int>{8}));
}

TEST(BalancedCuts, IsDeterministic) {
  std::vector<uint64_t> cost(40);
  for (size_t i = 0; i < cost.size(); ++i)
    cost[i] = (i * 2654435761u) % 997 + 1;
  const auto a = balanced_cuts(cost, 5, 2);
  const auto b = balanced_cuts(cost, 5, 2);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 4u);
}

TEST(BalancedCuts, SkewNarrowsTheHotBand) {
  // All the work in the first quarter: the first band should shrink well
  // below the uniform cut to offload the hot columns.
  std::vector<uint64_t> cost(20, 1);
  for (int i = 0; i < 5; ++i) cost[size_t(i)] = 100;
  const auto cuts = balanced_cuts(cost, 2, 2);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_LT(cuts[0], 10);
  EXPECT_GE(cuts[0], 2);
}

TEST(BalancedCuts, RespectsMinBandEvenUnderExtremeSkew) {
  std::vector<uint64_t> cost(12, 0);
  cost[0] = 1000000;  // everything in column 0
  const auto cuts = balanced_cuts(cost, 3, 3);
  ASSERT_EQ(cuts.size(), 2u);
  int prev = 0;
  for (int c : cuts) {
    EXPECT_GE(c - prev, 3);
    prev = c;
  }
  EXPECT_GE(int(cost.size()) - prev, 3);
}

TEST(BalancedCuts, EmptyWhenInfeasible) {
  const std::vector<uint64_t> cost(5, 1);
  EXPECT_TRUE(balanced_cuts(cost, 3, 2).empty());  // 3 bands * 2 mbs > 5
  EXPECT_TRUE(balanced_cuts(std::vector<uint64_t>{}, 2, 1).empty());
}

// ---------------------------------------------------------------------------
// predicted_work_share / plan_partition

CostProfile skewed_profile(int cols, int rows) {
  CostProfile c;
  c.col.assign(size_t(cols), 10);
  c.row.assign(size_t(rows), 10);
  // Hot upper-left region, Orion style. Keep the axis totals equal, as the
  // splitter's per-picture accumulation guarantees by construction.
  for (int i = 0; i < cols / 4; ++i) c.col[size_t(i)] = 200;
  uint64_t col_total = 0, row_total = 0;
  for (auto v : c.col) col_total += v;
  for (auto v : c.row) row_total += v;
  c.row[0] += col_total - row_total;
  return c;
}

TEST(Planner, UniformCostOnUniformPartitionHasFullWorkShare) {
  CostProfile c;
  c.col.assign(40, 3);  // axis totals match (120 each), as the splitter's
  c.row.assign(30, 4);  // per-picture accumulation guarantees
  const Partition p = Partition::uniform(640, 480, 2, 2);
  EXPECT_NEAR(predicted_work_share(p, c), 1.0, 0.08);
  EXPECT_EQ(predicted_work_share(p, CostProfile{}), 1.0);
}

TEST(Planner, PlanImprovesSkewedWorkShare) {
  const Partition cur = Partition::uniform(640, 480, 2, 2);
  const CostProfile cost = skewed_profile(40, 30);
  PlannerConfig cfg;
  cfg.gain_threshold = 0.01;
  const auto next = plan_partition(cur, cost, cfg);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->epoch, cur.epoch + 1);
  EXPECT_EQ(next->m(), cur.m());
  EXPECT_EQ(next->n(), cur.n());
  EXPECT_LT(predicted_max_tile_cost(*next, cost),
            predicted_max_tile_cost(cur, cost));
  EXPECT_GT(predicted_work_share(*next, cost),
            predicted_work_share(cur, cost));
}

TEST(Planner, HysteresisKeepsCurrentCutsOnSmallGain) {
  const Partition cur = Partition::uniform(640, 480, 2, 2);
  const CostProfile cost = skewed_profile(40, 30);
  PlannerConfig cfg;
  cfg.gain_threshold = 0.99;  // demand a near-free wall before moving
  EXPECT_FALSE(plan_partition(cur, cost, cfg).has_value());
}

TEST(Planner, BalancedCostYieldsNoNewEpoch) {
  const Partition cur = Partition::uniform(640, 480, 2, 2);
  CostProfile cost;
  cost.col.assign(40, 3);
  cost.row.assign(30, 4);
  PlannerConfig cfg;
  cfg.gain_threshold = 0.0;
  // balanced_cuts lands on (or within hysteresis of) the uniform cuts.
  EXPECT_FALSE(plan_partition(cur, cost, cfg).has_value());
}

TEST(Planner, NoPlanFromEmptyProfile) {
  const Partition cur = Partition::uniform(640, 480, 2, 2);
  EXPECT_FALSE(plan_partition(cur, CostProfile{}, PlannerConfig{}).has_value());
}

TEST(Planner, OverlapWidensMinimumBand) {
  const Partition cur = Partition::uniform(640, 480, 2, 2);
  const CostProfile cost = skewed_profile(40, 30);
  PlannerConfig cfg;
  cfg.gain_threshold = 0.0;
  cfg.min_band_mbs = 2;
  cfg.overlap_px = 40;  // effective min band: (40+15)/16 + 1 = 4 MBs
  const auto next = plan_partition(cur, cost, cfg);
  if (next) {
    int prev = 0;
    for (int c : next->col_cuts_mb) {
      EXPECT_GE(c - prev, 4);
      prev = c;
    }
    EXPECT_GE(40 - prev, 4);
  }
}

TEST(Planner, CostProfileAddAccumulates) {
  CostProfile a, b;
  a.col = {1, 2};
  a.row = {3};
  b.col = {10, 10, 10};
  b.row = {20, 10};
  a.add(b);
  EXPECT_EQ(a.col, (std::vector<uint64_t>{11, 12, 10}));
  EXPECT_EQ(a.row, (std::vector<uint64_t>{23, 10}));
  EXPECT_EQ(a.total(), 33u);
}

}  // namespace
}  // namespace pdw::wall
