// Threaded cluster pipeline tests: the full Table-3 protocol with real
// concurrency — bit-exactness against the serial decoder, in-order delivery
// (built into the pipeline as CHECKs), flow-control compliance (the fabric
// CHECK-fails on overruns), and traffic accounting invariants.
#include <gtest/gtest.h>

#include <map>

#include "core/pipeline.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "video/generator.h"
#include "wall/assembler.h"

namespace pdw {
namespace {

using core::ClusterPipeline;
using core::ClusterStats;
using core::TileDisplayInfo;
using mpeg2::Frame;

std::vector<uint8_t> make_stream(int w, int h, int frames) {
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 8;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.4;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, w, h, 21);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, Frame* f) { gen->render(i, f); });
}

std::vector<Frame> serial_decode(const std::vector<uint8_t>& es) {
  std::vector<Frame> out;
  mpeg2::Mpeg2Decoder dec;
  dec.decode(es, [&](const Frame& f, const mpeg2::DecodedPictureInfo&) {
    out.push_back(f);
  });
  return out;
}

struct ThreadedRun {
  std::vector<Frame> frames;
  ClusterStats stats;
};

ThreadedRun threaded_decode(const std::vector<uint8_t>& es,
                            const wall::TileGeometry& geo, int k) {
  ClusterPipeline pipeline(geo, k, es);
  struct Pending {
    std::unique_ptr<wall::WallAssembler> assembler;
    int tiles = 0;
  };
  std::map<int, Pending> pending;
  std::map<int, Frame> finished;

  ThreadedRun run;
  run.stats = pipeline.run([&](int tile, const mpeg2::TileFrame& tf,
                               const TileDisplayInfo& info) {
    Pending& p = pending[info.display_index];
    if (!p.assembler) p.assembler = std::make_unique<wall::WallAssembler>(geo);
    p.assembler->add_tile(tile, tf);
    if (++p.tiles == geo.tiles()) {
      p.assembler->check_coverage();
      finished.emplace(info.display_index, p.assembler->frame());
      pending.erase(info.display_index);
    }
  });
  EXPECT_TRUE(pending.empty());
  int next = 0;
  while (finished.count(next)) {
    run.frames.push_back(std::move(finished.at(next)));
    finished.erase(next);
    ++next;
  }
  EXPECT_TRUE(finished.empty());
  return run;
}

class ThreadedPipeline : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ThreadedPipeline, BitExactAgainstSerial) {
  const auto [m, n, k] = GetParam();
  const int w = 256, h = 192;
  const auto es = make_stream(w, h, 9);
  wall::TileGeometry geo(w, h, m, n, 16);
  const auto serial = serial_decode(es);
  const auto run = threaded_decode(es, geo, k);
  ASSERT_EQ(run.frames.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const Frame a = wall::crop_frame(serial[i], w, h);
    const Frame b = wall::crop_frame(run.frames[i], w, h);
    ASSERT_EQ(a.y, b.y) << "frame " << i;
    ASSERT_EQ(a.cb, b.cb);
    ASSERT_EQ(a.cr, b.cr);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, ThreadedPipeline,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 1, 1),
                                           std::make_tuple(2, 2, 2),
                                           std::make_tuple(3, 2, 3),
                                           std::make_tuple(2, 2, 5)),
                         [](const auto& info) {
                           return "m" + std::to_string(std::get<0>(info.param)) +
                                  "n" + std::to_string(std::get<1>(info.param)) +
                                  "k" + std::to_string(std::get<2>(info.param));
                         });

TEST(ThreadedPipelineStats, TrafficAccountingIsConserved) {
  const int w = 256, h = 192;
  const auto es = make_stream(w, h, 6);
  wall::TileGeometry geo(w, h, 2, 2, 0);
  const auto run = threaded_decode(es, geo, 2);

  uint64_t sent = 0, recv = 0;
  for (const auto& c : run.stats.node_counters) {
    sent += c.sent_bytes;
    recv += c.recv_bytes;
  }
  EXPECT_EQ(sent, recv);
  EXPECT_GT(sent, 0u);

  // Traffic matrix row/column sums equal node counters.
  const int nodes = run.stats.nodes;
  for (int n = 0; n < nodes; ++n) {
    uint64_t row = 0, col = 0;
    for (int d = 0; d < nodes; ++d) {
      row += run.stats.traffic_matrix.at(n, d);
      col += run.stats.traffic_matrix.at(d, n);
    }
    EXPECT_EQ(row, run.stats.node_counters[size_t(n)].sent_bytes);
    EXPECT_EQ(col, run.stats.node_counters[size_t(n)].recv_bytes);
  }
}

TEST(ThreadedPipelineStats, RootSendsOnlyToSplitters) {
  const int w = 256, h = 192;
  const auto es = make_stream(w, h, 6);
  wall::TileGeometry geo(w, h, 2, 1, 0);
  ClusterPipeline pipeline(geo, 2, es);
  const auto stats = pipeline.run(nullptr);
  // Root (node 0) must not send application traffic to decoders directly.
  // The reliable transport does ack each decoder's "finished" report with a
  // single header-only transport ack, so allow at most that.
  for (int t = 0; t < geo.tiles(); ++t) {
    const int d = pipeline.decoder_node(t);
    EXPECT_LE(stats.traffic_matrix.at(0, d),
              uint64_t(net::Message::kHeaderBytes));
  }
  // Both splitters carry picture traffic (round-robin balance).
  EXPECT_GT(stats.traffic_matrix.at(0, 1), 0u);
  EXPECT_GT(stats.traffic_matrix.at(0, 2), 0u);
}

TEST(ThreadedPipelineStats, SplitterSendOverheadIsModest) {
  // Paper §5.6: SPH headers make a splitter's send volume ~20% larger than
  // its receive volume at high resolutions (the relative overhead grows as
  // resolution shrinks, which the paper also notes). At DVD-class resolution
  // with a 2x2 wall the band is looser: >1x (headers always add something)
  // and well under 2x.
  const int w = 720, h = 480;
  const auto es = make_stream(w, h, 9);
  wall::TileGeometry geo(w, h, 2, 2, 0);
  ClusterPipeline pipeline(geo, 1, es);
  const auto stats = pipeline.run(nullptr);
  const auto& s = stats.node_counters[1];  // the single splitter
  EXPECT_GT(s.sent_bytes, s.recv_bytes);
  // At this small frame size the fixed per-run SPH cost amortizes poorly
  // (short rows, few bits per macroblock), so allow up to 2.5x; the paper's
  // ~20% figure at ultra-high resolution is reproduced by the Figure 9
  // benchmark, not here.
  EXPECT_LT(double(s.sent_bytes), double(s.recv_bytes) * 2.5);
}

}  // namespace
}  // namespace pdw
