// Synthetic video generator and stream catalog tests.
#include <gtest/gtest.h>

#include <cstdlib>

#include "video/catalog.h"
#include "video/generator.h"

namespace pdw::video {
namespace {

TEST(Generators, DeterministicAcrossInstances) {
  for (SceneKind kind :
       {SceneKind::kPanningTexture, SceneKind::kMovingObjects,
        SceneKind::kAnimation, SceneKind::kLocalizedDetail}) {
    const auto a = make_scene(kind, 128, 96, 42);
    const auto b = make_scene(kind, 128, 96, 42);
    mpeg2::Frame fa(128, 96), fb(128, 96);
    a->render(7, &fa);
    b->render(7, &fb);
    EXPECT_EQ(fa, fb) << scene_kind_name(kind);
  }
}

TEST(Generators, SeedChangesContent) {
  const auto a = make_scene(SceneKind::kMovingObjects, 128, 96, 1);
  const auto b = make_scene(SceneKind::kMovingObjects, 128, 96, 2);
  mpeg2::Frame fa(128, 96), fb(128, 96);
  a->render(0, &fa);
  b->render(0, &fb);
  EXPECT_NE(fa.y, fb.y);
}

TEST(Generators, FramesChangeOverTime) {
  for (SceneKind kind :
       {SceneKind::kPanningTexture, SceneKind::kMovingObjects,
        SceneKind::kAnimation, SceneKind::kLocalizedDetail}) {
    const auto g = make_scene(kind, 128, 96, 9);
    mpeg2::Frame f0(128, 96), f1(128, 96);
    g->render(0, &f0);
    g->render(1, &f1);
    EXPECT_NE(f0.y, f1.y) << scene_kind_name(kind) << " must have motion";
  }
}

TEST(Generators, MotionIsModerateBetweenFrames) {
  // Mean absolute frame difference should be nonzero but far below full
  // swing — otherwise motion estimation would be useless.
  const auto g = make_scene(SceneKind::kPanningTexture, 128, 96, 5);
  mpeg2::Frame f0(128, 96), f1(128, 96);
  g->render(10, &f0);
  g->render(11, &f1);
  double diff = 0;
  for (int y = 0; y < 96; ++y)
    for (int x = 0; x < 128; ++x)
      diff += std::abs(int(f0.y.at(x, y)) - int(f1.y.at(x, y)));
  diff /= 128 * 96;
  EXPECT_GT(diff, 0.5);
  EXPECT_LT(diff, 40.0);
}

TEST(Generators, LocalizedDetailIsActuallyLocalized) {
  const int w = 256, h = 192;
  const auto g = make_scene(SceneKind::kLocalizedDetail, w, h, 3);
  mpeg2::Frame f(w, h);
  g->render(5, &f);
  // High-frequency energy near the nebula centre (~0.32w, 0.36h) vs the
  // opposite corner, which only carries faint grain and sparse stars.
  auto energy = [&](int x0, int y0) {
    double e = 0;
    for (int y = y0; y < y0 + 64; ++y)
      for (int x = x0; x < x0 + 63; ++x)
        e += std::abs(int(f.y.at(x + 1, y)) - int(f.y.at(x, y)));
    return e;
  };
  EXPECT_GT(energy(w / 4 - 16, h / 4 - 16), 2.0 * energy(w - 72, h - 72));
}

TEST(Generators, RejectsUnalignedDimensions) {
  EXPECT_THROW(make_scene(SceneKind::kAnimation, 100, 96, 1), CheckError);
}

TEST(Catalog, HasSixteenStreamsMatchingTable4) {
  const auto& cat = stream_catalog();
  ASSERT_EQ(cat.size(), 16u);
  for (size_t i = 0; i < cat.size(); ++i) {
    EXPECT_EQ(cat[i].id, int(i) + 1);
    EXPECT_EQ(cat[i].width % 16, 0);
    EXPECT_EQ(cat[i].height % 16, 0);
    EXPECT_GE(cat[i].tiles_m, 1);
    EXPECT_GE(cat[i].tiles_n, 1);
  }
  EXPECT_EQ(stream_by_id(1).width, 720);   // DVD
  EXPECT_EQ(stream_by_id(8).width, 1280);  // 720p HDTV
  EXPECT_EQ(stream_by_id(16).width, 3840); // near-IMAX
  EXPECT_EQ(stream_by_id(16).tiles_m, 4);
  EXPECT_EQ(stream_by_id(16).tiles_n, 4);
  // Resolutions are non-decreasing in pixel count from stream 4 onward.
  for (size_t i = 4; i < cat.size(); ++i)
    EXPECT_GE(cat[i].pixels(), cat[i - 1].pixels());
}

TEST(Catalog, StreamCacheRoundtrips) {
  setenv("PDW_CACHE_DIR", "/tmp/pdw_test_cache", 1);
  const StreamSpec& spec = stream_by_id(1);
  const auto a = load_stream(spec, 4);
  const auto b = load_stream(spec, 4);  // second load hits the cache
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 1000u);
  unsetenv("PDW_CACHE_DIR");
}

TEST(Catalog, MetricsMath) {
  const StreamSpec& spec = stream_by_id(5);  // 1280x720 @ 30
  std::vector<uint8_t> es(size_t(30) * 34560);  // 0.3 bpp exactly
  const auto m = measure_stream(spec, es, 30);
  EXPECT_NEAR(m.bpp, 0.3, 1e-9);
  EXPECT_NEAR(m.bit_rate_mbps, 0.3 * 1280 * 720 * 30 / 1e6, 1e-6);
}

}  // namespace
}  // namespace pdw::video
