// Adaptive tile partitioning (DESIGN.md §12): on a skewed stream the root
// re-cuts the wall at closed-GOP boundaries, and the output must stay
// bit-exact with the serial reference decoder across every epoch switch —
// on the lockstep reference, the threaded pipeline, the real-socket wall
// (including under genuine datagram loss) and the DES replay. The planner
// decision is a pure function of the bitstream, so every engine installs the
// same epochs; the lockstep table resolves display epochs for all of them.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/lockstep.h"
#include "core/pipeline.h"
#include "core/socket_wall.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "sim/cluster_sim.h"
#include "video/generator.h"
#include "wall/assembler.h"
#include "wall/partition.h"

namespace pdw {
namespace {

using core::LockstepPipeline;
using core::TileDisplayInfo;
using mpeg2::Frame;

// A strongly skewed stream: the detailed region starts left-of-center and
// drifts right across the run, so the best cut lines move between GOPs.
std::vector<uint8_t> make_skewed_stream(int w, int h, int frames,
                                        int gop_size = 6) {
  video::HotRegion hot;
  hot.cx = 0.25f;
  hot.cy = 0.30f;
  hot.rx = 0.28f;
  hot.ry = 0.38f;
  hot.drift_x = 2.5f;
  hot.drift_y = 0.8f;
  const auto gen = video::make_localized_scene(w, h, 77, hot);
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = gop_size;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.4;
  cfg.me_range = 15;
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames, [&](int i, Frame* f) { gen->render(i, f); });
}

std::vector<Frame> serial_decode(const std::vector<uint8_t>& es) {
  std::vector<Frame> out;
  mpeg2::Mpeg2Decoder dec;
  dec.decode(es, [&](const Frame& f, const mpeg2::DecodedPictureInfo&) {
    out.push_back(f);
  });
  return out;
}

proto::RootNode::AdaptivePartition eager_adaptive() {
  proto::RootNode::AdaptivePartition a;
  a.enabled = true;
  a.gain_threshold = 0.01;  // re-cut on nearly any predicted improvement
  return a;
}

// Collects display emissions into assembled wall frames, resolving each
// tile's rect through the *emission's* epoch (info.epoch), never the base
// geometry — exactly what a real display host must do.
struct EpochAssembler {
  EpochAssembler(const wall::TileGeometry& g, const wall::PartitionTable& t)
      : geo(g), table(t) {}

  const wall::TileGeometry& geo;
  const wall::PartitionTable& table;
  std::map<int, std::unique_ptr<wall::WallAssembler>> pending;
  std::map<int, int> tiles_seen;
  std::map<int, Frame> finished;
  uint32_t max_epoch_seen = 0;

  void add(int tile, const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
    ASSERT_TRUE(table.has_epoch(info.epoch))
        << "display emission under unknown epoch " << info.epoch;
    max_epoch_seen = std::max(max_epoch_seen, info.epoch);
    auto& asmb = pending[info.display_index];
    if (!asmb) asmb = std::make_unique<wall::WallAssembler>(geo);
    asmb->add_tile(tile, tf, table.geometry(info.epoch), !info.degraded);
    if (++tiles_seen[info.display_index] == geo.tiles()) {
      asmb->check_coverage();
      finished.emplace(info.display_index, asmb->frame());
      pending.erase(info.display_index);
    }
  }

  void expect_matches_serial(const std::vector<Frame>& serial) {
    EXPECT_TRUE(pending.empty()) << "incomplete wall frames";
    ASSERT_EQ(finished.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_TRUE(finished.count(int(i))) << "missing display index " << i;
      const Frame a = wall::crop_frame(serial[i], geo.width(), geo.height());
      const Frame b =
          wall::crop_frame(finished.at(int(i)), geo.width(), geo.height());
      ASSERT_EQ(a.y, b.y) << "luma mismatch at display frame " << i;
      ASSERT_EQ(a.cb, b.cb) << "cb mismatch at display frame " << i;
      ASSERT_EQ(a.cr, b.cr) << "cr mismatch at display frame " << i;
    }
  }
};

// ---------------------------------------------------------------------------
// Lockstep reference: at least one rebalance fires and the wall stays
// bit-exact through it.

TEST(AdaptivePartitioning, LockstepBitExactAcrossEpochSwitch) {
  const int w = 320, h = 240, k = 2;
  const auto es = make_skewed_stream(w, h, 18);
  wall::TileGeometry geo(w, h, 3, 2, 0);

  LockstepPipeline pipeline(geo, k, es, nullptr, eager_adaptive());
  EpochAssembler wall{geo, pipeline.partitions()};
  pipeline.run(
      [&](int t, const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
        wall.add(t, tf, info);
      },
      nullptr);

  ASSERT_GE(pipeline.partitions().latest_epoch(), 1u)
      << "skewed stream never triggered a rebalance";
  EXPECT_GE(wall.max_epoch_seen, 1u) << "no frame decoded under a new epoch";
  wall.expect_matches_serial(serial_decode(es));

  // Every installed epoch is a genuine re-cut: valid m/n shape, different
  // cuts from its predecessor, applied at non-decreasing GOP boundaries.
  const wall::PartitionTable& table = pipeline.partitions();
  for (uint32_t e = 1; e <= table.latest_epoch(); ++e) {
    const wall::Partition& p = table.partition(e);
    EXPECT_EQ(p.m(), geo.m());
    EXPECT_EQ(p.n(), geo.n());
    EXPECT_FALSE(p.col_cuts_mb == table.partition(e - 1).col_cuts_mb &&
                 p.row_cuts_mb == table.partition(e - 1).row_cuts_mb)
        << "epoch " << e << " re-installed identical cuts";
    EXPECT_GE(table.apply_from(e), table.apply_from(e - 1));
  }
}

// With overlapped tiles the planner must respect the wider minimum band
// (a band narrower than the overlap would make a tile's interior empty).
TEST(AdaptivePartitioning, LockstepBitExactWithOverlap) {
  const int w = 320, h = 240, k = 2;
  const auto es = make_skewed_stream(w, h, 12);
  wall::TileGeometry geo(w, h, 2, 2, 16);

  LockstepPipeline pipeline(geo, k, es, nullptr, eager_adaptive());
  EpochAssembler wall{geo, pipeline.partitions()};
  pipeline.run(
      [&](int t, const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
        wall.add(t, tf, info);
      },
      nullptr);
  wall.expect_matches_serial(serial_decode(es));
}

// ---------------------------------------------------------------------------
// Threaded engine: same epochs, same pixels, same wire accounting.

TEST(AdaptivePartitioning, ThreadedBitExactAndWireEqualToLockstep) {
  const int w = 320, h = 240, k = 2;
  const auto es = make_skewed_stream(w, h, 18);
  wall::TileGeometry geo(w, h, 3, 2, 0);

  LockstepPipeline lockstep(geo, k, es, nullptr, eager_adaptive());
  lockstep.run(nullptr, nullptr);
  ASSERT_GE(lockstep.partitions().latest_epoch(), 1u);
  const proto::WireAccounting& serial_acct = lockstep.accounting();

  core::FtOptions ft;
  ft.adaptive = eager_adaptive();
  core::ClusterPipeline threaded(geo, k, es, ft);
  EpochAssembler wall{geo, lockstep.partitions()};
  const core::ClusterStats stats = threaded.run(
      [&](int t, const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
        wall.add(t, tf, info);
      });

  EXPECT_GE(wall.max_epoch_seen, 1u);
  wall.expect_matches_serial(serial_decode(es));

  // The rebalancing protocol itself is engine-invariant: identical message
  // counts per type (including PartitionUpdate and CostReport) and identical
  // node x node protocol bytes.
  ASSERT_EQ(stats.wire.counts.size(), serial_acct.counts.size());
  for (const auto& [type, n] : serial_acct.counts) {
    const auto it = stats.wire.counts.find(type);
    ASSERT_NE(it, stats.wire.counts.end()) << proto::msg_type_name(type);
    EXPECT_EQ(it->second, n) << proto::msg_type_name(type);
  }
  EXPECT_TRUE(stats.wire.traffic == serial_acct.traffic);
  EXPECT_GT(serial_acct.counts.at(proto::MsgType::kPartitionUpdate), 0u);
  EXPECT_GT(serial_acct.counts.at(proto::MsgType::kCostReport), 0u);
}

// ---------------------------------------------------------------------------
// Real-socket wall under genuine 5% datagram loss: partition updates and
// epoch-stamped pictures ride the same reliable links, so the rebalanced
// wall still comes out bit-exact.

TEST(AdaptivePartitioning, SocketWallBitExactUnderRealLossAcrossEpochs) {
  const int w = 256, h = 192, k = 2;
  const auto es = make_skewed_stream(w, h, 18);
  wall::TileGeometry geo(w, h, 2, 2, 0);

  LockstepPipeline lockstep(geo, k, es, nullptr, eager_adaptive());
  lockstep.run(nullptr, nullptr);
  ASSERT_GE(lockstep.partitions().latest_epoch(), 1u);

  core::SocketWallOptions so;
  so.adaptive = eager_adaptive();
  so.impair = true;
  so.impair_cfg.seed = 23;
  so.impair_cfg.loss = 0.05;
  so.impair_cfg.delay = 0.05;
  so.impair_cfg.delay_s = 0.002;

  EpochAssembler wall{geo, lockstep.partitions()};
  const core::ClusterStats stats = core::run_socket_wall(
      geo, k, es,
      [&](int t, const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
        wall.add(t, tf, info);
      },
      so);

  EXPECT_GT(stats.ft.transport.retransmits, 0u);
  EXPECT_EQ(stats.ft.transport.abandoned, 0u);
  EXPECT_EQ(stats.ft.degraded_frames, 0u);
  EXPECT_GE(wall.max_epoch_seen, 1u);
  wall.expect_matches_serial(serial_decode(es));
}

// ---------------------------------------------------------------------------
// DES: lockstep traces carry their split epoch, and the simulator replays an
// adaptive run exactly like a static one (its inputs are measured per-tile
// costs, already cut under the right epochs).

TEST(AdaptivePartitioning, DesReplaysAdaptiveTraces) {
  const int w = 320, h = 240, k = 2;
  const auto es = make_skewed_stream(w, h, 18);
  wall::TileGeometry geo(w, h, 3, 2, 0);

  LockstepPipeline pipeline(geo, k, es, nullptr, eager_adaptive());
  std::vector<core::PictureTrace> traces;
  pipeline.run(nullptr,
               [&](const core::PictureTrace& tr) { traces.push_back(tr); });

  ASSERT_GE(pipeline.partitions().latest_epoch(), 1u);
  uint32_t max_trace_epoch = 0;
  for (const core::PictureTrace& tr : traces) {
    EXPECT_EQ(tr.epoch, pipeline.partitions().epoch_for(tr.pic_index));
    max_trace_epoch = std::max(max_trace_epoch, tr.epoch);
  }
  EXPECT_GE(max_trace_epoch, 1u);

  sim::SimParams params;
  params.k = k;
  const sim::SimResult res = sim::simulate_cluster(traces, geo, params);
  EXPECT_EQ(res.pictures, int(traces.size()));
  EXPECT_GT(res.fps, 0.0);
  EXPECT_GT(res.makespan_s, 0.0);
}

// ---------------------------------------------------------------------------
// Fault interaction: a node death freezes the partition (no rebalance is
// planned over a recovering wall), adoption still works mid-epoch, and every
// slot is either bit-exact or flagged degraded — never silently wrong.

TEST(AdaptivePartitioning, NodeDeathFreezesPartitionAndStaysHonest) {
  const int w = 256, h = 192, k = 2;
  const auto es = make_skewed_stream(w, h, 12, /*gop_size=*/4);
  wall::TileGeometry geo(w, h, 2, 2, 0);

  LockstepPipeline lockstep(geo, k, es, nullptr, eager_adaptive());
  lockstep.run(nullptr, nullptr);

  net::FaultInjector injector;
  net::FaultEvent ev;
  ev.kind = net::FaultEvent::Kind::kCrash;
  ev.dst = 1 + k + 3;  // the decoder node owning tile 3
  ev.at_ordinal = 25;
  injector.add_event(ev);

  core::FtOptions ft;
  ft.adaptive = eager_adaptive();
  ft.injector = &injector;
  ft.recovery = core::RecoveryPolicy::kAdopt;
  ft.protocol.heartbeat_interval_s = 0.01;
  ft.protocol.heartbeat_timeout_s = 0.25;

  // Assemble with freeze-last-frame hole filling, as the fault suite does.
  struct Slot {
    std::unique_ptr<wall::WallAssembler> assembler;
    bool degraded = false;
  };
  std::map<int, Slot> slots;
  core::ClusterPipeline pipeline(geo, k, es, ft);
  const core::ClusterStats stats = pipeline.run(
      [&](int t, const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
        // The faulted run's epochs are a deterministic prefix of the
        // fault-free lockstep run's (the partition freezes at detection,
        // it never diverges).
        ASSERT_TRUE(lockstep.partitions().has_epoch(info.epoch));
        Slot& s = slots[info.display_index];
        if (!s.assembler)
          s.assembler = std::make_unique<wall::WallAssembler>(geo);
        s.assembler->add_tile(t, tf, lockstep.partitions().geometry(info.epoch),
                              /*exact=*/!info.degraded);
        s.degraded = s.degraded || info.degraded;
      });

  ASSERT_EQ(stats.ft.recoveries.size(), 1u);
  const core::RecoveryEvent& rec = stats.ft.recoveries[0];
  EXPECT_EQ(rec.dead_tile, 3);

  const std::vector<Frame> serial = serial_decode(es);
  ASSERT_EQ(slots.size(), serial.size());
  const Frame* prev = nullptr;
  std::vector<Frame> frames;
  std::vector<bool> degraded;
  for (auto& [index, s] : slots) {
    if (!s.assembler->coverage_complete()) {
      s.assembler->fill_uncovered(prev);
      s.degraded = true;
    }
    frames.push_back(s.assembler->frame());
    degraded.push_back(s.degraded);
    prev = &frames.back();
  }
  for (size_t i = 0; i < frames.size(); ++i) {
    const Frame a = wall::crop_frame(serial[i], w, h);
    const Frame b = wall::crop_frame(frames[i], w, h);
    const bool exact = a.y == b.y && a.cb == b.cb && a.cr == b.cr;
    EXPECT_TRUE(degraded[i] || exact) << "slot " << i << " silently wrong";
    if (rec.adopter_tile >= 0 && i >= size_t(rec.resync_pic)) {
      EXPECT_TRUE(exact) << "slot " << i << " not exact after resync";
      EXPECT_FALSE(degraded[i]) << "slot " << i;
    }
  }
}

}  // namespace
}  // namespace pdw
