// Randomized equivalence fuzzing for the dispatched codec kernels.
//
// The DESIGN.md §5.1 bit-exactness invariant rests on every SIMD kernel
// being byte-identical to the scalar reference over the whole documented
// input domain. These tests hammer each table entry with random inputs
// (plus adversarial edge cases: saturation extremes, sparse blocks, odd
// strides, every hx/hy combination, every scan permutation shape) and
// compare all supported levels against kScalar.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/kernels.h"
#include "mpeg2/tables.h"

namespace pdw::kernels {
namespace {

// Deterministic PRNG (SplitMix64) so failures reproduce.
class Rng {
 public:
  explicit Rng(uint64_t seed) : s_(seed) {}
  uint64_t next() {
    uint64_t z = (s_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  // Uniform in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + int(next() % uint64_t(hi - lo + 1));
  }

 private:
  uint64_t s_;
};

std::vector<Level> simd_levels() {
  std::vector<Level> out;
  for (Level l : {Level::kSse2, Level::kAvx2})
    if (level_supported(l)) out.push_back(l);
  return out;
}

const KernelTable& scalar() { return *table_for(Level::kScalar); }

// ---------------------------------------------------------------------------
// IDCT
// ---------------------------------------------------------------------------

void fill_idct_block(Rng& rng, int16_t block[64], int shape) {
  switch (shape) {
    case 0:  // dense, dequant output range
      for (int i = 0; i < 64; ++i) block[i] = int16_t(rng.range(-2048, 2047));
      break;
    case 1:  // sparse: a few large coefficients
      std::memset(block, 0, 64 * sizeof(int16_t));
      for (int k = rng.range(1, 6); k > 0; --k)
        block[rng.range(0, 63)] = int16_t(rng.range(-2048, 2047));
      break;
    case 2:  // DC only (exercises the scalar shortcut vs the vector path)
      std::memset(block, 0, 64 * sizeof(int16_t));
      block[0] = int16_t(rng.range(-2048, 2047));
      break;
    case 3:  // full int16 range (out of spec but must still match exactly)
      for (int i = 0; i < 64; ++i) block[i] = int16_t(rng.next());
      break;
    default:  // saturation corners
      for (int i = 0; i < 64; ++i)
        block[i] = (rng.next() & 1) ? int16_t(-32768) : int16_t(32767);
      break;
  }
}

TEST(KernelFuzz, IdctMatchesScalar) {
  const auto levels = simd_levels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD levels on this host";
  Rng rng(0x1DC7'0001);
  for (int iter = 0; iter < 4000; ++iter) {
    alignas(32) int16_t input[64];
    fill_idct_block(rng, input, iter % 5);
    alignas(32) int16_t want[64];
    std::memcpy(want, input, sizeof(want));
    scalar().idct_8x8(want);
    for (Level l : levels) {
      alignas(32) int16_t got[64];
      std::memcpy(got, input, sizeof(got));
      table_for(l)->idct_8x8(got);
      ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
          << "idct mismatch at level " << level_name(l) << " iter " << iter;
    }
  }
}

// ---------------------------------------------------------------------------
// Half-pel interpolation / averaging
// ---------------------------------------------------------------------------

TEST(KernelFuzz, InterpHalfpelMatchesScalar) {
  const auto levels = simd_levels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD levels on this host";
  Rng rng(0x1DC7'0002);
  for (int iter = 0; iter < 2000; ++iter) {
    const int size = (iter & 1) ? 8 : 16;
    const int hx = (iter >> 1) & 1;
    const int hy = (iter >> 2) & 1;
    const int src_stride = size + hx + rng.range(0, 5);
    const int dst_stride = size + rng.range(0, 5);
    std::vector<uint8_t> src(size_t(src_stride) * (size + 1) + 16);
    for (auto& b : src) b = uint8_t(rng.next());
    std::vector<uint8_t> want(size_t(dst_stride) * size, 0xAA);
    std::vector<uint8_t> got = want;
    scalar().interp_halfpel(src.data(), src_stride, want.data(), dst_stride,
                            size, hx, hy);
    for (Level l : levels) {
      std::fill(got.begin(), got.end(), 0xAA);
      table_for(l)->interp_halfpel(src.data(), src_stride, got.data(),
                                   dst_stride, size, hx, hy);
      ASSERT_EQ(want, got) << "interp mismatch at level " << level_name(l)
                           << " size=" << size << " hx=" << hx << " hy=" << hy
                           << " iter " << iter;
    }
  }
}

TEST(KernelFuzz, AvgPixelsMatchesScalar) {
  const auto levels = simd_levels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD levels on this host";
  Rng rng(0x1DC7'0003);
  // Cover vector widths and every tail length, plus the real sizes
  // (16*16=256, 8*8=64).
  for (size_t n = 0; n <= 96; ++n) {
    std::vector<uint8_t> p(n), q(n);
    for (auto& b : p) b = uint8_t(rng.next());
    for (auto& b : q) b = uint8_t(rng.next());
    std::vector<uint8_t> want = p;
    scalar().avg_pixels(want.data(), q.data(), n);
    for (Level l : levels) {
      std::vector<uint8_t> got = p;
      table_for(l)->avg_pixels(got.data(), q.data(), n);
      ASSERT_EQ(want, got) << "avg mismatch at level " << level_name(l)
                           << " n=" << n;
    }
  }
  for (size_t n : {size_t(256), size_t(64)}) {
    for (int iter = 0; iter < 200; ++iter) {
      std::vector<uint8_t> p(n), q(n);
      for (auto& b : p) b = uint8_t(rng.next());
      for (auto& b : q) b = uint8_t(rng.next());
      std::vector<uint8_t> want = p;
      scalar().avg_pixels(want.data(), q.data(), n);
      for (Level l : levels) {
        std::vector<uint8_t> got = p;
        table_for(l)->avg_pixels(got.data(), q.data(), n);
        ASSERT_EQ(want, got) << "avg mismatch at level " << level_name(l);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Residual add / put
// ---------------------------------------------------------------------------

TEST(KernelFuzz, ResidualAddPutMatchesScalar) {
  const auto levels = simd_levels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD levels on this host";
  Rng rng(0x1DC7'0004);
  const int strides[] = {8, 16, 33};
  for (int iter = 0; iter < 2000; ++iter) {
    const int stride = strides[iter % 3];
    alignas(32) int16_t res[64];
    if (iter % 4 == 0) {
      // Saturation edges: residuals at the IDCT clamp bounds and beyond,
      // still inside the documented |res| <= 8192 domain.
      for (auto& v : res)
        v = int16_t(rng.range(0, 1) ? rng.range(-8192, -250)
                                    : rng.range(250, 8192));
    } else {
      for (auto& v : res) v = int16_t(rng.range(-256, 255));
    }
    std::vector<uint8_t> base(size_t(stride) * 8 + 8);
    for (auto& b : base) b = uint8_t(rng.next());

    for (bool put : {false, true}) {
      std::vector<uint8_t> want = base;
      auto op = put ? scalar().put_residual_8x8 : scalar().add_residual_8x8;
      op(res, want.data(), stride);
      for (Level l : levels) {
        std::vector<uint8_t> got = base;
        auto lop =
            put ? table_for(l)->put_residual_8x8 : table_for(l)->add_residual_8x8;
        lop(res, got.data(), stride);
        ASSERT_EQ(want, got)
            << (put ? "put" : "add") << " mismatch at level " << level_name(l)
            << " stride=" << stride << " iter " << iter;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dequantisation
// ---------------------------------------------------------------------------

TEST(KernelFuzz, DequantMatchesScalar) {
  const auto levels = simd_levels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD levels on this host";
  Rng rng(0x1DC7'0005);

  // Scan orders: both real MPEG-2 scans plus random permutations that keep
  // scan[0] == 0 (the documented contract).
  std::vector<std::array<uint8_t, 64>> scans;
  {
    std::array<uint8_t, 64> s;
    std::copy(mpeg2::scan_table(false).begin(), mpeg2::scan_table(false).end(),
              s.begin());
    scans.push_back(s);
    std::copy(mpeg2::scan_table(true).begin(), mpeg2::scan_table(true).end(),
              s.begin());
    scans.push_back(s);
    for (int k = 0; k < 3; ++k) {
      for (int i = 0; i < 64; ++i) s[i] = uint8_t(i);
      for (int i = 63; i > 1; --i)
        std::swap(s[i], s[rng.range(1, i)]);  // Fisher-Yates, fix s[0]=0
      scans.push_back(s);
    }
  }

  for (int iter = 0; iter < 2000; ++iter) {
    int16_t qfs[64];
    const bool extreme = iter % 5 == 0;
    for (auto& v : qfs) {
      if (rng.range(0, 2) == 0)
        v = 0;  // typical blocks are mostly zero
      else
        v = int16_t(extreme ? (rng.range(0, 1) ? 2047 : -2048)
                            : rng.range(-300, 300));
    }
    uint8_t w[64];
    for (auto& v : w) v = uint8_t(rng.range(1, 255));
    const int scale = rng.range(1, 112);
    const int dc_mult = std::array<int, 4>{8, 4, 2, 1}[rng.range(0, 3)];
    const auto& scan = scans[size_t(iter) % scans.size()];

    for (bool intra : {true, false}) {
      int16_t want[64], got[64];
      if (intra)
        scalar().dequant_intra(qfs, want, w, scale, dc_mult, scan.data());
      else
        scalar().dequant_non_intra(qfs, want, w, scale, scan.data());
      for (Level l : levels) {
        if (intra)
          table_for(l)->dequant_intra(qfs, got, w, scale, dc_mult, scan.data());
        else
          table_for(l)->dequant_non_intra(qfs, got, w, scale, scan.data());
        ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
            << (intra ? "intra" : "non-intra") << " dequant mismatch at level "
            << level_name(l) << " iter " << iter;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SAD
// ---------------------------------------------------------------------------

TEST(KernelFuzz, SadMatchesScalar) {
  const auto levels = simd_levels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD levels on this host";
  Rng rng(0x1DC7'0006);
  for (int iter = 0; iter < 2000; ++iter) {
    const int a_stride = 16 + rng.range(0, 17);
    const int b_stride = 17 + rng.range(0, 17);
    std::vector<uint8_t> a(size_t(a_stride) * 16 + 16);
    std::vector<uint8_t> b(size_t(b_stride) * 17 + 16);
    if (iter % 7 == 0) {
      // Identical blocks: SAD 0, must beat any positive threshold.
      for (auto& v : b) v = uint8_t(rng.next());
      for (int r = 0; r < 16; ++r)
        std::memcpy(a.data() + size_t(r) * a_stride,
                    b.data() + size_t(r) * b_stride, 16);
    } else {
      for (auto& v : a) v = uint8_t(rng.next());
      for (auto& v : b) v = uint8_t(rng.next());
    }

    // Threshold cases: unconstrained, near the true value (both sides), zero.
    const uint32_t exact =
        scalar().sad16x16(a.data(), a_stride, b.data(), b_stride, UINT32_MAX);
    const uint32_t thresholds[] = {UINT32_MAX, exact, exact + 1,
                                   exact > 0 ? exact - 1 : 0, 0};
    for (uint32_t best : thresholds) {
      const uint32_t want =
          scalar().sad16x16(a.data(), a_stride, b.data(), b_stride, best);
      for (Level l : levels) {
        const uint32_t got =
            table_for(l)->sad16x16(a.data(), a_stride, b.data(), b_stride, best);
        ASSERT_EQ(want, got) << "sad mismatch at level " << level_name(l)
                             << " best=" << best << " iter " << iter;
      }
    }

    const int hx = iter & 1, hy = (iter >> 1) & 1;
    const uint32_t want_h = scalar().sad16x16_halfpel(a.data(), a_stride,
                                                      b.data(), b_stride, hx,
                                                      hy);
    for (Level l : levels) {
      const uint32_t got_h = table_for(l)->sad16x16_halfpel(
          a.data(), a_stride, b.data(), b_stride, hx, hy);
      ASSERT_EQ(want_h, got_h)
          << "halfpel sad mismatch at level " << level_name(l) << " hx=" << hx
          << " hy=" << hy << " iter " << iter;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(KernelDispatch, TablesAreSelfConsistent) {
  for (int i = 0; i < kLevelCount; ++i) {
    const Level l = Level(i);
    const KernelTable* t = table_for(l);
    if (t == nullptr) continue;
    EXPECT_EQ(t->level, l);
    EXPECT_STREQ(t->name, level_name(l));
    EXPECT_NE(t->idct_8x8, nullptr);
    EXPECT_NE(t->interp_halfpel, nullptr);
    EXPECT_NE(t->avg_pixels, nullptr);
    EXPECT_NE(t->add_residual_8x8, nullptr);
    EXPECT_NE(t->put_residual_8x8, nullptr);
    EXPECT_NE(t->dequant_intra, nullptr);
    EXPECT_NE(t->dequant_non_intra, nullptr);
    EXPECT_NE(t->sad16x16, nullptr);
    EXPECT_NE(t->sad16x16_halfpel, nullptr);
  }
  EXPECT_NE(table_for(Level::kScalar), nullptr) << "scalar must always exist";
}

TEST(KernelDispatch, SetActiveLevelRoundTrips) {
  const Level original = active_level();
  for (int i = 0; i < kLevelCount; ++i) {
    const Level l = Level(i);
    if (!level_supported(l)) {
      EXPECT_FALSE(set_active_level(l));
      continue;
    }
    EXPECT_TRUE(set_active_level(l));
    EXPECT_EQ(active_level(), l);
    EXPECT_EQ(&active(), table_for(l));
  }
  ASSERT_TRUE(set_active_level(original));
}

TEST(KernelDispatch, BestSupportedIsSupported) {
  EXPECT_TRUE(level_supported(best_supported_level()));
}

}  // namespace
}  // namespace pdw::kernels
