// Macroblock-layer syntax decoder tests with hand-crafted bitstreams:
// predictor state machine, motion vector wrapping, skip semantics, quant
// updates, and the sub-picture run driver.
#include <gtest/gtest.h>

#include <vector>

#include "bitstream/bit_writer.h"
#include "mpeg2/mb_parser.h"
#include "mpeg2/tables.h"

namespace pdw::mpeg2 {
namespace {

using namespace mb_flags;

// Collects every macroblock the parser emits.
struct CollectSink : MbSink {
  struct Item {
    Macroblock mb;
    MbState before;
    size_t bit_begin, bit_end;
  };
  std::vector<Item> items;
  void on_macroblock(const Macroblock& mb, const MbState& before,
                     size_t bit_begin, size_t bit_end) override {
    items.push_back({mb, before, bit_begin, bit_end});
  }
};

// Bitstream builder mirroring the encoder's macroblock syntax.
class MbWriter {
 public:
  explicit MbWriter(const PictureContext& ctx) : ctx_(ctx) {
    st_.reset_dc(ctx.pce);
  }

  void increment(int inc) { encode_address_increment(w_, inc); }

  void type(uint8_t flags) { vlc_mb_type(ctx_.ph.type).encode(w_, flags); }

  void quant(int code) { w_.put(uint32_t(code), 5); }

  void mv(int s, int dx_half, int dy_half) {
    // Writes raw deltas relative to predictors, mirroring the decoder.
    const int comps[2] = {dx_half, dy_half};
    for (int t = 0; t < 2; ++t) {
      const int f_code = ctx_.pce.f_code[s][t];
      const int r_size = f_code - 1;
      const int f = 1 << r_size;
      int delta = comps[t] - st_.pmv[s][t];
      const int range = 16 * f;
      if (delta < -range) delta += 2 * range;
      if (delta >= range) delta -= 2 * range;
      if (delta == 0) {
        vlc_motion_code().encode(w_, 0);
      } else {
        const int a = std::abs(delta) - 1;
        vlc_motion_code().encode(w_, (delta < 0 ? -1 : 1) * (a / f + 1));
        if (r_size) w_.put(uint32_t(a % f), r_size);
      }
      st_.pmv[s][t] = int16_t(comps[t]);
    }
  }

  void cbp(int pattern) { vlc_coded_block_pattern().encode(w_, pattern); }

  // Minimal intra block: DC diff only.
  void intra_block(int cc, int dc_value) {
    const int diff = dc_value - dc_pred_[cc];
    dc_pred_[cc] = dc_value;
    int size = 0;
    for (int a = std::abs(diff); a; a >>= 1) ++size;
    (cc == 0 ? vlc_dct_dc_size_luma() : vlc_dct_dc_size_chroma())
        .encode(w_, size);
    if (size)
      w_.put(diff > 0 ? uint32_t(diff) : uint32_t(diff + (1 << size) - 1),
             size);
    encode_eob_b14(w_);
  }

  // Minimal inter block: one coefficient.
  void inter_block(int run, int level) {
    encode_dct_coeff_b14(w_, run, level, /*first=*/true);
    encode_eob_b14(w_);
  }

  void reset_dc() {
    dc_pred_[0] = dc_pred_[1] = dc_pred_[2] = ctx_.pce.dc_reset_value();
  }
  void reset_pmv() { st_.reset_pmv(); }

  std::vector<uint8_t> take() {
    w_.align_to_byte();
    return w_.take();
  }

 private:
  const PictureContext& ctx_;
  BitWriter w_;
  MbState st_;
  int dc_pred_[3] = {128, 128, 128};
};

class MbParserTest : public ::testing::Test {
 protected:
  MbParserTest() {
    seq_.width = 64;  // 4 macroblocks wide
    seq_.height = 32;
    ctx_.seq = &seq_;
    ctx_.pce.f_code[0][0] = ctx_.pce.f_code[0][1] = 2;
    ctx_.pce.f_code[1][0] = ctx_.pce.f_code[1][1] = 2;
  }

  PictureContext ctx_;
  SequenceHeader seq_;
};

TEST_F(MbParserTest, IntraSliceDcPrediction) {
  ctx_.ph.type = PicType::I;
  MbWriter w(ctx_);
  // Two intra macroblocks; DC values 200 then 50 for all components.
  for (int dc : {200, 50}) {
    w.increment(1);
    w.type(kIntra);
    for (int b = 0; b < 6; ++b) w.intra_block(b < 4 ? 0 : b - 3, dc);
  }
  const auto bytes = w.take();

  MbSyntaxDecoder dec(ctx_, ParseMode::kFull);
  CollectSink sink;
  BitReader r(bytes);
  dec.parse_slice_body(r, 0, 10, sink);

  ASSERT_EQ(sink.items.size(), 2u);
  EXPECT_EQ(sink.items[0].mb.addr, 0);
  EXPECT_EQ(sink.items[1].mb.addr, 1);
  EXPECT_TRUE(sink.items[0].mb.intra());
  // DC predictor state before MB 0 is the reset value; before MB 1 it is
  // the previous MB's DC.
  EXPECT_EQ(sink.items[0].before.dc_pred[0], 128);
  EXPECT_EQ(sink.items[1].before.dc_pred[0], 200);
  // Dequantised DC (precision 8 => multiplier 8).
  EXPECT_EQ(sink.items[0].mb.coeff[0][0], 200 * 8);
  EXPECT_EQ(sink.items[1].mb.coeff[0][0], 50 * 8);
}

TEST_F(MbParserTest, PSliceSkippedMacroblocks) {
  ctx_.ph.type = PicType::P;
  MbWriter w(ctx_);
  // MB0 coded with a motion vector, MBs 1-2 skipped, MB3 coded. Vectors are
  // chosen so every referenced window stays inside the 64x32 picture (the
  // parser rejects out-of-picture prediction as bitstream damage).
  w.increment(1);
  w.type(kMotionForward);
  w.mv(0, 5, 3);
  w.increment(3);  // skip two
  w.reset_pmv();   // decoder resets PMV across P-skips; mirror it
  w.type(kMotionForward);
  w.mv(0, -2, 2);
  const auto bytes = w.take();

  MbSyntaxDecoder dec(ctx_, ParseMode::kFull);
  CollectSink sink;
  BitReader r(bytes);
  dec.parse_slice_body(r, 0, 8, sink);

  ASSERT_EQ(sink.items.size(), 4u);
  EXPECT_FALSE(sink.items[0].mb.skipped);
  EXPECT_EQ(sink.items[0].mb.mv[0][0], 5);
  EXPECT_EQ(sink.items[0].mb.mv[0][1], 3);
  // The two skipped macroblocks use zero vectors.
  for (int i : {1, 2}) {
    EXPECT_TRUE(sink.items[size_t(i)].mb.skipped);
    EXPECT_EQ(sink.items[size_t(i)].mb.addr, i);
    EXPECT_EQ(sink.items[size_t(i)].mb.mv[0][0], 0);
    EXPECT_TRUE(sink.items[size_t(i)].mb.has_fwd());
  }
  // P-skip resets PMV, so MB3's vector decodes against (0,0).
  EXPECT_EQ(sink.items[3].mb.mv[0][0], -2);
  EXPECT_EQ(sink.items[3].before.pmv[0][0], 0);
}

TEST_F(MbParserTest, BSkipRepeatsPreviousPrediction) {
  ctx_.ph.type = PicType::B;
  MbWriter w(ctx_);
  w.increment(1);
  w.type(kMotionForward | kMotionBackward);
  w.mv(0, 4, 0);
  w.mv(1, 6, 0);
  w.increment(2);  // one skipped in between
  w.type(kMotionForward | kMotionBackward);
  w.mv(0, 4, 0);   // same vectors (delta 0) so the skip is representative
  w.mv(1, 6, 0);
  const auto bytes = w.take();

  MbSyntaxDecoder dec(ctx_, ParseMode::kFull);
  CollectSink sink;
  BitReader r(bytes);
  dec.parse_slice_body(r, 1, 8, sink);

  ASSERT_EQ(sink.items.size(), 3u);
  const auto& skip = sink.items[1];
  EXPECT_TRUE(skip.mb.skipped);
  EXPECT_EQ(skip.mb.addr, 4 + 1);  // row 1 of a 4-wide picture
  EXPECT_TRUE(skip.mb.has_fwd());
  EXPECT_TRUE(skip.mb.has_bwd());
  EXPECT_EQ(skip.mb.mv[0][0], 4);
  EXPECT_EQ(skip.mb.mv[1][0], 6);
}

TEST_F(MbParserTest, QuantUpdatePropagates) {
  ctx_.ph.type = PicType::I;
  MbWriter w(ctx_);
  w.increment(1);
  w.type(kIntra | kQuant);
  w.quant(25);
  for (int b = 0; b < 6; ++b) w.intra_block(b < 4 ? 0 : b - 3, 100);
  w.increment(1);
  w.type(kIntra);
  for (int b = 0; b < 6; ++b) w.intra_block(b < 4 ? 0 : b - 3, 100);
  const auto bytes = w.take();

  MbSyntaxDecoder dec(ctx_, ParseMode::kFull);
  CollectSink sink;
  BitReader r(bytes);
  dec.parse_slice_body(r, 0, 3, sink);
  ASSERT_EQ(sink.items.size(), 2u);
  EXPECT_EQ(sink.items[0].before.quant_scale_code, 3);  // slice header value
  EXPECT_EQ(sink.items[0].mb.quant_scale_code, 25);     // after kQuant
  EXPECT_EQ(sink.items[1].mb.quant_scale_code, 25);     // persists
}

TEST_F(MbParserTest, MotionVectorWrapAround) {
  // f_code 2 => range [-32, 31] half-pel. pred 30 + delta 10 wraps to -24.
  ctx_.ph.type = PicType::P;
  ctx_.pce.f_code[0][0] = ctx_.pce.f_code[0][1] = 2;
  MbWriter w(ctx_);
  w.increment(1);
  w.type(kMotionForward);
  w.mv(0, 30, 0);
  w.increment(1);
  w.type(kMotionForward);
  w.mv(0, -24, 0);  // delta = -54 -> wrapped +10 on the wire
  const auto bytes = w.take();

  MbSyntaxDecoder dec(ctx_, ParseMode::kFull);
  CollectSink sink;
  BitReader r(bytes);
  dec.parse_slice_body(r, 0, 8, sink);
  ASSERT_EQ(sink.items.size(), 2u);
  EXPECT_EQ(sink.items[0].mb.mv[0][0], 30);
  EXPECT_EQ(sink.items[1].mb.mv[0][0], -24);
}

TEST_F(MbParserTest, NoMcMacroblockResetsPmv) {
  ctx_.ph.type = PicType::P;
  MbWriter w(ctx_);
  w.increment(1);
  w.type(kMotionForward);
  w.mv(0, 10, 10);
  // "No MC, coded": pattern-only type resets predictors and uses mv 0.
  w.increment(1);
  w.type(kPattern);
  w.cbp(32);
  w.inter_block(0, 3);
  w.reset_pmv();
  w.increment(1);
  w.type(kMotionForward);
  w.mv(0, 2, 2);  // decodes against reset predictors
  const auto bytes = w.take();

  MbSyntaxDecoder dec(ctx_, ParseMode::kFull);
  CollectSink sink;
  BitReader r(bytes);
  dec.parse_slice_body(r, 0, 8, sink);
  ASSERT_EQ(sink.items.size(), 3u);
  EXPECT_EQ(sink.items[1].mb.mv[0][0], 0);
  EXPECT_EQ(sink.items[1].mb.cbp, 32);
  EXPECT_EQ(sink.items[2].before.pmv[0][0], 0);
  EXPECT_EQ(sink.items[2].mb.mv[0][0], 2);
}

TEST_F(MbParserTest, ScanModeTracksStateWithoutCoefficients) {
  ctx_.ph.type = PicType::I;
  MbWriter w(ctx_);
  w.increment(1);
  w.type(kIntra);
  for (int b = 0; b < 6; ++b) w.intra_block(b < 4 ? 0 : b - 3, 99);
  const auto bytes = w.take();

  MbSyntaxDecoder full(ctx_, ParseMode::kFull);
  MbSyntaxDecoder scan(ctx_, ParseMode::kScan);
  CollectSink fs, ss;
  BitReader r1(bytes), r2(bytes);
  full.parse_slice_body(r1, 0, 5, fs);
  scan.parse_slice_body(r2, 0, 5, ss);
  ASSERT_EQ(fs.items.size(), 1u);
  ASSERT_EQ(ss.items.size(), 1u);
  // Identical state tracking and bit ranges...
  EXPECT_EQ(full.state(), scan.state());
  EXPECT_EQ(fs.items[0].bit_begin, ss.items[0].bit_begin);
  EXPECT_EQ(fs.items[0].bit_end, ss.items[0].bit_end);
  // ...but scan mode does not reconstruct coefficients.
  EXPECT_EQ(fs.items[0].mb.coeff[0][0], 99 * 8);
}

TEST_F(MbParserTest, RunDriverForcesFirstAddress) {
  ctx_.ph.type = PicType::P;
  MbWriter w(ctx_);
  // Written as if mid-slice: increment of 2 whose meaning the run ignores.
  w.increment(2);
  w.type(kMotionForward);
  w.mv(0, -3, -1);
  const auto bytes = w.take();

  MbSyntaxDecoder dec(ctx_, ParseMode::kFull);
  MbState st;
  st.reset_dc(ctx_.pce);
  st.quant_scale_code = 9;
  dec.load_state(st);
  CollectSink sink;
  BitReader r(bytes);
  EXPECT_TRUE(dec.parse_run(r, /*first_addr=*/7, /*num_coded=*/1, sink).ok());
  ASSERT_EQ(sink.items.size(), 1u);
  EXPECT_EQ(sink.items[0].mb.addr, 7);  // forced, increment ignored
  EXPECT_EQ(sink.items[0].mb.mv[0][0], -3);
}

TEST_F(MbParserTest, RunDriverSynthesizesInteriorSkips) {
  ctx_.ph.type = PicType::P;
  MbWriter w(ctx_);
  w.increment(1);
  w.type(kMotionForward);
  w.mv(0, 0, 0);
  w.increment(3);  // two interior skips
  w.reset_pmv();
  w.type(kMotionForward);
  w.mv(0, -2, 0);
  const auto bytes = w.take();

  MbSyntaxDecoder dec(ctx_, ParseMode::kFull);
  MbState st;
  st.reset_dc(ctx_.pce);
  dec.load_state(st);
  CollectSink sink;
  BitReader r(bytes);
  EXPECT_TRUE(dec.parse_run(r, 4, 2, sink).ok());
  ASSERT_EQ(sink.items.size(), 4u);
  EXPECT_EQ(sink.items[0].mb.addr, 4);
  EXPECT_TRUE(sink.items[1].mb.skipped);
  EXPECT_EQ(sink.items[1].mb.addr, 5);
  EXPECT_TRUE(sink.items[2].mb.skipped);
  EXPECT_EQ(sink.items[2].mb.addr, 6);
  EXPECT_EQ(sink.items[3].mb.addr, 7);
}

TEST_F(MbParserTest, SynthesizeSkippedStandalone) {
  ctx_.ph.type = PicType::B;
  MbSyntaxDecoder dec(ctx_, ParseMode::kFull);
  MbState st;
  st.reset_dc(ctx_.pce);
  st.prev_motion_flags = kMotionForward;
  st.pmv[0][0] = 11;
  st.pmv[0][1] = -7;
  dec.load_state(st);
  CollectSink sink;
  EXPECT_TRUE(dec.synthesize_skipped(4, 3, sink));
  ASSERT_EQ(sink.items.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(sink.items[size_t(i)].mb.skipped);
    EXPECT_EQ(sink.items[size_t(i)].mb.addr, 4 + i);
    EXPECT_EQ(sink.items[size_t(i)].mb.mv[0][0], 11);
    EXPECT_EQ(sink.items[size_t(i)].mb.mv[0][1], -7);
    EXPECT_FALSE(sink.items[size_t(i)].mb.has_bwd());
  }
}

TEST_F(MbParserTest, BitRangesAreContiguousAndExact) {
  ctx_.ph.type = PicType::I;
  MbWriter w(ctx_);
  for (int i = 0; i < 3; ++i) {
    w.increment(1);
    w.type(kIntra);
    for (int b = 0; b < 6; ++b) w.intra_block(b < 4 ? 0 : b - 3, 100 + i);
  }
  const auto bytes = w.take();
  MbSyntaxDecoder dec(ctx_, ParseMode::kScan);
  CollectSink sink;
  BitReader r(bytes);
  dec.parse_slice_body(r, 0, 4, sink);
  ASSERT_EQ(sink.items.size(), 3u);
  EXPECT_EQ(sink.items[0].bit_begin, 0u);
  for (size_t i = 1; i < 3; ++i)
    EXPECT_EQ(sink.items[i].bit_begin, sink.items[i - 1].bit_end);
}

}  // namespace
}  // namespace pdw::mpeg2
