// Baseline (Table 1) model tests: measured quantities are sane and the
// qualitative ordering the paper argues for holds on real streams.
#include <gtest/gtest.h>

#include "baseline/levels.h"
#include "enc/encoder.h"
#include "video/generator.h"

namespace pdw::baseline {
namespace {

std::vector<uint8_t> make_stream(int w, int h, int frames) {
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 6;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.35;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, w, h, 23);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
}

class BaselineTest : public ::testing::Test {
 protected:
  // Shared across tests: 640x480 is large enough that per-tile decode time
  // is robustly below a full-picture decode despite measurement overhead.
  static const std::vector<uint8_t>& es() {
    static const std::vector<uint8_t> s = make_stream(640, 480, 12);
    return s;
  }
  BaselineTest() : es_(es()), geo_(640, 480, 2, 2, 0) {}
  const std::vector<uint8_t>& es_;
  wall::TileGeometry geo_;
};

TEST_F(BaselineTest, MeasurementsAreSane) {
  const auto m = measure_stream(es_, geo_);
  EXPECT_EQ(m.pictures, 12);
  EXPECT_EQ(m.gops, 2);
  EXPECT_EQ(m.ip_pictures, 6);  // 2 GOPs x (1 I + 2 P)
  EXPECT_GT(m.t_full_decode, 0.0);
  EXPECT_GT(m.t_mb_split, m.t_scan * 5)
      << "macroblock splitting must dwarf start-code scanning";
  EXPECT_GT(m.t_full_decode, m.t_tile_decode)
      << "a tile decodes faster than the whole picture";
  EXPECT_NEAR(m.frame_pixel_bytes, 1.5 * 640 * 480, 1.0);
  EXPECT_GT(m.avg_picture_bytes, 500.0);
}

TEST_F(BaselineTest, TableOneOrderingHolds) {
  const auto reports = compare_levels(es_, geo_, sim::LinkModel{});
  ASSERT_EQ(reports.size(), 6u);

  auto find = [&](ParallelLevel l) -> const LevelReport& {
    for (const auto& r : reports)
      if (r.level == l) return r;
    ADD_FAILURE();
    return reports[0];
  };
  const auto& seq = find(ParallelLevel::kSequence);
  const auto& gop = find(ParallelLevel::kGop);
  const auto& pic = find(ParallelLevel::kPicture);
  const auto& slice = find(ParallelLevel::kSlice);
  const auto& mb = find(ParallelLevel::kMacroblock);
  const auto& hier = find(ParallelLevel::kHierarchical);

  // Splitting cost: coarse levels are all scan-cheap; macroblock level pays
  // the full parse (paper: "very low" vs "high or moderate").
  EXPECT_GT(mb.split_s_per_picture, 5 * seq.split_s_per_picture);
  EXPECT_EQ(seq.split_s_per_picture, gop.split_s_per_picture);

  // Inter-decoder communication: none (sequence/GOP) < macroblock <= slice
  // < picture (paper's "none / none or low / very high / moderate / low").
  EXPECT_EQ(seq.interdecoder_bytes, 0.0);
  EXPECT_EQ(gop.interdecoder_bytes, 0.0);
  EXPECT_GT(pic.interdecoder_bytes, slice.interdecoder_bytes);
  EXPECT_GT(slice.interdecoder_bytes, 0.0);
  EXPECT_GT(pic.interdecoder_bytes, 4 * mb.interdecoder_bytes);

  // Pixel redistribution: very high for coarse levels, zero for macroblock.
  EXPECT_NEAR(seq.redistribution_bytes, 1.5 * 640 * 480 * 3 / 4.0, 1.0);
  EXPECT_EQ(mb.redistribution_bytes, 0.0);
  EXPECT_EQ(hier.redistribution_bytes, 0.0);
  EXPECT_LT(slice.redistribution_bytes, seq.redistribution_bytes);

  // The hierarchy is at least as fast as the one-level macroblock system.
  EXPECT_GE(hier.fps, mb.fps * 0.999);
  EXPECT_GE(hier.k, 1);
}

TEST_F(BaselineTest, SequenceLevelHasNoParallelism) {
  const auto reports = compare_levels(es_, geo_, sim::LinkModel{});
  const auto& seq = reports[0];
  const auto m = measure_stream(es_, geo_);
  // fps bounded by one full decode + full-frame redistribution per picture.
  EXPECT_LE(seq.fps, 1.0 / m.t_full_decode + 1.0);
}

TEST(BaselineLevelNames, AllDistinct) {
  std::set<std::string> names;
  for (ParallelLevel l :
       {ParallelLevel::kSequence, ParallelLevel::kGop, ParallelLevel::kPicture,
        ParallelLevel::kSlice, ParallelLevel::kMacroblock,
        ParallelLevel::kHierarchical})
    names.insert(level_name(l));
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace pdw::baseline
