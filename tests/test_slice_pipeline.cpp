// Executable slice-level baseline tests: bit-exactness and the Table-1
// communication profile (redistribution >> 0, unlike the macroblock system).
#include <gtest/gtest.h>

#include <map>

#include "baseline/slice_pipeline.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "video/generator.h"
#include "wall/assembler.h"

namespace pdw::baseline {
namespace {

using mpeg2::Frame;

std::vector<uint8_t> make_stream(int w, int h, int frames) {
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 6;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.4;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, w, h, 61);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, Frame* f) { gen->render(i, f); });
}

TEST(SlicePipeline, BitExactAgainstSerial) {
  const int w = 320, h = 256;
  const auto es = make_stream(w, h, 8);
  wall::TileGeometry display(w, h, 2, 2, 16);

  std::vector<Frame> serial;
  mpeg2::Mpeg2Decoder dec;
  dec.decode(es, [&](const Frame& f, const mpeg2::DecodedPictureInfo&) {
    serial.push_back(f);
  });

  SlicePipeline pipeline(display, es);
  struct Pending {
    std::unique_ptr<wall::WallAssembler> assembler;
    int tiles = 0;
  };
  std::map<int, Pending> pending;
  int verified = 0;
  const auto stats = pipeline.run([&](int tile, const mpeg2::TileFrame& tf,
                                      const core::TileDisplayInfo& info) {
    Pending& p = pending[info.display_index];
    if (!p.assembler)
      p.assembler = std::make_unique<wall::WallAssembler>(display);
    p.assembler->add_tile(tile, tf);
    if (++p.tiles == display.tiles()) {
      p.assembler->check_coverage();
      const Frame a = wall::crop_frame(serial[size_t(info.display_index)], w, h);
      const Frame b = wall::crop_frame(p.assembler->frame(), w, h);
      ASSERT_EQ(a.y, b.y);
      ASSERT_EQ(a.cb, b.cb);
      ASSERT_EQ(a.cr, b.cr);
      ++verified;
      pending.erase(info.display_index);
    }
  });
  EXPECT_EQ(verified, 8);
  EXPECT_EQ(stats.pictures, 8);
}

TEST(SlicePipeline, RedistributionDominatesItsCommunication) {
  const int w = 320, h = 256;
  const auto es = make_stream(w, h, 6);
  wall::TileGeometry display(w, h, 2, 2, 0);
  SlicePipeline pipeline(display, es);
  const auto stats = pipeline.run(nullptr);

  // Each band keeps only its intersection with its own tile: with a 2x2
  // wall and horizontal quarter-bands, a band overlaps its tile for half
  // its height at half the width => kept fraction 1/4 of ... compute:
  // kept = sum over bands of |band ∩ tile_b| = 4 * (w/2 * h/4 * 1/2)?
  // Just assert the structural facts:
  EXPECT_GE(stats.redistribution_bytes_per_picture, 0.5 * 1.5 * w * h);
  EXPECT_LE(stats.kept_fraction, 0.5);
  EXPECT_GT(stats.kept_fraction, 0.0);
  // The macroblock-level system ships zero decoded pixels — that contrast
  // is Table 1's headline. Reference exchange exists but is far smaller.
  EXPECT_LT(stats.reference_exchange_bytes_per_picture,
            stats.redistribution_bytes_per_picture);
}

TEST(SlicePipeline, SingleTileWallHasNoRedistribution) {
  const int w = 192, h = 160;
  const auto es = make_stream(w, h, 4);
  wall::TileGeometry display(w, h, 1, 1, 0);
  SlicePipeline pipeline(display, es);
  const auto stats = pipeline.run(nullptr);
  EXPECT_EQ(stats.redistribution_bytes_per_picture, 0.0);
  EXPECT_DOUBLE_EQ(stats.kept_fraction, 1.0);
}

TEST(SlicePipeline, RejectsTooManyBands) {
  const auto es = make_stream(192, 160, 2);  // 10 macroblock rows
  wall::TileGeometry display(192, 160, 4, 3, 0);  // 12 bands > 10 rows
  EXPECT_THROW(SlicePipeline(display, es), CheckError);
}

}  // namespace
}  // namespace pdw::baseline
