// Encoder extension tests: open GOPs, scene-cut detection, reference
// schedules, rate-control behaviour over long runs.
#include <gtest/gtest.h>

#include "bitstream/start_code.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "mpeg2/headers.h"
#include "video/generator.h"

namespace pdw::enc {
namespace {

using mpeg2::Frame;

struct StreamShape {
  std::vector<mpeg2::PicType> coded_types;
  std::vector<int> temporal_refs;
  std::vector<bool> closed_flags;  // one per GOP header
  int gops = 0;
};

StreamShape analyze(const std::vector<uint8_t>& es) {
  StreamShape shape;
  mpeg2::SequenceHeader seq;
  bool have_seq = false;
  for (const PictureSpan& ps : scan_pictures(es)) {
    const auto span =
        std::span<const uint8_t>(es).subspan(ps.begin, ps.end - ps.begin);
    // GOP closed flag needs a direct parse.
    if (ps.has_gop_header) {
      ++shape.gops;
      size_t pos = 0;
      while (true) {
        const StartCodeHit hit = find_start_code(span, pos);
        if (hit.code == start_code::kGroup) {
          BitReader r(span.subspan(hit.offset + 4));
          mpeg2::GopHeader gop;
          PDW_CHECK(mpeg2::parse_gop_header(r, &gop).ok());
          shape.closed_flags.push_back(gop.closed_gop);
          break;
        }
        pos = hit.offset + 4;
      }
    }
    mpeg2::ParsedPictureHeaders headers;
    PDW_CHECK(mpeg2::parse_picture_headers(span, &seq, &have_seq, &headers).ok());
    shape.coded_types.push_back(headers.ph.type);
    shape.temporal_refs.push_back(headers.ph.temporal_reference);
  }
  return shape;
}

std::vector<uint8_t> encode_scene(const EncoderConfig& cfg, int frames,
                                  const video::SceneGenerator& gen,
                                  EncodeStats* stats = nullptr) {
  Mpeg2Encoder encoder(cfg);
  return encoder.encode(
      frames, [&](int i, Frame* f) { gen.render(i, f); }, stats);
}

int count_decoded_in_order(const std::vector<uint8_t>& es,
                           const video::SceneGenerator& gen,
                           const EncoderConfig& cfg, double* min_psnr) {
  mpeg2::Mpeg2Decoder dec;
  Frame expected(cfg.width, cfg.height);
  int n = 0;
  *min_psnr = 1e9;
  dec.decode(es, [&](const Frame& f, const mpeg2::DecodedPictureInfo& info) {
    EXPECT_EQ(info.display_index, n);
    gen.render(info.display_index, &expected);
    *min_psnr = std::min(*min_psnr, mpeg2::psnr(f.y, expected.y));
    ++n;
  });
  return n;
}

EncoderConfig small_config() {
  EncoderConfig cfg;
  cfg.width = 192;
  cfg.height = 160;
  cfg.gop_size = 6;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.5;
  return cfg;
}

TEST(OpenGop, LeadingBPicturesCrossGopBoundary) {
  EncoderConfig cfg = small_config();
  cfg.closed_gops = false;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, 192, 160, 3);
  const auto es = encode_scene(cfg, 14, *gen);
  const auto shape = analyze(es);

  // Open GOPs: I pictures appear mid-cadence and the GOP after the first is
  // marked open (closed_gop = 0) with B pictures coded right after the I.
  ASSERT_GE(shape.gops, 2);
  EXPECT_TRUE(shape.closed_flags[0]);
  EXPECT_FALSE(shape.closed_flags[1]);
  bool b_follows_second_i = false;
  int i_seen = 0;
  for (size_t i = 0; i + 1 < shape.coded_types.size(); ++i) {
    if (shape.coded_types[i] == mpeg2::PicType::I && ++i_seen == 2)
      b_follows_second_i = shape.coded_types[i + 1] == mpeg2::PicType::B;
  }
  EXPECT_TRUE(b_follows_second_i)
      << "open GOP must code leading B pictures after the I";
}

TEST(OpenGop, DecodesInDisplayOrderWithGoodQuality) {
  EncoderConfig cfg = small_config();
  cfg.closed_gops = false;
  const auto gen =
      video::make_scene(video::SceneKind::kPanningTexture, 192, 160, 4);
  const auto es = encode_scene(cfg, 16, *gen);
  double min_psnr = 0;
  EXPECT_EQ(count_decoded_in_order(es, *gen, cfg, &min_psnr), 16);
  EXPECT_GT(min_psnr, 24.0);
}

TEST(OpenGop, UsesFewerIPicturesThanClosedAtSameGopSize) {
  // With gop_size not a multiple of the cadence, closed GOPs truncate the
  // last interval; open GOPs keep every interval at full length, so the
  // stream carries at least as many B pictures.
  EncoderConfig closed = small_config();
  closed.gop_size = 7;
  EncoderConfig open = closed;
  open.closed_gops = false;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, 192, 160, 5);
  const auto sc = analyze(encode_scene(closed, 21, *gen));
  const auto so = analyze(encode_scene(open, 21, *gen));
  auto count = [](const StreamShape& s, mpeg2::PicType t) {
    int n = 0;
    for (auto x : s.coded_types) n += x == t;
    return n;
  };
  EXPECT_GE(count(so, mpeg2::PicType::B), count(sc, mpeg2::PicType::B));
  EXPECT_EQ(count(sc, mpeg2::PicType::I), sc.gops);
  EXPECT_EQ(count(so, mpeg2::PicType::I), so.gops);
}

// A scene wrapper that switches content abruptly at a given frame.
class CutScene final : public video::SceneGenerator {
 public:
  CutScene(int w, int h, int cut_frame)
      : cut_(cut_frame),
        before_(video::make_scene(video::SceneKind::kMovingObjects, w, h, 1)),
        after_(video::make_scene(video::SceneKind::kAnimation, w, h, 2)) {}
  void render(int frame_index, Frame* out) const override {
    if (frame_index < cut_)
      before_->render(frame_index, out);
    else
      after_->render(frame_index, out);
  }

 private:
  int cut_;
  std::unique_ptr<video::SceneGenerator> before_, after_;
};

TEST(SceneCut, PromotesPToIAtTheCut) {
  EncoderConfig cfg = small_config();
  cfg.gop_size = 12;
  cfg.scene_cut_threshold = 20.0;
  const CutScene scene(192, 160, 7);
  EncodeStats stats;
  const auto es = encode_scene(cfg, 12, scene, &stats);
  EXPECT_GE(stats.scene_cuts, 1);
  // The shape shows a mid-GOP I (more I pictures than GOP headers).
  const auto shape = analyze(es);
  int i_count = 0;
  for (auto t : shape.coded_types) i_count += t == mpeg2::PicType::I;
  EXPECT_GT(i_count, shape.gops);
  // And the stream still decodes cleanly in order.
  double min_psnr = 0;
  mpeg2::Mpeg2Decoder dec;
  int n = 0;
  Frame expected(cfg.width, cfg.height);
  dec.decode(es, [&](const Frame& f, const mpeg2::DecodedPictureInfo& info) {
    scene.render(info.display_index, &expected);
    min_psnr = std::min(min_psnr == 0 ? 1e9 : min_psnr,
                        mpeg2::psnr(f.y, expected.y));
    ++n;
  });
  EXPECT_EQ(n, 12);
  EXPECT_GT(min_psnr, 20.0);
}

TEST(SceneCut, DisabledByDefault) {
  EncoderConfig cfg = small_config();
  cfg.gop_size = 12;
  const CutScene scene(192, 160, 7);
  EncodeStats stats;
  encode_scene(cfg, 12, scene, &stats);
  EXPECT_EQ(stats.scene_cuts, 0);
  EXPECT_EQ(stats.i_pictures, 1);
}

TEST(SceneCut, QuietContentTriggersNothing) {
  EncoderConfig cfg = small_config();
  cfg.scene_cut_threshold = 20.0;
  const auto gen =
      video::make_scene(video::SceneKind::kPanningTexture, 192, 160, 8);
  EncodeStats stats;
  encode_scene(cfg, 12, *gen, &stats);
  EXPECT_EQ(stats.scene_cuts, 0);
}

TEST(Schedules, TemporalReferencesCoverEveryDisplaySlot) {
  // For both GOP modes, the set {gop_base + temporal_reference} must be a
  // permutation of 0..N-1 (every frame displayed exactly once).
  for (bool closed : {true, false}) {
    EncoderConfig cfg = small_config();
    cfg.closed_gops = closed;
    const auto gen =
        video::make_scene(video::SceneKind::kMovingObjects, 192, 160, 9);
    const auto es = encode_scene(cfg, 17, *gen);
    double min_psnr = 0;
    EXPECT_EQ(count_decoded_in_order(es, *gen, cfg, &min_psnr), 17)
        << (closed ? "closed" : "open");
  }
}

TEST(RateControl, LongRunStaysNearTarget) {
  EncoderConfig cfg = small_config();
  cfg.width = 320;
  cfg.height = 240;
  cfg.target_bpp = 0.3;
  cfg.gop_size = 12;
  const auto gen =
      video::make_scene(video::SceneKind::kMovingObjects, 320, 240, 10);
  EncodeStats stats;
  encode_scene(cfg, 48, *gen, &stats);
  // Steady-state (second half) within 25% of target.
  size_t tail = 0;
  for (size_t i = stats.picture_bytes.size() / 2;
       i < stats.picture_bytes.size(); ++i)
    tail += stats.picture_bytes[i];
  const double bpp =
      double(tail) * 8.0 /
      (double(stats.picture_bytes.size() / 2) * 320 * 240);
  EXPECT_NEAR(bpp, 0.3, 0.075);
}

}  // namespace
}  // namespace pdw::enc
