// Randomized end-to-end property sweep: for randomly drawn encoder
// configurations, scene kinds, wall geometries and splitter counts, the
// hierarchical parallel decode must remain bit-exact with the serial decode.
// This is the adversarial counterpart to the hand-picked configurations in
// test_parallel_equivalence.cpp.
#include <gtest/gtest.h>

#include <map>

#include "common/stats.h"
#include "common/text_table.h"
#include "core/lockstep.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "video/generator.h"
#include "wall/assembler.h"

namespace pdw {
namespace {

using mpeg2::Frame;

struct DrawnCase {
  enc::EncoderConfig cfg;
  video::SceneKind scene;
  uint64_t scene_seed;
  int frames;
  int m, n, k, overlap;

  std::string describe() const {
    return format(
        "%dx%d %s gop=%d b=%d bpp=%.2f me=%d q%d alt%d skip%d aq%d "
        "closed%d -> 1-%d-(%d,%d) ov=%d frames=%d",
        cfg.width, cfg.height, video::scene_kind_name(scene), cfg.gop_size,
        cfg.b_frames, cfg.target_bpp, cfg.me_range, int(cfg.q_scale_type),
        int(cfg.alternate_scan), int(cfg.allow_skip), int(cfg.adaptive_quant),
        int(cfg.closed_gops), k, m, n, overlap, frames);
  }
};

DrawnCase draw_case(uint64_t seed) {
  SplitMix64 rng(seed * 0x9E3779B97F4A7C15ull + 1);
  DrawnCase c;
  // Dimensions: 4..20 macroblocks each axis.
  c.cfg.width = 16 * int(4 + rng.next_below(17));
  c.cfg.height = 16 * int(4 + rng.next_below(13));
  c.cfg.gop_size = 1 + int(rng.next_below(10));
  c.cfg.b_frames = int(rng.next_below(4));
  c.cfg.target_bpp = 0.1 + rng.next_double() * 0.7;
  c.cfg.me_range = 3 + int(rng.next_below(28));
  c.cfg.q_scale_type = rng.next_below(2);
  c.cfg.alternate_scan = rng.next_below(2);
  c.cfg.allow_skip = rng.next_below(4) != 0;
  c.cfg.adaptive_quant = rng.next_below(2);
  c.cfg.closed_gops = rng.next_below(2);
  c.cfg.intra_dc_precision = int(rng.next_below(3));
  c.scene = video::SceneKind(rng.next_below(4));
  c.scene_seed = rng.next();
  c.frames = 4 + int(rng.next_below(8));
  // Geometry: keep tiles at least 2 macroblocks wide/tall.
  c.m = 1 + int(rng.next_below(4));
  while (c.cfg.width / c.m < 48) c.m = std::max(1, c.m - 1);
  c.n = 1 + int(rng.next_below(4));
  while (c.cfg.height / c.n < 48) c.n = std::max(1, c.n - 1);
  const int max_overlap =
      std::max(0, std::min(c.cfg.width / c.m, c.cfg.height / c.n) - 17);
  c.overlap = int(rng.next_below(uint32_t(std::min(40, max_overlap) + 1)));
  c.k = 1 + int(rng.next_below(4));
  return c;
}

class FuzzEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEquivalence, ParallelMatchesSerial) {
  const DrawnCase c = draw_case(uint64_t(GetParam()));
  SCOPED_TRACE(c.describe());

  const auto gen = video::make_scene(c.scene, c.cfg.width, c.cfg.height,
                                     c.scene_seed);
  enc::Mpeg2Encoder encoder(c.cfg);
  const auto es = encoder.encode(
      c.frames, [&](int i, Frame* f) { gen->render(i, f); });

  // Serial reference.
  std::vector<Frame> serial;
  {
    mpeg2::Mpeg2Decoder dec;
    dec.decode(es, [&](const Frame& f, const mpeg2::DecodedPictureInfo&) {
      serial.push_back(f);
    });
  }

  // Parallel (lockstep), assembled per display index.
  wall::TileGeometry geo(c.cfg.width, c.cfg.height, c.m, c.n, c.overlap);
  core::LockstepPipeline pipeline(geo, c.k, es);
  struct Pending {
    std::unique_ptr<wall::WallAssembler> assembler;
    int tiles = 0;
  };
  std::map<int, Pending> pending;
  int verified = 0;
  pipeline.run(
      [&](int tile, const mpeg2::TileFrame& tf,
          const core::TileDisplayInfo& info) {
        Pending& p = pending[info.display_index];
        if (!p.assembler)
          p.assembler = std::make_unique<wall::WallAssembler>(geo);
        p.assembler->add_tile(tile, tf);
        if (++p.tiles == geo.tiles()) {
          p.assembler->check_coverage();
          ASSERT_LT(size_t(info.display_index), serial.size());
          const Frame a = wall::crop_frame(serial[size_t(info.display_index)],
                                           c.cfg.width, c.cfg.height);
          const Frame b = wall::crop_frame(p.assembler->frame(), c.cfg.width,
                                           c.cfg.height);
          ASSERT_EQ(a.y, b.y) << "frame " << info.display_index;
          ASSERT_EQ(a.cb, b.cb);
          ASSERT_EQ(a.cr, b.cr);
          ++verified;
          pending.erase(info.display_index);
        }
      },
      nullptr);
  EXPECT_EQ(verified, c.frames);
  EXPECT_TRUE(pending.empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzEquivalence, ::testing::Range(0, 24));

}  // namespace
}  // namespace pdw
