// Motion compensation tests: half-sample interpolation arithmetic,
// bidirectional averaging, chroma vector derivation, source windows, and
// encoder-side motion estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "enc/motion_est.h"
#include "mpeg2/motion.h"

namespace pdw::mpeg2 {
namespace {

using namespace mb_flags;

Frame gradient_frame(int w, int h) {
  Frame f(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) f.y.set(x, y, uint8_t((x * 3 + y * 5) & 0xFF));
  for (int y = 0; y < h / 2; ++y)
    for (int x = 0; x < w / 2; ++x) {
      f.cb.set(x, y, uint8_t((x + 2 * y) & 0xFF));
      f.cr.set(x, y, uint8_t((2 * x + y) & 0xFF));
    }
  return f;
}

TEST(MotionCompensate, FullPelIsACopy) {
  const Frame ref = gradient_frame(128, 64);
  FrameRefSource src(ref);
  Macroblock mb;
  mb.flags = kMotionForward;
  mb.mv[0][0] = 2 * 6;  // +6 px
  mb.mv[0][1] = 2 * 2;  // +2 px
  MacroblockPixels out;
  motion_compensate(mb, &src, nullptr, 1, 1, &out);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 16; ++c)
      EXPECT_EQ(out.y[r * 16 + c], ref.y.at(16 + 6 + c, 16 + 2 + r));
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      EXPECT_EQ(out.cb[r * 8 + c], ref.cb.at(8 + 3 + c, 8 + 1 + r));
}

TEST(MotionCompensate, HalfPelHorizontalAveragesWithRounding) {
  Frame ref(64, 64);
  // Columns alternate 10, 13 -> half-pel average = (10+13+1)>>1 = 12.
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) ref.y.set(x, y, x % 2 ? 13 : 10);
  FrameRefSource src(ref);
  Macroblock mb;
  mb.flags = kMotionForward;
  mb.mv[0][0] = 1;  // half-pel right
  mb.mv[0][1] = 0;
  MacroblockPixels out;
  motion_compensate(mb, &src, nullptr, 1, 1, &out);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(out.y[i], 12) << i;
}

TEST(MotionCompensate, HalfPelBothAxesUsesFourTapAverage) {
  Frame ref(64, 64);
  // 2x2 checkerboard 0/255: four-tap average = (0+255+255+0+2)>>2 = 128.
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      ref.y.set(x, y, ((x + y) & 1) ? 255 : 0);
  FrameRefSource src(ref);
  Macroblock mb;
  mb.flags = kMotionForward;
  mb.mv[0][0] = 1;
  mb.mv[0][1] = 1;
  MacroblockPixels out;
  motion_compensate(mb, &src, nullptr, 1, 1, &out);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(out.y[i], 128) << i;
}

TEST(MotionCompensate, NegativeVectorsUseArithmeticShift) {
  // mv = -1 half-pel: integer part floor(-1/2) = -1, half flag set.
  const Frame ref = gradient_frame(64, 64);
  FrameRefSource src(ref);
  Macroblock mb;
  mb.flags = kMotionForward;
  mb.mv[0][0] = -1;
  mb.mv[0][1] = 0;
  MacroblockPixels out;
  motion_compensate(mb, &src, nullptr, 1, 1, &out);
  const int expect =
      (int(ref.y.at(15, 16)) + int(ref.y.at(16, 16)) + 1) >> 1;
  EXPECT_EQ(out.y[0], expect);
}

TEST(MotionCompensate, BidirectionalAverage) {
  Frame fwd(64, 64), bwd(64, 64);
  fwd.y.fill(10);
  bwd.y.fill(15);
  fwd.cb.fill(100);
  bwd.cb.fill(101);
  fwd.cr.fill(0);
  bwd.cr.fill(0);
  FrameRefSource fs(fwd), bs(bwd);
  Macroblock mb;
  mb.flags = kMotionForward | kMotionBackward;
  MacroblockPixels out;
  motion_compensate(mb, &fs, &bs, 1, 1, &out);
  EXPECT_EQ(out.y[0], 13);    // (10+15+1)>>1
  EXPECT_EQ(out.cb[0], 101);  // (100+101+1)>>1
}

TEST(MotionCompensate, ChromaVectorTruncatesTowardZero) {
  // Luma mv -3 => chroma mv -1 (truncation), not -2 (floor).
  Frame ref(64, 64);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) ref.cb.set(x, y, uint8_t(x * 8));
  FrameRefSource src(ref);
  Macroblock mb;
  mb.flags = kMotionForward;
  mb.mv[0][0] = -3;
  mb.mv[0][1] = 0;
  MacroblockPixels out;
  motion_compensate(mb, &src, nullptr, 1, 1, &out);
  // chroma x = 8*1 + (-1>>1) = 8 - 1 = 7, half flag set (-1 & 1).
  const int expect = (int(ref.cb.at(7, 8)) + int(ref.cb.at(8, 8)) + 1) >> 1;
  EXPECT_EQ(out.cb[0], expect);
}

TEST(SourceWindow, CoversHalfPelFootprint) {
  Macroblock mb;
  mb.mv[0][0] = 5;   // int 2, half
  mb.mv[0][1] = -4;  // int -2, no half
  const SrcWindow w = luma_source_window(mb, 0, 3, 2);
  EXPECT_EQ(w.x0, 48 + 2);
  EXPECT_EQ(w.x1, 48 + 2 + 17);
  EXPECT_EQ(w.y0, 32 - 2);
  EXPECT_EQ(w.y1, 32 - 2 + 16);
}

// --- Motion estimation -------------------------------------------------------

TEST(MotionEstimation, FindsPureTranslationOnSmoothContent) {
  // Diamond search is a gradient-descent method: it needs content whose SAD
  // surface has a basin (smooth texture), not white noise. Build a smooth
  // 2-D sinusoid and shift it by a whole-pel offset.
  const int w = 128, h = 128;
  Frame ref(w, h), cur(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      ref.y.set(x, y,
                uint8_t(128 + 60 * std::sin(x * 0.11) * std::cos(y * 0.13)));
  // cur = ref shifted by (+4, -3) px.
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const int sx = std::clamp(x + 4, 0, w - 1);
      const int sy = std::clamp(y - 3, 0, h - 1);
      cur.y.set(x, y, ref.y.at(sx, sy));
    }
  enc::MeParams params;
  const auto r = enc::estimate_motion(cur.y, ref.y, 3, 3, 0, 0, params);
  EXPECT_EQ(r.mv_x, 8);   // +4 px in half-pel units
  EXPECT_EQ(r.mv_y, -6);  // -3 px
  EXPECT_EQ(r.sad, 0u);
}

TEST(MotionEstimation, HalfPelRefinementBeatsFullPel) {
  const int w = 96, h = 96;
  Frame ref(w, h), cur(w, h);
  // Smooth ramp; cur shifted by exactly half a pixel (average of neighbors).
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) ref.y.set(x, y, uint8_t((x * 2) & 0xFF));
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w - 1; ++x)
      cur.y.set(x, y, uint8_t((ref.y.at(x, y) + ref.y.at(x + 1, y) + 1) / 2));
  enc::MeParams params;
  const auto r = enc::estimate_motion(cur.y, ref.y, 2, 2, 0, 0, params);
  EXPECT_EQ(r.mv_x % 2, 1) << "expected a half-pel horizontal vector";
  EXPECT_LT(r.sad, 64u);
}

TEST(MotionEstimation, RespectsMvLimit) {
  const int w = 256, h = 64;
  Frame ref(w, h), cur(w, h);
  SplitMix64 rng(5);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) ref.y.set(x, y, uint8_t(rng.next()));
  // Shift by 40 px, more than the 15 px limit below allows.
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      cur.y.set(x, y, ref.y.at(std::min(x + 40, w - 1), y));
  enc::MeParams params;
  params.range_px = 15;
  params.mv_limit = 31;
  const auto r = enc::estimate_motion(cur.y, ref.y, 4, 1, 0, 0, params);
  EXPECT_LE(std::abs(r.mv_x), 31);
  EXPECT_LE(std::abs(r.mv_y), 31);
}

TEST(MotionEstimation, SadHalfpelRejectsOutOfPicture) {
  Frame a(32, 32), b(32, 32);
  EXPECT_EQ(enc::sad_halfpel(a.y, b.y, 0, 0, -1, 0),
            std::numeric_limits<uint32_t>::max());
  EXPECT_EQ(enc::sad_halfpel(a.y, b.y, 1, 1, 31, 0),
            std::numeric_limits<uint32_t>::max());
  EXPECT_EQ(enc::sad_halfpel(a.y, b.y, 0, 0, 0, 0), 0u);
}

TEST(MotionEstimation, PredictorSeedHelpsLargeMotion) {
  const int w = 256, h = 64;
  Frame ref(w, h), cur(w, h);
  SplitMix64 rng(6);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) ref.y.set(x, y, uint8_t(rng.next()));
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      cur.y.set(x, y, ref.y.at(std::min(x + 24, w - 1), y));
  enc::MeParams params;
  params.range_px = 31;
  params.mv_limit = 126;
  // Seeded with the true motion, the search must lock on exactly.
  const auto r = enc::estimate_motion(cur.y, ref.y, 4, 1, 48, 0, params);
  EXPECT_EQ(r.mv_x, 48);
  EXPECT_EQ(r.sad, 0u);
}

}  // namespace
}  // namespace pdw::mpeg2
