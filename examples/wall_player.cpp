// Wall player: "play" one of the paper's 16 catalog streams on an m x n
// display wall and report what the operator of the Princeton wall would see:
// the simulated cluster frame rate, the per-node bandwidth, and snapshots of
// the assembled wall image.
//
// Usage:
//   wall_player [stream_id=16] [m] [n] [k] [frames]
//
// Defaults: the stream's Table-6 configuration, k from the measured t_s/t_d,
// and PDW_FRAMES (48) frames.
//
// PDW_TRACE=out.json enables the span tracer for the whole run: the lockstep
// decode and the simulated cluster schedule land in out.json (Chrome
// trace-event JSON, Perfetto-loadable), a metrics snapshot lands next to it
// in out.metrics.json, and the traced Fig. 7 stage shares plus the Fig. 9
// node x node byte matrix print at the end.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/config.h"
#include "core/lockstep.h"
#include "examples/example_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cluster_sim.h"
#include "video/catalog.h"
#include "wall/assembler.h"

using namespace pdw;

int main(int argc, char** argv) {
  const int stream_id = argc > 1 ? std::atoi(argv[1]) : 16;
  const video::StreamSpec& spec = video::stream_by_id(stream_id);
  const int m = argc > 2 ? std::atoi(argv[2]) : spec.tiles_m;
  const int n = argc > 3 ? std::atoi(argv[3]) : spec.tiles_n;
  int k = argc > 4 ? std::atoi(argv[4]) : 0;  // 0 = auto
  const int frames =
      argc > 5 ? std::atoi(argv[5]) : video::default_frame_count();

  std::printf("stream %d (%s): %dx%d \"%s\"\n", spec.id, spec.name.c_str(),
              spec.width, spec.height, spec.note.c_str());
  const auto es = video::load_stream(spec, frames);
  std::printf("%d frames, %.2f MB (%.3f bpp)\n", frames,
              double(es.size()) / 1e6,
              double(es.size()) * 8 / (double(spec.pixels()) * frames));

  const char* trace_path = std::getenv("PDW_TRACE");
  if (trace_path && *trace_path) obs::Tracer::global().enable();

  wall::TileGeometry geo(spec.width, spec.height, m, n, 40);
  core::LockstepPipeline pipeline(geo, 1, es);

  // Play: decode every picture, assemble the wall, snapshot a few frames,
  // and collect cost traces for the cluster simulation.
  std::vector<core::PictureTrace> traces;
  struct Pending {
    std::unique_ptr<wall::WallAssembler> assembler;
    int tiles = 0;
  };
  std::map<int, Pending> pending;
  int assembled = 0;
  pipeline.run(
      [&](int tile, const mpeg2::TileFrame& tf,
          const core::TileDisplayInfo& info) {
        Pending& p = pending[info.display_index];
        if (!p.assembler)
          p.assembler = std::make_unique<wall::WallAssembler>(geo);
        p.assembler->add_tile(tile, tf);
        if (++p.tiles == geo.tiles()) {
          p.assembler->check_coverage();
          if (info.display_index % 16 == 0) {
            char name[64];
            std::snprintf(name, sizeof(name), "wall_s%02d_frame%03d.ppm",
                          spec.id, info.display_index);
            examples::write_ppm(
                wall::crop_frame(p.assembler->frame(), geo.width(),
                                 geo.height()),
                name);
            std::printf("wrote %s\n", name);
          }
          ++assembled;
          pending.erase(info.display_index);
        }
      },
      [&](const core::PictureTrace& tr) { traces.push_back(tr); });
  std::printf("assembled %d wall frames (all tiles, coverage checked)\n",
              assembled);

  // Cluster performance on the modeled Myrinet.
  const auto costs = sim::measure_costs(traces);
  if (k <= 0) k = core::choose_k(costs.t_split, costs.t_decode);
  sim::SimParams p;
  p.two_level = true;
  p.k = k;
  const auto r = sim::simulate_cluster(traces, geo, p);
  std::printf("\n1-%d-(%d,%d) on %d nodes: %.1f fps (t_s %.2f ms, t_d %.2f "
              "ms, model %.1f fps)\n",
              k, m, n, r.nodes, r.fps, costs.t_split * 1e3,
              costs.t_decode * 1e3,
              core::predicted_fps(k, costs.t_split, costs.t_decode));
  double max_bw = 0;
  for (int nid = 1; nid < r.nodes; ++nid)
    max_bw = std::max(max_bw, r.send_bandwidth_Bps(nid));
  std::printf("peak per-node send bandwidth: %.2f MB/s\n", max_bw / 1e6);

  if (trace_path && *trace_path) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.disable();

    // Fig. 7 from the traced spans of the simulated decoders.
    const auto shares = obs::fig7_breakdown(
        tracer, sim::kSimTracePidBase + r.first_decoder_node,
        sim::kSimTracePidBase + r.nodes - 1, sim::kSimTracePidBase);
    std::printf("\ntraced Fig. 7 stage shares (simulated decoders):\n");
    obs::print_fig7(shares, stdout);

    // Fig. 9: node x node byte matrix of the simulated cluster.
    auto node_name = [&](int nid) {
      if (nid == 0) return std::string("root");
      if (nid < r.first_decoder_node) return "S" + std::to_string(nid);
      return "D" + std::to_string(nid);
    };
    std::printf("\ntraced Fig. 9 traffic matrix (simulated cluster):\n");
    r.traffic_matrix.to_table(node_name).print(stdout);

    auto pid_name = [&](int pid) {
      if (pid >= sim::kSimTracePidBase)
        return "sim/" + node_name(pid - sim::kSimTracePidBase);
      return "lockstep/node" + std::to_string(pid);
    };
    if (obs::write_chrome_trace(tracer, trace_path, pid_name))
      std::printf("\nwrote %s (%zu events, %llu dropped)\n", trace_path,
                  tracer.collect().size(),
                  (unsigned long long)tracer.dropped());
    else
      std::fprintf(stderr, "failed to write %s\n", trace_path);

    std::string mpath = trace_path;
    if (mpath.ends_with(".json")) mpath.resize(mpath.size() - 5);
    mpath += ".metrics.json";
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    if (obs::write_metrics_json(snap, mpath))
      std::printf("wrote %s\n", mpath.c_str());
    obs::metrics_report(snap, stdout);
  }
  return 0;
}
