// wall_top: live "top"-style dashboard over the unified metrics registry.
//
// Synthesizes a short stream, runs the threaded 1-k-(m,n) cluster pipeline
// in a background thread, and — while the cluster is decoding — polls
// obs::MetricsRegistry::global().snapshot() every refresh interval and
// redraws a per-node table: pictures through each stage, live queue depths,
// exchange traffic, transport retransmits and heartbeats. This is exactly
// the live-observability path the bespoke stats structs could not provide:
// the registry is safe to snapshot mid-run, so the dashboard needs no
// cooperation from the pipeline. The full metrics report prints at the end.
//
// With --tenants the dashboard instead hosts an admission-gated multi-stream
// session sized to overload the wall (capacity for ~half the attached
// tenants), and the table becomes per-tenant QoS state straight from the
// registry: priority class, admitted/released state, the ladder's current
// degrade level, pictures shed, and the deadline-miss rate.
//
// With --remote the dashboard hosts the cluster telemetry Collector
// (obs/collector.h) instead of running anything itself: every wall_node
// process started with --telemetry-port streams its metric deltas, spans and
// clock probes here, the table renders the *merged* cross-process snapshot
// plus a per-process sideband health table (clock offset, min RTT, sideband
// loss), and at exit the collector writes one merged Perfetto trace of the
// whole multi-process wall.
//
// With --partitions the dashboard runs the adaptive per-GOP rebalancer on a
// hot-region stream and renders the live wall::PartitionTable state straight
// from the registry gauges: current epoch and the column/row cut lines.
//
// Usage:
//   wall_top [m] [n] [k] [frames] [refresh_ms]
//   wall_top --tenants [count] [refresh_ms]
//   wall_top --remote PORT [--expect N] [--duration S] [--trace FILE]
//            [--refresh MS]
//   wall_top --partitions [frames] [refresh_ms]
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/text_table.h"
#include "core/pipeline.h"
#include "enc/encoder.h"
#include "obs/collector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "proto/session.h"
#include "video/catalog.h"
#include "video/generator.h"

using namespace pdw;

namespace {

int64_t gauge_value(const obs::MetricsSnapshot& snap, std::string_view family,
                    obs::Labels labels) {
  for (const obs::MetricValue& v : snap.values)
    if (v.kind == obs::MetricKind::kGauge && v.family == family &&
        v.labels == labels)
      return v.gauge;
  return 0;
}

void draw(const obs::MetricsSnapshot& snap, int k, int tiles, bool ansi,
          double elapsed_s) {
  if (ansi) std::printf("\x1b[H\x1b[J");
  const uint64_t decoded =
      snap.counter_total(obs::family::kPicturesDecoded);
  std::printf("pdw wall_top — %.1fs — %llu tile-pictures decoded, "
              "%llu retransmits, %llu heartbeats\n\n",
              elapsed_s, (unsigned long long)decoded,
              (unsigned long long)snap.counter_total(obs::family::kRetransmits),
              (unsigned long long)
                  snap.counter_total(obs::family::kHeartbeatsSent));

  TextTable table({"node", "role", "pics", "queue", "sp KiB", "exch KiB s/r",
                   "acks", "retr"});
  const int nodes = 1 + k + tiles;
  for (int nid = 0; nid < nodes; ++nid) {
    const obs::Labels eng{nid, 0};   // engine counters
    const obs::Labels net{nid, -1};  // transport counters
    std::string role, pics, queue, sp, exch, acks;
    if (nid == 0) {
      role = "root";
      pics = format(
          "%llu",
          (unsigned long long)snap.counter_value(
              obs::family::kPicturesDispatched, eng));
      acks = format("%llu", (unsigned long long)snap.counter_value(
                                obs::family::kGoAheadsSeen, eng));
    } else if (nid <= k) {
      role = "splitter";
      pics = format("%llu", (unsigned long long)snap.counter_value(
                                obs::family::kPicturesSplit, eng));
      queue = format("%lld", (long long)gauge_value(
                                 snap, obs::family::kQueueDepth, eng));
      sp = format("%.1f", double(snap.counter_value(obs::family::kSpBytesSent,
                                                    eng)) /
                              1024.0);
      acks = format("%llu", (unsigned long long)snap.counter_value(
                                obs::family::kAcksRecv, eng));
    } else {
      role = "decoder";
      pics = format("%llu", (unsigned long long)snap.counter_value(
                                obs::family::kPicturesDecoded, eng));
      queue = format("%lld", (long long)gauge_value(
                                 snap, obs::family::kQueueDepth, eng));
      exch = format(
          "%.1f/%.1f",
          double(snap.counter_value(obs::family::kExchangeBytesSent, eng)) /
              1024.0,
          double(snap.counter_value(obs::family::kExchangeBytesRecv, eng)) /
              1024.0);
      acks = format("%llu", (unsigned long long)snap.counter_value(
                                obs::family::kAcksSent, eng));
    }
    const std::string retr =
        format("%llu", (unsigned long long)snap.counter_value(
                           obs::family::kRetransmits, net));
    table.add_row({format("%d", nid), role, pics, queue, sp, exch, acks,
                   retr});
  }
  table.print(stdout);

  // Buffer pools (process-wide: every node's wire bodies and picture planes
  // come from these). Hit rate below 100% after warm-up means the hot path
  // is malloc'ing; in-flight is the live pooled working set.
  const auto pool_row = [&](TextTable* t, const char* name, const char* hits_f,
                            const char* miss_f, const char* rec_f,
                            const char* flight_f) {
    const uint64_t hits = snap.counter_total(hits_f);
    const uint64_t misses = snap.counter_total(miss_f);
    const double rate =
        hits + misses ? 100.0 * double(hits) / double(hits + misses) : 0.0;
    t->add_row({name, format("%llu", (unsigned long long)hits),
                format("%llu", (unsigned long long)misses),
                format("%.1f%%", rate),
                format("%llu", (unsigned long long)snap.counter_total(rec_f)),
                format("%.1f", double(gauge_value(snap, flight_f, {})) /
                                   (1024.0 * 1024.0))});
  };
  TextTable pools({"pool", "hits", "misses", "hit rate", "recycles",
                   "in-flight MiB"});
  pool_row(&pools, "wire", obs::family::kPoolHits, obs::family::kPoolMisses,
           obs::family::kPoolRecycles, obs::family::kPoolBytesInFlight);
  pool_row(&pools, "surface", obs::family::kSurfacePoolHits,
           obs::family::kSurfacePoolMisses, obs::family::kSurfacePoolRecycles,
           obs::family::kSurfacePoolBytesInFlight);
  std::printf("\n");
  pools.print(stdout);
  std::fflush(stdout);
}

const char* kClassNames[3] = {"background", "standard", "premium"};
const char* kLevelNames[4] = {"none", "skip-B", "skip-P", "freeze"};

void draw_tenants(const obs::MetricsSnapshot& snap, bool ansi,
                  double elapsed_s) {
  if (ansi) std::printf("\x1b[H\x1b[J");
  std::printf(
      "pdw wall_top — multi-tenant — %.1fs — admission: %llu accepted, "
      "%llu renegotiated, %llu rejected\n\n",
      elapsed_s,
      (unsigned long long)snap.counter_total(obs::family::kAdmissionAccepted),
      (unsigned long long)
          snap.counter_total(obs::family::kAdmissionRenegotiated),
      (unsigned long long)snap.counter_total(obs::family::kAdmissionRejected));

  TextTable table(
      {"tenant", "class", "state", "degrade", "shed pics", "miss %"});
  // One kTenantPriorityClass gauge exists per tenant the controller has
  // ever seen; everything else keys off its labels.
  for (const obs::MetricValue& v : snap.values) {
    if (v.kind != obs::MetricKind::kGauge ||
        v.family != obs::family::kTenantPriorityClass)
      continue;
    const obs::Labels& labels = v.labels;
    const int cls = int(v.gauge);
    const bool admitted =
        gauge_value(snap, obs::family::kTenantAdmitted, labels) != 0;
    const int level =
        int(gauge_value(snap, obs::family::kTenantDegradeLevel, labels));
    const uint64_t shed =
        snap.counter_value(obs::family::kTenantPicturesShed, labels);
    const uint64_t checks =
        snap.counter_value(obs::family::kTenantDeadlineChecks, labels);
    const uint64_t misses =
        snap.counter_value(obs::family::kTenantDeadlineMisses, labels);
    table.add_row(
        {format("%d", labels.stream),
         cls >= 0 && cls < 3 ? kClassNames[cls] : "?",
         admitted ? (level > 0 ? "degraded" : "admitted") : "released",
         level >= 0 && level < 4 ? kLevelNames[level] : "?",
         format("%llu", (unsigned long long)shed),
         checks ? format("%.2f", 100.0 * double(misses) / double(checks))
                : std::string("-")});
  }
  table.print(stdout);
  std::fflush(stdout);
}

int run_tenant_mode(int tenants, int refresh_ms) {
  const int width = 320, height = 240, frames = 48;
  enc::EncoderConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.target_bpp = 0.35;

  std::vector<std::vector<uint8_t>> streams;
  for (int i = 0; i < tenants; ++i) {
    const auto scene = video::make_scene(video::SceneKind::kMovingObjects,
                                         width, height, 100u + unsigned(i));
    enc::Mpeg2Encoder encoder(cfg);
    streams.push_back(encoder.encode(
        frames, [&](int f, mpeg2::Frame* fr) { scene->render(f, fr); }));
  }

  proto::TenantSpec spec;
  spec.width_mb = uint16_t((width + 15) / 16);
  spec.height_mb = uint16_t((height + 15) / 16);
  spec.fps = 24;

  wall::TileGeometry geo(width, height, 2, 2, /*overlap=*/40);
  proto::StreamSession session(geo, /*k=*/2);
  proto::AdmissionController::Config acfg;
  // Room for roughly half the tenants at full rate: the ladder must engage.
  acfg.capacity.mb_per_s = 0.5 * tenants * proto::tenant_cost(spec);
  session.enable_admission(acfg);
  session.admission()->set_metrics(&obs::MetricsRegistry::global());

  for (int i = 0; i < tenants; ++i) {
    // Tenant 0 is premium, 1 standard, the rest background — so the shed
    // order on screen demonstrates the strict priority ladder.
    spec.priority = i == 0   ? proto::PriorityClass::kPremium
                    : i == 1 ? proto::PriorityClass::kStandard
                             : proto::PriorityClass::kBackground;
    const proto::StreamReply reply =
        session.attach_stream(i, streams[size_t(i)], spec);
    std::printf("tenant %d (%s): verdict %d, level %s\n", i,
                kClassNames[int(spec.priority)], int(reply.verdict),
                kLevelNames[int(reply.level)]);
  }

  std::atomic<bool> done{false};
  proto::StreamSession::Result result;
  std::thread runner([&] {
    result = session.run(nullptr);
    done.store(true);
  });

  const bool ansi = isatty(fileno(stdout)) != 0;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  double elapsed = 0;
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
    elapsed += double(refresh_ms) / 1e3;
    draw_tenants(reg.snapshot(), ansi, elapsed);
  }
  runner.join();

  draw_tenants(reg.snapshot(), ansi, elapsed);
  std::printf(
      "\nrun finished: %d streams, %llu pictures (%llu shed), %.2f s, "
      "%.1f aggregate fps\n",
      result.streams, (unsigned long long)result.pictures,
      (unsigned long long)result.shed, result.wall_seconds,
      result.aggregate_fps);
  return 0;
}

// --remote: host the telemetry collector; the wall runs elsewhere (other
// processes, other machines) and streams itself here.
int run_remote_mode(int argc, char** argv) {
  uint16_t port = 0;
  int expect = 0;
  double duration_s = 120.0;
  int refresh_ms = 200;
  std::string trace_path;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (i == 2 && a[0] != '-') {
      port = uint16_t(std::atoi(a.c_str()));
    } else if (a == "--expect") {
      if (const char* v = next()) expect = std::atoi(v);
    } else if (a == "--duration") {
      if (const char* v = next()) duration_s = std::atof(v);
    } else if (a == "--trace") {
      if (const char* v = next()) trace_path = v;
    } else if (a == "--refresh") {
      if (const char* v = next()) refresh_ms = std::atoi(v);
    } else {
      std::fprintf(stderr, "wall_top --remote PORT [--expect N] "
                           "[--duration S] [--trace FILE] [--refresh MS]\n");
      return 2;
    }
  }
  obs::CollectorConfig ccfg;
  ccfg.port = port;
  obs::Collector collector(ccfg);
  if (!collector.ok()) {
    std::fprintf(stderr, "wall_top: cannot bind collector port %u\n",
                 unsigned(port));
    return 1;
  }
  collector.start();
  std::printf("wall_top --remote: collecting on UDP port %u\n",
              unsigned(collector.endpoint().port));

  const bool ansi = isatty(fileno(stdout)) != 0;
  double elapsed = 0;
  bool complete = false;
  while (elapsed < duration_s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
    elapsed += double(refresh_ms) / 1e3;
    const int k = collector.k(), tiles = collector.tiles();
    if (k > 0 && tiles > 0)
      draw(collector.merged_metrics(), k, tiles, ansi, elapsed);
    else if (ansi)
      std::printf("\x1b[H\x1b[Jwall_top --remote — %.1fs — waiting for the "
                  "first Hello...\n",
                  elapsed);

    TextTable procs({"token", "pid", "nodes", "offset us", "min-rtt us",
                     "dgrams", "bytes", "gaps", "state"});
    for (const obs::Collector::ProcessInfo& p : collector.processes()) {
      std::string nodes;
      for (size_t i = 0; i < p.nodes.size(); ++i)
        nodes += format("%s%d", i ? "," : "", p.nodes[i]);
      procs.add_row(
          {format("%08llx", (unsigned long long)(p.token & 0xFFFFFFFFull)),
           format("%u", p.os_pid), nodes,
           p.offset_valid ? format("%.1f", double(p.offset_ns) / 1e3)
                          : std::string("-"),
           p.offset_valid ? format("%.1f", double(p.min_rtt_ns) / 1e3)
                          : std::string("-"),
           format("%llu", (unsigned long long)p.datagrams),
           format("%llu", (unsigned long long)p.bytes),
           format("%llu", (unsigned long long)p.seq_gaps),
           p.bye ? "bye" : "live"});
    }
    std::printf("\n");
    procs.print(stdout);
    std::fflush(stdout);

    const int seen = int(collector.nodes_seen().size());
    const bool enough =
        expect > 0 ? seen >= expect : collector.all_nodes_seen();
    if (enough && collector.all_bye() && !collector.processes().empty()) {
      complete = true;
      break;
    }
  }
  collector.stop();

  const int seen = int(collector.nodes_seen().size());
  std::printf("\ncollector: %d nodes seen, %zu processes, %llu datagrams "
              "(%llu bytes), complete=%s\n",
              seen, collector.processes().size(),
              (unsigned long long)collector.datagrams_received(),
              (unsigned long long)collector.bytes_received(),
              complete ? "yes" : "no");
  if (!trace_path.empty()) {
    if (!collector.write_merged_trace(trace_path)) {
      std::fprintf(stderr, "wall_top: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("merged trace written to %s\n", trace_path.c_str());
  }
  return complete ? 0 : 1;
}

void draw_partitions(const obs::MetricsSnapshot& snap, int m, int n, int k,
                     int tiles, bool ansi, double elapsed_s) {
  if (ansi) std::printf("\x1b[H\x1b[J");
  const int64_t epoch =
      gauge_value(snap, obs::family::kPartitionEpoch, obs::Labels{-1, 0});
  std::printf("pdw wall_top — partitions — %.1fs — epoch %lld, %llu "
              "tile-pictures decoded\n\n",
              elapsed_s, (long long)epoch,
              (unsigned long long)
                  snap.counter_total(obs::family::kPicturesDecoded));
  TextTable cuts({"axis", "cut", "mb"});
  for (int i = 0; i < m - 1; ++i)
    cuts.add_row({"col", format("%d", i),
                  format("%lld", (long long)gauge_value(
                                     snap, obs::family::kPartitionColCutMb,
                                     obs::Labels{i, 0}))});
  for (int i = 0; i < n - 1; ++i)
    cuts.add_row({"row", format("%d", i),
                  format("%lld", (long long)gauge_value(
                                     snap, obs::family::kPartitionRowCutMb,
                                     obs::Labels{i, 0}))});
  cuts.print(stdout);
  std::printf("\n");
  draw(snap, k, tiles, /*ansi=*/false, elapsed_s);
}

// --partitions: adaptive rebalancing on a hot-region stream, with the live
// PartitionTable epoch and cut lines rendered from the registry gauges.
int run_partition_mode(int frames, int refresh_ms) {
  const int m = 4, n = 4, k = 2;
  const video::StreamSpec spec = video::skewed_stream_spec(0, 640, 480);
  const std::vector<uint8_t> es = video::load_stream(spec, frames);
  std::printf("stream: %s %dx%d, %d frames (hot region cx=%.2f cy=%.2f)\n",
              spec.name.c_str(), spec.width, spec.height, frames,
              double(spec.hot.cx), double(spec.hot.cy));

  wall::TileGeometry geo(spec.width, spec.height, m, n, /*overlap=*/40);
  core::FtOptions ft;
  ft.adaptive.enabled = true;
  ft.adaptive.gain_threshold = 0.02;
  core::ClusterPipeline pipeline(geo, k, es, ft);

  std::atomic<bool> done{false};
  core::ClusterStats stats;
  std::thread runner([&] {
    stats = pipeline.run(nullptr);
    done.store(true);
  });

  const bool ansi = isatty(fileno(stdout)) != 0;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  double elapsed = 0;
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
    elapsed += double(refresh_ms) / 1e3;
    draw_partitions(reg.snapshot(), m, n, k, geo.tiles(), ansi, elapsed);
  }
  runner.join();

  draw_partitions(reg.snapshot(), m, n, k, geo.tiles(), ansi, elapsed);
  std::printf("\nrun finished: %d pictures, %.2f s, %.1f fps, final epoch "
              "%lld\n",
              stats.pictures, stats.wall_seconds, stats.fps,
              (long long)gauge_value(reg.snapshot(),
                                     obs::family::kPartitionEpoch,
                                     obs::Labels{-1, 0}));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--remote") == 0)
    return run_remote_mode(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "--partitions") == 0) {
    const int frames = argc > 2 ? std::atoi(argv[2]) : 96;
    const int refresh_ms = argc > 3 ? std::atoi(argv[3]) : 200;
    return run_partition_mode(frames, refresh_ms);
  }
  if (argc > 1 && std::strcmp(argv[1], "--tenants") == 0) {
    const int tenants = argc > 2 ? std::atoi(argv[2]) : 4;
    const int refresh_ms = argc > 3 ? std::atoi(argv[3]) : 200;
    return run_tenant_mode(tenants, refresh_ms);
  }
  const int m = argc > 1 ? std::atoi(argv[1]) : 2;
  const int n = argc > 2 ? std::atoi(argv[2]) : 2;
  const int k = argc > 3 ? std::atoi(argv[3]) : 2;
  const int frames = argc > 4 ? std::atoi(argv[4]) : 96;
  const int refresh_ms = argc > 5 ? std::atoi(argv[5]) : 200;

  const int width = 640, height = 480;
  enc::EncoderConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.target_bpp = 0.35;
  const auto scene =
      video::make_scene(video::SceneKind::kMovingObjects, width, height, 7);
  enc::Mpeg2Encoder encoder(cfg);
  const std::vector<uint8_t> es = encoder.encode(
      frames, [&](int i, mpeg2::Frame* f) { scene->render(i, f); });
  std::printf("encoded %d frames (%zu bytes); 1-%d-(%d,%d) wall\n", frames,
              es.size(), k, m, n);

  wall::TileGeometry geo(width, height, m, n, /*overlap=*/40);
  core::ClusterPipeline pipeline(geo, k, es);

  std::atomic<bool> done{false};
  core::ClusterStats stats;
  std::thread runner([&] {
    stats = pipeline.run(nullptr);
    done.store(true);
  });

  const bool ansi = isatty(fileno(stdout)) != 0;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  double elapsed = 0;
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
    elapsed += double(refresh_ms) / 1e3;
    draw(reg.snapshot(), k, geo.tiles(), ansi, elapsed);
  }
  runner.join();

  draw(reg.snapshot(), k, geo.tiles(), ansi, elapsed);
  std::printf("\nrun finished: %d pictures, %.2f s, %.1f fps\n\n",
              stats.pictures, stats.wall_seconds, stats.fps);
  obs::metrics_report(reg.snapshot(), stdout);
  return 0;
}
