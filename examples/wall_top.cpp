// wall_top: live "top"-style dashboard over the unified metrics registry.
//
// Synthesizes a short stream, runs the threaded 1-k-(m,n) cluster pipeline
// in a background thread, and — while the cluster is decoding — polls
// obs::MetricsRegistry::global().snapshot() every refresh interval and
// redraws a per-node table: pictures through each stage, live queue depths,
// exchange traffic, transport retransmits and heartbeats. This is exactly
// the live-observability path the bespoke stats structs could not provide:
// the registry is safe to snapshot mid-run, so the dashboard needs no
// cooperation from the pipeline. The full metrics report prints at the end.
//
// With --tenants the dashboard instead hosts an admission-gated multi-stream
// session sized to overload the wall (capacity for ~half the attached
// tenants), and the table becomes per-tenant QoS state straight from the
// registry: priority class, admitted/released state, the ladder's current
// degrade level, pictures shed, and the deadline-miss rate.
//
// Usage:
//   wall_top [m] [n] [k] [frames] [refresh_ms]
//   wall_top --tenants [count] [refresh_ms]
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/text_table.h"
#include "core/pipeline.h"
#include "enc/encoder.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "proto/session.h"
#include "video/generator.h"

using namespace pdw;

namespace {

int64_t gauge_value(const obs::MetricsSnapshot& snap, std::string_view family,
                    obs::Labels labels) {
  for (const obs::MetricValue& v : snap.values)
    if (v.kind == obs::MetricKind::kGauge && v.family == family &&
        v.labels == labels)
      return v.gauge;
  return 0;
}

void draw(const obs::MetricsSnapshot& snap, int k, int tiles, bool ansi,
          double elapsed_s) {
  if (ansi) std::printf("\x1b[H\x1b[J");
  const uint64_t decoded =
      snap.counter_total(obs::family::kPicturesDecoded);
  std::printf("pdw wall_top — %.1fs — %llu tile-pictures decoded, "
              "%llu retransmits, %llu heartbeats\n\n",
              elapsed_s, (unsigned long long)decoded,
              (unsigned long long)snap.counter_total(obs::family::kRetransmits),
              (unsigned long long)
                  snap.counter_total(obs::family::kHeartbeatsSent));

  TextTable table({"node", "role", "pics", "queue", "sp KiB", "exch KiB s/r",
                   "acks", "retr"});
  const int nodes = 1 + k + tiles;
  for (int nid = 0; nid < nodes; ++nid) {
    const obs::Labels eng{nid, 0};   // engine counters
    const obs::Labels net{nid, -1};  // transport counters
    std::string role, pics, queue, sp, exch, acks;
    if (nid == 0) {
      role = "root";
      pics = format(
          "%llu",
          (unsigned long long)snap.counter_value(
              obs::family::kPicturesDispatched, eng));
      acks = format("%llu", (unsigned long long)snap.counter_value(
                                obs::family::kGoAheadsSeen, eng));
    } else if (nid <= k) {
      role = "splitter";
      pics = format("%llu", (unsigned long long)snap.counter_value(
                                obs::family::kPicturesSplit, eng));
      queue = format("%lld", (long long)gauge_value(
                                 snap, obs::family::kQueueDepth, eng));
      sp = format("%.1f", double(snap.counter_value(obs::family::kSpBytesSent,
                                                    eng)) /
                              1024.0);
      acks = format("%llu", (unsigned long long)snap.counter_value(
                                obs::family::kAcksRecv, eng));
    } else {
      role = "decoder";
      pics = format("%llu", (unsigned long long)snap.counter_value(
                                obs::family::kPicturesDecoded, eng));
      queue = format("%lld", (long long)gauge_value(
                                 snap, obs::family::kQueueDepth, eng));
      exch = format(
          "%.1f/%.1f",
          double(snap.counter_value(obs::family::kExchangeBytesSent, eng)) /
              1024.0,
          double(snap.counter_value(obs::family::kExchangeBytesRecv, eng)) /
              1024.0);
      acks = format("%llu", (unsigned long long)snap.counter_value(
                                obs::family::kAcksSent, eng));
    }
    const std::string retr =
        format("%llu", (unsigned long long)snap.counter_value(
                           obs::family::kRetransmits, net));
    table.add_row({format("%d", nid), role, pics, queue, sp, exch, acks,
                   retr});
  }
  table.print(stdout);

  // Buffer pools (process-wide: every node's wire bodies and picture planes
  // come from these). Hit rate below 100% after warm-up means the hot path
  // is malloc'ing; in-flight is the live pooled working set.
  const auto pool_row = [&](TextTable* t, const char* name, const char* hits_f,
                            const char* miss_f, const char* rec_f,
                            const char* flight_f) {
    const uint64_t hits = snap.counter_total(hits_f);
    const uint64_t misses = snap.counter_total(miss_f);
    const double rate =
        hits + misses ? 100.0 * double(hits) / double(hits + misses) : 0.0;
    t->add_row({name, format("%llu", (unsigned long long)hits),
                format("%llu", (unsigned long long)misses),
                format("%.1f%%", rate),
                format("%llu", (unsigned long long)snap.counter_total(rec_f)),
                format("%.1f", double(gauge_value(snap, flight_f, {})) /
                                   (1024.0 * 1024.0))});
  };
  TextTable pools({"pool", "hits", "misses", "hit rate", "recycles",
                   "in-flight MiB"});
  pool_row(&pools, "wire", obs::family::kPoolHits, obs::family::kPoolMisses,
           obs::family::kPoolRecycles, obs::family::kPoolBytesInFlight);
  pool_row(&pools, "surface", obs::family::kSurfacePoolHits,
           obs::family::kSurfacePoolMisses, obs::family::kSurfacePoolRecycles,
           obs::family::kSurfacePoolBytesInFlight);
  std::printf("\n");
  pools.print(stdout);
  std::fflush(stdout);
}

const char* kClassNames[3] = {"background", "standard", "premium"};
const char* kLevelNames[4] = {"none", "skip-B", "skip-P", "freeze"};

void draw_tenants(const obs::MetricsSnapshot& snap, bool ansi,
                  double elapsed_s) {
  if (ansi) std::printf("\x1b[H\x1b[J");
  std::printf(
      "pdw wall_top — multi-tenant — %.1fs — admission: %llu accepted, "
      "%llu renegotiated, %llu rejected\n\n",
      elapsed_s,
      (unsigned long long)snap.counter_total(obs::family::kAdmissionAccepted),
      (unsigned long long)
          snap.counter_total(obs::family::kAdmissionRenegotiated),
      (unsigned long long)snap.counter_total(obs::family::kAdmissionRejected));

  TextTable table(
      {"tenant", "class", "state", "degrade", "shed pics", "miss %"});
  // One kTenantPriorityClass gauge exists per tenant the controller has
  // ever seen; everything else keys off its labels.
  for (const obs::MetricValue& v : snap.values) {
    if (v.kind != obs::MetricKind::kGauge ||
        v.family != obs::family::kTenantPriorityClass)
      continue;
    const obs::Labels& labels = v.labels;
    const int cls = int(v.gauge);
    const bool admitted =
        gauge_value(snap, obs::family::kTenantAdmitted, labels) != 0;
    const int level =
        int(gauge_value(snap, obs::family::kTenantDegradeLevel, labels));
    const uint64_t shed =
        snap.counter_value(obs::family::kTenantPicturesShed, labels);
    const uint64_t checks =
        snap.counter_value(obs::family::kTenantDeadlineChecks, labels);
    const uint64_t misses =
        snap.counter_value(obs::family::kTenantDeadlineMisses, labels);
    table.add_row(
        {format("%d", labels.stream),
         cls >= 0 && cls < 3 ? kClassNames[cls] : "?",
         admitted ? (level > 0 ? "degraded" : "admitted") : "released",
         level >= 0 && level < 4 ? kLevelNames[level] : "?",
         format("%llu", (unsigned long long)shed),
         checks ? format("%.2f", 100.0 * double(misses) / double(checks))
                : std::string("-")});
  }
  table.print(stdout);
  std::fflush(stdout);
}

int run_tenant_mode(int tenants, int refresh_ms) {
  const int width = 320, height = 240, frames = 48;
  enc::EncoderConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.target_bpp = 0.35;

  std::vector<std::vector<uint8_t>> streams;
  for (int i = 0; i < tenants; ++i) {
    const auto scene = video::make_scene(video::SceneKind::kMovingObjects,
                                         width, height, 100u + unsigned(i));
    enc::Mpeg2Encoder encoder(cfg);
    streams.push_back(encoder.encode(
        frames, [&](int f, mpeg2::Frame* fr) { scene->render(f, fr); }));
  }

  proto::TenantSpec spec;
  spec.width_mb = uint16_t((width + 15) / 16);
  spec.height_mb = uint16_t((height + 15) / 16);
  spec.fps = 24;

  wall::TileGeometry geo(width, height, 2, 2, /*overlap=*/40);
  proto::StreamSession session(geo, /*k=*/2);
  proto::AdmissionController::Config acfg;
  // Room for roughly half the tenants at full rate: the ladder must engage.
  acfg.capacity.mb_per_s = 0.5 * tenants * proto::tenant_cost(spec);
  session.enable_admission(acfg);
  session.admission()->set_metrics(&obs::MetricsRegistry::global());

  for (int i = 0; i < tenants; ++i) {
    // Tenant 0 is premium, 1 standard, the rest background — so the shed
    // order on screen demonstrates the strict priority ladder.
    spec.priority = i == 0   ? proto::PriorityClass::kPremium
                    : i == 1 ? proto::PriorityClass::kStandard
                             : proto::PriorityClass::kBackground;
    const proto::StreamReply reply =
        session.attach_stream(i, streams[size_t(i)], spec);
    std::printf("tenant %d (%s): verdict %d, level %s\n", i,
                kClassNames[int(spec.priority)], int(reply.verdict),
                kLevelNames[int(reply.level)]);
  }

  std::atomic<bool> done{false};
  proto::StreamSession::Result result;
  std::thread runner([&] {
    result = session.run(nullptr);
    done.store(true);
  });

  const bool ansi = isatty(fileno(stdout)) != 0;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  double elapsed = 0;
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
    elapsed += double(refresh_ms) / 1e3;
    draw_tenants(reg.snapshot(), ansi, elapsed);
  }
  runner.join();

  draw_tenants(reg.snapshot(), ansi, elapsed);
  std::printf(
      "\nrun finished: %d streams, %llu pictures (%llu shed), %.2f s, "
      "%.1f aggregate fps\n",
      result.streams, (unsigned long long)result.pictures,
      (unsigned long long)result.shed, result.wall_seconds,
      result.aggregate_fps);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--tenants") == 0) {
    const int tenants = argc > 2 ? std::atoi(argv[2]) : 4;
    const int refresh_ms = argc > 3 ? std::atoi(argv[3]) : 200;
    return run_tenant_mode(tenants, refresh_ms);
  }
  const int m = argc > 1 ? std::atoi(argv[1]) : 2;
  const int n = argc > 2 ? std::atoi(argv[2]) : 2;
  const int k = argc > 3 ? std::atoi(argv[3]) : 2;
  const int frames = argc > 4 ? std::atoi(argv[4]) : 96;
  const int refresh_ms = argc > 5 ? std::atoi(argv[5]) : 200;

  const int width = 640, height = 480;
  enc::EncoderConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.target_bpp = 0.35;
  const auto scene =
      video::make_scene(video::SceneKind::kMovingObjects, width, height, 7);
  enc::Mpeg2Encoder encoder(cfg);
  const std::vector<uint8_t> es = encoder.encode(
      frames, [&](int i, mpeg2::Frame* f) { scene->render(i, f); });
  std::printf("encoded %d frames (%zu bytes); 1-%d-(%d,%d) wall\n", frames,
              es.size(), k, m, n);

  wall::TileGeometry geo(width, height, m, n, /*overlap=*/40);
  core::ClusterPipeline pipeline(geo, k, es);

  std::atomic<bool> done{false};
  core::ClusterStats stats;
  std::thread runner([&] {
    stats = pipeline.run(nullptr);
    done.store(true);
  });

  const bool ansi = isatty(fileno(stdout)) != 0;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  double elapsed = 0;
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
    elapsed += double(refresh_ms) / 1e3;
    draw(reg.snapshot(), k, geo.tiles(), ansi, elapsed);
  }
  runner.join();

  draw(reg.snapshot(), k, geo.tiles(), ansi, elapsed);
  std::printf("\nrun finished: %d pictures, %.2f s, %.1f fps\n\n",
              stats.pictures, stats.wall_seconds, stats.fps);
  obs::metrics_report(reg.snapshot(), stdout);
  return 0;
}
