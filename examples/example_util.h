// Shared helpers for the example programs: YUV->RGB conversion and PPM
// snapshot output so results are visually inspectable.
#pragma once

#include <cstdio>
#include <string>

#include "mpeg2/frame.h"

namespace pdw::examples {

// BT.601 full-swing-ish conversion, adequate for snapshots.
inline void yuv_to_rgb(int y, int cb, int cr, uint8_t* rgb) {
  const double yd = y - 16.0;
  const double u = cb - 128.0;
  const double v = cr - 128.0;
  auto clamp = [](double x) {
    return uint8_t(x < 0 ? 0 : (x > 255 ? 255 : x));
  };
  rgb[0] = clamp(1.164 * yd + 1.596 * v);
  rgb[1] = clamp(1.164 * yd - 0.392 * u - 0.813 * v);
  rgb[2] = clamp(1.164 * yd + 2.017 * u);
}

// Write a frame as a binary PPM (4:2:0 chroma upsampled by replication).
inline bool write_ppm(const mpeg2::Frame& f, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (!out) return false;
  std::fprintf(out, "P6\n%d %d\n255\n", f.width(), f.height());
  std::vector<uint8_t> row(size_t(f.width()) * 3);
  for (int y = 0; y < f.height(); ++y) {
    const uint8_t* luma = f.y.row(y);
    const uint8_t* cb = f.cb.row(y / 2);
    const uint8_t* cr = f.cr.row(y / 2);
    for (int x = 0; x < f.width(); ++x)
      yuv_to_rgb(luma[x], cb[x / 2], cr[x / 2], &row[size_t(x) * 3]);
    std::fwrite(row.data(), 1, row.size(), out);
  }
  std::fclose(out);
  return true;
}

}  // namespace pdw::examples
