// Standalone codec demo: the MPEG-2 substrate as an ordinary video library,
// independent of the parallel machinery.
//
// Renders a procedural scene, encodes it to an .m2v elementary stream on
// disk, decodes the file back, reports PSNR/bit-rate, and dumps the first
// decoded frame as a PPM.
//
// Usage:
//   transcode_tool [scene=moving-objects|panning-texture|animation|
//                   localized-detail] [width=704] [height=480] [frames=24]
//                  [bpp=0.35] [out=transcode_demo.m2v]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "enc/encoder.h"
#include "examples/example_util.h"
#include "mpeg2/decoder.h"
#include "video/generator.h"

using namespace pdw;

namespace {

video::SceneKind parse_scene(const char* name) {
  using SK = video::SceneKind;
  for (SK kind : {SK::kPanningTexture, SK::kMovingObjects, SK::kAnimation,
                  SK::kLocalizedDetail})
    if (std::strcmp(name, video::scene_kind_name(kind)) == 0) return kind;
  std::fprintf(stderr, "unknown scene '%s', using moving-objects\n", name);
  return SK::kMovingObjects;
}

}  // namespace

int main(int argc, char** argv) {
  const video::SceneKind scene =
      argc > 1 ? parse_scene(argv[1]) : video::SceneKind::kMovingObjects;
  const int width = argc > 2 ? std::atoi(argv[2]) : 704;
  const int height = argc > 3 ? std::atoi(argv[3]) : 480;
  const int frames = argc > 4 ? std::atoi(argv[4]) : 24;
  const double bpp = argc > 5 ? std::atof(argv[5]) : 0.35;
  const char* path = argc > 6 ? argv[6] : "transcode_demo.m2v";

  // Encode.
  enc::EncoderConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.target_bpp = bpp;
  const auto gen = video::make_scene(scene, width, height, 99);
  enc::EncodeStats stats;
  enc::Mpeg2Encoder encoder(cfg);
  const auto es = encoder.encode(
      frames, [&](int i, mpeg2::Frame* f) { gen->render(i, f); }, &stats);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(es.data()),
              std::streamsize(es.size()));
  }
  std::printf("encoded %s %dx%d x%d -> %s: %zu bytes, %.3f bpp\n",
              video::scene_kind_name(scene), width, height, frames, path,
              es.size(), stats.avg_bpp(width, height));
  std::printf("  macroblocks: %d intra, %d inter, %d skipped\n",
              stats.intra_mbs, stats.inter_mbs, stats.skipped_mbs);

  // Decode the file back and measure quality against the source.
  std::ifstream in(path, std::ios::binary);
  std::vector<uint8_t> file_bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  mpeg2::Mpeg2Decoder decoder;
  mpeg2::Frame reference(width, height);
  double psnr_sum = 0;
  double psnr_min = 1e9;
  int decoded = 0;
  decoder.decode(file_bytes, [&](const mpeg2::Frame& f,
                                 const mpeg2::DecodedPictureInfo& info) {
    gen->render(info.display_index, &reference);
    const double p = mpeg2::psnr(f.y, reference.y);
    psnr_sum += p;
    psnr_min = std::min(psnr_min, p);
    if (info.display_index == 0)
      examples::write_ppm(f, "transcode_frame0.ppm");
    ++decoded;
  });
  std::printf("decoded %d frames: luma PSNR avg %.2f dB, min %.2f dB\n",
              decoded, psnr_sum / decoded, psnr_min);
  std::printf("wrote transcode_frame0.ppm\n");
  return decoded == frames ? 0 : 1;
}
