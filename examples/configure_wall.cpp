// Configuration assistant (paper §4.6 + the §6 future-work extension).
//
// Given a video stream and a target frame rate, determine the wall
// configuration the way the paper prescribes — (m, n) by matching the video
// resolution against the projector panels, k by measuring t_s and t_d on a
// prefix of the stream — and report the predicted and simulated frame rates.
//
// Usage:
//   configure_wall [stream_id=10] [target_fps=30]
#include <cstdio>
#include <cstdlib>

#include "core/config.h"
#include "core/lockstep.h"
#include "sim/cluster_sim.h"
#include "video/catalog.h"

using namespace pdw;

int main(int argc, char** argv) {
  const int stream_id = argc > 1 ? std::atoi(argv[1]) : 10;
  const double target_fps = argc > 2 ? std::atof(argv[2]) : 30.0;

  const video::StreamSpec& spec = video::stream_by_id(stream_id);
  std::printf("stream %d (%s), %dx%d, target %.1f fps\n", spec.id,
              spec.name.c_str(), spec.width, spec.height, target_fps);

  // Step 1: screen configuration from the panel geometry (§4.6).
  core::WallPanel panel;  // 1024x768 projectors, 40 px blend overlap
  int m = 0, n = 0;
  core::choose_tiling(spec.width, spec.height, panel, &m, &n);
  std::printf("panel %dx%d overlap %d -> screen configuration (%d,%d)\n",
              panel.width, panel.height, panel.overlap, m, n);

  // Step 2: measure t_s and t_d on a short prefix.
  const auto es = video::load_stream(spec, video::default_frame_count());
  wall::TileGeometry geo(spec.width, spec.height, m, n, panel.overlap);
  core::LockstepPipeline pipeline(geo, 1, es);
  std::vector<core::PictureTrace> traces;
  pipeline.run(nullptr,
               [&](const core::PictureTrace& tr) { traces.push_back(tr); },
               /*max_pictures=*/24);
  const auto costs = sim::measure_costs(traces);
  std::printf("measured on %zu pictures: t_s = %.2f ms, t_d = %.2f ms\n",
              traces.size(), costs.t_split * 1e3, costs.t_decode * 1e3);

  // Step 3: k for the target rate (future-work auto-configuration) and the
  // k that saturates the decoders.
  const int k_full = core::choose_k(costs.t_split, costs.t_decode);
  const int k_target =
      core::choose_k_for_target_fps(target_fps, costs.t_split, costs.t_decode);
  std::printf("decoder-saturating k* = %d (F = %.1f fps)\n", k_full,
              core::predicted_fps(k_full, costs.t_split, costs.t_decode));
  std::printf("k for %.1f fps target = %d (F = %.1f fps)\n", target_fps,
              k_target,
              core::predicted_fps(k_target, costs.t_split, costs.t_decode));

  // Step 4: validate with the cluster simulator.
  sim::SimParams p;
  p.two_level = k_target > 0;
  p.k = std::max(1, k_target);
  const auto r = sim::simulate_cluster(traces, geo, p);
  std::printf("simulated 1-%d-(%d,%d): %.1f fps on %d nodes -> %s\n", p.k, m,
              n, r.fps, r.nodes,
              r.fps >= target_fps ? "target met" : "decoder-limited");
  return 0;
}
