// System-layer tool: wrap a video elementary stream into an MPEG-2 program
// stream (pack headers, PES packets, PTS/DTS) or transport stream (188-byte
// packets, PAT/PMT, PCR), unwrap either, and print container structure.
//
//   ps_tool mux     <in.m2v> <out.mpg> [fps]     program stream
//   ps_tool demux   <in.mpg> <out.m2v>
//   ps_tool info    <in.mpg>
//   ps_tool tsmux   <in.m2v> <out.ts> [fps]      transport stream
//   ps_tool tsdemux <in.ts>  <out.m2v>
//   ps_tool tsinfo  <in.ts>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "ps/program_stream.h"
#include "ps/transport_stream.h"

using namespace pdw;

namespace {

std::vector<uint8_t> read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void write_file(const char* path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s mux   <in.m2v> <out.mpg> [fps]\n"
               "  %s demux <in.mpg> <out.m2v>\n"
               "  %s info  <in.mpg>\n"
               "  %s tsmux   <in.m2v> <out.ts> [fps]\n"
               "  %s tsdemux <in.ts> <out.m2v>\n"
               "  %s tsinfo  <in.ts>\n",
               argv0, argv0, argv0, argv0, argv0, argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string mode = argv[1];

  if (mode == "tsmux") {
    if (argc < 4) return usage(argv[0]);
    const auto es = read_file(argv[2]);
    ps::TsMuxConfig cfg;
    if (argc > 4) cfg.frame_rate = std::atof(argv[4]);
    const auto ts = ps::mux_transport_stream(es, cfg);
    write_file(argv[3], ts);
    std::printf("muxed %zu ES bytes -> %zu TS bytes (%zu packets, %.1f%% overhead)\n",
                es.size(), ts.size(), ts.size() / ps::kTsPacketSize,
                100.0 * double(ts.size() - es.size()) / es.size());
    return 0;
  }
  if (mode == "tsdemux" || mode == "tsinfo") {
    const auto ts = read_file(argv[2]);
    const auto d = ps::demux_transport_stream(ts);
    if (mode == "tsdemux") {
      if (argc < 4) return usage(argv[0]);
      write_file(argv[3], d.video_es);
      std::printf("extracted %zu video ES bytes from %d video packets\n",
                  d.video_es.size(), d.video_packets);
    } else {
      std::printf("packets:        %d (video %d, PSI %d, ignored %d)\n",
                  d.packets, d.video_packets, d.psi_packets,
                  d.ignored_packets);
      std::printf("video PID:      0x%04X\n", d.video_pid);
      std::printf("continuity errors: %d\n", d.continuity_errors);
      if (!d.pcr.empty())
        std::printf("PCR range:      %.3f .. %.3f s\n",
                    double(d.pcr.front()) / 27e6, double(d.pcr.back()) / 27e6);
      std::printf("timestamped pictures: %zu\n", d.pts.size());
    }
    return 0;
  }
  if (mode == "mux") {
    if (argc < 4) return usage(argv[0]);
    const auto es = read_file(argv[2]);
    ps::MuxConfig cfg;
    if (argc > 4) cfg.frame_rate = std::atof(argv[4]);
    const auto program = ps::mux_program_stream(es, cfg);
    write_file(argv[3], program);
    std::printf("muxed %zu ES bytes -> %zu PS bytes (%.1f%% overhead)\n",
                es.size(), program.size(),
                100.0 * double(program.size() - es.size()) / es.size());
    return 0;
  }

  const auto program = read_file(argv[2]);
  const auto d = ps::demux_program_stream(program);

  if (mode == "demux") {
    if (argc < 4) return usage(argv[0]);
    write_file(argv[3], d.video_es);
    std::printf("extracted %zu video ES bytes from %d PES packets\n",
                d.video_es.size(), d.pes_packets);
    return 0;
  }

  if (mode == "info") {
    std::printf("packs:          %d\n", d.packs);
    std::printf("video PES:      %d\n", d.pes_packets);
    std::printf("other PES:      %d (skipped)\n", d.skipped_packets);
    std::printf("video ES bytes: %zu\n", d.video_es.size());
    if (!d.pts.empty()) {
      std::printf("first PTS:      %.3f s\n", double(d.pts.front()) / 90000.0);
      std::printf("last PTS:       %.3f s\n", double(d.pts.back()) / 90000.0);
      std::printf("timestamped pictures: %zu\n", d.pts.size());
    }
    if (!d.scr.empty())
      std::printf("SCR range:      %.3f .. %.3f s (27 MHz clock)\n",
                  double(d.scr.front()) / 27e6, double(d.scr.back()) / 27e6);
    return 0;
  }
  return usage(argv[0]);
}
