// Emit one packed wire body per protocol message type — the seed corpus for
// fuzz/fuzz_wire.cpp. Valid bodies (plus the corpus script's bit-flip
// variants of them) reach every field parser, which random bytes rarely do.
//
// Usage: wire_seed_tool <out-dir>
#include <cstdio>
#include <fstream>
#include <string>

#include "proto/wire.h"

using namespace pdw;

namespace {

void write_seed(const std::string& dir, const char* name,
                const proto::Packed& p) {
  const std::string path = dir + "/" + name + ".wire";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(p.body.data()),
            std::streamsize(p.body.size()));
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <out-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];

  proto::PictureMsg pic;
  pic.pic_index = 5;
  pic.nsid = 1;
  pic.coded = {0x00, 0x00, 0x01, 0x00, 0x12, 0x34, 0x56, 0x78};
  write_seed(dir, "picture", proto::pack(pic));

  proto::SpMsg sp;
  sp.pic_index = 5;
  sp.tile = 2;
  sp.subpicture = mem::Bytes::filled(64, 0xA5);
  core::MeiInstruction send;
  send.op = core::MeiOp::kSend;
  send.mb_x = 3;
  send.mb_y = 4;
  send.peer = 1;
  sp.mei.push_back(send);
  sp.mei.push_back(core::make_conceal(1, 2, 0x80, 0x70, 0x60));
  write_seed(dir, "subpicture", proto::pack(sp));

  proto::GoAheadAck ack;
  ack.pic_index = 6;
  write_seed(dir, "goahead", proto::pack(ack));

  proto::ExchangeMsg ex;
  ex.pic_index = 5;
  ex.src_tile = 1;
  ex.dst_tile = 2;
  proto::ExchangeEntry e;
  e.instr.op = core::MeiOp::kRecv;
  e.instr.mb_x = 7;
  e.instr.mb_y = 8;
  e.instr.peer = 1;
  for (size_t i = 0; i < sizeof(e.px.y); ++i) e.px.y[i] = uint8_t(i);
  ex.entries.push_back(e);
  write_seed(dir, "exchange", proto::pack(ex));

  write_seed(dir, "end_of_stream", proto::pack(proto::EndOfStream{}));
  write_seed(dir, "heartbeat", proto::pack(proto::Heartbeat{3, 0}));
  write_seed(dir, "finished", proto::pack(proto::Finished{2, 0}));

  proto::DeathNotice dn;
  dn.dead_tile = 1;
  dn.adopter_tile = 3;
  dn.resync_pic = 12;
  write_seed(dir, "death_notice", proto::pack(dn));
  dn.adopter_tile = proto::kNoTile;
  write_seed(dir, "death_degraded", proto::pack(dn));

  write_seed(dir, "skip", proto::pack(proto::SkipBroadcast{4, 1, 0}));
  return 0;
}
