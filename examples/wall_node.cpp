// wall_node: one OS process per wall node — the paper's actual deployment
// shape. Every process is launched with its node id, the shared wall
// parameters and the rendezvous address; node 0 (the root) additionally
// hosts the UDP rendezvous listener that hands every process the full
// node -> endpoint map. The processes then run exactly the hosts the
// in-process engines run (core/hosts.h), over per-process SocketFabrics.
//
// The test stream is generated deterministically inside every process from
// the shared (width, height, scene, seed, frames) parameters — same binary,
// same encoder, same bytes — so no stream file has to be distributed.
//
// Each process writes a report file: its wire accounting (recorded at emit,
// so summing the per-process reports reconstructs the global accounting),
// its transport stats, and — for decoders — an FNV-1a digest of every
// displayed tile frame. A final `--check` invocation merges the reports and
// compares them against the lockstep reference engine: same message counts,
// same data-plane traffic matrix, bit-identical decoded tiles.
//
//   wall_node --node 3 --k 2 --m 2 --n 2 --rv-port 47313 --report /tmp/r3
//   wall_node --check --k 2 --m 2 --n 2 --reports /tmp/r0 /tmp/r1 ...
//
// Impairment (--loss/--dup/--delay, root only) routes every fabric datagram
// through the deterministic UDP impairment proxy: the rendezvous listener
// hands out the proxy's front addresses instead of the real endpoints.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timing.h"
#include "core/hosts.h"
#include "core/lockstep.h"
#include "core/pipeline.h"
#include "core/root_splitter.h"
#include "enc/encoder.h"
#include "mem/pool.h"
#include "net/impair.h"
#include "net/rendezvous.h"
#include "net/socket_fabric.h"
#include "obs/flight.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "video/generator.h"
#include "wall/geometry.h"

namespace {

using pdw::core::HostShared;
using pdw::core::TileDisplayInfo;

struct Options {
  bool check = false;
  int node = -1;
  int k = 1, m = 2, n = 2, overlap = 0;
  int width = 192, height = 128, frames = 12;
  int scene = 0;        // video::SceneKind
  uint64_t seed = 3;    // scene generator seed
  uint16_t rv_port = 0;
  std::string report;
  std::vector<std::string> reports;
  double loss = 0, dup = 0, delay = 0, delay_s = 0.002;
  uint64_t impair_seed = 1;
  double timeout_s = 30;
  double linger_s = 1.0;
  uint16_t telemetry_port = 0;  // 0: sideband off
  double telemetry_interval_s = 0.2;
  std::string flight_dir;   // non-empty: per-node flight recorder on
  double hb_timeout_s = 0;  // 0: protocol default (effectively infinite)
  // Chaos hook: raise SIGTERM after this many displayed tile-pictures
  // (decoders only; 0 = never). Deterministic "node killed mid-run" for the
  // obs-smoke flight-recorder leg.
  int die_after = 0;
};

int usage() {
  std::fprintf(
      stderr,
      "wall_node --node N --k K --m M --n N [--overlap O]\n"
      "          [--width W --height H --frames F --scene S --seed X]\n"
      "          --rv-port P --report FILE\n"
      "          [--loss p --dup p --delay p --delay-s s --impair-seed X]\n"
      "          [--timeout s --linger s]\n"
      "          [--telemetry-port P --telemetry-interval s]\n"
      "          [--flight-dir DIR --hb-timeout s --die-after N]\n"
      "wall_node --check --k K --m M --n N [...stream args]\n"
      "          --reports FILE...\n");
  return 2;
}

bool parse(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--check") {
      o->check = true;
    } else if (a == "--reports") {
      while (i + 1 < argc && argv[i + 1][0] != '-')
        o->reports.push_back(argv[++i]);
    } else {
      const char* v = next();
      if (!v) return false;
      if (a == "--node") o->node = std::atoi(v);
      else if (a == "--k") o->k = std::atoi(v);
      else if (a == "--m") o->m = std::atoi(v);
      else if (a == "--n") o->n = std::atoi(v);
      else if (a == "--overlap") o->overlap = std::atoi(v);
      else if (a == "--width") o->width = std::atoi(v);
      else if (a == "--height") o->height = std::atoi(v);
      else if (a == "--frames") o->frames = std::atoi(v);
      else if (a == "--scene") o->scene = std::atoi(v);
      else if (a == "--seed") o->seed = uint64_t(std::atoll(v));
      else if (a == "--rv-port") o->rv_port = uint16_t(std::atoi(v));
      else if (a == "--report") o->report = v;
      else if (a == "--loss") o->loss = std::atof(v);
      else if (a == "--dup") o->dup = std::atof(v);
      else if (a == "--delay") o->delay = std::atof(v);
      else if (a == "--delay-s") o->delay_s = std::atof(v);
      else if (a == "--impair-seed") o->impair_seed = uint64_t(std::atoll(v));
      else if (a == "--timeout") o->timeout_s = std::atof(v);
      else if (a == "--linger") o->linger_s = std::atof(v);
      else if (a == "--telemetry-port")
        o->telemetry_port = uint16_t(std::atoi(v));
      else if (a == "--telemetry-interval")
        o->telemetry_interval_s = std::atof(v);
      else if (a == "--flight-dir") o->flight_dir = v;
      else if (a == "--hb-timeout") o->hb_timeout_s = std::atof(v);
      else if (a == "--die-after") o->die_after = std::atoi(v);
      else return false;
    }
  }
  return true;
}

std::vector<uint8_t> make_stream(const Options& o) {
  pdw::enc::EncoderConfig cfg;
  cfg.width = o.width;
  cfg.height = o.height;
  cfg.gop_size = 8;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.4;
  cfg.me_range = 15;
  const auto gen = pdw::video::make_scene(pdw::video::SceneKind(o.scene),
                                          o.width, o.height, o.seed);
  pdw::enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(
      o.frames, [&](int i, pdw::mpeg2::Frame* f) { gen->render(i, f); });
}

uint64_t fnv1a64(const uint8_t* p, size_t len, uint64_t h) {
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t digest_plane(const pdw::mpeg2::Plane& pl, uint64_t h) {
  for (int y = 0; y < pl.height(); ++y)
    h = fnv1a64(pl.row(y), size_t(pl.width()), h);
  return h;
}

uint64_t digest_tile(const pdw::mpeg2::TileFrame& tf) {
  uint64_t h = 1469598103934665603ull;
  h = digest_plane(tf.y(), h);
  h = digest_plane(tf.cb(), h);
  h = digest_plane(tf.cr(), h);
  return h;
}

// (tile, display_index) -> digest, the unit of the bit-exactness gate.
using DigestMap = std::map<std::pair<int, int>, uint64_t>;

void write_report(const std::string& path, int node, int nodes,
                  const HostShared& shared, const pdw::net::ReliableStats& rs,
                  const DigestMap& digests) {
  std::ofstream f(path, std::ios::trunc);
  f << "pdw-wallnode-report 1\n";
  f << "node " << node << " nodes " << nodes << "\n";
  f << "stats " << rs.sent << " " << rs.retransmits << " " << rs.abandoned
    << " " << rs.delivered << " " << rs.rtt_samples << "\n";
  f << "degraded " << shared.degraded.load() << "\n";
  for (const auto& [type, count] : shared.acct.counts)
    f << "count " << int(type) << " " << count << "\n";
  for (int s = 0; s < nodes; ++s)
    for (int d = 0; d < nodes; ++d)
      if (const uint64_t b = shared.acct.traffic.at(s, d))
        f << "traffic " << s << " " << d << " " << b << "\n";
  for (const auto& [key, h] : digests)
    f << "digest " << key.first << " " << key.second << " " << h << "\n";
  f << "end\n";
}

struct Merged {
  pdw::proto::WireAccounting acct;
  pdw::net::ReliableStats stats;
  DigestMap digests;
  uint64_t degraded = 0;
  bool ok = true;
};

Merged merge_reports(const std::vector<std::string>& paths, int nodes) {
  Merged mg;
  mg.acct.reset(nodes);
  for (const std::string& path : paths) {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "check: cannot read report %s\n", path.c_str());
      mg.ok = false;
      continue;
    }
    std::string line;
    bool ended = false;
    while (std::getline(f, line)) {
      std::istringstream is(line);
      std::string tag;
      is >> tag;
      if (tag == "stats") {
        pdw::net::ReliableStats rs;
        is >> rs.sent >> rs.retransmits >> rs.abandoned >> rs.delivered >>
            rs.rtt_samples;
        mg.stats.sent += rs.sent;
        mg.stats.retransmits += rs.retransmits;
        mg.stats.abandoned += rs.abandoned;
        mg.stats.delivered += rs.delivered;
        mg.stats.rtt_samples += rs.rtt_samples;
      } else if (tag == "degraded") {
        uint64_t d = 0;
        is >> d;
        mg.degraded += d;
      } else if (tag == "count") {
        int type = 0;
        uint64_t c = 0;
        is >> type >> c;
        mg.acct.counts[pdw::proto::MsgType(type)] += c;
      } else if (tag == "traffic") {
        int s = 0, d = 0;
        uint64_t b = 0;
        is >> s >> d >> b;
        mg.acct.traffic.add(s, d, b);
      } else if (tag == "digest") {
        int tile = 0, display = 0;
        uint64_t h = 0;
        is >> tile >> display >> h;
        auto [it, inserted] = mg.digests.emplace(
            std::make_pair(tile, display), h);
        if (!inserted && it->second != h) {
          std::fprintf(stderr,
                       "check: conflicting digests for tile %d display %d\n",
                       tile, display);
          mg.ok = false;
        }
      } else if (tag == "end") {
        ended = true;
      }
    }
    if (!ended) {
      std::fprintf(stderr, "check: truncated report %s\n", path.c_str());
      mg.ok = false;
    }
  }
  return mg;
}

// Merge the per-process reports and compare against the lockstep reference:
// identical protocol message counts, identical data-plane traffic matrix
// (recorded at emit in both engines, so retransmissions don't perturb it),
// and bit-identical decoded tile pixels.
int run_check(const Options& o) {
  const pdw::wall::TileGeometry geo(o.width, o.height, o.m, o.n, o.overlap);
  const pdw::proto::Topology topo{o.k, geo.tiles()};
  const int nodes = topo.nodes();
  if (int(o.reports.size()) != nodes) {
    std::fprintf(stderr, "check: expected %d reports, got %zu\n", nodes,
                 o.reports.size());
    return 1;
  }
  Merged mg = merge_reports(o.reports, nodes);

  const std::vector<uint8_t> es = make_stream(o);
  pdw::core::LockstepPipeline reference(geo, o.k, es);
  DigestMap expected;
  reference.run(
      [&](int tile, const pdw::mpeg2::TileFrame& tf,
          const TileDisplayInfo& info) {
        expected[{tile, info.display_index}] = digest_tile(tf);
      },
      nullptr);
  const pdw::proto::WireAccounting& ref = reference.accounting();

  bool ok = mg.ok;
  for (const auto& [type, count] : ref.counts) {
    const auto it = mg.acct.counts.find(type);
    const uint64_t got = it == mg.acct.counts.end() ? 0 : it->second;
    if (got != count) {
      std::fprintf(stderr, "check: msg type %d count %llu != expected %llu\n",
                   int(type), (unsigned long long)got,
                   (unsigned long long)count);
      ok = false;
    }
  }
  if (mg.acct.counts.size() != ref.counts.size()) {
    std::fprintf(stderr, "check: extra message types in merged accounting\n");
    ok = false;
  }
  for (int s = 0; s < nodes; ++s)
    for (int d = 0; d < nodes; ++d)
      if (mg.acct.traffic.at(s, d) != ref.traffic.at(s, d)) {
        std::fprintf(stderr,
                     "check: traffic[%d][%d] = %llu != expected %llu\n", s, d,
                     (unsigned long long)mg.acct.traffic.at(s, d),
                     (unsigned long long)ref.traffic.at(s, d));
        ok = false;
      }
  if (mg.digests != expected) {
    std::fprintf(stderr, "check: digest sets differ (%zu vs %zu entries)\n",
                 mg.digests.size(), expected.size());
    for (const auto& [key, h] : expected) {
      const auto it = mg.digests.find(key);
      if (it == mg.digests.end())
        std::fprintf(stderr, "  missing tile %d display %d\n", key.first,
                     key.second);
      else if (it->second != h)
        std::fprintf(stderr, "  mismatch tile %d display %d\n", key.first,
                     key.second);
    }
    ok = false;
  }
  if (mg.degraded != 0) {
    std::fprintf(stderr, "check: %llu degraded frames (expected 0)\n",
                 (unsigned long long)mg.degraded);
    ok = false;
  }
  if (mg.stats.sent < mg.stats.retransmits + mg.stats.abandoned) {
    std::fprintf(stderr, "check: inconsistent transport stats\n");
    ok = false;
  }
  std::printf(
      "wall_node check: %s (%d nodes, %zu tiles digested, "
      "%llu msgs sent, %llu retransmits)\n",
      ok ? "PASS" : "FAIL", nodes, mg.digests.size(),
      (unsigned long long)mg.stats.sent,
      (unsigned long long)mg.stats.retransmits);
  return ok ? 0 : 1;
}

int run_node(const Options& o) {
  const pdw::wall::TileGeometry geo(o.width, o.height, o.m, o.n, o.overlap);
  const pdw::proto::Topology topo{o.k, geo.tiles()};
  const int nodes = topo.nodes();
  if (o.node < 0 || o.node >= nodes || o.report.empty() || o.rv_port == 0)
    return usage();

  // Observability sideband, all off by default. The tracer is global and the
  // hosts stamp spans with their node id, so a single-node process's spans
  // carry exactly this node's pid in the merged trace.
  if (o.telemetry_port != 0 && !pdw::obs::Tracer::global().enabled())
    pdw::obs::Tracer::global().enable(size_t(1) << 15);
  if (!o.flight_dir.empty()) {
    pdw::obs::FlightRecorder::Config fc;
    fc.dir = o.flight_dir;
    fc.node = o.node;
    pdw::obs::FlightRecorder::global().configure(fc);
    pdw::obs::FlightRecorder::install_signal_handlers();
  }
  std::unique_ptr<pdw::obs::TelemetryExporter> telemetry;
  if (o.telemetry_port != 0) {
    pdw::obs::TelemetryExporterConfig tc;
    tc.collector = {pdw::obs::kTelemetryLoopbackIp, o.telemetry_port};
    tc.interval_s = o.telemetry_interval_s;
    tc.k = uint16_t(o.k);
    tc.tiles = uint16_t(geo.tiles());
    tc.nodes = uint16_t(nodes);
    tc.hosted = {uint16_t(o.node)};
    telemetry = std::make_unique<pdw::obs::TelemetryExporter>(tc);
    telemetry->start();
  }

  const std::vector<uint8_t> es = make_stream(o);
  pdw::core::RootSplitter root(es);
  const int total_pictures = root.picture_count();
  {
    size_t max_pic = 0;
    for (int i = 0; i < total_pictures; ++i)
      max_pic = std::max(max_pic, root.picture(i).size());
    pdw::mem::BufferPool::wire().prewarm(max_pic * 2,
                                         2 * nodes + geo.tiles() + 8);
  }

  const pdw::core::ProtocolConfig cfg;
  pdw::net::SocketFabric fabric(o.node, nodes);
  pdw::net::RendezvousConfig rv_cfg;
  rv_cfg.timeout_s = o.timeout_s;

  // The root hosts the rendezvous listener on the well-known port. With
  // impairment requested, the listener hands out the impairment proxy's
  // front addresses instead of the real endpoints — every process
  // (including the root itself, which joins like everyone else) then sends
  // through the lossy path.
  std::unique_ptr<pdw::net::RendezvousServer> rv;
  std::unique_ptr<pdw::net::ImpairProxy> proxy;
  if (o.node == topo.root()) {
    rv = std::make_unique<pdw::net::RendezvousServer>(nodes, o.rv_port);
    if (o.loss > 0 || o.dup > 0 || o.delay > 0) {
      pdw::net::ImpairConfig ic;
      ic.seed = o.impair_seed;
      ic.loss = o.loss;
      ic.dup = o.dup;
      ic.delay = o.delay;
      ic.delay_s = o.delay_s;
      rv->set_map_transform(
          [&proxy, ic](const std::vector<pdw::net::Endpoint>& real) {
            proxy = std::make_unique<pdw::net::ImpairProxy>(real, ic);
            return proxy->proxied();
          });
    }
    rv->serve_async(rv_cfg);
  }

  HostShared shared;
  shared.ep_stats.resize(size_t(nodes));
  shared.acct.reset(nodes);
  std::mutex display_mu;
  DigestMap digests;
  pdw::WallTimer timer;

  // Credits are receiver-local state: post them before the peer map even
  // exists so the first inbound picture never finds the mailbox empty.
  if (o.node != topo.root()) {
    fabric.post_receive(o.node);
    fabric.post_receive(o.node);
  }

  std::vector<pdw::net::Endpoint> peers;
  const pdw::net::Endpoint server{pdw::net::kLoopbackIp, o.rv_port};
  if (pdw::net::rendezvous_join(server, o.node, fabric.local_endpoint(),
                                nodes, &peers,
                                rv_cfg) != pdw::net::RendezvousStatus::kOk) {
    std::fprintf(stderr, "node %d: rendezvous timeout\n", o.node);
    return 3;
  }
  fabric.set_peers(peers);

  std::vector<pdw::proto::PictureMeta> metas{size_t(total_pictures)};
  for (int i = 0; i < total_pictures; ++i)
    metas[size_t(i)].has_gop_header = root.span(i).has_gop_header;

  pdw::net::ReliableStats final_stats;
  if (o.node == topo.root()) {
    if (rv->result() != pdw::net::RendezvousStatus::kOk) {
      std::fprintf(stderr, "root: rendezvous listener timed out\n");
      return 3;
    }
    pdw::proto::RootNode::Options ro;
    ro.heartbeat_timeout_s =
        o.hb_timeout_s > 0 ? o.hb_timeout_s : cfg.heartbeat_timeout_s;
    // No coordinator process: the root leaves as soon as every decoder
    // reported (root_stop raised up front).
    shared.root_stop.store(true);
    pdw::core::RootHost host(&fabric, &shared, &timer, &root, topo,
                             cfg.reliable, ro, std::move(metas), nullptr);
    host.run();
    // Absorb the tail: keep t-acking peers' retransmissions for the linger
    // window so nobody retries into a vanished mailbox.
    pdw::WallTimer linger;
    while (linger.seconds() < o.linger_s) {
      pdw::net::Message m;
      if (host.ep.recv(&m, 0.02) ==
          pdw::net::ReliableEndpoint::Status::kShutdown)
        break;
    }
    final_stats = host.ep.stats();
  } else if (o.node <= o.k) {
    const int s = o.node - 1;
    std::thread th([&] {
      pdw::core::SplitterHost host(&fabric, &shared, topo, s, cfg.reliable,
                                   geo, root.stream_info(), nullptr);
      host.run();
    });
    while (shared.splitters_done.load(std::memory_order_acquire) < 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::this_thread::sleep_for(
        std::chrono::milliseconds(int(o.linger_s * 1000)));
    fabric.shutdown();
    th.join();
    final_stats = shared.ep_stats[size_t(o.node)];
  } else {
    const int tile = topo.tile_of(o.node);
    int displayed = 0;
    pdw::core::TileDisplayFn on_display =
        [&](int t, const pdw::mpeg2::TileFrame& tf,
            const TileDisplayInfo& info) {
          digests[{t, info.display_index}] = digest_tile(tf);
          // Chaos hook: die mid-run via the real fatal-signal path, so the
          // flight recorder's handler writes the post-mortem dump.
          if (o.die_after > 0 && ++displayed >= o.die_after)
            std::raise(SIGTERM);
        };
    std::thread th([&] {
      pdw::proto::DecoderNode::Options dopts;
      dopts.heartbeat_interval_s = cfg.heartbeat_interval_s;
      dopts.total_pictures = uint32_t(total_pictures);
      pdw::core::DecoderHost host(&fabric, &shared, &timer, topo, tile,
                                  cfg.reliable, geo, root.stream_info(),
                                  on_display, &display_mu, dopts, nullptr);
      host.run(uint32_t(total_pictures));
    });
    while (shared.decoders_done.load(std::memory_order_acquire) < 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::this_thread::sleep_for(
        std::chrono::milliseconds(int(o.linger_s * 1000)));
    fabric.shutdown();
    th.join();
    final_stats = shared.ep_stats[size_t(o.node)];
  }

  fabric.shutdown();
  if (proxy) proxy->stop();
  if (telemetry) telemetry->stop();  // final flush + Bye, after all spans
  write_report(o.report, o.node, nodes, shared, final_stats, digests);
  std::printf("node %d done: %llu sent, %llu retransmits, %.2fs\n", o.node,
              (unsigned long long)final_stats.sent,
              (unsigned long long)final_stats.retransmits, timer.seconds());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, &o)) return usage();
  if (o.check) return run_check(o);
  return run_node(o);
}
