// Stream inspector: parse an MPEG-2 video elementary stream (or one of the
// built-in catalog streams) and print its structure — sequence parameters,
// GOPs, per-picture type/size/temporal-reference, and summary statistics.
// This is the kind of tool an operator of the wall uses to sanity-check
// material before scheduling it.
//
// Usage:
//   m2v_info <file.m2v>          inspect a file
//   m2v_info --stream <id>       inspect catalog stream <id> (generated)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "bitstream/start_code.h"
#include "common/text_table.h"
#include "mpeg2/headers.h"
#include "video/catalog.h"

using namespace pdw;

namespace {

std::vector<uint8_t> read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<uint8_t> es;
  std::string source;
  if (argc >= 3 && std::strcmp(argv[1], "--stream") == 0) {
    const auto& spec = video::stream_by_id(std::atoi(argv[2]));
    es = video::load_stream(spec, video::default_frame_count());
    source = "catalog stream " + std::to_string(spec.id) + " (" + spec.name + ")";
  } else if (argc >= 2) {
    es = read_file(argv[1]);
    source = argv[1];
  } else {
    std::fprintf(stderr, "usage: %s <file.m2v> | --stream <id>\n", argv[0]);
    return 1;
  }

  std::printf("source: %s (%zu bytes)\n\n", source.c_str(), es.size());

  const auto spans = scan_pictures(es);
  mpeg2::SequenceHeader seq;
  bool have_seq = false;
  std::map<mpeg2::PicType, int> type_count;
  std::map<mpeg2::PicType, size_t> type_bytes;
  int gops = 0;
  int damaged = 0;

  TextTable table({"#", "type", "tref", "bytes", "f_code", "q_type", "scan",
                   "seq", "gop"});
  for (size_t i = 0; i < spans.size(); ++i) {
    const PictureSpan& ps = spans[i];
    mpeg2::ParsedPictureHeaders headers;
    const auto span = std::span<const uint8_t>(es).subspan(ps.begin,
                                                           ps.end - ps.begin);
    const DecodeStatus hs =
        mpeg2::parse_picture_headers(span, &seq, &have_seq, &headers);
    if (!hs.ok()) {
      ++damaged;
      if (i < 40)
        table.add_row({format("%zu", i), "??", "", format("%zu", ps.end - ps.begin),
                       "", "", "", ps.has_sequence_header ? "*" : "",
                       ps.has_gop_header ? "*" : ""});
      continue;
    }
    if (headers.had_gop_header) ++gops;
    ++type_count[headers.ph.type];
    type_bytes[headers.ph.type] += ps.end - ps.begin;
    if (i < 40) {  // keep the per-picture table readable
      table.add_row({format("%zu", i), mpeg2::pic_type_name(headers.ph.type),
                     format("%d", headers.ph.temporal_reference),
                     format("%zu", ps.end - ps.begin),
                     format("%d", headers.pce.f_code[0][0]),
                     headers.pce.q_scale_type ? "nonlin" : "linear",
                     headers.pce.alternate_scan ? "alt" : "zigzag",
                     ps.has_sequence_header ? "*" : "",
                     ps.has_gop_header ? "*" : ""});
    }
  }

  if (have_seq) {
    std::printf("sequence: %dx%d, %.3f fps, %s, intra matrix %s\n",
                seq.width, seq.height, seq.frame_rate(),
                seq.progressive_sequence ? "progressive" : "interlaced",
                seq.loaded_intra_quant ? "custom" : "default");
  }
  std::printf("pictures: %zu in %d GOPs\n", spans.size(), gops);
  if (damaged > 0)
    std::printf("damaged pictures (undecodable headers): %d\n", damaged);
  std::printf("\n");
  table.print(stdout);
  if (spans.size() > 40)
    std::printf("... (%zu more pictures)\n", spans.size() - 40);

  std::printf("\nper-type summary:\n");
  for (const auto& [type, count] : type_count) {
    std::printf("  %s: %d pictures, avg %.0f bytes\n",
                mpeg2::pic_type_name(type), count,
                double(type_bytes[type]) / count);
  }
  const double pixels = double(seq.width) * seq.height;
  std::printf("average bpp: %.3f\n",
              double(es.size()) * 8.0 / (pixels * double(spans.size())));
  return 0;
}
