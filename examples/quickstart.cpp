// Quickstart: the whole system in one small program.
//
//   1. Synthesize a short video and compress it with the bundled MPEG-2
//      encoder.
//   2. Play it through the threaded 1-2-(2,2) hierarchical parallel decoder
//      (real concurrent nodes exchanging messages over the GM-like fabric).
//   3. Re-assemble the wall image from the four tiles and verify it is
//      bit-exact with a plain serial decode.
//   4. Save the first assembled frame as quickstart_frame0.ppm.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <map>

#include "core/pipeline.h"
#include "enc/encoder.h"
#include "examples/example_util.h"
#include "mpeg2/decoder.h"
#include "video/generator.h"
#include "wall/assembler.h"

using namespace pdw;

int main() {
  // --- 1. Make a stream ------------------------------------------------------
  const int width = 640, height = 480, frames = 24;
  enc::EncoderConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.target_bpp = 0.35;
  const auto scene =
      video::make_scene(video::SceneKind::kMovingObjects, width, height, 7);
  enc::EncodeStats enc_stats;
  enc::Mpeg2Encoder encoder(cfg);
  const std::vector<uint8_t> es = encoder.encode(
      frames, [&](int i, mpeg2::Frame* f) { scene->render(i, f); },
      &enc_stats);
  std::printf("encoded %d frames: %zu bytes (%.2f bpp), %d skipped MBs\n",
              frames, es.size(), enc_stats.avg_bpp(width, height),
              enc_stats.skipped_mbs);

  // --- 2+3. Parallel decode on a 2x2 wall with 2 splitters -------------------
  wall::TileGeometry geo(width, height, 2, 2, /*overlap=*/40);
  core::ClusterPipeline pipeline(geo, /*k=*/2, es);

  struct Pending {
    std::unique_ptr<wall::WallAssembler> assembler;
    int tiles = 0;
  };
  std::map<int, Pending> pending;
  std::map<int, mpeg2::Frame> wall_frames;
  const auto stats = pipeline.run([&](int tile, const mpeg2::TileFrame& tf,
                                      const core::TileDisplayInfo& info) {
    Pending& p = pending[info.display_index];
    if (!p.assembler) p.assembler = std::make_unique<wall::WallAssembler>(geo);
    p.assembler->add_tile(tile, tf);
    if (++p.tiles == geo.tiles()) {
      p.assembler->check_coverage();
      wall_frames.emplace(info.display_index, p.assembler->frame());
      pending.erase(info.display_index);
    }
  });
  std::printf("parallel pipeline: %d pictures on %d nodes\n", stats.pictures,
              stats.nodes);

  // Serial reference decode.
  int mismatches = 0;
  int index = 0;
  mpeg2::Mpeg2Decoder serial;
  serial.decode(es, [&](const mpeg2::Frame& f,
                        const mpeg2::DecodedPictureInfo&) {
    const auto it = wall_frames.find(index++);
    if (it == wall_frames.end() ||
        wall::crop_frame(f, width, height) !=
            wall::crop_frame(it->second, width, height))
      ++mismatches;
  });
  std::printf("bit-exactness vs serial decoder: %s (%d/%d frames)\n",
              mismatches == 0 ? "PASS" : "FAIL", index - mismatches, index);

  // Traffic summary.
  uint64_t total = 0;
  for (const auto& c : stats.node_counters) total += c.sent_bytes;
  std::printf("total network traffic: %.2f MB (%.1f KB/frame)\n",
              double(total) / 1e6, double(total) / 1e3 / frames);

  // --- 4. Snapshot ------------------------------------------------------------
  if (!wall_frames.empty() &&
      examples::write_ppm(wall::crop_frame(wall_frames.begin()->second, width,
                                           height),
                          "quickstart_frame0.ppm"))
    std::printf("wrote quickstart_frame0.ppm\n");

  return mismatches == 0 ? 0 : 1;
}
