// Ablation (paper §4.4): zero-copy posted-receive transfers vs copy-through
// messaging.
//
// With GM's posted receive buffers and the two-buffer ack protocol, neither
// sender nor receiver copies message payloads. A conventional messaging
// layer copies at least once on each side. This bench measures this host's
// memcpy bandwidth and charges the copy time to the nodes' critical paths,
// then compares simulated frame rates.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "common/timing.h"
#include "common/text_table.h"
#include "core/config.h"

using namespace pdw;

namespace {

// Measured memcpy bandwidth (bytes/second) for message-sized buffers.
double memcpy_bandwidth() {
  std::vector<uint8_t> src(4 << 20, 0xAB), dst(4 << 20);
  WallTimer t;
  size_t total = 0;
  while (t.seconds() < 0.2) {
    std::memcpy(dst.data(), src.data(), src.size());
    total += src.size();
  }
  return double(total) / t.seconds();
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Ablation — zero-copy transfers vs copy-through messaging",
      "IPDPS'02 paper, Section 4.4 / Figure 5",
      "posted receive buffers remove per-message memcpy from splitter and "
      "decoder critical paths");

  const double bw_host = memcpy_bandwidth();
  std::printf("host memcpy bandwidth: %.1f GB/s\n", bw_host / 1e9);

  TextTable table({"stream", "config", "memcpy GB/s", "fps zero-copy",
                   "fps copy-through", "slowdown"});
  // Evaluate with this host's memcpy and with a 2001-era PC's (~0.3 GB/s,
  // PC133 SDRAM) — the environment the paper designed for.
  for (double bw : {bw_host, 0.3e9})
  for (int id : {8, 16}) {
    const video::StreamSpec& spec = video::stream_by_id(id);
    const auto es = benchutil::stream(id);
    wall::TileGeometry geo(spec.width, spec.height, spec.tiles_m, spec.tiles_n,
                           benchutil::kOverlap);
    auto traces = benchutil::collect_traces(es, geo);
    const auto costs = sim::measure_costs(traces);
    sim::SimParams p;
    p.two_level = true;
    p.k = core::choose_k(costs.t_split, costs.t_decode);
    p.link = benchutil::default_link();
    const auto r_zero = sim::simulate_cluster(traces, geo, p);

    // Copy-through: each message is copied once at the sender and once at
    // the receiver. Charge the splitter for picture-in + SPs-out, and each
    // decoder for its SP-in + exchanges in/out.
    auto traces_copy = traces;
    const int T = geo.tiles();
    for (auto& tr : traces_copy) {
      double sp_total = 0;
      for (size_t t = 0; t < tr.sp_msg_bytes.size(); ++t)
        sp_total += double(tr.sp_msg_bytes[t]);
      tr.split_s += (2.0 * tr.picture_bytes + sp_total) / bw;
      tr.copy_s += tr.picture_bytes / bw;  // root-side extra copy
      for (int t = 0; t < T; ++t) {
        double exch = 0;
        for (int d = 0; d < T; ++d)
          exch += double(tr.exchange_bytes.at(t, d)) +
                  double(tr.exchange_bytes.at(d, t));
        tr.decode_s[size_t(t)] +=
            (double(tr.sp_msg_bytes[size_t(t)]) + exch) / bw;
      }
    }
    const auto r_copy = sim::simulate_cluster(traces_copy, geo, p);
    table.add_row({spec.name,
                   benchutil::config_name(p.k, spec.tiles_m, spec.tiles_n,
                                          true),
                   format("%.1f", bw / 1e9),
                   format("%.1f", r_zero.fps), format("%.1f", r_copy.fps),
                   format("%.2fx", r_zero.fps / r_copy.fps)});
    benchutil::json_metric(
        format("ablation_zerocopy_%s_speedup", spec.name.c_str()),
        r_zero.fps / r_copy.fps, "x");
  }
  table.print(stdout);
  std::printf(
      "\n(Zero-copy barely matters at modern memcpy bandwidth; at the "
      "paper's ~0.3 GB/s it is a real win — its motivation.)\n");
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  return 0;
}
