// Ablation (paper §4.4): zero-copy pooled buffers vs copy-through messaging,
// measured on the real threaded pipeline — not modeled.
//
// With GM's posted receive buffers and the two-buffer ack protocol, neither
// sender nor receiver copies message payloads. This codebase's analog is the
// mem::Bytes subsystem: one pooled allocation per picture body, with the
// splitter's sub-picture payloads, the packed SpMsg bodies and the decoder's
// run payloads all refcounted views over pooled blocks. The "static" leg
// disables pooling AND degrades every view to a deep copy (every wire body
// is a fresh heap malloc, every hop re-copies its payload — the
// copy-through era's dataflow); the "pooled" leg runs the same protocol
// with pooling and block-sharing views on. Both legs run the full threaded
// ClusterPipeline after warm-up passes, interleaved so host-load drift
// lands on both sides, so the fps delta is real copy/alloc elimination.
//
// The pooled leg also reports the PR's acceptance gate: steady-state pool
// misses per picture (each miss is one hot-path malloc) — must be 0.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "core/pipeline.h"
#include "mem/pool.h"
#include "obs/metrics.h"

using namespace pdw;

namespace {

struct Leg {
  double fps = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  int pictures = 0;
  double allocs_per_pic = 0;
  uint64_t p99_split_ns = 0;
  uint64_t p99_decode_ns = 0;
};

struct Pair {
  Leg stat, pool;
};

// Histogram bucket totals (lower bound -> count) for one family, summed
// across all node labels. Differences of two collections give a per-leg
// latency distribution at the registry's log2 bucket resolution.
using Buckets = std::map<uint64_t, uint64_t>;

Buckets family_buckets(const char* family) {
  Buckets out;
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  for (const obs::MetricValue& v : snap.values)
    if (v.kind == obs::MetricKind::kHistogram && v.family == family)
      for (const auto& [lo, n] : v.buckets) out[lo] += n;
  return out;
}

void add_delta(const Buckets& before, const Buckets& after, Buckets* into) {
  for (const auto& [lo, n] : after) {
    const auto it = before.find(lo);
    const uint64_t prev = it == before.end() ? 0 : it->second;
    if (n > prev) (*into)[lo] += n - prev;
  }
}

uint64_t p99_of(const Buckets& buckets) {
  uint64_t total = 0;
  for (const auto& [lo, n] : buckets) total += n;
  if (total == 0) return 0;
  const uint64_t target = (total * 99 + 99) / 100;
  uint64_t seen = 0;
  for (const auto& [lo, n] : buckets) {
    seen += n;
    if (seen >= target) return lo;
  }
  return buckets.rbegin()->first;
}

double timed_run(const std::vector<uint8_t>& es, const wall::TileGeometry& geo,
                 int k, int* pictures) {
  core::ClusterPipeline pipeline(geo, k, es);
  const core::ClusterStats stats = pipeline.run(nullptr);
  if (pictures) *pictures += stats.pictures;
  return stats.fps;
}

Pair run_pair(const std::vector<uint8_t>& es, const wall::TileGeometry& geo,
              int k) {
  // Interleaved best-of-N: single threaded-pipeline runs jitter by double
  // digits on a shared host, and back-to-back legs let slow load drift
  // land entirely on one side. Alternating static/pooled runs exposes both
  // legs to the same drift; best-of-N then picks each leg's least-perturbed
  // run. The miss gate spans ALL pooled timed runs — every steady-state
  // pass must be alloc-free, not just the fastest.
  constexpr int kReps = 5;
  Pair pair;
  Buckets stat_split, stat_decode, pool_split, pool_decode;

  // One warm-up pass per mode: the pooled pass mints the working set, the
  // static pass just pages everything in so both legs measure warm.
  mem::set_pooling_enabled(false);
  mem::set_copy_through(true);
  timed_run(es, geo, k, nullptr);
  mem::set_copy_through(false);
  mem::set_pooling_enabled(true);
  timed_run(es, geo, k, nullptr);

  const auto run_one = [&](Leg* leg, Buckets* split, Buckets* decode) {
    const uint64_t miss0 = mem::BufferPool::wire().stats().misses +
                           mem::SurfacePool::global().stats().misses;
    const uint64_t hit0 = mem::BufferPool::wire().stats().hits +
                          mem::SurfacePool::global().stats().hits;
    const Buckets split0 = family_buckets(obs::family::kSplitNs);
    const Buckets decode0 = family_buckets(obs::family::kDecodeNs);
    leg->fps = std::max(leg->fps, timed_run(es, geo, k, &leg->pictures));
    leg->misses += mem::BufferPool::wire().stats().misses +
                   mem::SurfacePool::global().stats().misses - miss0;
    leg->hits += mem::BufferPool::wire().stats().hits +
                 mem::SurfacePool::global().stats().hits - hit0;
    add_delta(split0, family_buckets(obs::family::kSplitNs), split);
    add_delta(decode0, family_buckets(obs::family::kDecodeNs), decode);
  };

  for (int rep = 0; rep < kReps; ++rep) {
    // Static leg: with pooling off every alloc is a heap miss by design
    // (and every copy-through view copy allocates too), so its miss count
    // is the per-picture alloc-stall count of the copy era. Snapshotting
    // per leg keeps it out of the pooled leg's gate counters.
    mem::set_pooling_enabled(false);
    mem::set_copy_through(true);
    run_one(&pair.stat, &stat_split, &stat_decode);
    mem::set_copy_through(false);

    mem::set_pooling_enabled(true);
    run_one(&pair.pool, &pool_split, &pool_decode);
  }
  pair.stat.allocs_per_pic =
      double(pair.stat.misses) / double(pair.stat.pictures);
  pair.pool.allocs_per_pic =
      double(pair.pool.misses) / double(pair.pool.pictures);
  pair.stat.p99_split_ns = p99_of(stat_split);
  pair.stat.p99_decode_ns = p99_of(stat_decode);
  pair.pool.p99_split_ns = p99_of(pool_split);
  pair.pool.p99_decode_ns = p99_of(pool_decode);
  return pair;
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Ablation — pooled zero-copy buffers vs per-message heap allocation",
      "IPDPS'02 paper, Section 4.4 / Figure 5",
      "posted receive buffers remove per-message copies; pooled refcounted "
      "bodies remove per-message mallocs — steady state runs alloc-free");

  TextTable table({"stream", "config", "fps static", "fps pooled", "speedup",
                   "hit rate", "steady miss/pic"});
  TextTable stalls({"stream", "allocs/pic static", "allocs/pic pooled",
                    "p99 split static", "p99 split pooled", "p99 decode static",
                    "p99 decode pooled"});
  for (int id : {10, 16}) {  // nbc @ 2x2, orion4 @ 4x4
    const video::StreamSpec& spec = video::stream_by_id(id);
    const auto es = benchutil::stream(id);
    wall::TileGeometry geo(spec.width, spec.height, spec.tiles_m, spec.tiles_n,
                           benchutil::kOverlap);
    const int k = 2;

    const Pair pair = run_pair(es, geo, k);
    const Leg& stat = pair.stat;
    const Leg& pool = pair.pool;
    const double hit_rate =
        pool.hits + pool.misses
            ? double(pool.hits) / double(pool.hits + pool.misses)
            : 0.0;

    table.add_row({spec.name,
                   benchutil::config_name(k, spec.tiles_m, spec.tiles_n, true),
                   format("%.2f", stat.fps), format("%.2f", pool.fps),
                   format("%.2fx", pool.fps / stat.fps),
                   format("%.1f%%", hit_rate * 100),
                   format("%.2f", pool.allocs_per_pic)});
    stalls.add_row({spec.name, format("%.1f", stat.allocs_per_pic),
                    format("%.2f", pool.allocs_per_pic),
                    format("%.1f ms", double(stat.p99_split_ns) / 1e6),
                    format("%.1f ms", double(pool.p99_split_ns) / 1e6),
                    format("%.1f ms", double(stat.p99_decode_ns) / 1e6),
                    format("%.1f ms", double(pool.p99_decode_ns) / 1e6)});
    benchutil::json_metric(
        format("ablation_zerocopy_%s_fps_static", spec.name.c_str()), stat.fps,
        "fps");
    benchutil::json_metric(
        format("ablation_zerocopy_%s_fps_pooled", spec.name.c_str()), pool.fps,
        "fps");
    benchutil::json_metric(
        format("ablation_zerocopy_%s_speedup", spec.name.c_str()),
        pool.fps / stat.fps, "x");
    benchutil::json_metric(
        format("ablation_zerocopy_%s_pool_hit_rate", spec.name.c_str()),
        hit_rate, "ratio");
    benchutil::json_metric(
        format("ablation_zerocopy_%s_steady_misses_per_pic",
               spec.name.c_str()),
        pool.allocs_per_pic, "allocs/pic");
    benchutil::json_metric(
        format("ablation_zerocopy_%s_allocs_per_pic_static",
               spec.name.c_str()),
        stat.allocs_per_pic, "allocs/pic");
    benchutil::json_metric(
        format("ablation_zerocopy_%s_p99_decode_ms_static", spec.name.c_str()),
        double(stat.p99_decode_ns) / 1e6, "ms");
    benchutil::json_metric(
        format("ablation_zerocopy_%s_p99_decode_ms_pooled", spec.name.c_str()),
        double(pool.p99_decode_ns) / 1e6, "ms");
    benchutil::json_metric(
        format("ablation_zerocopy_%s_p99_split_ms_static", spec.name.c_str()),
        double(stat.p99_split_ns) / 1e6, "ms");
    benchutil::json_metric(
        format("ablation_zerocopy_%s_p99_split_ms_pooled", spec.name.c_str()),
        double(pool.p99_split_ns) / 1e6, "ms");
  }
  table.print(stdout);
  std::printf(
      "\n(The static leg re-copies every payload at every hop and "
      "heap-allocates every wire body; the pooled leg serves the steady "
      "state entirely from freelists — the miss/pic column is the "
      "machine-checked \"zero hot-path mallocs\" gate.)\n");
  std::printf("\nAlloc stalls & tail latency (p99 at log2 bucket "
              "resolution):\n");
  stalls.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  return 0;
}
