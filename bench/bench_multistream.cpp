// Multi-stream sessions: N independent elementary streams decoded through
// one wall, pictures interleaved round-robin (proto::StreamSession — the
// wire format's `stream` byte at work).
//
// Not a paper table: the paper decodes one stream per wall. This measures
// what the protocol layer newly supports — how aggregate throughput scales
// as one wall serves more concurrent streams — on the host CPU, where total
// decode work grows linearly with N and per-stream fps falls accordingly.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "enc/encoder.h"
#include "proto/session.h"
#include "video/generator.h"

using namespace pdw;

namespace {

std::vector<uint8_t> scene_stream(video::SceneKind scene, int w, int h,
                                  int frames, uint64_t seed) {
  enc::EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = 8;
  cfg.b_frames = 2;
  cfg.target_bpp = 0.35;
  const auto gen = video::make_scene(scene, w, h, seed);
  enc::Mpeg2Encoder encoder(cfg);
  return encoder.encode(frames,
                        [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Multi-stream sessions — aggregate throughput vs stream count",
      "beyond the paper: StreamSession over the Table-3 protocol",
      "N streams share one 2x2 wall (k=2); aggregate fps should stay near "
      "the single-stream figure (the wall is compute-bound), per-stream fps "
      "~ aggregate/N");

  const int w = 320, h = 240, k = 2;
  wall::TileGeometry geo(w, h, 2, 2, 0);

  // Distinct scenes so concurrent streams do unequal work, like a real wall
  // serving unrelated feeds.
  const int frames = std::min(24, benchutil::bench_frames());
  const video::SceneKind scenes[] = {
      video::SceneKind::kMovingObjects, video::SceneKind::kPanningTexture,
      video::SceneKind::kAnimation, video::SceneKind::kLocalizedDetail};
  std::vector<std::vector<uint8_t>> streams;
  uint64_t seed = 7;
  for (video::SceneKind scene : scenes)
    streams.push_back(scene_stream(scene, w, h, frames, seed++));

  TextTable table({"streams", "pictures", "wall (s)", "aggregate fps",
                   "per-stream fps"});
  double single_fps = 0;
  for (int n = 1; n <= int(streams.size()); ++n) {
    proto::StreamSession session(geo, k);
    for (int s = 0; s < n; ++s) session.add_stream(streams[size_t(s)]);
    const auto r = session.run(nullptr);
    if (n == 1) single_fps = r.aggregate_fps;
    table.add_row({format("%d", r.streams), format("%llu",
                   static_cast<unsigned long long>(r.pictures)),
                   format("%.3f", r.wall_seconds),
                   format("%.1f", r.aggregate_fps),
                   format("%.1f", r.aggregate_fps / n)});
    benchutil::json_metric(format("multistream_%d_aggregate_fps", n),
                           r.aggregate_fps, "fps");
  }
  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  std::printf(
      "\nExpectation: aggregate fps roughly flat vs N (within ~20%% of the "
      "1-stream %.1f fps); the session adds interleaving, not contention.\n",
      single_fps);
  return 0;
}
