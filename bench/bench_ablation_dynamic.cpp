// Ablation (paper §6 future work): static round-robin picture assignment vs
// dynamic (least-loaded) assignment of pictures to second-level splitters.
//
// MPEG-2 pictures vary widely in size and parse cost (I >> P >> B), so a
// fixed round-robin can leave splitters alternately idle and backlogged,
// especially when k does not divide the GOP pattern length. The paper names
// dynamic load balancing as future work; here both schedules run through
// the simulator on real traces.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "core/config.h"

using namespace pdw;

int main() {
  benchutil::print_banner(
      "Ablation — round-robin vs least-loaded splitter scheduling",
      "IPDPS'02 paper, Section 6 (future work)",
      "tests whether dynamic assignment absorbs I/P/B split-cost variance. "
      "Finding: with the paper's two-buffer/ANID protocol the gain is ~0 — "
      "SP delivery is already serialized per picture, so a backlogged "
      "splitter only ever delays its own next picture");

  const video::StreamSpec& spec = video::stream_by_id(16);
  const auto es = benchutil::stream(16);
  wall::TileGeometry geo(spec.width, spec.height, spec.tiles_m, spec.tiles_n,
                         benchutil::kOverlap);
  const auto traces = benchutil::collect_traces(es, geo);
  const auto costs = sim::measure_costs(traces);

  // Split-cost variance across picture types.
  RunningStat split_ms;
  for (const auto& tr : traces) split_ms.add(tr.split_s * 1e3);
  std::printf("split time per picture: mean %.2f ms, min %.2f, max %.2f\n",
              split_ms.mean(), split_ms.min(), split_ms.max());

  const int k_opt = core::choose_k(costs.t_split, costs.t_decode);
  TextTable table({"k", "fps round-robin", "fps least-loaded", "gain"});
  for (int k = 1; k <= k_opt + 1; ++k) {
    sim::SimParams p;
    p.two_level = true;
    p.k = k;
    p.link = benchutil::default_link();
    p.schedule = sim::RootSchedule::kRoundRobin;
    const auto rr = sim::simulate_cluster(traces, geo, p);
    p.schedule = sim::RootSchedule::kLeastLoaded;
    const auto ll = sim::simulate_cluster(traces, geo, p);
    table.add_row({format("%d%s", k, k == k_opt ? " (=k*)" : ""),
                   format("%.1f", rr.fps), format("%.1f", ll.fps),
                   format("%+.1f%%", 100.0 * (ll.fps / rr.fps - 1.0))});
    benchutil::json_metric(format("ablation_dynamic_k%d_gain", k),
                           100.0 * (ll.fps / rr.fps - 1.0), "%");
  }
  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  return 0;
}
