// Figure 9: send and receive bandwidth of each node, 1-4-(4,4), stream 16.
//
// The paper measures per-node network bandwidth while decoding the highest-
// resolution Orion stream on a 4x4 wall with 4 second-level splitters and
// shows that (a) the requirement is low (a few MB/s/node, well within
// commodity networks), (b) it is balanced across decoders even though the
// stream's detail is localized, and (c) a splitter's send bandwidth exceeds
// its receive bandwidth by ~20% — the SPH framing overhead.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "core/config.h"

using namespace pdw;

int main() {
  benchutil::print_banner(
      "Figure 9 — Per-Node Send/Receive Bandwidth, 1-4-(4,4), stream 16",
      "IPDPS'02 paper, Figure 9 (Section 5.6)",
      "low and balanced bandwidth across decoders; splitter send ~= 1.2x "
      "receive (SPH overhead ~20%)");

  const video::StreamSpec& spec = video::stream_by_id(16);
  const auto es = benchutil::stream(16);
  wall::TileGeometry geo(spec.width, spec.height, 4, 4, benchutil::kOverlap);
  const auto traces = benchutil::collect_traces(es, geo);

  sim::SimParams p;
  p.two_level = true;
  p.k = 4;  // the paper's 1-4-(4,4), 21 nodes total
  p.link = benchutil::default_link();
  const auto r = sim::simulate_cluster(traces, geo, p);

  TextTable table({"node", "role", "send MB/s", "recv MB/s"});
  RunningStat dec_send, dec_recv;
  double splitter_send = 0, splitter_recv = 0;
  for (int nid = 0; nid < r.nodes; ++nid) {
    std::string role;
    if (nid == 0)
      role = "root";
    else if (nid < 1 + p.k)
      role = format("splitter %d", nid - 1);
    else
      role = format("decoder %d", nid - 1 - p.k);
    const double s = r.send_bandwidth_Bps(nid) / 1e6;
    const double v = r.recv_bandwidth_Bps(nid) / 1e6;
    if (nid >= 1 + p.k) {
      dec_send.add(s);
      dec_recv.add(v);
    } else if (nid >= 1) {
      splitter_send += s;
      splitter_recv += v;
    }
    table.add_row({format("%d", nid), role, format("%.2f", s),
                   format("%.2f", v)});
  }
  table.print(stdout);

  std::printf("\nfps = %.1f  (playing %dx%d on 21 nodes)\n", r.fps,
              spec.width, spec.height);
  std::printf("decoder send: mean %.2f MB/s (min %.2f, max %.2f)\n",
              dec_send.mean(), dec_send.min(), dec_send.max());
  std::printf("decoder recv: mean %.2f MB/s (min %.2f, max %.2f)\n",
              dec_recv.mean(), dec_recv.min(), dec_recv.max());
  std::printf("splitter send/recv ratio = %.2f (SPH overhead %.0f%%)\n",
              splitter_send / splitter_recv,
              100.0 * (splitter_send / splitter_recv - 1.0));

  // The full node x node byte matrix behind the bandwidth figures.
  auto node_name = [&](int nid) {
    if (nid == 0) return std::string("root");
    if (nid < 1 + p.k) return "S" + std::to_string(nid);
    return "D" + std::to_string(nid);
  };
  std::printf("\nnode x node traffic matrix:\n");
  r.traffic_matrix.to_table(node_name).print(stdout);

  benchutil::json_metric("fig9_fps", r.fps, "fps");
  benchutil::json_metric("fig9_decoder_send_mean", dec_send.mean(), "MB/s");
  benchutil::json_metric("fig9_splitter_send_recv_ratio",
                         splitter_send / splitter_recv, "ratio");
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  return 0;
}
