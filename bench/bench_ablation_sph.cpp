// Ablation (paper §4.3): SPH verbatim byte copy vs bit realignment, and the
// size overhead SPH adds to sub-pictures.
//
// The paper copies every partial slice byte-for-byte and records a 0..7 bit
// skip in the SPH "to avoid costly bit shifting operations". The alternative
// is to re-pack each run's payload to start on a bit boundary. This bench
// measures both the real CPU cost of that re-packing on real sub-pictures
// (added splitter work -> lower splitter-bound frame rate) and the byte
// overhead SPH framing adds (the paper reports ~20% splitter send overhead).
#include <cstdio>

#include "bench/bench_util.h"
#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "common/timing.h"
#include "common/text_table.h"
#include "core/config.h"
#include "core/mb_splitter.h"
#include "core/root_splitter.h"

using namespace pdw;

namespace {

// Re-pack a run payload so it starts at bit 0 (what a realigning splitter
// would have to do for every partial slice).
std::vector<uint8_t> realign(const core::SpRun& run) {
  BitReader r(run.payload, run.skip_bits);
  BitWriter w;
  size_t bits = run.payload.size() * 8 - run.skip_bits;
  while (bits >= 24) {
    w.put(r.read(24), 24);
    bits -= 24;
  }
  if (bits) w.put(r.read(int(bits)), int(bits));
  w.align_to_byte();
  return w.take();
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Ablation — SPH verbatim copy vs bit realignment; SPH size overhead",
      "IPDPS'02 paper, Section 4.3 / Figure 4 / Section 5.6",
      "realignment adds bit-shifting work to the splitter's critical path; "
      "SPH + unused leading bits cost ~20% extra send volume at high "
      "resolution (more at low resolution)");

  TextTable table({"stream", "config", "t_split(ms)", "t_realign(ms)",
                   "split overhead", "SPH bytes/pic", "payload bytes/pic",
                   "size overhead", "fps verbatim", "fps realign"});

  for (int id : {1, 8, 16}) {
    const video::StreamSpec& spec = video::stream_by_id(id);
    const auto es = benchutil::stream(id);
    wall::TileGeometry geo(spec.width, spec.height, spec.tiles_m, spec.tiles_n,
                           benchutil::kOverlap);

    // Measure realignment cost over all sub-pictures of the stream.
    core::RootSplitter root(es);
    core::MacroblockSplitter splitter(geo);
    splitter.set_stream_info(root.stream_info());
    double realign_s = 0;
    double sph_bytes = 0, payload_bytes = 0;
    size_t realigned_total = 0;
    for (int i = 0; i < root.picture_count(); ++i) {
      auto result = splitter.split(root.picture(i), uint32_t(i));
      for (const auto& sp : result.subpictures) {
        payload_bytes += double(sp.payload_bytes());
        sph_bytes += double(sp.wire_bytes() - sp.payload_bytes());
        WallTimer t;
        for (const auto& run : sp.runs)
          if (!run.payload.empty()) realigned_total += realign(run).size();
        realign_s += t.seconds();
      }
    }
    const int N = root.picture_count();
    realign_s /= N;
    sph_bytes /= N;
    payload_bytes /= N;

    const auto traces = benchutil::collect_traces(es, geo);
    const auto costs = sim::measure_costs(traces);
    const int k = core::choose_k(costs.t_split, costs.t_decode);
    sim::SimParams p;
    p.two_level = true;
    p.k = k;
    p.link = benchutil::default_link();
    const auto r_verbatim = sim::simulate_cluster(traces, geo, p);

    auto traces_realign = traces;
    for (auto& tr : traces_realign) tr.split_s += realign_s;
    const auto r_realign = sim::simulate_cluster(traces_realign, geo, p);

    table.add_row(
        {spec.name,
         benchutil::config_name(k, spec.tiles_m, spec.tiles_n, true),
         format("%.2f", costs.t_split * 1e3), format("%.2f", realign_s * 1e3),
         format("+%.0f%%", 100 * realign_s / costs.t_split),
         format("%.0f", sph_bytes), format("%.0f", payload_bytes),
         format("%.1f%%", 100 * sph_bytes / payload_bytes),
         format("%.1f", r_verbatim.fps), format("%.1f", r_realign.fps)});
    benchutil::json_metric(format("ablation_sph_%s_overhead", spec.name.c_str()),
                           100 * sph_bytes / payload_bytes, "%");
    (void)realigned_total;
  }
  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  return 0;
}
