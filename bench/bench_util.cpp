#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/text_table.h"

namespace pdw::benchutil {

int bench_frames() { return video::default_frame_count(); }

std::vector<uint8_t> stream(int id) {
  const video::StreamSpec& spec = video::stream_by_id(id);
  std::printf("[bench] stream %d (%s, %dx%d): generating/loading...\n",
              id, spec.name.c_str(), spec.width, spec.height);
  std::fflush(stdout);
  auto es = video::load_stream(spec, bench_frames());
  PDW_CHECK(!es.empty());
  return es;
}

std::vector<core::PictureTrace> collect_traces(
    const std::vector<uint8_t>& es, const wall::TileGeometry& geo) {
  {
    // Warm-up: run a few pictures through a scratch pipeline so one-time
    // costs (VLC lookup-table construction, first-touch page faults) do not
    // contaminate the measured traces.
    core::LockstepPipeline warmup(geo, 1, es);
    warmup.run(nullptr, nullptr, 3);
  }
  core::LockstepPipeline pipeline(geo, 1, es);
  std::vector<core::PictureTrace> traces;
  int displayed = 0;
  pipeline.run(
      [&](int, const mpeg2::TileFrame&, const core::TileDisplayInfo&) {
        ++displayed;
      },
      [&](const core::PictureTrace& tr) { traces.push_back(tr); });
  PDW_CHECK_GT(displayed, 0);
  return traces;
}

sim::LinkModel default_link() { return sim::LinkModel{}; }

void print_banner(const std::string& title, const std::string& paper_ref,
                  const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Paper expectation: %s\n", expectation.c_str());
  std::printf("Frames per stream: %d (paper: 240)\n", bench_frames());
  std::printf("================================================================\n");
}

std::string config_name(int k, int m, int n, bool two_level) {
  if (!two_level) return format("1-(%d,%d)", m, n);
  return format("1-%d-(%d,%d)", k, m, n);
}

void json_metric(const std::string& name, double value,
                 const std::string& unit) {
  // %.17g round-trips doubles; names/units are controlled identifiers (no
  // JSON escaping needed).
  std::printf("##json {\"name\": \"%s\", \"value\": %.17g, \"unit\": \"%s\"}\n",
              name.c_str(), value, unit.c_str());
}

}  // namespace pdw::benchutil
