// Table 5 + Figure 6: frame rate of one-level vs two-level systems.
//
// The paper plays stream 1 (DVD) and stream 8 (720p HDTV) on screen
// configurations from 1x1 to 4x4 and shows that a single macroblock-level
// splitter saturates once there are more than ~4 decoders (the dashed lines
// flatten), while the two-level hierarchy keeps scaling (solid lines).
//
// We regenerate both curves: for each configuration the lockstep pipeline
// measures real split/decode/serve costs and message sizes, and the cluster
// simulator replays the protocol as a 1-(m,n) system and as a 1-k-(m,n)
// system with k chosen per §4.6 (increase k until the frame rate stops
// improving — here: k = ceil(t_s / t_d)). The §4.6 analytic model
// F = min(k/t_s, 1/t_d) is printed alongside as a cross-check.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "core/config.h"

using namespace pdw;

namespace {

struct Config {
  int m, n;
};
const Config kConfigs[] = {{1, 1}, {2, 1}, {2, 2}, {3, 2},
                           {3, 3}, {4, 3}, {4, 4}};

void run_stream(int stream_id) {
  const video::StreamSpec& spec = video::stream_by_id(stream_id);
  const auto es = benchutil::stream(stream_id);

  TextTable table({"config", "nodes", "fps(1-level)", "config2", "nodes2",
                   "k", "fps(2-level)", "model fps", "t_s(ms)", "t_d(ms)"});
  std::printf("\n--- Stream %d (%s, %dx%d) ---\n", spec.id, spec.name.c_str(),
              spec.width, spec.height);

  for (const Config& c : kConfigs) {
    wall::TileGeometry geo(spec.width, spec.height, c.m, c.n,
                           benchutil::kOverlap);
    const auto traces = benchutil::collect_traces(es, geo);
    const auto costs = sim::measure_costs(traces);

    sim::SimParams one;
    one.two_level = false;
    one.k = 1;
    one.link = benchutil::default_link();
    const auto r1 = sim::simulate_cluster(traces, geo, one);

    const int k = core::choose_k(costs.t_split, costs.t_decode);
    sim::SimParams two = one;
    two.two_level = true;
    two.k = k;
    const auto r2 = sim::simulate_cluster(traces, geo, two);

    table.add_row(
        {benchutil::config_name(1, c.m, c.n, false), format("%d", r1.nodes),
         format("%.1f", r1.fps), benchutil::config_name(k, c.m, c.n, true),
         format("%d", r2.nodes), format("%d", k), format("%.1f", r2.fps),
         format("%.1f", core::predicted_fps(k, costs.t_split, costs.t_decode)),
         format("%.2f", costs.t_split * 1e3),
         format("%.2f", costs.t_decode * 1e3)});
    benchutil::json_metric(
        format("table5_s%d_%dx%d_fps_1level", stream_id, c.m, c.n), r1.fps,
        "fps");
    benchutil::json_metric(
        format("table5_s%d_%dx%d_fps_2level", stream_id, c.m, c.n), r2.fps,
        "fps");
  }
  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Table 5 + Figure 6 — Frame Rate of One-Level and Two-Level Systems",
      "IPDPS'02 paper, Table 5 / Figure 6 (Section 5.3/5.4)",
      "one-level 1-(m,n) saturates at the splitter rate once decoders > ~4; "
      "two-level 1-k-(m,n) removes the bottleneck and frame rate keeps "
      "rising with more decoders (sub-linearly, due to growing remote-"
      "macroblock traffic)");
  run_stream(1);
  run_stream(8);
  return 0;
}
