// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench prints (a) the reproduced table/figure as an aligned text
// table, (b) the same data as CSV for plotting, and (c) a short "paper
// expectation" note so EXPERIMENTS.md comparisons are self-describing.
//
// Environment knobs:
//   PDW_FRAMES     frames per generated stream (default 48; paper used 240)
//   PDW_CACHE_DIR  where generated streams are cached
#pragma once

#include <string>
#include <vector>

#include "core/lockstep.h"
#include "sim/cluster_sim.h"
#include "video/catalog.h"
#include "wall/geometry.h"

namespace pdw::benchutil {

// Frames used by benches (PDW_FRAMES override).
int bench_frames();

// Load (generate-or-cache) catalog stream `id` at bench_frames().
std::vector<uint8_t> stream(int id);

// Run the lockstep pipeline once and collect per-picture traces (the cluster
// simulator's input). Also verifies decode liveness as a side effect.
std::vector<core::PictureTrace> collect_traces(
    const std::vector<uint8_t>& es, const wall::TileGeometry& geo);

// The modeled interconnect: Myrinet-class defaults (see sim::LinkModel).
sim::LinkModel default_link();

// Projector overlap used throughout (the Princeton wall's ~40 px).
inline constexpr int kOverlap = 40;

// Banner with the paper reference for this experiment.
void print_banner(const std::string& title, const std::string& paper_ref,
                  const std::string& expectation);

std::string config_name(int k, int m, int n, bool two_level);

// Machine-readable result line:  ##json {"name":...,"value":...,"unit":...}
// scripts/run_benches.sh greps these lines out of every bench's stdout and
// assembles the consolidated BENCH_RESULTS.json.
void json_metric(const std::string& name, double value,
                 const std::string& unit);

}  // namespace pdw::benchutil
