// Overload sweep — beyond the paper.
//
// The paper serves one stream to one wall; a serving deployment fronts a
// heavy-tailed catalog of tenants. This bench replays a seeded Zipf arrival
// process (sim::TrafficModel) against the admission controller at offered
// loads from 1x to 3x the measured wall capacity and reports, per priority
// class, what the degradation ladder does with the excess:
//
//   - deadline-miss rate: fraction of served picture slots that blew their
//     display deadline (measured load above raw capacity, absorbed
//     lowest-class-first);
//   - shed rate: fraction of picture slots the ladder skipped (B pictures
//     first, then P, then full freeze);
//   - accept/renegotiate/reject counts at the admission gate.
//
// Acceptance (asserted here, not just printed): at every overload factor the
// ledger balances, shedding lands in strict priority order, and at 2x
// premium tenants hold a <1% deadline-miss rate. The sweep is a pure
// function of its seed — same binary, same table, byte for byte.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/text_table.h"
#include "sim/traffic_model.h"

using namespace pdw;

namespace {

const char* kClassName[3] = {"background", "standard", "premium"};

sim::TrafficConfig sweep_config(double overload) {
  sim::TrafficConfig cfg;
  cfg.capacity.mb_per_s = 4.0e6;  // SD-class wall, same as the chaos harness
  cfg.overload = overload;
  cfg.tenants = 2000;
  cfg.sim_seconds = 120.0;
  cfg.seed = 7;
  return cfg;
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Multi-tenant overload sweep — beyond the paper",
      "extends IPDPS'02 paper (single dedicated stream) to catalog serving",
      "under overload the ladder sheds background first, then standard; "
      "premium deadline-miss rate stays under 1% at 2x offered load");

  TextTable table({"overload", "class", "offered", "accepted", "renegotiated",
                   "rejected", "miss %", "shed %"});
  TextTable ladder({"overload", "degrades", "reverts", "peak util",
                    "mean util"});

  const double factors[] = {1.0, 1.5, 2.0, 3.0};
  for (const double overload : factors) {
    const sim::TrafficReport r = sim::run_traffic(sweep_config(overload));

    // Ledger invariants hold at every load point, not only the happy path.
    PDW_CHECK(r.accounting_ok);
    // Strict priority order: a better class never sheds more than a worse
    // one, and never misses more deadlines either.
    using PC = proto::PriorityClass;
    const auto& bg = r.cls[int(PC::kBackground)];
    const auto& std_c = r.cls[int(PC::kStandard)];
    const auto& prem = r.cls[int(PC::kPremium)];
    PDW_CHECK_LE(prem.shed_rate(), std_c.shed_rate());
    PDW_CHECK_LE(std_c.shed_rate(), bg.shed_rate());
    PDW_CHECK_LE(prem.miss_rate(), std_c.miss_rate());
    if (overload >= 2.0) PDW_CHECK_LT(prem.miss_rate(), 0.01);

    for (int c = 2; c >= 0; --c) {
      const sim::ClassStats& s = r.cls[c];
      table.add_row({format("%.1fx", overload), kClassName[c],
                     format("%llu", (unsigned long long)s.offered),
                     format("%llu", (unsigned long long)s.accepted),
                     format("%llu", (unsigned long long)s.renegotiated),
                     format("%llu", (unsigned long long)s.rejected),
                     format("%.2f", s.miss_rate() * 100),
                     format("%.2f", s.shed_rate() * 100)});
      benchutil::json_metric(
          format("overload%.0fx_%s_miss_pct", overload * 10, kClassName[c]),
          s.miss_rate() * 100, "%");
      benchutil::json_metric(
          format("overload%.0fx_%s_shed_pct", overload * 10, kClassName[c]),
          s.shed_rate() * 100, "%");
    }
    ladder.add_row({format("%.1fx", overload),
                    format("%llu", (unsigned long long)r.degrades),
                    format("%llu", (unsigned long long)r.reverts),
                    format("%.2f", r.peak_measured_utilization),
                    format("%.2f", r.mean_measured_utilization)});
  }

  table.print(stdout);
  std::printf("\nLadder activity:\n");
  ladder.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  return 0;
}
