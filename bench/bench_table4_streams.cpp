// Table 4: characteristics of the 16 test video streams.
//
// The paper lists, per stream: resolution, average frame size (bytes) and
// bits per pixel. Our synthetic stand-ins are generated at the same
// resolutions with rate control targeting the paper's ~0.3 bpp (higher for
// the three DVD-class clips). This bench regenerates the table from the
// actual encoded streams.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"

using namespace pdw;

int main() {
  benchutil::print_banner(
      "Table 4 — Characteristics of Test Video Streams",
      "IPDPS'02 paper, Table 4 (Section 5.2)",
      "16 streams from DVD (720x480) to near-IMAX (~3840x2912); all but the "
      "first three at ~0.3 bpp; highest-resolution Orion flyby ~100 Mbps at "
      "30 fps");

  TextTable table({"#", "name", "resolution", "scene (substitute)", "fps",
                   "avg frame (B)", "bpp", "Mbps"});
  const int frames = benchutil::bench_frames();
  for (const video::StreamSpec& spec : video::stream_catalog()) {
    const auto es = benchutil::stream(spec.id);
    const auto m = video::measure_stream(spec, es, frames);
    table.add_row({format("%d", spec.id), spec.name,
                   format("%d x %d", spec.width, spec.height),
                   video::scene_kind_name(spec.scene),
                   format("%.0f", spec.fps),
                   format("%.0f", m.avg_frame_bytes),
                   format("%.3f", m.bpp),
                   format("%.1f", m.bit_rate_mbps)});
    benchutil::json_metric(format("table4_s%d_bpp", spec.id), m.bpp, "bpp");
  }
  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  return 0;
}
