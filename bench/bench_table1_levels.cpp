// Table 1: comparison of parallelization granularities.
//
// The paper's Table 1 qualitatively scores sequence/GOP/picture/slice/
// macroblock-level parallel decoding on splitting cost, inter-decoder
// communication and pixel redistribution. This bench produces the
// quantitative version for a 720p stream on a 4x4 wall: splitting cost is
// measured (start-code scan vs full macroblock parse), communication is
// derived from the stream's real motion vectors and reference structure,
// and redistribution from the display geometry. A modeled frame rate (same
// link model as the cluster simulator) shows why no single level suffices
// and why the hybrid hierarchy wins.
#include <cstdio>

#include "baseline/levels.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/text_table.h"

using namespace pdw;

int main() {
  benchutil::print_banner(
      "Table 1 — Comparison of Parallelization Levels (quantified)",
      "IPDPS'02 paper, Table 1 (Section 3)",
      "coarse levels: trivial splitting but huge redistribution (and, for "
      "picture level, reference-chain serialization); macroblock level: no "
      "redistribution, low balanced comm, but splitting becomes the "
      "bottleneck — fixed by the 1-k-(m,n) hierarchy");

  const video::StreamSpec& spec = video::stream_by_id(8);
  const auto es = benchutil::stream(8);
  wall::TileGeometry geo(spec.width, spec.height, 4, 4, benchutil::kOverlap);

  const auto reports =
      baseline::compare_levels(es, geo, benchutil::default_link());

  TextTable table({"level", "split ms/pic", "inter-dec comm/pic",
                   "redistribution/pic", "modeled fps", "notes"});
  for (const auto& r : reports) {
    table.add_row({baseline::level_name(r.level),
                   format("%.3f", r.split_s_per_picture * 1e3),
                   human_bytes(r.interdecoder_bytes),
                   human_bytes(r.redistribution_bytes), format("%.1f", r.fps),
                   r.notes});
    benchutil::json_metric(
        format("table1_%s_fps", baseline::level_name(r.level)), r.fps, "fps");
  }
  table.print(stdout);
  std::printf("\nStream: %d (%s, %dx%d) on a 4x4 wall, %d frames\n", spec.id,
              spec.name.c_str(), spec.width, spec.height,
              benchutil::bench_frames());
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  return 0;
}
