// Ablation (paper §4.2): MEI pre-calculation vs on-demand remote fetch.
//
// The paper argues that fetching remote reference blocks on demand is
// inefficient: the decoder blocks for a round trip per remote reference, and
// a dedicated server thread (to answer peers' requests) adds context
// switches. Pre-calculated MEI exchanges hide all of that before decoding
// starts. This bench quantifies the gap: the MEI system is simulated as
// usual; the on-demand variant charges each remote macroblock a blocking
// round trip (2x latency + transfer + server-side context switch) on the
// decoding critical path.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "core/config.h"

using namespace pdw;

int main() {
  benchutil::print_banner(
      "Ablation — MEI pre-calculation vs on-demand remote fetch",
      "IPDPS'02 paper, Section 4.2",
      "on-demand fetch pays a blocking round trip per remote macroblock plus "
      "server-thread context switches; pre-calculation removes both");

  const video::StreamSpec& spec = video::stream_by_id(8);
  const auto es = benchutil::stream(8);
  const sim::LinkModel link = benchutil::default_link();
  constexpr double kContextSwitch = 5e-6;  // server thread wakeup per request

  TextTable table({"config", "remote MBs/pic/dec", "fps(MEI)",
                   "fps(on-demand)", "slowdown"});

  for (auto [m, n] : {std::pair{2, 2}, {3, 3}, {4, 4}}) {
    wall::TileGeometry geo(spec.width, spec.height, m, n, benchutil::kOverlap);
    auto traces = benchutil::collect_traces(es, geo);
    const auto costs = sim::measure_costs(traces);
    sim::SimParams p;
    p.two_level = true;
    p.k = core::choose_k(costs.t_split, costs.t_decode);
    p.link = link;
    const auto r_mei = sim::simulate_cluster(traces, geo, p);

    // On-demand variant: charge each remote macroblock a blocking round trip
    // on the decode path; the serve work disappears (no pre-extraction) but
    // every request interrupts the *serving* decoder too (context switch).
    double remote_per_pic = 0;
    auto traces_od = traces;
    for (auto& tr : traces_od) {
      for (size_t t = 0; t < tr.decode_s.size(); ++t) {
        const double requests = double(tr.halo_mbs[t]);
        remote_per_pic += requests;
        const double rtt =
            2 * link.latency_s +
            link.transfer_s(sizeof(mpeg2::MacroblockPixels) + 24) +
            2 * kContextSwitch;
        tr.decode_s[t] += requests * rtt;
        tr.serve_s[t] = requests * kContextSwitch;  // serving interruptions
      }
      tr.exchange_bytes.reset(geo.tiles());
    }
    remote_per_pic /= double(traces.size()) * geo.tiles();
    const auto r_od = sim::simulate_cluster(traces_od, geo, p);

    table.add_row({benchutil::config_name(p.k, m, n, true),
                   format("%.1f", remote_per_pic), format("%.1f", r_mei.fps),
                   format("%.1f", r_od.fps),
                   format("%.2fx", r_mei.fps / r_od.fps)});
    benchutil::json_metric(format("ablation_mei_%dx%d_speedup", m, n),
                           r_mei.fps / r_od.fps, "x");
  }
  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  return 0;
}
