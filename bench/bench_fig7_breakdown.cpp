// Figure 7: runtime breakdown of decoders.
//
// The paper profiles every decoder while playing stream 8 (720p) on a
// 1-2-(2,2) and a 1-5-(4,4) system and splits runtime into Work (decode +
// display), Serve (preparing data for remote decoders), Receive (waiting for
// the sub-picture), Wait (waiting for remote blocks) and Ack. The headline
// observation: decoding is ~80% of runtime on the 2x2 wall but only ~40% on
// 4x4, because with smaller tiles a larger fraction of motion vectors cross
// tile boundaries.
//
// The breakdown is recomputed from the span tracer, not from bespoke
// accumulators: the DES emits its per-stage schedule as canonical spans
// (decode_sp / serve_sp / recv_sp / wait_halo / ack_pic), and
// obs::fig7_breakdown() reduces the trace to the five stage shares — the
// same reduction one can run on a PDW_TRACE capture of any engine.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "core/config.h"
#include "obs/export.h"
#include "obs/trace.h"

using namespace pdw;

namespace {

void run_config(const std::vector<uint8_t>& es,
                const video::StreamSpec& spec, int m, int n) {
  wall::TileGeometry geo(spec.width, spec.height, m, n, benchutil::kOverlap);
  const auto traces = benchutil::collect_traces(es, geo);
  const auto costs = sim::measure_costs(traces);
  sim::SimParams p;
  p.two_level = true;
  p.k = core::choose_k(costs.t_split, costs.t_decode);
  p.link = benchutil::default_link();

  // Trace the simulated schedule; the stage shares below come entirely from
  // the recorded spans.
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable();
  const auto r = sim::simulate_cluster(traces, geo, p);
  tracer.disable();
  const auto shares = obs::fig7_breakdown(
      tracer, sim::kSimTracePidBase + r.first_decoder_node,
      sim::kSimTracePidBase + r.nodes - 1, sim::kSimTracePidBase);

  std::printf("\n--- %s, stream %d (%s): per-decoder runtime breakdown "
              "(traced) ---\n",
              benchutil::config_name(p.k, m, n, true).c_str(), spec.id,
              spec.name.c_str());
  TextTable table({"decoder", "Work%", "Serve%", "Receive%", "Wait%", "Ack%",
                   "ms/frame"});
  obs::StageShare avg;
  const int N = r.pictures;
  for (const auto& [pid, sh] : shares) {
    const int d = pid - r.first_decoder_node;
    table.add_row({format("D%d", d), format("%.1f", 100 * sh.work),
                   format("%.1f", 100 * sh.serve),
                   format("%.1f", 100 * sh.receive),
                   format("%.1f", 100 * sh.wait),
                   format("%.2f", 100 * sh.ack),
                   format("%.2f", double(sh.total_ns) / N / 1e6)});
    avg.work += sh.work * double(sh.total_ns);
    avg.serve += sh.serve * double(sh.total_ns);
    avg.receive += sh.receive * double(sh.total_ns);
    avg.wait += sh.wait * double(sh.total_ns);
    avg.ack += sh.ack * double(sh.total_ns);
    avg.total_ns += sh.total_ns;
  }
  const double tot = double(avg.total_ns);
  table.add_row({"Avg", format("%.1f", 100 * avg.work / tot),
                 format("%.1f", 100 * avg.serve / tot),
                 format("%.1f", 100 * avg.receive / tot),
                 format("%.1f", 100 * avg.wait / tot),
                 format("%.2f", 100 * avg.ack / tot),
                 format("%.2f",
                        tot / double(shares.size()) / N / 1e6)});
  table.print(stdout);
  std::printf("fps = %.1f, average Work share = %.1f%% (from %zu traced "
              "spans)\n",
              r.fps, 100 * avg.work / tot, tracer.collect().size());
  benchutil::json_metric(
      format("fig7_work_share_%dx%d", m, n), 100 * avg.work / tot, "%");
  benchutil::json_metric(format("fig7_fps_%dx%d", m, n), r.fps, "fps");
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Figure 7 — Runtime Breakdown of Decoders (stream 8)",
      "IPDPS'02 paper, Figure 7 (Section 5.4)",
      "Work (decode) share drops from ~80% on 1-2-(2,2) to ~40% on "
      "1-5-(4,4); Serve grows because more macroblocks reference remote "
      "blocks when tiles shrink");
  const video::StreamSpec& spec = video::stream_by_id(8);
  const auto es = benchutil::stream(8);
  run_config(es, spec, 2, 2);
  run_config(es, spec, 4, 4);
  return 0;
}
