// Figure 7: runtime breakdown of decoders.
//
// The paper profiles every decoder while playing stream 8 (720p) on a
// 1-2-(2,2) and a 1-5-(4,4) system and splits runtime into Work (decode +
// display), Serve (preparing data for remote decoders), Receive (waiting for
// the sub-picture), Wait (waiting for remote blocks) and Ack. The headline
// observation: decoding is ~80% of runtime on the 2x2 wall but only ~40% on
// 4x4, because with smaller tiles a larger fraction of motion vectors cross
// tile boundaries.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "core/config.h"

using namespace pdw;

namespace {

void run_config(const std::vector<uint8_t>& es,
                const video::StreamSpec& spec, int m, int n) {
  wall::TileGeometry geo(spec.width, spec.height, m, n, benchutil::kOverlap);
  const auto traces = benchutil::collect_traces(es, geo);
  const auto costs = sim::measure_costs(traces);
  sim::SimParams p;
  p.two_level = true;
  p.k = core::choose_k(costs.t_split, costs.t_decode);
  p.link = benchutil::default_link();
  const auto r = sim::simulate_cluster(traces, geo, p);

  std::printf("\n--- %s, stream %d (%s): per-decoder runtime breakdown ---\n",
              benchutil::config_name(p.k, m, n, true).c_str(), spec.id,
              spec.name.c_str());
  TextTable table({"decoder", "Work%", "Serve%", "Receive%", "Wait%", "Ack%",
                   "ms/frame"});
  sim::DecoderBreakdown avg;
  const int N = r.pictures;
  for (size_t d = 0; d < r.decoders.size(); ++d) {
    const auto& bd = r.decoders[d];
    const double tot = bd.total();
    table.add_row({format("D%zu", d), format("%.1f", 100 * bd.work / tot),
                   format("%.1f", 100 * bd.serve / tot),
                   format("%.1f", 100 * bd.receive / tot),
                   format("%.1f", 100 * bd.wait_remote / tot),
                   format("%.2f", 100 * bd.ack / tot),
                   format("%.2f", tot / N * 1e3)});
    avg.work += bd.work;
    avg.serve += bd.serve;
    avg.receive += bd.receive;
    avg.wait_remote += bd.wait_remote;
    avg.ack += bd.ack;
  }
  const double tot = avg.total();
  table.add_row({"Avg", format("%.1f", 100 * avg.work / tot),
                 format("%.1f", 100 * avg.serve / tot),
                 format("%.1f", 100 * avg.receive / tot),
                 format("%.1f", 100 * avg.wait_remote / tot),
                 format("%.2f", 100 * avg.ack / tot),
                 format("%.2f", tot / double(r.decoders.size()) / N * 1e3)});
  table.print(stdout);
  std::printf("fps = %.1f, average Work share = %.1f%%\n", r.fps,
              100 * avg.work / tot);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Figure 7 — Runtime Breakdown of Decoders (stream 8)",
      "IPDPS'02 paper, Figure 7 (Section 5.4)",
      "Work (decode) share drops from ~80% on 1-2-(2,2) to ~40% on "
      "1-5-(4,4); Serve grows because more macroblocks reference remote "
      "blocks when tiles shrink");
  const video::StreamSpec& spec = video::stream_by_id(8);
  const auto es = benchutil::stream(8);
  run_config(es, spec, 2, 2);
  run_config(es, spec, 4, 4);
  return 0;
}
