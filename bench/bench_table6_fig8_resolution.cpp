// Table 6 + Figure 8: resolution scalability of the two-level system.
//
// Each of the 16 streams runs on the screen configuration whose resolution
// matches it (paper Table 6), with k chosen to keep the decoders at full
// speed. The paper reports frame rate and total decoded pixel rate (Mpps)
// per stream; Figure 8 plots Mpps vs node count and shows near-linear
// scaling with a slight droop on the four highest-resolution Orion streams
// whose detail is spatially localized (the busiest tile gates the
// synchronized decoders).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/text_table.h"
#include "core/config.h"

using namespace pdw;

int main() {
  benchutil::print_banner(
      "Table 6 + Figure 8 — Resolution Scalability (all 16 streams)",
      "IPDPS'02 paper, Table 6 / Figure 8 (Section 5.5)",
      "pixel decoding rate grows near-linearly with node count; localized-"
      "detail streams (13-16) fall slightly below the trend because the "
      "busiest tile limits the synchronized decoders; 4x4 target ~38.9 fps "
      "in the paper's testbed");

  TextTable table({"#", "stream", "resolution", "config", "nodes", "fps",
                   "Mpps", "t_s(ms)", "t_d max(ms)", "t_d mean(ms)",
                   "imbalance"});

  for (const video::StreamSpec& spec : video::stream_catalog()) {
    const auto es = benchutil::stream(spec.id);
    wall::TileGeometry geo(spec.width, spec.height, spec.tiles_m, spec.tiles_n,
                           benchutil::kOverlap);
    const auto traces = benchutil::collect_traces(es, geo);
    const auto costs = sim::measure_costs(traces);
    const int k = core::choose_k(costs.t_split, costs.t_decode);

    sim::SimParams p;
    p.two_level = true;
    p.k = k;
    p.link = benchutil::default_link();
    const auto r = sim::simulate_cluster(traces, geo, p);

    const double mpps = r.fps * double(spec.pixels()) / 1e6;
    const double imbalance =
        costs.t_decode_mean > 0 ? costs.t_decode / costs.t_decode_mean : 1.0;
    table.add_row({format("%d", spec.id), spec.name,
                   format("%dx%d", spec.width, spec.height),
                   benchutil::config_name(k, spec.tiles_m, spec.tiles_n, true),
                   format("%d", r.nodes), format("%.1f", r.fps),
                   format("%.1f", mpps), format("%.2f", costs.t_split * 1e3),
                   format("%.2f", costs.t_decode * 1e3),
                   format("%.2f", costs.t_decode_mean * 1e3),
                   format("%.2f", imbalance)});
    benchutil::json_metric(format("table6_s%d_fps", spec.id), r.fps, "fps");
    benchutil::json_metric(format("table6_s%d_mpps", spec.id), mpps, "Mpps");
  }
  table.print(stdout);
  std::printf(
      "\n(imbalance = slowest-tile decode time / mean tile decode time; the\n"
      " localized-detail streams should show the largest values)\n");
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  return 0;
}
