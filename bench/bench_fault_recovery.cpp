// Fault injection and recovery — beyond the paper.
//
// The paper assumes a perfectly reliable Myrinet (§3); this bench measures
// what the hardened runtime adds on an unreliable one:
//   (a) DES drop-rate sweep: throughput cost of retransmission under
//       increasing per-transmission loss;
//   (b) DES crash-recovery sweep: recovery latency and residual frame rate
//       for node death under both policies (tile adoption vs degraded mode)
//       across health-monitor timeouts;
//   (c) one threaded validation run: the real pipeline under the same kind
//       of fault schedule, proving the protocol converges (nothing
//       abandoned, nothing silently wrong) while the DES predicts its cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/text_table.h"
#include "core/pipeline.h"
#include "net/fault.h"

using namespace pdw;

namespace {

constexpr int kM = 2, kN = 2, kK = 2;

void run_drop_sweep(const std::vector<core::PictureTrace>& traces,
                    const wall::TileGeometry& geo) {
  std::printf("\n--- (a) Drop-rate sweep (DES, 1-%d-(%d,%d)) ---\n", kK, kM,
              kN);
  sim::SimParams base;
  base.k = kK;
  base.link = benchutil::default_link();
  const auto clean = sim::simulate_cluster(traces, geo, base);

  TextTable table(
      {"drop rate", "fps", "slowdown", "retransmits", "makespan (s)"});
  const double rates[] = {0.0, 0.01, 0.05, 0.10, 0.20};
  for (const double rate : rates) {
    sim::SimParams p = base;
    p.fault.seed = 42;
    p.fault.drop_rate = rate;
    const auto r = sim::simulate_cluster(traces, geo, p);
    table.add_row({format("%.2f", rate), format("%.1f", r.fps),
                   format("%.2fx", clean.fps / r.fps),
                   format("%llu", (unsigned long long)r.retransmits),
                   format("%.3f", r.makespan_s)});
    benchutil::json_metric(format("fault_drop%.0f_fps", rate * 100), r.fps,
                           "fps");
  }
  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
}

void run_crash_sweep(const std::vector<core::PictureTrace>& traces,
                     const wall::TileGeometry& geo) {
  std::printf("\n--- (b) Crash recovery (DES, crash tile 3 mid-stream) ---\n");
  sim::SimParams base;
  base.k = kK;
  base.link = benchutil::default_link();
  const auto clean = sim::simulate_cluster(traces, geo, base);

  TextTable table({"policy", "hb timeout (ms)", "detect (ms)", "resync pic",
                   "recovery (ms)", "degraded frames", "fps", "fps vs clean"});
  const double timeouts[] = {0.05, 0.10, 0.25, 0.50};
  for (const bool adopt : {true, false}) {
    for (const double hb : timeouts) {
      sim::SimParams p = base;
      p.fault.crash_tile = 3;
      // A couple of pictures before mid-stream, so a closed-GOP resync
      // point (every gop_size pictures) still exists downstream even at
      // small PDW_FRAMES.
      p.fault.crash_at_picture = int(traces.size()) / 2 - 2;
      p.fault.hb_timeout_s = hb;
      p.fault.adopt = adopt;
      const auto r = sim::simulate_cluster(traces, geo, p);
      PDW_CHECK_EQ(r.recoveries.size(), size_t(1));
      const sim::SimRecovery& rec = r.recoveries[0];
      table.add_row(
          {adopt ? "adopt" : "degrade", format("%.0f", hb * 1e3),
           format("%.1f", (rec.detect_time_s - rec.crash_time_s) * 1e3),
           adopt ? format("%d", rec.resync_picture) : std::string("-"),
           format("%.1f", rec.recovery_latency_s * 1e3),
           format("%d", r.degraded_frames), format("%.1f", r.fps),
           format("%.2f", r.fps / clean.fps)});
      benchutil::json_metric(
          format("fault_%s_hb%.0fms_recovery_ms", adopt ? "adopt" : "degrade",
                 hb * 1e3),
          rec.recovery_latency_s * 1e3, "ms");
    }
  }
  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
}

void run_threaded_validation(const std::vector<uint8_t>& es,
                             const wall::TileGeometry& geo) {
  std::printf(
      "\n--- (c) Threaded validation (real pipeline, single host core) ---\n");
  TextTable table({"schedule", "fps", "retransmits", "crc drops", "dup drops",
                   "abandoned", "skipped", "recoveries", "detect (ms)"});

  const auto run = [&](const char* name, const net::FaultInjector& inj,
                       core::FtOptions ft) {
    ft.injector = &inj;
    core::ClusterPipeline pipeline(geo, kK, es, ft);
    int frames = 0;
    const auto stats = pipeline.run(
        [&](int, const mpeg2::TileFrame&, const core::TileDisplayInfo&) {
          ++frames;
        });
    PDW_CHECK_GT(frames, 0);
    // The convergence guarantee the tests prove bit-exactly, asserted here
    // at the protocol level: no reliable send may ever be given up on.
    PDW_CHECK_EQ(stats.ft.transport.abandoned, uint64_t(0));
    table.add_row(
        {name, format("%.1f", stats.fps),
         format("%llu", (unsigned long long)stats.ft.transport.retransmits),
         format("%llu", (unsigned long long)stats.ft.transport.crc_drops),
         format("%llu", (unsigned long long)stats.ft.transport.dup_drops),
         format("%llu", (unsigned long long)stats.ft.transport.abandoned),
         format("%llu", (unsigned long long)stats.ft.skipped_pictures),
         format("%zu", stats.ft.recoveries.size()),
         stats.ft.recoveries.empty()
             ? std::string("-")
             : format("%.0f", stats.ft.recoveries[0].detect_time_s * 1e3)});
  };

  const net::FaultInjector lossy(
      7, net::FaultRates{.drop = 0.03, .dup = 0.03, .corrupt = 0.03});
  run("drop+dup+corrupt 3%", lossy, {});

  net::FaultInjector crash;
  net::FaultEvent ev;
  ev.kind = net::FaultEvent::Kind::kCrash;
  ev.dst = 1 + kK + 3;  // tile 3's decoder node
  ev.at_ordinal = 30;   // mid-stream (counted in deliveries to that node)
  crash.add_event(ev);
  core::FtOptions crash_ft;
  crash_ft.protocol.heartbeat_interval_s = 0.01;
  crash_ft.protocol.heartbeat_timeout_s = 0.25;
  run("crash tile 3 + adopt", crash, crash_ft);

  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Fault Injection & Recovery — beyond the paper",
      "extends IPDPS'02 paper §3 (which assumes a reliable Myrinet)",
      "retransmission keeps the wall bit-exact at a modest throughput cost; "
      "after a node crash the wall recovers at the next closed GOP, with "
      "recovery latency dominated by the health-monitor timeout");

  const auto es = benchutil::stream(1);  // DVD-class 720x480
  const video::StreamSpec& spec = video::stream_by_id(1);
  wall::TileGeometry geo(spec.width, spec.height, kM, kN, benchutil::kOverlap);
  const auto traces = benchutil::collect_traces(es, geo);

  run_drop_sweep(traces, geo);
  run_crash_sweep(traces, geo);
  run_threaded_validation(es, geo);
  return 0;
}
