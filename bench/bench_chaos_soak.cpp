// Chaos/soak harness driver — beyond the paper.
//
// Runs sim::run_chaos over a bank of fixed seeds. Each schedule composes
// four stressors from one seed — a Zipf overload DES through the admission
// ladder, the threaded pipeline over a lossy fabric, a budget-squeezed
// buffer pool under concurrent threads, and an admission-gated session that
// must shed — and asserts the system-level invariant suite on each leg (see
// src/sim/chaos.h). CI runs this binary under TSan with a bounded
// wall-clock; completion within the bound is the liveness check.
//
// Seeds are fixed so a red run names the schedule that reproduces it.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/text_table.h"
#include "sim/chaos.h"
#include "video/catalog.h"
#include "wall/geometry.h"

using namespace pdw;

int main() {
  benchutil::print_banner(
      "Chaos/soak invariant suite — beyond the paper",
      "composes the IPDPS'02 pipeline with faults, overload and memory "
      "pressure",
      "every seeded schedule holds all invariants: ledger balance, strict "
      "priority shed order, premium deadline budget, display invariant "
      "under faults and shedding, pool drain under budget exhaustion");

  // PDW_CHAOS_SEEDS trims the bank for smoke runs; CI uses the default 8.
  int seeds = 8;
  if (const char* env = std::getenv("PDW_CHAOS_SEEDS")) seeds = atoi(env);

  const auto es = benchutil::stream(1);  // DVD-class 720x480
  const video::StreamSpec& spec = video::stream_by_id(1);
  wall::TileGeometry geo(spec.width, spec.height, 2, 2, benchutil::kOverlap);

  TextTable table({"seed", "prem miss %", "bg shed %", "degrades",
                   "fault pics", "shed pics", "pool fallbacks", "ok"});
  int passed = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::ChaosSchedule sched;
    sched.seed = uint64_t(seed);
    sched.sim_seconds = 30.0;
    sched.es = es;
    sched.geo = &geo;
    sched.pool_allocs_per_thread = 1000;
    const sim::ChaosReport r = sim::run_chaos(sched);

    table.add_row({format("%d", seed), format("%.2f", r.premium_miss_rate * 100),
                   format("%.2f", r.background_shed_rate * 100),
                   format("%llu", (unsigned long long)r.degrades),
                   format("%d", r.fault_pictures),
                   format("%llu", (unsigned long long)r.shed_pictures),
                   format("%llu", (unsigned long long)r.pool_budget_fallbacks),
                   r.ok() ? "yes" : "NO"});
    if (r.ok()) ++passed;
    // Name the first failed invariant instead of a bare boolean.
    PDW_CHECK(r.overload_accounting_ok);
    PDW_CHECK(r.overload_priority_order_ok);
    PDW_CHECK(r.premium_miss_rate_ok);
    PDW_CHECK(r.fault_completed);
    PDW_CHECK(r.fault_display_invariant_ok);
    PDW_CHECK(r.pool_drained);
    PDW_CHECK_GT(r.pool_budget_fallbacks, uint64_t(0));
    PDW_CHECK(r.shed_display_invariant_ok);
    PDW_CHECK_GT(r.shed_pictures, uint64_t(0));
  }

  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);
  benchutil::json_metric("chaos_schedules_total", seeds, "schedules");
  benchutil::json_metric("chaos_schedules_ok", passed, "schedules");
  return passed == seeds ? 0 : 1;
}
