// Codec micro-benchmarks (google-benchmark): the per-primitive costs that
// make up t_s and t_d — IDCT, forward DCT, DCT coefficient VLC decode,
// half-pel motion compensation, start-code scanning, full-picture split and
// full-picture decode.
#include <benchmark/benchmark.h>

#include "bitstream/start_code.h"
#include "common/stats.h"
#include "core/mb_splitter.h"
#include "core/root_splitter.h"
#include "enc/encoder.h"
#include "mpeg2/decoder.h"
#include "mpeg2/idct.h"
#include "mpeg2/motion.h"
#include "mpeg2/tables.h"
#include "video/generator.h"
#include "wall/geometry.h"

namespace pdw {
namespace {

const std::vector<uint8_t>& test_stream() {
  static const std::vector<uint8_t> es = [] {
    enc::EncoderConfig cfg;
    cfg.width = 1280;
    cfg.height = 720;
    cfg.target_bpp = 0.3;
    const auto gen = video::make_scene(video::SceneKind::kMovingObjects, 1280,
                                       720, 11);
    enc::Mpeg2Encoder encoder(cfg);
    return encoder.encode(12,
                          [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
  }();
  return es;
}

void BM_FastIdct(benchmark::State& state) {
  SplitMix64 rng(1);
  int16_t block[64];
  for (auto& v : block) v = int16_t(int(rng.next_below(400)) - 200);
  int16_t work[64];
  for (auto _ : state) {
    std::copy(std::begin(block), std::end(block), std::begin(work));
    mpeg2::fast_idct_8x8(work);
    benchmark::DoNotOptimize(work[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastIdct);

void BM_ForwardDct(benchmark::State& state) {
  SplitMix64 rng(2);
  int16_t pixels[64], coeff[64];
  for (auto& v : pixels) v = int16_t(rng.next_below(256));
  for (auto _ : state) {
    mpeg2::forward_dct_8x8(pixels, coeff);
    benchmark::DoNotOptimize(coeff[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardDct);

void BM_DctCoeffVlc(benchmark::State& state) {
  // Encode a realistic run/level sequence once, decode it repeatedly.
  BitWriter w;
  SplitMix64 rng(3);
  const int coeffs = 64;
  bool first = true;
  for (int i = 0; i < coeffs; ++i) {
    mpeg2::encode_dct_coeff_b14(w, int(rng.next_below(4)),
                                int(rng.next_below(12)) + 1, first);
    first = false;
  }
  mpeg2::encode_eob_b14(w);
  w.align_to_byte();
  const auto bytes = w.take();
  for (auto _ : state) {
    BitReader r(bytes);
    bool f = true;
    int n = 0;
    while (true) {
      const auto c = mpeg2::decode_dct_coeff_b14(r, f);
      f = false;
      if (c.eob) break;
      n += c.level;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * coeffs);
}
BENCHMARK(BM_DctCoeffVlc);

void BM_MotionCompensateHalfPel(benchmark::State& state) {
  mpeg2::Frame ref(128, 128);
  SplitMix64 rng(4);
  for (int y = 0; y < 128; ++y)
    for (int x = 0; x < 128; ++x) ref.y.set(x, y, uint8_t(rng.next()));
  mpeg2::FrameRefSource src(ref);
  mpeg2::Macroblock mb;
  mb.flags = mpeg2::mb_flags::kMotionForward;
  mb.mv[0][0] = 13;  // half-pel in both axes
  mb.mv[0][1] = 7;
  mpeg2::MacroblockPixels out;
  for (auto _ : state) {
    mpeg2::motion_compensate(mb, &src, nullptr, 2, 2, &out);
    benchmark::DoNotOptimize(out.y[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MotionCompensateHalfPel);

void BM_StartCodeScan(benchmark::State& state) {
  const auto& es = test_stream();
  for (auto _ : state) {
    auto spans = scan_pictures(es);
    benchmark::DoNotOptimize(spans.size());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(es.size()));
}
BENCHMARK(BM_StartCodeScan);

void BM_MacroblockSplitPicture(benchmark::State& state) {
  const auto& es = test_stream();
  core::RootSplitter root(es);
  wall::TileGeometry geo(1280, 720, int(state.range(0)), 2, 40);
  core::MacroblockSplitter splitter(geo);
  splitter.set_stream_info(root.stream_info());
  int i = 0;
  for (auto _ : state) {
    auto result = splitter.split(root.picture(i), uint32_t(i));
    benchmark::DoNotOptimize(result.stats.macroblocks);
    i = (i + 1) % root.picture_count();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacroblockSplitPicture)->Arg(2)->Arg(4);

void BM_SerialDecodePicture(benchmark::State& state) {
  const auto& es = test_stream();
  for (auto _ : state) {
    mpeg2::Mpeg2Decoder dec;
    int frames = 0;
    dec.decode(es, [&](const mpeg2::Frame&, const mpeg2::DecodedPictureInfo&) {
      ++frames;
    });
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(state.iterations() * 12);
}
BENCHMARK(BM_SerialDecodePicture)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdw

BENCHMARK_MAIN();
