// Codec micro-benchmarks (google-benchmark): the per-primitive costs that
// make up t_s and t_d — IDCT, forward DCT, DCT coefficient VLC decode,
// half-pel motion compensation, start-code scanning, full-picture split and
// full-picture decode. The BM_Kernel* group runs each dispatched kernel at
// every supported level (scalar/sse2/avx2), so the scalar-vs-SIMD speedup
// per primitive reads directly off one report.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bitstream/start_code.h"
#include "common/stats.h"
#include "core/mb_splitter.h"
#include "core/root_splitter.h"
#include "enc/encoder.h"
#include "kernels/kernels.h"
#include "mpeg2/decoder.h"
#include "mpeg2/idct.h"
#include "mpeg2/motion.h"
#include "mpeg2/tables.h"
#include "video/generator.h"
#include "wall/geometry.h"

namespace pdw {
namespace {

const std::vector<uint8_t>& test_stream() {
  static const std::vector<uint8_t> es = [] {
    enc::EncoderConfig cfg;
    cfg.width = 1280;
    cfg.height = 720;
    cfg.target_bpp = 0.3;
    const auto gen = video::make_scene(video::SceneKind::kMovingObjects, 1280,
                                       720, 11);
    enc::Mpeg2Encoder encoder(cfg);
    return encoder.encode(12,
                          [&](int i, mpeg2::Frame* f) { gen->render(i, f); });
  }();
  return es;
}

void BM_FastIdct(benchmark::State& state) {
  SplitMix64 rng(1);
  int16_t block[64];
  for (auto& v : block) v = int16_t(int(rng.next_below(400)) - 200);
  int16_t work[64];
  for (auto _ : state) {
    std::copy(std::begin(block), std::end(block), std::begin(work));
    mpeg2::fast_idct_8x8(work);
    benchmark::DoNotOptimize(work[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastIdct);

void BM_ForwardDct(benchmark::State& state) {
  SplitMix64 rng(2);
  int16_t pixels[64], coeff[64];
  for (auto& v : pixels) v = int16_t(rng.next_below(256));
  for (auto _ : state) {
    mpeg2::forward_dct_8x8(pixels, coeff);
    benchmark::DoNotOptimize(coeff[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardDct);

void BM_DctCoeffVlc(benchmark::State& state) {
  // Encode a realistic run/level sequence once, decode it repeatedly.
  BitWriter w;
  SplitMix64 rng(3);
  const int coeffs = 64;
  bool first = true;
  for (int i = 0; i < coeffs; ++i) {
    mpeg2::encode_dct_coeff_b14(w, int(rng.next_below(4)),
                                int(rng.next_below(12)) + 1, first);
    first = false;
  }
  mpeg2::encode_eob_b14(w);
  w.align_to_byte();
  const auto bytes = w.take();
  for (auto _ : state) {
    BitReader r(bytes);
    bool f = true;
    int n = 0;
    while (true) {
      const auto c = mpeg2::decode_dct_coeff_b14(r, f);
      f = false;
      if (c.eob) break;
      n += c.level;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * coeffs);
}
BENCHMARK(BM_DctCoeffVlc);

void BM_MotionCompensateHalfPel(benchmark::State& state) {
  mpeg2::Frame ref(128, 128);
  SplitMix64 rng(4);
  for (int y = 0; y < 128; ++y)
    for (int x = 0; x < 128; ++x) ref.y.set(x, y, uint8_t(rng.next()));
  mpeg2::FrameRefSource src(ref);
  mpeg2::Macroblock mb;
  mb.flags = mpeg2::mb_flags::kMotionForward;
  mb.mv[0][0] = 13;  // half-pel in both axes
  mb.mv[0][1] = 7;
  mpeg2::MacroblockPixels out;
  for (auto _ : state) {
    mpeg2::motion_compensate(mb, &src, nullptr, 2, 2, &out);
    benchmark::DoNotOptimize(out.y[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MotionCompensateHalfPel);

void BM_StartCodeScan(benchmark::State& state) {
  const auto& es = test_stream();
  for (auto _ : state) {
    auto spans = scan_pictures(es);
    benchmark::DoNotOptimize(spans.size());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(es.size()));
}
BENCHMARK(BM_StartCodeScan);

void BM_MacroblockSplitPicture(benchmark::State& state) {
  const auto& es = test_stream();
  core::RootSplitter root(es);
  wall::TileGeometry geo(1280, 720, int(state.range(0)), 2, 40);
  core::MacroblockSplitter splitter(geo);
  splitter.set_stream_info(root.stream_info());
  int i = 0;
  for (auto _ : state) {
    auto result = splitter.split(root.picture(i), uint32_t(i));
    benchmark::DoNotOptimize(result.stats.macroblocks);
    i = (i + 1) % root.picture_count();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacroblockSplitPicture)->Arg(2)->Arg(4);

void BM_SerialDecodePicture(benchmark::State& state) {
  const auto& es = test_stream();
  for (auto _ : state) {
    mpeg2::Mpeg2Decoder dec;
    int frames = 0;
    dec.decode(es, [&](const mpeg2::Frame&, const mpeg2::DecodedPictureInfo&) {
      ++frames;
    });
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(state.iterations() * 12);
}
BENCHMARK(BM_SerialDecodePicture)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Per-level kernel benchmarks: the same primitive timed through each
// compiled-in dispatch table the host supports. Registered from main() so
// unsupported levels simply do not appear.
// ---------------------------------------------------------------------------

void bm_kernel_idct(benchmark::State& state, const kernels::KernelTable* t) {
  SplitMix64 rng(1);
  alignas(32) int16_t block[64];
  for (auto& v : block) v = int16_t(int(rng.next_below(400)) - 200);
  alignas(32) int16_t work[64];
  for (auto _ : state) {
    std::copy(std::begin(block), std::end(block), std::begin(work));
    t->idct_8x8(work);
    benchmark::DoNotOptimize(work[0]);
  }
  state.SetItemsProcessed(state.iterations());
}

void bm_kernel_interp(benchmark::State& state, const kernels::KernelTable* t) {
  SplitMix64 rng(2);
  uint8_t window[17 * 17];
  for (auto& v : window) v = uint8_t(rng.next());
  uint8_t dst[16 * 16];
  for (auto _ : state) {
    t->interp_halfpel(window, 17, dst, 16, 16, 1, 1);  // worst case: hx=hy=1
    benchmark::DoNotOptimize(dst[0]);
  }
  state.SetItemsProcessed(state.iterations());
}

void bm_kernel_add_residual(benchmark::State& state,
                            const kernels::KernelTable* t) {
  SplitMix64 rng(3);
  alignas(32) int16_t res[64];
  for (auto& v : res) v = int16_t(int(rng.next_below(512)) - 256);
  uint8_t dst[16 * 8];
  for (auto& v : dst) v = uint8_t(rng.next());
  for (auto _ : state) {
    t->add_residual_8x8(res, dst, 16);
    benchmark::DoNotOptimize(dst[0]);
  }
  state.SetItemsProcessed(state.iterations());
}

void bm_kernel_dequant(benchmark::State& state, const kernels::KernelTable* t) {
  SplitMix64 rng(4);
  int16_t qfs[64];
  for (auto& v : qfs)
    v = rng.next_below(3) == 0 ? 0 : int16_t(int(rng.next_below(600)) - 300);
  const auto& scan = mpeg2::scan_table(false);
  const auto& w = mpeg2::kDefaultIntraQuant;
  int16_t out[64];
  for (auto _ : state) {
    t->dequant_intra(qfs, out, w.data(), 16, 4, scan.data());
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations());
}

void bm_kernel_sad(benchmark::State& state, const kernels::KernelTable* t) {
  SplitMix64 rng(5);
  uint8_t a[64 * 16], b[64 * 17];
  for (auto& v : a) v = uint8_t(rng.next());
  for (auto& v : b) v = uint8_t(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(t->sad16x16(a, 64, b, 64, UINT32_MAX));
  }
  state.SetItemsProcessed(state.iterations());
}

void register_kernel_benches() {
  using benchmark::RegisterBenchmark;
  for (int i = 0; i < kernels::kLevelCount; ++i) {
    const auto level = kernels::Level(i);
    const kernels::KernelTable* t = kernels::table_for(level);
    if (t == nullptr) continue;
    const std::string suffix = std::string("/") + kernels::level_name(level);
    RegisterBenchmark(("BM_KernelIdct" + suffix).c_str(), bm_kernel_idct, t);
    RegisterBenchmark(("BM_KernelInterpHalfpel" + suffix).c_str(),
                      bm_kernel_interp, t);
    RegisterBenchmark(("BM_KernelAddResidual" + suffix).c_str(),
                      bm_kernel_add_residual, t);
    RegisterBenchmark(("BM_KernelDequantIntra" + suffix).c_str(),
                      bm_kernel_dequant, t);
    RegisterBenchmark(("BM_KernelSad16x16" + suffix).c_str(), bm_kernel_sad, t);
  }
}

}  // namespace
}  // namespace pdw

// Custom main instead of BENCHMARK_MAIN(): (a) normalize the
// --benchmark_min_time flag so both google-benchmark generations accept the
// same invocation (1.8+ takes "0.2s"/"25x"; the 1.7 series only a plain
// double — strip a trailing "s" when the rest parses as a number), and
// (b) register the per-level kernel benchmarks for the levels this host
// supports.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  constexpr const char kMinTime[] = "--benchmark_min_time=";
  for (auto& a : args) {
    if (a.rfind(kMinTime, 0) == 0 && !a.empty() && a.back() == 's') {
      std::string value = a.substr(sizeof(kMinTime) - 1);
      value.pop_back();
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end != value.c_str() && *end == '\0')
        a = kMinTime + value;  // "0.2s" -> "0.2"
    }
  }
  std::vector<char*> cargs;
  for (auto& a : args) cargs.push_back(a.data());
  int cargc = int(cargs.size());

  pdw::register_kernel_benches();
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  std::printf("active kernel level: %s\n",
              pdw::kernels::level_name(pdw::kernels::active_level()));
  // The library routes its context header (host info, warnings) to stderr;
  // send everything to stdout so result files capture the full report and a
  // clean run leaves stderr empty.
  benchmark::ConsoleReporter reporter(benchmark::ConsoleReporter::OO_Tabular);
  reporter.SetOutputStream(&std::cout);
  reporter.SetErrorStream(&std::cout);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
