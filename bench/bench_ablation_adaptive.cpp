// Ablation (DESIGN.md §12): static uniform tiling vs adaptive per-GOP
// rebalancing on a skewed (Orion-style hot-region) stream at 4x4.
//
// A localized-detail stream concentrates coded bits and motion compensation
// in a few tiles; under the paper's fixed uniform grid the hottest tile
// bounds the frame rate while the rest of the wall idles (Fig. 7's "Work"
// share collapses). The adaptive planner re-cuts the wall at closed-GOP
// boundaries from the splitter's per-MB cost profiles, so per-tile work
// evens out. Both configurations run the real lockstep pipeline on the same
// bitstream; the gated metric is the deterministic cost-model work share
// (the planner's objective against the cuts each picture actually decoded
// under), with wall-clock work share, DES frame rates and the epoch-switch
// control overhead reported alongside.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/text_table.h"
#include "proto/wire.h"
#include "video/catalog.h"
#include "wall/partition.h"

using namespace pdw;

namespace {

// Measured wall work share: total decode work over (tiles x critical path),
// summed across the run — the Fig. 7 metric, from real per-tile times.
// Informational only: at bench resolutions a tile decodes in well under a
// millisecond, so this is timer- and scheduler-noise bound run to run.
double measured_work_share(const std::vector<core::PictureTrace>& traces,
                           int tiles) {
  double total = 0, critical = 0;
  for (const core::PictureTrace& tr : traces) {
    double mx = 0;
    for (double d : tr.decode_s) {
      total += d;
      mx = std::max(mx, d);
    }
    critical += mx;
  }
  if (critical <= 0) return 1.0;
  return total / (double(tiles) * critical);
}

// Model work share: the planner's objective, evaluated per picture on the
// splitter's cost profile against the cuts actually in effect for that
// picture's epoch. Deterministic given the bitstream, so this is what the
// in-binary gate asserts on.
double model_work_share(const std::vector<core::PictureTrace>& traces,
                        const wall::PartitionTable& table, int tiles) {
  const auto band_max = [](const std::vector<uint32_t>& cost,
                           const std::vector<int>& cuts) {
    uint64_t mx = 0, acc = 0;
    size_t ci = 0;
    for (size_t i = 0; i < cost.size(); ++i) {
      if (ci < cuts.size() && int(i) == cuts[ci]) {
        mx = std::max(mx, acc);
        acc = 0;
        ++ci;
      }
      acc += cost[i];
    }
    return std::max(mx, acc);
  };
  double total_sum = 0, critical = 0;
  for (const core::PictureTrace& tr : traces) {
    const wall::Partition& p = table.partition(tr.epoch);
    uint64_t total = 0;
    for (uint32_t c : tr.split_stats.cost_col) total += c;
    if (total == 0) continue;
    const uint64_t cmax = band_max(tr.split_stats.cost_col, p.col_cuts_mb);
    const uint64_t rmax = band_max(tr.split_stats.cost_row, p.row_cuts_mb);
    // Separable model: tile cost ~ col-band cost x row-band cost / total.
    total_sum += double(total);
    critical += double(cmax) * double(rmax) / double(total);
  }
  if (critical <= 0) return 1.0;
  return total_sum / (double(tiles) * critical);
}

struct ModeResult {
  std::vector<core::PictureTrace> traces;
  double work_share = 0;
  double model_share = 0;
  double fps = 0;
  uint32_t epochs = 0;
  uint64_t update_msgs = 0;
  uint64_t report_msgs = 0;
  uint64_t overhead_bytes = 0;
  uint64_t traffic_bytes = 0;
};

ModeResult run_mode(const wall::TileGeometry& geo, int k,
                    const std::vector<uint8_t>& es, bool adaptive) {
  // Slightly eager threshold: the per-GOP window includes the I picture,
  // whose intra cost is spread uniformly and dilutes the measured skew, so
  // the default 5% would sit out gains the whole-run profile shows are real.
  core::LockstepPipeline pipeline(
      geo, k, es, nullptr, {.enabled = adaptive, .gain_threshold = 0.02});
  ModeResult r;
  pipeline.run(nullptr,
               [&](const core::PictureTrace& tr) { r.traces.push_back(tr); });
  r.work_share = measured_work_share(r.traces, geo.tiles());
  r.model_share =
      model_work_share(r.traces, pipeline.partitions(), geo.tiles());

  sim::SimParams p;
  p.two_level = true;
  p.k = k;
  p.link = benchutil::default_link();
  r.fps = sim::simulate_cluster(r.traces, geo, p).fps;

  r.epochs = pipeline.partitions().latest_epoch();
  const auto& counts = pipeline.accounting().counts;
  if (auto it = counts.find(proto::MsgType::kPartitionUpdate);
      it != counts.end())
    r.update_msgs = it->second;
  if (auto it = counts.find(proto::MsgType::kCostReport); it != counts.end())
    r.report_msgs = it->second;
  // Control-plane cost of rebalancing: every update broadcast plus every
  // per-picture cost report, in wire bytes.
  r.overhead_bytes =
      r.update_msgs * proto::partition_update_wire_bytes(size_t(geo.m()) - 1,
                                                         size_t(geo.n()) - 1) +
      r.report_msgs * proto::cost_report_wire_bytes(size_t(geo.mb_width()),
                                                    size_t(geo.mb_height()));
  r.traffic_bytes = pipeline.accounting().traffic.total();
  return r;
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Ablation — static uniform grid vs adaptive per-GOP tile rebalancing",
      "DESIGN.md section 12 (extends the paper's fixed uniform tiling)",
      "on a hot-region stream the uniform grid's busiest tile bounds fps "
      "while most of the wall idles; adaptive cuts should raise the "
      "cost-model work share for a control overhead that is noise next "
      "to the video payload");

  const int m = 4, n = 4, k = 4;
  const video::StreamSpec spec = video::skewed_stream_spec(0, 1280, 960);
  const auto es = video::load_stream(spec, benchutil::bench_frames());
  wall::TileGeometry geo(spec.width, spec.height, m, n, benchutil::kOverlap);
  std::printf("stream: %s %dx%d, %d frames, hot region cx=%.2f cy=%.2f\n\n",
              spec.name.c_str(), spec.width, spec.height,
              benchutil::bench_frames(), double(spec.hot.cx),
              double(spec.hot.cy));

  const ModeResult st = run_mode(geo, k, es, /*adaptive=*/false);
  const ModeResult ad = run_mode(geo, k, es, /*adaptive=*/true);

  TextTable table({"mode", "model share", "meas share", "fps (DES)", "epochs",
                   "ctl msgs", "ctl bytes", "ctl % of wire"});
  const auto row = [&](const char* name, const ModeResult& r) {
    table.add_row({name, format("%.1f%%", 100 * r.model_share),
                   format("%.1f%%", 100 * r.work_share),
                   format("%.1f", r.fps), format("%u", r.epochs),
                   format("%llu", (unsigned long long)(r.update_msgs +
                                                       r.report_msgs)),
                   format("%llu", (unsigned long long)r.overhead_bytes),
                   format("%.3f%%",
                          100.0 * double(r.overhead_bytes) /
                              double(std::max<uint64_t>(1, r.traffic_bytes)))});
  };
  row("static", st);
  row("adaptive", ad);
  table.print(stdout);
  std::printf("\nCSV:\n");
  table.print_csv(stdout);

  benchutil::json_metric("ablation_adaptive_static_model_share",
                         100 * st.model_share, "%");
  benchutil::json_metric("ablation_adaptive_model_share", 100 * ad.model_share,
                         "%");
  benchutil::json_metric("ablation_adaptive_model_share_gain",
                         100 * (ad.model_share - st.model_share), "pp");
  benchutil::json_metric("ablation_adaptive_static_work_share",
                         100 * st.work_share, "%");
  benchutil::json_metric("ablation_adaptive_work_share", 100 * ad.work_share,
                         "%");
  benchutil::json_metric("ablation_adaptive_static_fps", st.fps, "fps");
  benchutil::json_metric("ablation_adaptive_fps", ad.fps, "fps");
  benchutil::json_metric("ablation_adaptive_epochs", double(ad.epochs),
                         "count");
  benchutil::json_metric(
      "ablation_adaptive_ctl_overhead",
      100.0 * double(ad.overhead_bytes) /
          double(std::max<uint64_t>(1, ad.traffic_bytes)),
      "%");

  // The point of the subsystem, asserted: on a skewed stream the adaptive
  // wall must rebalance at least once and measurably improve the planner's
  // objective. The gate runs on the deterministic model share — wall-clock
  // share and DES fps stay informational because sub-millisecond tile
  // decodes make them scheduler-noise bound.
  PDW_CHECK_GE(ad.epochs, 1u) << "skewed stream never triggered a rebalance";
  PDW_CHECK_EQ(st.epochs, 0u) << "static run must stay on epoch 0";
  PDW_CHECK_GT(ad.model_share, st.model_share)
      << "adaptive tiling failed to improve the cost-model work share";
  return 0;
}
