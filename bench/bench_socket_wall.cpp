// The real-socket transport against the in-process engine: what does moving
// the 2x2 wall onto per-node UDP socket fabrics (loopback) cost, and what
// does the adaptive RTO actually observe on a real kernel path?
//
// Not a paper table — the paper's Myrinet/GM numbers assume OS-bypass
// hardware — but the deployment-shape baseline for multi-machine walls:
// throughput threaded vs socket vs socket-under-loss, plus the per-link
// RTT distribution the Jacobson/Karels estimator feeds on.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/text_table.h"
#include "core/pipeline.h"
#include "core/socket_wall.h"
#include "obs/collector.h"
#include "obs/metrics.h"

using namespace pdw;

namespace {

void merge_hist(obs::MetricsRegistry& reg, const char* family, int nodes,
                obs::Histogram* into) {
  for (int n = 0; n < nodes; ++n)
    into->merge(reg.histogram(family, obs::Labels{n, -1}));
}

}  // namespace

int main() {
  benchutil::print_banner(
      "Socket wall — UDP loopback transport vs in-process engine, 1-2-(2,2)",
      "infrastructure benchmark (no paper analogue; GM was OS-bypass)",
      "socket fps within a small factor of threaded; sub-millisecond "
      "loopback RTT; loss costs retransmissions, not correctness");

  const video::StreamSpec& spec = video::stream_by_id(1);
  const auto es = benchutil::stream(1);
  wall::TileGeometry geo(spec.width, spec.height, 2, 2, benchutil::kOverlap);
  const int k = 2;
  const int nodes = 1 + k + geo.tiles();

  core::ClusterPipeline threaded(geo, k, es);
  const core::ClusterStats t = threaded.run(nullptr);

  obs::MetricsRegistry clean_reg;
  core::SocketWallOptions so;
  so.metrics = &clean_reg;
  const core::ClusterStats s = core::run_socket_wall(geo, k, es, nullptr, so);
  obs::Histogram rtt, jitter;
  merge_hist(clean_reg, obs::family::kRttNs, nodes, &rtt);
  merge_hist(clean_reg, obs::family::kRttJitterNs, nodes, &jitter);

  obs::MetricsRegistry lossy_reg;
  core::SocketWallOptions lo;
  lo.metrics = &lossy_reg;
  lo.impair = true;
  lo.impair_cfg.seed = 42;
  lo.impair_cfg.loss = 0.02;
  lo.impair_cfg.delay = 0.05;
  lo.impair_cfg.delay_s = 0.001;
  const core::ClusterStats l = core::run_socket_wall(geo, k, es, nullptr, lo);

  // Telemetry overhead: the same wall streaming its metric/span sideband to
  // an in-process collector. The acceptance gate is sideband bytes < 1% of
  // the decode wire bytes — observability must be noise next to the video.
  obs::Collector collector;
  PDW_CHECK(collector.ok());
  collector.start();
  obs::MetricsRegistry tele_reg;
  core::SocketWallOptions to;
  to.metrics = &tele_reg;
  to.telemetry_port = collector.endpoint().port;
  to.telemetry_interval_s = 0.25;
  const core::ClusterStats tl = core::run_socket_wall(geo, k, es, nullptr, to);
  collector.stop();
  const uint64_t wire_bytes = tl.wire.traffic.total();
  const double overhead_pct =
      100.0 * double(collector.bytes_received()) / double(wire_bytes);

  TextTable table({"engine", "fps", "retransmits", "rtt p50 us", "rtt p95 us"});
  table.add_row({"threaded (in-process)", format("%.1f", t.fps),
                 format("%llu", (unsigned long long)t.ft.transport.retransmits),
                 "-", "-"});
  table.add_row({"socket (loopback)", format("%.1f", s.fps),
                 format("%llu", (unsigned long long)s.ft.transport.retransmits),
                 format("%.1f", double(rtt.p50()) / 1e3),
                 format("%.1f", double(rtt.p95()) / 1e3)});
  table.add_row({"socket + 2% loss", format("%.1f", l.fps),
                 format("%llu", (unsigned long long)l.ft.transport.retransmits),
                 "-", "-"});
  table.add_row({"socket + telemetry", format("%.1f", tl.fps),
                 format("%llu",
                        (unsigned long long)tl.ft.transport.retransmits),
                 "-", "-"});
  table.print(stdout);
  std::printf("\ntelemetry sideband: %llu bytes vs %llu wire bytes "
              "(%.3f%% overhead)\n",
              (unsigned long long)collector.bytes_received(),
              (unsigned long long)wire_bytes, overhead_pct);

  std::printf("\ncsv: engine,fps,retransmits\n");
  std::printf("csv: threaded,%.3f,%llu\n", t.fps,
              (unsigned long long)t.ft.transport.retransmits);
  std::printf("csv: socket,%.3f,%llu\n", s.fps,
              (unsigned long long)s.ft.transport.retransmits);
  std::printf("csv: socket_lossy,%.3f,%llu\n", l.fps,
              (unsigned long long)l.ft.transport.retransmits);

  benchutil::json_metric("socket_wall_fps", s.fps, "fps");
  benchutil::json_metric("socket_wall_threaded_fps", t.fps, "fps");
  benchutil::json_metric("socket_wall_lossy_fps", l.fps, "fps");
  benchutil::json_metric("socket_wall_rtt_p50_us", double(rtt.p50()) / 1e3,
                         "us");
  benchutil::json_metric("socket_wall_rtt_p95_us", double(rtt.p95()) / 1e3,
                         "us");
  benchutil::json_metric("socket_wall_rtt_p99_us", double(rtt.p99()) / 1e3,
                         "us");
  benchutil::json_metric("socket_wall_jitter_p50_us",
                         double(jitter.p50()) / 1e3, "us");
  benchutil::json_metric("socket_wall_jitter_p95_us",
                         double(jitter.p95()) / 1e3, "us");
  benchutil::json_metric("socket_wall_jitter_p99_us",
                         double(jitter.p99()) / 1e3, "us");
  benchutil::json_metric("socket_wall_lossy_retransmits",
                         double(l.ft.transport.retransmits), "count");
  benchutil::json_metric("socket_wall_telemetry_bytes",
                         double(collector.bytes_received()), "bytes");
  benchutil::json_metric("socket_wall_telemetry_overhead_pct", overhead_pct,
                         "%");
  PDW_CHECK_LT(overhead_pct, 1.0)
      << " telemetry sideband exceeded 1% of decode wire bytes";
  return 0;
}
