// Standalone fuzz driver.
//
// Each harness defines LLVMFuzzerTestOneInput (the libFuzzer entry point).
// When the toolchain has libFuzzer (clang -fsanitize=fuzzer) the harness can
// link against it directly by compiling with -DPDW_LIBFUZZER. GCC ships no
// libFuzzer, so this file provides a main() that reproduces the essential
// loop: replay a seed corpus, then run deterministic random mutations of it
// for a bounded number of iterations. Combined with -fsanitize=address,
// undefined this gives the same "no crash, no UB on arbitrary bytes"
// guarantee in plain CI.
//
//   fuzz_x [--runs N] [--seed S] [--max-len L] [corpus file|dir]...
//
// With no corpus arguments a handful of synthetic seeds (empty input, bare
// start codes, random bytes) are used. Exit code 0 means every input was
// processed without crashing; sanitizers abort the process on findings.
#ifndef PDW_LIBFUZZER

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// xorshift64* — deterministic across platforms, no libc rand() state.
struct Rng {
  uint64_t s;
  explicit Rng(uint64_t seed) : s(seed ? seed : 0x9E3779B97F4A7C15ull) {}
  uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  }
  // Uniform in [0, n).
  uint64_t below(uint64_t n) { return n ? next() % n : 0; }
};

std::vector<uint8_t> read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void add_input(const std::filesystem::path& p,
               std::vector<std::vector<uint8_t>>* corpus) {
  std::error_code ec;
  if (std::filesystem::is_directory(p, ec)) {
    for (const auto& e : std::filesystem::directory_iterator(p, ec))
      if (e.is_regular_file()) corpus->push_back(read_file(e.path()));
  } else {
    corpus->push_back(read_file(p));
  }
}

// One random structure-aware-ish mutation in place.
void mutate(Rng& rng, std::vector<uint8_t>* data, size_t max_len) {
  switch (rng.below(6)) {
    case 0: {  // flip a bit
      if (data->empty()) break;
      const size_t i = size_t(rng.below(data->size()));
      (*data)[i] ^= uint8_t(1u << rng.below(8));
      break;
    }
    case 1: {  // overwrite a byte
      if (data->empty()) break;
      (*data)[size_t(rng.below(data->size()))] = uint8_t(rng.next());
      break;
    }
    case 2: {  // truncate
      if (data->empty()) break;
      data->resize(size_t(rng.below(data->size())));
      break;
    }
    case 3: {  // duplicate a chunk
      if (data->empty() || data->size() >= max_len) break;
      const size_t from = size_t(rng.below(data->size()));
      const size_t len =
          std::min(size_t(rng.below(64)) + 1, data->size() - from);
      std::vector<uint8_t> chunk(data->begin() + long(from),
                                 data->begin() + long(from + len));
      const size_t at = size_t(rng.below(data->size() + 1));
      data->insert(data->begin() + long(at), chunk.begin(), chunk.end());
      break;
    }
    case 4: {  // splice in a start code prefix with a random code
      if (data->size() + 4 > max_len) break;
      const uint8_t sc[4] = {0, 0, 1, uint8_t(rng.next())};
      const size_t at = size_t(rng.below(data->size() + 1));
      data->insert(data->begin() + long(at), sc, sc + 4);
      break;
    }
    default: {  // overwrite a short run with one value
      if (data->empty()) break;
      const size_t from = size_t(rng.below(data->size()));
      const size_t len =
          std::min(size_t(rng.below(16)) + 1, data->size() - from);
      std::memset(data->data() + from, int(uint8_t(rng.next())), len);
      break;
    }
  }
  if (data->size() > max_len) data->resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 1000, seed = 1, max_len = 1u << 20;
  std::vector<std::vector<uint8_t>> corpus;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--runs") && i + 1 < argc)
      runs = std::strtoull(argv[++i], nullptr, 10);
    else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (!std::strcmp(argv[i], "--max-len") && i + 1 < argc)
      max_len = std::strtoull(argv[++i], nullptr, 10);
    else
      add_input(argv[i], &corpus);
  }
  if (corpus.empty()) {
    corpus.push_back({});                          // empty input
    corpus.push_back({0x00, 0x00, 0x01, 0xB3});    // bare sequence header
    corpus.push_back({0x00, 0x00, 0x01, 0x00});    // bare picture header
    std::vector<uint8_t> noise(512);
    Rng r(seed ^ 0xA5A5A5A5ull);
    for (auto& b : noise) b = uint8_t(r.next());
    corpus.push_back(std::move(noise));
  }

  // Replay every seed verbatim first — corpus regressions reproduce directly.
  for (const auto& input : corpus)
    LLVMFuzzerTestOneInput(input.data(), input.size());

  Rng rng(seed);
  for (uint64_t run = 0; run < runs; ++run) {
    std::vector<uint8_t> data = corpus[size_t(rng.below(corpus.size()))];
    const uint64_t n_mut = 1 + rng.below(8);
    for (uint64_t m = 0; m < n_mut; ++m) mutate(rng, &data, max_len);
    LLVMFuzzerTestOneInput(data.data(), data.size());
    if ((run + 1) % 10000 == 0)
      std::fprintf(stderr, "#%llu\n", (unsigned long long)(run + 1));
  }
  std::fprintf(stderr, "done: %zu seeds + %llu mutated runs, no findings\n",
               corpus.size(), (unsigned long long)runs);
  return 0;
}

#endif  // PDW_LIBFUZZER
