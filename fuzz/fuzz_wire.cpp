// Fuzz target: the typed wire codec. Arbitrary bytes through decode_any()
// and every typed decode(). Contract: malformed input is reported by a
// false/nullopt return — never an exception, sanitizer report, OOM or hang.
// Messages that do decode must re-encode to the same envelope type.
#include <cstdint>
#include <span>

#include "proto/wire.h"

using namespace pdw;

namespace {

template <typename T>
void try_typed(std::span<const uint8_t> data) {
  T out;
  if (proto::decode(data, &out)) {
    // Accepted bodies must round-trip through pack() unchanged.
    const proto::Packed p = proto::pack(out);
    T again;
    if (!proto::decode(p.body, &again) || !(again == out)) __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> body(data, size);
  (void)proto::decode_any(body);
  try_typed<proto::PictureMsg>(body);
  try_typed<proto::SpMsg>(body);
  try_typed<proto::GoAheadAck>(body);
  try_typed<proto::ExchangeMsg>(body);
  try_typed<proto::EndOfStream>(body);
  try_typed<proto::Heartbeat>(body);
  try_typed<proto::Finished>(body);
  try_typed<proto::DeathNotice>(body);
  try_typed<proto::SkipBroadcast>(body);
  return 0;
}
