// Fuzz target: the system layer. Program-stream and transport-stream demux
// take bytes straight off disk or the wire, so their contract is the
// strictest of all: they NEVER throw — damage is reported in
// DemuxResult/TsDemuxResult status fields and the demux resynchronizes and
// carries on. No try/catch here: any exception is a finding.
#include <cstdint>
#include <span>

#include "ps/program_stream.h"
#include "ps/transport_stream.h"

using namespace pdw;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> bytes(data, size);
  const ps::DemuxResult d = ps::demux_program_stream(bytes);
  (void)d;
  const ps::TsDemuxResult t = ps::demux_transport_stream(bytes);
  (void)t;
  return 0;
}
