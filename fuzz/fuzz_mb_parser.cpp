// Fuzz target: the macroblock-layer VLC parser — the hottest attack surface,
// since slice payloads are the bulk of any stream and every bit pattern is
// reachable. The first bytes pick a picture configuration; the rest is fed
// to the parser as a slice body and as a forced sub-picture run. The parser
// must latch a DecodeStatus on damage: no exception on the per-macroblock
// path, no out-of-bounds coefficient or motion state, no runaway loop.
#include <cstdint>
#include <span>

#include "bitstream/bit_reader.h"
#include "mpeg2/mb_parser.h"

using namespace pdw;

namespace {

struct CountSink : mpeg2::MbSink {
  int count = 0;
  void on_macroblock(const mpeg2::Macroblock&, const mpeg2::MbState&, size_t,
                     size_t) override {
    ++count;
  }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 4) return 0;

  mpeg2::SequenceHeader seq;
  seq.width = 64;  // 4x4 macroblocks: big enough for skips, small enough to
  seq.height = 64; // make address overruns one bit flip away
  mpeg2::PictureContext ctx;
  ctx.seq = &seq;
  switch (data[0] % 3) {
    case 0: ctx.ph.type = mpeg2::PicType::I; break;
    case 1: ctx.ph.type = mpeg2::PicType::P; break;
    default: ctx.ph.type = mpeg2::PicType::B; break;
  }
  for (int s = 0; s < 2; ++s)
    for (int t = 0; t < 2; ++t)
      ctx.pce.f_code[s][t] = uint8_t(1 + ((data[1] >> (2 * s + t)) & 3));
  ctx.pce.intra_dc_precision = data[2] & 3;
  ctx.pce.q_scale_type = (data[2] & 4) != 0;
  const mpeg2::ParseMode mode =
      (data[2] & 8) ? mpeg2::ParseMode::kScan : mpeg2::ParseMode::kFull;
  const int row = data[3] & 3;
  // quant_scale_code's contract is "comes from a slice header": a 5-bit
  // field validated to 1..31 (parse_slice_header rejects 0). Stay in range.
  const int quant = 1 + int(data[3] >> 3) % 31;

  const std::span<const uint8_t> payload(data + 4, size - 4);
  {
    mpeg2::MbSyntaxDecoder dec(ctx, mode);
    CountSink sink;
    BitReader r(payload);
    (void)dec.parse_slice_body(r, row, quant, sink);
  }
  {
    // Sub-picture run driver with a forced first address, as the tile
    // decoders drive it.
    mpeg2::MbSyntaxDecoder dec(ctx, mode);
    mpeg2::MbState st;
    st.reset_dc(ctx.pce);
    st.quant_scale_code = quant;
    dec.load_state(st);
    CountSink sink;
    BitReader r(payload);
    (void)dec.parse_run(r, row * 4, 1 + (data[0] & 3), sink);
  }
  return 0;
}
