// Fuzz target: the header layer. Arbitrary bytes through the picture scan,
// the combined picture-header parse, and every individual header parser.
// The contract under test: header parsing reports damage through
// DecodeStatus — it must not crash, loop, or trip a sanitizer on any input.
// BitstreamError is tolerated only from scan-level entry points that
// document it (none here); InternalError or a signal is a finding.
#include <cstdint>
#include <span>

#include "bitstream/bit_reader.h"
#include "bitstream/start_code.h"
#include "mpeg2/headers.h"

using namespace pdw;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> es(data, size);

  // Picture-level scan + combined header parse, exactly as the root splitter
  // and the serial decoder front-end use it.
  {
    mpeg2::SequenceHeader seq;
    bool have_seq = false;
    for (const PictureSpan& ps : scan_pictures(es)) {
      mpeg2::ParsedPictureHeaders headers;
      (void)mpeg2::parse_picture_headers(es.subspan(ps.begin, ps.end - ps.begin),
                                         &seq, &have_seq, &headers);
    }
  }

  // Each parser straight from byte 0 — exercises truncation and garbage in
  // positions the scan would normally filter out.
  {
    BitReader r(es);
    mpeg2::SequenceHeader seq;
    (void)mpeg2::parse_sequence_header(r, &seq);
  }
  {
    BitReader r(es);
    mpeg2::GopHeader gop;
    (void)mpeg2::parse_gop_header(r, &gop);
  }
  {
    BitReader r(es);
    mpeg2::PictureHeader ph;
    (void)mpeg2::parse_picture_header(r, &ph);
  }
  {
    BitReader r(es);
    mpeg2::SequenceHeader seq;
    mpeg2::PictureCodingExt pce;
    (void)mpeg2::parse_extension(r, &seq, &pce);
  }
  {
    // Slice headers against both a normal and an ultra-high picture (the
    // vertical-position extension path).
    for (int height : {480, 2912}) {
      mpeg2::SequenceHeader seq;
      seq.width = 1920;
      seq.height = height;
      const uint8_t code = size ? uint8_t(1 + data[0] % 0xAF) : uint8_t(1);
      BitReader r(es);
      int row = -1, q = -1;
      (void)mpeg2::parse_slice_header(r, seq, code, &row, &q);
    }
  }
  return 0;
}
