// Fuzz target: the splitter hierarchy front-end. Arbitrary bytes through the
// root splitter's picture scan and the macroblock splitter's slice-level
// split, on a 2x2 wall derived from whatever sequence header survives.
// Contract: hopeless streams throw BitstreamError from the RootSplitter
// constructor (documented); per-picture damage must come back as a failed
// SplitResult::status — never an InternalError, sanitizer report or hang.
#include <cstdint>
#include <span>

#include "common/check.h"
#include "core/mb_splitter.h"
#include "core/root_splitter.h"

using namespace pdw;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> es(data, size);
  try {
    core::RootSplitter root(es);
    const mpeg2::SequenceHeader& seq = root.stream_info().seq;
    // An operator can only build a 2x2 wall from a stream at least 2 pixels
    // in each dimension; TileGeometry CHECKs that (operator misconfiguration
    // is an InternalError by design). Streams advertising smaller dimensions
    // are valid MPEG-2 but can't host this wall — skip, don't misconfigure.
    if (seq.width < 2 || seq.height < 2) return 0;
    wall::TileGeometry geo(seq.width, seq.height, 2, 2, 0);
    core::MacroblockSplitter splitter(geo);
    splitter.set_stream_info(root.stream_info());
    for (int i = 0; i < root.picture_count(); ++i) {
      const core::SplitResult r = splitter.split(root.picture(i), uint32_t(i));
      (void)r;
    }
  } catch (const BitstreamError&) {
    // No pictures / no usable sequence header: rejected streams are fine.
  }
  return 0;
}
