// Zipf multi-tenant traffic model: a discrete-event overload generator for
// the admission controller.
//
// The paper serves one ultra-high-resolution stream; a serving wall fronts a
// *catalog* — thousands of tenants whose popularity is heavy-tailed. This
// model replays that population against proto::AdmissionController without
// decoding a single macroblock: tenants arrive by a seeded Poisson process,
// pick their identity from a Zipf(s) rank distribution, declare a spec
// (geometry, fps, priority class) derived deterministically from their rank,
// hold a session for an exponential duration, and depart. Between events the
// model integrates per-class deadline accounting against the wall capacity.
//
// The twist that gives the ladder real work: a tenant's *measured* cost is
// its declared cost times a per-rank factor in [0.85, 1.15] — real streams
// never cost exactly what they declare. The admission ledger sees declared
// cost; the pressure signal fed to on_pressure() is the measured load. When
// measurement runs hot the ladder degrades lowest-class tenants first, and
// deadline misses (measured load above raw capacity) are absorbed by the
// classes already shedding — which is exactly the property the overload
// sweep asserts: premium tenants hold <1% misses at 2x offered load.
//
// Everything is a pure function of TrafficConfig (seed included): same
// config, same report, byte for byte — the chaos harness and CI depend on
// that.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/admission.h"

namespace pdw::sim {

struct TrafficConfig {
  proto::WallCapacity capacity;  // measured wall budget (mb/s)
  double overload = 1.0;  // offered load as a multiple of capacity.mb_per_s
  int tenants = 2000;     // catalog size (Zipf ranks)
  double zipf_s = 1.1;    // popularity exponent
  double sim_seconds = 120.0;
  double mean_hold_s = 10.0;  // exponential session duration
  uint64_t seed = 1;
  // Class mix over ranks (premium + standard <= 1; the rest is background).
  double premium_share = 0.1;
  double standard_share = 0.6;
  // Ladder pricing handed to the controller.
  double b_share = 0.5;
  double p_share = 0.3;
};

struct ClassStats {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t renegotiated = 0;
  uint64_t rejected = 0;
  double pictures = 0;         // picture-slots served over the run
  double shed = 0;             // slots shed by the ladder
  double deadline_checks = 0;  // one per non-shed picture slot
  double deadline_misses = 0;

  double miss_rate() const {
    return deadline_checks > 0 ? deadline_misses / deadline_checks : 0.0;
  }
  double shed_rate() const {
    return pictures > 0 ? shed / pictures : 0.0;
  }
};

struct TrafficReport {
  ClassStats cls[3];  // indexed by proto::PriorityClass
  uint64_t arrivals = 0;
  uint64_t departures = 0;
  uint64_t degrades = 0;
  uint64_t reverts = 0;
  double peak_measured_utilization = 0;
  double mean_measured_utilization = 0;  // time-weighted
  // The full admission decision sequence — what engine-equivalence runs
  // compare.
  std::vector<proto::AdmissionController::Action> log;
  // Ledger invariants: every offer answered exactly once, every admitted
  // session released, committed load drained to ~0 at teardown.
  bool accounting_ok = false;

  ClassStats totals() const;
};

// Spec a rank-`r` tenant declares (deterministic; shared with tests).
proto::TenantSpec tenant_spec(const TrafficConfig& cfg, int rank);

TrafficReport run_traffic(const TrafficConfig& cfg);

}  // namespace pdw::sim
