// Discrete-event cluster simulator.
//
// The host has a single CPU core, so the threaded pipeline cannot exhibit
// real speedups. Instead, the lockstep pipeline measures the true cost of
// every protocol operation on real data (split time, per-tile decode time,
// serve time, every message size), and this simulator replays the paper's
// Table-3 protocol on a modeled cluster: one node per PC, sequential compute
// per node, and a Myrinet-class link model (per-node NIC serialization at a
// configurable bandwidth plus a fixed per-message latency).
//
// The protocol's dependency structure is acyclic per picture (all SENDs
// precede all remote-block consumption), so the "simulation" is an exact
// forward pass over the dependency graph — equivalent to an event-queue DES
// for this protocol, but simpler and deterministic.
//
// Outputs match the paper's evaluation quantities:
//   * frame rate (Table 5/6, Figures 6/8),
//   * per-decoder runtime breakdown Work/Serve/Receive/Wait/Ack (Figure 7),
//   * per-node send/receive bandwidth (Figure 9).
#pragma once

#include <vector>

#include "common/traffic_matrix.h"
#include "core/lockstep.h"
#include "wall/geometry.h"

namespace pdw::sim {

// Chrome-trace pid offset for simulated nodes: the DES emits its virtual-time
// spans as pid = kSimTracePidBase + node so the modeled cluster shows up as a
// separate process group next to any real (threaded-engine) spans in the same
// trace file.
inline constexpr int kSimTracePidBase = 10000;

struct LinkModel {
  double bandwidth_bps = 160e6 * 8;  // Myrinet-class: ~160 MB/s per link
  double latency_s = 10e-6;          // per-message one-way latency
  double ack_cpu_s = 3e-6;           // CPU cost to emit an ack/go-ahead

  double transfer_s(size_t bytes) const {
    return double(bytes) * 8.0 / bandwidth_bps;
  }
};

// How the root assigns pictures to second-level splitters. The paper uses
// round-robin and names dynamic load balancing as future work (§6).
enum class RootSchedule {
  kRoundRobin,
  kLeastLoaded,  // send to the splitter that will go idle first
};

// Fault schedule replayed by the DES — mirrors the threaded runtime's fault
// handling (net/fault.h + core/pipeline.h) on the modeled cluster, so
// recovery latency and fps-under-faults can be predicted without running
// the real pipeline.
struct SimFaultModel {
  uint64_t seed = 0;
  // Per-transmission drop probability on bulk links (picture, sub-picture
  // and exchange messages). Each drop costs the sender one retransmit
  // timeout (exponential backoff, capped) plus a repeat transfer —
  // identical decisions to FaultInjector for the same seed.
  double drop_rate = 0;
  double rto_s = 0.004;
  double rto_max_s = 0.064;

  // Kill the decoder node owning `crash_tile` right after it finishes
  // decoding picture `crash_at_picture` (-1 = no crash).
  int crash_tile = -1;
  int crash_at_picture = 0;
  // The root declares the node dead this long after its last heartbeat;
  // until then the pipeline stalls on the dead node's acks (exactly like
  // the threaded runtime's health monitor).
  double hb_timeout_s = 0.25;
  // true: the surviving decoder with the smallest tile adopts the dead
  // tile from the resync picture on (decoding both serially). false:
  // degraded mode — the dead tile stays frozen for the rest of the run.
  bool adopt = true;
};

// One recovery as replayed by the DES.
struct SimRecovery {
  int tile = -1;
  int adopter_tile = -1;      // -1 in degraded mode
  int resync_picture = -1;    // first closed-GOP picture after detection
  double crash_time_s = 0;
  double detect_time_s = 0;   // crash + heartbeat timeout
  double resync_time_s = 0;   // dead tile's slot is exact again (adopt mode)
  // Wall-clock from crash to full recovery (detection in degraded mode).
  double recovery_latency_s = 0;
};

struct SimParams {
  int k = 1;              // second-level splitters
  bool two_level = true;  // false: 1-(m,n), the root splits macroblocks itself
  LinkModel link;
  RootSchedule schedule = RootSchedule::kRoundRobin;
  // Scale all measured compute times by this factor (1.0 = this host's
  // speed). Exposed so experiments can model slower/faster node CPUs.
  double cpu_scale = 1.0;
  SimFaultModel fault;
};

// Per-decoder accumulated runtime breakdown (Figure 7's five categories).
struct DecoderBreakdown {
  double work = 0;         // decode + display
  double serve = 0;        // extracting/sending remote macroblocks
  double receive = 0;      // waiting for the sub-picture from the splitter
  double wait_remote = 0;  // waiting for remote macroblocks
  double ack = 0;          // sending acks

  double busy() const { return work + serve + ack; }
  double total() const { return work + serve + receive + wait_remote + ack; }
};

struct NodeTraffic {
  double sent_bytes = 0;
  double recv_bytes = 0;
};

struct SimResult {
  int pictures = 0;
  double makespan_s = 0;
  double fps = 0;

  // Node indexing: 0 = root, 1..k = splitters, k+1.. = decoders.
  // (For one-level mode, k = 0 and the root is the macroblock splitter.)
  int nodes = 0;
  int first_decoder_node = 0;
  std::vector<DecoderBreakdown> decoders;   // per tile
  std::vector<NodeTraffic> traffic;         // per node, bytes over the run
  // Same bytes as `traffic`, attributed per (src, dst) link — the Fig. 9
  // node x node matrix (TrafficMatrix::to_table pretty-prints it).
  TrafficMatrix traffic_matrix;
  std::vector<double> splitter_busy_s;      // per second-level splitter

  // Fault-schedule outcomes (empty / zero on a clean run).
  std::vector<SimRecovery> recoveries;
  int degraded_frames = 0;    // display frames with a frozen dead tile
  uint64_t retransmits = 0;   // drop-induced repeat transmissions

  double send_bandwidth_Bps(int node) const {
    return traffic[size_t(node)].sent_bytes / makespan_s;
  }
  double recv_bandwidth_Bps(int node) const {
    return traffic[size_t(node)].recv_bytes / makespan_s;
  }
};

// Replay `traces` (from LockstepPipeline::run) on the modeled cluster.
SimResult simulate_cluster(const std::vector<core::PictureTrace>& traces,
                           const wall::TileGeometry& geo,
                           const SimParams& params);

// Convenience: average split / per-tile decode seconds from traces (the t_s
// and t_d of the paper's §4.6 model).
struct MeasuredCosts {
  double t_split = 0;       // mean split time per picture
  double t_decode = 0;      // mean decode time per picture of the slowest tile
  double t_decode_mean = 0; // mean across tiles
  double t_copy = 0;        // root copy time
};
MeasuredCosts measure_costs(const std::vector<core::PictureTrace>& traces);

}  // namespace pdw::sim
