#include "sim/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "net/fabric.h"
#include "obs/trace.h"
#include "proto/nodes.h"

namespace pdw::sim {

using core::PictureTrace;

namespace {
constexpr double kAckBytes = double(net::Message::kHeaderBytes);
constexpr double kMsgHeader = double(net::Message::kHeaderBytes);
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SimResult simulate_cluster(const std::vector<PictureTrace>& traces,
                           const wall::TileGeometry& geo,
                           const SimParams& params) {
  PDW_CHECK(!traces.empty());
  const int T = geo.tiles();
  const int k = params.two_level ? params.k : 1;
  PDW_CHECK_GE(k, 1);
  const int N = int(traces.size());
  const LinkModel& link = params.link;
  const double scale = params.cpu_scale;
  const SimFaultModel& fm = params.fault;

  SimResult result;
  result.pictures = N;
  result.nodes = params.two_level ? 1 + k + T : 1 + T;
  result.first_decoder_node = params.two_level ? 1 + k : 1;
  result.decoders.assign(size_t(T), DecoderBreakdown{});
  result.traffic.assign(size_t(result.nodes), NodeTraffic{});
  result.traffic_matrix.reset(result.nodes);
  result.splitter_busy_s.assign(size_t(k), 0.0);

  // Virtual-time trace emission: every modeled stage lands in the global
  // tracer as a completed span (same canonical names the runtime engines
  // record), pid-offset so Perfetto shows the modeled cluster as its own
  // process group. `tid` is the tile lane, so an adopting node's two tiles
  // stay distinguishable.
  obs::Tracer& tracer = obs::Tracer::global();
  const bool tracing = tracer.enabled();
  auto span = [&](const char* name, int node, int tid, double start,
                  double end, uint32_t pic) {
    if (tracing && end > start)
      tracer.add_complete(name, kSimTracePidBase + node, tid, start,
                          end - start, pic);
  };

  // Table-3 node numbering and ordering arithmetic (round-robin splitter
  // choice, NSID ack targets) come from the shared protocol layer; the
  // one-level mode folds the root and the single splitter into node 0.
  const proto::Topology topo{k, T};
  auto splitter_node = [&](int s) { return params.two_level ? 1 + s : 0; };
  auto decoder_node = [&](int t) { return result.first_decoder_node + t; };

  // Per-picture protocol metadata and the tile -> node map the shared
  // recovery-policy helpers operate on.
  std::vector<proto::PictureMeta> metas(static_cast<size_t>(N));
  for (int i = 0; i < N; ++i)
    metas[size_t(i)].has_gop_header = traces[size_t(i)].has_gop_header;
  std::vector<int> tile_owner(static_cast<size_t>(T));
  for (int t = 0; t < T; ++t) tile_owner[size_t(t)] = topo.decoder(t);

  // Lossy-link model: each bulk transfer re-rolls FaultInjector's drop
  // decision per transmission (same SplitMix64 stream as the real fabric, so
  // a given seed produces one schedule). A drop costs the sender one
  // retransmit timeout (exponential backoff, capped) plus a repeat transfer.
  const net::FaultInjector inj(fm.seed, net::FaultRates{.drop = fm.drop_rate});
  std::vector<uint64_t> link_ord(size_t(result.nodes) * result.nodes, 0);
  auto xfer = [&](int src, int dst, size_t bytes) -> double {
    double t = link.transfer_s(bytes);
    if (fm.drop_rate <= 0) return t;
    uint64_t& ord = link_ord[size_t(src) * result.nodes + dst];
    double rto = fm.rto_s;
    while (inj.decide(src, dst, ord++, 0, bytes).drop) {
      t += rto + link.transfer_s(bytes);
      rto = std::min(rto * 2, fm.rto_max_s);
      ++result.retransmits;
    }
    return t;
  };

  // Crash schedule: the decoder node owning fm.crash_tile dies right after
  // decoding picture fm.crash_at_picture. Until the heartbeat timeout
  // expires the splitters still gate on its acks (pipeline stalls); then the
  // root broadcasts the death and either an adopter takes the tile over from
  // the next closed-GOP picture, or the tile stays frozen (degraded mode).
  const bool crash_on = fm.crash_tile >= 0 && fm.crash_tile < T &&
                        fm.crash_at_picture >= 0 && fm.crash_at_picture < N - 1;
  bool dead = false;      // the node is down
  bool informed = false;  // the death has been detected and broadcast
  double crash_time = kInf, detect_time = kInf;
  int resync_pic = -1;  // first adopted picture (-1: none / degraded)
  int adopter = -1;

  // --- Root stage: when is picture i fully received by its splitter? -------
  // (One-level mode: the console node both "is" the splitter and has the
  // stream locally, so pictures are available immediately after the copy.)
  std::vector<double> recv_at_splitter(size_t(N), 0.0);
  std::vector<double> splitter_ack_at_root(size_t(N), 0.0);

  if (params.two_level) {
    double root_free = 0.0;
    for (int i = 0; i < N; ++i) {
      const PictureTrace& tr = traces[size_t(i)];
      double t = root_free + tr.copy_s * scale;  // "Copy P to send buffer"
      span(obs::span::kCopyPic, 0, 0, root_free, t, uint32_t(i));
      if (i > 0) {
        // Wait for the ack/go-ahead of the previous picture ("wait for ACK
        // from any splitter, except for the first picture").
        const double copy_end = t;
        t = std::max(t, splitter_ack_at_root[size_t(i - 1)]);
        span(obs::span::kGoAheadWait, 0, 0, copy_end, t, uint32_t(i));
      }
      const double tx = xfer(0, splitter_node(topo.splitter_for_picture(uint32_t(i))),
                             tr.picture_bytes + size_t(kMsgHeader));
      const double send_done = t + tx;
      recv_at_splitter[size_t(i)] = send_done + link.latency_s;
      // The splitter acks as soon as it has the picture.
      splitter_ack_at_root[size_t(i)] = recv_at_splitter[size_t(i)] +
                                        link.ack_cpu_s +
                                        link.transfer_s(size_t(kAckBytes)) +
                                        link.latency_s;
      root_free = send_done;

      result.traffic[0].sent_bytes += double(tr.picture_bytes) + kMsgHeader;
      result.traffic[0].recv_bytes += kAckBytes;
      // (The receiving splitter's share is attributed in the main loop once
      // the schedule has chosen it.)
    }
  } else {
    // One-level: the console scans locally; the copy is still real work.
    double free_t = 0.0;
    for (int i = 0; i < N; ++i) {
      const double copy_start = free_t;
      free_t += traces[size_t(i)].copy_s * scale;
      span(obs::span::kCopyPic, 0, 0, copy_start, free_t, uint32_t(i));
      recv_at_splitter[size_t(i)] = free_t;
    }
    // Not sequential with splitting here — splitting is gated below by
    // splitter_free, which starts after this copy timeline anyway.
  }

  // --- Per-picture protocol forward pass -----------------------------------
  std::vector<double> splitter_free(size_t(k), 0.0);
  std::vector<double> decoder_free(size_t(T), 0.0);
  // Ack arrival (at the next picture's splitter) for the previous picture,
  // per decoder.
  std::vector<double> prev_pic_dec_ack(size_t(T), 0.0);

  std::vector<double> sp_arrival(size_t(T), 0.0);
  std::vector<double> serve_end(size_t(T), 0.0);
  std::vector<double> start(size_t(T), 0.0);

  for (int i = 0; i < N; ++i) {
    const PictureTrace& tr = traces[size_t(i)];

    int s = 0;
    if (params.two_level) {
      if (params.schedule == RootSchedule::kRoundRobin) {
        s = topo.splitter_for_picture(uint32_t(i));
      } else {
        // Least-loaded: the root tracks outstanding work and picks the
        // splitter that will free up first (§6 future work).
        for (int j = 1; j < k; ++j)
          if (splitter_free[size_t(j)] < splitter_free[size_t(s)]) s = j;
      }
      result.traffic[size_t(splitter_node(s))].recv_bytes +=
          double(tr.picture_bytes) + kMsgHeader;
      result.traffic[size_t(splitter_node(s))].sent_bytes += kAckBytes;
      result.traffic_matrix.add(0, splitter_node(s),
                                tr.picture_bytes + size_t(kMsgHeader));
      result.traffic_matrix.add(splitter_node(s), 0, uint64_t(kAckBytes));
    }

    // Split.
    const double split_start =
        std::max(recv_at_splitter[size_t(i)], splitter_free[size_t(s)]);
    const double split_end = split_start + tr.split_s * scale;
    span(obs::span::kSplitPic, splitter_node(s), 0, split_start, split_end,
         uint32_t(i));
    result.splitter_busy_s[size_t(s)] += tr.split_s * scale;

    // Gate on decoder acks for the previous picture (ANID redirection: those
    // acks were addressed to *this* splitter).
    double gate = split_end;
    if (i > 0)
      for (int t = 0; t < T; ++t) {
        if (dead && t == fm.crash_tile) {
          if (informed) continue;  // death known: gate over live nodes only
          if (i - 1 > fm.crash_at_picture) {
            // The dead node never acked picture i-1: the pipeline stalls
            // until the heartbeat timeout declares it dead. This is the
            // detection event — pick the resync picture (first closed-GOP
            // picture the splitters have not yet routed) and an adopter.
            gate = std::max(gate, detect_time);
            informed = true;
            // Resync point and adopter come from the shared protocol layer
            // (the same helpers RootNode calls in the runtime engines).
            const uint32_t r = proto::pick_resync_picture(metas, i);
            resync_pic = r < uint32_t(N) ? int(r) : -1;
            adopter = proto::pick_adopter_tile(
                tile_owner, {topo.decoder(fm.crash_tile)},
                topo.decoder(fm.crash_tile),
                fm.adopt ? proto::RecoveryPolicy::kAdopt
                         : proto::RecoveryPolicy::kDegrade);
            if (resync_pic < 0 || adopter < 0) {  // nobody (or nowhere) to adopt
              resync_pic = -1;
              adopter = -1;
            }
            SimRecovery rec;
            rec.tile = fm.crash_tile;
            rec.adopter_tile = adopter;
            rec.resync_picture = resync_pic;
            rec.crash_time_s = crash_time;
            rec.detect_time_s = detect_time;
            result.recoveries.push_back(rec);
            continue;
          }
        }
        gate = std::max(gate, prev_pic_dec_ack[size_t(t)]);
      }
    span(obs::span::kAnidWait, splitter_node(s), 0, split_end, gate,
         uint32_t(i));

    // Is the dead tile decoded this picture, and by whom? Decided after the
    // gate loop: detection happens in there, and adoption must take effect
    // at the resync picture itself, not one picture later.
    // host == -1: nobody (frozen frame); host == adopter: adopted.
    const bool tile_lost = dead && i > fm.crash_at_picture;
    const int dead_host =
        tile_lost ? (resync_pic >= 0 && i >= resync_pic ? adopter : -1)
                  : fm.crash_tile;
    auto active = [&](int t) {
      return !(tile_lost && t == fm.crash_tile && dead_host < 0);
    };
    if (tile_lost && dead_host < 0) ++result.degraded_frames;

    // Send SPs sequentially over the splitter's NIC. A lost tile's SP is not
    // sent; an adopted tile's SP goes to the adopter's node.
    double nic = gate;
    for (int t = 0; t < T; ++t) {
      if (!active(t)) continue;
      const int host = (t == fm.crash_tile) ? dead_host : t;
      const double bytes = double(tr.sp_msg_bytes[size_t(t)]) + kMsgHeader;
      nic += xfer(splitter_node(s), decoder_node(host), size_t(bytes));
      sp_arrival[size_t(t)] = nic + link.latency_s;
      result.traffic[size_t(splitter_node(s))].sent_bytes += bytes;
      result.traffic[size_t(decoder_node(host))].recv_bytes += bytes;
      result.traffic_matrix.add(splitter_node(s), decoder_node(host),
                                uint64_t(bytes));
      result.splitter_busy_s[size_t(s)] += link.transfer_s(size_t(bytes));
    }
    span(obs::span::kRouteSp, splitter_node(s), 0, gate, nic, uint32_t(i));
    splitter_free[size_t(s)] = nic;

    // Decoders: phase 1 — receive SP, ack, serve remote macroblocks. An
    // adopting node handles its own tile first, then the adopted tile
    // (sequential compute on one CPU) — so the adopted tile goes last.
    std::vector<int> order;
    order.reserve(size_t(T));
    for (int t = 0; t < T; ++t)
      if (t != fm.crash_tile || !tile_lost) order.push_back(t);
    if (tile_lost && dead_host >= 0) order.push_back(fm.crash_tile);

    for (const int t : order) {
      if (!active(t)) continue;
      const int host = (t == fm.crash_tile) ? dead_host : t;
      const bool merged = host != t;  // adopted tile rides the host's CPU
      DecoderBreakdown& bd = result.decoders[size_t(host)];
      const double arr = sp_arrival[size_t(t)];
      const double host_free =
          merged ? serve_end[size_t(host)] : decoder_free[size_t(t)];
      const double st = std::max(arr, host_free);
      start[size_t(t)] = st;
      bd.receive += std::max(0.0, arr - host_free);
      span(obs::span::kRecvSp, decoder_node(host), t, host_free, arr,
           uint32_t(i));

      // Ack to the next picture's splitter.
      prev_pic_dec_ack[size_t(t)] = st + link.ack_cpu_s +
                                    link.transfer_s(size_t(kAckBytes)) +
                                    link.latency_s;
      bd.ack += link.ack_cpu_s;
      span(obs::span::kAckPic, decoder_node(host), t, st,
           st + link.ack_cpu_s, uint32_t(i));
      const int next_s = params.two_level ? int(topo.nsid(uint32_t(i))) : 0;
      result.traffic[size_t(decoder_node(host))].sent_bytes += kAckBytes;
      result.traffic[size_t(splitter_node(next_s))].recv_bytes += kAckBytes;
      result.traffic_matrix.add(decoder_node(host), splitter_node(next_s),
                                uint64_t(kAckBytes));

      // Serve: extraction CPU plus NIC time for outgoing exchange messages.
      double tx = 0.0;
      for (int d = 0; d < T; ++d) {
        if (!active(d)) continue;
        const double bytes = double(tr.exchange_bytes.at(t, d));
        if (bytes == 0.0) continue;
        const int dh = (d == fm.crash_tile) ? dead_host : d;
        if (dh == host) continue;  // co-hosted tiles exchange locally
        tx += xfer(decoder_node(host), decoder_node(dh),
                   size_t(bytes + kMsgHeader));
        result.traffic[size_t(decoder_node(host))].sent_bytes +=
            bytes + kMsgHeader;
        result.traffic[size_t(decoder_node(dh))].recv_bytes +=
            bytes + kMsgHeader;
        result.traffic_matrix.add(decoder_node(host), decoder_node(dh),
                                  uint64_t(bytes + kMsgHeader));
      }
      const double serve = tr.serve_s[size_t(t)] * scale + tx;
      bd.serve += serve;
      serve_end[size_t(t)] = st + link.ack_cpu_s + serve;
      span(obs::span::kServeSp, decoder_node(host), t, st + link.ack_cpu_s,
           serve_end[size_t(t)], uint32_t(i));
    }

    // Phase 2 — wait for remote macroblocks, then decode. The adopted tile
    // decodes after the host's own tile on the same CPU.
    for (const int t : order) {
      if (!active(t)) continue;
      const int host = (t == fm.crash_tile) ? dead_host : t;
      DecoderBreakdown& bd = result.decoders[size_t(host)];
      double ready =
          host != t ? decoder_free[size_t(host)] : serve_end[size_t(t)];
      for (int src = 0; src < T; ++src) {
        if (tr.exchange_bytes.at(src, t) == 0) continue;
        if (!active(src)) continue;  // concealed: dead tile sends nothing
        ready = std::max(ready, serve_end[size_t(src)] + link.latency_s);
      }
      bd.wait_remote += std::max(0.0, ready - serve_end[size_t(t)]);
      span(obs::span::kWaitHalo, decoder_node(host), t, serve_end[size_t(t)],
           ready, uint32_t(i));
      const double decode_end = ready + tr.decode_s[size_t(t)] * scale;
      span(obs::span::kDecodeSp, decoder_node(host), t, ready, decode_end,
           uint32_t(i));
      bd.work += tr.decode_s[size_t(t)] * scale;
      decoder_free[size_t(host)] = decode_end;
      if (host != t) decoder_free[size_t(t)] = decode_end;

      if (crash_on && !dead && t == fm.crash_tile &&
          i == fm.crash_at_picture) {
        dead = true;
        crash_time = decode_end;
        detect_time = crash_time + fm.hb_timeout_s;
        // Rounding guard: the reported detection latency
        // (detect_time - crash_time) must never fall below the configured
        // timeout just because the sum rounded down.
        while (detect_time - crash_time < fm.hb_timeout_s)
          detect_time = std::nextafter(detect_time, kInf);
      }
      if (!result.recoveries.empty() && resync_pic == i &&
          t == fm.crash_tile) {
        SimRecovery& rec = result.recoveries.back();
        rec.resync_time_s = decode_end;
        rec.recovery_latency_s = decode_end - rec.crash_time_s;
      }
    }
  }

  // Degraded mode (or no adopter): the wall stalls only until detection.
  for (SimRecovery& rec : result.recoveries)
    if (rec.resync_picture < 0)
      rec.recovery_latency_s = rec.detect_time_s - rec.crash_time_s;

  double makespan = 0.0;
  for (int t = 0; t < T; ++t)
    makespan = std::max(makespan, decoder_free[size_t(t)]);
  result.makespan_s = makespan;
  result.fps = double(N) / makespan;
  return result;
}

MeasuredCosts measure_costs(const std::vector<PictureTrace>& traces) {
  MeasuredCosts costs;
  if (traces.empty()) return costs;
  double sum_split = 0, sum_copy = 0, sum_max_decode = 0, sum_decode = 0;
  int64_t tile_samples = 0;
  for (const PictureTrace& tr : traces) {
    sum_split += tr.split_s;
    sum_copy += tr.copy_s;
    double mx = 0;
    for (double d : tr.decode_s) {
      mx = std::max(mx, d);
      sum_decode += d;
      ++tile_samples;
    }
    sum_max_decode += mx;
  }
  const double n = double(traces.size());
  costs.t_split = sum_split / n;
  costs.t_copy = sum_copy / n;
  costs.t_decode = sum_max_decode / n;
  costs.t_decode_mean = tile_samples ? sum_decode / double(tile_samples) : 0;
  return costs;
}

}  // namespace pdw::sim
