#include "sim/cluster_sim.h"

#include <algorithm>

#include "common/check.h"
#include "net/fabric.h"

namespace pdw::sim {

using core::PictureTrace;

namespace {
constexpr double kAckBytes = double(net::Message::kHeaderBytes);
constexpr double kMsgHeader = double(net::Message::kHeaderBytes);
}  // namespace

SimResult simulate_cluster(const std::vector<PictureTrace>& traces,
                           const wall::TileGeometry& geo,
                           const SimParams& params) {
  PDW_CHECK(!traces.empty());
  const int T = geo.tiles();
  const int k = params.two_level ? params.k : 1;
  PDW_CHECK_GE(k, 1);
  const int N = int(traces.size());
  const LinkModel& link = params.link;
  const double scale = params.cpu_scale;

  SimResult result;
  result.pictures = N;
  result.nodes = params.two_level ? 1 + k + T : 1 + T;
  result.first_decoder_node = params.two_level ? 1 + k : 1;
  result.decoders.assign(size_t(T), DecoderBreakdown{});
  result.traffic.assign(size_t(result.nodes), NodeTraffic{});
  result.splitter_busy_s.assign(size_t(k), 0.0);

  auto splitter_node = [&](int s) { return params.two_level ? 1 + s : 0; };
  auto decoder_node = [&](int t) { return result.first_decoder_node + t; };

  // --- Root stage: when is picture i fully received by its splitter? -------
  // (One-level mode: the console node both "is" the splitter and has the
  // stream locally, so pictures are available immediately after the copy.)
  std::vector<double> recv_at_splitter(size_t(N), 0.0);
  std::vector<double> splitter_ack_at_root(size_t(N), 0.0);

  if (params.two_level) {
    double root_free = 0.0;
    for (int i = 0; i < N; ++i) {
      const PictureTrace& tr = traces[size_t(i)];
      double t = root_free + tr.copy_s * scale;  // "Copy P to send buffer"
      if (i > 0) {
        // Wait for the ack/go-ahead of the previous picture ("wait for ACK
        // from any splitter, except for the first picture").
        t = std::max(t, splitter_ack_at_root[size_t(i - 1)]);
      }
      const double tx = link.transfer_s(tr.picture_bytes + size_t(kMsgHeader));
      const double send_done = t + tx;
      recv_at_splitter[size_t(i)] = send_done + link.latency_s;
      // The splitter acks as soon as it has the picture.
      splitter_ack_at_root[size_t(i)] = recv_at_splitter[size_t(i)] +
                                        link.ack_cpu_s +
                                        link.transfer_s(size_t(kAckBytes)) +
                                        link.latency_s;
      root_free = send_done;

      result.traffic[0].sent_bytes += double(tr.picture_bytes) + kMsgHeader;
      result.traffic[0].recv_bytes += kAckBytes;
      // (The receiving splitter's share is attributed in the main loop once
      // the schedule has chosen it.)
    }
  } else {
    // One-level: the console scans locally; the copy is still real work.
    double free_t = 0.0;
    for (int i = 0; i < N; ++i) {
      free_t += traces[size_t(i)].copy_s * scale;
      recv_at_splitter[size_t(i)] = free_t;
    }
    // Not sequential with splitting here — splitting is gated below by
    // splitter_free, which starts after this copy timeline anyway.
  }

  // --- Per-picture protocol forward pass -----------------------------------
  std::vector<double> splitter_free(size_t(k), 0.0);
  std::vector<double> decoder_free(size_t(T), 0.0);
  // Ack arrival (at the next picture's splitter) for the previous picture,
  // per decoder.
  std::vector<double> prev_pic_dec_ack(size_t(T), 0.0);

  std::vector<double> sp_arrival(size_t(T), 0.0);
  std::vector<double> serve_end(size_t(T), 0.0);
  std::vector<double> start(size_t(T), 0.0);

  for (int i = 0; i < N; ++i) {
    const PictureTrace& tr = traces[size_t(i)];
    int s = 0;
    if (params.two_level) {
      if (params.schedule == RootSchedule::kRoundRobin) {
        s = i % k;
      } else {
        // Least-loaded: the root tracks outstanding work and picks the
        // splitter that will free up first (§6 future work).
        for (int j = 1; j < k; ++j)
          if (splitter_free[size_t(j)] < splitter_free[size_t(s)]) s = j;
      }
      result.traffic[size_t(splitter_node(s))].recv_bytes +=
          double(tr.picture_bytes) + kMsgHeader;
      result.traffic[size_t(splitter_node(s))].sent_bytes += kAckBytes;
    }

    // Split.
    const double split_start =
        std::max(recv_at_splitter[size_t(i)], splitter_free[size_t(s)]);
    const double split_end = split_start + tr.split_s * scale;
    result.splitter_busy_s[size_t(s)] += tr.split_s * scale;

    // Gate on decoder acks for the previous picture (ANID redirection: those
    // acks were addressed to *this* splitter).
    double gate = split_end;
    if (i > 0)
      for (int t = 0; t < T; ++t)
        gate = std::max(gate, prev_pic_dec_ack[size_t(t)]);

    // Send SPs sequentially over the splitter's NIC.
    double nic = gate;
    for (int t = 0; t < T; ++t) {
      const double bytes = double(tr.sp_msg_bytes[size_t(t)]) + kMsgHeader;
      nic += link.transfer_s(size_t(bytes));
      sp_arrival[size_t(t)] = nic + link.latency_s;
      result.traffic[size_t(splitter_node(s))].sent_bytes += bytes;
      result.traffic[size_t(decoder_node(t))].recv_bytes += bytes;
      result.splitter_busy_s[size_t(s)] += link.transfer_s(size_t(bytes));
    }
    splitter_free[size_t(s)] = nic;

    // Decoders: phase 1 — receive SP, ack, serve remote macroblocks.
    for (int t = 0; t < T; ++t) {
      DecoderBreakdown& bd = result.decoders[size_t(t)];
      const double arr = sp_arrival[size_t(t)];
      const double st = std::max(arr, decoder_free[size_t(t)]);
      start[size_t(t)] = st;
      bd.receive += std::max(0.0, arr - decoder_free[size_t(t)]);

      // Ack to the next picture's splitter.
      prev_pic_dec_ack[size_t(t)] = st + link.ack_cpu_s +
                                    link.transfer_s(size_t(kAckBytes)) +
                                    link.latency_s;
      bd.ack += link.ack_cpu_s;
      const int next_s = params.two_level ? (i + 1) % k : 0;
      result.traffic[size_t(decoder_node(t))].sent_bytes += kAckBytes;
      result.traffic[size_t(splitter_node(next_s))].recv_bytes += kAckBytes;

      // Serve: extraction CPU plus NIC time for outgoing exchange messages.
      double tx = 0.0;
      for (int d = 0; d < T; ++d) {
        const double bytes = double(tr.exchange_bytes[size_t(t) * T + d]);
        if (bytes == 0.0) continue;
        tx += link.transfer_s(size_t(bytes + kMsgHeader));
        result.traffic[size_t(decoder_node(t))].sent_bytes +=
            bytes + kMsgHeader;
        result.traffic[size_t(decoder_node(d))].recv_bytes +=
            bytes + kMsgHeader;
      }
      const double serve = tr.serve_s[size_t(t)] * scale + tx;
      bd.serve += serve;
      serve_end[size_t(t)] = st + link.ack_cpu_s + serve;
    }

    // Phase 2 — wait for remote macroblocks, then decode.
    for (int t = 0; t < T; ++t) {
      DecoderBreakdown& bd = result.decoders[size_t(t)];
      double ready = serve_end[size_t(t)];
      for (int src = 0; src < T; ++src) {
        if (tr.exchange_bytes[size_t(src) * T + t] == 0) continue;
        ready = std::max(ready, serve_end[size_t(src)] + link.latency_s);
      }
      bd.wait_remote += ready - serve_end[size_t(t)];
      const double decode_end = ready + tr.decode_s[size_t(t)] * scale;
      bd.work += tr.decode_s[size_t(t)] * scale;
      decoder_free[size_t(t)] = decode_end;
    }
  }

  double makespan = 0.0;
  for (int t = 0; t < T; ++t)
    makespan = std::max(makespan, decoder_free[size_t(t)]);
  result.makespan_s = makespan;
  result.fps = double(N) / makespan;
  return result;
}

MeasuredCosts measure_costs(const std::vector<PictureTrace>& traces) {
  MeasuredCosts costs;
  if (traces.empty()) return costs;
  double sum_split = 0, sum_copy = 0, sum_max_decode = 0, sum_decode = 0;
  int64_t tile_samples = 0;
  for (const PictureTrace& tr : traces) {
    sum_split += tr.split_s;
    sum_copy += tr.copy_s;
    double mx = 0;
    for (double d : tr.decode_s) {
      mx = std::max(mx, d);
      sum_decode += d;
      ++tile_samples;
    }
    sum_max_decode += mx;
  }
  const double n = double(traces.size());
  costs.t_split = sum_split / n;
  costs.t_copy = sum_copy / n;
  costs.t_decode = sum_max_decode / n;
  costs.t_decode_mean = tile_samples ? sum_decode / double(tile_samples) : 0;
  return costs;
}

}  // namespace pdw::sim
