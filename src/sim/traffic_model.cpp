#include "sim/traffic_model.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/stats.h"

namespace pdw::sim {

namespace {

using proto::AdmissionController;
using proto::AdmissionVerdict;
using proto::DegradeLevel;
using proto::PriorityClass;
using proto::TenantSpec;

// Stable per-rank hash for spec derivation (independent of the arrival RNG
// so the catalog is a fixed property of the config).
uint64_t rank_hash(uint64_t seed, int rank, uint64_t salt) {
  return SplitMix64(seed ^ (uint64_t(rank) * 0x9E3779B97F4A7C15ULL) ^
                    (salt * 0xC2B2AE3D27D4EB4FULL))
      .next();
}

double rank_unit(uint64_t seed, int rank, uint64_t salt) {
  return double(rank_hash(seed, rank, salt) >> 11) * 0x1.0p-53;
}

// Declared-vs-measured cost ratio: real streams never cost exactly what
// they declare. Mean ~1.0, spread +-15%.
double measured_factor(uint64_t seed, int rank) {
  return 0.85 + 0.3 * rank_unit(seed, rank, /*salt=*/3);
}

struct Event {
  double t = 0;
  uint64_t seq = 0;  // tie-break: creation order (determinism)
  enum class Kind : uint8_t { kArrival, kDeparture } kind = Kind::kArrival;
  int stream = -1;  // departures only

  bool operator>(const Event& o) const {
    return t != o.t ? t > o.t : seq > o.seq;
  }
};

struct Live {
  int rank = -1;
  PriorityClass cls = PriorityClass::kBackground;
  double measured_cost = 0;  // at full rate, mb/s
  uint16_t fps = 0;
};

}  // namespace

proto::TenantSpec tenant_spec(const TrafficConfig& cfg, int rank) {
  TenantSpec s;
  // Geometry: SD / HD / FHD in macroblock units, weighted toward the middle.
  const double g = rank_unit(cfg.seed, rank, /*salt=*/1);
  if (g < 0.3) {
    s.width_mb = 45;  // 720x480
    s.height_mb = 30;
  } else if (g < 0.8) {
    s.width_mb = 80;  // 1280x720
    s.height_mb = 45;
  } else {
    s.width_mb = 120;  // 1920x1088
    s.height_mb = 68;
  }
  s.fps = rank_hash(cfg.seed, rank, /*salt=*/2) & 1 ? 30 : 24;
  const double c = rank_unit(cfg.seed, rank, /*salt=*/4);
  s.priority = c < cfg.premium_share ? PriorityClass::kPremium
               : c < cfg.premium_share + cfg.standard_share
                   ? PriorityClass::kStandard
                   : PriorityClass::kBackground;
  return s;
}

ClassStats TrafficReport::totals() const {
  ClassStats t;
  for (const ClassStats& c : cls) {
    t.offered += c.offered;
    t.accepted += c.accepted;
    t.renegotiated += c.renegotiated;
    t.rejected += c.rejected;
    t.pictures += c.pictures;
    t.shed += c.shed;
    t.deadline_checks += c.deadline_checks;
    t.deadline_misses += c.deadline_misses;
  }
  return t;
}

TrafficReport run_traffic(const TrafficConfig& cfg) {
  PDW_CHECK_GT(cfg.capacity.mb_per_s, 0.0);
  PDW_CHECK_GT(cfg.tenants, 0);

  AdmissionController::Config acfg;
  acfg.capacity = cfg.capacity;
  acfg.b_share = cfg.b_share;
  acfg.p_share = cfg.p_share;
  AdmissionController adm(acfg);

  // Zipf CDF over ranks, and the population's Zipf-weighted mean declared
  // cost (sets the arrival rate that realizes cfg.overload).
  std::vector<double> cdf(size_t(cfg.tenants));
  double mean_cost = 0, wsum = 0;
  for (int r = 0; r < cfg.tenants; ++r) {
    const double w = 1.0 / std::pow(double(r + 1), cfg.zipf_s);
    wsum += w;
    cdf[size_t(r)] = wsum;
    mean_cost += w * proto::tenant_cost(tenant_spec(cfg, r));
  }
  mean_cost /= wsum;
  for (double& c : cdf) c /= wsum;
  const double arrival_rate =
      cfg.overload * cfg.capacity.mb_per_s / (mean_cost * cfg.mean_hold_s);

  SplitMix64 rng(cfg.seed);
  const auto exp_draw = [&](double mean) {
    return -std::log(1.0 - rng.next_double()) * mean;
  };
  const auto zipf_rank = [&] {
    const double u = rng.next_double();
    return int(std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> q;
  uint64_t seq = 0;
  q.push(Event{exp_draw(1.0 / arrival_rate), seq++, Event::Kind::kArrival, -1});

  std::vector<Live> live(256);
  std::vector<int> free_ids(256);
  for (int i = 0; i < 256; ++i) free_ids[size_t(i)] = 255 - i;  // pop() = 0

  TrafficReport rep;
  double now = 0, util_integral = 0;
  double measured_load = 0;  // sum of measured cost x ladder multiplier

  const auto mult = [&](DegradeLevel l) {
    switch (l) {
      case DegradeLevel::kNone: return 1.0;
      case DegradeLevel::kSkipB: return 1.0 - cfg.b_share;
      case DegradeLevel::kSkipP: return 1.0 - cfg.b_share - cfg.p_share;
      case DegradeLevel::kFreeze: return 0.0;
    }
    return 1.0;
  };

  const auto recompute_measured = [&] {
    measured_load = 0;
    for (int id = 0; id < 256; ++id)
      if (live[size_t(id)].rank >= 0)
        measured_load += live[size_t(id)].measured_cost *
                         mult(adm.level(uint8_t(id)));
  };

  // Feed the ladder the measured signal until it stops reacting (each call
  // moves at most one step). Reverts armed here apply at the next closed
  // GOP; the model treats the per-event rebalance point as one.
  const auto rebalance = [&] {
    for (int guard = 0; guard < 1024; ++guard) {
      const size_t before = adm.log().size();
      adm.on_pressure(measured_load / cfg.capacity.mb_per_s);
      if (adm.log().size() == before) break;
      const auto& a = adm.log().back();
      if (a.kind == AdmissionController::Action::Kind::kDegrade) ++rep.degrades;
      recompute_measured();
    }
    // Apply armed reverts (closed-GOP point): mirror what should_shed() does
    // per picture, so the measured load tracks the applied level.
    for (int id = 0; id < 256; ++id) {
      const Live& lv = live[size_t(id)];
      if (lv.rank < 0) continue;
      const auto* t = adm.tenant(uint8_t(id));
      if (t && t->target < t->level) {
        adm.should_shed(uint8_t(id), mpeg2::PicType::I, /*closed_gop=*/true);
        ++rep.reverts;
      }
    }
    recompute_measured();
  };

  // Integrate the interval [now, t): deadline checks at each tenant's fps,
  // misses when measured load exceeds raw capacity, absorbed lowest class
  // first (the classes the ladder already shed are cheapest to blame).
  const auto integrate = [&](double t) {
    const double dt = t - now;
    if (dt <= 0) return;
    const double u = measured_load / cfg.capacity.mb_per_s;
    util_integral += u * dt;
    rep.peak_measured_utilization = std::max(rep.peak_measured_utilization, u);

    double class_load[3] = {0, 0, 0};
    double class_checks[3] = {0, 0, 0};
    for (int id = 0; id < 256; ++id) {
      const Live& lv = live[size_t(id)];
      if (lv.rank < 0) continue;
      const int c = int(lv.cls);
      const double m = mult(adm.level(uint8_t(id)));
      const double slots = double(lv.fps) * dt;
      rep.cls[c].pictures += slots;
      rep.cls[c].shed += slots * (1.0 - m);
      rep.cls[c].deadline_checks += slots * m;
      class_checks[c] += slots * m;
      class_load[c] += lv.measured_cost * m;
    }
    double overflow = std::max(0.0, measured_load - cfg.capacity.mb_per_s);
    for (int c = 0; c < 3 && overflow > 0; ++c) {  // lowest class first
      if (class_load[c] <= 0) continue;
      const double frac = std::min(1.0, overflow / class_load[c]);
      rep.cls[c].deadline_misses += class_checks[c] * frac;
      overflow -= std::min(overflow, class_load[c]);
    }
  };

  while (!q.empty()) {
    const Event ev = q.top();
    q.pop();
    if (ev.t >= cfg.sim_seconds) {
      integrate(cfg.sim_seconds);
      now = cfg.sim_seconds;
      break;
    }
    integrate(ev.t);
    now = ev.t;

    if (ev.kind == Event::Kind::kArrival) {
      ++rep.arrivals;
      q.push(Event{now + exp_draw(1.0 / arrival_rate), seq++,
                   Event::Kind::kArrival, -1});
      const int rank = zipf_rank();
      const TenantSpec spec = tenant_spec(cfg, rank);
      const int c = int(spec.priority);
      ++rep.cls[c].offered;
      if (free_ids.empty()) {
        ++rep.cls[c].rejected;  // 256 live sessions: the id space is full
        continue;
      }
      const int id = free_ids.back();
      const proto::StreamReply r = adm.offer(proto::to_request(spec, uint8_t(id)));
      switch (r.verdict) {
        case AdmissionVerdict::kAccept: ++rep.cls[c].accepted; break;
        case AdmissionVerdict::kRenegotiate: ++rep.cls[c].renegotiated; break;
        case AdmissionVerdict::kReject: ++rep.cls[c].rejected; break;
      }
      if (r.verdict != AdmissionVerdict::kReject) {
        free_ids.pop_back();
        Live& lv = live[size_t(id)];
        lv.rank = rank;
        lv.cls = spec.priority;
        lv.fps = spec.fps;
        lv.measured_cost =
            proto::tenant_cost(spec) * measured_factor(cfg.seed, rank);
        q.push(Event{now + exp_draw(cfg.mean_hold_s), seq++,
                     Event::Kind::kDeparture, id});
      }
      recompute_measured();
      rebalance();
    } else {
      ++rep.departures;
      adm.release(uint8_t(ev.stream));
      live[size_t(ev.stream)].rank = -1;
      free_ids.push_back(ev.stream);
      recompute_measured();
      rebalance();
    }
  }

  // Drain: every live session departs at the horizon.
  for (int id = 0; id < 256; ++id) {
    if (live[size_t(id)].rank < 0) continue;
    adm.release(uint8_t(id));
    live[size_t(id)].rank = -1;
    ++rep.departures;
  }

  rep.mean_measured_utilization =
      cfg.sim_seconds > 0 ? util_integral / cfg.sim_seconds : 0.0;
  rep.log = adm.log();

  const ClassStats tot = rep.totals();
  rep.accounting_ok =
      tot.offered == tot.accepted + tot.renegotiated + tot.rejected &&
      rep.departures == tot.accepted + tot.renegotiated &&
      adm.committed_load() < 1e-6 * cfg.capacity.mb_per_s + 1e-9;
  return rep;
}

}  // namespace pdw::sim
