// Chaos/soak harness: composed fault + overload + memory-pressure schedules
// with an explicit invariant suite.
//
// Each prior robustness layer was tested in isolation: the fault injector
// against the reliable transport (PR 2), the pools against their budget,
// admission against synthetic load. Outages come from *composition* — a
// lossy fabric while the wall is oversubscribed while the pool budget runs
// dry. One chaos run drives four legs from a single seed and asserts the
// system-level invariants on each:
//
//   overload  — DES Zipf traffic at `overload`x capacity through the
//               admission ladder. Invariants: the admission ledger balances
//               (every offer answered once, every admitted session
//               released, committed load drained), premium tenants hold
//               their deadline-miss budget, and shedding lands in strict
//               priority order (premium sheds no more than standard, which
//               sheds no more than background).
//   faults    — the threaded pipeline over a fabric injecting seeded drop /
//               duplicate / corrupt / delay rates. Invariants: the run
//               completes (no deadlock under chaos — completion within the
//               CI wall-clock bound IS the liveness check), and every tile
//               emits exactly one frame per display slot.
//   pool      — a budget-squeezed BufferPool hammered by concurrent
//               threads. Invariants: allocation never fails (it degrades to
//               heap fallbacks, which must be observed > 0), and every byte
//               handed out comes back (bytes_in_flight drains to zero).
//   shedding  — an admission-gated serial StreamSession over real streams
//               with capacity for fewer tenants than attach. Invariants:
//               the one-emission-per-slot display invariant holds for every
//               stream (shed pictures emit frozen frames, never holes) and
//               the ladder actually engaged.
//
// Deterministic per seed: re-running a failed schedule reproduces it.
#pragma once

#include <cstdint>
#include <span>

#include "net/fault.h"
#include "wall/geometry.h"

namespace pdw::sim {

struct ChaosSchedule {
  uint64_t seed = 1;

  // Overload leg.
  double overload = 2.0;           // offered load, multiple of capacity
  double capacity_mb_s = 4.0e6;    // modeled wall capacity
  double sim_seconds = 60.0;
  double premium_miss_budget = 0.01;  // acceptance: premium miss rate < 1%

  // Fault leg (threaded pipeline). `es`/`geo` are borrowed.
  std::span<const uint8_t> es;
  const wall::TileGeometry* geo = nullptr;
  int k = 2;
  net::FaultRates rates{.drop = 0.02, .dup = 0.01, .corrupt = 0.01,
                        .delay = 0.02, .delay_hold = 2};

  // Pool leg.
  size_t pool_budget_bytes = size_t(1) << 20;
  int pool_threads = 4;
  int pool_allocs_per_thread = 2000;

  // Shedding leg: tenants attached vs. capacity for roughly this many at
  // full rate.
  int shed_tenants = 3;
  double shed_capacity_tenants = 1.5;
};

struct ChaosReport {
  // Overload leg.
  bool overload_accounting_ok = false;
  bool overload_priority_order_ok = false;
  bool premium_miss_rate_ok = false;
  double premium_miss_rate = 0;
  double background_shed_rate = 0;
  uint64_t degrades = 0;

  // Fault leg.
  bool fault_completed = false;
  bool fault_display_invariant_ok = false;
  int fault_pictures = 0;

  // Pool leg.
  bool pool_drained = false;
  uint64_t pool_budget_fallbacks = 0;

  // Shedding leg.
  bool shed_display_invariant_ok = false;
  uint64_t shed_pictures = 0;

  bool ok() const {
    return overload_accounting_ok && overload_priority_order_ok &&
           premium_miss_rate_ok && fault_completed &&
           fault_display_invariant_ok && pool_drained &&
           pool_budget_fallbacks > 0 && shed_display_invariant_ok &&
           shed_pictures > 0;
  }
};

ChaosReport run_chaos(const ChaosSchedule& sched);

}  // namespace pdw::sim
