#include "sim/chaos.h"

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "core/pipeline.h"
#include "mem/pool.h"
#include "proto/session.h"
#include "sim/traffic_model.h"

namespace pdw::sim {

namespace {

// Overload leg: DES Zipf traffic through the ladder.
void run_overload_leg(const ChaosSchedule& sched, ChaosReport* rep) {
  TrafficConfig cfg;
  cfg.capacity.mb_per_s = sched.capacity_mb_s;
  cfg.overload = sched.overload;
  cfg.sim_seconds = sched.sim_seconds;
  cfg.seed = sched.seed;
  const TrafficReport tr = run_traffic(cfg);

  rep->overload_accounting_ok = tr.accounting_ok;
  rep->degrades = tr.degrades;
  const ClassStats& bg = tr.cls[int(proto::PriorityClass::kBackground)];
  const ClassStats& std_ = tr.cls[int(proto::PriorityClass::kStandard)];
  const ClassStats& prm = tr.cls[int(proto::PriorityClass::kPremium)];
  rep->premium_miss_rate = prm.miss_rate();
  rep->background_shed_rate = bg.shed_rate();
  rep->premium_miss_rate_ok =
      rep->premium_miss_rate < sched.premium_miss_budget;
  // Strict priority order: pain is monotone down the class ladder, for both
  // shedding and deadline misses.
  rep->overload_priority_order_ok =
      prm.shed_rate() <= std_.shed_rate() + 1e-9 &&
      std_.shed_rate() <= bg.shed_rate() + 1e-9 &&
      prm.miss_rate() <= std_.miss_rate() + 1e-9 &&
      std_.miss_rate() <= bg.miss_rate() + 1e-9;
}

// Fault leg: the threaded pipeline under seeded wire chaos.
void run_fault_leg(const ChaosSchedule& sched, ChaosReport* rep) {
  PDW_CHECK(sched.geo != nullptr);
  PDW_CHECK(!sched.es.empty());
  const net::FaultInjector injector(sched.seed, sched.rates);
  core::FtOptions ft;
  ft.injector = &injector;
  core::ClusterPipeline pipeline(*sched.geo, sched.k, sched.es, ft);
  std::map<int, uint64_t> emissions;  // per tile
  const core::ClusterStats stats =
      pipeline.run([&](int tile, const mpeg2::TileFrame&,
                       const core::TileDisplayInfo&) { ++emissions[tile]; });
  rep->fault_completed = true;  // run() returned: no deadlock
  rep->fault_pictures = stats.pictures;
  // One emission per display slot per tile: a skipped/concealed picture
  // still emits (frozen frame), a dropped message never loses a slot.
  rep->fault_display_invariant_ok = int(emissions.size()) == sched.geo->tiles();
  for (const auto& [tile, count] : emissions)
    if (count != uint64_t(stats.pictures))
      rep->fault_display_invariant_ok = false;
}

// Pool leg: budget-squeezed pool hammered concurrently. Allocation must
// degrade (heap fallbacks), never fail, and every byte must come back.
void run_pool_leg(const ChaosSchedule& sched, ChaosReport* rep) {
  mem::BufferPool pool(sched.pool_budget_bytes);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < sched.pool_threads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(sched.seed ^ uint64_t(t + 1));
      std::vector<mem::Bytes> held;
      for (int i = 0; i < sched.pool_allocs_per_thread; ++i) {
        const size_t n = 64 + rng.next_below(256 * 1024);
        mem::Bytes b = pool.alloc(n);
        if (b.size() != n) failed.store(true);
        held.push_back(std::move(b));
        if (held.size() > 8) held.erase(held.begin());  // churn
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const mem::PoolStats st = pool.stats();
  rep->pool_budget_fallbacks = st.budget_fallbacks;
  rep->pool_drained = !failed.load() && st.bytes_in_flight == 0;
}

// Shedding leg: admission-gated serial session with room for fewer tenants
// than attach, over the real stream.
void run_shed_leg(const ChaosSchedule& sched, ChaosReport* rep) {
  PDW_CHECK(sched.geo != nullptr);
  PDW_CHECK(!sched.es.empty());
  proto::TenantSpec spec;
  spec.width_mb = uint16_t(sched.geo->mb_width());
  spec.height_mb = uint16_t(sched.geo->mb_height());
  spec.fps = 24;

  proto::AdmissionController::Config acfg;
  acfg.capacity.mb_per_s =
      proto::tenant_cost(spec) * sched.shed_capacity_tenants;
  acfg.capacity.admit_headroom = 1.0;
  proto::StreamSession session(*sched.geo, 2);
  session.enable_admission(acfg);
  spec.priority = proto::PriorityClass::kPremium;
  std::vector<int> attached;
  for (int i = 0; i < sched.shed_tenants; ++i) {
    // Later tenants are lower class, so the ladder has a strict order to
    // respect when the budget runs out.
    spec.priority = i == 0 ? proto::PriorityClass::kPremium
                    : i == 1 ? proto::PriorityClass::kStandard
                             : proto::PriorityClass::kBackground;
    const proto::StreamReply r = session.attach_stream(i, sched.es, spec);
    if (r.verdict != proto::AdmissionVerdict::kReject) attached.push_back(i);
  }

  std::map<std::pair<int, int>, uint64_t> emissions;  // per (stream, tile)
  const proto::StreamSession::Result result =
      session.run([&](int stream, int tile, const mpeg2::TileFrame&,
                      const core::TileDisplayInfo&) {
        ++emissions[{stream, tile}];
      });
  rep->shed_pictures = result.shed;
  // Every attached stream emits exactly one frame per slot per tile, shed
  // pictures included (frozen frames, never holes).
  rep->shed_display_invariant_ok = !attached.empty();
  for (int id : attached)
    for (int t = 0; t < sched.geo->tiles(); ++t)
      if (emissions[{id, t}] != result.stream_pictures[size_t(id)])
        rep->shed_display_invariant_ok = false;
}

}  // namespace

ChaosReport run_chaos(const ChaosSchedule& sched) {
  ChaosReport rep;
  run_overload_leg(sched, &rep);
  run_fault_leg(sched, &rep);
  run_pool_leg(sched, &rep);
  run_shed_leg(sched, &rep);
  return rep;
}

}  // namespace pdw::sim
