// AVX2 kernel table. This TU is compiled with -mavx2 (scoped to this file in
// CMake); every entry point is only ever reached through the dispatcher,
// which verifies CPU support first. 256-bit versions are provided where the
// wider lanes pay (IDCT, 16-wide quad interpolation, SAD, dequant); the rest
// reuses the shared 128-bit implementations, recompiled VEX-encoded here.
#include "kernels/kernels_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "kernels/idct_butterfly.h"
#include "kernels/kernels_m128_impl.h"
#include "kernels/simd_common.h"

namespace pdw::kernels {
namespace {

// ---------------------------------------------------------------------------
// IDCT: eight int32 lanes in one register.
// ---------------------------------------------------------------------------

struct OpsAvx2 {
  using V = __m256i;
  static V add(V a, V b) { return _mm256_add_epi32(a, b); }
  static V sub(V a, V b) { return _mm256_sub_epi32(a, b); }
  static V shl(V a, int n) { return _mm256_slli_epi32(a, n); }
  static V sra(V a, int n) { return _mm256_srai_epi32(a, n); }
  static V mulc(V a, int32_t c) {
    return _mm256_mullo_epi32(a, _mm256_set1_epi32(c));
  }
  static V splat(int32_t c) { return _mm256_set1_epi32(c); }
  static V trunc16(V a) { return sra(shl(a, 16), 16); }
  static V clamp256(V a) {
    return _mm256_min_epi32(_mm256_max_epi32(a, _mm256_set1_epi32(-256)),
                            _mm256_set1_epi32(255));
  }
};

// Pack eight int32 lanes (known to fit int16) into the low 128 bits.
inline __m128i pack_epi32_to_epi16(__m256i v) {
  const __m256i p = _mm256_packs_epi32(v, v);
  return _mm256_castsi256_si128(_mm256_permute4x64_epi64(p, 0x08));
}

void idct_8x8(int16_t block[64]) {
  __m128i r[8];
  for (int i = 0; i < 8; ++i)
    r[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 8 * i));
  simd::transpose8x8_epi16(r);  // r[k] = coefficient column k
  __m256i v[8];
  for (int k = 0; k < 8; ++k) v[k] = _mm256_cvtepi16_epi32(r[k]);
  idct_rows_vec<OpsAvx2>(v);
  for (int k = 0; k < 8; ++k) r[k] = pack_epi32_to_epi16(v[k]);
  simd::transpose8x8_epi16(r);  // r[j] = row-pass output row j
  for (int j = 0; j < 8; ++j) v[j] = _mm256_cvtepi16_epi32(r[j]);
  idct_cols_vec<OpsAvx2>(v);
  for (int j = 0; j < 8; ++j)
    _mm_storeu_si128(reinterpret_cast<__m128i*>(block + 8 * j),
                     pack_epi32_to_epi16(v[j]));
}

// ---------------------------------------------------------------------------
// Half-pel interpolation: one 16-wide quad-average row in 16 u16 lanes.
// ---------------------------------------------------------------------------

inline __m128i quad_avg16_256(const uint8_t* s0, const uint8_t* s1) {
  const __m256i two = _mm256_set1_epi16(2);
  const __m256i a = _mm256_cvtepu8_epi16(m128::load16(s0));
  const __m256i b = _mm256_cvtepu8_epi16(m128::load16(s0 + 1));
  const __m256i c = _mm256_cvtepu8_epi16(m128::load16(s1));
  const __m256i d = _mm256_cvtepu8_epi16(m128::load16(s1 + 1));
  const __m256i sum = _mm256_add_epi16(_mm256_add_epi16(a, b),
                                       _mm256_add_epi16(c, d));
  const __m256i avg = _mm256_srli_epi16(_mm256_add_epi16(sum, two), 2);
  const __m256i packed = _mm256_packus_epi16(avg, avg);
  return _mm256_castsi256_si128(_mm256_permute4x64_epi64(packed, 0x08));
}

void interp_halfpel(const uint8_t* src, int src_stride, uint8_t* dst,
                    int dst_stride, int size, int hx, int hy) {
  if (size == 16 && hx && hy) {
    for (int r = 0; r < 16; ++r) {
      const uint8_t* s0 = src + size_t(r) * src_stride;
      m128::store16(dst + size_t(r) * dst_stride,
                    quad_avg16_256(s0, s0 + src_stride));
    }
    return;
  }
  m128::interp_halfpel(src, src_stride, dst, dst_stride, size, hx, hy);
}

void avg_pixels(uint8_t* p, const uint8_t* q, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + i),
                        _mm256_avg_epu8(a, b));
  }
  if (i < n) m128::avg_pixels(p + i, q + i, n - i);
}

// ---------------------------------------------------------------------------
// Dequantisation: eight coefficients per iteration.
// ---------------------------------------------------------------------------

inline __m256i div32_trunc(__m256i v) {
  const __m256i bias =
      _mm256_and_si256(_mm256_srai_epi32(v, 31), _mm256_set1_epi32(31));
  return _mm256_srai_epi32(_mm256_add_epi32(v, bias), 5);
}

void dequant_common(const int16_t qfs[64], int16_t out[64],
                    const uint8_t w[64], int scale, int dc_mult, bool intra,
                    const uint8_t scan[64]) {
  alignas(16) int16_t raster[64];
  for (int i = 0; i < 64; ++i) raster[scan[i]] = qfs[i];

  const __m256i z = _mm256_setzero_si256();
  const __m256i vscale = _mm256_set1_epi32(scale);
  const __m256i sat_hi = _mm256_set1_epi32(2047);
  const __m256i sat_lo = _mm256_set1_epi32(-2048);
  __m256i vsum = z;
  for (int i = 0; i < 64; i += 8) {
    const __m256i q = _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(raster + i)));
    const __m256i wv = _mm256_cvtepu8_epi32(m128::load8(w + i));
    __m256i t = _mm256_slli_epi32(q, 1);  // 2 * qf
    if (!intra) {
      const __m256i gt = _mm256_cmpgt_epi32(q, z);
      const __m256i lt = _mm256_cmpgt_epi32(z, q);
      t = _mm256_add_epi32(t, _mm256_sub_epi32(lt, gt));  // +sign(qf), 0 at 0
    }
    const __m256i wsc = _mm256_mullo_epi32(wv, vscale);
    __m256i v = div32_trunc(_mm256_mullo_epi32(t, wsc));
    v = _mm256_min_epi32(_mm256_max_epi32(v, sat_lo), sat_hi);
    vsum = _mm256_add_epi32(vsum, v);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     pack_epi32_to_epi16(v));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(vsum),
                            _mm256_extracti128_si256(vsum, 1));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  int32_t sum = _mm_cvtsi128_si32(s);

  if (intra) {
    const int32_t wrong = out[0];
    out[0] = int16_t(std::clamp(dc_mult * int32_t(qfs[0]), -2048, 2047));
    sum += out[0] - wrong;
  }
  m128::mismatch_control(out, sum);
}

void dequant_intra(const int16_t qfs[64], int16_t out[64], const uint8_t w[64],
                   int scale, int dc_mult, const uint8_t scan[64]) {
  dequant_common(qfs, out, w, scale, dc_mult, true, scan);
}

void dequant_non_intra(const int16_t qfs[64], int16_t out[64],
                       const uint8_t w[64], int scale,
                       const uint8_t scan[64]) {
  dequant_common(qfs, out, w, scale, 0, false, scan);
}

// ---------------------------------------------------------------------------
// SAD: two rows per 256-bit psadbw.
// ---------------------------------------------------------------------------

inline __m256i load_2rows(const uint8_t* p, int stride) {
  return _mm256_inserti128_si256(_mm256_castsi128_si256(m128::load16(p)),
                                 m128::load16(p + stride), 1);
}

uint32_t sad16x16(const uint8_t* a, int a_stride, const uint8_t* b,
                  int b_stride, uint32_t best) {
  __m256i acc = _mm256_setzero_si256();
  for (int r = 0; r < 16; r += 2)
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(load_2rows(a + size_t(r) * a_stride, a_stride),
                             load_2rows(b + size_t(r) * b_stride, b_stride)));
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  const uint32_t sad = m128::hsum_sad(s);
  return sad < best ? sad : std::numeric_limits<uint32_t>::max();
}

uint32_t sad16x16_halfpel(const uint8_t* a, int a_stride, const uint8_t* b,
                          int b_stride, int hx, int hy) {
  if (!(hx && hy)) return m128::sad16x16_halfpel(a, a_stride, b, b_stride, hx, hy);
  __m128i acc = _mm_setzero_si128();
  for (int r = 0; r < 16; ++r) {
    const uint8_t* b0 = b + size_t(r) * b_stride;
    const __m128i pred = quad_avg16_256(b0, b0 + b_stride);
    acc = _mm_add_epi64(
        acc, _mm_sad_epu8(m128::load16(a + size_t(r) * a_stride), pred));
  }
  return m128::hsum_sad(acc);
}

const KernelTable kTable = {
    .level = Level::kAvx2,
    .name = "avx2",
    .idct_8x8 = idct_8x8,
    .interp_halfpel = interp_halfpel,
    .avg_pixels = avg_pixels,
    .add_residual_8x8 = m128::add_residual_8x8,
    .put_residual_8x8 = m128::put_residual_8x8,
    .dequant_intra = dequant_intra,
    .dequant_non_intra = dequant_non_intra,
    .sad16x16 = sad16x16,
    .sad16x16_halfpel = sad16x16_halfpel,
};

}  // namespace

const KernelTable* avx2_table() { return &kTable; }

}  // namespace pdw::kernels

#else  // !__AVX2__

namespace pdw::kernels {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace pdw::kernels

#endif
