// CPU-feature-dispatched kernels for the codec hot paths.
//
// Every per-pixel / per-coefficient inner loop of the decode and encode
// paths — 8x8 IDCT, half-pel interpolation, bidirectional averaging,
// residual add/saturate, dequantisation with mismatch control, and the
// encoder's SAD — lives behind one function-pointer table. The table is
// filled at startup with the best implementation the running CPU supports
// (scalar reference, SSE2, or AVX2), so the serial decoder, the tile
// decoders, the encoder and the slice-parallel baseline all share the same
// selected kernels.
//
// Bit-exactness contract (DESIGN.md §5.1 invariant 1): every implementation
// of every kernel produces byte-identical output to the scalar reference for
// all inputs within the documented domain. The SIMD paths achieve this by
// vectorising the *same* fixed-point arithmetic lane-parallel, not by
// substituting a different factorization; tests/test_kernels.cpp fuzzes the
// equivalence, and the parallel-vs-serial wall composition invariant holds
// under any dispatch level.
//
// Selection override (testing / benchmarking): set PDW_KERNELS=scalar|sse2|
// avx2 in the environment before first use, or call set_active_level().
#pragma once

#include <cstddef>
#include <cstdint>

namespace pdw::kernels {

enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };
inline constexpr int kLevelCount = 3;

const char* level_name(Level level);

struct KernelTable {
  Level level;
  const char* name;

  // In-place 8x8 IDCT (same arithmetic as the classic 32-bit fixed-point
  // row/column Wang factorization). Input: dequantised coefficients in
  // raster order; output: spatial residuals clamped to [-256, 255].
  void (*idct_8x8)(int16_t block[64]);

  // Half-pel interpolation (§7.6 prediction filtering) of a size x size
  // block (size is 8 or 16). `src` must have (size+hx) x (size+hy) valid
  // samples; hx/hy are the half-sample flags in {0, 1}.
  void (*interp_halfpel)(const uint8_t* src, int src_stride, uint8_t* dst,
                         int dst_stride, int size, int hx, int hy);

  // p[i] = (p[i] + q[i] + 1) >> 1 for i in [0, n) — bidirectional averaging.
  void (*avg_pixels)(uint8_t* p, const uint8_t* q, size_t n);

  // dst[r][c] = clamp(dst[r][c] + res[r*8+c], 0, 255): add an IDCT residual
  // onto a prediction. Implementations may assume |res| <= 8192 (the IDCT
  // emits [-256, 255]).
  void (*add_residual_8x8)(const int16_t res[64], uint8_t* dst, int stride);

  // dst[r][c] = clamp(res[r*8+c], 0, 255): intra block store.
  void (*put_residual_8x8)(const int16_t res[64], uint8_t* dst, int stride);

  // Inverse quantisation (§7.4) including saturation to [-2048, 2047] and
  // §7.4.4 mismatch control. `scan` must be a permutation of 0..63 with
  // scan[0] == 0 (true for both MPEG-2 scan orders). Signatures match
  // mpeg2::dequant_intra / dequant_non_intra.
  void (*dequant_intra)(const int16_t qfs[64], int16_t out[64],
                        const uint8_t w[64], int scale, int dc_mult,
                        const uint8_t scan[64]);
  void (*dequant_non_intra)(const int16_t qfs[64], int16_t out[64],
                            const uint8_t w[64], int scale,
                            const uint8_t scan[64]);

  // 16x16 sum of absolute differences with threshold semantics: returns the
  // SAD if it is < best, otherwise UINT32_MAX (callers use it as a pruned
  // candidate search, so "too big" needs no exact value).
  uint32_t (*sad16x16)(const uint8_t* a, int a_stride, const uint8_t* b,
                       int b_stride, uint32_t best);

  // 16x16 SAD of `a` against the half-pel interpolation of `b` (which must
  // have (16+hx) x (16+hy) valid samples). Always exact (no threshold).
  uint32_t (*sad16x16_halfpel)(const uint8_t* a, int a_stride,
                               const uint8_t* b, int b_stride, int hx,
                               int hy);
};

// The active table. First use selects the best level the CPU supports,
// unless PDW_KERNELS names a (supported) level. Cheap: one atomic load.
const KernelTable& active();

Level active_level();

// The table for a specific level, or nullptr if that level is unavailable
// (not compiled in, or the CPU lacks the feature). kScalar never fails.
// Used by equivalence tests and per-level benchmarks.
const KernelTable* table_for(Level level);

inline bool level_supported(Level level) { return table_for(level) != nullptr; }

Level best_supported_level();

// Force a dispatch level (tests / benches). Returns false and leaves the
// active table unchanged if the level is unsupported on this host. Not
// intended to be called concurrently with decoding threads.
bool set_active_level(Level level);

}  // namespace pdw::kernels
