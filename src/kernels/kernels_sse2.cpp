// SSE2 kernel table: baseline x86-64 (no extra compile flags needed), built
// entirely from the shared 128-bit implementations.
#include "kernels/kernels_internal.h"

#if defined(__SSE2__)

#include "kernels/kernels_m128_impl.h"

namespace pdw::kernels {
namespace {

const KernelTable kTable = {
    .level = Level::kSse2,
    .name = "sse2",
    .idct_8x8 = m128::idct_8x8,
    .interp_halfpel = m128::interp_halfpel,
    .avg_pixels = m128::avg_pixels,
    .add_residual_8x8 = m128::add_residual_8x8,
    .put_residual_8x8 = m128::put_residual_8x8,
    .dequant_intra = m128::dequant_intra,
    .dequant_non_intra = m128::dequant_non_intra,
    .sad16x16 = m128::sad16x16,
    .sad16x16_halfpel = m128::sad16x16_halfpel,
};

}  // namespace

const KernelTable* sse2_table() { return &kTable; }

}  // namespace pdw::kernels

#else  // !__SSE2__

namespace pdw::kernels {
const KernelTable* sse2_table() { return nullptr; }
}  // namespace pdw::kernels

#endif
