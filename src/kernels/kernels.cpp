// Kernel dispatch: pick the best table the CPU supports, honouring the
// PDW_KERNELS environment override, and expose per-level tables for tests.
#include "kernels/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernels/kernels_internal.h"

namespace pdw::kernels {

namespace {

bool cpu_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse2:
#if defined(__x86_64__)
      return true;  // SSE2 is baseline x86-64
#elif defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

bool parse_level(const char* s, Level* out) {
  if (std::strcmp(s, "scalar") == 0) {
    *out = Level::kScalar;
  } else if (std::strcmp(s, "sse2") == 0) {
    *out = Level::kSse2;
  } else if (std::strcmp(s, "avx2") == 0) {
    *out = Level::kAvx2;
  } else {
    return false;
  }
  return true;
}

const KernelTable* select_initial() {
  Level level = best_supported_level();
  if (const char* env = std::getenv("PDW_KERNELS")) {
    Level wanted;
    if (!parse_level(env, &wanted)) {
      std::fprintf(stderr,
                   "[kernels] PDW_KERNELS=%s not recognised "
                   "(scalar|sse2|avx2); using %s\n",
                   env, level_name(level));
    } else if (table_for(wanted) == nullptr) {
      std::fprintf(stderr,
                   "[kernels] PDW_KERNELS=%s unsupported on this host; "
                   "using %s\n",
                   env, level_name(level));
    } else {
      level = wanted;
    }
  }
  return table_for(level);
}

std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

const KernelTable* table_for(Level level) {
  if (!cpu_supports(level)) return nullptr;
  switch (level) {
    case Level::kScalar:
      return scalar_table();
    case Level::kSse2:
      return sse2_table();
    case Level::kAvx2:
      return avx2_table();
  }
  return nullptr;
}

Level best_supported_level() {
  if (table_for(Level::kAvx2)) return Level::kAvx2;
  if (table_for(Level::kSse2)) return Level::kSse2;
  return Level::kScalar;
}

const KernelTable& active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Benign race: concurrent first uses compute the same table.
    t = select_initial();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

Level active_level() { return active().level; }

bool set_active_level(Level level) {
  const KernelTable* t = table_for(level);
  if (t == nullptr) return false;
  g_active.store(t, std::memory_order_release);
  return true;
}

}  // namespace pdw::kernels
