// 128-bit (SSE2-instruction-set) implementations of every kernel, as
// inline functions. Included by kernels_sse2.cpp (compiled for baseline
// x86-64) and by kernels_avx2.cpp (re-compiled VEX-encoded; the AVX2 table
// reuses these where a 256-bit version would not pay for itself).
//
// All functions are bit-exact with kernels_scalar.cpp; see the equivalence
// notes next to each and the fuzz suite in tests/test_kernels.cpp.
#pragma once

#if defined(__SSE2__)

#include <emmintrin.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>

#include "kernels/idct_butterfly.h"
#include "kernels/simd_common.h"

namespace pdw::kernels::m128 {
// Anonymous namespace on purpose: this header is compiled once per kernel TU
// with different target flags (-msse2 baseline vs -mavx2). Internal linkage
// keeps the linker from comdat-folding the copies into a single encoding,
// which would defeat per-level dispatch.
namespace {

// ---------------------------------------------------------------------------
// IDCT
// ---------------------------------------------------------------------------

// Eight int32 lanes as a pair of __m128i (lanes 0-3 / 4-7).
struct Ops {
  struct V {
    __m128i lo, hi;
  };
  static V add(V a, V b) {
    return {_mm_add_epi32(a.lo, b.lo), _mm_add_epi32(a.hi, b.hi)};
  }
  static V sub(V a, V b) {
    return {_mm_sub_epi32(a.lo, b.lo), _mm_sub_epi32(a.hi, b.hi)};
  }
  static V shl(V a, int n) {
    return {_mm_slli_epi32(a.lo, n), _mm_slli_epi32(a.hi, n)};
  }
  static V sra(V a, int n) {
    return {_mm_srai_epi32(a.lo, n), _mm_srai_epi32(a.hi, n)};
  }
  static V mulc(V a, int32_t c) {
    const __m128i vc = _mm_set1_epi32(c);
    return {simd::mul_lo32(a.lo, vc), simd::mul_lo32(a.hi, vc)};
  }
  static V splat(int32_t c) {
    const __m128i v = _mm_set1_epi32(c);
    return {v, v};
  }
  static V trunc16(V a) { return sra(shl(a, 16), 16); }
  static __m128i clamp_lane(__m128i v) {
    // SSE2 has no 32-bit min/max: compare-and-select against both bounds.
    const __m128i hi = _mm_set1_epi32(255);
    const __m128i lo = _mm_set1_epi32(-256);
    __m128i m = _mm_cmpgt_epi32(v, hi);
    v = _mm_or_si128(_mm_and_si128(m, hi), _mm_andnot_si128(m, v));
    m = _mm_cmpgt_epi32(lo, v);
    return _mm_or_si128(_mm_and_si128(m, lo), _mm_andnot_si128(m, v));
  }
  static V clamp256(V a) { return {clamp_lane(a.lo), clamp_lane(a.hi)}; }
};

inline void idct_8x8(int16_t block[64]) {
  __m128i r[8];
  for (int i = 0; i < 8; ++i)
    r[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 8 * i));
  simd::transpose8x8_epi16(r);  // r[k] = coefficient column k
  Ops::V v[8];
  for (int k = 0; k < 8; ++k)
    v[k] = {simd::sext_lo16(r[k]), simd::sext_hi16(r[k])};
  idct_rows_vec<Ops>(v);
  // Row-pass outputs were truncated to int16, so packs never saturates.
  for (int k = 0; k < 8; ++k) r[k] = _mm_packs_epi32(v[k].lo, v[k].hi);
  simd::transpose8x8_epi16(r);  // r[j] = row-pass output row j
  for (int j = 0; j < 8; ++j)
    v[j] = {simd::sext_lo16(r[j]), simd::sext_hi16(r[j])};
  idct_cols_vec<Ops>(v);
  for (int j = 0; j < 8; ++j)
    _mm_storeu_si128(reinterpret_cast<__m128i*>(block + 8 * j),
                     _mm_packs_epi32(v[j].lo, v[j].hi));
}

// ---------------------------------------------------------------------------
// Half-pel interpolation / averaging
// ---------------------------------------------------------------------------

// One 16-wide (a, b, c, d) quad average: (a+b+c+d+2)>>2, exact via u16.
inline __m128i quad_avg16(__m128i a, __m128i b, __m128i c, __m128i d) {
  const __m128i z = _mm_setzero_si128();
  const __m128i two = _mm_set1_epi16(2);
  __m128i lo = _mm_add_epi16(
      _mm_add_epi16(_mm_unpacklo_epi8(a, z), _mm_unpacklo_epi8(b, z)),
      _mm_add_epi16(_mm_unpacklo_epi8(c, z), _mm_unpacklo_epi8(d, z)));
  __m128i hi = _mm_add_epi16(
      _mm_add_epi16(_mm_unpackhi_epi8(a, z), _mm_unpackhi_epi8(b, z)),
      _mm_add_epi16(_mm_unpackhi_epi8(c, z), _mm_unpackhi_epi8(d, z)));
  lo = _mm_srli_epi16(_mm_add_epi16(lo, two), 2);
  hi = _mm_srli_epi16(_mm_add_epi16(hi, two), 2);
  return _mm_packus_epi16(lo, hi);
}

// Same for an 8-wide quad (low halves only).
inline __m128i quad_avg8(__m128i a, __m128i b, __m128i c, __m128i d) {
  const __m128i z = _mm_setzero_si128();
  const __m128i two = _mm_set1_epi16(2);
  __m128i lo = _mm_add_epi16(
      _mm_add_epi16(_mm_unpacklo_epi8(a, z), _mm_unpacklo_epi8(b, z)),
      _mm_add_epi16(_mm_unpacklo_epi8(c, z), _mm_unpacklo_epi8(d, z)));
  lo = _mm_srli_epi16(_mm_add_epi16(lo, two), 2);
  return _mm_packus_epi16(lo, lo);
}

inline __m128i load8(const uint8_t* p) {
  return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
}
inline __m128i load16(const uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline void store8(uint8_t* p, __m128i v) {
  _mm_storel_epi64(reinterpret_cast<__m128i*>(p), v);
}
inline void store16(uint8_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

inline void interp_halfpel(const uint8_t* src, int src_stride, uint8_t* dst,
                           int dst_stride, int size, int hx, int hy) {
  if (size == 16) {
    for (int r = 0; r < 16; ++r) {
      const uint8_t* s0 = src + size_t(r) * src_stride;
      uint8_t* d = dst + size_t(r) * dst_stride;
      if (!hx && !hy) {
        store16(d, load16(s0));
      } else if (hx && !hy) {
        store16(d, _mm_avg_epu8(load16(s0), load16(s0 + 1)));
      } else if (!hx && hy) {
        store16(d, _mm_avg_epu8(load16(s0), load16(s0 + src_stride)));
      } else {
        const uint8_t* s1 = s0 + src_stride;
        store16(d, quad_avg16(load16(s0), load16(s0 + 1), load16(s1),
                              load16(s1 + 1)));
      }
    }
  } else if (size == 8) {
    for (int r = 0; r < 8; ++r) {
      const uint8_t* s0 = src + size_t(r) * src_stride;
      uint8_t* d = dst + size_t(r) * dst_stride;
      if (!hx && !hy) {
        store8(d, load8(s0));
      } else if (hx && !hy) {
        store8(d, _mm_avg_epu8(load8(s0), load8(s0 + 1)));
      } else if (!hx && hy) {
        store8(d, _mm_avg_epu8(load8(s0), load8(s0 + src_stride)));
      } else {
        const uint8_t* s1 = s0 + src_stride;
        store8(d,
               quad_avg8(load8(s0), load8(s0 + 1), load8(s1), load8(s1 + 1)));
      }
    }
  } else {
    // Out-of-contract block size: scalar fallback (same as the reference).
    for (int r = 0; r < size; ++r) {
      const uint8_t* s0 = src + size_t(r) * src_stride;
      const uint8_t* s1 = s0 + src_stride;
      uint8_t* d = dst + size_t(r) * dst_stride;
      for (int c = 0; c < size; ++c) {
        if (!hx && !hy)
          d[c] = s0[c];
        else if (hx && !hy)
          d[c] = uint8_t((s0[c] + s0[c + 1] + 1) >> 1);
        else if (!hx && hy)
          d[c] = uint8_t((s0[c] + s1[c] + 1) >> 1);
        else
          d[c] = uint8_t((s0[c] + s0[c + 1] + s1[c] + s1[c + 1] + 2) >> 2);
      }
    }
  }
}

inline void avg_pixels(uint8_t* p, const uint8_t* q, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16)
    store16(p + i, _mm_avg_epu8(load16(p + i), load16(q + i)));
  for (; i + 8 <= n; i += 8)
    store8(p + i, _mm_avg_epu8(load8(p + i), load8(q + i)));
  for (; i < n; ++i) p[i] = uint8_t((p[i] + q[i] + 1) >> 1);
}

// ---------------------------------------------------------------------------
// Residual add / intra store
// ---------------------------------------------------------------------------

inline void add_residual_8x8(const int16_t res[64], uint8_t* dst, int stride) {
  const __m128i z = _mm_setzero_si128();
  for (int r = 0; r < 8; ++r) {
    const __m128i res16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(res + 8 * r));
    uint8_t* d = dst + size_t(r) * stride;
    const __m128i d16 = _mm_unpacklo_epi8(load8(d), z);
    // packus saturates int16 -> [0,255], identical to the scalar clamp while
    // d + res stays within int16 (|res| <= 8192 by contract).
    const __m128i s = _mm_add_epi16(d16, res16);
    store8(d, _mm_packus_epi16(s, s));
  }
}

inline void put_residual_8x8(const int16_t res[64], uint8_t* dst, int stride) {
  for (int r = 0; r < 8; ++r) {
    const __m128i res16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(res + 8 * r));
    store8(dst + size_t(r) * stride, _mm_packus_epi16(res16, res16));
  }
}

// ---------------------------------------------------------------------------
// Dequantisation
// ---------------------------------------------------------------------------

inline __m128i saturate2048(__m128i v) {
  const __m128i hi = _mm_set1_epi32(2047);
  const __m128i lo = _mm_set1_epi32(-2048);
  __m128i m = _mm_cmpgt_epi32(v, hi);
  v = _mm_or_si128(_mm_and_si128(m, hi), _mm_andnot_si128(m, v));
  m = _mm_cmpgt_epi32(lo, v);
  return _mm_or_si128(_mm_and_si128(m, lo), _mm_andnot_si128(m, v));
}

// Truncating (toward zero) division by 32, matching the scalar "/ 32".
inline __m128i div32_trunc(__m128i v) {
  const __m128i bias = _mm_and_si128(_mm_srai_epi32(v, 31), _mm_set1_epi32(31));
  return _mm_srai_epi32(_mm_add_epi32(v, bias), 5);
}

inline void mismatch_control(int16_t out[64], int32_t sum) {
  if ((sum & 1) == 0) {
    if (out[63] & 1)
      out[63] = int16_t(out[63] - 1);
    else
      out[63] = int16_t(out[63] + 1);
  }
}

// Shared intra/non-intra dequant: permute QFS to raster order (valid because
// `scan` is a permutation), then vectorise the per-coefficient multiply,
// truncating /32, saturation and coefficient sum. A zero coefficient yields
// exactly 0 through the arithmetic (the non-intra +/-1 "third" term is
// masked to 0 at qf == 0), which matches the scalar code's skip.
inline void dequant_common(const int16_t qfs[64], int16_t out[64],
                           const uint8_t w[64], int scale, int dc_mult,
                           bool intra, const uint8_t scan[64]) {
  alignas(16) int16_t raster[64];
  for (int i = 0; i < 64; ++i) raster[scan[i]] = qfs[i];

  const __m128i z = _mm_setzero_si128();
  const __m128i vscale = _mm_set1_epi32(scale);
  __m128i vsum = z;
  for (int i = 0; i < 64; i += 8) {
    const __m128i q16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(raster + i));
    const __m128i w16 = _mm_unpacklo_epi8(load8(w + i), z);
    const __m128i q[2] = {simd::sext_lo16(q16), simd::sext_hi16(q16)};
    const __m128i ws[2] = {_mm_unpacklo_epi16(w16, z),
                           _mm_unpackhi_epi16(w16, z)};
    __m128i res[2];
    for (int h = 0; h < 2; ++h) {
      __m128i t = _mm_slli_epi32(q[h], 1);  // 2 * qf
      if (!intra) {
        const __m128i gt = _mm_cmpgt_epi32(q[h], z);
        const __m128i lt = _mm_cmpgt_epi32(z, q[h]);
        t = _mm_add_epi32(t, _mm_sub_epi32(lt, gt));  // +sign(qf), 0 at 0
      }
      const __m128i wsc = simd::mul_lo32(ws[h], vscale);
      __m128i v = div32_trunc(simd::mul_lo32(t, wsc));
      v = saturate2048(v);
      vsum = _mm_add_epi32(vsum, v);
      res[h] = v;
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_packs_epi32(res[0], res[1]));
  }
  __m128i s = _mm_add_epi32(vsum, _mm_srli_si128(vsum, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  int32_t sum = _mm_cvtsi128_si32(s);

  if (intra) {
    // The vector pass treated the DC slot (raster 0 == scan 0) like an AC
    // coefficient; replace it with the spec DC reconstruction.
    const int32_t wrong = out[0];
    out[0] = int16_t(std::clamp(dc_mult * int32_t(qfs[0]), -2048, 2047));
    sum += out[0] - wrong;
  }
  mismatch_control(out, sum);
}

inline void dequant_intra(const int16_t qfs[64], int16_t out[64],
                          const uint8_t w[64], int scale, int dc_mult,
                          const uint8_t scan[64]) {
  dequant_common(qfs, out, w, scale, dc_mult, true, scan);
}

inline void dequant_non_intra(const int16_t qfs[64], int16_t out[64],
                              const uint8_t w[64], int scale,
                              const uint8_t scan[64]) {
  dequant_common(qfs, out, w, scale, 0, false, scan);
}

// ---------------------------------------------------------------------------
// SAD
// ---------------------------------------------------------------------------

inline uint32_t hsum_sad(__m128i acc) {
  return uint32_t(_mm_cvtsi128_si32(acc)) +
         uint32_t(_mm_cvtsi128_si32(_mm_srli_si128(acc, 8)));
}

inline uint32_t sad16x16(const uint8_t* a, int a_stride, const uint8_t* b,
                         int b_stride, uint32_t best) {
  __m128i acc = _mm_setzero_si128();
  for (int r = 0; r < 16; ++r)
    acc = _mm_add_epi64(
        acc, _mm_sad_epu8(load16(a + size_t(r) * a_stride),
                          load16(b + size_t(r) * b_stride)));
  const uint32_t sad = hsum_sad(acc);
  return sad < best ? sad : std::numeric_limits<uint32_t>::max();
}

inline uint32_t sad16x16_halfpel(const uint8_t* a, int a_stride,
                                 const uint8_t* b, int b_stride, int hx,
                                 int hy) {
  __m128i acc = _mm_setzero_si128();
  for (int r = 0; r < 16; ++r) {
    const uint8_t* pa = a + size_t(r) * a_stride;
    const uint8_t* b0 = b + size_t(r) * b_stride;
    __m128i pred;
    if (!hx && !hy)
      pred = load16(b0);
    else if (hx && !hy)
      pred = _mm_avg_epu8(load16(b0), load16(b0 + 1));
    else if (!hx && hy)
      pred = _mm_avg_epu8(load16(b0), load16(b0 + b_stride));
    else
      pred = quad_avg16(load16(b0), load16(b0 + 1), load16(b0 + b_stride),
                        load16(b0 + b_stride + 1));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(load16(pa), pred));
  }
  return hsum_sad(acc);
}

}  // namespace
}  // namespace pdw::kernels::m128

#endif  // __SSE2__
