// Internal: per-level table accessors, one per translation unit. A level
// that is not compiled in (non-x86 build) returns nullptr; the dispatcher
// additionally gates sse2/avx2 on runtime CPU support.
#pragma once

#include "kernels/kernels.h"

namespace pdw::kernels {

const KernelTable* scalar_table();  // always available
const KernelTable* sse2_table();    // nullptr unless built with SSE2
const KernelTable* avx2_table();    // nullptr unless built with AVX2

}  // namespace pdw::kernels
