// Scalar reference kernels. This is the ground truth every SIMD level is
// fuzz-tested against: the arithmetic here is the original (seed) hot-loop
// code of idct.cpp / motion.cpp / recon.cpp / quant.cpp / motion_est.cpp,
// moved behind the dispatch table verbatim.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>

#include "kernels/kernels_internal.h"

namespace pdw::kernels {
namespace {

// ---------------------------------------------------------------------------
// 8x8 IDCT — 32-bit fixed-point row/column Wang factorization.
// ---------------------------------------------------------------------------

// Fixed-point constants: 2048 * sqrt(2) * cos(k*pi/16).
constexpr int32_t W1 = 2841;
constexpr int32_t W2 = 2676;
constexpr int32_t W3 = 2408;
constexpr int32_t W5 = 1609;
constexpr int32_t W6 = 1108;
constexpr int32_t W7 = 565;

inline int16_t clamp256(int32_t v) {
  return int16_t(std::clamp(v, -256, 255));
}

// One row, 11-bit fixed point.
void idct_row(int16_t* blk) {
  int32_t x1 = int32_t(blk[4]) << 11;
  int32_t x2 = blk[6];
  int32_t x3 = blk[2];
  int32_t x4 = blk[1];
  int32_t x5 = blk[7];
  int32_t x6 = blk[5];
  int32_t x7 = blk[3];
  if (!(x1 | x2 | x3 | x4 | x5 | x6 | x7)) {
    const int16_t dc = int16_t(blk[0] << 3);
    for (int i = 0; i < 8; ++i) blk[i] = dc;
    return;
  }
  int32_t x0 = (int32_t(blk[0]) << 11) + 128;  // +128 for proper rounding

  // First stage.
  int32_t x8 = W7 * (x4 + x5);
  x4 = x8 + (W1 - W7) * x4;
  x5 = x8 - (W1 + W7) * x5;
  x8 = W3 * (x6 + x7);
  x6 = x8 - (W3 - W5) * x6;
  x7 = x8 - (W3 + W5) * x7;

  // Second stage.
  x8 = x0 + x1;
  x0 -= x1;
  x1 = W6 * (x3 + x2);
  x2 = x1 - (W2 + W6) * x2;
  x3 = x1 + (W2 - W6) * x3;
  x1 = x4 + x6;
  x4 -= x6;
  x6 = x5 + x7;
  x5 -= x7;

  // Third stage.
  x7 = x8 + x3;
  x8 -= x3;
  x3 = x0 + x2;
  x0 -= x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  // Fourth stage.
  blk[0] = int16_t((x7 + x1) >> 8);
  blk[1] = int16_t((x3 + x2) >> 8);
  blk[2] = int16_t((x0 + x4) >> 8);
  blk[3] = int16_t((x8 + x6) >> 8);
  blk[4] = int16_t((x8 - x6) >> 8);
  blk[5] = int16_t((x0 - x4) >> 8);
  blk[6] = int16_t((x3 - x2) >> 8);
  blk[7] = int16_t((x7 - x1) >> 8);
}

// One column, with final descale and clamp.
void idct_col(int16_t* blk) {
  int32_t x1 = int32_t(blk[8 * 4]) << 8;
  int32_t x2 = blk[8 * 6];
  int32_t x3 = blk[8 * 2];
  int32_t x4 = blk[8 * 1];
  int32_t x5 = blk[8 * 7];
  int32_t x6 = blk[8 * 5];
  int32_t x7 = blk[8 * 3];
  if (!(x1 | x2 | x3 | x4 | x5 | x6 | x7)) {
    const int16_t dc = clamp256((blk[0] + 32) >> 6);
    for (int i = 0; i < 8; ++i) blk[8 * i] = dc;
    return;
  }
  int32_t x0 = (int32_t(blk[0]) << 8) + 8192;

  int32_t x8 = W7 * (x4 + x5) + 4;
  x4 = (x8 + (W1 - W7) * x4) >> 3;
  x5 = (x8 - (W1 + W7) * x5) >> 3;
  x8 = W3 * (x6 + x7) + 4;
  x6 = (x8 - (W3 - W5) * x6) >> 3;
  x7 = (x8 - (W3 + W5) * x7) >> 3;

  x8 = x0 + x1;
  x0 -= x1;
  x1 = W6 * (x3 + x2) + 4;
  x2 = (x1 - (W2 + W6) * x2) >> 3;
  x3 = (x1 + (W2 - W6) * x3) >> 3;
  x1 = x4 + x6;
  x4 -= x6;
  x6 = x5 + x7;
  x5 -= x7;

  x7 = x8 + x3;
  x8 -= x3;
  x3 = x0 + x2;
  x0 -= x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  blk[8 * 0] = clamp256((x7 + x1) >> 14);
  blk[8 * 1] = clamp256((x3 + x2) >> 14);
  blk[8 * 2] = clamp256((x0 + x4) >> 14);
  blk[8 * 3] = clamp256((x8 + x6) >> 14);
  blk[8 * 4] = clamp256((x8 - x6) >> 14);
  blk[8 * 5] = clamp256((x0 - x4) >> 14);
  blk[8 * 6] = clamp256((x3 - x2) >> 14);
  blk[8 * 7] = clamp256((x7 - x1) >> 14);
}

void idct_8x8(int16_t block[64]) {
  for (int i = 0; i < 8; ++i) idct_row(block + 8 * i);
  for (int i = 0; i < 8; ++i) idct_col(block + i);
}

// ---------------------------------------------------------------------------
// Half-pel interpolation and averaging (§7.6).
// ---------------------------------------------------------------------------

void interp_halfpel(const uint8_t* src, int src_stride, uint8_t* dst,
                    int dst_stride, int size, int hx, int hy) {
  const int S = size;
  if (!hx && !hy) {
    for (int r = 0; r < S; ++r)
      std::memcpy(dst + size_t(r) * dst_stride, src + size_t(r) * src_stride,
                  size_t(S));
  } else if (hx && !hy) {
    for (int r = 0; r < S; ++r) {
      const uint8_t* s = src + size_t(r) * src_stride;
      uint8_t* d = dst + size_t(r) * dst_stride;
      for (int c = 0; c < S; ++c) d[c] = uint8_t((s[c] + s[c + 1] + 1) >> 1);
    }
  } else if (!hx && hy) {
    for (int r = 0; r < S; ++r) {
      const uint8_t* s0 = src + size_t(r) * src_stride;
      const uint8_t* s1 = s0 + src_stride;
      uint8_t* d = dst + size_t(r) * dst_stride;
      for (int c = 0; c < S; ++c) d[c] = uint8_t((s0[c] + s1[c] + 1) >> 1);
    }
  } else {
    for (int r = 0; r < S; ++r) {
      const uint8_t* s0 = src + size_t(r) * src_stride;
      const uint8_t* s1 = s0 + src_stride;
      uint8_t* d = dst + size_t(r) * dst_stride;
      for (int c = 0; c < S; ++c)
        d[c] = uint8_t((s0[c] + s0[c + 1] + s1[c] + s1[c + 1] + 2) >> 2);
    }
  }
}

void avg_pixels(uint8_t* p, const uint8_t* q, size_t n) {
  for (size_t i = 0; i < n; ++i) p[i] = uint8_t((p[i] + q[i] + 1) >> 1);
}

// ---------------------------------------------------------------------------
// Residual add / intra store (§7.5 / §7.6.8).
// ---------------------------------------------------------------------------

inline uint8_t clamp_pixel(int v) { return uint8_t(std::clamp(v, 0, 255)); }

void add_residual_8x8(const int16_t res[64], uint8_t* dst, int stride) {
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      uint8_t& d = dst[size_t(r) * stride + c];
      d = clamp_pixel(int(d) + res[r * 8 + c]);
    }
}

void put_residual_8x8(const int16_t res[64], uint8_t* dst, int stride) {
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      dst[size_t(r) * stride + c] = clamp_pixel(res[r * 8 + c]);
}

// ---------------------------------------------------------------------------
// Dequantisation (§7.4) with saturation and mismatch control.
// ---------------------------------------------------------------------------

inline int16_t saturate(int32_t v) {
  return int16_t(std::clamp(v, -2048, 2047));
}

// Mismatch control (§7.4.4): if the sum of all coefficients is even, toggle
// the least significant bit of F[7][7].
inline void mismatch_control(int16_t out[64], int32_t sum) {
  if ((sum & 1) == 0) {
    if (out[63] & 1)
      out[63] = int16_t(out[63] - 1);
    else
      out[63] = int16_t(out[63] + 1);
  }
}

void dequant_intra(const int16_t qfs[64], int16_t out[64], const uint8_t w[64],
                   int scale, int dc_mult, const uint8_t scan[64]) {
  for (int i = 0; i < 64; ++i) out[i] = 0;
  out[0] = saturate(dc_mult * qfs[0]);
  int32_t sum = out[0];
  for (int i = 1; i < 64; ++i) {
    if (qfs[i] == 0) continue;
    const int pos = scan[i];
    const int32_t v = (2 * int32_t(qfs[i]) * w[pos] * scale) / 32;
    out[pos] = saturate(v);
    sum += out[pos];
  }
  mismatch_control(out, sum);
}

void dequant_non_intra(const int16_t qfs[64], int16_t out[64],
                       const uint8_t w[64], int scale,
                       const uint8_t scan[64]) {
  for (int i = 0; i < 64; ++i) out[i] = 0;
  int32_t sum = 0;
  for (int i = 0; i < 64; ++i) {
    const int32_t qf = qfs[i];
    if (qf == 0) continue;
    const int pos = scan[i];
    const int32_t third = qf > 0 ? 1 : -1;
    const int32_t v = ((2 * qf + third) * w[pos] * scale) / 32;
    out[pos] = saturate(v);
    sum += out[pos];
  }
  mismatch_control(out, sum);
}

// ---------------------------------------------------------------------------
// SAD (encoder motion estimation).
// ---------------------------------------------------------------------------

uint32_t sad16x16(const uint8_t* a, int a_stride, const uint8_t* b,
                  int b_stride, uint32_t best) {
  uint32_t sad = 0;
  for (int r = 0; r < 16; ++r) {
    const uint8_t* pa = a + size_t(r) * a_stride;
    const uint8_t* pb = b + size_t(r) * b_stride;
    for (int c = 0; c < 16; ++c)
      sad += uint32_t(std::abs(int(pa[c]) - int(pb[c])));
    if (sad >= best) return std::numeric_limits<uint32_t>::max();
  }
  return sad;
}

uint32_t sad16x16_halfpel(const uint8_t* a, int a_stride, const uint8_t* b,
                          int b_stride, int hx, int hy) {
  uint32_t sad = 0;
  for (int r = 0; r < 16; ++r) {
    const uint8_t* pa = a + size_t(r) * a_stride;
    const uint8_t* b0 = b + size_t(r) * b_stride;
    const uint8_t* b1 = b0 + size_t(hy) * b_stride;
    for (int c = 0; c < 16; ++c) {
      int p;
      if (!hx && !hy)
        p = b0[c];
      else if (hx && !hy)
        p = (b0[c] + b0[c + 1] + 1) >> 1;
      else if (!hx && hy)
        p = (b0[c] + b1[c] + 1) >> 1;
      else
        p = (b0[c] + b0[c + 1] + b1[c] + b1[c + 1] + 2) >> 2;
      sad += uint32_t(std::abs(int(pa[c]) - p));
    }
  }
  return sad;
}

const KernelTable kTable = {
    .level = Level::kScalar,
    .name = "scalar",
    .idct_8x8 = idct_8x8,
    .interp_halfpel = interp_halfpel,
    .avg_pixels = avg_pixels,
    .add_residual_8x8 = add_residual_8x8,
    .put_residual_8x8 = put_residual_8x8,
    .dequant_intra = dequant_intra,
    .dequant_non_intra = dequant_non_intra,
    .sad16x16 = sad16x16,
    .sad16x16_halfpel = sad16x16_halfpel,
};

}  // namespace

const KernelTable* scalar_table() { return &kTable; }

}  // namespace pdw::kernels
