// Shared 128-bit SIMD building blocks for the SSE2 and AVX2 kernel TUs.
//
// Everything here is `inline` and compiled separately in each including TU,
// so the AVX2 TU gets VEX-encoded copies while the SSE2 TU stays within
// baseline x86-64. Only included when __SSE2__ is available.
#pragma once

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstdint>

namespace pdw::kernels::simd {
// Anonymous namespace: compiled per-TU with different target flags; internal
// linkage prevents cross-TU comdat folding (see kernels_m128_impl.h).
namespace {

// Low 32 bits of the lane-wise 32x32 product (SSE2 has no pmulld; the low
// half of an unsigned widening multiply equals the signed low half).
inline __m128i mul_lo32(__m128i a, __m128i b) {
  const __m128i even = _mm_mul_epu32(a, b);
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_si128(a, 4), _mm_srli_si128(b, 4));
  const __m128i even_lo = _mm_shuffle_epi32(even, _MM_SHUFFLE(2, 0, 2, 0));
  const __m128i odd_lo = _mm_shuffle_epi32(odd, _MM_SHUFFLE(2, 0, 2, 0));
  return _mm_unpacklo_epi32(even_lo, odd_lo);
}

// Sign-extend the low / high four int16 lanes to int32.
inline __m128i sext_lo16(__m128i v) {
  return _mm_srai_epi32(_mm_unpacklo_epi16(v, v), 16);
}
inline __m128i sext_hi16(__m128i v) {
  return _mm_srai_epi32(_mm_unpackhi_epi16(v, v), 16);
}

// 8x8 int16 transpose, in place over eight registers.
inline void transpose8x8_epi16(__m128i r[8]) {
  const __m128i b0 = _mm_unpacklo_epi16(r[0], r[1]);
  const __m128i b1 = _mm_unpackhi_epi16(r[0], r[1]);
  const __m128i b2 = _mm_unpacklo_epi16(r[2], r[3]);
  const __m128i b3 = _mm_unpackhi_epi16(r[2], r[3]);
  const __m128i b4 = _mm_unpacklo_epi16(r[4], r[5]);
  const __m128i b5 = _mm_unpackhi_epi16(r[4], r[5]);
  const __m128i b6 = _mm_unpacklo_epi16(r[6], r[7]);
  const __m128i b7 = _mm_unpackhi_epi16(r[6], r[7]);
  const __m128i c0 = _mm_unpacklo_epi32(b0, b2);
  const __m128i c1 = _mm_unpackhi_epi32(b0, b2);
  const __m128i c2 = _mm_unpacklo_epi32(b1, b3);
  const __m128i c3 = _mm_unpackhi_epi32(b1, b3);
  const __m128i c4 = _mm_unpacklo_epi32(b4, b6);
  const __m128i c5 = _mm_unpackhi_epi32(b4, b6);
  const __m128i c6 = _mm_unpacklo_epi32(b5, b7);
  const __m128i c7 = _mm_unpackhi_epi32(b5, b7);
  r[0] = _mm_unpacklo_epi64(c0, c4);
  r[1] = _mm_unpackhi_epi64(c0, c4);
  r[2] = _mm_unpacklo_epi64(c1, c5);
  r[3] = _mm_unpackhi_epi64(c1, c5);
  r[4] = _mm_unpacklo_epi64(c2, c6);
  r[5] = _mm_unpackhi_epi64(c2, c6);
  r[6] = _mm_unpacklo_epi64(c3, c7);
  r[7] = _mm_unpackhi_epi64(c3, c7);
}

}  // namespace
}  // namespace pdw::kernels::simd

#endif  // __SSE2__
