// The 8x8 IDCT butterfly, lane-parallel, templated over a vector ops type.
//
// This is the *same* 32-bit fixed-point arithmetic as the scalar reference
// (kernels_scalar.cpp), applied to vectors whose lanes are independent rows
// (row pass) or columns (column pass). The scalar code's DC-only shortcut is
// omitted because the general path provably produces identical values:
//   row:  ((dc << 11) + 128) >> 8      == dc << 3  (exactly, all int16 dc)
//   col:  ((dc << 8) + 8192) >> 14     == (dc + 32) >> 6
// and with all-AC-zero inputs every cross term collapses to 0 before any
// rounding shift, so lane-parallel execution is bit-exact by construction.
//
// Ops requirements (V is the vector of 8 (or 2x4) int32 lanes):
//   V    add(V, V), sub(V, V)
//   V    shl(V, int), sra(V, int)        — lane-wise shifts
//   V    mulc(V, int32_t)                — low 32 bits of lane * constant
//   V    splat(int32_t)
//   V    trunc16(V)                      — sign-extend the low 16 bits
//                                          (replicates the scalar int16 store)
//   V    clamp256(V)                     — clamp lanes to [-256, 255]
#pragma once

#include <cstdint>

namespace pdw::kernels {

namespace idct_const {
// Fixed-point constants: 2048 * sqrt(2) * cos(k*pi/16).
inline constexpr int32_t W1 = 2841;
inline constexpr int32_t W2 = 2676;
inline constexpr int32_t W3 = 2408;
inline constexpr int32_t W5 = 1609;
inline constexpr int32_t W6 = 1108;
inline constexpr int32_t W7 = 565;
}  // namespace idct_const

// Row pass: in[k] holds coefficient column k (one row per lane), 11-bit
// fixed point; outputs are truncated to int16 as the scalar code stores them.
template <typename O>
inline void idct_rows_vec(typename O::V b[8]) {
  using namespace idct_const;
  typename O::V x1 = O::shl(b[4], 11);
  typename O::V x2 = b[6];
  typename O::V x3 = b[2];
  typename O::V x4 = b[1];
  typename O::V x5 = b[7];
  typename O::V x6 = b[5];
  typename O::V x7 = b[3];
  typename O::V x0 = O::add(O::shl(b[0], 11), O::splat(128));

  typename O::V x8 = O::mulc(O::add(x4, x5), W7);
  x4 = O::add(x8, O::mulc(x4, W1 - W7));
  x5 = O::sub(x8, O::mulc(x5, W1 + W7));
  x8 = O::mulc(O::add(x6, x7), W3);
  x6 = O::sub(x8, O::mulc(x6, W3 - W5));
  x7 = O::sub(x8, O::mulc(x7, W3 + W5));

  x8 = O::add(x0, x1);
  x0 = O::sub(x0, x1);
  x1 = O::mulc(O::add(x3, x2), W6);
  x2 = O::sub(x1, O::mulc(x2, W2 + W6));
  x3 = O::add(x1, O::mulc(x3, W2 - W6));
  x1 = O::add(x4, x6);
  x4 = O::sub(x4, x6);
  x6 = O::add(x5, x7);
  x5 = O::sub(x5, x7);

  x7 = O::add(x8, x3);
  x8 = O::sub(x8, x3);
  x3 = O::add(x0, x2);
  x0 = O::sub(x0, x2);
  x2 = O::sra(O::add(O::mulc(O::add(x4, x5), 181), O::splat(128)), 8);
  x4 = O::sra(O::add(O::mulc(O::sub(x4, x5), 181), O::splat(128)), 8);

  b[0] = O::trunc16(O::sra(O::add(x7, x1), 8));
  b[1] = O::trunc16(O::sra(O::add(x3, x2), 8));
  b[2] = O::trunc16(O::sra(O::add(x0, x4), 8));
  b[3] = O::trunc16(O::sra(O::add(x8, x6), 8));
  b[4] = O::trunc16(O::sra(O::sub(x8, x6), 8));
  b[5] = O::trunc16(O::sra(O::sub(x0, x4), 8));
  b[6] = O::trunc16(O::sra(O::sub(x3, x2), 8));
  b[7] = O::trunc16(O::sra(O::sub(x7, x1), 8));
}

// Column pass: in[j] holds row-pass output row j (one column per lane);
// includes the final descale and clamp to [-256, 255].
template <typename O>
inline void idct_cols_vec(typename O::V b[8]) {
  using namespace idct_const;
  typename O::V x1 = O::shl(b[4], 8);
  typename O::V x2 = b[6];
  typename O::V x3 = b[2];
  typename O::V x4 = b[1];
  typename O::V x5 = b[7];
  typename O::V x6 = b[5];
  typename O::V x7 = b[3];
  typename O::V x0 = O::add(O::shl(b[0], 8), O::splat(8192));

  typename O::V x8 = O::add(O::mulc(O::add(x4, x5), W7), O::splat(4));
  x4 = O::sra(O::add(x8, O::mulc(x4, W1 - W7)), 3);
  x5 = O::sra(O::sub(x8, O::mulc(x5, W1 + W7)), 3);
  x8 = O::add(O::mulc(O::add(x6, x7), W3), O::splat(4));
  x6 = O::sra(O::sub(x8, O::mulc(x6, W3 - W5)), 3);
  x7 = O::sra(O::sub(x8, O::mulc(x7, W3 + W5)), 3);

  x8 = O::add(x0, x1);
  x0 = O::sub(x0, x1);
  x1 = O::add(O::mulc(O::add(x3, x2), W6), O::splat(4));
  x2 = O::sra(O::sub(x1, O::mulc(x2, W2 + W6)), 3);
  x3 = O::sra(O::add(x1, O::mulc(x3, W2 - W6)), 3);
  x1 = O::add(x4, x6);
  x4 = O::sub(x4, x6);
  x6 = O::add(x5, x7);
  x5 = O::sub(x5, x7);

  x7 = O::add(x8, x3);
  x8 = O::sub(x8, x3);
  x3 = O::add(x0, x2);
  x0 = O::sub(x0, x2);
  x2 = O::sra(O::add(O::mulc(O::add(x4, x5), 181), O::splat(128)), 8);
  x4 = O::sra(O::add(O::mulc(O::sub(x4, x5), 181), O::splat(128)), 8);

  b[0] = O::clamp256(O::sra(O::add(x7, x1), 14));
  b[1] = O::clamp256(O::sra(O::add(x3, x2), 14));
  b[2] = O::clamp256(O::sra(O::add(x0, x4), 14));
  b[3] = O::clamp256(O::sra(O::add(x8, x6), 14));
  b[4] = O::clamp256(O::sra(O::sub(x8, x6), 14));
  b[5] = O::clamp256(O::sra(O::sub(x0, x4), 14));
  b[6] = O::clamp256(O::sra(O::sub(x3, x2), 14));
  b[7] = O::clamp256(O::sra(O::sub(x7, x1), 14));
}

}  // namespace pdw::kernels
