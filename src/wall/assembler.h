// Wall frame assembly: compose the tiles decoded by the cluster back into a
// single picture for verification, snapshots, and the examples.
//
// On the physical wall no such composition exists — each PC drives its own
// projector and the overlap bands are blended optically. Here composition is
// the observable that lets tests assert the parallel decode is bit-exact.
#pragma once

#include "mpeg2/frame.h"
#include "wall/geometry.h"

namespace pdw::wall {

class WallAssembler {
 public:
  explicit WallAssembler(const TileGeometry& geo);

  // Insert tile t's decoded frame (macroblock-aligned TileFrame in global
  // coordinates). Only the tile's display pixel rect is copied; overlap
  // regions are written by every owning tile with identical data, which
  // assert_consistent() verifies.
  void add_tile(int t, const mpeg2::TileFrame& tile);

  // The composed picture (crop of the macroblock-aligned decode to the
  // display size happens here).
  const mpeg2::Frame& frame() const { return frame_; }

  // CHECK that every display pixel was covered by at least one tile.
  void check_coverage() const;

  void reset();

 private:
  const TileGeometry& geo_;
  mpeg2::Frame frame_;
  std::vector<uint8_t> covered_;  // per luma pixel
};

// Crop a macroblock-aligned full frame to the display size (for comparing
// the serial decoder's output against the assembled wall).
mpeg2::Frame crop_frame(const mpeg2::Frame& src, int width, int height);

}  // namespace pdw::wall
