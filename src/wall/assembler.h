// Wall frame assembly: compose the tiles decoded by the cluster back into a
// single picture for verification, snapshots, and the examples.
//
// On the physical wall no such composition exists — each PC drives its own
// projector and the overlap bands are blended optically. Here composition is
// the observable that lets tests assert the parallel decode is bit-exact.
//
// Fault tolerance adds a second concern: a tile may arrive flagged degraded
// (concealed or frozen content), or not arrive at all (its node died and
// nobody adopted it). Degraded pixels never overwrite exact ones in the
// overlap bands, and fill_uncovered() closes any hole by freezing the
// previous wall frame — the paper's wall must keep showing *something* on
// every projector.
#pragma once

#include "mpeg2/frame.h"
#include "wall/geometry.h"

namespace pdw::wall {

class WallAssembler {
 public:
  explicit WallAssembler(const TileGeometry& geo);

  // Insert tile t's decoded frame (macroblock-aligned TileFrame in global
  // coordinates). Only the tile's display pixel rect is copied. With
  // exact=true (the default), overlap regions are written by every owning
  // tile with identical data, which add_tile CHECK-verifies. With
  // exact=false the data is degraded: it fills pixels no exact tile
  // covered, never overwrites exact ones, and is exempt from the overlap
  // equality check.
  void add_tile(int t, const mpeg2::TileFrame& tile, bool exact = true);

  // Epoch-aware flavour: the frame was decoded under `epoch_geo` (a
  // rebalanced partition of the same wall), so its display rect comes from
  // that geometry while the wall frame itself never moves. Pass the
  // geometry matching TileDisplayInfo::epoch.
  void add_tile(int t, const mpeg2::TileFrame& tile,
                const TileGeometry& epoch_geo, bool exact);

  // The composed picture (crop of the macroblock-aligned decode to the
  // display size happens here).
  const mpeg2::Frame& frame() const { return frame_; }

  // CHECK that every display pixel was covered by at least one tile.
  void check_coverage() const;
  // Same predicate without aborting (fault-tolerant callers branch on it).
  bool coverage_complete() const;

  // Fill every uncovered pixel from `prev` (the previously displayed wall
  // frame), or with mid-gray if prev is null — freeze-last-frame recovery
  // for tiles whose node died. Filled pixels count as degraded coverage.
  void fill_uncovered(const mpeg2::Frame* prev);

  void reset();

 private:
  // Per-pixel coverage state: 0 = hole, 1 = exact, 2 = degraded.
  enum : uint8_t { kHole = 0, kExact = 1, kDegraded = 2 };

  const TileGeometry& geo_;
  mpeg2::Frame frame_;
  std::vector<uint8_t> covered_;    // per luma pixel
  std::vector<uint8_t> covered_c_;  // per chroma pixel
};

// Crop a macroblock-aligned full frame to the display size (for comparing
// the serial decoder's output against the assembled wall).
mpeg2::Frame crop_frame(const mpeg2::Frame& src, int width, int height);

}  // namespace pdw::wall
