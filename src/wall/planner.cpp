#include "wall/planner.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace pdw::wall {

void CostProfile::add(const CostProfile& o) {
  if (o.col.size() > col.size()) col.resize(o.col.size(), 0);
  if (o.row.size() > row.size()) row.resize(o.row.size(), 0);
  for (size_t i = 0; i < o.col.size(); ++i) col[i] += o.col[i];
  for (size_t i = 0; i < o.row.size(); ++i) row[i] += o.row[i];
}

uint64_t CostProfile::total() const {
  return std::accumulate(col.begin(), col.end(), uint64_t(0));
}

std::vector<int> balanced_cuts(const std::vector<uint64_t>& cost, int bands,
                               int min_band_mbs) {
  PDW_CHECK_GT(bands, 0);
  PDW_CHECK_GT(min_band_mbs, 0);
  const int size = int(cost.size());
  if (bands == 1) return {};
  if (int64_t(bands) * min_band_mbs > size) return {};  // cannot fit

  std::vector<uint64_t> prefix(size_t(size) + 1, 0);
  for (int i = 0; i < size; ++i)
    prefix[size_t(i) + 1] = prefix[size_t(i)] + cost[size_t(i)];
  const uint64_t total = prefix[size_t(size)];

  std::vector<int> cuts;
  cuts.reserve(size_t(bands) - 1);
  int prev = 0;
  for (int b = 1; b < bands; ++b) {
    // Greedy prefix walk: the cut nearest the ideal b/bands share, then
    // clamped so this band and all remaining bands keep their minimum width.
    const uint64_t ideal = uint64_t((__uint128_t(total) * b) / bands);
    int c = int(std::lower_bound(prefix.begin(), prefix.end(), ideal) -
                prefix.begin());
    if (c > 0 && ideal - prefix[size_t(c - 1)] < prefix[size_t(c)] - ideal)
      --c;  // the previous boundary is closer to the ideal share
    c = std::max(c, prev + min_band_mbs);
    c = std::min(c, size - (bands - b) * min_band_mbs);
    cuts.push_back(c);
    prev = c;
  }
  return cuts;
}

namespace {

// Per-band sums for one axis; cuts partition [0, cost.size()).
std::vector<uint64_t> band_sums(const std::vector<uint64_t>& cost,
                                const std::vector<int>& cuts) {
  std::vector<uint64_t> sums;
  sums.reserve(cuts.size() + 1);
  int prev = 0;
  for (size_t b = 0; b <= cuts.size(); ++b) {
    const int end = b < cuts.size() ? cuts[b] : int(cost.size());
    uint64_t s = 0;
    for (int i = prev; i < end; ++i) s += cost[size_t(i)];
    sums.push_back(s);
    prev = end;
  }
  return sums;
}

uint64_t max_of(const std::vector<uint64_t>& v) {
  return *std::max_element(v.begin(), v.end());
}

}  // namespace

double predicted_max_tile_cost(const Partition& p, const CostProfile& cost) {
  const uint64_t total = cost.total();
  if (total == 0) return 0;
  const uint64_t cmax = max_of(band_sums(cost.col, p.col_cuts_mb));
  const uint64_t rmax = max_of(band_sums(cost.row, p.row_cuts_mb));
  return double(cmax) * double(rmax) / double(total);
}

double predicted_work_share(const Partition& p, const CostProfile& cost) {
  const double mx = predicted_max_tile_cost(p, cost);
  if (mx <= 0) return 1.0;
  return double(cost.total()) / (double(p.m() * p.n()) * mx);
}

std::optional<Partition> plan_partition(const Partition& cur,
                                        const CostProfile& cost,
                                        const PlannerConfig& cfg) {
  if (cost.empty() || cost.total() == 0) return std::nullopt;
  // A band of w macroblocks is at least 16*w - 15 pixels wide (the last band
  // can lose up to 15 px to picture-edge rounding); require that to clear
  // the projector overlap so the geometry ctor's band check always holds.
  const int min_band =
      std::max(cfg.min_band_mbs, (cfg.overlap_px + 15) / 16 + 1);

  Partition next;
  next.epoch = cur.epoch + 1;
  next.col_cuts_mb = balanced_cuts(cost.col, cur.m(), min_band);
  next.row_cuts_mb = balanced_cuts(cost.row, cur.n(), min_band);
  if (cur.m() > 1 && next.col_cuts_mb.empty()) return std::nullopt;
  if (cur.n() > 1 && next.row_cuts_mb.empty()) return std::nullopt;
  if (next.col_cuts_mb == cur.col_cuts_mb &&
      next.row_cuts_mb == cur.row_cuts_mb)
    return std::nullopt;

  const double cur_max = predicted_max_tile_cost(cur, cost);
  const double new_max = predicted_max_tile_cost(next, cost);
  if (new_max >= cur_max * (1.0 - cfg.gain_threshold)) return std::nullopt;
  return next;
}

}  // namespace pdw::wall
