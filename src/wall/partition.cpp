#include "wall/partition.h"

namespace pdw::wall {

Partition Partition::uniform(int width, int height, int m, int n) {
  PDW_CHECK_GT(m, 0);
  PDW_CHECK_GT(n, 0);
  Partition p;
  p.col_cuts_mb.reserve(size_t(m) - 1);
  p.row_cuts_mb.reserve(size_t(n) - 1);
  // Nearest macroblock boundary to each uniform pixel edge.
  for (int i = 1; i < m; ++i)
    p.col_cuts_mb.push_back(((width * i) / m + 8) / 16);
  for (int i = 1; i < n; ++i)
    p.row_cuts_mb.push_back(((height * i) / n + 8) / 16);
  return p;
}

PartitionTable::PartitionTable(const TileGeometry& base) : base_(base) {
  Entry e;
  e.partition =
      Partition::uniform(base.width(), base.height(), base.m(), base.n());
  e.partition.epoch = 0;
  e.apply_from_pic = 0;
  entries_.push_back(std::move(e));
}

const TileGeometry& PartitionTable::install(const Partition& p,
                                            uint32_t apply_from_pic) {
  PDW_CHECK_EQ(p.epoch, latest_epoch() + 1) << "partition epochs must be dense";
  PDW_CHECK_EQ(p.m(), base_.m()) << "partition changes tile-grid shape";
  PDW_CHECK_EQ(p.n(), base_.n()) << "partition changes tile-grid shape";
  PDW_CHECK_GE(apply_from_pic, entries_.back().apply_from_pic);
  Entry e;
  e.partition = p;
  e.apply_from_pic = apply_from_pic;
  e.geometry = std::make_unique<TileGeometry>(base_.width(), base_.height(), p,
                                              base_.overlap());
  entries_.push_back(std::move(e));
  return *entries_.back().geometry;
}

bool PartitionTable::install_wire(uint32_t epoch, uint32_t apply_from_pic,
                                  const std::vector<uint16_t>& col_cuts_mb,
                                  const std::vector<uint16_t>& row_cuts_mb) {
  if (has_epoch(epoch)) return false;
  Partition p;
  p.epoch = epoch;
  p.col_cuts_mb.reserve(col_cuts_mb.size());
  p.row_cuts_mb.reserve(row_cuts_mb.size());
  for (uint16_t c : col_cuts_mb) p.col_cuts_mb.push_back(int(c));
  for (uint16_t r : row_cuts_mb) p.row_cuts_mb.push_back(int(r));
  install(p, apply_from_pic);
  return true;
}

const TileGeometry& PartitionTable::geometry(uint32_t epoch) const {
  PDW_CHECK(has_epoch(epoch)) << "unknown partition epoch " << epoch;
  return epoch == 0 ? base_ : *entries_[size_t(epoch)].geometry;
}

const Partition& PartitionTable::partition(uint32_t epoch) const {
  PDW_CHECK(has_epoch(epoch));
  return entries_[size_t(epoch)].partition;
}

uint32_t PartitionTable::apply_from(uint32_t epoch) const {
  PDW_CHECK(has_epoch(epoch));
  return entries_[size_t(epoch)].apply_from_pic;
}

uint32_t PartitionTable::epoch_for(uint32_t pic) const {
  // Entries are sorted by apply_from_pic; the newest epoch whose apply point
  // is <= pic wins.
  for (size_t i = entries_.size(); i-- > 1;)
    if (pic >= entries_[i].apply_from_pic) return uint32_t(i);
  return 0;
}

}  // namespace pdw::wall
