#include "wall/assembler.h"

#include <algorithm>
#include <cstring>

namespace pdw::wall {

using mpeg2::Frame;
using mpeg2::TileFrame;

WallAssembler::WallAssembler(const TileGeometry& geo)
    : geo_(geo), frame_(geo.mb_width() * 16, geo.mb_height() * 16) {
  covered_.assign(size_t(geo.width()) * geo.height(), 0);
}

void WallAssembler::reset() {
  std::fill(covered_.begin(), covered_.end(), uint8_t(0));
}

void WallAssembler::add_tile(int t, const TileFrame& tile) {
  const PixelRect& r = geo_.tile_pixels(t);
  PDW_CHECK_GE(r.x0, tile.px0());
  PDW_CHECK_GE(r.y0, tile.py0());
  PDW_CHECK_LE(std::min(r.x1, geo_.width()), tile.px1());

  // Luma: copy the display rect; where another tile already wrote (overlap
  // bands), the data must agree — the physical wall blends the two
  // projectors, which only looks right because both show identical pixels.
  for (int y = r.y0; y < std::min(r.y1, geo_.height()); ++y) {
    uint8_t* dst = frame_.y.row(y);
    const uint8_t* src = tile.pixel(0, r.x0, y);
    const int w = std::min(r.x1, geo_.width()) - r.x0;
    for (int i = 0; i < w; ++i) {
      uint8_t& cov = covered_[size_t(y) * geo_.width() + r.x0 + i];
      if (cov) {
        PDW_CHECK_EQ(int(dst[r.x0 + i]), int(src[i]))
            << "overlap mismatch at (" << r.x0 + i << "," << y << ")";
      }
      dst[r.x0 + i] = src[i];
      cov = 1;
    }
  }

  // Chroma: half-resolution copy of the covering rect.
  const int cx0 = r.x0 >> 1;
  const int cy0 = r.y0 >> 1;
  const int cx1 = std::min((r.x1 + 1) >> 1, geo_.width() >> 1);
  const int cy1 = std::min((r.y1 + 1) >> 1, geo_.height() >> 1);
  for (int y = cy0; y < cy1; ++y) {
    std::memcpy(frame_.cb.row(y) + cx0, tile.pixel(1, cx0, y),
                size_t(cx1 - cx0));
    std::memcpy(frame_.cr.row(y) + cx0, tile.pixel(2, cx0, y),
                size_t(cx1 - cx0));
  }
}

void WallAssembler::check_coverage() const {
  for (int y = 0; y < geo_.height(); ++y)
    for (int x = 0; x < geo_.width(); ++x)
      PDW_CHECK(covered_[size_t(y) * geo_.width() + x])
          << "pixel (" << x << "," << y << ") not covered by any tile";
}

Frame crop_frame(const Frame& src, int width, int height) {
  PDW_CHECK_EQ(width % 2, 0);
  PDW_CHECK_EQ(height % 2, 0);
  Frame out(width, height);
  for (int y = 0; y < height; ++y)
    std::memcpy(out.y.row(y), src.y.row(y), size_t(width));
  for (int y = 0; y < height / 2; ++y) {
    std::memcpy(out.cb.row(y), src.cb.row(y), size_t(width / 2));
    std::memcpy(out.cr.row(y), src.cr.row(y), size_t(width / 2));
  }
  return out;
}

}  // namespace pdw::wall
