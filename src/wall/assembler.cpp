#include "wall/assembler.h"

#include <algorithm>
#include <cstring>

namespace pdw::wall {

using mpeg2::Frame;
using mpeg2::TileFrame;

WallAssembler::WallAssembler(const TileGeometry& geo)
    : geo_(geo), frame_(geo.mb_width() * 16, geo.mb_height() * 16) {
  covered_.assign(size_t(geo.width()) * geo.height(), kHole);
  covered_c_.assign(size_t(geo.width() >> 1) * (geo.height() >> 1), kHole);
}

void WallAssembler::reset() {
  std::fill(covered_.begin(), covered_.end(), uint8_t(kHole));
  std::fill(covered_c_.begin(), covered_c_.end(), uint8_t(kHole));
}

void WallAssembler::add_tile(int t, const TileFrame& tile, bool exact) {
  add_tile(t, tile, geo_, exact);
}

void WallAssembler::add_tile(int t, const TileFrame& tile,
                             const TileGeometry& epoch_geo, bool exact) {
  PDW_CHECK_EQ(epoch_geo.width(), geo_.width());
  PDW_CHECK_EQ(epoch_geo.height(), geo_.height());
  const PixelRect& r = epoch_geo.tile_pixels(t);
  PDW_CHECK_GE(r.x0, tile.px0());
  PDW_CHECK_GE(r.y0, tile.py0());
  PDW_CHECK_LE(std::min(r.x1, geo_.width()), tile.px1());

  // Luma: copy the display rect; where another tile already wrote exact data
  // (overlap bands), exact data must agree — the physical wall blends the
  // two projectors, which only looks right because both show identical
  // pixels. Degraded data fills holes and degraded pixels but never
  // overwrites exact ones.
  for (int y = r.y0; y < std::min(r.y1, geo_.height()); ++y) {
    uint8_t* dst = frame_.y.row(y);
    const uint8_t* src = tile.pixel(0, r.x0, y);
    const int w = std::min(r.x1, geo_.width()) - r.x0;
    for (int i = 0; i < w; ++i) {
      uint8_t& cov = covered_[size_t(y) * geo_.width() + r.x0 + i];
      if (exact) {
        if (cov == kExact) {
          PDW_CHECK_EQ(int(dst[r.x0 + i]), int(src[i]))
              << "overlap mismatch at (" << r.x0 + i << "," << y << ")";
        }
        dst[r.x0 + i] = src[i];
        cov = kExact;
      } else if (cov != kExact) {
        dst[r.x0 + i] = src[i];
        cov = kDegraded;
      }
    }
  }

  // Chroma: half-resolution copy with the same coverage policy.
  const int cw = geo_.width() >> 1;
  const int cx0 = r.x0 >> 1;
  const int cy0 = r.y0 >> 1;
  const int cx1 = std::min((r.x1 + 1) >> 1, cw);
  const int cy1 = std::min((r.y1 + 1) >> 1, geo_.height() >> 1);
  for (int y = cy0; y < cy1; ++y) {
    const uint8_t* scb = tile.pixel(1, cx0, y);
    const uint8_t* scr = tile.pixel(2, cx0, y);
    uint8_t* dcb = frame_.cb.row(y);
    uint8_t* dcr = frame_.cr.row(y);
    for (int i = 0; i < cx1 - cx0; ++i) {
      uint8_t& cov = covered_c_[size_t(y) * cw + cx0 + i];
      if (exact || cov != kExact) {
        dcb[cx0 + i] = scb[i];
        dcr[cx0 + i] = scr[i];
        cov = exact ? kExact : kDegraded;
      }
    }
  }
}

void WallAssembler::check_coverage() const {
  for (int y = 0; y < geo_.height(); ++y)
    for (int x = 0; x < geo_.width(); ++x)
      PDW_CHECK(covered_[size_t(y) * geo_.width() + x] != kHole)
          << "pixel (" << x << "," << y << ") not covered by any tile";
}

bool WallAssembler::coverage_complete() const {
  return std::find(covered_.begin(), covered_.end(), uint8_t(kHole)) ==
             covered_.end() &&
         std::find(covered_c_.begin(), covered_c_.end(), uint8_t(kHole)) ==
             covered_c_.end();
}

void WallAssembler::fill_uncovered(const Frame* prev) {
  for (int y = 0; y < geo_.height(); ++y) {
    uint8_t* dst = frame_.y.row(y);
    const uint8_t* src = prev ? prev->y.row(y) : nullptr;
    for (int x = 0; x < geo_.width(); ++x) {
      uint8_t& cov = covered_[size_t(y) * geo_.width() + x];
      if (cov != kHole) continue;
      dst[x] = src ? src[x] : 128;
      cov = kDegraded;
    }
  }
  const int cw = geo_.width() >> 1;
  const int ch = geo_.height() >> 1;
  for (int y = 0; y < ch; ++y) {
    uint8_t* dcb = frame_.cb.row(y);
    uint8_t* dcr = frame_.cr.row(y);
    for (int x = 0; x < cw; ++x) {
      uint8_t& cov = covered_c_[size_t(y) * cw + x];
      if (cov != kHole) continue;
      dcb[x] = prev ? prev->cb.row(y)[x] : 128;
      dcr[x] = prev ? prev->cr.row(y)[x] : 128;
      cov = kDegraded;
    }
  }
}

Frame crop_frame(const Frame& src, int width, int height) {
  PDW_CHECK_EQ(width % 2, 0);
  PDW_CHECK_EQ(height % 2, 0);
  Frame out(width, height);
  for (int y = 0; y < height; ++y)
    std::memcpy(out.y.row(y), src.y.row(y), size_t(width));
  for (int y = 0; y < height / 2; ++y) {
    std::memcpy(out.cb.row(y), src.cb.row(y), size_t(width / 2));
    std::memcpy(out.cr.row(y), src.cr.row(y), size_t(width / 2));
  }
  return out;
}

}  // namespace pdw::wall
