#include "wall/geometry.h"

#include <algorithm>

#include "wall/partition.h"

namespace pdw::wall {

TileGeometry::TileGeometry(int width, int height, int m, int n, int overlap)
    : width_(width),
      height_(height),
      m_(m),
      n_(n),
      overlap_(overlap),
      mb_width_((width + 15) / 16),
      mb_height_((height + 15) / 16) {
  PDW_CHECK_GT(m, 0);
  PDW_CHECK_GT(n, 0);
  PDW_CHECK_GE(overlap, 0);
  PDW_CHECK_GT(width, 0);
  PDW_CHECK_GT(height, 0);
  // Each tile must still be wider than the overlap bands it absorbs.
  PDW_CHECK_GT(width / m, overlap) << "overlap too large for tile width";
  PDW_CHECK_GT(height / n, overlap) << "overlap too large for tile height";

  // Home grid: uniform partition (last tile absorbs the remainder).
  std::vector<int> col_edges(size_t(m) + 1), row_edges(size_t(n) + 1);
  for (int i = 0; i <= m; ++i) col_edges[size_t(i)] = (width * i) / m;
  for (int i = 0; i <= n; ++i) row_edges[size_t(i)] = (height * i) / n;
  init(col_edges, row_edges);
}

TileGeometry::TileGeometry(int width, int height, const Partition& p,
                           int overlap)
    : width_(width),
      height_(height),
      m_(p.m()),
      n_(p.n()),
      overlap_(overlap),
      mb_width_((width + 15) / 16),
      mb_height_((height + 15) / 16),
      epoch_(p.epoch) {
  PDW_CHECK_GE(overlap, 0);
  PDW_CHECK_GT(width, 0);
  PDW_CHECK_GT(height, 0);

  // Cut lines live strictly inside the macroblock grid and each band must
  // stay wider than the overlap it absorbs (and at least one macroblock).
  auto edges_from_cuts = [&](const std::vector<int>& cuts_mb, int size,
                             int mb_size) {
    std::vector<int> edges;
    edges.reserve(cuts_mb.size() + 2);
    edges.push_back(0);
    int prev_mb = 0;
    for (int cut : cuts_mb) {
      PDW_CHECK_GT(cut, prev_mb) << "partition cuts must strictly increase";
      PDW_CHECK_LT(cut, mb_size) << "partition cut past the picture edge";
      edges.push_back(cut * 16);
      prev_mb = cut;
    }
    edges.push_back(size);
    for (size_t i = 0; i + 1 < edges.size(); ++i)
      PDW_CHECK_GT(edges[i + 1] - edges[i], overlap)
          << "overlap too large for partition band";
    return edges;
  };
  init(edges_from_cuts(p.col_cuts_mb, width, mb_width_),
       edges_from_cuts(p.row_cuts_mb, height, mb_height_));
}

void TileGeometry::init(const std::vector<int>& col_edges,
                        const std::vector<int>& row_edges) {
  const int m = m_, n = n_, overlap = overlap_;
  pixels_.resize(size_t(m) * n);
  mbs_.resize(size_t(m) * n);
  for (int ty = 0; ty < n; ++ty) {
    for (int tx = 0; tx < m; ++tx) {
      PixelRect r;
      r.x0 = col_edges[size_t(tx)];
      r.x1 = col_edges[size_t(tx) + 1];
      r.y0 = row_edges[size_t(ty)];
      r.y1 = row_edges[size_t(ty) + 1];
      // Widen interior edges by half the projector overlap each way.
      if (tx > 0) r.x0 -= overlap / 2;
      if (tx < m - 1) r.x1 += overlap - overlap / 2;
      if (ty > 0) r.y0 -= overlap / 2;
      if (ty < n - 1) r.y1 += overlap - overlap / 2;

      const int t = tile_index(tx, ty);
      pixels_[size_t(t)] = r;
      MbRect mr;
      mr.x0 = r.x0 / 16;
      mr.y0 = r.y0 / 16;
      mr.x1 = std::min(mb_width_, (r.x1 + 15) / 16);
      mr.y1 = std::min(mb_height_, (r.y1 + 15) / 16);
      mbs_[size_t(t)] = mr;
    }
  }

  // Home lookup tables for owner_of_mb: a macroblock's owner is the tile of
  // the home cell containing its top-left pixel.
  col_home_.resize(size_t(width_));
  row_home_.resize(size_t(height_));
  for (int tx = 0; tx < m; ++tx)
    for (int x = col_edges[size_t(tx)]; x < col_edges[size_t(tx) + 1]; ++x)
      col_home_[size_t(x)] = tx;
  for (int ty = 0; ty < n; ++ty)
    for (int y = row_edges[size_t(ty)]; y < row_edges[size_t(ty) + 1]; ++y)
      row_home_[size_t(y)] = ty;
}

void TileGeometry::tiles_of_mb(int mbx, int mby, std::vector<int>* out) const {
  out->clear();
  for (int t = 0; t < tiles(); ++t)
    if (mbs_[size_t(t)].contains(mbx, mby)) out->push_back(t);
}

int TileGeometry::owner_of_mb(int mbx, int mby) const {
  const int px = std::min(mbx * 16, width_ - 1);
  const int py = std::min(mby * 16, height_ - 1);
  const int t = tile_index(col_home_[size_t(px)], row_home_[size_t(py)]);
  // The owner must itself decode the macroblock, or it could not serve it.
  PDW_CHECK(mbs_[size_t(t)].contains(mbx, mby));
  return t;
}

}  // namespace pdw::wall
