#include "wall/geometry.h"

#include <algorithm>

namespace pdw::wall {

TileGeometry::TileGeometry(int width, int height, int m, int n, int overlap)
    : width_(width),
      height_(height),
      m_(m),
      n_(n),
      overlap_(overlap),
      mb_width_((width + 15) / 16),
      mb_height_((height + 15) / 16) {
  PDW_CHECK_GT(m, 0);
  PDW_CHECK_GT(n, 0);
  PDW_CHECK_GE(overlap, 0);
  PDW_CHECK_GT(width, 0);
  PDW_CHECK_GT(height, 0);
  // Each tile must still be wider than the overlap bands it absorbs.
  PDW_CHECK_GT(width / m, overlap) << "overlap too large for tile width";
  PDW_CHECK_GT(height / n, overlap) << "overlap too large for tile height";

  // Home grid: uniform partition (last tile absorbs the remainder).
  auto home_edge = [](int size, int count, int i) {
    return i >= count ? size : (size * i) / count;
  };

  pixels_.resize(size_t(m) * n);
  mbs_.resize(size_t(m) * n);
  for (int ty = 0; ty < n; ++ty) {
    for (int tx = 0; tx < m; ++tx) {
      PixelRect r;
      r.x0 = home_edge(width, m, tx);
      r.x1 = home_edge(width, m, tx + 1);
      r.y0 = home_edge(height, n, ty);
      r.y1 = home_edge(height, n, ty + 1);
      // Widen interior edges by half the projector overlap each way.
      if (tx > 0) r.x0 -= overlap / 2;
      if (tx < m - 1) r.x1 += overlap - overlap / 2;
      if (ty > 0) r.y0 -= overlap / 2;
      if (ty < n - 1) r.y1 += overlap - overlap / 2;

      const int t = tile_index(tx, ty);
      pixels_[size_t(t)] = r;
      MbRect mr;
      mr.x0 = r.x0 / 16;
      mr.y0 = r.y0 / 16;
      mr.x1 = std::min(mb_width_, (r.x1 + 15) / 16);
      mr.y1 = std::min(mb_height_, (r.y1 + 15) / 16);
      mbs_[size_t(t)] = mr;
    }
  }

  // Home lookup tables for owner_of_mb: a macroblock's owner is the tile of
  // the home cell containing its top-left pixel.
  col_home_.resize(size_t(width_));
  row_home_.resize(size_t(height_));
  for (int tx = 0; tx < m; ++tx)
    for (int x = home_edge(width, m, tx); x < home_edge(width, m, tx + 1); ++x)
      col_home_[size_t(x)] = tx;
  for (int ty = 0; ty < n; ++ty)
    for (int y = home_edge(height, n, ty); y < home_edge(height, n, ty + 1); ++y)
      row_home_[size_t(y)] = ty;
}

void TileGeometry::tiles_of_mb(int mbx, int mby, std::vector<int>* out) const {
  out->clear();
  for (int t = 0; t < tiles(); ++t)
    if (mbs_[size_t(t)].contains(mbx, mby)) out->push_back(t);
}

int TileGeometry::owner_of_mb(int mbx, int mby) const {
  const int px = std::min(mbx * 16, width_ - 1);
  const int py = std::min(mby * 16, height_ - 1);
  const int t = tile_index(col_home_[size_t(px)], row_home_[size_t(py)]);
  // The owner must itself decode the macroblock, or it could not serve it.
  PDW_CHECK(mbs_[size_t(t)].contains(mbx, mby));
  return t;
}

}  // namespace pdw::wall
