// Tiled display wall geometry.
//
// An m x n projector wall shows a W x H video; adjacent projectors overlap by
// `overlap` pixels for edge blending (the Princeton wall used ~40 px), so a
// macroblock near a tile boundary may belong to several tiles and is sent to
// each of their decoders (the duplication overhead the paper notes for
// low-resolution streams).
//
// Tile boundaries come in two flavours: the classic uniform grid (epoch 0 of
// every wall), and an arbitrary non-uniform partition with cut lines on the
// macroblock grid (wall/partition.h), produced by the load-balancing planner.
// Both share all the derived machinery — overlap widening, macroblock rects,
// the home-cell owner map — so splitters and decoders answer owner_of_mb
// identically regardless of which epoch a geometry describes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace pdw::wall {

struct Partition;

struct PixelRect {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;  // half-open
  int width() const { return x1 - x0; }
  int height() const { return y1 - y0; }
  bool contains(int x, int y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
};

struct MbRect {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;  // half-open, macroblock units
  bool contains(int mbx, int mby) const {
    return mbx >= x0 && mbx < x1 && mby >= y0 && mby < y1;
  }
  int count() const { return (x1 - x0) * (y1 - y0); }

  friend bool operator==(const MbRect&, const MbRect&) = default;
};

class TileGeometry {
 public:
  // Partition a width x height picture across an m x n wall with `overlap`
  // blending pixels between adjacent tiles. Tile boundaries land on the
  // uniform grid; each tile's pixel rect is then widened by overlap/2 on
  // interior edges. This is epoch 0 of every wall.
  TileGeometry(int width, int height, int m, int n, int overlap = 0);

  // Non-uniform wall: tile boundaries at the partition's macroblock cut
  // lines (pixel edge = cut * 16), same overlap widening. Carries the
  // partition's epoch stamp.
  TileGeometry(int width, int height, const Partition& p, int overlap = 0);

  int m() const { return m_; }
  int n() const { return n_; }
  int tiles() const { return m_ * n_; }
  int width() const { return width_; }
  int height() const { return height_; }
  int mb_width() const { return mb_width_; }
  int mb_height() const { return mb_height_; }
  int overlap() const { return overlap_; }

  // Which partition epoch this geometry realizes (0 for the uniform ctor).
  uint32_t epoch() const { return epoch_; }

  int tile_index(int tx, int ty) const { return ty * m_ + tx; }

  // Pixel region tile t displays (includes overlap bands).
  const PixelRect& tile_pixels(int t) const { return pixels_[size_t(t)]; }

  // Macroblock-aligned region tile t decodes (covers tile_pixels).
  const MbRect& tile_mbs(int t) const { return mbs_[size_t(t)]; }

  // All tiles that decode macroblock (mbx, mby): 1..4 of them.
  // Deterministic order (row-major tile index).
  void tiles_of_mb(int mbx, int mby, std::vector<int>* out) const;

  // Canonical owner of a macroblock: the unique tile responsible for
  // *serving* this macroblock's pixels to other decoders in MEI exchanges.
  // Uses the non-overlapped home grid, so splitter and decoders agree.
  int owner_of_mb(int mbx, int mby) const;

  bool tile_has_mb(int t, int mbx, int mby) const {
    return mbs_[size_t(t)].contains(mbx, mby);
  }

 private:
  // Shared ctor body: home pixel edges per axis (m_+1 / n_+1 entries,
  // first 0, last width/height).
  void init(const std::vector<int>& col_edges, const std::vector<int>& row_edges);

  int width_, height_, m_, n_, overlap_;
  int mb_width_, mb_height_;
  uint32_t epoch_ = 0;
  std::vector<PixelRect> pixels_;
  std::vector<MbRect> mbs_;
  std::vector<int> col_home_;  // pixel column -> home tile column
  std::vector<int> row_home_;
};

}  // namespace pdw::wall
