// Versioned, epoch-stamped wall partitions.
//
// The wall stays an m x n grid of rectangular tiles, but the column/row cut
// lines may sit on any macroblock boundary instead of the uniform grid. Each
// distinct set of cut lines is one *epoch*: epoch 0 is the geometry the wall
// was built with, and every rebalance (decided by the planner at a closed-GOP
// I picture) installs epoch e+1 applying from a known picture index. All
// nodes — splitter, decoders, assembler — resolve a picture's geometry
// through the same PartitionTable, so "which tile owns macroblock (x,y)" is
// always answered against the *sending* epoch, never a racing local notion.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wall/geometry.h"

namespace pdw::wall {

// Cut lines on the macroblock grid for one epoch. `col_cuts_mb` holds the
// m-1 interior column cuts in macroblocks (strictly increasing, exclusive of
// 0 and mb_width); band i spans [cut[i-1], cut[i]). Rows likewise.
struct Partition {
  uint32_t epoch = 0;
  std::vector<int> col_cuts_mb;
  std::vector<int> row_cuts_mb;

  int m() const { return int(col_cuts_mb.size()) + 1; }
  int n() const { return int(row_cuts_mb.size()) + 1; }

  // The uniform partition equivalent: cuts at the MB column/row containing
  // each uniform pixel edge. This is epoch 0's *shape* when adaptive mode
  // starts from a uniform wall (the pixel edges themselves may differ from
  // the uniform TileGeometry by sub-MB amounts; owner maps still agree
  // because both round through the same home-cell lookup).
  static Partition uniform(int width, int height, int m, int n);

  friend bool operator==(const Partition&, const Partition&) = default;
};

// Epoch -> geometry resolution for one wall. Epochs are dense (0, 1, 2, ...)
// and each applies from a picture index that is non-decreasing in epoch; the
// table answers both "the geometry of epoch e" (for serving a message stamped
// with e) and "the epoch in effect at picture p" (for deciding how to split
// or decode p). Geometries are heap-allocated once and never move, so
// references handed out stay valid across install().
class PartitionTable {
 public:
  // Epoch 0 is the wall's base geometry (shared, not copied).
  explicit PartitionTable(const TileGeometry& base);

  // Install epoch `p.epoch` (must be latest_epoch() + 1) applying from
  // `apply_from_pic` (must be >= the previous epoch's apply point).
  const TileGeometry& install(const Partition& p, uint32_t apply_from_pic);

  // Install from a wire partition-update's fields. Idempotent against the
  // root's broadcast fan-out (a host co-hosting several machines sees the
  // same update once per machine): an epoch already present is a no-op.
  // Returns true when the epoch was newly installed.
  bool install_wire(uint32_t epoch, uint32_t apply_from_pic,
                    const std::vector<uint16_t>& col_cuts_mb,
                    const std::vector<uint16_t>& row_cuts_mb);

  uint32_t latest_epoch() const { return uint32_t(entries_.size()) - 1; }
  bool has_epoch(uint32_t epoch) const { return epoch < entries_.size(); }

  const TileGeometry& geometry(uint32_t epoch) const;
  const Partition& partition(uint32_t epoch) const;
  uint32_t apply_from(uint32_t epoch) const;

  // The epoch in effect when picture `pic` is split/decoded.
  uint32_t epoch_for(uint32_t pic) const;

  const TileGeometry& base() const { return base_; }

 private:
  struct Entry {
    Partition partition;
    uint32_t apply_from_pic = 0;
    std::unique_ptr<TileGeometry> geometry;  // null for epoch 0 (= base_)
  };

  const TileGeometry& base_;
  std::vector<Entry> entries_;
};

}  // namespace pdw::wall
