// Greedy balanced-cut partition planner (sans-io, deterministic).
//
// The macroblock splitter parses every MB anyway, so it can price each MB
// column and row (coded bits + motion-compensation weights) for free. The
// planner turns those per-axis cost profiles into new cut lines that equalize
// predicted per-tile decode cost, under a separable model:
//
//     cost(tile i,j) ~= colband_i * rowband_j / total
//
// which is exact when the cost surface is a product of a column and a row
// profile, and a good proxy for the hot-region skew the Orion streams show
// (a bright band in both axes). Hysteresis keeps the wall from thrashing:
// cuts move only when the predicted max-tile cost improves by at least
// `gain_threshold` over keeping the current cuts.
//
// Everything here is pure: same profiles in, same partition out, on every
// engine — the root's rebalance decision is a deterministic function of the
// bitstream.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "wall/partition.h"

namespace pdw::wall {

// Accumulated per-axis decode-cost profile (one entry per MB column / row).
struct CostProfile {
  std::vector<uint64_t> col;
  std::vector<uint64_t> row;

  // Elementwise accumulate (resizes to the larger profile).
  void add(const CostProfile& o);
  bool empty() const { return col.empty() || row.empty(); }
  uint64_t total() const;  // sum over col (== sum over row by construction)
};

struct PlannerConfig {
  // Rebalance only when predicted max-tile cost improves by this fraction.
  double gain_threshold = 0.05;
  // Narrowest band the planner will cut, in macroblocks.
  int min_band_mbs = 2;
  // Projector overlap in pixels; bands must stay wider than this.
  int overlap_px = 0;
};

// Choose `bands`-1 interior cuts over `cost` so per-band sums are as equal as
// the greedy prefix walk allows. Each band spans >= min_band_mbs entries.
// Empty result when the constraints cannot be met (too many bands).
std::vector<int> balanced_cuts(const std::vector<uint64_t>& cost, int bands,
                               int min_band_mbs);

// Predicted max-tile cost of `p` under the separable model, and the wall's
// work share (total / (tiles * max_tile), the Fig. 7 metric) for reporting.
double predicted_max_tile_cost(const Partition& p, const CostProfile& cost);
double predicted_work_share(const Partition& p, const CostProfile& cost);

// The planner: given the cuts currently in force and a cost profile for the
// pictures since the last decision, either return the next epoch's partition
// (epoch = cur.epoch + 1) or nullopt when hysteresis says stay put.
std::optional<Partition> plan_partition(const Partition& cur,
                                        const CostProfile& cost,
                                        const PlannerConfig& cfg);

}  // namespace pdw::wall
