// Internal helpers shared by the program-stream and transport-stream
// multiplexers: PES packet construction and the 33-bit PTS/DTS timestamp
// layout (4-bit prefix + 3x15 bits with marker bits).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace pdw::ps::detail {

inline void put_timestamp(std::vector<uint8_t>* out, int prefix, int64_t ts) {
  const uint64_t t = uint64_t(ts) & 0x1FFFFFFFFull;
  out->push_back(uint8_t((prefix << 4) | (int((t >> 30) & 7) << 1) | 1));
  out->push_back(uint8_t(t >> 22));
  out->push_back(uint8_t(((t >> 14) & 0xFE) | 1));
  out->push_back(uint8_t(t >> 7));
  out->push_back(uint8_t(((t << 1) & 0xFE) | 1));
}

inline int64_t read_timestamp(const uint8_t* p) {
  int64_t t = int64_t(p[0] >> 1 & 0x07) << 30;
  t |= int64_t(p[1]) << 22;
  t |= int64_t(p[2] >> 1) << 15;
  t |= int64_t(p[3]) << 7;
  t |= int64_t(p[4] >> 1);
  return t;
}

// One MPEG-2 PES packet with optional PTS+DTS (pts < 0 = unstamped
// continuation packet). `stream_id` is typically 0xE0 (video stream 0).
inline void write_pes_packet(std::vector<uint8_t>* out, uint8_t stream_id,
                             std::span<const uint8_t> payload, int64_t pts,
                             int64_t dts) {
  out->push_back(0x00);
  out->push_back(0x00);
  out->push_back(0x01);
  out->push_back(stream_id);
  const bool stamped = pts >= 0;
  const int header_data = stamped ? 10 : 0;
  const size_t length = 3 + size_t(header_data) + payload.size();
  PDW_CHECK_LE(length, 0xFFFF);
  out->push_back(uint8_t(length >> 8));
  out->push_back(uint8_t(length));
  out->push_back(uint8_t(0x80 | (stamped ? 0x04 : 0x00)));  // '10', alignment
  out->push_back(stamped ? 0xC0 : 0x00);                    // PTS_DTS_flags
  out->push_back(uint8_t(header_data));
  if (stamped) {
    put_timestamp(out, 0b0011, pts);
    put_timestamp(out, 0b0001, dts);
  }
  out->insert(out->end(), payload.begin(), payload.end());
}

}  // namespace pdw::ps::detail
