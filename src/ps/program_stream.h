// MPEG-2 Program Stream (ISO/IEC 13818-1) multiplex and demultiplex for a
// single video elementary stream.
//
// The paper decodes MPEG-2 *video* elementary streams, but real material
// (DVDs, broadcast captures — exactly the paper's test clips) arrives inside
// the system layer: pack headers carrying the system clock reference, PES
// packets carrying the video with PTS/DTS timestamps. This module provides
// that substrate so streams can be stored/ingested in their native container:
// the root splitter's input path is `demux -> scan_pictures`.
//
// Scope: one video stream (stream_id 0xE0), program stream only (no
// transport stream), constant mux rate, PTS/DTS on every picture-initial PES
// packet. That covers DVD-class material; audio streams present in a real PS
// are skipped by the demultiplexer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/decode_status.h"

namespace pdw::ps {

inline constexpr uint8_t kVideoStreamId = 0xE0;
inline constexpr double k90kHz = 90000.0;

struct MuxConfig {
  double frame_rate = 30.0;       // for PTS/DTS generation
  uint32_t mux_rate_bps = 15'000'000;  // program_mux_rate (rounded to 50-byte units)
  size_t max_pes_payload = 60'000;     // split large pictures across PES packets
  int pictures_per_pack = 1;           // pack header frequency
};

// Multiplex a video elementary stream into a program stream. Pictures are
// located with the start-code scanner; each picture starts a new PES packet
// with PTS/DTS derived from decode order and temporal_reference (display
// order), using a 90 kHz clock and a fixed decode delay of one frame period.
std::vector<uint8_t> mux_program_stream(std::span<const uint8_t> video_es,
                                        const MuxConfig& config = {});

struct DemuxResult {
  // First damage encountered (kOk on clean input). Truncation stops the
  // demux with the bytes recovered so far; other structural damage is
  // skipped over (byte-wise resync) and only recorded here.
  DecodeStatus status;
  std::vector<uint8_t> video_es;
  int packs = 0;
  int pes_packets = 0;
  int skipped_packets = 0;         // non-video PES packets
  int bad_packets = 0;             // malformed structures skipped by resync
  std::vector<int64_t> pts;        // 90 kHz, one per timestamped PES packet
  std::vector<int64_t> dts;
  std::vector<int64_t> scr;        // one per pack header (base*300 + ext)
};

// Demultiplex a program stream, extracting the first video stream.
// Tolerates unknown stream ids, padding streams and stuffing. Never throws
// on damaged input: structural errors are reported in `result.status`, with
// whatever video payload preceded the damage preserved.
DemuxResult demux_program_stream(std::span<const uint8_t> program);

}  // namespace pdw::ps
