#include "ps/transport_stream.h"

#include <algorithm>
#include <map>

#include "bitstream/start_code.h"
#include "common/check.h"
#include "mpeg2/headers.h"
#include "ps/pes_common.h"
#include "ps/program_stream.h"  // kVideoStreamId, k90kHz

namespace pdw::ps {

uint32_t mpeg_crc32(std::span<const uint8_t> data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc ^= uint32_t(byte) << 24;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc & 0x80000000u) ? (crc << 1) ^ 0x04C11DB7u : crc << 1;
  }
  return crc;
}

namespace {

// --- Packetizer --------------------------------------------------------------

class TsWriter {
 public:
  explicit TsWriter(std::vector<uint8_t>* out) : out_(out) {}

  // Emit TS packets carrying `payload` on `pid`; the first packet gets PUSI.
  // `pcr` >= 0 attaches a PCR in the first packet's adaptation field.
  void write_payload(uint16_t pid, std::span<const uint8_t> payload,
                     int64_t pcr = -1) {
    bool first = true;
    size_t offset = 0;
    while (offset < payload.size() || first) {
      const size_t remaining = payload.size() - offset;
      emit_packet(pid, first, payload.subspan(offset), first ? pcr : -1,
                  &offset);
      (void)remaining;
      first = false;
    }
  }

 private:
  // Emit one 188-byte packet carrying as much of `rest` as fits; advances
  // *offset by the number of payload bytes consumed.
  void emit_packet(uint16_t pid, bool pusi, std::span<const uint8_t> rest,
                   int64_t pcr, size_t* offset) {
    uint8_t pkt[kTsPacketSize];
    size_t pos = 0;
    pkt[pos++] = kTsSyncByte;
    pkt[pos++] = uint8_t((pusi ? 0x40 : 0x00) | ((pid >> 8) & 0x1F));
    pkt[pos++] = uint8_t(pid & 0xFF);
    uint8_t& afc_byte = pkt[pos];
    const uint8_t cc = next_cc(pid);
    pkt[pos++] = cc;  // afc bits patched below

    // Adaptation field: needed for PCR and/or stuffing.
    const size_t header = 4;
    size_t af_len = 0;  // bytes after the af length byte
    const bool want_pcr = pcr >= 0;
    if (want_pcr) af_len = 1 + 6;  // flags + PCR
    size_t capacity = kTsPacketSize - header - (af_len ? af_len + 1 : 0);
    if (rest.size() < capacity) {
      // Stuff the adaptation field so the payload exactly fills the packet.
      const size_t need = capacity - rest.size();
      if (af_len == 0 && need == 1) {
        af_len = 0;  // single zero-length AF byte
        capacity -= 1;
      } else if (af_len == 0) {
        af_len = need - 1;  // length byte + (need-1) AF bytes
        capacity -= need;
      } else {
        af_len += need;
        capacity -= need;
      }
    }
    const bool have_af = want_pcr || capacity < kTsPacketSize - header;
    afc_byte = uint8_t((have_af ? 0x30 : 0x10) | (cc & 0x0F));

    if (have_af) {
      pkt[pos++] = uint8_t(af_len);
      if (af_len > 0) {
        pkt[pos++] = want_pcr ? 0x10 : 0x00;  // flags (PCR_flag)
        size_t used = 1;
        if (want_pcr) {
          const uint64_t base = uint64_t(pcr / 300) & 0x1FFFFFFFFull;
          const uint32_t ext = uint32_t(pcr % 300);
          pkt[pos++] = uint8_t(base >> 25);
          pkt[pos++] = uint8_t(base >> 17);
          pkt[pos++] = uint8_t(base >> 9);
          pkt[pos++] = uint8_t(base >> 1);
          pkt[pos++] = uint8_t(((base & 1) << 7) | 0x7E | ((ext >> 8) & 1));
          pkt[pos++] = uint8_t(ext & 0xFF);
          used += 6;
        }
        for (; used < af_len; ++used) pkt[pos++] = 0xFF;  // stuffing
      }
    }

    const size_t take = std::min(rest.size(), kTsPacketSize - pos);
    std::copy_n(rest.data(), take, pkt + pos);
    pos += take;
    PDW_CHECK_EQ(pos, kTsPacketSize);
    out_->insert(out_->end(), pkt, pkt + kTsPacketSize);
    *offset += take;
  }

  uint8_t next_cc(uint16_t pid) {
    uint8_t& cc = cc_[pid];
    const uint8_t value = cc;
    cc = uint8_t((cc + 1) & 0x0F);
    return value;
  }

  std::vector<uint8_t>* out_;
  std::map<uint16_t, uint8_t> cc_;
};

// --- PSI sections -------------------------------------------------------------

std::vector<uint8_t> build_section(uint8_t table_id, uint16_t id_field,
                                   std::span<const uint8_t> body) {
  // Common syntax: table_id, section_length, id, version 0, current, 0/0.
  std::vector<uint8_t> sec;
  sec.push_back(table_id);
  const size_t section_length = 5 + body.size() + 4;  // header tail + CRC
  sec.push_back(uint8_t(0xB0 | ((section_length >> 8) & 0x0F)));
  sec.push_back(uint8_t(section_length & 0xFF));
  sec.push_back(uint8_t(id_field >> 8));
  sec.push_back(uint8_t(id_field & 0xFF));
  sec.push_back(0xC1);  // reserved, version 0, current_next = 1
  sec.push_back(0x00);  // section_number
  sec.push_back(0x00);  // last_section_number
  sec.insert(sec.end(), body.begin(), body.end());
  const uint32_t crc = mpeg_crc32(sec);
  sec.push_back(uint8_t(crc >> 24));
  sec.push_back(uint8_t(crc >> 16));
  sec.push_back(uint8_t(crc >> 8));
  sec.push_back(uint8_t(crc));
  return sec;
}

std::vector<uint8_t> build_pat(const TsMuxConfig& cfg) {
  std::vector<uint8_t> body = {
      uint8_t(cfg.program_number >> 8), uint8_t(cfg.program_number & 0xFF),
      uint8_t(0xE0 | ((cfg.pmt_pid >> 8) & 0x1F)), uint8_t(cfg.pmt_pid & 0xFF)};
  auto sec = build_section(0x00, /*transport_stream_id=*/1, body);
  sec.insert(sec.begin(), 0x00);  // pointer_field
  return sec;
}

std::vector<uint8_t> build_pmt(const TsMuxConfig& cfg) {
  std::vector<uint8_t> body = {
      uint8_t(0xE0 | ((cfg.video_pid >> 8) & 0x1F)),
      uint8_t(cfg.video_pid & 0xFF),  // PCR PID = video PID
      0xF0, 0x00,                     // program_info_length = 0
      0x02,                           // stream_type: MPEG-2 video
      uint8_t(0xE0 | ((cfg.video_pid >> 8) & 0x1F)),
      uint8_t(cfg.video_pid & 0xFF),
      0xF0, 0x00,                     // ES_info_length = 0
  };
  auto sec = build_section(0x02, cfg.program_number, body);
  sec.insert(sec.begin(), 0x00);  // pointer_field
  return sec;
}

}  // namespace

std::vector<uint8_t> mux_transport_stream(std::span<const uint8_t> video_es,
                                          const TsMuxConfig& config) {
  PDW_CHECK_GT(config.frame_rate, 0.0);
  const auto spans = scan_pictures(video_es);
  PDW_CHECK(!spans.empty()) << "no pictures in elementary stream";
  const double period90 = k90kHz / config.frame_rate;

  std::vector<uint8_t> out;
  out.reserve(video_es.size() + video_es.size() / 8 + 1024);
  TsWriter writer(&out);

  const auto pat = build_pat(config);
  const auto pmt = build_pmt(config);

  int gop_base = 0;
  int pictures_in_gop = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (int(i) % config.psi_interval_pictures == 0) {
      writer.write_payload(kPatPid, pat);
      writer.write_payload(config.pmt_pid, pmt);
    }

    const auto picture =
        video_es.subspan(spans[i].begin, spans[i].end - spans[i].begin);
    mpeg2::SequenceHeader seq;
    bool have_seq = true;
    mpeg2::ParsedPictureHeaders headers;
    const DecodeStatus hs =
        mpeg2::parse_picture_headers(picture, &seq, &have_seq, &headers);
    PDW_BITSTREAM_CHECK(hs.ok())
        << "cannot mux picture " << i << " with undecodable headers";
    if (headers.had_gop_header) {
      gop_base += pictures_in_gop;
      pictures_in_gop = 0;
    }
    ++pictures_in_gop;
    const int display_index = gop_base + headers.ph.temporal_reference;
    const int64_t dts = int64_t((double(i) + 1.0) * period90);
    const int64_t pts = int64_t((double(display_index) + 2.0) * period90);

    // Build the picture's PES packet(s) and hand them to the packetizer.
    std::vector<uint8_t> pes;
    size_t offset = 0;
    bool first = true;
    while (offset < picture.size()) {
      const size_t chunk = std::min<size_t>(60000, picture.size() - offset);
      pes.clear();
      detail::write_pes_packet(&pes, kVideoStreamId,
                               picture.subspan(offset, chunk),
                               first ? pts : -1, first ? dts : -1);
      const bool want_pcr =
          first && int(i) % config.pcr_interval_pictures == 0;
      writer.write_payload(config.video_pid, pes,
                           want_pcr ? std::max<int64_t>(0, dts - int64_t(period90)) * 300
                                    : -1);
      offset += chunk;
      first = false;
    }
  }

  // Trailing bytes (sequence_end_code) in a final PES packet.
  if (spans.back().end < video_es.size()) {
    std::vector<uint8_t> pes;
    detail::write_pes_packet(&pes, kVideoStreamId,
                             video_es.subspan(spans.back().end), -1, -1);
    writer.write_payload(config.video_pid, pes);
  }
  return out;
}

TsDemuxResult demux_transport_stream(std::span<const uint8_t> ts) {
  TsDemuxResult result;

  const auto fail = [&](DecodeErr code, DecodeSeverity sev, size_t byte_pos) {
    if (result.status.ok())
      result.status = DecodeStatus::error(code, sev, byte_pos * 8);
  };
  // A trailing partial packet (capture cut mid-packet) is dropped.
  if (ts.size() % kTsPacketSize != 0)
    fail(DecodeErr::kTruncated, DecodeSeverity::kPicture,
         ts.size() - ts.size() % kTsPacketSize);

  uint16_t pmt_pid = 0xFFFF;
  uint16_t video_pid = 0xFFFF;
  std::map<uint16_t, int> last_cc;
  std::vector<uint8_t> pes_buffer;  // concatenated video payloads

  auto flush_pes = [&](std::span<const uint8_t> pes) {
    if (pes.size() < 9) return;
    if (!(pes[0] == 0 && pes[1] == 0 && pes[2] == 1)) {
      // PUSI pointed at something that is not a PES packet start.
      fail(DecodeErr::kBadStructure, DecodeSeverity::kPicture, 0);
      ++result.bad_packets;
      return;
    }
    const uint8_t sid = pes[3];
    if (sid < 0xE0 || sid > 0xEF) return;
    const int flags = pes[7] >> 6;
    const size_t header_data = pes[8];
    const size_t start = 9 + header_data;
    if (pes[6] >> 6 != 0b10 || start > pes.size()) {
      fail(DecodeErr::kBadStructure, DecodeSeverity::kPicture, 0);
      ++result.bad_packets;
      return;
    }
    if ((flags & 0x2) && header_data >= 5 && pes.size() >= 14)
      result.pts.push_back(detail::read_timestamp(&pes[9]));
    result.video_es.insert(result.video_es.end(), pes.begin() + long(start),
                           pes.end());
  };

  size_t pos = 0;
  while (pos + kTsPacketSize <= ts.size()) {
    const uint8_t* p = ts.data() + pos;
    if (p[0] != kTsSyncByte) {
      // Lost sync: hunt byte-wise for the next sync byte. Intact packets
      // beyond the damage are recovered; the hole is reported once.
      fail(DecodeErr::kBadStructure, DecodeSeverity::kPicture, pos);
      ++result.sync_losses;
      do {
        ++pos;
      } while (pos + kTsPacketSize <= ts.size() && ts[pos] != kTsSyncByte);
      continue;
    }
    ++result.packets;
    pos += kTsPacketSize;  // all `continue`s below go to the next packet
    const bool pusi = p[1] & 0x40;
    const uint16_t pid = uint16_t(((p[1] & 0x1F) << 8) | p[2]);
    const int afc = (p[3] >> 4) & 0x3;
    const int cc = p[3] & 0x0F;

    if (pid == 0x1FFF) {  // null packets
      ++result.ignored_packets;
      continue;
    }

    // Continuity check (packets with payload only).
    if (afc & 0x1) {
      const auto it = last_cc.find(pid);
      if (it != last_cc.end() && ((it->second + 1) & 0x0F) != cc)
        ++result.continuity_errors;
      last_cc[pid] = cc;
    }

    size_t payload_off = 4;
    if (afc & 0x2) {  // adaptation field present
      const size_t af_len = p[4];
      if (af_len >= 7 && (p[5] & 0x10)) {  // PCR flag
        const uint8_t* q = p + 6;
        const uint64_t base = (uint64_t(q[0]) << 25) | (uint64_t(q[1]) << 17) |
                              (uint64_t(q[2]) << 9) | (uint64_t(q[3]) << 1) |
                              (q[4] >> 7);
        const uint32_t ext = uint32_t((q[4] & 1) << 8) | q[5];
        result.pcr.push_back(int64_t(base) * 300 + ext);
      }
      payload_off += 1 + af_len;
    }
    if (!(afc & 0x1) || payload_off >= kTsPacketSize) continue;
    const std::span<const uint8_t> payload(p + payload_off,
                                           kTsPacketSize - payload_off);

    if (pid == kPatPid || pid == pmt_pid) {
      ++result.psi_packets;
      // Section starts after pointer_field (assume it fits one packet).
      const size_t ptr = payload[0];
      if (1 + ptr + 3 > payload.size()) {
        fail(DecodeErr::kTruncated, DecodeSeverity::kPicture, pos);
        ++result.bad_packets;
        continue;
      }
      const uint8_t* sec = payload.data() + 1 + ptr;
      const uint8_t table_id = sec[0];
      const size_t section_length = ((sec[1] & 0x0F) << 8) | sec[2];
      // Minimum section: 5 header-tail bytes + CRC-32. Anything shorter (or
      // spilling past the packet) is damage, not a section.
      if (section_length < 9 ||
          1 + ptr + 3 + section_length > payload.size()) {
        fail(DecodeErr::kTruncated, DecodeSeverity::kPicture, pos);
        ++result.bad_packets;
        continue;
      }
      const std::span<const uint8_t> full(sec, 3 + section_length);
      if (mpeg_crc32(full) != 0u) {
        fail(DecodeErr::kBadValue, DecodeSeverity::kPicture, pos);
        ++result.crc_errors;
        continue;
      }
      if (pid == kPatPid && table_id == 0x00 && pmt_pid == 0xFFFF) {
        // First program's PMT PID (section_length >= 9 covers sec[10..11]).
        pmt_pid = uint16_t(((sec[10] & 0x1F) << 8) | sec[11]);
      } else if (pid == pmt_pid && table_id == 0x02 && video_pid == 0xFFFF) {
        const size_t program_info_len = ((sec[10] & 0x0F) << 8) | sec[11];
        size_t off = 12 + program_info_len;
        while (off + 5 <= 3 + section_length - 4) {
          const uint8_t stream_type = sec[off];
          const uint16_t epid = uint16_t(((sec[off + 1] & 0x1F) << 8) |
                                         sec[off + 2]);
          const size_t es_info = ((sec[off + 3] & 0x0F) << 8) | sec[off + 4];
          if (stream_type == 0x01 || stream_type == 0x02) {
            video_pid = epid;
            break;
          }
          off += 5 + es_info;
        }
        result.video_pid = video_pid;
      }
      continue;
    }

    if (pid != video_pid) {
      ++result.ignored_packets;
      continue;
    }
    ++result.video_packets;
    if (pusi) {
      flush_pes(pes_buffer);
      pes_buffer.clear();
    }
    pes_buffer.insert(pes_buffer.end(), payload.begin(), payload.end());
  }
  flush_pes(pes_buffer);
  return result;
}

}  // namespace pdw::ps
