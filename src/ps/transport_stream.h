// MPEG-2 Transport Stream (ISO/IEC 13818-1) multiplex/demultiplex for a
// single video program.
//
// The paper's broadcast captures (FOX 720p, NBC/CBS 1080i) arrive as
// transport streams: fixed 188-byte packets with PIDs, PSI tables (PAT/PMT
// with CRC-32), continuity counters, adaptation-field stuffing and PCR
// clock recovery. This module provides that ingest path alongside the
// program stream: mux wraps a video elementary stream as PES packets inside
// TS packets with a one-program PAT/PMT; demux reassembles the video ES
// from an arbitrary (possibly multi-program) TS, tolerating foreign PIDs
// and flagging continuity errors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/decode_status.h"

namespace pdw::ps {

inline constexpr size_t kTsPacketSize = 188;
inline constexpr uint8_t kTsSyncByte = 0x47;
inline constexpr uint16_t kPatPid = 0x0000;

struct TsMuxConfig {
  double frame_rate = 30.0;
  uint16_t pmt_pid = 0x0100;
  uint16_t video_pid = 0x0101;
  uint16_t program_number = 1;
  int pcr_interval_pictures = 4;  // insert PCR every N pictures
  int psi_interval_pictures = 8;  // repeat PAT/PMT every N pictures
};

// Wrap a video elementary stream into a single-program transport stream.
std::vector<uint8_t> mux_transport_stream(std::span<const uint8_t> video_es,
                                          const TsMuxConfig& config = {});

struct TsDemuxResult {
  // First damage encountered (kOk on clean input). Damage never aborts the
  // demux: lost sync hunts byte-wise for the next sync byte, malformed
  // PSI/PES structures are dropped, and a trailing partial packet is
  // ignored — whatever intact video payload exists is still recovered.
  DecodeStatus status;
  std::vector<uint8_t> video_es;
  int packets = 0;           // total TS packets seen
  int video_packets = 0;     // packets on the video PID
  int psi_packets = 0;       // PAT/PMT packets
  int ignored_packets = 0;   // foreign PIDs / null packets
  int continuity_errors = 0; // per-PID counter gaps
  int sync_losses = 0;       // byte-wise resync hunts
  int bad_packets = 0;       // malformed PES/PSI structures dropped
  int crc_errors = 0;        // PSI sections failing CRC-32
  uint16_t video_pid = 0;    // resolved from PAT/PMT
  std::vector<int64_t> pcr;  // 27 MHz program clock references
  std::vector<int64_t> pts;  // 90 kHz, from the video PES headers
};

// Extract the first video stream (stream_type 0x01/0x02) advertised by the
// first program in the PAT. Never throws on damaged input: structural
// damage is reported in `result.status` and the counters above.
TsDemuxResult demux_transport_stream(std::span<const uint8_t> ts);

// MPEG-2/PSI CRC-32 (poly 0x04C11DB7, MSB-first, init 0xFFFFFFFF, no final
// xor). Exposed for tests.
uint32_t mpeg_crc32(std::span<const uint8_t> data);

}  // namespace pdw::ps
