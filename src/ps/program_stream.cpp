#include "ps/program_stream.h"

#include <algorithm>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "bitstream/start_code.h"
#include "common/check.h"
#include "mpeg2/headers.h"
#include "ps/pes_common.h"

namespace pdw::ps {

namespace {

constexpr uint32_t kPackStartCode = 0x000001BA;
constexpr uint32_t kSystemHeaderCode = 0x000001BB;
constexpr uint32_t kProgramEndCode = 0x000001B9;

void put_u32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(uint8_t(v >> 24));
  out->push_back(uint8_t(v >> 16));
  out->push_back(uint8_t(v >> 8));
  out->push_back(uint8_t(v));
}

// Pack header with SCR (base 33 bits, extension 9 bits) and mux rate.
void write_pack_header(std::vector<uint8_t>* out, int64_t scr_base,
                       uint32_t mux_rate_50bps) {
  put_u32(out, kPackStartCode);
  BitWriter w;
  w.put(0b01, 2);
  w.put(uint32_t((scr_base >> 30) & 0x7), 3);
  w.put_bit(1);
  w.put(uint32_t((scr_base >> 15) & 0x7FFF), 15);
  w.put_bit(1);
  w.put(uint32_t(scr_base & 0x7FFF), 15);
  w.put_bit(1);
  w.put(0, 9);  // SCR extension
  w.put_bit(1);
  w.put(mux_rate_50bps & 0x3FFFFF, 22);
  w.put_bit(1);
  w.put_bit(1);
  w.put(0x1F, 5);  // reserved
  w.put(0, 3);     // pack_stuffing_length
  const auto bytes = w.take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

void write_system_header(std::vector<uint8_t>* out, uint32_t rate_bound) {
  put_u32(out, kSystemHeaderCode);
  BitWriter w;
  w.put(9, 16);  // header_length: 6 fixed + 3 for the one stream entry
  w.put_bit(1);
  w.put(rate_bound & 0x3FFFFF, 22);
  w.put_bit(1);
  w.put(0, 6);   // audio_bound
  w.put_bit(0);  // fixed_flag
  w.put_bit(0);  // CSPS_flag
  w.put_bit(1);  // system_audio_lock
  w.put_bit(1);  // system_video_lock
  w.put_bit(1);  // marker
  w.put(1, 5);   // video_bound
  w.put_bit(0);  // packet_rate_restriction
  w.put(0x7F, 7);
  // Stream entry: the video stream's P-STD buffer bound.
  w.put(kVideoStreamId, 8);
  w.put(0b11, 2);
  w.put_bit(1);       // buffer_bound_scale (1024-byte units)
  w.put(230, 13);     // ~235 KB VBV-class bound
  const auto bytes = w.take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

}  // namespace

std::vector<uint8_t> mux_program_stream(std::span<const uint8_t> video_es,
                                        const MuxConfig& config) {
  PDW_CHECK_GT(config.frame_rate, 0.0);
  PDW_CHECK_GE(config.pictures_per_pack, 1);
  const auto spans = scan_pictures(video_es);
  PDW_CHECK(!spans.empty()) << "no pictures in elementary stream";
  const double period90 = k90kHz / config.frame_rate;
  const uint32_t mux_rate_50 =
      std::max<uint32_t>(1, config.mux_rate_bps / 8 / 50);

  std::vector<uint8_t> out;
  out.reserve(video_es.size() + video_es.size() / 16 + 64);

  // Display-order bookkeeping: temporal_reference restarts per GOP.
  int gop_base = 0;
  int pictures_in_gop = 0;

  for (size_t i = 0; i < spans.size(); ++i) {
    const PictureSpan& ps = spans[i];
    const auto picture = video_es.subspan(ps.begin, ps.end - ps.begin);

    // Parse headers to learn the display position (temporal_reference).
    mpeg2::SequenceHeader seq;
    bool have_seq = true;  // tolerate pictures without embedded seq headers
    mpeg2::ParsedPictureHeaders headers;
    const DecodeStatus hs =
        mpeg2::parse_picture_headers(picture, &seq, &have_seq, &headers);
    PDW_BITSTREAM_CHECK(hs.ok())
        << "cannot mux picture " << i << " with undecodable headers";
    if (headers.had_gop_header) {
      gop_base += pictures_in_gop;
      pictures_in_gop = 0;
    }
    ++pictures_in_gop;
    const int display_index = gop_base + headers.ph.temporal_reference;

    // DTS in decode order with a one-period decode delay; PTS >= DTS thanks
    // to the +2 reorder allowance.
    const int64_t dts = int64_t((double(i) + 1.0) * period90);
    const int64_t pts = int64_t((double(display_index) + 2.0) * period90);

    if (int(i) % config.pictures_per_pack == 0) {
      const int64_t scr = std::max<int64_t>(0, dts - int64_t(period90));
      write_pack_header(&out, scr, mux_rate_50);
      if (i == 0) write_system_header(&out, mux_rate_50);
    }

    // First chunk carries the timestamps; large pictures continue in
    // unstamped PES packets.
    size_t offset = 0;
    bool first = true;
    while (offset < picture.size()) {
      const size_t chunk =
          std::min(config.max_pes_payload, picture.size() - offset);
      detail::write_pes_packet(&out, kVideoStreamId,
                               picture.subspan(offset, chunk),
                               first ? pts : -1, first ? dts : -1);
      offset += chunk;
      first = false;
    }
  }

  // Trailing bytes beyond the last picture span (typically the
  // sequence_end_code) ride in one final unstamped PES packet.
  const size_t tail_begin = spans.back().end;
  if (tail_begin < video_es.size())
    detail::write_pes_packet(&out, kVideoStreamId,
                             video_es.subspan(tail_begin), -1, -1);

  put_u32(&out, kProgramEndCode);
  return out;
}

DemuxResult demux_program_stream(std::span<const uint8_t> program) {
  DemuxResult result;
  size_t pos = 0;
  const size_t n = program.size();

  // First damage wins; later errors are already inside a poisoned region.
  const auto fail = [&](DecodeErr code, DecodeSeverity sev) {
    if (result.status.ok())
      result.status = DecodeStatus::error(code, sev, pos * 8);
  };
  // A structure announced more bytes than the buffer holds: keep everything
  // recovered so far and stop (whatever follows is inside the hole).
  const auto truncated = [&](size_t count) {
    if (pos + count <= n) return false;
    fail(DecodeErr::kTruncated, DecodeSeverity::kStream);
    return true;
  };

  while (pos + 4 <= n) {
    // Resync: find the next start code prefix.
    if (!(program[pos] == 0 && program[pos + 1] == 0 &&
          program[pos + 2] == 1)) {
      ++pos;
      continue;
    }
    const uint8_t code = program[pos + 3];

    if (code == 0xBA) {  // pack header
      if (truncated(14)) break;
      if (program[pos + 4] >> 6 != 0b01) {
        // MPEG-1 pack header (or damage mimicking one): not our profile.
        fail(DecodeErr::kUnsupported, DecodeSeverity::kStream);
        ++result.bad_packets;
        pos += 4;  // resync at the next start code
        continue;
      }
      // SCR base from the 48-bit field.
      const uint8_t* p = program.data() + pos + 4;
      int64_t scr = int64_t((p[0] >> 3) & 0x7) << 30;
      scr |= int64_t(p[0] & 0x3) << 28;
      scr |= int64_t(p[1]) << 20;
      scr |= int64_t(p[2] >> 3) << 15;
      scr |= int64_t(p[2] & 0x3) << 13;
      scr |= int64_t(p[3]) << 5;
      scr |= int64_t(p[4] >> 3);
      result.scr.push_back(scr * 300);  // 27 MHz units
      const int stuffing = program[pos + 13] & 0x7;
      ++result.packs;
      pos += 14 + size_t(stuffing);
    } else if (code == 0xBB) {  // system header
      if (truncated(6)) break;
      const size_t len =
          (size_t(program[pos + 4]) << 8) | program[pos + 5];
      pos += 6 + len;
    } else if (code == 0xB9) {  // program end
      pos += 4;
      break;
    } else if (code >= 0xBC) {  // PES packet family
      if (truncated(6)) break;
      const size_t len = (size_t(program[pos + 4]) << 8) | program[pos + 5];
      if (truncated(6 + len)) break;
      if (code >= 0xE0 && code <= 0xEF) {
        // Video PES: parse the MPEG-2 PES header. A malformed header makes
        // the packet's payload untrustworthy; skip the whole packet (its
        // length field is still usable for resync).
        const uint8_t* p = program.data() + pos + 6;
        if (len < 3u || p[0] >> 6 != 0b10 || 3 + size_t(p[2]) > len) {
          fail(DecodeErr::kBadStructure, DecodeSeverity::kPicture);
          ++result.bad_packets;
          pos += 6 + len;
          continue;
        }
        const int flags = p[1] >> 6;  // PTS_DTS_flags
        const size_t header_data = p[2];
        if (flags & 0x2) {
          result.pts.push_back(detail::read_timestamp(p + 3));
          if (flags == 0x3)
            result.dts.push_back(detail::read_timestamp(p + 8));
        }
        const uint8_t* payload = p + 3 + header_data;
        const size_t payload_len = len - 3 - header_data;
        result.video_es.insert(result.video_es.end(), payload,
                               payload + payload_len);
        ++result.pes_packets;
      } else {
        ++result.skipped_packets;  // audio, padding, private streams...
      }
      pos += 6 + len;
    } else {
      // A raw video start code outside any PES wrapper: this is an
      // elementary stream (or PES framing was destroyed). Record and scan
      // on — any intact PES packets further along are still recovered.
      fail(DecodeErr::kBadStructure, DecodeSeverity::kStream);
      ++result.bad_packets;
      pos += 4;
    }
  }
  return result;
}

}  // namespace pdw::ps
