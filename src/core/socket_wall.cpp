#include "core/socket_wall.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/timing.h"
#include "core/hosts.h"
#include "core/root_splitter.h"
#include "mem/pool.h"
#include "net/rendezvous.h"
#include "net/socket_fabric.h"
#include "obs/telemetry.h"

namespace pdw::core {

ClusterStats run_socket_wall(const wall::TileGeometry& geo, int k,
                             std::span<const uint8_t> es,
                             const TileDisplayFn& on_display,
                             SocketWallOptions opts) {
  PDW_CHECK_GE(k, 1);
  const int tiles = geo.tiles();
  const proto::Topology topo{k, tiles};
  const int n = topo.nodes();

  RootSplitter root(es);
  const int total_pictures = root.picture_count();
  const ProtocolConfig cfg = opts.protocol;
  std::mutex display_mu;
  HostShared shared;
  shared.ep_stats.resize(size_t(n));
  shared.acct.reset(n);
  if (opts.per_picture_exchange) shared.acct.per_picture_tiles = tiles;

  {
    size_t max_pic = 0;
    for (int i = 0; i < total_pictures; ++i)
      max_pic = std::max(max_pic, root.picture(i).size());
    mem::BufferPool::wire().prewarm(max_pic * 2, 2 * n + tiles + 8);
  }

  std::vector<proto::PictureMeta> metas(static_cast<size_t>(total_pictures));
  for (int i = 0; i < total_pictures; ++i)
    metas[size_t(i)].has_gop_header = root.span(i).has_gop_header;

  // Telemetry sideband: this process hosts every node, so one exporter
  // announces them all and ships the shared registry + tracer.
  std::unique_ptr<obs::TelemetryExporter> telemetry;
  if (opts.telemetry_port != 0) {
    obs::TelemetryExporterConfig tcfg;
    tcfg.collector = {obs::kTelemetryLoopbackIp, opts.telemetry_port};
    tcfg.interval_s = opts.telemetry_interval_s;
    tcfg.metrics = opts.metrics;
    tcfg.k = uint16_t(k);
    tcfg.tiles = uint16_t(tiles);
    tcfg.nodes = uint16_t(n);
    for (int node = 0; node < n; ++node)
      tcfg.hosted.push_back(uint16_t(node));
    telemetry = std::make_unique<obs::TelemetryExporter>(tcfg);
    telemetry->start();
  }

  // Every node gets its own socket fabric; the rendezvous listener hands
  // out the endpoint map exactly as it would across machines.
  net::RendezvousServer rv(n);
  net::RendezvousConfig rv_cfg;
  rv_cfg.timeout_s = opts.rendezvous_timeout_s;
  rv.serve_async(rv_cfg);

  std::vector<std::unique_ptr<net::SocketFabric>> fabrics;
  net::SocketFabricConfig fab_cfg;
  fab_cfg.metrics = opts.metrics;
  for (int node = 0; node < n; ++node)
    fabrics.push_back(
        std::make_unique<net::SocketFabric>(node, n, fab_cfg));
  // Post every bulk receiver's two buffers before any thread starts, as the
  // threaded pipeline does — a credit is local receiver state, and posting
  // early keeps the root's first dispatch from burning retransmit budget
  // while a slowly starting receiver would otherwise sit creditless.
  for (int s = 0; s < k; ++s) {
    fabrics[size_t(topo.splitter(s))]->post_receive(topo.splitter(s));
    fabrics[size_t(topo.splitter(s))]->post_receive(topo.splitter(s));
  }
  for (int t = 0; t < tiles; ++t) {
    fabrics[size_t(topo.decoder(t))]->post_receive(topo.decoder(t));
    fabrics[size_t(topo.decoder(t))]->post_receive(topo.decoder(t));
  }

  // With impairment the fabrics must talk to the proxy's front addresses,
  // which exist only after every endpoint is known — so the threads first
  // rendezvous (publishing their endpoints), then wait for the final map.
  std::promise<std::vector<net::Endpoint>> map_promise;
  std::shared_future<std::vector<net::Endpoint>> map_future =
      map_promise.get_future().share();

  WallTimer timer;

  auto join_and_wire = [&](int node) {
    std::vector<net::Endpoint> peers;
    const net::RendezvousStatus st =
        net::rendezvous_join(rv.endpoint(), node,
                             fabrics[size_t(node)]->local_endpoint(), n,
                             &peers, rv_cfg);
    PDW_CHECK(st == net::RendezvousStatus::kOk)
        << " node " << node << " rendezvous timeout";
    fabrics[size_t(node)]->set_peers(map_future.get());
  };

  std::thread root_thread([&] {
    join_and_wire(topo.root());
    proto::RootNode::Options ro;
    ro.heartbeat_timeout_s = cfg.heartbeat_timeout_s;
    ro.recovery = opts.recovery;
    ro.adaptive = opts.adaptive;
    ro.adaptive.geo = &geo;
    RootHost host(fabrics[size_t(topo.root())].get(), &shared, &timer, &root,
                  topo, cfg.reliable, ro, metas, opts.metrics);
    host.run();
  });

  std::vector<std::thread> node_threads;
  for (int s = 0; s < k; ++s) {
    node_threads.emplace_back([&, s] {
      join_and_wire(topo.splitter(s));
      SplitterHost host(fabrics[size_t(topo.splitter(s))].get(), &shared,
                        topo, s, cfg.reliable, geo, root.stream_info(),
                        opts.metrics, opts.adaptive.enabled);
      host.run();
    });
  }
  for (int t = 0; t < tiles; ++t) {
    node_threads.emplace_back([&, t] {
      join_and_wire(topo.decoder(t));
      proto::DecoderNode::Options dopts;
      dopts.heartbeat_interval_s = cfg.heartbeat_interval_s;
      dopts.total_pictures = uint32_t(total_pictures);
      DecoderHost host(fabrics[size_t(topo.decoder(t))].get(), &shared,
                       &timer, topo, t, cfg.reliable, geo,
                       root.stream_info(), on_display, &display_mu, dopts,
                       opts.metrics);
      host.run(uint32_t(total_pictures));
    });
  }

  // Publish the final peer map once rendezvous completes: the real
  // endpoints, or the impairment proxy's fronts standing in for them.
  PDW_CHECK(rv.result() == net::RendezvousStatus::kOk)
      << " rendezvous listener timed out";
  std::unique_ptr<net::ImpairProxy> proxy;
  if (opts.impair) {
    proxy = std::make_unique<net::ImpairProxy>(rv.map(), opts.impair_cfg);
    map_promise.set_value(proxy->proxied());
  } else {
    map_promise.set_value(rv.map());
  }

  while (shared.decoders_done.load(std::memory_order_acquire) < tiles)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  shared.root_stop.store(true);
  root_thread.join();
  // Bounded drain before shutdown, as in the threaded pipeline: let the
  // tail of transport acks land (or time out — real sockets may genuinely
  // have lost them).
  const auto drain_start = std::chrono::steady_clock::now();
  auto all_quiescent = [&] {
    for (const auto& f : fabrics)
      if (!f->quiescent()) return false;
    return true;
  };
  while (!all_quiescent() &&
         std::chrono::steady_clock::now() - drain_start <
             std::chrono::milliseconds(250))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (auto& f : fabrics) f->shutdown();
  for (auto& th : node_threads) th.join();
  if (proxy) proxy->stop();
  if (telemetry) telemetry->stop();  // final flush + Bye, after all spans

  ClusterStats stats;
  stats.pictures = total_pictures;
  stats.wall_seconds = timer.seconds();
  stats.fps = double(total_pictures) / stats.wall_seconds;
  stats.nodes = n;
  // Each fabric holds its node's local view; the global matrix takes every
  // node's send rows (counted once, at the sender).
  stats.traffic_matrix.reset(n);
  for (int src = 0; src < n; ++src) {
    const TrafficMatrix local = fabrics[size_t(src)]->traffic_matrix();
    for (int dst = 0; dst < n; ++dst)
      stats.traffic_matrix.at(src, dst) = local.at(src, dst);
    stats.node_counters.push_back(fabrics[size_t(src)]->counters(src));
  }
  for (const net::ReliableStats& s : shared.ep_stats)
    accumulate_transport(&stats.ft.transport, s);
  stats.ft.degraded_frames = shared.degraded.load();
  stats.ft.skipped_pictures = shared.skipped.load();
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    stats.ft.recoveries = shared.recoveries;
  }
  {
    std::lock_guard<std::mutex> lock(shared.acct_mu);
    stats.wire = std::move(shared.acct);
  }
  obs::registry_or_global(opts.metrics)
      .counter(obs::family::kControlBytes)
      .add(stats.wire.control.total());
  return stats;
}

}  // namespace pdw::core
