#include "core/mb_splitter.h"

#include <unordered_set>

#include "bitstream/start_code.h"
#include "mpeg2/conceal.h"
#include "mpeg2/headers.h"
#include "mpeg2/mb_parser.h"
#include "mpeg2/motion.h"

namespace pdw::core {

using namespace mpeg2;

namespace {

// Decode-cost model weights (arbitrary units alongside coded bits). Chosen so
// a motion-compensated macroblock with few coded bits still prices the
// interpolation work it causes; the planner only needs relative weight, and
// determinism matters more than calibration.
constexpr uint32_t kMbBaseCost = 32;  // recon/dequant floor, every macroblock
constexpr uint32_t kMcCost = 24;      // per used prediction direction

}  // namespace

MacroblockSplitter::MacroblockSplitter(const wall::TileGeometry& geo)
    : geo_(geo) {}
MacroblockSplitter::~MacroblockSplitter() = default;

void MacroblockSplitter::set_stream_info(const StreamInfo& info) {
  PDW_CHECK_EQ(info.seq.mb_width(), geo_.mb_width())
      << "stream geometry does not match the wall";
  PDW_CHECK_EQ(info.seq.mb_height(), geo_.mb_height())
      << "stream geometry does not match the wall";
  seq_ = info.seq;
  have_seq_ = true;
}

// Sink that performs run building and MEI pre-calculation while the syntax
// decoder scans the slice.
struct MacroblockSplitter::SliceSplitter final : public MbSink {
  SliceSplitter(const wall::TileGeometry& geo, const PictureContext& ctx,
                const mem::Bytes& picture, ConcealPlanner* planner,
                SplitResult* result)
      : geo_(geo),
        ctx_(ctx),
        picture_(&picture),
        span_(picture.span()),
        planner_(planner),
        result_(result) {
    builders_.resize(size_t(geo.tiles()));
    result_->stats.mbs_per_tile.assign(size_t(geo.tiles()), 0);
    result_->stats.cost_col.assign(size_t(geo.mb_width()), 0);
    result_->stats.cost_row.assign(size_t(geo.mb_height()), 0);
  }

  void on_macroblock(const Macroblock& mb, const MbState& before,
                     size_t bit_begin, size_t bit_end) override {
    const int mbw = ctx_.mb_width();
    const int mbx = mb.mb_x(mbw);
    const int mby = mb.mb_y(mbw);
    ++result_->stats.macroblocks;
    if (!mb.skipped) ++result_->stats.coded_macroblocks;
    planner_->mark(mb.addr);

    // --- Cost model ---------------------------------------------------------
    // Price this macroblock for the planner: its coded bits plus fixed
    // weights for the reconstruction and motion-compensation work it causes.
    {
      uint32_t cost =
          kMbBaseCost + (mb.skipped ? 0 : uint32_t(bit_end - bit_begin));
      if (!mb.intra() && ctx_.ph.type != PicType::I) {
        if (mb.has_fwd() || ctx_.ph.type == PicType::P) cost += kMcCost;
        if (mb.has_bwd()) cost += kMcCost;
      }
      result_->stats.cost_col[size_t(mbx)] += cost;
      result_->stats.cost_row[size_t(mby)] += cost;
    }

    geo_.tiles_of_mb(mbx, mby, &tiles_scratch_);

    // --- MEI pre-calculation ------------------------------------------------
    if (!mb.intra() && ctx_.ph.type != PicType::I) {
      const bool use_fwd =
          mb.has_fwd() || (ctx_.ph.type == PicType::P && !mb.intra());
      const bool use_bwd = mb.has_bwd();
      for (int s = 0; s < 2; ++s) {
        if (s == 0 ? !use_fwd : !use_bwd) continue;
        const SrcWindow win = luma_source_window(mb, s, mbx, mby);
        PDW_CHECK_GE(win.x0, 0) << "motion vector leaves picture";
        PDW_CHECK_GE(win.y0, 0);
        PDW_CHECK_LE(win.x1, geo_.mb_width() * 16);
        PDW_CHECK_LE(win.y1, geo_.mb_height() * 16);
        const int sx0 = win.x0 >> 4;
        const int sy0 = win.y0 >> 4;
        const int sx1 = (win.x1 - 1) >> 4;
        const int sy1 = (win.y1 - 1) >> 4;
        for (int t : tiles_scratch_) {
          for (int sy = sy0; sy <= sy1; ++sy) {
            for (int sx = sx0; sx <= sx1; ++sx) {
              if (geo_.tile_has_mb(t, sx, sy)) continue;  // local reference
              const uint64_t key = (uint64_t(t) << 42) | (uint64_t(s) << 40) |
                                   (uint64_t(sy) << 20) | uint64_t(sx);
              if (!exchange_seen_.insert(key).second) continue;
              const int owner = geo_.owner_of_mb(sx, sy);
              PDW_CHECK_NE(owner, t);
              result_->mei[size_t(t)].push_back(
                  {MeiOp::kRecv, uint8_t(s), uint16_t(sx), uint16_t(sy),
                   uint16_t(owner)});
              result_->mei[size_t(owner)].push_back(
                  {MeiOp::kSend, uint8_t(s), uint16_t(sx), uint16_t(sy),
                   uint16_t(t)});
              ++result_->stats.exchange_pairs;
            }
          }
        }
      }
    }

    // --- Run building --------------------------------------------------------
    for (int t : tiles_scratch_) {
      ++result_->stats.mbs_per_tile[size_t(t)];
      RunBuilder& rb = builders_[size_t(t)];
      if (!rb.active) {
        rb.active = true;
        rb.entry_state = before;
      }
      if (mb.skipped) {
        if (!rb.has_coded) {
          if (rb.lead_skip_count == 0) rb.lead_skip_addr = uint32_t(mb.addr);
          ++rb.lead_skip_count;
        } else {
          if (rb.pending_skip_count == 0)
            rb.pending_skip_addr = uint32_t(mb.addr);
          ++rb.pending_skip_count;
        }
      } else {
        if (!rb.has_coded) {
          rb.has_coded = true;
          rb.first_coded_addr = uint32_t(mb.addr);
          rb.first_bit = bit_begin;
        }
        // Skips between coded macroblocks of the same tile are interior:
        // the decoder re-synthesizes them from the address increments that
        // are already in the copied payload.
        rb.pending_skip_count = 0;
        ++rb.num_coded;
        rb.last_bit_end = bit_end;
      }
    }
  }

  // Finalize all runs started in this slice.
  void end_slice() {
    for (int t = 0; t < geo_.tiles(); ++t) {
      RunBuilder& rb = builders_[size_t(t)];
      if (!rb.active) continue;
      SpRun run;
      run.state = rb.entry_state;
      run.lead_skip_addr = rb.lead_skip_addr;
      run.lead_skip_count = rb.lead_skip_count;
      run.trail_skip_addr = rb.pending_skip_addr;
      run.trail_skip_count = rb.pending_skip_count;
      if (rb.has_coded) {
        run.first_coded_addr = rb.first_coded_addr;
        run.num_coded = rb.num_coded;
        run.skip_bits = uint8_t(rb.first_bit % 8);
        const size_t byte0 = rb.first_bit / 8;
        const size_t byte1 = (rb.last_bit_end + 7) / 8;
        PDW_CHECK_LE(byte1, span_.size());
        // Verbatim bytes — no bit realignment (paper §4.3 / Figure 4) and
        // no copy: the run views the picture's pooled block directly.
        run.payload = picture_->view(byte0, byte1 - byte0);
      }
      result_->subpictures[size_t(t)].runs.push_back(std::move(run));
      rb = RunBuilder{};
    }
  }

 private:
  struct RunBuilder {
    bool active = false;
    bool has_coded = false;
    MbState entry_state;
    size_t first_bit = 0;
    size_t last_bit_end = 0;
    uint32_t first_coded_addr = 0;
    uint16_t num_coded = 0;
    uint32_t lead_skip_addr = 0;
    uint16_t lead_skip_count = 0;
    uint32_t pending_skip_addr = 0;
    uint16_t pending_skip_count = 0;
  };

  const wall::TileGeometry& geo_;
  const PictureContext& ctx_;
  const mem::Bytes* picture_;
  std::span<const uint8_t> span_;
  ConcealPlanner* planner_;
  SplitResult* result_;
  std::vector<RunBuilder> builders_;
  std::vector<int> tiles_scratch_;
  std::unordered_set<uint64_t> exchange_seen_;
};

SplitResult MacroblockSplitter::split(std::span<const uint8_t> picture_span,
                                      uint32_t pic_index) {
  return split(mem::Bytes::copy_of(picture_span), pic_index);
}

SplitResult MacroblockSplitter::split(const mem::Bytes& picture,
                                      uint32_t pic_index) {
  return split(picture, pic_index, geo_);
}

SplitResult MacroblockSplitter::split(const mem::Bytes& picture,
                                      uint32_t pic_index,
                                      const wall::TileGeometry& geo) {
  const std::span<const uint8_t> picture_span = picture.span();
  SplitResult result;
  result.stats.input_bytes = picture_span.size();

  // A damaged embedded sequence header must not poison the geometry for
  // every following picture: snapshot, and restore on any picture-level
  // failure.
  const SequenceHeader seq_snapshot = seq_;
  const bool have_seq_snapshot = have_seq_;

  ParsedPictureHeaders headers;
  DecodeStatus hs =
      parse_picture_headers(picture_span, &seq_, &have_seq_, &headers);
  if (hs.ok() && (seq_.mb_width() != geo.mb_width() ||
                  seq_.mb_height() != geo.mb_height())) {
    // The span's embedded sequence header disagrees with the wall geometry:
    // either stream damage or a mid-stream dimension change, and a fixed
    // m*n wall can render neither. Drop the picture.
    hs = DecodeStatus::error(DecodeErr::kBadStructure, DecodeSeverity::kPicture,
                             0);
  }
  if (!hs.ok()) {
    seq_ = seq_snapshot;
    have_seq_ = have_seq_snapshot;
    result.status = hs.escalate(DecodeSeverity::kPicture);
    return result;
  }

  PictureContext ctx;
  ctx.seq = &seq_;
  ctx.ph = headers.ph;
  ctx.pce = headers.pce;

  result.info = PicInfo::from(pic_index, headers.ph, headers.pce);
  result.subpictures.resize(size_t(geo.tiles()));
  result.mei.resize(size_t(geo.tiles()));
  for (int t = 0; t < geo.tiles(); ++t) {
    result.subpictures[size_t(t)].info = result.info;
    // One run per slice the tile intersects; slices are per macroblock row,
    // so the tile's MB-row count is the expected run count — reserving it
    // keeps the runs vector from reallocating mid-split.
    const wall::MbRect& mbs = geo.tile_mbs(t);
    result.subpictures[size_t(t)].runs.reserve(size_t(mbs.y1 - mbs.y0));
  }

  MbSyntaxDecoder syntax(ctx, ParseMode::kScan);
  ConcealPlanner planner;
  planner.begin(seq_.mb_width(), seq_.mb_height(), ctx.pce);
  SliceSplitter sink(geo, ctx, picture, &planner, &result);

  size_t pos = headers.first_slice_offset;
  while (true) {
    const StartCodeHit hit = find_start_code(picture_span, pos);
    if (hit.offset >= picture_span.size()) break;
    pos = hit.offset + 4;
    if (!start_code::is_slice(hit.code)) continue;
    BitReader sr(picture_span.subspan(hit.offset + 4));
    int mb_row = 0;
    int qscale = 0;
    DecodeStatus ss = parse_slice_header(sr, seq_, hit.code, &mb_row, &qscale);
    if (!ss.ok()) {
      // Slice header damage: resync at the next slice start code. The
      // missing macroblocks stay unmarked and become CONCEAL instructions.
      ++result.stats.dropped_slices;
      continue;
    }
    // Run payload bit positions must be relative to the whole picture span:
    // re-create the reader over the full span at the right offset.
    const size_t base_bits = (hit.offset + 4) * 8 + sr.bit_pos();
    BitReader body(picture_span, base_bits);
    const MbSyntaxDecoder::SliceResult res =
        syntax.parse_slice_body(body, mb_row, qscale, sink);
    // Flush even a partially built slice: the macroblocks emitted before
    // the damage are valid and the serial concealing decoder keeps them too.
    sink.end_slice();
    if (!res.status.ok()) ++result.stats.dropped_slices;
  }

  // Concealment plan: every macroblock no slice delivered becomes a CONCEAL
  // instruction on every tile whose rectangle (including projector overlap)
  // contains it — the exact plan a serial concealing decoder executes.
  if (planner.covered_count() < planner.total()) {
    std::vector<int> tiles_of_mb;
    for (const ConcealSpec& spec : planner.finish()) {
      geo.tiles_of_mb(spec.mb_x, spec.mb_y, &tiles_of_mb);
      for (int t : tiles_of_mb)
        result.mei[size_t(t)].push_back(make_conceal(
            spec.mb_x, spec.mb_y, spec.fill_y, spec.fill_cb, spec.fill_cr));
      ++result.stats.concealed_macroblocks;
    }
  }

  for (int t = 0; t < geo.tiles(); ++t) {
    result.stats.output_bytes += result.subpictures[size_t(t)].wire_bytes();
    result.stats.output_bytes +=
        4 + result.mei[size_t(t)].size() * kMeiWireBytes;
  }
  return result;
}

}  // namespace pdw::core
