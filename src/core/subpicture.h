// Sub-pictures and State Propagation Headers (paper §4.1/§4.3).
//
// A second-level splitter sorts a picture's macroblocks into one sub-picture
// per tile decoder. A sub-picture is a sequence of *runs*: each run covers
// the tile's (contiguous) share of one original slice. The run's payload is
// copied byte-for-byte from the original stream — no bit realignment, as the
// paper prescribes — and the SPH records how many leading bits to skip plus
// the mid-slice decoder state (DC predictors, motion vector predictors,
// quantiser scale) needed to resume decoding a partial slice.
//
// Extensions over the paper's sketch (needed for full skipped-macroblock
// support): runs also carry explicit lead/trail *skipped* macroblock spans,
// because a skipped macroblock occupies no bits that could be copied — if a
// tile's share of a slice begins or ends with skips, the decoder must
// synthesize them. Interior skips are reproduced from the payload's
// macroblock address increments and need no SPH support.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mem/bytes.h"
#include "mpeg2/types.h"

namespace pdw {
class ByteWriter;
}

namespace pdw::core {

// Per-picture context a tile decoder needs (distilled from the picture
// header + picture coding extension; sequence-level data travels once in
// StreamInfo).
struct PicInfo {
  uint32_t pic_index = 0;  // decode order index in the stream
  mpeg2::PicType type = mpeg2::PicType::I;
  uint8_t f_code[2][2] = {{15, 15}, {15, 15}};
  uint8_t intra_dc_precision = 0;
  bool q_scale_type = false;
  bool alternate_scan = false;
  uint16_t temporal_reference = 0;

  mpeg2::PictureCodingExt to_pce() const;
  static PicInfo from(uint32_t index, const mpeg2::PictureHeader& ph,
                      const mpeg2::PictureCodingExt& pce);
};

// One run: the tile's share of one original slice. See file comment.
struct SpRun {
  // State Propagation Header -------------------------------------------------
  mpeg2::MbState state;       // decoder state entering this run
  uint8_t skip_bits = 0;      // 0..7 bits to skip at the start of payload
  uint32_t first_coded_addr = 0;
  uint16_t num_coded = 0;     // coded macroblocks in the payload
  uint32_t lead_skip_addr = 0;
  uint16_t lead_skip_count = 0;   // skips synthesized before the payload
  uint32_t trail_skip_addr = 0;
  uint16_t trail_skip_count = 0;  // skips synthesized after the payload
  // Payload: verbatim bytes of the partial slice. On the split path this is
  // a *view* into the coded picture's pooled buffer; on the decode path a
  // view into the SpMsg body — never a per-run copy.
  mem::Bytes payload;

  int macroblocks() const {
    return num_coded + lead_skip_count + trail_skip_count;
    // interior skips are counted by the decoder as it parses increments
  }
  size_t header_wire_bytes() const;
};

struct SubPicture {
  PicInfo info;
  std::vector<SpRun> runs;

  size_t wire_bytes() const;     // serialized size (what goes on the network)
  size_t payload_bytes() const;  // raw slice bytes only (no SPH overhead)

  void serialize(std::vector<uint8_t>* out) const;
  // Exact-size pooled serialization (wire_bytes() sizes the buffer up
  // front; no growth reallocations).
  mem::Bytes serialize_pooled() const;
  // Append the wire encoding to an existing writer (proto::pack_sp encodes
  // straight into a pooled SpMsg body this way).
  void serialize_into(ByteWriter* w) const;
  // Span flavour copies payloads; the Bytes flavour makes each run payload
  // a view into `data`'s block (the transport buffer stays pinned until the
  // last run dies).
  static SubPicture deserialize(std::span<const uint8_t> data);
  static SubPicture deserialize(const mem::Bytes& data);
};

// Sequence-level information distributed once by the root splitter.
struct StreamInfo {
  mpeg2::SequenceHeader seq;

  void serialize(std::vector<uint8_t>* out) const;
  static StreamInfo deserialize(std::span<const uint8_t> data);
};

}  // namespace pdw::core
