// Node hosts: the glue between the sans-io protocol machines (proto/nodes.h)
// and a concrete transport + compute. One host per node role pumps a
// net::ReliableEndpoint over any net::FabricBackend, feeds decoded wire
// messages to its state machine, transmits whatever the machine returns and
// runs the actual work (splitting, pixel extraction, tile decoding) when the
// machine says the inputs are complete.
//
// Extracted from the threaded pipeline so the same hosts serve every
// deployment shape:
//   * ClusterPipeline (core/pipeline.h)  — one thread per node over one
//     shared in-process Fabric (the fast, deterministic test path);
//   * run_socket_wall (core/socket_wall.h) — one thread per node, each with
//     its own SocketFabric over real UDP loopback;
//   * wall_node (examples/wall_node.cpp)  — one OS process per node, the
//     paper's actual deployment shape.
// The protocol machines cannot tell these apart, which is what the
// ProtocolEquivalence suite proves.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/timing.h"
#include "core/mb_splitter.h"
#include "core/root_splitter.h"
#include "core/tile_decoder.h"
#include "net/fabric.h"
#include "net/reliable.h"
#include "obs/instruments.h"
#include "proto/nodes.h"
#include "wall/geometry.h"
#include "wall/partition.h"

namespace pdw::core {

// One node-death recovery, as observed by the runtime.
struct RecoveryEvent {
  double detect_time_s = 0;  // root declared the node dead (since run start)
  int dead_tile = -1;
  int adopter_tile = -1;     // -1: degraded mode (tile frozen, not adopted)
  uint32_t resync_pic = 0;   // first closed-GOP I not yet dispatched
  double resync_time_s = 0;  // adopter decoded resync_pic (0 if never)
};

// Thread-safe display callback (called with an internal mutex held).
using TileDisplayFn = std::function<void(int tile, const mpeg2::TileFrame&,
                                         const TileDisplayInfo&)>;

// State the hosts of one wall share. In the threaded engines every host
// points at the same instance; in the multi-process wall each process has
// its own (its accounting is merged externally).
struct HostShared {
  std::mutex mu;  // guards recoveries
  std::vector<RecoveryEvent> recoveries;
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> skipped{0};
  std::vector<net::ReliableStats> ep_stats;  // by node, written pre-join
  std::atomic<bool> root_stop{false};
  // Decoder threads done with their stream (finished or killed). They then
  // stay resident t-acking peer retransmissions until fabric shutdown, so a
  // slow retransmit to an already-finished node is never falsely abandoned.
  std::atomic<int> decoders_done{0};
  // Splitter threads that consumed their whole stream and entered their
  // resident drain loop. The multi-process wall uses this (plus a linger)
  // to decide when a splitter process may tear its fabric down.
  std::atomic<int> splitters_done{0};
  std::mutex acct_mu;  // guards acct
  proto::WireAccounting acct;
};

void accumulate_transport(net::ReliableStats* into,
                          const net::ReliableStats& s);

// Map a state-machine emission onto the transport and record it.
void emit(net::ReliableEndpoint& ep, HostShared& shared, int src,
          proto::Outgoing o);

// Exchanges are built by the host (they carry extracted pixels), so they
// are recorded with their typed form to feed the per-picture matrices.
void emit_exchange(net::ReliableEndpoint& ep, HostShared& shared, int src,
                   int dst, const proto::ExchangeMsg& msg);

// Decode a received wire body. The transport CRC-verified it, so a decode
// failure is a local protocol bug, not damage — crash loudly.
proto::AnyMsg decode_trusted(const net::Message& m);

// --- Root host (Table 3, root) + health monitor ----------------------------

struct RootHost {
  net::FabricBackend& fabric;
  HostShared& shared;
  const WallTimer& timer;
  const RootSplitter& root;
  proto::Topology topo;
  net::ReliableEndpoint ep;
  proto::RootNode node;

  obs::RootInstruments inst;

  RootHost(net::FabricBackend* f, HostShared* sh, const WallTimer* t,
           const RootSplitter* r, const proto::Topology& tp,
           const net::ReliableConfig& rc, const proto::RootNode::Options& ro,
           std::vector<proto::PictureMeta> metas,
           obs::MetricsRegistry* metrics);

  void apply(proto::RootNode::Step step);
  void pump(double timeout);
  void run();
};

// --- Splitter host (Table 3, splitter) -------------------------------------

struct SplitterHost {
  net::FabricBackend& fabric;
  HostShared& shared;
  proto::Topology topo;
  int index;
  net::ReliableEndpoint ep;
  proto::SplitterNode node;
  MacroblockSplitter splitter;
  wall::PartitionTable table;  // epochs learned from the root's updates
  bool adaptive = false;       // emit a cost report after every split

  obs::SplitterInstruments inst;
  obs::Gauge* queue_depth = nullptr;

  SplitterHost(net::FabricBackend* f, HostShared* sh,
               const proto::Topology& tp, int s,
               const net::ReliableConfig& rc, const wall::TileGeometry& geo,
               const StreamInfo& info, obs::MetricsRegistry* metrics,
               bool adaptive_enabled = false);

  int self() const { return topo.splitter(index); }

  // Post this node's two receive buffers. The threaded pipeline posts them
  // centrally before the threads start; a per-node fabric (sockets) has no
  // central place, so the host does it itself at the top of run-of-node.
  void post_initial_credits();

  void apply(proto::SplitterNode::Step step);
  void handle(net::Message& m);
  void pump(double timeout);
  void run();
};

// --- Decoder host (Table 3, decoder) ---------------------------------------

struct DecoderHost {
  net::FabricBackend& fabric;
  HostShared& shared;
  const WallTimer& timer;
  proto::Topology topo;
  int home_tile;
  const wall::TileGeometry& geo;
  const StreamInfo& info;
  const TileDisplayFn& on_display;
  std::mutex& display_mu;
  double heartbeat_interval_s;
  net::ReliableEndpoint ep;
  proto::DecoderNode node;
  wall::PartitionTable table;  // epochs learned from the root's updates
  std::map<int, std::unique_ptr<TileDecoder>> decs;  // by tile
  std::map<int, SubPicture> subs;  // current picture's sub-picture, by tile
  bool gone = false;  // killed (or fabric torn down) — exit silently

  obs::DecoderInstruments inst;
  obs::Gauge* queue_depth = nullptr;

  DecoderHost(net::FabricBackend* f, HostShared* sh, const WallTimer* t,
              const proto::Topology& tp, int tile,
              const net::ReliableConfig& rc, const wall::TileGeometry& g,
              const StreamInfo& si, const TileDisplayFn& display,
              std::mutex* dmu, const proto::DecoderNode::Options& dopts,
              obs::MetricsRegistry* metrics);

  int self() const { return topo.decoder(home_tile); }

  // See SplitterHost::post_initial_credits().
  void post_initial_credits();

  TileDecoder::DisplayFn display_fn(int tile);
  TileDecoder& dec(int tile);
  void apply(proto::DecoderNode::Step step);
  // Pump the transport once; returns false when this node is dead.
  bool pump(double timeout);
  // Phase 1 for one tile: resolve the sub-picture and execute its MEI SENDs.
  void serve(const proto::DecoderNode::OwnedTile& ot, uint32_t i);
  // Phase 2 for one tile: collect the halos it still expects, then decode.
  void work(const proto::DecoderNode::OwnedTile& ot, uint32_t i);
  void run(uint32_t total_pictures);
};

}  // namespace pdw::core
