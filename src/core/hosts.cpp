#include "core/hosts.h"

#include <optional>
#include <utility>

#include "obs/flight.h"
#include "obs/trace.h"
#include "proto/wire.h"

namespace pdw::core {

using proto::AnyMsg;
using proto::Outgoing;

void accumulate_transport(net::ReliableStats* into,
                          const net::ReliableStats& s) {
  into->sent += s.sent;
  into->retransmits += s.retransmits;
  into->crc_drops += s.crc_drops;
  into->dup_drops += s.dup_drops;
  into->reordered += s.reordered;
  into->abandoned += s.abandoned;
  into->no_credit += s.no_credit;
  into->holes += s.holes;
  into->delivered += s.delivered;
  into->rtt_samples += s.rtt_samples;
}

void emit(net::ReliableEndpoint& ep, HostShared& shared, int src, Outgoing o) {
  {
    std::lock_guard<std::mutex> lock(shared.acct_mu);
    shared.acct.record(src, o.dst, o.msg.type, o.msg.body.size());
  }
  obs::FlightRecorder::global().note_wire(true, src, o.dst, int(o.msg.type),
                                          o.msg.seq, o.msg.aux,
                                          o.msg.body.size());
  net::Message m;
  m.type = int(o.msg.type);
  m.seq = o.msg.seq;
  m.aux = o.msg.aux;
  m.stream = o.msg.stream;
  m.bulk = o.msg.bulk;
  m.payload = std::move(o.msg.body);
  if (o.reliable)
    ep.send(o.dst, std::move(m));
  else
    ep.send_unreliable(o.dst, std::move(m));
}

void emit_exchange(net::ReliableEndpoint& ep, HostShared& shared, int src,
                   int dst, const proto::ExchangeMsg& msg) {
  {
    std::lock_guard<std::mutex> lock(shared.acct_mu);
    shared.acct.record_exchange(src, dst, msg);
  }
  proto::Packed p = proto::pack(msg);
  obs::FlightRecorder::global().note_wire(true, src, dst, int(p.type), p.seq,
                                          p.aux, p.body.size());
  net::Message m;
  m.type = int(p.type);
  m.seq = p.seq;
  m.aux = p.aux;
  m.stream = p.stream;
  m.bulk = p.bulk;
  m.payload = std::move(p.body);
  ep.send(dst, std::move(m));
}

AnyMsg decode_trusted(const net::Message& m) {
  std::optional<AnyMsg> msg = proto::decode_any(m.payload);
  PDW_CHECK(msg.has_value()) << " undecodable wire message type " << m.type;
  return std::move(*msg);
}

namespace {

// The endpoint's transport instruments (retransmits, RTT histograms) must
// land in the same registry as the host's, not fall back to the global one.
net::ReliableConfig with_metrics(net::ReliableConfig rc,
                                 obs::MetricsRegistry* metrics) {
  if (!rc.metrics) rc.metrics = metrics;
  return rc;
}

}  // namespace

// --- RootHost --------------------------------------------------------------

RootHost::RootHost(net::FabricBackend* f, HostShared* sh, const WallTimer* t,
                   const RootSplitter* r, const proto::Topology& tp,
                   const net::ReliableConfig& rc,
                   const proto::RootNode::Options& ro,
                   std::vector<proto::PictureMeta> metas,
                   obs::MetricsRegistry* metrics)
    : fabric(*f),
      shared(*sh),
      timer(*t),
      root(*r),
      topo(tp),
      ep(f, tp.root(), with_metrics(rc, metrics)),
      node(tp, ro, std::move(metas), t->seconds()) {
  node.set_metrics(metrics);
  inst.resolve(obs::registry_or_global(metrics), tp.root(), 0);
}

void RootHost::apply(proto::RootNode::Step step) {
  for (const proto::RootNode::Death& d : step.deaths) {
    fabric.kill(d.node);  // fence: nothing more in or out of the corpse
    ep.forget_peer(d.node);
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.recoveries.push_back(RecoveryEvent{
        timer.seconds(), d.dead_tile, d.adopter_tile, d.resync_pic, 0});
  }
  if (!step.deaths.empty())
    obs::FlightRecorder::global().dump("death_declared");
  for (Outgoing& o : step.send) emit(ep, shared, topo.root(), std::move(o));
}

void RootHost::pump(double timeout) {
  net::Message m;
  if (ep.recv(&m, timeout) == net::ReliableEndpoint::Status::kMessage) {
    obs::FlightRecorder::global().note_wire(false, topo.root(), m.src, m.type,
                                            m.seq, m.aux, m.payload.size());
    apply(node.on_message(m.src, decode_trusted(m), timer.seconds()));
  }
  ep.take_abandoned();  // sends to nodes that died mid-broadcast
  // Hard transport errors (socket backend: ICMP port-unreachable — the
  // network telling us a peer process is gone). The in-process fabric never
  // reports any.
  for (int n : fabric.take_peer_errors())
    apply(node.on_transport_suspect(n, timer.seconds()));
  apply(node.on_tick(timer.seconds()));
}

void RootHost::run() {
  while (!node.stream_done()) {
    const uint32_t pic = node.cursor();
    const auto span = root.picture(int(pic));
    {
      PDW_TRACE_SPAN(obs::span::kGoAheadWait, topo.root(), pic);
      WallTimer wait;
      while (!node.may_dispatch()) pump(0.005);
      if (inst.go_ahead_wait_ns)
        inst.go_ahead_wait_ns->observe(uint64_t(wait.seconds() * 1e9));
    }
    std::vector<Outgoing> out;
    {
      // "Copy P to send buf" — the one copy: the ES span is packed straight
      // into a pooled wire body that the splitter's sub-pictures then view.
      // A rebalance decided here prepends its PartitionUpdate broadcast.
      PDW_TRACE_SPAN(obs::span::kCopyPic, topo.root(), pic);
      out = node.dispatch(span);
    }
    for (Outgoing& o : out) emit(ep, shared, topo.root(), std::move(o));
    apply(node.on_tick(timer.seconds()));
  }
  for (Outgoing& o : node.end_of_stream())
    emit(ep, shared, topo.root(), std::move(o));
  // Phase B: keep the health monitor (and our transport) alive until every
  // decoder thread has been joined — a decoder blocked on a dead peer is
  // unblocked by a death notice that only this loop can produce. Exit only
  // once every decoder is accounted for (finished or declared dead).
  while (!shared.root_stop.load() || !node.all_reported()) pump(0.01);
  shared.ep_stats[size_t(topo.root())] = ep.stats();
}

// --- SplitterHost ----------------------------------------------------------

SplitterHost::SplitterHost(net::FabricBackend* f, HostShared* sh,
                           const proto::Topology& tp, int s,
                           const net::ReliableConfig& rc,
                           const wall::TileGeometry& geo,
                           const StreamInfo& info,
                           obs::MetricsRegistry* metrics,
                           bool adaptive_enabled)
    : fabric(*f),
      shared(*sh),
      topo(tp),
      index(s),
      ep(f, tp.splitter(s), with_metrics(rc, metrics)),
      node(tp, s),
      splitter(geo),
      table(geo),
      adaptive(adaptive_enabled) {
  splitter.set_stream_info(info);
  node.set_metrics(metrics);
  obs::MetricsRegistry& r = obs::registry_or_global(metrics);
  inst.resolve(r, self(), 0);
  queue_depth = &r.gauge(obs::family::kQueueDepth, obs::Labels{self(), 0});
}

void SplitterHost::post_initial_credits() {
  fabric.post_receive(self());
  fabric.post_receive(self());
}

void SplitterHost::apply(proto::SplitterNode::Step step) {
  for (int n : step.forget) ep.forget_peer(n);
  if (!step.forget.empty())
    obs::FlightRecorder::global().dump("death_notice");
  if (step.partition)
    table.install_wire(step.partition->epoch, step.partition->apply_from_pic,
                       step.partition->col_cuts_mb,
                       step.partition->row_cuts_mb);
  for (Outgoing& o : step.send) emit(ep, shared, self(), std::move(o));
}

void SplitterHost::handle(net::Message& m) {
  if (m.bulk) fabric.post_receive(self());  // recycle the receive buffer
  obs::FlightRecorder::global().note_wire(false, self(), m.src, m.type, m.seq,
                                          m.aux, m.payload.size());
  apply(node.on_message(m.src, decode_trusted(m), 0.0));
}

void SplitterHost::pump(double timeout) {
  net::Message m;
  if (ep.recv(&m, timeout) == net::ReliableEndpoint::Status::kMessage)
    handle(m);
  for (const net::AbandonedSend& ab : ep.take_abandoned())
    apply(node.on_send_failure(proto::SendFailure{
        ab.dst, proto::MsgType(ab.type), ab.seq, ab.aux}));
}

void SplitterHost::run() {
  while (true) {
    while (!node.has_picture() && !node.ended()) pump(0.02);
    queue_depth->set(node.queue_depth());
    if (!node.has_picture()) break;
    Outgoing go_ahead;
    proto::PictureMsg pic = node.pop_picture(&go_ahead);
    emit(ep, shared, self(), std::move(go_ahead));
    const uint32_t i = pic.pic_index;

    // The picture is split against its stamped epoch's geometry. The update
    // installing that epoch was broadcast before the picture on the same
    // in-order link, so the table always already has it.
    PDW_CHECK(table.has_epoch(pic.epoch))
        << "picture " << i << " stamped with unknown epoch " << pic.epoch;
    SplitResult result;
    {
      PDW_TRACE_SPAN(obs::span::kSplitPic, self(), i);
      WallTimer split_timer;
      result = splitter.split(pic.coded, i, table.geometry(pic.epoch));
      if (inst.split_ns)
        inst.split_ns->observe(uint64_t(split_timer.seconds() * 1e9));
    }
    if (result.status.ok() && inst.pictures_split) inst.pictures_split->add();

    // Cost report for the planner — one per popped picture, empty vectors
    // when the split failed, so the root's completeness count holds.
    if (adaptive) {
      proto::CostReportMsg cr;
      cr.pic_index = i;
      cr.col_cost = result.stats.cost_col;
      cr.row_cost = result.stats.cost_row;
      emit(ep, shared, self(),
           Outgoing{topo.root(), true, proto::pack(cr)});
    }

    // ANID gating: wait for the previous picture's ack from every live
    // decoder (redirection made them land here).
    {
      PDW_TRACE_SPAN(obs::span::kAnidWait, self(), i);
      while (!node.prev_acked(i)) pump(0.02);
    }

    if (!result.status.ok()) {
      // Undecodable headers: nobody can split or decode the picture.
      apply({node.skip_picture(i), {}});
      continue;
    }
    PDW_TRACE_SPAN(obs::span::kRouteSp, self(), i);
    for (const proto::SplitterNode::SpRoute& rt : node.routes(i)) {
      // Serialize the sub-picture straight into the pooled wire body — no
      // intermediate SpMsg byte vector.
      proto::Packed p =
          proto::pack_sp(i, uint16_t(rt.tile), /*stream=*/0,
                         result.subpictures[size_t(rt.tile)],
                         result.mei[size_t(rt.tile)], pic.epoch);
      if (inst.sp_bytes_sent) inst.sp_bytes_sent->add(p.body.size());
      emit(ep, shared, self(), Outgoing{rt.dst_node, true, std::move(p)});
    }
  }

  // Drain: ack decoders' final picture acks and absorb stragglers until
  // the main thread shuts the fabric down.
  shared.splitters_done.fetch_add(1, std::memory_order_release);
  while (true) {
    net::Message m;
    const auto st = ep.recv(&m, 0.02);
    if (st == net::ReliableEndpoint::Status::kShutdown ||
        st == net::ReliableEndpoint::Status::kDead)
      break;
    if (st == net::ReliableEndpoint::Status::kMessage) handle(m);
    ep.take_abandoned();
  }
  shared.ep_stats[size_t(self())] = ep.stats();
}

// --- DecoderHost -----------------------------------------------------------

DecoderHost::DecoderHost(net::FabricBackend* f, HostShared* sh,
                         const WallTimer* t, const proto::Topology& tp,
                         int tile, const net::ReliableConfig& rc,
                         const wall::TileGeometry& g, const StreamInfo& si,
                         const TileDisplayFn& display, std::mutex* dmu,
                         const proto::DecoderNode::Options& dopts,
                         obs::MetricsRegistry* metrics)
    : fabric(*f),
      shared(*sh),
      timer(*t),
      topo(tp),
      home_tile(tile),
      geo(g),
      info(si),
      on_display(display),
      display_mu(*dmu),
      heartbeat_interval_s(dopts.heartbeat_interval_s),
      ep(f, tp.decoder(tile), with_metrics(rc, metrics)),
      node(tp, tile, dopts),
      table(g) {
  node.set_metrics(metrics);
  obs::MetricsRegistry& r = obs::registry_or_global(metrics);
  inst.resolve(r, self(), 0);
  queue_depth = &r.gauge(obs::family::kQueueDepth, obs::Labels{self(), 0});
}

void DecoderHost::post_initial_credits() {
  fabric.post_receive(self());
  fabric.post_receive(self());
}

TileDecoder::DisplayFn DecoderHost::display_fn(int tile) {
  return TileDecoder::DisplayFn(
      [this, tile](const mpeg2::TileFrame& tf, const TileDisplayInfo& di) {
        if (di.degraded)
          shared.degraded.fetch_add(1, std::memory_order_relaxed);
        if (!on_display) return;
        std::lock_guard<std::mutex> lock(display_mu);
        on_display(tile, tf, di);
      });
}

TileDecoder& DecoderHost::dec(int tile) {
  auto& slot = decs[tile];
  if (!slot)
    slot = std::make_unique<TileDecoder>(geo, tile, info, HaloPolicy::kConceal);
  return *slot;
}

void DecoderHost::apply(proto::DecoderNode::Step step) {
  for (int n : step.forget) ep.forget_peer(n);
  if (!step.forget.empty())
    obs::FlightRecorder::global().dump("death_notice");
  if (step.partition)
    table.install_wire(step.partition->epoch, step.partition->apply_from_pic,
                       step.partition->col_cuts_mb,
                       step.partition->row_cuts_mb);
  if (step.adopt_tile.has_value()) {
    // Headroom for the adopted tile's second sub-picture stream.
    fabric.post_receive(self());
    fabric.post_receive(self());
  }
  for (Outgoing& o : step.send) emit(ep, shared, self(), std::move(o));
}

bool DecoderHost::pump(double timeout) {
  net::Message m;
  switch (ep.recv(&m, timeout)) {
    case net::ReliableEndpoint::Status::kDead:
    case net::ReliableEndpoint::Status::kShutdown:
      gone = true;
      return false;
    case net::ReliableEndpoint::Status::kTimeout:
      break;
    case net::ReliableEndpoint::Status::kMessage:
      if (m.bulk) fabric.post_receive(self());  // recycle the buffer
      obs::FlightRecorder::global().note_wire(false, self(), m.src, m.type,
                                              m.seq, m.aux, m.payload.size());
      apply(node.on_message(m.src, decode_trusted(m), timer.seconds()));
      break;
  }
  ep.take_abandoned();
  for (Outgoing& o : node.on_tick(timer.seconds()))
    emit(ep, shared, self(), std::move(o));  // heartbeat when due
  return true;
}

void DecoderHost::serve(const proto::DecoderNode::OwnedTile& ot, uint32_t i) {
  proto::DecoderNode::SpState st;
  {
    PDW_TRACE_SPAN(obs::span::kRecvSp, self(), i);
    while ((st = node.poll_sp(ot.tile, i)) ==
               proto::DecoderNode::SpState::kPending &&
           pump(heartbeat_interval_s)) {
    }
  }
  if (gone || st != proto::DecoderNode::SpState::kReady) return;
  PDW_TRACE_SPAN(obs::span::kServeSp, self(), i);
  WallTimer serve_timer;
  TileDecoder& d = dec(ot.tile);
  const proto::SpMsg& sp = node.sp(ot.tile);
  // poll_sp held the sub-picture until its epoch's update arrived, so the
  // geometry is guaranteed present. Rebase before any staging or halo
  // delivery touches the decoder — rebase drops staged per-picture state.
  if (d.epoch() != sp.epoch) d.rebase(table.geometry(sp.epoch));
  subs[ot.tile] = SubPicture::deserialize(sp.subpicture);
  const PicInfo& pic_info = subs[ot.tile].info;

  std::map<int, proto::ExchangeMsg> outgoing;  // by destination tile
  for (const MeiInstruction& instr : sp.mei) {
    if (instr.op == MeiOp::kSend) {
      proto::ExchangeEntry e;
      e.px = d.try_extract_for_send(pic_info, instr, &e.tainted);
      e.instr = instr;
      e.instr.op = MeiOp::kRecv;
      e.instr.peer = uint16_t(ot.tile);
      proto::ExchangeMsg& m = outgoing[int(instr.peer)];
      if (m.entries.empty()) {
        m.pic_index = i;
        m.src_tile = uint16_t(ot.tile);
        m.dst_tile = instr.peer;
      }
      m.entries.push_back(std::move(e));
    } else if (instr.op == MeiOp::kConceal) {
      // Damaged-slice macroblock: stage for the decode phase (the peer
      // field carries fill bytes, not a tile).
      d.stage_conceal(instr);
    }
  }
  for (auto& [peer, m] : outgoing) {
    const proto::DecoderNode::ExchangeRoute rt = node.route_exchange(peer, i);
    switch (rt.kind) {
      case proto::DecoderNode::ExchangeRoute::Kind::kDrop:
        break;  // nobody serves that picture
      case proto::DecoderNode::ExchangeRoute::Kind::kLocal:
        // Tiles hosted on this very node exchange halos in memory.
        for (const proto::DecoderNode::OwnedTile& ot2 : node.owned()) {
          if (ot2.tile != peer || !node.tile_active(ot2, i)) continue;
          TileDecoder& d2 = dec(ot2.tile);
          // Same picture => same epoch: rebase the co-hosted tile *before*
          // handing it halos (its own serve would otherwise drop them).
          if (d2.epoch() != sp.epoch) d2.rebase(table.geometry(sp.epoch));
          for (const proto::ExchangeEntry& e : m.entries)
            d2.add_halo_mb(e.instr, e.px, e.tainted);
        }
        break;
      case proto::DecoderNode::ExchangeRoute::Kind::kRemote:
        if (inst.exchange_bytes_sent)
          inst.exchange_bytes_sent->add(
              proto::exchange_msg_wire_bytes(m.entries.size()));
        emit_exchange(ep, shared, self(), rt.dst_node, m);
        break;
    }
  }
  if (inst.serve_ns)
    inst.serve_ns->observe(uint64_t(serve_timer.seconds() * 1e9));
}

void DecoderHost::work(const proto::DecoderNode::OwnedTile& ot, uint32_t i) {
  if (!node.have_sp(ot.tile)) {
    if (node.skipped(ot.tile)) {
      shared.skipped.fetch_add(1, std::memory_order_relaxed);
      if (inst.pictures_skipped) inst.pictures_skipped->add();
      dec(ot.tile).skip_picture(i, display_fn(ot.tile));
    }
    return;
  }
  {
    PDW_TRACE_SPAN(obs::span::kWaitHalo, self(), i);
    while (!node.halos_complete(ot.tile, i) && pump(heartbeat_interval_s)) {
    }
  }
  if (gone) return;
  for (const proto::ExchangeMsg& m : node.take_exchanges(ot.tile, i)) {
    if (inst.exchange_bytes_recv)
      inst.exchange_bytes_recv->add(
          proto::exchange_msg_wire_bytes(m.entries.size()));
    for (const proto::ExchangeEntry& e : m.entries)
      dec(ot.tile).add_halo_mb(e.instr, e.px, e.tainted);
  }
  {
    PDW_TRACE_SPAN(obs::span::kDecodeSp, self(), i);
    WallTimer decode_timer;
    dec(ot.tile).decode(subs.at(ot.tile), display_fn(ot.tile));
    if (inst.decode_ns)
      inst.decode_ns->observe(uint64_t(decode_timer.seconds() * 1e9));
  }
  if (inst.pictures_decoded) inst.pictures_decoded->add();
  if (inst.concealed_mbs)
    inst.concealed_mbs->add(
        uint64_t(dec(ot.tile).concealed_mbs_last_picture()));
  if (ot.tile != home_tile && i == ot.active_from) {
    // First adopted picture decoded: stamp the recovery latency.
    std::lock_guard<std::mutex> lock(shared.mu);
    for (RecoveryEvent& ev : shared.recoveries)
      if (ev.dead_tile == ot.tile && ev.resync_time_s == 0)
        ev.resync_time_s = timer.seconds();
  }
}

void DecoderHost::run(uint32_t total_pictures) {
  for (uint32_t i = 0; i < total_pictures && !gone; ++i) {
    // Phase 1 first for every owned tile, so no owned tile's decode can
    // starve another tile hosted on this same node. Indexed loops:
    // adoption may grow owned() mid-picture.
    for (size_t x = 0; x < node.owned().size() && !gone; ++x) {
      const proto::DecoderNode::OwnedTile ot = node.owned()[x];
      if (node.tile_active(ot, i)) serve(ot, i);
    }
    if (gone) break;
    for (size_t x = 0; x < node.owned().size() && !gone; ++x) {
      const proto::DecoderNode::OwnedTile ot = node.owned()[x];
      if (node.tile_active(ot, i)) work(ot, i);
    }
    if (gone) break;
    // Buffer GC plus the ack to the splitter owning the NEXT picture
    // (ANID redirection).
    {
      PDW_TRACE_SPAN(obs::span::kAckPic, self(), i);
      apply({node.finish_picture(i), {}, std::nullopt});
    }
    queue_depth->set(node.pending_sps());
  }

  if (!gone) {
    for (const proto::DecoderNode::OwnedTile& ot : node.owned())
      if (decs.count(ot.tile)) dec(ot.tile).flush(display_fn(ot.tile));
    apply({node.finished(), {}, std::nullopt});
  }
  shared.decoders_done.fetch_add(1, std::memory_order_release);
  // Stay resident until fabric shutdown: retransmit our own unacked tail
  // (last ack, finished notice, trailing exchanges) and keep t-acking
  // peers' retransmissions — a peer whose ack to us was lost would
  // otherwise retry into a dead mailbox and falsely abandon.
  while (!gone) {
    net::Message m;
    const auto st = ep.recv(&m, 0.02);
    if (st == net::ReliableEndpoint::Status::kDead ||
        st == net::ReliableEndpoint::Status::kShutdown)
      break;
    ep.take_abandoned();
    // Keep heartbeating until the finished notice is acked (the root
    // received it and exempted us from monitoring); then fall silent so
    // the fabric can reach quiescence for an orderly teardown.
    if (ep.unacked() > 0)
      for (Outgoing& o : node.on_tick(timer.seconds()))
        emit(ep, shared, self(), std::move(o));
  }
  shared.ep_stats[size_t(self())] = ep.stats();
}

}  // namespace pdw::core
