// Configuration determination (paper §4.6): choosing the number of
// second-level splitters k from the measured split and decode times, and the
// frame-rate model F = min(k / t_s, 1 / t_d).
#pragma once

#include "wall/geometry.h"

namespace pdw::core {

// Overall frame rate of a 1-k-(m,n) system with per-picture split time t_s
// and per-tile decode time t_d (seconds).
double predicted_fps(int k, double t_s, double t_d);

// Optimal k: smallest k with k/t_s >= 1/t_d, i.e. ceil(t_s / t_d). At 1 the
// second level can be merged into the root (a 1-(m,n) system).
int choose_k(double t_s, double t_d);

// §4.6: pick the (m, n) screen configuration for a video resolution given
// per-tile panel dimensions and projector overlap (the paper matches video
// resolution to wall resolution, e.g. 3840x2912 -> 4x4 of 1024x768 panels).
struct WallPanel {
  int width = 1024;
  int height = 768;
  int overlap = 40;
};
void choose_tiling(int video_w, int video_h, const WallPanel& panel, int* m,
                   int* n);

// Future-work extension implemented here (paper §6): given a target frame
// rate, pick the smallest k that reaches it, or the decoder-limited k if the
// target is unreachable.
int choose_k_for_target_fps(double target_fps, double t_s, double t_d);

}  // namespace pdw::core
