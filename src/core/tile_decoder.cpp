#include "core/tile_decoder.h"

#include <cstring>

#include "bitstream/bit_reader.h"
#include "mpeg2/conceal.h"
#include "mpeg2/mb_parser.h"
#include "mpeg2/motion.h"
#include "mpeg2/recon.h"

namespace pdw::core {

using namespace mpeg2;

namespace {

MacroblockPixels gray_mb() {
  MacroblockPixels px;
  std::memset(px.y, 128, sizeof(px.y));
  std::memset(px.cb, 128, sizeof(px.cb));
  std::memset(px.cr, 128, sizeof(px.cr));
  return px;
}

}  // namespace

// RefSource over a tile-local reference frame plus its halo of remote
// macroblocks. Gathers a prediction window that may straddle local/remote
// macroblocks arbitrarily. Same pixel values as the serial decoder's full
// frame => identical MC arithmetic => bit-exact reconstruction.
//
// Under HaloPolicy::kConceal a missing halo macroblock is filled with
// mid-gray instead of aborting, and the source records that it concealed;
// reading a tainted halo entry also marks the source. The decoder folds
// these flags (together with whether the source was read at all) into the
// reconstructed frame's taint bit.
class TileDecoder::TileRefSource final : public RefSource {
 public:
  TileRefSource(const TileFrame& tf, const HaloCache& halo, HaloPolicy policy,
                bool ref_tainted)
      : tf_(&tf), halo_(&halo), policy_(policy), ref_tainted_(ref_tainted) {}

  void fetch(int c, int x, int y, int w, int h, uint8_t* dst,
             int stride) const override {
    read_ = true;
    const int mb_edge = c == 0 ? 16 : 8;  // macroblock edge in this plane
    for (int r = 0; r < h; ++r) {
      const int gy = y + r;
      const int mby = gy / mb_edge;
      int gx = x;
      int out = 0;
      while (out < w) {
        const int mbx = gx / mb_edge;
        // Columns remaining inside this macroblock's horizontal extent.
        const int take = std::min(w - out, (mbx + 1) * mb_edge - gx);
        const uint8_t* src = nullptr;
        if (tf_->contains_mb(mbx, mby)) {
          src = tf_->pixel(c, gx, gy);
        } else {
          const HaloCache::Entry* e = halo_->find(mbx, mby);
          if (e == nullptr) {
            if (policy_ == HaloPolicy::kStrict) {
              PDW_CHECK(e != nullptr)
                  << "missing halo macroblock (" << mbx << "," << mby
                  << ") plane " << c << " — MEI pre-calculation incomplete";
            }
            concealed_ = true;
            std::memset(dst + size_t(r) * stride + out, 128, size_t(take));
            gx += take;
            out += take;
            continue;
          }
          if (e->tainted) concealed_ = true;
          const int ox = gx - mbx * mb_edge;
          const int oy = gy - mby * mb_edge;
          const uint8_t* base =
              c == 0 ? e->px.y : (c == 1 ? e->px.cb : e->px.cr);
          src = base + oy * mb_edge + ox;
        }
        std::memcpy(dst + size_t(r) * stride + out, src, size_t(take));
        gx += take;
        out += take;
      }
    }
  }

  bool read() const { return read_; }
  // True if this source delivered any pixels that are not bit-exact: a
  // concealed/tainted halo entry, or any read of a tainted reference frame.
  bool tainted() const { return concealed_ || (read_ && ref_tainted_); }

 private:
  const TileFrame* tf_;
  const HaloCache* halo_;
  HaloPolicy policy_;
  bool ref_tainted_;
  mutable bool read_ = false;
  mutable bool concealed_ = false;
};

// Stand-in for a reference frame that does not exist (lost to a skip or a
// fresh adoption). All-gray; any actual read taints the output. If the
// syntax never reads it (e.g. backward-only B pictures right after a
// closed-GOP I), the output stays bit-exact — exactly the property the
// recovery invariant relies on.
class TileDecoder::GrayRefSource final : public RefSource {
 public:
  void fetch(int, int, int, int w, int h, uint8_t* dst,
             int stride) const override {
    read_ = true;
    for (int r = 0; r < h; ++r)
      std::memset(dst + size_t(r) * stride, 128, size_t(w));
  }
  bool read() const { return read_; }

 private:
  mutable bool read_ = false;
};

namespace {

// Sink reconstructing macroblocks into the tile frame. Only macroblocks
// inside the tile rect are materialized; the syntax decoder may synthesize
// interior skips that belong to this tile by construction, so everything the
// sink sees is in-rect (CHECKed).
class TileReconSink final : public MbSink {
 public:
  TileReconSink(const PictureContext& ctx, const wall::MbRect& rect,
                TileFrame* cur, const RefSource* fwd, const RefSource* bwd)
      : ctx_(ctx), rect_(rect), cur_(cur), fwd_(fwd), bwd_(bwd) {}

  void on_macroblock(const Macroblock& mb, const MbState&, size_t,
                     size_t) override {
    const int mbx = mb.mb_x(ctx_.mb_width());
    const int mby = mb.mb_y(ctx_.mb_width());
    PDW_CHECK(rect_.contains(mbx, mby))
        << "sub-picture macroblock (" << mbx << "," << mby
        << ") outside tile rect";
    MacroblockPixels px;
    reconstruct_mb(mb, fwd_, bwd_, mbx, mby, &px);
    cur_->insert_mb(mbx, mby, px);
    // Unique-position count: a damaged slice header can re-claim a row that
    // an earlier slice already delivered. The serial decoder just overwrites
    // (last slice wins), so the tile does too, and completeness is about
    // coverage, not delivery count.
    const size_t idx = size_t(mby - rect_.y0) * size_t(rect_.x1 - rect_.x0) +
                       size_t(mbx - rect_.x0);
    if (!seen_[idx]) {
      seen_[idx] = true;
      ++count_;
    }
  }

  int count() const { return count_; }

 private:
  const PictureContext& ctx_;
  const wall::MbRect& rect_;
  TileFrame* cur_;
  const RefSource* fwd_;
  const RefSource* bwd_;
  std::vector<bool> seen_ = std::vector<bool>(size_t(rect_.count()), false);
  int count_ = 0;
};

}  // namespace

TileDecoder::TileDecoder(const wall::TileGeometry& geo, int tile,
                         const StreamInfo& info, HaloPolicy policy)
    : geo_(&geo),
      tile_(tile),
      seq_(info.seq),
      rect_(geo.tile_mbs(tile)),
      epoch_(geo.epoch()),
      policy_(policy) {
  PDW_CHECK_EQ(seq_.mb_width(), geo.mb_width());
  PDW_CHECK_EQ(seq_.mb_height(), geo.mb_height());
}

TileDecoder::~TileDecoder() = default;

void TileDecoder::rebase(const wall::TileGeometry& geo) {
  PDW_CHECK_EQ(seq_.mb_width(), geo.mb_width());
  PDW_CHECK_EQ(seq_.mb_height(), geo.mb_height());
  geo_ = &geo;
  rect_ = geo.tile_mbs(tile_);
  epoch_ = geo.epoch();
  // The scratch frame (if any) has the old rect; drop it so the next decode
  // allocates in the new one. Reference frames stay — each carries its own
  // rect, and the pending one still owes the wall a display emission.
  cur_.reset();
  halo_[0].clear();
  halo_[1].clear();
  staged_conceals_.clear();
}

MacroblockPixels TileDecoder::extract_for_send(
    const PicInfo& pic, const MeiInstruction& instr) const {
  PDW_CHECK(instr.op == MeiOp::kSend);
  // Map the instruction's logical reference to a physical frame for the
  // picture about to be decoded: P uses (fwd = newest I/P); B uses
  // (fwd = older, bwd = newest).
  const TileFrame* src = nullptr;
  if (pic.type == PicType::B)
    src = instr.ref == 0 ? ref_old_.get() : ref_new_.get();
  else
    src = ref_new_.get();
  PDW_CHECK(src != nullptr) << "SEND before reference frames exist";
  return src->extract_mb(instr.mb_x, instr.mb_y);
}

MacroblockPixels TileDecoder::try_extract_for_send(const PicInfo& pic,
                                                   const MeiInstruction& instr,
                                                   bool* degraded) const {
  PDW_CHECK(instr.op == MeiOp::kSend);
  const TileFrame* src = nullptr;
  bool taint = false;
  if (pic.type == PicType::B) {
    src = instr.ref == 0 ? ref_old_.get() : ref_new_.get();
    taint = instr.ref == 0 ? taint_old_ : taint_new_;
  } else {
    src = ref_new_.get();
    taint = taint_new_;
  }
  if (src == nullptr) {
    *degraded = true;
    return gray_mb();
  }
  *degraded = taint;
  return src->extract_mb(instr.mb_x, instr.mb_y);
}

void TileDecoder::add_halo_mb(const MeiInstruction& instr,
                              const MacroblockPixels& px, bool tainted) {
  PDW_CHECK_LE(int(instr.ref), 1);
  halo_[instr.ref].insert(instr.mb_x, instr.mb_y, px, tainted);
}

void TileDecoder::stage_conceal(const MeiInstruction& instr) {
  PDW_CHECK(instr.op == MeiOp::kConceal);
  PDW_CHECK(rect_.contains(instr.mb_x, instr.mb_y))
      << "CONCEAL (" << instr.mb_x << "," << instr.mb_y
      << ") outside tile rect";
  staged_conceals_.push_back(instr);
}

void TileDecoder::emit(const TileFrame& frame, const TileDisplayInfo& info,
                       const DisplayFn& display) {
  if (info.display_index < 0) return;  // slot before this decoder's stream
  if (!last_shown_)
    last_shown_ = std::make_unique<TileFrame>(frame);
  else
    *last_shown_ = frame;
  last_shown_epoch_ = info.epoch;
  if (display) display(frame, info);
}

void TileDecoder::emit_frozen(int slot, const DisplayFn& display) {
  if (slot < 0) return;
  if (!last_shown_) {
    // Nothing was ever shown: freeze to mid-gray.
    last_shown_ =
        std::make_unique<TileFrame>(rect_.x0, rect_.y0, rect_.x1, rect_.y1);
    last_shown_->y().fill(128);
    last_shown_->cb().fill(128);
    last_shown_->cr().fill(128);
    last_shown_epoch_ = epoch_;
  }
  TileDisplayInfo info;
  info.pic_index = uint32_t(slot + 1);
  info.display_index = slot;
  info.type = PicType::P;
  info.degraded = true;
  info.epoch = last_shown_epoch_;  // the frozen frame's rect, not today's
  if (display) display(*last_shown_, info);
}

void TileDecoder::decode(const SubPicture& sp, const DisplayFn& display) {
  PictureContext ctx;
  ctx.seq = &seq_;
  ctx.ph.type = sp.info.type;
  ctx.ph.temporal_reference = sp.info.temporal_reference;
  ctx.pce = sp.info.to_pce();

  // The reference rotation below recycles retired frames as scratch; after a
  // rebase a recycled frame still carries the previous epoch's rect.
  if (cur_ && (cur_->mb_x0() != rect_.x0 || cur_->mb_y0() != rect_.y0 ||
               cur_->mb_x1() != rect_.x1 || cur_->mb_y1() != rect_.y1))
    cur_.reset();
  if (!cur_)
    cur_ = std::make_unique<TileFrame>(rect_.x0, rect_.y0, rect_.x1, rect_.y1);

  // Build reference sources. Under kConceal a missing reference frame is
  // replaced by an all-gray stand-in instead of aborting.
  std::unique_ptr<TileRefSource> fwd, bwd;
  GrayRefSource gray_fwd, gray_bwd;
  const RefSource* fwd_src = nullptr;
  const RefSource* bwd_src = nullptr;
  if (sp.info.type == PicType::P) {
    if (policy_ == HaloPolicy::kStrict) PDW_CHECK(ref_new_) << "P without ref";
    if (ref_new_) {
      fwd = std::make_unique<TileRefSource>(*ref_new_, halo_[0], policy_,
                                            taint_new_);
      fwd_src = fwd.get();
    } else {
      fwd_src = &gray_fwd;
    }
  } else if (sp.info.type == PicType::B) {
    if (policy_ == HaloPolicy::kStrict)
      PDW_CHECK(ref_old_ && ref_new_) << "B without two references";
    if (ref_old_) {
      fwd = std::make_unique<TileRefSource>(*ref_old_, halo_[0], policy_,
                                            taint_old_);
      fwd_src = fwd.get();
    } else {
      fwd_src = &gray_fwd;
    }
    if (ref_new_) {
      bwd = std::make_unique<TileRefSource>(*ref_new_, halo_[1], policy_,
                                            taint_new_);
      bwd_src = bwd.get();
    } else {
      bwd_src = &gray_bwd;
    }
  }

  MbSyntaxDecoder syntax(ctx, ParseMode::kFull);
  TileReconSink sink(ctx, rect_, cur_.get(), fwd_src, bwd_src);

  // The splitter scan-validated exactly these bits: a parse failure here is
  // an internal invariant violation (splitter/decoder divergence), not
  // stream damage, so it stays a hard CHECK.
  for (const SpRun& run : sp.runs) {
    syntax.load_state(run.state);
    if (run.lead_skip_count > 0)
      PDW_CHECK(syntax.synthesize_skipped(int(run.lead_skip_addr),
                                          int(run.lead_skip_count), sink));
    if (run.num_coded > 0) {
      BitReader r(run.payload, run.skip_bits);
      const DecodeStatus st =
          syntax.parse_run(r, int(run.first_coded_addr), int(run.num_coded),
                           sink);
      PDW_CHECK(st.ok()) << "sub-picture run failed to parse: " << st;
    }
    if (run.trail_skip_count > 0)
      PDW_CHECK(syntax.synthesize_skipped(int(run.trail_skip_addr),
                                          int(run.trail_skip_count), sink));
  }

  // Execute the concealment plan for macroblocks no slice delivered. The
  // zero-MV window is the macroblock's own footprint, inside the tile rect,
  // so concealment never needs halo pixels.
  for (const MeiInstruction& instr : staged_conceals_) {
    ConcealSpec spec;
    spec.mb_x = instr.mb_x;
    spec.mb_y = instr.mb_y;
    spec.fill_y = conceal_fill_y(instr);
    spec.fill_cb = conceal_fill_cb(instr);
    spec.fill_cr = conceal_fill_cr(instr);
    MacroblockPixels px;
    conceal_mb(sp.info.type, fwd_src, spec, &px);
    cur_->insert_mb(spec.mb_x, spec.mb_y, px);
  }
  last_conceal_count_ = int(staged_conceals_.size());
  staged_conceals_.clear();

  // Completeness: the whole tile rect must have been reconstructed, whether
  // from parsed syntax or from the concealment plan.
  PDW_CHECK_EQ(sink.count() + last_conceal_count_, rect_.count())
      << "tile " << tile_ << " picture " << sp.info.pic_index;
  last_mb_count_ = sink.count();
  last_halo_count_ = halo_[0].size() + halo_[1].size();
  halo_[0].clear();
  halo_[1].clear();

  // Taint of the frame just reconstructed: anything concealed, plus any
  // actual read of a missing (gray) or tainted reference.
  bool tainted = false;
  if (fwd) tainted |= fwd->tainted();
  if (bwd) tainted |= bwd->tainted();
  tainted |= gray_fwd.read() || gray_bwd.read();

  last_pic_index_ = int64_t(sp.info.pic_index);

  // Display-order emission, mirroring the serial decoder but with stateless
  // slots: anything this picture triggers displays at slot pic_index - 1.
  const int slot = int(sp.info.pic_index) - 1;
  TileDisplayInfo info;
  info.pic_index = sp.info.pic_index;
  info.type = sp.info.type;
  info.degraded = tainted;
  info.epoch = epoch_;
  if (sp.info.type == PicType::B) {
    info.display_index = slot;
    emit(*cur_, info, display);
  } else {
    if (pending_ref_) {
      pending_info_.display_index = slot;
      emit(*ref_new_, pending_info_, display);
    } else if (pending_hole_) {
      emit_frozen(slot, display);
    }
    pending_hole_ = false;
    std::swap(ref_old_, ref_new_);
    std::swap(taint_old_, taint_new_);
    std::swap(ref_new_, cur_);
    taint_new_ = tainted;
    if (!cur_)
      cur_ =
          std::make_unique<TileFrame>(rect_.x0, rect_.y0, rect_.x1, rect_.y1);
    pending_ref_ = true;
    pending_info_ = info;
  }
}

void TileDecoder::skip_picture(uint32_t pic_index, const DisplayFn& display) {
  last_pic_index_ = int64_t(pic_index);
  halo_[0].clear();  // any halo/conceal staged for the lost picture is stale
  halo_[1].clear();
  staged_conceals_.clear();
  const int slot = int(pic_index) - 1;
  if (pending_ref_) {
    pending_info_.display_index = slot;
    pending_info_.degraded = true;  // displaced into the lost picture's slot
    emit(*ref_new_, pending_info_, display);
    pending_ref_ = false;
    pending_hole_ = true;
  } else {
    emit_frozen(slot, display);
  }
  // The lost picture may have been a reference; everything predicted from
  // here is suspect until the next I picture re-anchors the taint state.
  taint_old_ = taint_new_ = true;
}

void TileDecoder::flush(const DisplayFn& display) {
  const int slot = int(last_pic_index_);
  if (pending_ref_) {
    pending_info_.display_index = slot;
    emit(*ref_new_, pending_info_, display);
    pending_ref_ = false;
  } else if (pending_hole_) {
    emit_frozen(slot, display);
    pending_hole_ = false;
  }
}

}  // namespace pdw::core
