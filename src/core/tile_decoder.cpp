#include "core/tile_decoder.h"

#include <cstring>

#include "bitstream/bit_reader.h"
#include "mpeg2/mb_parser.h"
#include "mpeg2/motion.h"
#include "mpeg2/recon.h"

namespace pdw::core {

using namespace mpeg2;

// RefSource over a tile-local reference frame plus its halo of remote
// macroblocks. Gathers a prediction window that may straddle local/remote
// macroblocks arbitrarily. Same pixel values as the serial decoder's full
// frame => identical MC arithmetic => bit-exact reconstruction.
class TileDecoder::TileRefSource final : public RefSource {
 public:
  TileRefSource(const TileFrame& tf, const HaloCache& halo)
      : tf_(&tf), halo_(&halo) {}

  void fetch(int c, int x, int y, int w, int h, uint8_t* dst,
             int stride) const override {
    const int mb_edge = c == 0 ? 16 : 8;  // macroblock edge in this plane
    for (int r = 0; r < h; ++r) {
      const int gy = y + r;
      const int mby = gy / mb_edge;
      int gx = x;
      int out = 0;
      while (out < w) {
        const int mbx = gx / mb_edge;
        // Columns remaining inside this macroblock's horizontal extent.
        const int take = std::min(w - out, (mbx + 1) * mb_edge - gx);
        const uint8_t* src;
        if (tf_->contains_mb(mbx, mby)) {
          src = tf_->pixel(c, gx, gy);
        } else {
          const MacroblockPixels* px = halo_->find(mbx, mby);
          PDW_CHECK(px != nullptr)
              << "missing halo macroblock (" << mbx << "," << mby
              << ") plane " << c << " — MEI pre-calculation incomplete";
          const int ox = gx - mbx * mb_edge;
          const int oy = gy - mby * mb_edge;
          const uint8_t* base = c == 0 ? px->y : (c == 1 ? px->cb : px->cr);
          src = base + oy * mb_edge + ox;
        }
        std::memcpy(dst + size_t(r) * stride + out, src, size_t(take));
        gx += take;
        out += take;
      }
    }
  }

 private:
  const TileFrame* tf_;
  const HaloCache* halo_;
};

namespace {

// Sink reconstructing macroblocks into the tile frame. Only macroblocks
// inside the tile rect are materialized; the syntax decoder may synthesize
// interior skips that belong to this tile by construction, so everything the
// sink sees is in-rect (CHECKed).
class TileReconSink final : public MbSink {
 public:
  TileReconSink(const PictureContext& ctx, const wall::MbRect& rect,
                TileFrame* cur, const RefSource* fwd, const RefSource* bwd)
      : ctx_(ctx), rect_(rect), cur_(cur), fwd_(fwd), bwd_(bwd) {}

  void on_macroblock(const Macroblock& mb, const MbState&, size_t,
                     size_t) override {
    const int mbx = mb.mb_x(ctx_.mb_width());
    const int mby = mb.mb_y(ctx_.mb_width());
    PDW_CHECK(rect_.contains(mbx, mby))
        << "sub-picture macroblock (" << mbx << "," << mby
        << ") outside tile rect";
    MacroblockPixels px;
    reconstruct_mb(mb, fwd_, bwd_, mbx, mby, &px);
    cur_->insert_mb(mbx, mby, px);
    ++count_;
  }

  int count() const { return count_; }

 private:
  const PictureContext& ctx_;
  const wall::MbRect& rect_;
  TileFrame* cur_;
  const RefSource* fwd_;
  const RefSource* bwd_;
  int count_ = 0;
};

}  // namespace

TileDecoder::TileDecoder(const wall::TileGeometry& geo, int tile,
                         const StreamInfo& info)
    : geo_(geo), tile_(tile), seq_(info.seq), rect_(geo.tile_mbs(tile)) {
  PDW_CHECK_EQ(seq_.mb_width(), geo.mb_width());
  PDW_CHECK_EQ(seq_.mb_height(), geo.mb_height());
}

TileDecoder::~TileDecoder() = default;

MacroblockPixels TileDecoder::extract_for_send(
    const PicInfo& pic, const MeiInstruction& instr) const {
  PDW_CHECK(instr.op == MeiOp::kSend);
  // Map the instruction's logical reference to a physical frame for the
  // picture about to be decoded: P uses (fwd = newest I/P); B uses
  // (fwd = older, bwd = newest).
  const TileFrame* src = nullptr;
  if (pic.type == PicType::B)
    src = instr.ref == 0 ? ref_old_.get() : ref_new_.get();
  else
    src = ref_new_.get();
  PDW_CHECK(src != nullptr) << "SEND before reference frames exist";
  return src->extract_mb(instr.mb_x, instr.mb_y);
}

void TileDecoder::add_halo_mb(const MeiInstruction& instr,
                              const MacroblockPixels& px) {
  PDW_CHECK_LE(int(instr.ref), 1);
  halo_[instr.ref].insert(instr.mb_x, instr.mb_y, px);
}

void TileDecoder::decode(const SubPicture& sp, const DisplayFn& display) {
  PictureContext ctx;
  ctx.seq = &seq_;
  ctx.ph.type = sp.info.type;
  ctx.ph.temporal_reference = sp.info.temporal_reference;
  ctx.pce = sp.info.to_pce();

  if (!cur_)
    cur_ = std::make_unique<TileFrame>(rect_.x0, rect_.y0, rect_.x1, rect_.y1);

  std::unique_ptr<TileRefSource> fwd, bwd;
  if (sp.info.type == PicType::P) {
    PDW_CHECK(ref_new_) << "P picture without reference";
    fwd = std::make_unique<TileRefSource>(*ref_new_, halo_[0]);
  } else if (sp.info.type == PicType::B) {
    PDW_CHECK(ref_old_ && ref_new_) << "B picture without two references";
    fwd = std::make_unique<TileRefSource>(*ref_old_, halo_[0]);
    bwd = std::make_unique<TileRefSource>(*ref_new_, halo_[1]);
  }

  MbSyntaxDecoder syntax(ctx, ParseMode::kFull);
  TileReconSink sink(ctx, rect_, cur_.get(), fwd.get(), bwd.get());

  for (const SpRun& run : sp.runs) {
    syntax.load_state(run.state);
    if (run.lead_skip_count > 0)
      syntax.synthesize_skipped(int(run.lead_skip_addr),
                                int(run.lead_skip_count), sink);
    if (run.num_coded > 0) {
      BitReader r(run.payload, run.skip_bits);
      syntax.parse_run(r, int(run.first_coded_addr), int(run.num_coded), sink);
    }
    if (run.trail_skip_count > 0)
      syntax.synthesize_skipped(int(run.trail_skip_addr),
                                int(run.trail_skip_count), sink);
  }

  // Completeness: the whole tile rect must have been reconstructed.
  PDW_CHECK_EQ(sink.count(), rect_.count())
      << "tile " << tile_ << " picture " << sp.info.pic_index;
  last_mb_count_ = sink.count();
  last_halo_count_ = halo_[0].size() + halo_[1].size();
  halo_[0].clear();
  halo_[1].clear();

  // Display-order emission, mirroring the serial decoder.
  TileDisplayInfo info;
  info.pic_index = sp.info.pic_index;
  info.type = sp.info.type;
  if (sp.info.type == PicType::B) {
    info.display_index = display_index_++;
    if (display) display(*cur_, info);
  } else {
    if (pending_ref_) {
      pending_info_.display_index = display_index_++;
      if (display) display(*ref_new_, pending_info_);
    }
    std::swap(ref_old_, ref_new_);
    std::swap(ref_new_, cur_);
    if (!cur_)
      cur_ =
          std::make_unique<TileFrame>(rect_.x0, rect_.y0, rect_.x1, rect_.y1);
    pending_ref_ = true;
    pending_info_ = info;
  }
}

void TileDecoder::flush(const DisplayFn& display) {
  if (pending_ref_) {
    pending_info_.display_index = display_index_++;
    if (display) display(*ref_new_, pending_info_);
    pending_ref_ = false;
  }
}

}  // namespace pdw::core
