#include "core/pipeline.h"

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "common/timing.h"
#include "core/mb_splitter.h"
#include "core/root_splitter.h"

namespace pdw::core {

namespace {

enum MsgType : int {
  kPictureMsg = 1,     // root -> splitter, bulk
  kSubPictureMsg = 2,  // splitter -> decoder, bulk (aux = tile)
  kAckMsg = 3,         // decoder -> splitter / splitter -> root (seq = picture)
  kExchangeMsg = 4,    // decoder -> decoder (aux = source tile)
  kEndMsg = 5,         // root -> splitter
  kHeartbeatMsg = 6,   // decoder -> root, fire-and-forget
  kFinishedMsg = 7,    // decoder -> root: stream done, stop monitoring me
  kNodeDeadMsg = 8,    // root -> everyone (aux = dead tile, seq = resync pic)
  kSkipMsg = 9,        // splitter -> decoders: picture (aux=tile, seq) is lost
};

constexpr uint16_t kNoTile = 0xFFFF;

// Key ordering state by (seq, tile) so everything at or below a picture
// index can be erased with one lower_bound sweep.
uint64_t tkey(int tile, uint32_t seq) {
  return (uint64_t(seq) << 16) | uint16_t(tile);
}

// Exchange message payload: target tile, count, then entries
// {tainted, ref, mbx, mby, pixels}. The tainted flag is how degradation
// propagates across decoder boundaries: a peer that reconstructs from a
// tainted halo macroblock marks its own frame degraded too.
struct ExchangeEntry {
  MeiInstruction instr;
  bool tainted = false;
  mpeg2::MacroblockPixels px;
};

void serialize_exchange(int dst_tile, const std::vector<ExchangeEntry>& entries,
                        std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.u16(uint16_t(dst_tile));
  w.u32(uint32_t(entries.size()));
  for (const ExchangeEntry& e : entries) {
    w.u8(e.tainted ? 1 : 0);
    w.u8(e.instr.ref);
    w.u16(e.instr.mb_x);
    w.u16(e.instr.mb_y);
    w.bytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(&e.px), sizeof(e.px)));
  }
}

std::vector<ExchangeEntry> deserialize_exchange(std::span<const uint8_t> data,
                                                int* dst_tile) {
  ByteReader r(data);
  *dst_tile = r.u16();
  std::vector<ExchangeEntry> out(r.u32());
  for (ExchangeEntry& e : out) {
    e.tainted = r.u8() != 0;
    e.instr.op = MeiOp::kRecv;
    e.instr.ref = r.u8();
    e.instr.mb_x = r.u16();
    e.instr.mb_y = r.u16();
    auto bytes = r.bytes(sizeof(e.px));
    std::memcpy(&e.px, bytes.data(), sizeof(e.px));
  }
  PDW_CHECK(r.done());
  return out;
}

uint16_t peek_exchange_dst(std::span<const uint8_t> data) {
  ByteReader r(data);
  return r.u16();
}

// Combined sub-picture + MEI payload of a splitter->decoder message.
void serialize_sp_msg(const SubPicture& sp,
                      const std::vector<MeiInstruction>& mei,
                      std::vector<uint8_t>* out) {
  std::vector<uint8_t> sp_bytes;
  sp.serialize(&sp_bytes);
  ByteWriter w(out);
  w.u32(uint32_t(sp_bytes.size()));
  w.bytes(sp_bytes);
  serialize_mei(mei, out);
}

void deserialize_sp_msg(std::span<const uint8_t> data, SubPicture* sp,
                        std::vector<MeiInstruction>* mei) {
  ByteReader r(data);
  const uint32_t sp_len = r.u32();
  *sp = SubPicture::deserialize(r.bytes(sp_len));
  *mei = deserialize_mei(data.subspan(4 + sp_len));
}

void accumulate(net::ReliableStats* into, const net::ReliableStats& s) {
  into->sent += s.sent;
  into->retransmits += s.retransmits;
  into->crc_drops += s.crc_drops;
  into->dup_drops += s.dup_drops;
  into->reordered += s.reordered;
  into->abandoned += s.abandoned;
  into->no_credit += s.no_credit;
  into->holes += s.holes;
}

// What every node knows about a dead tile once the root's death notice
// arrived: nobody serves its pictures before `resync`; from `resync` on the
// adopter does (or nobody, in degraded mode).
struct DeadTileInfo {
  uint32_t resync = 0;
  int adopter_tile = -1;
};

struct Shared {
  std::mutex mu;  // guards recoveries
  std::vector<RecoveryEvent> recoveries;
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> skipped{0};
  std::vector<net::ReliableStats> ep_stats;  // by node, written pre-join
  std::atomic<bool> root_stop{false};
  // Decoder threads done with their stream (finished or killed). They then
  // stay resident t-acking peer retransmissions until fabric shutdown, so a
  // slow retransmit to an already-finished node is never falsely abandoned.
  std::atomic<int> decoders_done{0};
};

}  // namespace

ClusterPipeline::ClusterPipeline(const wall::TileGeometry& geo, int k,
                                 std::span<const uint8_t> es, FtOptions ft)
    : geo_(geo), k_(k), es_(es), ft_(std::move(ft)) {
  PDW_CHECK_GE(k, 1);
}

ClusterStats ClusterPipeline::run(const TileDisplayFn& on_display) {
  RootSplitter root(es_);
  const int tiles = geo_.tiles();
  const int total_pictures = root.picture_count();
  const ProtocolConfig cfg = ft_.protocol;
  net::Fabric fabric(nodes());
  if (ft_.injector) fabric.set_fault_injector(ft_.injector);
  std::mutex display_mu;
  Shared shared;
  shared.ep_stats.resize(size_t(nodes()));

  WallTimer timer;

  // Setup: every bulk receiver posts its two receive buffers before the
  // stream starts (in GM this happens during connection establishment).
  for (int s = 0; s < k_; ++s) {
    fabric.post_receive(splitter_node(s));
    fabric.post_receive(splitter_node(s));
  }
  for (int t = 0; t < tiles; ++t) {
    fabric.post_receive(decoder_node(t));
    fabric.post_receive(decoder_node(t));
  }

  // --- Root splitter thread (Table 3, root) + health monitor ---------------
  std::thread root_thread([&] {
    net::ReliableEndpoint ep(&fabric, root_node(), cfg.reliable);
    std::vector<double> last_hb(size_t(tiles), timer.seconds());
    std::set<int> dead_nodes, finished_nodes;
    std::vector<int> owner(size_t(tiles), -1);  // tile -> node now serving it
    for (int t = 0; t < tiles; ++t) owner[size_t(t)] = decoder_node(t);
    int64_t acks_seen = 0;  // go-aheads from splitters
    int cursor = 0;         // next picture index to dispatch

    const auto declare_dead = [&](int node) {
      if (dead_nodes.count(node)) return;
      dead_nodes.insert(node);
      fabric.kill(node);  // fence: nothing more in or out of the corpse
      ep.forget_peer(node);
      // Resynchronization point: the first closed-GOP I picture the root has
      // not yet dispatched. Every GOP starts with an I, and GOPs are closed,
      // so decoding restarted there is bit-exact from that display slot on.
      uint32_t resync = uint32_t(total_pictures);
      for (int j = cursor; j < total_pictures; ++j) {
        if (root.span(j).has_gop_header) {
          resync = uint32_t(j);
          break;
        }
      }
      for (int t = 0; t < tiles; ++t) {
        if (owner[size_t(t)] != node) continue;
        int adopter_tile = -1;
        if (ft_.recovery == RecoveryPolicy::kAdopt) {
          for (int t2 = 0; t2 < tiles; ++t2) {
            if (owner[size_t(t2)] != node && !dead_nodes.count(owner[size_t(t2)])) {
              adopter_tile = t2;
              break;
            }
          }
        }
        {
          std::lock_guard<std::mutex> lock(shared.mu);
          shared.recoveries.push_back(RecoveryEvent{
              timer.seconds(), t, adopter_tile, resync, 0});
        }
        owner[size_t(t)] = adopter_tile >= 0 ? owner[size_t(adopter_tile)] : -1;
        net::Message dm;
        dm.type = kNodeDeadMsg;
        dm.seq = resync;
        dm.aux = uint16_t(t);
        ByteWriter w(&dm.payload);
        w.u16(adopter_tile >= 0 ? uint16_t(adopter_tile) : kNoTile);
        for (int s = 0; s < k_; ++s) ep.send(splitter_node(s), dm);
        for (int t2 = 0; t2 < tiles; ++t2) {
          const int n2 = decoder_node(t2);
          if (!dead_nodes.count(n2)) ep.send(n2, dm);
        }
      }
    };

    const auto monitor = [&] {
      const double now = timer.seconds();
      for (int t = 0; t < tiles; ++t) {
        const int node = decoder_node(t);
        if (dead_nodes.count(node) || finished_nodes.count(node)) continue;
        if (now - last_hb[size_t(t)] > cfg.heartbeat_timeout_s)
          declare_dead(node);
      }
    };

    const auto pump = [&](double timeout) {
      net::Message m;
      if (ep.recv(&m, timeout) == net::ReliableEndpoint::Status::kMessage) {
        switch (m.type) {
          case kAckMsg:
            ++acks_seen;
            break;
          case kHeartbeatMsg:
            last_hb[size_t(m.src - (1 + k_))] = timer.seconds();
            break;
          case kFinishedMsg:
            finished_nodes.insert(m.src);
            break;
          default:
            break;
        }
      }
      ep.take_abandoned();  // sends to nodes that died mid-broadcast
      monitor();
    };

    std::vector<uint8_t> send_buffer;
    int a = 0;
    for (int i = 0; i < total_pictures; ++i) {
      cursor = i;
      const auto span = root.picture(i);
      send_buffer.assign(span.begin(), span.end());  // "Copy P to send buffer"
      while (acks_seen < i) pump(0.005);
      net::Message msg;
      msg.type = kPictureMsg;
      msg.seq = uint32_t(i);
      msg.aux = uint16_t((a + 1) % k_);  // NSID
      msg.bulk = true;
      msg.payload = send_buffer;
      ep.send(splitter_node(a), std::move(msg));
      monitor();
      a = (a + 1) % k_;
    }
    cursor = total_pictures;
    for (int s = 0; s < k_; ++s) {
      net::Message end;
      end.type = kEndMsg;
      ep.send(splitter_node(s), std::move(end));
    }
    // Phase B: keep the health monitor (and our transport) alive until every
    // decoder thread has been joined — a decoder blocked on a dead peer is
    // unblocked by a death notice that only this loop can produce. Exit only
    // once every decoder is accounted for (finished or declared dead):
    // leaving earlier would strand a decoder retransmitting its finished
    // notice at a mailbox nobody reads.
    const auto all_reported = [&] {
      for (int t = 0; t < tiles; ++t) {
        const int n = decoder_node(t);
        if (!dead_nodes.count(n) && !finished_nodes.count(n)) return false;
      }
      return true;
    };
    while (!shared.root_stop.load() || !all_reported()) pump(0.01);
    shared.ep_stats[size_t(root_node())] = ep.stats();
  });

  // --- Second-level splitter threads (Table 3, splitter) -------------------
  std::vector<std::thread> splitter_threads;
  for (int s = 0; s < k_; ++s) {
    splitter_threads.emplace_back([&, s] {
      MacroblockSplitter splitter(geo_);
      splitter.set_stream_info(root.stream_info());
      const int self = splitter_node(s);
      net::ReliableEndpoint ep(&fabric, self, cfg.reliable);

      std::deque<net::Message> pictures;
      std::map<uint32_t, std::set<int>> acked;  // picture -> decoder nodes
      std::set<int> live;
      struct Route {
        int node = -1;
        uint32_t valid_from = 0;  // only send pictures >= this index
      };
      std::vector<Route> route(size_t(tiles), Route{});
      for (int t = 0; t < tiles; ++t) {
        live.insert(decoder_node(t));
        route[size_t(t)] = Route{decoder_node(t), 0};
      }
      bool ended = false;

      const auto handle = [&](net::Message& m) {
        switch (m.type) {
          case kPictureMsg:
            fabric.post_receive(self);  // recycle the receive buffer
            pictures.push_back(std::move(m));
            break;
          case kAckMsg:
            acked[m.seq].insert(m.src);
            break;
          case kNodeDeadMsg: {
            const int dead_tile = m.aux;
            ByteReader r(m.payload);
            const uint16_t adopter_tile = r.u16();
            const int dead_node = route[size_t(dead_tile)].node;
            live.erase(dead_node);
            ep.forget_peer(dead_node);
            route[size_t(dead_tile)] = Route{
                adopter_tile == kNoTile ? -1
                                        : route[size_t(adopter_tile)].node,
                m.seq};
            break;
          }
          case kEndMsg:
            ended = true;
            break;
          default:
            break;
        }
      };

      const auto pump = [&](double timeout) {
        net::Message m;
        if (ep.recv(&m, timeout) == net::ReliableEndpoint::Status::kMessage)
          handle(m);
        // A sub-picture we gave up delivering is a lost picture for that
        // tile: tell every live decoder (the owner skips it; its neighbours
        // conceal the halo data it would have sent them). A skip notice that
        // is itself abandoned is resent to that one node — it is tiny and
        // must eventually land, or the pipeline deadlocks waiting for a
        // picture nobody will serve; if the node is truly dead the death
        // notice removes it from `live` and ends the retrying.
        for (const net::AbandonedSend& ab : ep.take_abandoned()) {
          if (!live.count(ab.dst)) continue;
          net::Message skip;
          skip.type = kSkipMsg;
          skip.seq = ab.seq;
          skip.aux = ab.aux;  // tile
          if (ab.type == kSubPictureMsg) {
            for (int node : live) ep.send(node, skip);
          } else if (ab.type == kSkipMsg) {
            ep.send(ab.dst, std::move(skip));
          }
        }
      };

      while (true) {
        while (pictures.empty() && !ended) pump(0.02);
        if (pictures.empty()) break;
        net::Message msg = std::move(pictures.front());
        pictures.pop_front();

        net::Message go_ahead;
        go_ahead.type = kAckMsg;
        go_ahead.seq = msg.seq;
        ep.send(root_node(), std::move(go_ahead));

        const uint32_t i = msg.seq;
        SplitResult result = splitter.split(msg.payload, i);

        // Wait for the previous picture's ack from every *live* decoder
        // node (ANID redirection made them land here). Set semantics keep
        // this correct through deaths and adoptions: a node that dies
        // mid-wait is removed from `live` by the death notice.
        if (i != 0) {
          const auto satisfied = [&] {
            const auto it = acked.find(i - 1);
            for (int node : live)
              if (it == acked.end() || !it->second.count(node)) return false;
            return true;
          };
          while (!satisfied()) pump(0.02);
          acked.erase(acked.begin(), acked.upper_bound(i - 1));
        }

        if (!result.status.ok()) {
          // The picture's headers are undecodable: nobody can split or
          // decode it. Broadcast a skip notice for every tile — the same
          // machinery that covers a lost sub-picture — so owners emit their
          // frozen frame and neighbours stop waiting for halo data.
          for (int d = 0; d < tiles; ++d) {
            net::Message skip;
            skip.type = kSkipMsg;
            skip.seq = i;
            skip.aux = uint16_t(d);
            for (int node : live) ep.send(node, skip);
          }
          continue;
        }

        for (int d = 0; d < tiles; ++d) {
          const Route& rt = route[size_t(d)];
          if (rt.node < 0 || i < rt.valid_from) continue;
          net::Message sp_msg;
          sp_msg.type = kSubPictureMsg;
          sp_msg.seq = i;
          sp_msg.aux = uint16_t(d);
          sp_msg.bulk = true;
          serialize_sp_msg(result.subpictures[size_t(d)],
                           result.mei[size_t(d)], &sp_msg.payload);
          ep.send(rt.node, std::move(sp_msg));
        }
      }

      // Drain: ack decoders' final picture acks and absorb stragglers until
      // the main thread shuts the fabric down.
      while (true) {
        net::Message m;
        const auto st = ep.recv(&m, 0.02);
        if (st == net::ReliableEndpoint::Status::kShutdown ||
            st == net::ReliableEndpoint::Status::kDead)
          break;
        if (st == net::ReliableEndpoint::Status::kMessage) handle(m);
        ep.take_abandoned();
      }
      shared.ep_stats[size_t(self)] = ep.stats();
    });
  }

  // --- Decoder threads (Table 3, decoder) ----------------------------------
  std::vector<std::thread> decoder_threads;
  for (int t = 0; t < tiles; ++t) {
    decoder_threads.emplace_back([&, t] {
      const int self = decoder_node(t);
      net::ReliableEndpoint ep(&fabric, self, cfg.reliable);

      struct TileState {
        int tile;
        uint32_t active_from;
        std::unique_ptr<TileDecoder> dec;
        // Per-picture scratch:
        bool have_sp = false;
        bool skip = false;
        SubPicture sp;
        std::vector<MeiInstruction> mei;
        std::unordered_set<int> expected;  // source tiles with SENDs for us
      };
      std::vector<TileState> owned;
      owned.reserve(size_t(tiles));  // references must survive adoption
      owned.push_back(TileState{t, 0});

      std::map<uint64_t, net::Message> sps;  // tkey(tile, seq)
      std::map<uint64_t, std::map<int, net::Message>> exchanges;
      std::set<uint64_t> skips;
      std::unordered_map<int, DeadTileInfo> dead_tiles;
      std::vector<int> owner(size_t(tiles), -1);
      for (int d = 0; d < tiles; ++d) owner[size_t(d)] = decoder_node(d);
      double last_hb = -1e9;
      bool gone = false;  // killed (or fabric torn down) — exit silently

      const auto display_fn = [&](int tile) {
        return TileDecoder::DisplayFn(
            [&, tile](const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
              if (info.degraded)
                shared.degraded.fetch_add(1, std::memory_order_relaxed);
              if (!on_display) return;
              std::lock_guard<std::mutex> lock(display_mu);
              on_display(tile, tf, info);
            });
      };

      const auto ensure_dec = [&](TileState& ts) {
        if (!ts.dec)
          ts.dec = std::make_unique<TileDecoder>(
              geo_, ts.tile, root.stream_info(), HaloPolicy::kConceal);
      };

      const auto heartbeat = [&] {
        const double now = timer.seconds();
        if (now - last_hb < cfg.heartbeat_interval_s) return;
        last_hb = now;
        net::Message hb;
        hb.type = kHeartbeatMsg;
        ep.send_unreliable(root_node(), hb);
      };

      const auto process_death = [&](const net::Message& m) {
        const int dead_tile = m.aux;
        ByteReader r(m.payload);
        const uint16_t adopter_tile = r.u16();
        const uint32_t resync = m.seq;
        dead_tiles[dead_tile] = DeadTileInfo{
            resync, adopter_tile == kNoTile ? -1 : int(adopter_tile)};
        const int dead_node = owner[size_t(dead_tile)];
        owner[size_t(dead_tile)] =
            adopter_tile == kNoTile ? -1 : owner[size_t(adopter_tile)];
        if (dead_node >= 0) ep.forget_peer(dead_node);
        if (adopter_tile == kNoTile || resync >= uint32_t(total_pictures))
          return;
        bool mine = false, already = false;
        for (const TileState& ts : owned) {
          mine |= ts.tile == int(adopter_tile);
          already |= ts.tile == dead_tile;
        }
        if (mine && !already) {
          owned.push_back(TileState{dead_tile, resync});
          // Headroom for the second sub-picture stream.
          fabric.post_receive(self);
          fabric.post_receive(self);
        }
      };

      // Pump the transport once; returns false when this node is dead.
      const auto pump = [&](double timeout) {
        net::Message m;
        switch (ep.recv(&m, timeout)) {
          case net::ReliableEndpoint::Status::kDead:
          case net::ReliableEndpoint::Status::kShutdown:
            gone = true;
            return false;
          case net::ReliableEndpoint::Status::kTimeout:
            break;
          case net::ReliableEndpoint::Status::kMessage:
            switch (m.type) {
              case kSubPictureMsg:
                fabric.post_receive(self);  // recycle the receive buffer
                sps[tkey(m.aux, m.seq)] = std::move(m);
                break;
              case kExchangeMsg:
                exchanges[tkey(peek_exchange_dst(m.payload), m.seq)]
                         [int(m.aux)] = std::move(m);
                break;
              case kSkipMsg:
                skips.insert(tkey(m.aux, m.seq));
                break;
              case kNodeDeadMsg:
                process_death(m);
                break;
              default:
                break;
            }
            break;
        }
        ep.take_abandoned();
        heartbeat();
        return true;
      };

      // Where to send halo data for `tile` at picture i (-1: nobody serves
      // that picture — the tile is dead and i precedes its resync point).
      const auto exchange_dst = [&](int tile, uint32_t i) {
        const auto it = dead_tiles.find(tile);
        if (it != dead_tiles.end()) {
          if (it->second.adopter_tile < 0 || i < it->second.resync) return -1;
        }
        return owner[size_t(tile)];
      };

      for (uint32_t i = 0; i < uint32_t(total_pictures) && !gone; ++i) {
        // Phase 1: obtain this picture's sub-picture for every active tile
        // and execute its MEI SENDs, so no owned tile's decode can starve
        // another tile hosted on this same node.
        for (size_t x = 0; x < owned.size(); ++x) {
          TileState& ts = owned[x];
          ts.have_sp = ts.skip = false;
          ts.expected.clear();
          if (ts.active_from > i) continue;
          const uint64_t key = tkey(ts.tile, i);
          while (!gone) {
            if (const auto it = sps.find(key); it != sps.end()) {
              deserialize_sp_msg(it->second.payload, &ts.sp, &ts.mei);
              sps.erase(it);
              ts.have_sp = true;
              break;
            }
            if (skips.count(key)) {
              ts.skip = true;
              break;
            }
            if (!pump(cfg.heartbeat_interval_s)) break;
          }
          if (gone || ts.skip) continue;
          ensure_dec(ts);

          std::map<int, std::vector<ExchangeEntry>> outgoing;
          for (const MeiInstruction& instr : ts.mei) {
            if (instr.op == MeiOp::kSend) {
              ExchangeEntry e;
              e.instr = instr;
              e.px = ts.dec->try_extract_for_send(ts.sp.info, instr,
                                                  &e.tainted);
              outgoing[int(instr.peer)].push_back(e);
            } else if (instr.op == MeiOp::kRecv) {
              ts.expected.insert(int(instr.peer));
            } else if (instr.op == MeiOp::kConceal) {
              // Damaged-slice macroblock: stage for the decode phase (the
              // peer field carries fill bytes, not a tile).
              ts.dec->stage_conceal(instr);
            }
          }
          // Tiles hosted on this very node exchange halos in memory.
          for (const TileState& ts2 : owned)
            if (ts2.active_from <= i) ts.expected.erase(ts2.tile);

          for (auto& [peer, entries] : outgoing) {
            const int dst_node = exchange_dst(peer, i);
            if (dst_node < 0) continue;
            if (dst_node == self) {
              for (TileState& ts2 : owned) {
                if (ts2.tile != peer || ts2.active_from > i) continue;
                ensure_dec(ts2);
                for (const ExchangeEntry& e : entries)
                  ts2.dec->add_halo_mb(e.instr, e.px, e.tainted);
              }
              continue;
            }
            net::Message ex;
            ex.type = kExchangeMsg;
            ex.seq = i;
            ex.aux = uint16_t(ts.tile);
            serialize_exchange(peer, entries, &ex.payload);
            ep.send(dst_node, std::move(ex));
          }
        }
        if (gone) break;

        // Phase 2: collect the halos each tile still expects, then decode.
        for (size_t x = 0; x < owned.size(); ++x) {
          TileState& ts = owned[x];
          if (ts.active_from > i) continue;
          if (!ts.have_sp) {
            if (ts.skip) {
              shared.skipped.fetch_add(1, std::memory_order_relaxed);
              ensure_dec(ts);
              ts.dec->skip_picture(i, display_fn(ts.tile));
            }
            continue;
          }
          const uint64_t key = tkey(ts.tile, i);
          const auto serviceable = [&](int src_tile) {
            if (skips.count(tkey(src_tile, i))) return false;
            const auto it = dead_tiles.find(src_tile);
            if (it == dead_tiles.end()) return true;
            if (it->second.adopter_tile < 0) return false;
            return i >= it->second.resync;
          };
          while (!gone) {
            bool complete = true;
            const auto& got = exchanges[key];
            for (int src : ts.expected) {
              if (!got.count(src) && serviceable(src)) {
                complete = false;
                break;
              }
            }
            if (complete) break;
            if (!pump(cfg.heartbeat_interval_s)) break;
          }
          if (gone) break;
          for (auto& [src, m] : exchanges[key]) {
            int dst_tile = -1;
            for (const ExchangeEntry& e :
                 deserialize_exchange(m.payload, &dst_tile))
              ts.dec->add_halo_mb(e.instr, e.px, e.tainted);
            PDW_CHECK_EQ(dst_tile, ts.tile);
          }
          ts.dec->decode(ts.sp, display_fn(ts.tile));
          if (ts.tile != t && i == ts.active_from) {
            // First adopted picture decoded: stamp the recovery latency.
            std::lock_guard<std::mutex> lock(shared.mu);
            for (RecoveryEvent& ev : shared.recoveries)
              if (ev.dead_tile == ts.tile && ev.resync_time_s == 0)
                ev.resync_time_s = timer.seconds();
          }
        }
        if (gone) break;

        sps.erase(sps.begin(), sps.lower_bound(tkey(0, i + 1)));
        exchanges.erase(exchanges.begin(),
                        exchanges.lower_bound(tkey(0, i + 1)));
        skips.erase(skips.begin(), skips.lower_bound(tkey(0, i + 1)));

        // Ack the splitter that owns the NEXT picture (ANID redirection).
        net::Message ack;
        ack.type = kAckMsg;
        ack.seq = i;
        ep.send(splitter_node(int((i + 1) % uint32_t(k_))), std::move(ack));
      }

      if (!gone) {
        for (TileState& ts : owned)
          if (ts.dec) ts.dec->flush(display_fn(ts.tile));
        net::Message fin;
        fin.type = kFinishedMsg;
        ep.send(root_node(), std::move(fin));
      }
      shared.decoders_done.fetch_add(1, std::memory_order_release);
      // Stay resident until fabric shutdown: retransmit our own unacked
      // tail (last ack, finished notice, trailing exchanges) and keep
      // t-acking peers' retransmissions — a peer whose ack to us was lost
      // would otherwise retry into a dead mailbox and falsely abandon.
      while (!gone) {
        net::Message m;
        const auto st = ep.recv(&m, 0.02);
        if (st == net::ReliableEndpoint::Status::kDead ||
            st == net::ReliableEndpoint::Status::kShutdown)
          break;
        ep.take_abandoned();
        // Keep heartbeating until the finished notice is acked (the root
        // received it and exempted us from monitoring); then fall silent so
        // the fabric can reach quiescence for an orderly teardown.
        if (ep.unacked() > 0) heartbeat();
      }
      shared.ep_stats[size_t(self)] = ep.stats();
    });
  }

  // Decoders stay resident (t-acking) after finishing, so completion is
  // signalled by a counter rather than join: every decoder thread counts
  // itself done exactly once, whether it finished the stream or was killed.
  while (shared.decoders_done.load(std::memory_order_acquire) < tiles)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  shared.root_stop.store(true);
  root_thread.join();
  // The root consumed every finished notice before exiting; what remains in
  // flight is the tail of transport acks. Give those a bounded window to be
  // consumed so shutdown discards nothing (keeps traffic accounting
  // conserved); fault-delayed messages may legitimately never drain.
  const auto drain_start = std::chrono::steady_clock::now();
  while (!fabric.quiescent() &&
         std::chrono::steady_clock::now() - drain_start <
             std::chrono::milliseconds(250))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  fabric.shutdown();
  for (auto& th : decoder_threads) th.join();
  for (auto& th : splitter_threads) th.join();

  ClusterStats stats;
  stats.pictures = total_pictures;
  stats.wall_seconds = timer.seconds();
  stats.fps = double(total_pictures) / stats.wall_seconds;
  stats.nodes = nodes();
  for (int nid = 0; nid < nodes(); ++nid)
    stats.node_counters.push_back(fabric.counters(nid));
  stats.traffic_matrix = fabric.traffic_matrix();
  for (const net::ReliableStats& s : shared.ep_stats)
    accumulate(&stats.ft.transport, s);
  stats.ft.degraded_frames = shared.degraded.load();
  stats.ft.skipped_pictures = shared.skipped.load();
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    stats.ft.recoveries = shared.recoveries;
  }
  return stats;
}

}  // namespace pdw::core
