#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/timing.h"
#include "core/hosts.h"
#include "core/root_splitter.h"
#include "mem/pool.h"

namespace pdw::core {

ClusterPipeline::ClusterPipeline(const wall::TileGeometry& geo, int k,
                                 std::span<const uint8_t> es, FtOptions ft)
    : geo_(geo), k_(k), topo_{k, geo.tiles()}, es_(es), ft_(std::move(ft)) {
  PDW_CHECK_GE(k, 1);
}

ClusterStats ClusterPipeline::run(const TileDisplayFn& on_display) {
  RootSplitter root(es_);
  const int tiles = geo_.tiles();
  const int total_pictures = root.picture_count();
  const ProtocolConfig cfg = ft_.protocol;
  net::Fabric fabric(nodes());
  if (ft_.injector) fabric.set_fault_injector(ft_.injector);
  std::mutex display_mu;
  HostShared shared;
  shared.ep_stats.resize(size_t(nodes()));
  shared.acct.reset(nodes());
  if (ft_.per_picture_exchange) shared.acct.per_picture_tiles = tiles;

  WallTimer timer;

  // Setup: prewarm the wire pool (the GM analog of pre-posting buffers) —
  // mint every size class up to twice the largest coded picture so the
  // steady state never misses, whatever peaks thread scheduling produces.
  // The count covers the sub-picture classes, whose peak concurrency
  // scales with tiles (every in-flight picture fans out one body per
  // tile); prewarm itself caps the picture-sized classes by bytes.
  {
    size_t max_pic = 0;
    for (int i = 0; i < total_pictures; ++i)
      max_pic = std::max(max_pic, root.picture(i).size());
    mem::BufferPool::wire().prewarm(max_pic * 2, 2 * nodes() + tiles + 8);
  }

  // Every bulk receiver posts its two receive buffers before the stream
  // starts (in GM this happens during connection establishment).
  for (int s = 0; s < k_; ++s) {
    fabric.post_receive(splitter_node(s));
    fabric.post_receive(splitter_node(s));
  }
  for (int t = 0; t < tiles; ++t) {
    fabric.post_receive(decoder_node(t));
    fabric.post_receive(decoder_node(t));
  }

  std::vector<proto::PictureMeta> metas(static_cast<size_t>(total_pictures));
  for (int i = 0; i < total_pictures; ++i)
    metas[size_t(i)].has_gop_header = root.span(i).has_gop_header;

  std::thread root_thread([&] {
    proto::RootNode::Options ro;
    ro.heartbeat_timeout_s = cfg.heartbeat_timeout_s;
    ro.recovery = ft_.recovery;
    ro.adaptive = ft_.adaptive;
    ro.adaptive.geo = &geo_;
    RootHost host(&fabric, &shared, &timer, &root, topo_, cfg.reliable, ro,
                  std::move(metas), ft_.metrics);
    host.run();
  });

  std::vector<std::thread> splitter_threads;
  for (int s = 0; s < k_; ++s) {
    splitter_threads.emplace_back([&, s] {
      SplitterHost host(&fabric, &shared, topo_, s, cfg.reliable, geo_,
                        root.stream_info(), ft_.metrics,
                        ft_.adaptive.enabled);
      host.run();
    });
  }

  std::vector<std::thread> decoder_threads;
  for (int t = 0; t < tiles; ++t) {
    decoder_threads.emplace_back([&, t] {
      proto::DecoderNode::Options dopts;
      dopts.heartbeat_interval_s = cfg.heartbeat_interval_s;
      dopts.total_pictures = uint32_t(total_pictures);
      DecoderHost host(&fabric, &shared, &timer, topo_, t, cfg.reliable, geo_,
                       root.stream_info(), on_display, &display_mu, dopts,
                       ft_.metrics);
      host.run(uint32_t(total_pictures));
    });
  }

  // Decoders stay resident (t-acking) after finishing, so completion is
  // signalled by a counter rather than join: every decoder thread counts
  // itself done exactly once, whether it finished the stream or was killed.
  while (shared.decoders_done.load(std::memory_order_acquire) < tiles)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  shared.root_stop.store(true);
  root_thread.join();
  // The root consumed every finished notice before exiting; what remains in
  // flight is the tail of transport acks. Give those a bounded window to be
  // consumed so shutdown discards nothing (keeps traffic accounting
  // conserved); fault-delayed messages may legitimately never drain.
  const auto drain_start = std::chrono::steady_clock::now();
  while (!fabric.quiescent() &&
         std::chrono::steady_clock::now() - drain_start <
             std::chrono::milliseconds(250))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  fabric.shutdown();
  for (auto& th : decoder_threads) th.join();
  for (auto& th : splitter_threads) th.join();

  ClusterStats stats;
  stats.pictures = total_pictures;
  stats.wall_seconds = timer.seconds();
  stats.fps = double(total_pictures) / stats.wall_seconds;
  stats.nodes = nodes();
  for (int nid = 0; nid < nodes(); ++nid)
    stats.node_counters.push_back(fabric.counters(nid));
  stats.traffic_matrix = fabric.traffic_matrix();
  for (const net::ReliableStats& s : shared.ep_stats)
    accumulate_transport(&stats.ft.transport, s);
  stats.ft.degraded_frames = shared.degraded.load();
  stats.ft.skipped_pictures = shared.skipped.load();
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    stats.ft.recoveries = shared.recoveries;
  }
  {
    std::lock_guard<std::mutex> lock(shared.acct_mu);
    stats.wire = std::move(shared.acct);
  }
  // Control-plane overhead (heartbeat bytes) as a registry family, so a
  // live dashboard sees it without digging into WireAccounting.
  obs::registry_or_global(ft_.metrics)
      .counter(obs::family::kControlBytes)
      .add(stats.wire.control.total());
  return stats;
}

}  // namespace pdw::core
