#include "core/pipeline.h"

#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "common/timing.h"
#include "core/mb_splitter.h"
#include "core/root_splitter.h"

namespace pdw::core {

namespace {

enum MsgType : int {
  kPictureMsg = 1,
  kSubPictureMsg = 2,
  kAckMsg = 3,
  kExchangeMsg = 4,
  kEndMsg = 5,
};

// Exchange message payload: count, then entries {ref, mbx, mby, pixels}.
struct ExchangeEntry {
  MeiInstruction instr;
  mpeg2::MacroblockPixels px;
};

void serialize_exchange(const std::vector<ExchangeEntry>& entries,
                        std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.u32(uint32_t(entries.size()));
  for (const ExchangeEntry& e : entries) {
    w.u8(e.instr.ref);
    w.u16(e.instr.mb_x);
    w.u16(e.instr.mb_y);
    w.bytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(&e.px), sizeof(e.px)));
  }
}

std::vector<ExchangeEntry> deserialize_exchange(
    std::span<const uint8_t> data) {
  ByteReader r(data);
  std::vector<ExchangeEntry> out(r.u32());
  for (ExchangeEntry& e : out) {
    e.instr.op = MeiOp::kRecv;
    e.instr.ref = r.u8();
    e.instr.mb_x = r.u16();
    e.instr.mb_y = r.u16();
    auto bytes = r.bytes(sizeof(e.px));
    std::memcpy(&e.px, bytes.data(), sizeof(e.px));
  }
  PDW_CHECK(r.done());
  return out;
}

// Combined sub-picture + MEI payload of a splitter->decoder message.
void serialize_sp_msg(const SubPicture& sp,
                      const std::vector<MeiInstruction>& mei,
                      std::vector<uint8_t>* out) {
  std::vector<uint8_t> sp_bytes;
  sp.serialize(&sp_bytes);
  ByteWriter w(out);
  w.u32(uint32_t(sp_bytes.size()));
  w.bytes(sp_bytes);
  serialize_mei(mei, out);
}

void deserialize_sp_msg(std::span<const uint8_t> data, SubPicture* sp,
                        std::vector<MeiInstruction>* mei) {
  ByteReader r(data);
  const uint32_t sp_len = r.u32();
  *sp = SubPicture::deserialize(r.bytes(sp_len));
  *mei = deserialize_mei(data.subspan(4 + sp_len));
}

}  // namespace

ClusterPipeline::ClusterPipeline(const wall::TileGeometry& geo, int k,
                                 std::span<const uint8_t> es)
    : geo_(geo), k_(k), es_(es) {
  PDW_CHECK_GE(k, 1);
}

ClusterStats ClusterPipeline::run(const TileDisplayFn& on_display) {
  RootSplitter root(es_);
  const int tiles = geo_.tiles();
  const int total_pictures = root.picture_count();
  net::Fabric fabric(nodes());
  std::mutex display_mu;

  WallTimer timer;

  // Setup: every bulk receiver posts its two receive buffers before the
  // stream starts (in GM this happens during connection establishment).
  for (int s = 0; s < k_; ++s) {
    fabric.post_receive(splitter_node(s));
    fabric.post_receive(splitter_node(s));
  }
  for (int t = 0; t < tiles; ++t) {
    fabric.post_receive(decoder_node(t));
    fabric.post_receive(decoder_node(t));
  }

  // --- Root splitter thread (Table 3, root) --------------------------------
  std::thread root_thread([&] {
    std::vector<uint8_t> send_buffer;
    int a = 0;
    for (int i = 0; i < total_pictures; ++i) {
      const auto span = root.picture(i);
      send_buffer.assign(span.begin(), span.end());  // "Copy P to send buffer"
      if (i > 0) {
        net::Message ack;
        PDW_CHECK(fabric.receive(root_node(), &ack));
        PDW_CHECK_EQ(ack.type, int(kAckMsg));
      }
      net::Message msg;
      msg.type = kPictureMsg;
      msg.seq = uint32_t(i);
      msg.aux = uint16_t((a + 1) % k_);  // NSID
      msg.bulk = true;
      msg.payload = send_buffer;
      fabric.send(root_node(), splitter_node(a), std::move(msg));
      a = (a + 1) % k_;
    }
    for (int s = 0; s < k_; ++s) {
      net::Message end;
      end.type = kEndMsg;
      fabric.send(root_node(), splitter_node(s), std::move(end));
    }
  });

  // --- Second-level splitter threads (Table 3, splitter) -------------------
  std::vector<std::thread> splitter_threads;
  for (int s = 0; s < k_; ++s) {
    splitter_threads.emplace_back([&, s] {
      MacroblockSplitter splitter(geo_);
      splitter.set_stream_info(root.stream_info());
      const int self = splitter_node(s);
      // Acks and pictures interleave in the mailbox; stash each kind while
      // looking for the other.
      std::deque<net::Message> stashed_acks;
      std::deque<net::Message> stashed_pictures;

      while (true) {
        net::Message msg;
        // Pull the next picture (or END), stashing acks.
        bool got = false;
        if (!stashed_pictures.empty()) {
          msg = std::move(stashed_pictures.front());
          stashed_pictures.pop_front();
          got = true;
        }
        while (!got && fabric.receive(self, &msg)) {
          if (msg.type == kPictureMsg || msg.type == kEndMsg) {
            got = true;
            break;
          }
          PDW_CHECK_EQ(msg.type, int(kAckMsg));
          stashed_acks.push_back(std::move(msg));
        }
        PDW_CHECK(got) << "fabric shut down before END";
        if (msg.type == kEndMsg) break;

        fabric.post_receive(self);  // recycle the previous receive buffer
        net::Message ack;
        ack.type = kAckMsg;
        fabric.send(self, root_node(), std::move(ack));  // go-ahead to root

        const uint32_t i = msg.seq;
        const int anid = msg.aux;  // NSID becomes the ANID we forward
        SplitResult result = splitter.split(msg.payload, i);

        // Wait for ACK from all decoders, except for the very first picture
        // in the stream (those acks were redirected to us by the previous
        // picture's ANID).
        if (i != 0) {
          int needed = tiles;
          while (needed > 0 && !stashed_acks.empty()) {
            stashed_acks.pop_front();
            --needed;
          }
          while (needed > 0) {
            net::Message m;
            PDW_CHECK(fabric.receive(self, &m));
            if (m.type == kAckMsg) {
              --needed;
            } else {
              PDW_CHECK(m.type == kPictureMsg || m.type == kEndMsg);
              stashed_pictures.push_back(std::move(m));
            }
          }
        }

        for (int d = 0; d < tiles; ++d) {
          net::Message sp_msg;
          sp_msg.type = kSubPictureMsg;
          sp_msg.seq = i;
          sp_msg.aux = uint16_t(anid);
          sp_msg.bulk = true;
          serialize_sp_msg(result.subpictures[size_t(d)],
                           result.mei[size_t(d)], &sp_msg.payload);
          fabric.send(self, decoder_node(d), std::move(sp_msg));
        }
      }
    });
  }

  // --- Decoder threads (Table 3, decoder) -----------------------------------
  std::vector<std::thread> decoder_threads;
  for (int t = 0; t < tiles; ++t) {
    decoder_threads.emplace_back([&, t] {
      TileDecoder decoder(geo_, t, root.stream_info());
      const int self = decoder_node(t);

      // Exchange messages may arrive up to one picture early (the paper's
      // "no two decoders are off by more than one frame"); stash by seq.
      // Sub-pictures arriving while we wait for exchanges are stashed too.
      std::unordered_map<uint32_t, std::vector<net::Message>> exchanges;
      std::deque<net::Message> stashed_sps;

      const auto display =
          [&](const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
            if (!on_display) return;
            std::lock_guard<std::mutex> lock(display_mu);
            on_display(t, tf, info);
          };

      for (int done = 0; done < total_pictures; ++done) {
        // Receive the next sub-picture.
        net::Message msg;
        if (!stashed_sps.empty()) {
          msg = std::move(stashed_sps.front());
          stashed_sps.pop_front();
        } else {
          while (true) {
            PDW_CHECK(fabric.receive(self, &msg)) << "fabric shutdown mid-stream";
            if (msg.type == kSubPictureMsg) break;
            PDW_CHECK_EQ(msg.type, int(kExchangeMsg));
            exchanges[msg.seq].push_back(std::move(msg));
          }
        }
        const uint32_t i = msg.seq;
        PDW_CHECK_EQ(i, uint32_t(done)) << "out-of-order sub-picture";
        fabric.post_receive(self);  // recycle

        // Ack the splitter that owns the NEXT picture (ANID redirection).
        net::Message ack;
        ack.type = kAckMsg;
        fabric.send(self, splitter_node(msg.aux % uint16_t(k_)),
                    std::move(ack));

        SubPicture sp;
        std::vector<MeiInstruction> mei;
        deserialize_sp_msg(msg.payload, &sp, &mei);

        // Execute SEND instructions first (reference data is in already
        // decoded pictures), batched per destination decoder.
        std::unordered_map<int, std::vector<ExchangeEntry>> outgoing;
        std::unordered_set<int> expected_sources;
        for (const MeiInstruction& instr : mei) {
          if (instr.op == MeiOp::kSend) {
            ExchangeEntry e;
            e.instr = instr;
            e.px = decoder.extract_for_send(sp.info, instr);
            outgoing[instr.peer].push_back(e);
          } else {
            expected_sources.insert(int(instr.peer));
          }
        }
        for (auto& [peer, entries] : outgoing) {
          net::Message ex;
          ex.type = kExchangeMsg;
          ex.seq = i;
          serialize_exchange(entries, &ex.payload);
          fabric.send(self, decoder_node(peer), std::move(ex));
        }

        // Collect the exchange messages this picture needs (one per source
        // decoder that has SENDs for us).
        auto& arrived = exchanges[i];
        while (true) {
          std::unordered_set<int> have;
          for (const net::Message& m : arrived) {
            // Node id -> tile index.
            have.insert(m.src - (1 + k_));
          }
          bool complete = true;
          for (int src : expected_sources)
            if (!have.count(src)) complete = false;
          if (complete) break;
          net::Message m;
          PDW_CHECK(fabric.receive(self, &m)) << "fabric shutdown awaiting exchange";
          if (m.type == kExchangeMsg) {
            exchanges[m.seq].push_back(std::move(m));
          } else {
            PDW_CHECK_EQ(m.type, int(kSubPictureMsg));
            stashed_sps.push_back(std::move(m));
          }
        }
        for (const net::Message& m : arrived)
          for (const ExchangeEntry& e : deserialize_exchange(m.payload))
            decoder.add_halo_mb(e.instr, e.px);
        exchanges.erase(i);

        decoder.decode(sp, display);
      }
      decoder.flush(display);
    });
  }

  root_thread.join();
  for (auto& th : splitter_threads) th.join();
  for (auto& th : decoder_threads) th.join();
  fabric.shutdown();

  ClusterStats stats;
  stats.pictures = total_pictures;
  stats.wall_seconds = timer.seconds();
  stats.fps = double(total_pictures) / stats.wall_seconds;
  stats.nodes = nodes();
  for (int nid = 0; nid < nodes(); ++nid)
    stats.node_counters.push_back(fabric.counters(nid));
  stats.traffic_matrix = fabric.traffic_matrix();
  return stats;
}

}  // namespace pdw::core
