#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/timing.h"
#include "core/mb_splitter.h"
#include "mem/pool.h"
#include "core/root_splitter.h"
#include "obs/instruments.h"
#include "obs/trace.h"
#include "proto/wire.h"

namespace pdw::core {

namespace {

using proto::AnyMsg;
using proto::Outgoing;

void accumulate(net::ReliableStats* into, const net::ReliableStats& s) {
  into->sent += s.sent;
  into->retransmits += s.retransmits;
  into->crc_drops += s.crc_drops;
  into->dup_drops += s.dup_drops;
  into->reordered += s.reordered;
  into->abandoned += s.abandoned;
  into->no_credit += s.no_credit;
  into->holes += s.holes;
}

struct Shared {
  std::mutex mu;  // guards recoveries
  std::vector<RecoveryEvent> recoveries;
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> skipped{0};
  std::vector<net::ReliableStats> ep_stats;  // by node, written pre-join
  std::atomic<bool> root_stop{false};
  // Decoder threads done with their stream (finished or killed). They then
  // stay resident t-acking peer retransmissions until fabric shutdown, so a
  // slow retransmit to an already-finished node is never falsely abandoned.
  std::atomic<int> decoders_done{0};
  std::mutex acct_mu;  // guards acct
  proto::WireAccounting acct;
};

// Map a state-machine emission onto the transport and record it.
void emit(net::ReliableEndpoint& ep, Shared& shared, int src, Outgoing o) {
  {
    std::lock_guard<std::mutex> lock(shared.acct_mu);
    shared.acct.record(src, o.dst, o.msg.type, o.msg.body.size());
  }
  net::Message m;
  m.type = int(o.msg.type);
  m.seq = o.msg.seq;
  m.aux = o.msg.aux;
  m.stream = o.msg.stream;
  m.bulk = o.msg.bulk;
  m.payload = std::move(o.msg.body);
  if (o.reliable)
    ep.send(o.dst, std::move(m));
  else
    ep.send_unreliable(o.dst, std::move(m));
}

// Exchanges are built by the host (they carry extracted pixels), so they
// are recorded with their typed form to feed the per-picture matrices.
void emit_exchange(net::ReliableEndpoint& ep, Shared& shared, int src,
                   int dst, const proto::ExchangeMsg& msg) {
  {
    std::lock_guard<std::mutex> lock(shared.acct_mu);
    shared.acct.record_exchange(src, dst, msg);
  }
  proto::Packed p = proto::pack(msg);
  net::Message m;
  m.type = int(p.type);
  m.seq = p.seq;
  m.aux = p.aux;
  m.stream = p.stream;
  m.bulk = p.bulk;
  m.payload = std::move(p.body);
  ep.send(dst, std::move(m));
}

// Decode a received wire body. The transport CRC-verified it, so a decode
// failure is a local protocol bug, not damage — crash loudly.
AnyMsg decode_trusted(const net::Message& m) {
  std::optional<AnyMsg> msg = proto::decode_any(m.payload);
  PDW_CHECK(msg.has_value()) << " undecodable wire message type " << m.type;
  return std::move(*msg);
}

// --- Root host (Table 3, root) + health monitor ----------------------------

struct RootHost {
  net::Fabric& fabric;
  Shared& shared;
  const WallTimer& timer;
  const RootSplitter& root;
  proto::Topology topo;
  net::ReliableEndpoint ep;
  proto::RootNode node;

  obs::RootInstruments inst;

  RootHost(net::Fabric* f, Shared* sh, const WallTimer* t,
           const RootSplitter* r, const proto::Topology& tp,
           const net::ReliableConfig& rc, const proto::RootNode::Options& ro,
           std::vector<proto::PictureMeta> metas,
           obs::MetricsRegistry* metrics)
      : fabric(*f),
        shared(*sh),
        timer(*t),
        root(*r),
        topo(tp),
        ep(f, tp.root(), rc),
        node(tp, ro, std::move(metas), t->seconds()) {
    node.set_metrics(metrics);
    inst.resolve(obs::registry_or_global(metrics), tp.root(), 0);
  }

  void apply(proto::RootNode::Step step) {
    for (const proto::RootNode::Death& d : step.deaths) {
      fabric.kill(d.node);  // fence: nothing more in or out of the corpse
      ep.forget_peer(d.node);
      std::lock_guard<std::mutex> lock(shared.mu);
      shared.recoveries.push_back(RecoveryEvent{
          timer.seconds(), d.dead_tile, d.adopter_tile, d.resync_pic, 0});
    }
    for (Outgoing& o : step.send) emit(ep, shared, topo.root(), std::move(o));
  }

  void pump(double timeout) {
    net::Message m;
    if (ep.recv(&m, timeout) == net::ReliableEndpoint::Status::kMessage)
      apply(node.on_message(m.src, decode_trusted(m), timer.seconds()));
    ep.take_abandoned();  // sends to nodes that died mid-broadcast
    apply(node.on_tick(timer.seconds()));
  }

  void run() {
    while (!node.stream_done()) {
      const uint32_t pic = node.cursor();
      const auto span = root.picture(int(pic));
      {
        PDW_TRACE_SPAN(obs::span::kGoAheadWait, topo.root(), pic);
        WallTimer wait;
        while (!node.may_dispatch()) pump(0.005);
        if (inst.go_ahead_wait_ns)
          inst.go_ahead_wait_ns->observe(uint64_t(wait.seconds() * 1e9));
      }
      Outgoing out;
      {
        // "Copy P to send buf" — the one copy: the ES span is packed straight
        // into a pooled wire body that the splitter's sub-pictures then view.
        PDW_TRACE_SPAN(obs::span::kCopyPic, topo.root(), pic);
        out = node.dispatch(span);
      }
      emit(ep, shared, topo.root(), std::move(out));
      apply(node.on_tick(timer.seconds()));
    }
    for (Outgoing& o : node.end_of_stream())
      emit(ep, shared, topo.root(), std::move(o));
    // Phase B: keep the health monitor (and our transport) alive until every
    // decoder thread has been joined — a decoder blocked on a dead peer is
    // unblocked by a death notice that only this loop can produce. Exit only
    // once every decoder is accounted for (finished or declared dead).
    while (!shared.root_stop.load() || !node.all_reported()) pump(0.01);
    shared.ep_stats[size_t(topo.root())] = ep.stats();
  }
};

// --- Splitter host (Table 3, splitter) -------------------------------------

struct SplitterHost {
  net::Fabric& fabric;
  Shared& shared;
  proto::Topology topo;
  int index;
  net::ReliableEndpoint ep;
  proto::SplitterNode node;
  MacroblockSplitter splitter;

  obs::SplitterInstruments inst;
  obs::Gauge* queue_depth = nullptr;

  SplitterHost(net::Fabric* f, Shared* sh, const proto::Topology& tp, int s,
               const net::ReliableConfig& rc, const wall::TileGeometry& geo,
               const StreamInfo& info, obs::MetricsRegistry* metrics)
      : fabric(*f),
        shared(*sh),
        topo(tp),
        index(s),
        ep(f, tp.splitter(s), rc),
        node(tp, s),
        splitter(geo) {
    splitter.set_stream_info(info);
    node.set_metrics(metrics);
    obs::MetricsRegistry& r = obs::registry_or_global(metrics);
    inst.resolve(r, self(), 0);
    queue_depth =
        &r.gauge(obs::family::kQueueDepth, obs::Labels{self(), 0});
  }

  int self() const { return topo.splitter(index); }

  void apply(proto::SplitterNode::Step step) {
    for (int n : step.forget) ep.forget_peer(n);
    for (Outgoing& o : step.send) emit(ep, shared, self(), std::move(o));
  }

  void handle(net::Message& m) {
    if (m.bulk) fabric.post_receive(self());  // recycle the receive buffer
    apply(node.on_message(m.src, decode_trusted(m), 0.0));
  }

  void pump(double timeout) {
    net::Message m;
    if (ep.recv(&m, timeout) == net::ReliableEndpoint::Status::kMessage)
      handle(m);
    for (const net::AbandonedSend& ab : ep.take_abandoned())
      apply(node.on_send_failure(proto::SendFailure{
          ab.dst, proto::MsgType(ab.type), ab.seq, ab.aux}));
  }

  void run() {
    while (true) {
      while (!node.has_picture() && !node.ended()) pump(0.02);
      queue_depth->set(node.queue_depth());
      if (!node.has_picture()) break;
      Outgoing go_ahead;
      proto::PictureMsg pic = node.pop_picture(&go_ahead);
      emit(ep, shared, self(), std::move(go_ahead));
      const uint32_t i = pic.pic_index;

      SplitResult result;
      {
        PDW_TRACE_SPAN(obs::span::kSplitPic, self(), i);
        WallTimer split_timer;
        result = splitter.split(pic.coded, i);
        if (inst.split_ns)
          inst.split_ns->observe(uint64_t(split_timer.seconds() * 1e9));
      }
      if (result.status.ok() && inst.pictures_split)
        inst.pictures_split->add();

      // ANID gating: wait for the previous picture's ack from every live
      // decoder (redirection made them land here).
      {
        PDW_TRACE_SPAN(obs::span::kAnidWait, self(), i);
        while (!node.prev_acked(i)) pump(0.02);
      }

      if (!result.status.ok()) {
        // Undecodable headers: nobody can split or decode the picture.
        apply({node.skip_picture(i), {}});
        continue;
      }
      PDW_TRACE_SPAN(obs::span::kRouteSp, self(), i);
      for (const proto::SplitterNode::SpRoute& rt : node.routes(i)) {
        // Serialize the sub-picture straight into the pooled wire body — no
        // intermediate SpMsg byte vector.
        proto::Packed p =
            proto::pack_sp(i, uint16_t(rt.tile), /*stream=*/0,
                           result.subpictures[size_t(rt.tile)],
                           result.mei[size_t(rt.tile)]);
        if (inst.sp_bytes_sent) inst.sp_bytes_sent->add(p.body.size());
        emit(ep, shared, self(), Outgoing{rt.dst_node, true, std::move(p)});
      }
    }

    // Drain: ack decoders' final picture acks and absorb stragglers until
    // the main thread shuts the fabric down.
    while (true) {
      net::Message m;
      const auto st = ep.recv(&m, 0.02);
      if (st == net::ReliableEndpoint::Status::kShutdown ||
          st == net::ReliableEndpoint::Status::kDead)
        break;
      if (st == net::ReliableEndpoint::Status::kMessage) handle(m);
      ep.take_abandoned();
    }
    shared.ep_stats[size_t(self())] = ep.stats();
  }
};

// --- Decoder host (Table 3, decoder) ---------------------------------------

struct DecoderHost {
  net::Fabric& fabric;
  Shared& shared;
  const WallTimer& timer;
  proto::Topology topo;
  int home_tile;
  const wall::TileGeometry& geo;
  const StreamInfo& info;
  const ClusterPipeline::TileDisplayFn& on_display;
  std::mutex& display_mu;
  double heartbeat_interval_s;
  net::ReliableEndpoint ep;
  proto::DecoderNode node;
  std::map<int, std::unique_ptr<TileDecoder>> decs;  // by tile
  std::map<int, SubPicture> subs;  // current picture's sub-picture, by tile
  bool gone = false;  // killed (or fabric torn down) — exit silently

  obs::DecoderInstruments inst;
  obs::Gauge* queue_depth = nullptr;

  DecoderHost(net::Fabric* f, Shared* sh, const WallTimer* t,
              const proto::Topology& tp, int tile,
              const net::ReliableConfig& rc, const wall::TileGeometry& g,
              const StreamInfo& si,
              const ClusterPipeline::TileDisplayFn& display, std::mutex* dmu,
              const proto::DecoderNode::Options& dopts,
              obs::MetricsRegistry* metrics)
      : fabric(*f),
        shared(*sh),
        timer(*t),
        topo(tp),
        home_tile(tile),
        geo(g),
        info(si),
        on_display(display),
        display_mu(*dmu),
        heartbeat_interval_s(dopts.heartbeat_interval_s),
        ep(f, tp.decoder(tile), rc),
        node(tp, tile, dopts) {
    node.set_metrics(metrics);
    obs::MetricsRegistry& r = obs::registry_or_global(metrics);
    inst.resolve(r, self(), 0);
    queue_depth =
        &r.gauge(obs::family::kQueueDepth, obs::Labels{self(), 0});
  }

  int self() const { return topo.decoder(home_tile); }

  TileDecoder::DisplayFn display_fn(int tile) {
    return TileDecoder::DisplayFn(
        [this, tile](const mpeg2::TileFrame& tf, const TileDisplayInfo& di) {
          if (di.degraded)
            shared.degraded.fetch_add(1, std::memory_order_relaxed);
          if (!on_display) return;
          std::lock_guard<std::mutex> lock(display_mu);
          on_display(tile, tf, di);
        });
  }

  TileDecoder& dec(int tile) {
    auto& slot = decs[tile];
    if (!slot)
      slot = std::make_unique<TileDecoder>(geo, tile, info,
                                           HaloPolicy::kConceal);
    return *slot;
  }

  void apply(proto::DecoderNode::Step step) {
    for (int n : step.forget) ep.forget_peer(n);
    if (step.adopt_tile.has_value()) {
      // Headroom for the adopted tile's second sub-picture stream.
      fabric.post_receive(self());
      fabric.post_receive(self());
    }
    for (Outgoing& o : step.send) emit(ep, shared, self(), std::move(o));
  }

  // Pump the transport once; returns false when this node is dead.
  bool pump(double timeout) {
    net::Message m;
    switch (ep.recv(&m, timeout)) {
      case net::ReliableEndpoint::Status::kDead:
      case net::ReliableEndpoint::Status::kShutdown:
        gone = true;
        return false;
      case net::ReliableEndpoint::Status::kTimeout:
        break;
      case net::ReliableEndpoint::Status::kMessage:
        if (m.bulk) fabric.post_receive(self());  // recycle the buffer
        apply(node.on_message(m.src, decode_trusted(m), timer.seconds()));
        break;
    }
    ep.take_abandoned();
    for (Outgoing& o : node.on_tick(timer.seconds()))
      emit(ep, shared, self(), std::move(o));  // heartbeat when due
    return true;
  }

  // Phase 1 for one tile: resolve the sub-picture and execute its MEI SENDs.
  void serve(const proto::DecoderNode::OwnedTile& ot, uint32_t i) {
    proto::DecoderNode::SpState st;
    {
      PDW_TRACE_SPAN(obs::span::kRecvSp, self(), i);
      while ((st = node.poll_sp(ot.tile, i)) ==
                 proto::DecoderNode::SpState::kPending &&
             pump(heartbeat_interval_s)) {
      }
    }
    if (gone || st != proto::DecoderNode::SpState::kReady) return;
    PDW_TRACE_SPAN(obs::span::kServeSp, self(), i);
    WallTimer serve_timer;
    TileDecoder& d = dec(ot.tile);
    const proto::SpMsg& sp = node.sp(ot.tile);
    subs[ot.tile] = SubPicture::deserialize(sp.subpicture);
    const PicInfo& pic_info = subs[ot.tile].info;

    std::map<int, proto::ExchangeMsg> outgoing;  // by destination tile
    for (const MeiInstruction& instr : sp.mei) {
      if (instr.op == MeiOp::kSend) {
        proto::ExchangeEntry e;
        e.px = d.try_extract_for_send(pic_info, instr, &e.tainted);
        e.instr = instr;
        e.instr.op = MeiOp::kRecv;
        e.instr.peer = uint16_t(ot.tile);
        proto::ExchangeMsg& m = outgoing[int(instr.peer)];
        if (m.entries.empty()) {
          m.pic_index = i;
          m.src_tile = uint16_t(ot.tile);
          m.dst_tile = instr.peer;
        }
        m.entries.push_back(std::move(e));
      } else if (instr.op == MeiOp::kConceal) {
        // Damaged-slice macroblock: stage for the decode phase (the peer
        // field carries fill bytes, not a tile).
        d.stage_conceal(instr);
      }
    }
    for (auto& [peer, m] : outgoing) {
      const proto::DecoderNode::ExchangeRoute rt = node.route_exchange(peer, i);
      switch (rt.kind) {
        case proto::DecoderNode::ExchangeRoute::Kind::kDrop:
          break;  // nobody serves that picture
        case proto::DecoderNode::ExchangeRoute::Kind::kLocal:
          // Tiles hosted on this very node exchange halos in memory.
          for (const proto::DecoderNode::OwnedTile& ot2 : node.owned()) {
            if (ot2.tile != peer || !node.tile_active(ot2, i)) continue;
            TileDecoder& d2 = dec(ot2.tile);
            for (const proto::ExchangeEntry& e : m.entries)
              d2.add_halo_mb(e.instr, e.px, e.tainted);
          }
          break;
        case proto::DecoderNode::ExchangeRoute::Kind::kRemote:
          if (inst.exchange_bytes_sent)
            inst.exchange_bytes_sent->add(
                proto::exchange_msg_wire_bytes(m.entries.size()));
          emit_exchange(ep, shared, self(), rt.dst_node, m);
          break;
      }
    }
    if (inst.serve_ns)
      inst.serve_ns->observe(uint64_t(serve_timer.seconds() * 1e9));
  }

  // Phase 2 for one tile: collect the halos it still expects, then decode.
  void work(const proto::DecoderNode::OwnedTile& ot, uint32_t i) {
    if (!node.have_sp(ot.tile)) {
      if (node.skipped(ot.tile)) {
        shared.skipped.fetch_add(1, std::memory_order_relaxed);
        if (inst.pictures_skipped) inst.pictures_skipped->add();
        dec(ot.tile).skip_picture(i, display_fn(ot.tile));
      }
      return;
    }
    {
      PDW_TRACE_SPAN(obs::span::kWaitHalo, self(), i);
      while (!node.halos_complete(ot.tile, i) && pump(heartbeat_interval_s)) {
      }
    }
    if (gone) return;
    for (const proto::ExchangeMsg& m : node.take_exchanges(ot.tile, i)) {
      if (inst.exchange_bytes_recv)
        inst.exchange_bytes_recv->add(
            proto::exchange_msg_wire_bytes(m.entries.size()));
      for (const proto::ExchangeEntry& e : m.entries)
        dec(ot.tile).add_halo_mb(e.instr, e.px, e.tainted);
    }
    {
      PDW_TRACE_SPAN(obs::span::kDecodeSp, self(), i);
      WallTimer decode_timer;
      dec(ot.tile).decode(subs.at(ot.tile), display_fn(ot.tile));
      if (inst.decode_ns)
        inst.decode_ns->observe(uint64_t(decode_timer.seconds() * 1e9));
    }
    if (inst.pictures_decoded) inst.pictures_decoded->add();
    if (inst.concealed_mbs)
      inst.concealed_mbs->add(
          uint64_t(dec(ot.tile).concealed_mbs_last_picture()));
    if (ot.tile != home_tile && i == ot.active_from) {
      // First adopted picture decoded: stamp the recovery latency.
      std::lock_guard<std::mutex> lock(shared.mu);
      for (RecoveryEvent& ev : shared.recoveries)
        if (ev.dead_tile == ot.tile && ev.resync_time_s == 0)
          ev.resync_time_s = timer.seconds();
    }
  }

  void run(uint32_t total_pictures) {
    for (uint32_t i = 0; i < total_pictures && !gone; ++i) {
      // Phase 1 first for every owned tile, so no owned tile's decode can
      // starve another tile hosted on this same node. Indexed loops:
      // adoption may grow owned() mid-picture.
      for (size_t x = 0; x < node.owned().size() && !gone; ++x) {
        const proto::DecoderNode::OwnedTile ot = node.owned()[x];
        if (node.tile_active(ot, i)) serve(ot, i);
      }
      if (gone) break;
      for (size_t x = 0; x < node.owned().size() && !gone; ++x) {
        const proto::DecoderNode::OwnedTile ot = node.owned()[x];
        if (node.tile_active(ot, i)) work(ot, i);
      }
      if (gone) break;
      // Buffer GC plus the ack to the splitter owning the NEXT picture
      // (ANID redirection).
      {
        PDW_TRACE_SPAN(obs::span::kAckPic, self(), i);
        apply({node.finish_picture(i), {}, std::nullopt});
      }
      queue_depth->set(node.pending_sps());
    }

    if (!gone) {
      for (const proto::DecoderNode::OwnedTile& ot : node.owned())
        if (decs.count(ot.tile)) dec(ot.tile).flush(display_fn(ot.tile));
      apply({node.finished(), {}, std::nullopt});
    }
    shared.decoders_done.fetch_add(1, std::memory_order_release);
    // Stay resident until fabric shutdown: retransmit our own unacked tail
    // (last ack, finished notice, trailing exchanges) and keep t-acking
    // peers' retransmissions — a peer whose ack to us was lost would
    // otherwise retry into a dead mailbox and falsely abandon.
    while (!gone) {
      net::Message m;
      const auto st = ep.recv(&m, 0.02);
      if (st == net::ReliableEndpoint::Status::kDead ||
          st == net::ReliableEndpoint::Status::kShutdown)
        break;
      ep.take_abandoned();
      // Keep heartbeating until the finished notice is acked (the root
      // received it and exempted us from monitoring); then fall silent so
      // the fabric can reach quiescence for an orderly teardown.
      if (ep.unacked() > 0)
        for (Outgoing& o : node.on_tick(timer.seconds()))
          emit(ep, shared, self(), std::move(o));
    }
    shared.ep_stats[size_t(self())] = ep.stats();
  }
};

}  // namespace

ClusterPipeline::ClusterPipeline(const wall::TileGeometry& geo, int k,
                                 std::span<const uint8_t> es, FtOptions ft)
    : geo_(geo), k_(k), topo_{k, geo.tiles()}, es_(es), ft_(std::move(ft)) {
  PDW_CHECK_GE(k, 1);
}

ClusterStats ClusterPipeline::run(const TileDisplayFn& on_display) {
  RootSplitter root(es_);
  const int tiles = geo_.tiles();
  const int total_pictures = root.picture_count();
  const ProtocolConfig cfg = ft_.protocol;
  net::Fabric fabric(nodes());
  if (ft_.injector) fabric.set_fault_injector(ft_.injector);
  std::mutex display_mu;
  Shared shared;
  shared.ep_stats.resize(size_t(nodes()));
  shared.acct.reset(nodes());
  if (ft_.per_picture_exchange) shared.acct.per_picture_tiles = tiles;

  WallTimer timer;

  // Setup: prewarm the wire pool (the GM analog of pre-posting buffers) —
  // mint every size class up to twice the largest coded picture so the
  // steady state never misses, whatever peaks thread scheduling produces.
  // The count covers the sub-picture classes, whose peak concurrency
  // scales with tiles (every in-flight picture fans out one body per
  // tile); prewarm itself caps the picture-sized classes by bytes.
  {
    size_t max_pic = 0;
    for (int i = 0; i < total_pictures; ++i)
      max_pic = std::max(max_pic, root.picture(i).size());
    mem::BufferPool::wire().prewarm(max_pic * 2, 2 * nodes() + tiles + 8);
  }

  // Every bulk receiver posts its two receive buffers before the stream
  // starts (in GM this happens during connection establishment).
  for (int s = 0; s < k_; ++s) {
    fabric.post_receive(splitter_node(s));
    fabric.post_receive(splitter_node(s));
  }
  for (int t = 0; t < tiles; ++t) {
    fabric.post_receive(decoder_node(t));
    fabric.post_receive(decoder_node(t));
  }

  std::vector<proto::PictureMeta> metas(static_cast<size_t>(total_pictures));
  for (int i = 0; i < total_pictures; ++i)
    metas[size_t(i)].has_gop_header = root.span(i).has_gop_header;

  std::thread root_thread([&] {
    proto::RootNode::Options ro;
    ro.heartbeat_timeout_s = cfg.heartbeat_timeout_s;
    ro.recovery = ft_.recovery;
    RootHost host(&fabric, &shared, &timer, &root, topo_, cfg.reliable, ro,
                  std::move(metas), ft_.metrics);
    host.run();
  });

  std::vector<std::thread> splitter_threads;
  for (int s = 0; s < k_; ++s) {
    splitter_threads.emplace_back([&, s] {
      SplitterHost host(&fabric, &shared, topo_, s, cfg.reliable, geo_,
                        root.stream_info(), ft_.metrics);
      host.run();
    });
  }

  std::vector<std::thread> decoder_threads;
  for (int t = 0; t < tiles; ++t) {
    decoder_threads.emplace_back([&, t] {
      proto::DecoderNode::Options dopts;
      dopts.heartbeat_interval_s = cfg.heartbeat_interval_s;
      dopts.total_pictures = uint32_t(total_pictures);
      DecoderHost host(&fabric, &shared, &timer, topo_, t, cfg.reliable, geo_,
                       root.stream_info(), on_display, &display_mu, dopts,
                       ft_.metrics);
      host.run(uint32_t(total_pictures));
    });
  }

  // Decoders stay resident (t-acking) after finishing, so completion is
  // signalled by a counter rather than join: every decoder thread counts
  // itself done exactly once, whether it finished the stream or was killed.
  while (shared.decoders_done.load(std::memory_order_acquire) < tiles)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  shared.root_stop.store(true);
  root_thread.join();
  // The root consumed every finished notice before exiting; what remains in
  // flight is the tail of transport acks. Give those a bounded window to be
  // consumed so shutdown discards nothing (keeps traffic accounting
  // conserved); fault-delayed messages may legitimately never drain.
  const auto drain_start = std::chrono::steady_clock::now();
  while (!fabric.quiescent() &&
         std::chrono::steady_clock::now() - drain_start <
             std::chrono::milliseconds(250))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  fabric.shutdown();
  for (auto& th : decoder_threads) th.join();
  for (auto& th : splitter_threads) th.join();

  ClusterStats stats;
  stats.pictures = total_pictures;
  stats.wall_seconds = timer.seconds();
  stats.fps = double(total_pictures) / stats.wall_seconds;
  stats.nodes = nodes();
  for (int nid = 0; nid < nodes(); ++nid)
    stats.node_counters.push_back(fabric.counters(nid));
  stats.traffic_matrix = fabric.traffic_matrix();
  for (const net::ReliableStats& s : shared.ep_stats)
    accumulate(&stats.ft.transport, s);
  stats.ft.degraded_frames = shared.degraded.load();
  stats.ft.skipped_pictures = shared.skipped.load();
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    stats.ft.recoveries = shared.recoveries;
  }
  {
    std::lock_guard<std::mutex> lock(shared.acct_mu);
    stats.wire = std::move(shared.acct);
  }
  // Control-plane overhead (heartbeat bytes) as a registry family, so a
  // live dashboard sees it without digging into WireAccounting.
  obs::registry_or_global(ft_.metrics)
      .counter(obs::family::kControlBytes)
      .add(stats.wire.control.total());
  return stats;
}

}  // namespace pdw::core
