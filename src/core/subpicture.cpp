#include "core/subpicture.h"

#include "common/bytes.h"

namespace pdw::core {

using mpeg2::MbState;

mpeg2::PictureCodingExt PicInfo::to_pce() const {
  mpeg2::PictureCodingExt pce;
  for (int s = 0; s < 2; ++s)
    for (int t = 0; t < 2; ++t) pce.f_code[s][t] = f_code[s][t];
  pce.intra_dc_precision = intra_dc_precision;
  pce.q_scale_type = q_scale_type;
  pce.alternate_scan = alternate_scan;
  return pce;
}

PicInfo PicInfo::from(uint32_t index, const mpeg2::PictureHeader& ph,
                      const mpeg2::PictureCodingExt& pce) {
  PicInfo info;
  info.pic_index = index;
  info.type = ph.type;
  for (int s = 0; s < 2; ++s)
    for (int t = 0; t < 2; ++t) info.f_code[s][t] = uint8_t(pce.f_code[s][t]);
  info.intra_dc_precision = uint8_t(pce.intra_dc_precision);
  info.q_scale_type = pce.q_scale_type;
  info.alternate_scan = pce.alternate_scan;
  info.temporal_reference = uint16_t(ph.temporal_reference);
  return info;
}

namespace {

void write_state(ByteWriter& w, const MbState& st) {
  for (int c = 0; c < 3; ++c) w.i32(st.dc_pred[c]);
  for (int s = 0; s < 2; ++s)
    for (int t = 0; t < 2; ++t) w.i16(st.pmv[s][t]);
  w.u8(st.quant_scale_code);
  w.u8(st.prev_motion_flags);
}

MbState read_state(ByteReader& r) {
  MbState st;
  for (int c = 0; c < 3; ++c) st.dc_pred[c] = r.i32();
  for (int s = 0; s < 2; ++s)
    for (int t = 0; t < 2; ++t) st.pmv[s][t] = r.i16();
  st.quant_scale_code = r.u8();
  st.prev_motion_flags = r.u8();
  return st;
}

void write_pic_info(ByteWriter& w, const PicInfo& info) {
  w.u32(info.pic_index);
  w.u8(uint8_t(info.type));
  for (int s = 0; s < 2; ++s)
    for (int t = 0; t < 2; ++t) w.u8(info.f_code[s][t]);
  w.u8(info.intra_dc_precision);
  w.u8(info.q_scale_type ? 1 : 0);
  w.u8(info.alternate_scan ? 1 : 0);
  w.u16(info.temporal_reference);
}

PicInfo read_pic_info(ByteReader& r) {
  PicInfo info;
  info.pic_index = r.u32();
  info.type = mpeg2::PicType(r.u8());
  for (int s = 0; s < 2; ++s)
    for (int t = 0; t < 2; ++t) info.f_code[s][t] = r.u8();
  info.intra_dc_precision = r.u8();
  info.q_scale_type = r.u8() != 0;
  info.alternate_scan = r.u8() != 0;
  info.temporal_reference = r.u16();
  return info;
}

}  // namespace

size_t SpRun::header_wire_bytes() const {
  // state (12+8+2) + skip_bits 1 + addresses/counts (4+2+4+2+4+2) + len 4.
  return 22 + 1 + 18 + 4;
}

size_t SubPicture::wire_bytes() const {
  size_t n = 14 + 4;  // PicInfo + run count
  for (const SpRun& run : runs) n += run.header_wire_bytes() + run.payload.size();
  return n;
}

size_t SubPicture::payload_bytes() const {
  size_t n = 0;
  for (const SpRun& run : runs) n += run.payload.size();
  return n;
}

void SubPicture::serialize_into(ByteWriter* out) const {
  ByteWriter& w = *out;
  const SubPicture& sp = *this;
  write_pic_info(w, sp.info);
  w.u32(uint32_t(sp.runs.size()));
  for (const SpRun& run : sp.runs) {
    write_state(w, run.state);
    w.u8(run.skip_bits);
    w.u32(run.first_coded_addr);
    w.u16(run.num_coded);
    w.u32(run.lead_skip_addr);
    w.u16(run.lead_skip_count);
    w.u32(run.trail_skip_addr);
    w.u16(run.trail_skip_count);
    w.u32(uint32_t(run.payload.size()));
    w.bytes(run.payload);
  }
}

namespace {

// `parent` non-null: run payloads become views into its block (zero-copy);
// null: payloads are pooled copies of the spans.
SubPicture deserialize_impl(std::span<const uint8_t> data,
                            const mem::Bytes* parent) {
  ByteReader r(data);
  SubPicture sp;
  sp.info = read_pic_info(r);
  const uint32_t count = r.u32();
  sp.runs.resize(count);
  for (SpRun& run : sp.runs) {
    run.state = read_state(r);
    run.skip_bits = r.u8();
    run.first_coded_addr = r.u32();
    run.num_coded = r.u16();
    run.lead_skip_addr = r.u32();
    run.lead_skip_count = r.u16();
    run.trail_skip_addr = r.u32();
    run.trail_skip_count = r.u16();
    const uint32_t len = r.u32();
    const size_t off = r.pos();
    auto payload = r.bytes(len);
    run.payload = parent ? parent->view(off, len)
                         : mem::Bytes::copy_of(payload);
  }
  PDW_CHECK(r.done()) << "trailing bytes in sub-picture";
  return sp;
}

}  // namespace

void SubPicture::serialize(std::vector<uint8_t>* out) const {
  ByteWriter w(out);
  serialize_into(&w);
}

mem::Bytes SubPicture::serialize_pooled() const {
  const size_t n = wire_bytes();
  mem::Bytes out = mem::Bytes::alloc(n);
  ByteWriter w(out.mutable_data(), n);
  serialize_into(&w);
  PDW_CHECK_EQ(w.size(), n);
  return out;
}

SubPicture SubPicture::deserialize(std::span<const uint8_t> data) {
  return deserialize_impl(data, nullptr);
}

SubPicture SubPicture::deserialize(const mem::Bytes& data) {
  return deserialize_impl(data.span(), &data);
}

void StreamInfo::serialize(std::vector<uint8_t>* out) const {
  ByteWriter w(out);
  w.i32(seq.width);
  w.i32(seq.height);
  w.i32(seq.frame_rate_code);
  w.i32(seq.bit_rate_value);
  w.u8(seq.progressive_sequence ? 1 : 0);
  for (int i = 0; i < 64; ++i) w.u8(seq.intra_quant[size_t(i)]);
  for (int i = 0; i < 64; ++i) w.u8(seq.non_intra_quant[size_t(i)]);
}

StreamInfo StreamInfo::deserialize(std::span<const uint8_t> data) {
  ByteReader r(data);
  StreamInfo si;
  si.seq.width = r.i32();
  si.seq.height = r.i32();
  si.seq.frame_rate_code = r.i32();
  si.seq.bit_rate_value = r.i32();
  si.seq.progressive_sequence = r.u8() != 0;
  for (int i = 0; i < 64; ++i) si.seq.intra_quant[size_t(i)] = r.u8();
  for (int i = 0; i < 64; ++i) si.seq.non_intra_quant[size_t(i)] = r.u8();
  PDW_CHECK(r.done());
  return si;
}

}  // namespace pdw::core
