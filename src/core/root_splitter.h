// Root (picture-level) splitter (paper §4.1, Table 2/3).
//
// Scans the elementary stream for byte-aligned start codes only — no VLC
// parsing — and cuts it into picture-sized work units, each carrying any
// sequence/GOP headers that preceded its picture. Pictures are handed to the
// k second-level splitters round-robin; the NSID ordering protocol lives in
// the pipeline layers, not here.
#pragma once

#include <span>
#include <vector>

#include "bitstream/start_code.h"
#include "core/subpicture.h"
#include "mpeg2/types.h"

namespace pdw::core {

class RootSplitter {
 public:
  // Scans `es` (borrowed; must outlive the splitter). Pictures that precede
  // the first decodable sequence header are dropped (they cannot be split
  // without geometry). Throws BitstreamError if the stream contains no
  // pictures or no usable sequence header at all.
  explicit RootSplitter(std::span<const uint8_t> es);

  // Sequence-level info parsed from the first sequence header, distributed
  // to splitters and decoders before the first picture.
  const StreamInfo& stream_info() const { return info_; }

  int picture_count() const { return int(spans_.size()); }
  std::span<const uint8_t> picture(int i) const {
    const PictureSpan& s = spans_[size_t(i)];
    return es_.subspan(s.begin, s.end - s.begin);
  }
  const PictureSpan& span(int i) const { return spans_[size_t(i)]; }

  // Coding type peeked by the start-code scan — available *before* any
  // splitting, which is what lets the shed ladder drop a picture for free.
  // Truncated or out-of-range headers report I, the conservative choice:
  // a picture the shed layer cannot classify is never shed.
  mpeg2::PicType picture_type(int i) const {
    const uint8_t t = spans_[size_t(i)].coding_type;
    return t >= 1 && t <= 3 ? mpeg2::PicType(t) : mpeg2::PicType::I;
  }

  // Wall-clock cost of the start-code scan, amortized per picture — the
  // root's only compute besides the output-buffer copy. Used by the cluster
  // simulator's cost model.
  double scan_seconds_per_picture() const { return scan_s_per_picture_; }

  // Pictures discarded because they preceded the first decodable sequence
  // header.
  int dropped_leading_pictures() const { return dropped_leading_; }

 private:
  std::span<const uint8_t> es_;
  std::vector<PictureSpan> spans_;
  StreamInfo info_;
  double scan_s_per_picture_ = 0;
  int dropped_leading_ = 0;
};

}  // namespace pdw::core
