// Threaded cluster pipeline: the refined algorithms of the paper's Table 3
// running on real concurrent nodes over the GM-like fabric, hardened for
// fault tolerance.
//
// Every protocol decision — round-robin dispatch and NSID stamping, ANID
// ack redirection, one-picture-ahead go-ahead gating, heartbeat monitoring,
// death detection, resynchronization-picture selection, adopt-vs-degrade
// rerouting, skip broadcasts — lives in the proto/ node state machines
// (proto/nodes.h). This file only *hosts* them: one thread per node pumps a
// net::ReliableEndpoint, decodes incoming wire messages, feeds them to its
// state machine and transmits whatever the machine returns, running the
// actual compute (splitting, pixel extraction, tile decoding) when the
// machine says the inputs are complete. The lockstep reference and the
// discrete-event simulator drive the very same machines, which keeps the
// three engines protocol-identical by construction.
//
// Transport properties (net/):
//   * two posted receive buffers per bulk receiver, recycled on receipt;
//   * every application message rides net::ReliableEndpoint — per-link
//     sequence numbers + CRC framing, ack/retransmit with capped exponential
//     backoff, duplicate suppression and in-order delivery — so a lossy,
//     reordering, corrupting fabric still presents each node with the
//     fault-free message sequence and the decoded wall stays bit-exact;
//   * a node the root declares dead is fenced off (Fabric::kill) and dropped
//     from every endpoint's retransmit queues (forget_peer).
//
// On this host the threads share one core, so this pipeline demonstrates
// correctness and protocol liveness; scalability numbers come from the
// discrete-event simulator (src/sim) replaying lockstep-measured costs.
#pragma once

#include <functional>
#include <span>

#include "common/traffic_matrix.h"
#include "core/hosts.h"
#include "core/tile_decoder.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "net/reliable.h"
#include "proto/nodes.h"
#include "wall/geometry.h"

namespace pdw::core {

struct FtStats {
  net::ReliableStats transport;   // aggregated over every node's endpoint
  uint64_t degraded_frames = 0;   // emissions flagged non-bit-exact
  uint64_t skipped_pictures = 0;  // per-tile pictures lost to abandoned sends
  std::vector<RecoveryEvent> recoveries;
};

struct ClusterStats {
  int pictures = 0;
  double wall_seconds = 0;
  double fps = 0;
  std::vector<net::NodeCounters> node_counters;  // by node id
  // Transport-level bytes (includes retransmits and transport acks).
  TrafficMatrix traffic_matrix;
  // Protocol-level emissions (heartbeats and retransmits excluded) —
  // directly comparable with LockstepPipeline::accounting().
  proto::WireAccounting wire;
  int nodes = 0;
  FtStats ft;
};

struct ProtocolConfig {
  net::ReliableConfig reliable;
  double heartbeat_interval_s = 0.02;
  // Default is "effectively never": a fault-free run must not declare
  // anything dead no matter how badly the scheduler (or a sanitizer)
  // stalls a thread. Fault tests override with something small.
  double heartbeat_timeout_s = 1e9;
};

// The policy enum lives with the rest of the protocol; core keeps the
// spelling for existing callers.
using RecoveryPolicy = proto::RecoveryPolicy;

struct FtOptions {
  ProtocolConfig protocol;
  const net::FaultInjector* injector = nullptr;  // borrowed; may be null
  RecoveryPolicy recovery = RecoveryPolicy::kAdopt;
  // Also record per-picture tile x tile exchange matrices in stats.wire
  // (test_parallel_equivalence compares them against the lockstep traces).
  bool per_picture_exchange = false;
  // Registry telemetry lands in (nullptr: the process-global one).
  obs::MetricsRegistry* metrics = nullptr;
  // Adaptive per-GOP tile rebalancing. The engine fills in `geo` itself.
  proto::RootNode::AdaptivePartition adaptive;
};

class ClusterPipeline {
 public:
  ClusterPipeline(const wall::TileGeometry& geo, int k,
                  std::span<const uint8_t> es, FtOptions ft = {});

  // Thread-safe display callback (called with an internal mutex held).
  using TileDisplayFn = core::TileDisplayFn;

  ClusterStats run(const TileDisplayFn& on_display);

  int nodes() const { return topo_.nodes(); }
  int root_node() const { return topo_.root(); }
  int splitter_node(int s) const { return topo_.splitter(s); }
  int decoder_node(int t) const { return topo_.decoder(t); }

 private:
  const wall::TileGeometry& geo_;
  int k_;
  proto::Topology topo_;
  std::span<const uint8_t> es_;
  FtOptions ft_;
};

}  // namespace pdw::core
