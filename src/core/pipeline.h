// Threaded cluster pipeline: the refined algorithms of the paper's Table 3
// running on real concurrent nodes over the GM-like fabric, hardened for
// fault tolerance.
//
// Node layout: node 0 is the root splitter (console PC), nodes 1..k the
// second-level splitters, nodes k+1..k+m*n the tile decoders. The protocol:
//   * two posted receive buffers per bulk receiver, recycled on receipt;
//   * every application message rides net::ReliableEndpoint — per-link
//     sequence numbers + CRC framing, ack/retransmit with capped exponential
//     backoff, duplicate suppression and in-order delivery — so a lossy,
//     reordering, corrupting fabric still presents each node with the
//     fault-free message sequence and the decoded wall stays bit-exact;
//   * picture ordering via ack redirection (the paper's ANID): a decoder
//     acks not the sender of a sub-picture but the splitter responsible for
//     the *next* picture, which therefore cannot send until every live
//     decoder consumed the current one;
//   * go-ahead acks gate the root to one picture ahead of the splitters
//     (NSID tells each splitter who owns the next picture);
//   * decoders heartbeat the root (fire-and-forget); the root's health
//     monitor declares a decoder dead after heartbeat_timeout_s of silence,
//     fences it off (Fabric::kill) and broadcasts a death notice carrying
//     the *resynchronization picture*: the first closed-GOP I picture the
//     root has not yet dispatched. Splitters reroute the dead tile's
//     sub-pictures to the adopter from that picture on (RecoveryPolicy::
//     kAdopt) or drop them (kDegrade); peers conceal the dead tile's halo
//     contributions before it. Because GOPs are closed, everything from the
//     resync picture's display slot onward is bit-exact again.
//
// On this host the threads share one core, so this pipeline demonstrates
// correctness and protocol liveness; scalability numbers come from the
// discrete-event simulator (src/sim) replaying lockstep-measured costs.
#pragma once

#include <functional>

#include "core/tile_decoder.h"
#include "net/fabric.h"
#include "net/reliable.h"
#include "wall/geometry.h"

namespace pdw::core {

// One node-death recovery, as observed by the runtime.
struct RecoveryEvent {
  double detect_time_s = 0;  // root declared the node dead (since run start)
  int dead_tile = -1;
  int adopter_tile = -1;     // -1: degraded mode (tile frozen, not adopted)
  uint32_t resync_pic = 0;   // first closed-GOP I not yet dispatched
  double resync_time_s = 0;  // adopter decoded resync_pic (0 if never)
};

struct FtStats {
  net::ReliableStats transport;   // aggregated over every node's endpoint
  uint64_t degraded_frames = 0;   // emissions flagged non-bit-exact
  uint64_t skipped_pictures = 0;  // per-tile pictures lost to abandoned sends
  std::vector<RecoveryEvent> recoveries;
};

struct ClusterStats {
  int pictures = 0;
  double wall_seconds = 0;
  double fps = 0;
  std::vector<net::NodeCounters> node_counters;  // by node id
  std::vector<uint64_t> traffic_matrix;          // bytes[src * nodes + dst]
  int nodes = 0;
  FtStats ft;
};

struct ProtocolConfig {
  net::ReliableConfig reliable;
  double heartbeat_interval_s = 0.02;
  // Default is "effectively never": a fault-free run must not declare
  // anything dead no matter how badly the scheduler (or a sanitizer)
  // stalls a thread. Fault tests override with something small.
  double heartbeat_timeout_s = 1e9;
};

enum class RecoveryPolicy { kAdopt, kDegrade };

struct FtOptions {
  ProtocolConfig protocol;
  const net::FaultInjector* injector = nullptr;  // borrowed; may be null
  RecoveryPolicy recovery = RecoveryPolicy::kAdopt;
};

class ClusterPipeline {
 public:
  ClusterPipeline(const wall::TileGeometry& geo, int k,
                  std::span<const uint8_t> es, FtOptions ft = {});

  // Thread-safe display callback (called with an internal mutex held).
  using TileDisplayFn = std::function<void(
      int tile, const mpeg2::TileFrame&, const TileDisplayInfo&)>;

  ClusterStats run(const TileDisplayFn& on_display);

  int nodes() const { return 1 + k_ + geo_.tiles(); }
  int root_node() const { return 0; }
  int splitter_node(int s) const { return 1 + s; }
  int decoder_node(int t) const { return 1 + k_ + t; }

 private:
  const wall::TileGeometry& geo_;
  int k_;
  std::span<const uint8_t> es_;
  FtOptions ft_;
};

}  // namespace pdw::core
