// Threaded cluster pipeline: the refined algorithms of the paper's Table 3
// running on real concurrent nodes over the GM-like fabric.
//
// Node layout: node 0 is the root splitter (console PC), nodes 1..k the
// second-level splitters, nodes k+1..k+m*n the tile decoders. The protocol:
//   * two posted receive buffers per bulk receiver, recycled on receipt;
//   * receivers ack after receiving so senders never overrun a buffer
//     (the fabric CHECK-fails on overrun, so the test suite *proves* the
//     flow control);
//   * picture ordering via ANID redirection: a decoder acks not the sender
//     of a sub-picture but the splitter responsible for the *next* picture,
//     which therefore cannot send until every decoder consumed the current
//     one — in-order delivery with no reorder queues;
//   * NSID: the root tells each splitter who owns the next picture, keeping
//     splitters unaware of each other (the count k can change freely).
//
// On this host the threads share one core, so this pipeline demonstrates
// correctness and protocol liveness; scalability numbers come from the
// discrete-event simulator (src/sim) replaying lockstep-measured costs.
#pragma once

#include <functional>

#include "core/tile_decoder.h"
#include "net/fabric.h"
#include "wall/geometry.h"

namespace pdw::core {

struct ClusterStats {
  int pictures = 0;
  double wall_seconds = 0;
  double fps = 0;
  std::vector<net::NodeCounters> node_counters;  // by node id
  std::vector<uint64_t> traffic_matrix;          // bytes[src * nodes + dst]
  int nodes = 0;
};

class ClusterPipeline {
 public:
  ClusterPipeline(const wall::TileGeometry& geo, int k,
                  std::span<const uint8_t> es);

  // Thread-safe display callback (called with an internal mutex held).
  using TileDisplayFn = std::function<void(
      int tile, const mpeg2::TileFrame&, const TileDisplayInfo&)>;

  ClusterStats run(const TileDisplayFn& on_display);

  int nodes() const { return 1 + k_ + geo_.tiles(); }
  int root_node() const { return 0; }
  int splitter_node(int s) const { return 1 + s; }
  int decoder_node(int t) const { return 1 + k_ + t; }

 private:
  const wall::TileGeometry& geo_;
  int k_;
  std::span<const uint8_t> es_;
};

}  // namespace pdw::core
