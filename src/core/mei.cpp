#include "core/mei.h"

#include "common/bytes.h"

namespace pdw::core {

void serialize_mei(const std::vector<MeiInstruction>& list,
                   std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.u32(uint32_t(list.size()));
  for (const MeiInstruction& i : list) {
    w.u8(uint8_t(i.op));
    w.u8(i.ref);
    w.u16(i.mb_x);
    w.u16(i.mb_y);
    w.u16(i.peer);
  }
}

std::vector<MeiInstruction> deserialize_mei(std::span<const uint8_t> data) {
  ByteReader r(data);
  const uint32_t count = r.u32();
  std::vector<MeiInstruction> out(count);
  for (MeiInstruction& i : out) {
    i.op = MeiOp(r.u8());
    i.ref = r.u8();
    i.mb_x = r.u16();
    i.mb_y = r.u16();
    i.peer = r.u16();
  }
  PDW_CHECK(r.done());
  return out;
}

}  // namespace pdw::core
