// Tile decoder (paper's "decoder D" node).
//
// Decodes the sub-pictures for one screen tile. Holds reference frames for
// its own tile region only; motion compensation that crosses the tile
// boundary reads from a *halo* of remote macroblocks delivered through the
// MEI exchanges before the picture is decoded. There is no on-demand remote
// fetch path at all — the splitter's pre-calculation must be complete.
//
// Two halo policies:
//  * kStrict  — a missing halo entry is a hard CHECK failure (the lockstep
//               decoder's tested invariant: pre-calculation is complete).
//  * kConceal — a missing halo entry (or a missing reference frame) is
//               concealed with mid-gray pixels and the reconstructed frame
//               is marked *tainted*. The fault-tolerant cluster runtime uses
//               this so a decoder can keep the wall alive through message
//               loss and node death, while taint tracking guarantees that
//               any frame NOT flagged degraded is bit-exact.
//
// Taint propagates like pixels do: a frame is tainted if reconstruction
// concealed anything, or if it actually read a tainted (or missing)
// reference frame or a tainted halo entry. I pictures read nothing, so
// taint self-clears at the next I — the paper's GOP structure is what makes
// degraded-mode recovery converge.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "core/mei.h"
#include "core/subpicture.h"
#include "mpeg2/frame.h"
#include "wall/geometry.h"

namespace pdw::core {

enum class HaloPolicy { kStrict, kConceal };

// Remote macroblocks for one reference direction of the picture currently
// being decoded, keyed by packed macroblock coordinates. Entries remember
// whether the sender's reference was itself degraded, so taint crosses
// decoder boundaries.
class HaloCache {
 public:
  struct Entry {
    mpeg2::MacroblockPixels px;
    bool tainted = false;
  };

  void insert(int mbx, int mby, const mpeg2::MacroblockPixels& px,
              bool tainted = false) {
    map_[key(mbx, mby)] = Entry{px, tainted};
  }
  const Entry* find(int mbx, int mby) const {
    const auto it = map_.find(key(mbx, mby));
    return it == map_.end() ? nullptr : &it->second;
  }
  void clear() { map_.clear(); }
  size_t size() const { return map_.size(); }

 private:
  static uint64_t key(int mbx, int mby) {
    return (uint64_t(mby) << 32) | uint32_t(mbx);
  }
  std::unordered_map<uint64_t, Entry> map_;
};

struct TileDisplayInfo {
  uint32_t pic_index = 0;   // decode order of the picture (or its trigger)
  int display_index = 0;    // display slot (global, not per-tile)
  mpeg2::PicType type = mpeg2::PicType::I;
  bool degraded = false;    // concealed/frozen content; bit-exact iff false
  // Partition epoch whose geometry the frame was decoded under (0 on a
  // static wall). The assembler must place the frame with that epoch's
  // tile rect — reorder delay means it can trail the decoder's current one.
  uint32_t epoch = 0;
};

class TileDecoder {
 public:
  TileDecoder(const wall::TileGeometry& geo, int tile, const StreamInfo& info,
              HaloPolicy policy = HaloPolicy::kStrict);
  ~TileDecoder();

  int tile() const { return tile_; }

  // Adopt a new partition epoch's geometry: the tile keeps its index and its
  // reference frames (their own rects ride along — the pending reference
  // still displays, and closed GOPs guarantee no post-switch picture reads a
  // pre-switch reference), but all *future* reconstruction happens in the
  // new rect. Call only between pictures, at a closed-GOP boundary.
  void rebase(const wall::TileGeometry& geo);
  uint32_t epoch() const { return epoch_; }

  // SEND execution: extract the requested reference macroblock from this
  // decoder's local reference frames (instr.ref: 0 = forward reference of
  // the picture about to be decoded, 1 = backward). CHECK-fails if the
  // reference does not exist (lockstep invariant).
  mpeg2::MacroblockPixels extract_for_send(const PicInfo& pic,
                                           const MeiInstruction& instr) const;

  // Fault-tolerant SEND: a missing reference yields mid-gray pixels and
  // *degraded = true; a tainted reference yields its (wrong but valid)
  // pixels and *degraded = true.
  mpeg2::MacroblockPixels try_extract_for_send(const PicInfo& pic,
                                               const MeiInstruction& instr,
                                               bool* degraded) const;

  // RECV delivery: store a remote macroblock into the halo for the upcoming
  // picture.
  void add_halo_mb(const MeiInstruction& instr,
                   const mpeg2::MacroblockPixels& px, bool tainted = false);

  // CONCEAL delivery: the splitter determined that no slice produced this
  // macroblock (bitstream damage). Staged like halo entries and executed
  // during the next decode(); concealed macroblocks count toward the tile's
  // completeness invariant. The identical plan runs in the serial concealing
  // decoder, so concealed frames stay bit-exact across the wall.
  void stage_conceal(const MeiInstruction& instr);

  // Decode one sub-picture. All halo entries for this picture must have been
  // added. Calls `display` zero or more times (display-order reordering, as
  // in the serial decoder). Halo is cleared afterwards.
  //
  // Display slots are *stateless*: every emission triggered by the picture
  // at decode index j lands at display slot j - 1, and flush() emits at the
  // last decoded index. This is what makes mid-stream adoption and skipped
  // pictures compose: a decoder that starts at picture c, or skips picture
  // s, still puts every frame it does produce in the right wall slot.
  using DisplayFn =
      std::function<void(const mpeg2::TileFrame&, const TileDisplayInfo&)>;
  void decode(const SubPicture& sp, const DisplayFn& display);

  // The picture at decode index `pic_index` was lost (undeliverable after
  // retries). Emits exactly one degraded frame at slot pic_index - 1 (the
  // pending reference if one exists, else a frozen copy of the last shown
  // frame), and poisons the reference state until the next I picture —
  // the decoder cannot know whether the lost picture was a reference.
  void skip_picture(uint32_t pic_index, const DisplayFn& display);

  // Flush the pending reference tile at end of stream.
  void flush(const DisplayFn& display);

  // Statistics.
  int macroblocks_decoded_last_picture() const { return last_mb_count_; }
  size_t halo_mbs_last_picture() const { return last_halo_count_; }
  int concealed_mbs_last_picture() const { return last_conceal_count_; }

 private:
  class TileRefSource;
  class GrayRefSource;

  void emit(const mpeg2::TileFrame& frame, const TileDisplayInfo& info,
            const DisplayFn& display);
  void emit_frozen(int slot, const DisplayFn& display);

  const wall::TileGeometry* geo_;
  int tile_;
  mpeg2::SequenceHeader seq_;
  wall::MbRect rect_;
  uint32_t epoch_ = 0;
  HaloPolicy policy_;

  std::unique_ptr<mpeg2::TileFrame> cur_, ref_old_, ref_new_;
  bool taint_old_ = false, taint_new_ = false;
  HaloCache halo_[2];  // [0] forward, [1] backward for the upcoming picture

  std::vector<MeiInstruction> staged_conceals_;
  int last_conceal_count_ = 0;

  bool pending_ref_ = false;
  TileDisplayInfo pending_info_;
  bool pending_hole_ = false;  // a skip consumed the pending reference; the
                               // next reference trigger must emit a frozen
                               // frame to keep one-emission-per-slot
  int64_t last_pic_index_ = -1;
  std::unique_ptr<mpeg2::TileFrame> last_shown_;
  uint32_t last_shown_epoch_ = 0;
  int last_mb_count_ = 0;
  size_t last_halo_count_ = 0;
};

}  // namespace pdw::core
