// Tile decoder (paper's "decoder D" node).
//
// Decodes the sub-pictures for one screen tile. Holds reference frames for
// its own tile region only; motion compensation that crosses the tile
// boundary reads from a *halo* of remote macroblocks delivered through the
// MEI exchanges before the picture is decoded. There is no on-demand remote
// fetch path at all — the splitter's pre-calculation must be complete, and a
// missing halo entry is a hard CHECK failure (tested invariant).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "core/mei.h"
#include "core/subpicture.h"
#include "mpeg2/frame.h"
#include "wall/geometry.h"

namespace pdw::core {

// Remote macroblocks for one reference direction of the picture currently
// being decoded, keyed by packed macroblock coordinates.
class HaloCache {
 public:
  void insert(int mbx, int mby, const mpeg2::MacroblockPixels& px) {
    map_[key(mbx, mby)] = px;
  }
  const mpeg2::MacroblockPixels* find(int mbx, int mby) const {
    const auto it = map_.find(key(mbx, mby));
    return it == map_.end() ? nullptr : &it->second;
  }
  void clear() { map_.clear(); }
  size_t size() const { return map_.size(); }

 private:
  static uint64_t key(int mbx, int mby) {
    return (uint64_t(mby) << 32) | uint32_t(mbx);
  }
  std::unordered_map<uint64_t, mpeg2::MacroblockPixels> map_;
};

struct TileDisplayInfo {
  uint32_t pic_index = 0;   // decode order
  int display_index = 0;    // per-tile display order
  mpeg2::PicType type = mpeg2::PicType::I;
};

class TileDecoder {
 public:
  TileDecoder(const wall::TileGeometry& geo, int tile, const StreamInfo& info);
  ~TileDecoder();

  int tile() const { return tile_; }

  // SEND execution: extract the requested reference macroblock from this
  // decoder's local reference frames (instr.ref: 0 = forward reference of
  // the picture about to be decoded, 1 = backward).
  mpeg2::MacroblockPixels extract_for_send(const PicInfo& pic,
                                           const MeiInstruction& instr) const;

  // RECV delivery: store a remote macroblock into the halo for the upcoming
  // picture.
  void add_halo_mb(const MeiInstruction& instr,
                   const mpeg2::MacroblockPixels& px);

  // Decode one sub-picture. All halo entries for this picture must have been
  // added. Calls `display` zero or more times (display-order reordering, as
  // in the serial decoder). Halo is cleared afterwards.
  using DisplayFn =
      std::function<void(const mpeg2::TileFrame&, const TileDisplayInfo&)>;
  void decode(const SubPicture& sp, const DisplayFn& display);

  // Flush the pending reference tile at end of stream.
  void flush(const DisplayFn& display);

  // Statistics.
  int macroblocks_decoded_last_picture() const { return last_mb_count_; }
  size_t halo_mbs_last_picture() const { return last_halo_count_; }

 private:
  class TileRefSource;

  const wall::TileGeometry& geo_;
  int tile_;
  mpeg2::SequenceHeader seq_;
  wall::MbRect rect_;

  std::unique_ptr<mpeg2::TileFrame> cur_, ref_old_, ref_new_;
  HaloCache halo_[2];  // [0] forward, [1] backward for the upcoming picture

  bool pending_ref_ = false;
  TileDisplayInfo pending_info_;
  int display_index_ = 0;
  int last_mb_count_ = 0;
  size_t last_halo_count_ = 0;
};

}  // namespace pdw::core
