// Second-level (macroblock) splitter (paper §4.1, Table 2/3).
//
// Parses one picture at macroblock level — the expensive splitting step the
// hierarchy exists to parallelize — and produces, for each tile decoder:
//   * a SubPicture: SPH-framed verbatim byte runs of the macroblocks that
//     fall in the tile's screen rectangle (including projector overlap);
//   * a MEI list: the remote-reference SEND/RECV pre-calculation.
//
// The parse uses ParseMode::kScan: all VLCs are consumed and predictor state
// is tracked (the SPH needs it), but no dequantisation/IDCT/MC is done.
// This is what makes t_s < t_d and the one-level splitter eventually the
// bottleneck as decoders multiply (paper §5.3).
#pragma once

#include <memory>

#include "common/decode_status.h"
#include "core/mei.h"
#include "core/subpicture.h"
#include "mpeg2/types.h"
#include "wall/geometry.h"

namespace pdw::core {

struct SplitStats {
  int macroblocks = 0;          // total in the picture (coded + skipped)
  int coded_macroblocks = 0;
  int exchange_pairs = 0;       // deduplicated (tile, ref, mb) exchanges
  int dropped_slices = 0;       // slices abandoned due to bitstream damage
  int concealed_macroblocks = 0;  // CONCEAL instructions emitted (pre-overlap)
  size_t input_bytes = 0;       // coded picture size
  size_t output_bytes = 0;      // sum of sub-picture + MEI wire bytes
  std::vector<int> mbs_per_tile;
  // Per-MB-column / per-MB-row decode-cost model for the partition planner:
  // coded bits plus fixed recon/MC weights, deterministic per bitstream.
  std::vector<uint32_t> cost_col;
  std::vector<uint32_t> cost_row;
};

struct SplitResult {
  // !ok() => the picture is undecodable (damaged headers); subpictures/mei
  // are empty and the caller drops the picture (skip-broadcast to tiles).
  // Slice-level damage does NOT fail the split: the affected macroblocks
  // arrive as CONCEAL instructions in `mei` instead.
  DecodeStatus status;
  PicInfo info;
  std::vector<SubPicture> subpictures;            // one per tile
  std::vector<std::vector<MeiInstruction>> mei;   // one per tile
  SplitStats stats;
};

class MacroblockSplitter {
 public:
  // `geo` describes the wall; the splitter keeps its own sequence-header
  // state, updated from headers embedded in picture spans.
  explicit MacroblockSplitter(const wall::TileGeometry& geo);
  ~MacroblockSplitter();

  // Prime the sequence state (the root splitter distributes StreamInfo
  // before the first picture; pictures whose span carries a sequence header
  // update it again). CHECKs that the stream geometry matches the wall —
  // mismatched configuration is a deployment bug, not stream damage.
  void set_stream_info(const StreamInfo& info);

  // Split one coded picture (picture headers + slices). Run payloads in the
  // result are zero-copy *views* into `picture`'s block — the sub-pictures
  // stay valid as long as they live, pinning the picture buffer.
  SplitResult split(const mem::Bytes& picture, uint32_t pic_index);
  // Span flavour: copies the span into a pooled buffer first (callers that
  // do not already hold the picture as Bytes).
  SplitResult split(std::span<const uint8_t> picture_span, uint32_t pic_index);

  // Per-call geometry flavour: split against an explicit (epoch) geometry
  // instead of the wall's base grid. Adaptive engines pass the geometry of
  // the picture's partition epoch; tile rects, MEI owner maps and the
  // sub-picture fan-out all follow the given cuts.
  SplitResult split(const mem::Bytes& picture, uint32_t pic_index,
                    const wall::TileGeometry& geo);

  const mpeg2::SequenceHeader& sequence() const { return seq_; }

 private:
  struct SliceSplitter;

  const wall::TileGeometry& geo_;
  mpeg2::SequenceHeader seq_;
  bool have_seq_ = false;
};

}  // namespace pdw::core
