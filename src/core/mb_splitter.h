// Second-level (macroblock) splitter (paper §4.1, Table 2/3).
//
// Parses one picture at macroblock level — the expensive splitting step the
// hierarchy exists to parallelize — and produces, for each tile decoder:
//   * a SubPicture: SPH-framed verbatim byte runs of the macroblocks that
//     fall in the tile's screen rectangle (including projector overlap);
//   * a MEI list: the remote-reference SEND/RECV pre-calculation.
//
// The parse uses ParseMode::kScan: all VLCs are consumed and predictor state
// is tracked (the SPH needs it), but no dequantisation/IDCT/MC is done.
// This is what makes t_s < t_d and the one-level splitter eventually the
// bottleneck as decoders multiply (paper §5.3).
#pragma once

#include <memory>

#include "core/mei.h"
#include "core/subpicture.h"
#include "mpeg2/types.h"
#include "wall/geometry.h"

namespace pdw::core {

struct SplitStats {
  int macroblocks = 0;          // total in the picture (coded + skipped)
  int coded_macroblocks = 0;
  int exchange_pairs = 0;       // deduplicated (tile, ref, mb) exchanges
  size_t input_bytes = 0;       // coded picture size
  size_t output_bytes = 0;      // sum of sub-picture + MEI wire bytes
  std::vector<int> mbs_per_tile;
};

struct SplitResult {
  PicInfo info;
  std::vector<SubPicture> subpictures;            // one per tile
  std::vector<std::vector<MeiInstruction>> mei;   // one per tile
  SplitStats stats;
};

class MacroblockSplitter {
 public:
  // `geo` describes the wall; the splitter keeps its own sequence-header
  // state, updated from headers embedded in picture spans.
  explicit MacroblockSplitter(const wall::TileGeometry& geo);
  ~MacroblockSplitter();

  // Prime the sequence state (the root splitter distributes StreamInfo
  // before the first picture; pictures whose span carries a sequence header
  // update it again).
  void set_stream_info(const StreamInfo& info);

  // Split one picture-sized span (picture headers + slices).
  SplitResult split(std::span<const uint8_t> picture_span, uint32_t pic_index);

  const mpeg2::SequenceHeader& sequence() const { return seq_; }

 private:
  struct SliceSplitter;

  const wall::TileGeometry& geo_;
  mpeg2::SequenceHeader seq_;
  bool have_seq_ = false;
};

}  // namespace pdw::core
