// Macroblock Exchange Instructions (paper §4.2).
//
// The second-level splitter parses every motion vector, so it knows exactly
// which decoder will need which remote reference macroblocks. For a
// macroblock of tile i whose prediction window crosses into macroblocks
// owned by tile j, the splitter appends SEND(x, y, i) to tile j's list and
// RECV(x, y, j) to tile i's. Decoders execute all SENDs *before* decoding
// the picture — the referenced data lives in already-decoded reference
// frames — which removes on-demand fetch latency and any need for a server
// thread, and doubles as a synchronization barrier.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pdw::core {

enum class MeiOp : uint8_t {
  kSend = 0,
  kRecv = 1,
  // CONCEAL(x, y): the slice that should have produced this macroblock was
  // damaged; reconstruct it by concealment (zero-MV copy from the forward
  // reference, or the flat fill carried in ref/peer) instead of from parsed
  // syntax. Emitted by the mb-splitter alongside SEND/RECV so every tile
  // applies the same plan as a serial concealing decoder.
  kConceal = 2,
};

struct MeiInstruction {
  MeiOp op = MeiOp::kSend;
  uint8_t ref = 0;    // SEND/RECV: 0 = forward ref, 1 = backward ref.
                      // CONCEAL: luma flat-fill value.
  uint16_t mb_x = 0;  // macroblock coordinates of the reference block
  uint16_t mb_y = 0;
  uint16_t peer = 0;  // SEND: destination tile; RECV: source tile.
                      // CONCEAL: (fill_cb << 8) | fill_cr.

  friend bool operator==(const MeiInstruction&, const MeiInstruction&) = default;
};

// Pack / unpack the CONCEAL flat-fill bytes into the existing 8-byte wire
// entry (ref carries fill_y; peer carries fill_cb/fill_cr).
inline MeiInstruction make_conceal(int mb_x, int mb_y, uint8_t fill_y,
                                   uint8_t fill_cb, uint8_t fill_cr) {
  MeiInstruction i;
  i.op = MeiOp::kConceal;
  i.ref = fill_y;
  i.mb_x = uint16_t(mb_x);
  i.mb_y = uint16_t(mb_y);
  i.peer = uint16_t((uint16_t(fill_cb) << 8) | fill_cr);
  return i;
}
inline uint8_t conceal_fill_y(const MeiInstruction& i) { return i.ref; }
inline uint8_t conceal_fill_cb(const MeiInstruction& i) {
  return uint8_t(i.peer >> 8);
}
inline uint8_t conceal_fill_cr(const MeiInstruction& i) {
  return uint8_t(i.peer & 0xFF);
}

inline constexpr size_t kMeiWireBytes = 8;

void serialize_mei(const std::vector<MeiInstruction>& list,
                   std::vector<uint8_t>* out);
std::vector<MeiInstruction> deserialize_mei(std::span<const uint8_t> data);

}  // namespace pdw::core
