// Macroblock Exchange Instructions (paper §4.2).
//
// The second-level splitter parses every motion vector, so it knows exactly
// which decoder will need which remote reference macroblocks. For a
// macroblock of tile i whose prediction window crosses into macroblocks
// owned by tile j, the splitter appends SEND(x, y, i) to tile j's list and
// RECV(x, y, j) to tile i's. Decoders execute all SENDs *before* decoding
// the picture — the referenced data lives in already-decoded reference
// frames — which removes on-demand fetch latency and any need for a server
// thread, and doubles as a synchronization barrier.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pdw::core {

enum class MeiOp : uint8_t { kSend = 0, kRecv = 1 };

struct MeiInstruction {
  MeiOp op = MeiOp::kSend;
  uint8_t ref = 0;    // 0 = forward reference, 1 = backward reference
  uint16_t mb_x = 0;  // macroblock coordinates of the reference block
  uint16_t mb_y = 0;
  uint16_t peer = 0;  // SEND: destination tile; RECV: source tile

  friend bool operator==(const MeiInstruction&, const MeiInstruction&) = default;
};

inline constexpr size_t kMeiWireBytes = 8;

void serialize_mei(const std::vector<MeiInstruction>& list,
                   std::vector<uint8_t>* out);
std::vector<MeiInstruction> deserialize_mei(std::span<const uint8_t> data);

}  // namespace pdw::core
