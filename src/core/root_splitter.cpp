#include "core/root_splitter.h"

#include "common/timing.h"
#include "mpeg2/headers.h"

namespace pdw::core {

RootSplitter::RootSplitter(std::span<const uint8_t> es) : es_(es) {
  WallTimer timer;
  spans_ = scan_pictures(es);
  PDW_CHECK(!spans_.empty()) << "no pictures in stream";
  scan_s_per_picture_ = timer.seconds() / double(spans_.size());

  // Parse the leading sequence header for StreamInfo.
  PDW_CHECK(spans_[0].has_sequence_header)
      << "stream does not start with a sequence header";
  const StartCodeHit hit = find_start_code(es, spans_[0].begin);
  PDW_CHECK_EQ(int(hit.code), int(start_code::kSequenceHeader));
  BitReader r(es.subspan(hit.offset + 4));
  info_.seq = mpeg2::parse_sequence_header(r);
  // Pick up the mandatory sequence extension that follows.
  r.align_to_byte();
  if (r.peek(24) == 0x000001) {
    const uint8_t code = uint8_t(r.read(32) & 0xFF);
    if (code == start_code::kExtension)
      mpeg2::parse_extension(r, &info_.seq, nullptr);
  }
}

}  // namespace pdw::core
