#include "core/root_splitter.h"

#include "common/timing.h"
#include "mpeg2/headers.h"

namespace pdw::core {

RootSplitter::RootSplitter(std::span<const uint8_t> es) : es_(es) {
  WallTimer timer;
  std::vector<PictureSpan> all = scan_pictures(es);
  PDW_BITSTREAM_CHECK(!all.empty()) << "no pictures in stream";
  const double scan_seconds = timer.seconds();
  scan_s_per_picture_ = scan_seconds / double(all.size());

  // Find the first picture whose sequence header actually decodes; pictures
  // before it cannot be split (no geometry) and are dropped. A clean stream
  // resolves this on spans_[0] with one parse.
  size_t first = all.size();
  for (size_t i = 0; i < all.size(); ++i) {
    if (!all[i].has_sequence_header) continue;
    // The sequence header is usually the span's first start code, but damage
    // can push junk ahead of it: scan the span's codes for 0xB3.
    const size_t span_end = all[i].end;
    size_t pos = all[i].begin;
    StartCodeHit hit = find_start_code(es, pos);
    while (hit.offset < span_end &&
           hit.code != start_code::kSequenceHeader) {
      hit = find_start_code(es, hit.offset + 4);
    }
    if (hit.offset >= span_end) continue;
    BitReader r(es.subspan(hit.offset + 4));
    mpeg2::SequenceHeader seq;
    if (!mpeg2::parse_sequence_header(r, &seq).ok()) continue;
    // Pick up the mandatory sequence extension that follows.
    r.align_to_byte();
    if (r.peek(24) == 0x000001) {
      const uint8_t code = uint8_t(r.read(32) & 0xFF);
      if (code == start_code::kExtension &&
          !mpeg2::parse_extension(r, &seq, nullptr).ok())
        continue;  // damaged extension => dimensions untrustworthy
    }
    info_.seq = seq;
    first = i;
    break;
  }
  PDW_BITSTREAM_CHECK(first < all.size())
      << "no decodable sequence header in stream";
  dropped_leading_ = int(first);
  spans_.assign(all.begin() + std::ptrdiff_t(first), all.end());
}

}  // namespace pdw::core
