// The wall over real UDP sockets, in one process: one thread per node, each
// with its *own* SocketFabric, discovered through a genuine UDP rendezvous —
// exactly the multi-process deployment shape (examples/wall_node.cpp) minus
// fork/exec, so tests and CI can exercise the socket transport, the
// rendezvous flow and real loopback loss without process management.
//
// Loss/delay/duplication are applied by the deterministic UDP impairment
// proxy (net/impair.h) when configured — the datagrams really do vanish on
// the socket path, unlike the in-process fabric's injected faults.
#pragma once

#include <span>

#include "core/pipeline.h"
#include "net/impair.h"

namespace pdw::core {

struct SocketWallOptions {
  ProtocolConfig protocol;
  RecoveryPolicy recovery = RecoveryPolicy::kAdopt;
  // Also record per-picture tile x tile exchange matrices in stats.wire.
  bool per_picture_exchange = false;
  obs::MetricsRegistry* metrics = nullptr;
  // Route every datagram through the impairment proxy with this schedule.
  bool impair = false;
  net::ImpairConfig impair_cfg;
  double rendezvous_timeout_s = 20.0;
  // Adaptive per-GOP tile rebalancing. The engine fills in `geo` itself.
  proto::RootNode::AdaptivePartition adaptive;
  // Telemetry sideband: when telemetry_port != 0, one process-wide exporter
  // streams metric/span deltas to a collector at 127.0.0.1:telemetry_port.
  uint16_t telemetry_port = 0;
  double telemetry_interval_s = 0.2;
};

// Run the full wall over per-node UDP socket fabrics on loopback. The
// returned stats are shaped exactly like ClusterPipeline::run()'s —
// stats.wire is directly comparable against the threaded and lockstep
// engines (ProtocolEquivalence proves it equal).
ClusterStats run_socket_wall(const wall::TileGeometry& geo, int k,
                             std::span<const uint8_t> es,
                             const TileDisplayFn& on_display,
                             SocketWallOptions opts = {});

}  // namespace pdw::core
