// Lockstep (single-threaded) execution of the full 1-k-(m,n) pipeline.
//
// Runs root split -> second-level split -> MEI exchange -> tile decode for
// every picture, in order, in one thread, by driving the proto/ node state
// machines (proto::SerialStream) with a serial scheduler. Two jobs:
//   1. Functional reference for the parallel system: the tile outputs it
//      produces are what the threaded pipeline and the DES-driven cluster
//      must also produce (bit-exact vs the serial decoder) — and because the
//      protocol decisions come from the same state machines the threaded
//      pipeline pumps, the engines cannot drift apart.
//   2. Cost measurement: it times every operation of the Table-3 protocol on
//      real data, producing the per-picture traces the discrete-event
//      cluster simulator replays to obtain frame rates, runtime breakdowns
//      and per-node bandwidth on a simulated Myrinet-class network.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "core/root_splitter.h"
#include "proto/session.h"
#include "wall/geometry.h"

namespace pdw::core {

// The per-picture trace is produced by the proto serial host; core aliases
// it so existing consumers (sim, benches, baselines) keep their spelling.
using PictureTrace = proto::PictureTrace;

class LockstepPipeline {
 public:
  // `k` second-level splitters (round-robin), tiles from `geo`. `metrics`
  // selects the registry telemetry lands in (nullptr: the process-global
  // one).
  LockstepPipeline(const wall::TileGeometry& geo, int k,
                   std::span<const uint8_t> es,
                   obs::MetricsRegistry* metrics = nullptr,
                   proto::RootNode::AdaptivePartition adaptive = {});
  ~LockstepPipeline();

  using TileDisplayFn = proto::SerialStream::DisplayFn;
  using TraceFn = proto::SerialStream::TraceFn;

  // Process the stream (the first `max_pictures` pictures when >= 0), then
  // flush the decoders and run the end-of-stream handshake. One run per
  // reset: a second run() without an intervening reset() CHECK-fails
  // instead of silently replaying from mid-stream reference state.
  void run(const TileDisplayFn& on_display, const TraceFn& on_trace,
           int max_pictures = -1);

  // Rebuild every splitter, decoder and state machine for a fresh run.
  void reset();

  const wall::TileGeometry& geometry() const { return geo_; }
  const RootSplitter& root() const { return stream_->root(); }
  int k() const { return k_; }

  // Protocol-level traffic of the last run (heartbeats excluded) — directly
  // comparable with the threaded pipeline's accounting.
  const proto::WireAccounting& accounting() const {
    return stream_->accounting();
  }

  // Partition epochs of the last run (epoch 0 alone on a static wall).
  const wall::PartitionTable& partitions() const {
    return stream_->partitions();
  }

 private:
  const wall::TileGeometry& geo_;
  int k_;
  std::span<const uint8_t> es_;
  obs::MetricsRegistry* metrics_ = nullptr;
  proto::RootNode::AdaptivePartition adaptive_;
  std::unique_ptr<proto::SerialStream> stream_;
  bool ran_ = false;
};

}  // namespace pdw::core
