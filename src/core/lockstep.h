// Lockstep (single-threaded) execution of the full 1-k-(m,n) pipeline.
//
// Runs root split -> second-level split -> MEI exchange -> tile decode for
// every picture, in order, in one thread. Two jobs:
//   1. Functional reference for the parallel system: the tile outputs it
//      produces are what the threaded pipeline and the DES-driven cluster
//      must also produce (bit-exact vs the serial decoder).
//   2. Cost measurement: it times every operation of the Table-3 protocol on
//      real data, producing the per-picture traces the discrete-event
//      cluster simulator replays to obtain frame rates, runtime breakdowns
//      and per-node bandwidth on a simulated Myrinet-class network.
#pragma once

#include <functional>

#include "core/mb_splitter.h"
#include "core/root_splitter.h"
#include "core/tile_decoder.h"
#include "wall/geometry.h"

namespace pdw::core {

// Measured trace of one picture's journey through the pipeline.
struct PictureTrace {
  uint32_t pic_index = 0;
  mpeg2::PicType type = mpeg2::PicType::I;
  bool has_gop_header = false;  // picture starts a (closed) GOP — resync point
  size_t picture_bytes = 0;  // root -> splitter message size
  double copy_s = 0;         // root: copy picture into the send buffer
  double split_s = 0;        // second-level: parse + build SPs and MEIs
  int splitter = 0;          // which second-level splitter handled it

  // Per tile decoder:
  std::vector<size_t> sp_msg_bytes;   // splitter -> decoder message size
  std::vector<double> decode_s;       // decode + display ("Work")
  std::vector<double> serve_s;        // executing SEND instructions ("Serve")
  std::vector<int> halo_mbs;          // remote macroblocks received
  // Exchange traffic matrix, bytes[src * tiles + dst].
  std::vector<size_t> exchange_bytes;

  SplitStats split_stats;
};

class LockstepPipeline {
 public:
  // `k` second-level splitters (round-robin), tiles from `geo`.
  LockstepPipeline(const wall::TileGeometry& geo, int k,
                   std::span<const uint8_t> es);
  ~LockstepPipeline();

  using TileDisplayFn =
      std::function<void(int tile, const mpeg2::TileFrame&,
                         const TileDisplayInfo&)>;
  using TraceFn = std::function<void(const PictureTrace&)>;

  // Process the stream (the first `max_pictures` pictures when >= 0).
  // Either callback may be null. Note: stopping early leaves reference
  // state mid-stream; used for warm-up passes only.
  void run(const TileDisplayFn& on_display, const TraceFn& on_trace,
           int max_pictures = -1);

  const wall::TileGeometry& geometry() const { return geo_; }
  const RootSplitter& root() const { return root_; }
  int k() const { return k_; }

 private:
  const wall::TileGeometry& geo_;
  int k_;
  RootSplitter root_;
  std::vector<std::unique_ptr<MacroblockSplitter>> splitters_;
  std::vector<std::unique_ptr<TileDecoder>> decoders_;
};

}  // namespace pdw::core
