#include "core/lockstep.h"

#include <algorithm>
#include <cstring>

#include "common/timing.h"

namespace pdw::core {

namespace {
// Wire overhead of one macroblock-exchange message entry: the pixel payload
// plus the instruction header identifying it.
constexpr size_t kExchangeEntryBytes =
    sizeof(mpeg2::MacroblockPixels) + kMeiWireBytes;
}  // namespace

LockstepPipeline::LockstepPipeline(const wall::TileGeometry& geo, int k,
                                   std::span<const uint8_t> es)
    : geo_(geo), k_(k), root_(es) {
  PDW_CHECK_GE(k, 1);
  for (int i = 0; i < k; ++i) {
    splitters_.push_back(std::make_unique<MacroblockSplitter>(geo));
    splitters_.back()->set_stream_info(root_.stream_info());
  }
  for (int t = 0; t < geo.tiles(); ++t)
    decoders_.push_back(
        std::make_unique<TileDecoder>(geo, t, root_.stream_info()));
}

LockstepPipeline::~LockstepPipeline() = default;

void LockstepPipeline::run(const TileDisplayFn& on_display,
                           const TraceFn& on_trace, int max_pictures) {
  const int tiles = geo_.tiles();
  std::vector<uint8_t> copy_buffer;

  const int limit = max_pictures >= 0
                        ? std::min(max_pictures, root_.picture_count())
                        : root_.picture_count();
  for (int i = 0; i < limit; ++i) {
    PictureTrace trace;
    trace.pic_index = uint32_t(i);
    trace.sp_msg_bytes.assign(size_t(tiles), 0);
    trace.decode_s.assign(size_t(tiles), 0.0);
    trace.serve_s.assign(size_t(tiles), 0.0);
    trace.halo_mbs.assign(size_t(tiles), 0);
    trace.exchange_bytes.assign(size_t(tiles) * tiles, 0);

    const std::span<const uint8_t> span = root_.picture(i);
    trace.picture_bytes = span.size();
    trace.has_gop_header = root_.span(i).has_gop_header;

    // Root: copy the picture into the (zero-copy posted) send buffer.
    {
      WallTimer t;
      copy_buffer.assign(span.begin(), span.end());
      trace.copy_s = t.seconds();
    }

    // Second-level splitter (round-robin, as in Table 3).
    const int s = i % k_;
    trace.splitter = s;
    SplitResult result;
    std::vector<std::vector<uint8_t>> sp_wire(static_cast<size_t>(tiles));
    std::vector<std::vector<uint8_t>> mei_wire(static_cast<size_t>(tiles));
    {
      WallTimer t;
      result = splitters_[size_t(s)]->split(copy_buffer, uint32_t(i));
      // Serializing SPs and MEIs into network messages is splitter work.
      for (int d = 0; d < tiles; ++d) {
        result.subpictures[size_t(d)].serialize(&sp_wire[size_t(d)]);
        serialize_mei(result.mei[size_t(d)], &mei_wire[size_t(d)]);
        trace.sp_msg_bytes[size_t(d)] =
            sp_wire[size_t(d)].size() + mei_wire[size_t(d)].size();
      }
      trace.split_s = t.seconds();
    }
    trace.type = result.info.type;
    trace.split_stats = result.stats;

    // A picture whose headers are undecodable cannot be split at all: every
    // tile skips it in lockstep (the threaded pipeline broadcasts the same
    // decision), keeping the one-emission-per-slot display invariant.
    if (!result.status.ok()) {
      for (int d = 0; d < tiles; ++d)
        decoders_[size_t(d)]->skip_picture(
            uint32_t(i),
            [&](const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
              if (on_display) on_display(d, tf, info);
            });
      if (on_trace) on_trace(trace);
      continue;
    }

    // Decoders: execute SEND instructions (serve phase). All sends complete
    // before any decode starts — in the real system the ack protocol and the
    // "reference data is already decoded" property guarantee this. CONCEAL
    // instructions are staged on their own tile for the decode phase.
    for (int d = 0; d < tiles; ++d) {
      const auto mei = deserialize_mei(mei_wire[size_t(d)]);
      WallTimer t;
      for (const MeiInstruction& instr : mei) {
        if (instr.op == MeiOp::kConceal) {
          decoders_[size_t(d)]->stage_conceal(instr);
          continue;
        }
        if (instr.op != MeiOp::kSend) continue;
        const mpeg2::MacroblockPixels px =
            decoders_[size_t(d)]->extract_for_send(result.info, instr);
        MeiInstruction recv = instr;
        recv.op = MeiOp::kRecv;
        recv.peer = uint16_t(d);
        decoders_[size_t(instr.peer)]->add_halo_mb(recv, px);
        trace.exchange_bytes[size_t(d) * tiles + instr.peer] +=
            kExchangeEntryBytes;
      }
      trace.serve_s[size_t(d)] = t.seconds();
    }

    // Decode each tile's sub-picture.
    for (int d = 0; d < tiles; ++d) {
      WallTimer t;
      const SubPicture sp = SubPicture::deserialize(sp_wire[size_t(d)]);
      decoders_[size_t(d)]->decode(
          sp, [&](const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
            if (on_display) on_display(d, tf, info);
          });
      trace.decode_s[size_t(d)] = t.seconds();
      trace.halo_mbs[size_t(d)] =
          int(decoders_[size_t(d)]->halo_mbs_last_picture());
    }

    if (on_trace) on_trace(trace);
  }

  for (int d = 0; d < tiles; ++d)
    decoders_[size_t(d)]->flush(
        [&](const mpeg2::TileFrame& tf, const TileDisplayInfo& info) {
          if (on_display) on_display(d, tf, info);
        });
}

}  // namespace pdw::core
