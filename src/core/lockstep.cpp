#include "core/lockstep.h"

#include <algorithm>

#include "common/check.h"

namespace pdw::core {

LockstepPipeline::LockstepPipeline(const wall::TileGeometry& geo, int k,
                                   std::span<const uint8_t> es,
                                   obs::MetricsRegistry* metrics,
                                   proto::RootNode::AdaptivePartition adaptive)
    : geo_(geo), k_(k), es_(es), metrics_(metrics), adaptive_(adaptive) {
  PDW_CHECK_GE(k, 1);
  stream_ = std::make_unique<proto::SerialStream>(geo_, k_, es_, 0, metrics_,
                                                  adaptive_);
}

LockstepPipeline::~LockstepPipeline() = default;

void LockstepPipeline::reset() {
  stream_ = std::make_unique<proto::SerialStream>(geo_, k_, es_, 0, metrics_,
                                                  adaptive_);
  ran_ = false;
}

void LockstepPipeline::run(const TileDisplayFn& on_display,
                           const TraceFn& on_trace, int max_pictures) {
  PDW_CHECK(!ran_) << "run() called twice without reset()";
  ran_ = true;
  const int limit = max_pictures >= 0
                        ? std::min(max_pictures, stream_->picture_count())
                        : stream_->picture_count();
  for (int i = 0; i < limit; ++i) stream_->step(on_display, on_trace);
  stream_->finish(on_display);
}

}  // namespace pdw::core
