#include "core/config.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pdw::core {

double predicted_fps(int k, double t_s, double t_d) {
  PDW_CHECK_GT(t_s, 0.0);
  PDW_CHECK_GT(t_d, 0.0);
  return std::min(double(k) / t_s, 1.0 / t_d);
}

int choose_k(double t_s, double t_d) {
  PDW_CHECK_GT(t_d, 0.0);
  return std::max(1, int(std::ceil(t_s / t_d)));
}

void choose_tiling(int video_w, int video_h, const WallPanel& panel, int* m,
                   int* n) {
  PDW_CHECK_GT(panel.width, panel.overlap);
  PDW_CHECK_GT(panel.height, panel.overlap);
  // With m tiles across, usable width is m*panel - (m-1)*overlap; pick the
  // smallest m whose usable width covers the video.
  auto fit = [](int video, int panel_size, int overlap) {
    int count = 1;
    while (count * panel_size - (count - 1) * overlap < video) ++count;
    return count;
  };
  *m = fit(video_w, panel.width, panel.overlap);
  *n = fit(video_h, panel.height, panel.overlap);
}

int choose_k_for_target_fps(double target_fps, double t_s, double t_d) {
  PDW_CHECK_GT(target_fps, 0.0);
  // The decoders cap the rate at 1/t_d regardless of k; beyond that adding
  // splitters is waste.
  const int k_max = choose_k(t_s, t_d);
  const int k_target = std::max(1, int(std::ceil(target_fps * t_s)));
  return std::min(k_max, k_target);
}

}  // namespace pdw::core
