#include "video/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace pdw::video {

using mpeg2::Frame;
using mpeg2::Plane;

const char* scene_kind_name(SceneKind kind) {
  switch (kind) {
    case SceneKind::kPanningTexture: return "panning-texture";
    case SceneKind::kMovingObjects: return "moving-objects";
    case SceneKind::kAnimation: return "animation";
    case SceneKind::kLocalizedDetail: return "localized-detail";
  }
  return "?";
}

namespace {

// Periodic smooth value-noise texture sampled with bilinear interpolation.
// All scenes build their imagery from one or more of these; the period keeps
// pans seamless for arbitrarily long sequences.
class NoiseTexture {
 public:
  NoiseTexture(int size, int octaves, uint64_t seed) : size_(size) {
    PDW_CHECK((size & (size - 1)) == 0) << "texture size must be power of two";
    data_.assign(size_t(size) * size, 0.f);
    SplitMix64 rng(seed);
    std::vector<float> lattice;
    float amp = 1.0f;
    float total = 0.0f;
    for (int o = 0; o < octaves; ++o) {
      const int cells = 4 << o;  // lattice resolution for this octave
      lattice.assign(size_t(cells) * cells, 0.f);
      for (float& v : lattice) v = float(rng.next_double()) * 2.f - 1.f;
      const float step = float(cells) / float(size_);
      for (int y = 0; y < size_; ++y) {
        const float fy = y * step;
        const int y0 = int(fy) % cells;
        const int y1 = (y0 + 1) % cells;
        const float ty = fy - std::floor(fy);
        for (int x = 0; x < size_; ++x) {
          const float fx = x * step;
          const int x0 = int(fx) % cells;
          const int x1 = (x0 + 1) % cells;
          const float tx = fx - std::floor(fx);
          const float v00 = lattice[size_t(y0) * cells + x0];
          const float v01 = lattice[size_t(y0) * cells + x1];
          const float v10 = lattice[size_t(y1) * cells + x0];
          const float v11 = lattice[size_t(y1) * cells + x1];
          const float v0 = v00 + (v01 - v00) * tx;
          const float v1 = v10 + (v11 - v10) * tx;
          data_[size_t(y) * size_ + x] += amp * (v0 + (v1 - v0) * ty);
        }
      }
      total += amp;
      amp *= 0.55f;
    }
    for (float& v : data_) v /= total;  // normalize to roughly [-1, 1]
  }

  // Bilinear periodic sample at continuous coordinates.
  float sample(float x, float y) const {
    const int mask = size_ - 1;
    const float fx = x - std::floor(x / size_) * size_;
    const float fy = y - std::floor(y / size_) * size_;
    const int x0 = int(fx) & mask;
    const int y0 = int(fy) & mask;
    const int x1 = (x0 + 1) & mask;
    const int y1 = (y0 + 1) & mask;
    const float tx = fx - std::floor(fx);
    const float ty = fy - std::floor(fy);
    const float v00 = data_[size_t(y0) * size_ + x0];
    const float v01 = data_[size_t(y0) * size_ + x1];
    const float v10 = data_[size_t(y1) * size_ + x0];
    const float v11 = data_[size_t(y1) * size_ + x1];
    const float v0 = v00 + (v01 - v00) * tx;
    const float v1 = v10 + (v11 - v10) * tx;
    return v0 + (v1 - v0) * ty;
  }

 private:
  int size_;
  std::vector<float> data_;
};

uint8_t to_pixel(float v) {
  return uint8_t(std::clamp(int(std::lround(v)), 0, 255));
}

// Deterministic per-pixel-per-frame "film grain". Real captures (the paper's
// DVD rips, HDTV camera footage, rendered flybys with dithering) carry sensor
// noise and grain that dominate the residual bit rate at ~0.3 bpp; purely
// smooth synthetic scenes would compress far below that and make every
// downstream bandwidth/time measurement unrealistically light.
inline int grain(uint32_t x, uint32_t y, uint32_t t, int amp) {
  uint32_t h = x * 0x9E3779B1u ^ (y + 1) * 0x85EBCA77u ^ (t + 1) * 0xC2B2AE3Du;
  h ^= h >> 15;
  h *= 0x2C1B3C6Du;
  h ^= h >> 12;
  return int(h % uint32_t(2 * amp + 1)) - amp;
}

// Fill a chroma plane with a slowly varying tint derived from a texture.
void fill_chroma(Plane* plane, const NoiseTexture& tex, float ox, float oy,
                 float scale, float amplitude) {
  for (int y = 0; y < plane->height(); ++y) {
    uint8_t* row = plane->row(y);
    for (int x = 0; x < plane->width(); ++x)
      row[x] = to_pixel(128.f + amplitude * tex.sample(ox + x * scale,
                                                       oy + y * scale));
  }
}

// --- Panning texture ---------------------------------------------------------

class PanningTextureScene final : public SceneGenerator {
 public:
  PanningTextureScene(int w, int h, uint64_t seed)
      : w_(w), h_(h), luma_(512, 5, seed), chroma_(256, 3, seed ^ 0x9e37) {}

  void render(int frame_index, Frame* out) const override {
    // Smooth diagonal pan with a slow sinusoidal drift, sub-pixel rates so
    // half-pel motion estimation is exercised.
    const float t = float(frame_index);
    const float ox = 1.75f * t + 20.f * std::sin(t * 0.021f);
    const float oy = 0.85f * t + 12.f * std::cos(t * 0.017f);
    for (int y = 0; y < h_; ++y) {
      uint8_t* row = out->y.row(y);
      const float sy = (y + oy) * 0.35f;
      for (int x = 0; x < w_; ++x)
        row[x] = to_pixel(128.f + 96.f * luma_.sample((x + ox) * 0.35f, sy) +
                          float(grain(uint32_t(x), uint32_t(y),
                                      uint32_t(frame_index), 5)));
    }
    fill_chroma(&out->cb, chroma_, ox * 0.2f, oy * 0.2f, 0.12f, 28.f);
    fill_chroma(&out->cr, chroma_, oy * 0.2f + 77.f, ox * 0.2f, 0.12f, 28.f);
  }

 private:
  int w_, h_;
  NoiseTexture luma_, chroma_;
};

// --- Moving objects ("fish tank") --------------------------------------------

class MovingObjectsScene final : public SceneGenerator {
 public:
  MovingObjectsScene(int w, int h, uint64_t seed)
      : w_(w), h_(h), background_(512, 4, seed), chroma_(256, 3, seed ^ 0x51) {
    SplitMix64 rng(seed ^ 0xF15F);
    const int count = std::max(6, w * h / 120000);
    objects_.resize(size_t(count));
    for (Object& o : objects_) {
      o.x0 = rng.next_double() * w;
      o.y0 = rng.next_double() * h;
      o.vx = (rng.next_double() - 0.5) * 7.0;
      o.vy = (rng.next_double() - 0.5) * 3.5;
      o.rx = 14.0 + rng.next_double() * (w / 24.0);
      o.ry = o.rx * (0.35 + rng.next_double() * 0.4);
      o.luma = 60.f + float(rng.next_double()) * 170.f;
      o.phase = float(rng.next_double()) * 6.28f;
    }
  }

  void render(int frame_index, Frame* out) const override {
    const float t = float(frame_index);
    // Slowly drifting background (the "water").
    for (int y = 0; y < h_; ++y) {
      uint8_t* row = out->y.row(y);
      const float sy = (y + 0.2f * t) * 0.22f;
      for (int x = 0; x < w_; ++x)
        row[x] = to_pixel(110.f + 55.f * background_.sample(x * 0.22f, sy) +
                          float(grain(uint32_t(x), uint32_t(y),
                                      uint32_t(frame_index), 4)));
    }
    fill_chroma(&out->cb, chroma_, 0.08f * t, 3.f, 0.1f, 22.f);
    fill_chroma(&out->cr, chroma_, 50.f, 0.06f * t, 0.1f, 22.f);

    // Objects: soft-edged ellipses on wrapped trajectories with gentle
    // vertical bobbing — rigid translating bodies, ideal for block ME.
    for (size_t i = 0; i < objects_.size(); ++i) {
      const Object& o = objects_[i];
      const double cx = wrap(o.x0 + o.vx * t, w_);
      const double cy = wrap(o.y0 + o.vy * t + 9.0 * std::sin(0.05 * t + o.phase), h_);
      draw_ellipse(out, cx, cy, o.rx, o.ry, o.luma, int(i));
    }
  }

 private:
  struct Object {
    double x0, y0, vx, vy, rx, ry;
    float luma;
    float phase;
  };

  static double wrap(double v, int limit) {
    const double m = std::fmod(v, double(limit));
    return m < 0 ? m + limit : m;
  }

  void draw_ellipse(Frame* out, double cx, double cy, double rx, double ry,
                    float luma, int index) const {
    const int x0 = std::max(0, int(cx - rx - 1));
    const int x1 = std::min(w_ - 1, int(cx + rx + 1));
    const int y0 = std::max(0, int(cy - ry - 1));
    const int y1 = std::min(h_ - 1, int(cy + ry + 1));
    for (int y = y0; y <= y1; ++y) {
      uint8_t* row = out->y.row(y);
      for (int x = x0; x <= x1; ++x) {
        const double dx = (x - cx) / rx;
        const double dy = (y - cy) / ry;
        const double d = dx * dx + dy * dy;
        if (d >= 1.0) continue;
        // Soft edge plus a little internal shading for texture.
        const float edge = float(std::min(1.0, (1.0 - d) * 4.0));
        const float shade = luma + 25.f * float(dx);
        row[x] = to_pixel(row[x] + (shade - row[x]) * edge);
      }
    }
    // Chroma tint over the object's bounding box.
    const int tint = 110 + (index * 37) % 90;
    for (int y = y0 / 2; y <= y1 / 2 && y < out->cb.height(); ++y) {
      uint8_t* cbr = out->cb.row(y);
      uint8_t* crr = out->cr.row(y);
      for (int x = x0 / 2; x <= x1 / 2 && x < out->cb.width(); ++x) {
        const double dx = (x * 2 - cx) / rx;
        const double dy = (y * 2 - cy) / ry;
        if (dx * dx + dy * dy >= 0.8) continue;
        cbr[x] = uint8_t(tint);
        crr[x] = uint8_t(255 - tint);
      }
    }
  }

  int w_, h_;
  NoiseTexture background_, chroma_;
  std::vector<Object> objects_;
};

// --- Animation ---------------------------------------------------------------

class AnimationScene final : public SceneGenerator {
 public:
  AnimationScene(int w, int h, uint64_t seed) : w_(w), h_(h) {
    SplitMix64 rng(seed ^ 0xA211);
    const int count = std::max(8, w * h / 90000);
    shapes_.resize(size_t(count));
    for (Shape& s : shapes_) {
      s.x0 = rng.next_double() * w;
      s.y0 = rng.next_double() * h;
      s.vx = (rng.next_double() - 0.5) * 9.0;
      s.vy = (rng.next_double() - 0.5) * 5.0;
      s.w = 24.0 + rng.next_double() * (w / 14.0);
      s.h = 20.0 + rng.next_double() * (h / 14.0);
      s.luma = uint8_t(40 + rng.next_below(200));
      s.cb = uint8_t(64 + rng.next_below(128));
      s.cr = uint8_t(64 + rng.next_below(128));
    }
  }

  void render(int frame_index, Frame* out) const override {
    // Flat background with a vertical ramp — cartoon-style, hard edges,
    // plus light film grain (cartoons are telecined from film too).
    for (int y = 0; y < h_; ++y) {
      uint8_t* row = out->y.row(y);
      const int v = 200 - (y * 60) / std::max(1, h_);
      for (int x = 0; x < w_; ++x)
        row[x] = to_pixel(float(
            v + grain(uint32_t(x), uint32_t(y), uint32_t(frame_index), 3)));
    }
    out->cb.fill(118);
    out->cr.fill(134);

    const double t = frame_index;
    for (const Shape& s : shapes_) {
      const double cx = bounce(s.x0 + s.vx * t, w_);
      const double cy = bounce(s.y0 + s.vy * t, h_);
      const int x0 = std::max(0, int(cx - s.w / 2));
      const int x1 = std::min(w_ - 1, int(cx + s.w / 2));
      const int y0 = std::max(0, int(cy - s.h / 2));
      const int y1 = std::min(h_ - 1, int(cy + s.h / 2));
      for (int y = y0; y <= y1; ++y) {
        uint8_t* row = out->y.row(y);
        for (int x = x0; x <= x1; ++x) row[x] = s.luma;
      }
      for (int y = y0 / 2; y <= y1 / 2 && y < out->cb.height(); ++y) {
        uint8_t* cbr = out->cb.row(y);
        uint8_t* crr = out->cr.row(y);
        for (int x = x0 / 2; x <= x1 / 2 && x < out->cb.width(); ++x) {
          cbr[x] = s.cb;
          crr[x] = s.cr;
        }
      }
    }
  }

 private:
  struct Shape {
    double x0, y0, vx, vy, w, h;
    uint8_t luma, cb, cr;
  };

  // Reflective "bounce" trajectory within [0, limit).
  static double bounce(double v, int limit) {
    const double period = 2.0 * limit;
    double m = std::fmod(v, period);
    if (m < 0) m += period;
    return m < limit ? m : period - m - 1e-9;
  }

  int w_, h_;
  std::vector<Shape> shapes_;
};

// --- Localized detail (nebula flyby) ------------------------------------------

class LocalizedDetailScene final : public SceneGenerator {
 public:
  LocalizedDetailScene(int w, int h, uint64_t seed, const HotRegion& hot)
      : w_(w),
        h_(h),
        hot_(hot),
        detail_(512, 6, seed),
        smooth_(256, 3, seed ^ 0xBEEF),
        chroma_(256, 3, seed ^ 0xD00D) {}

  void render(int frame_index, Frame* out) const override {
    // The "nebula" occupies the hot region (default: roughly the left 40% x
    // top 60% of the frame) and slowly zooms; the rest is a near-black
    // smooth background. Bit-rate therefore concentrates on a subset of
    // tiles — the imbalance the paper observes on the Orion streams — and a
    // non-zero drift walks that concentration across tile boundaries.
    const float t = float(frame_index);
    const float zoom = 1.0f + 0.004f * t;
    const float ox = 3.1f * t;
    const float oy = 1.2f * t;
    const float rx = hot_.rx * w_;
    const float ry = hot_.ry * h_;
    const float cx = hot_.cx * w_ + hot_.drift_x * t;
    const float cy = hot_.cy * h_ + hot_.drift_y * t;
    for (int y = 0; y < h_; ++y) {
      uint8_t* row = out->y.row(y);
      for (int x = 0; x < w_; ++x) {
        const float base =
            12.f + 10.f * smooth_.sample(x * 0.02f, y * 0.02f + 0.1f * t);
        // Elliptical falloff of the detailed region.
        const float dx = (x - cx) / rx;
        const float dy = (y - cy) / ry;
        const float mask = std::max(0.f, 1.0f - (dx * dx + dy * dy));
        float v = base;
        int g = grain(uint32_t(x), uint32_t(y), uint32_t(frame_index), 2);
        // Sparse star field outside the nebula keeps the dark tiles from
        // being empty (real renderings are dithered everywhere).
        {
          uint32_t h = uint32_t(x) * 0x45D9F3Bu ^ uint32_t(y) * 0x119DE1F3u;
          h ^= h >> 16;
          if ((h & 0x3FF) == 7) v += 60.f + float(h >> 24) * 0.3f;
        }
        if (mask > 0.f) {
          const float d = detail_.sample((x * zoom + ox) * 0.9f,
                                         (y * zoom + oy) * 0.9f);
          v += mask * (95.f + 110.f * d);
          g = grain(uint32_t(x), uint32_t(y), uint32_t(frame_index), 6);
        }
        row[x] = to_pixel(v + float(g));
      }
    }
    fill_chroma(&out->cb, chroma_, ox * 0.3f, oy * 0.3f, 0.2f, 30.f);
    fill_chroma(&out->cr, chroma_, oy * 0.3f + 31.f, ox * 0.3f, 0.2f, 30.f);
  }

 private:
  int w_, h_;
  HotRegion hot_;
  NoiseTexture detail_, smooth_, chroma_;
};

}  // namespace

HotRegion HotRegion::seeded(uint64_t seed) {
  SplitMix64 rng(seed ^ 0x0810'0907'0605'0403ull);
  HotRegion h;
  h.cx = 0.20f + 0.60f * float(rng.next_double());
  h.cy = 0.20f + 0.60f * float(rng.next_double());
  h.rx = 0.22f + 0.14f * float(rng.next_double());
  h.ry = 0.26f + 0.16f * float(rng.next_double());
  h.drift_x = float(rng.next_double() - 0.5) * 3.0f;
  h.drift_y = float(rng.next_double() - 0.5) * 2.0f;
  return h;
}

std::unique_ptr<SceneGenerator> make_scene(SceneKind kind, int width,
                                           int height, uint64_t seed) {
  PDW_CHECK_EQ(width % 16, 0);
  PDW_CHECK_EQ(height % 16, 0);
  switch (kind) {
    case SceneKind::kPanningTexture:
      return std::make_unique<PanningTextureScene>(width, height, seed);
    case SceneKind::kMovingObjects:
      return std::make_unique<MovingObjectsScene>(width, height, seed);
    case SceneKind::kAnimation:
      return std::make_unique<AnimationScene>(width, height, seed);
    case SceneKind::kLocalizedDetail:
      return std::make_unique<LocalizedDetailScene>(width, height, seed,
                                                    HotRegion{});
  }
  PDW_CHECK(false);
  __builtin_unreachable();
}

std::unique_ptr<SceneGenerator> make_localized_scene(int width, int height,
                                                     uint64_t seed,
                                                     const HotRegion& hot) {
  PDW_CHECK_EQ(width % 16, 0);
  PDW_CHECK_EQ(height % 16, 0);
  return std::make_unique<LocalizedDetailScene>(width, height, seed, hot);
}

}  // namespace pdw::video
