// The 16-stream test suite mirroring the paper's Table 4, with synthetic
// content standing in for the original clips (see DESIGN.md §2).
//
// Streams are generated on demand by encoding a procedural scene at the
// catalogued resolution and bit rate, and cached on disk keyed by the spec
// and frame count so benchmark binaries share the work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "video/generator.h"

namespace pdw::video {

struct StreamSpec {
  int id = 0;               // 1..16, matching the paper's Table 4 rows
  std::string name;         // paper's stream name
  int width = 0;            // coded (macroblock-aligned) dimensions
  int height = 0;
  double fps = 30.0;        // nominal display rate (for bit-rate math)
  double target_bpp = 0.3;  // paper: ~0.3 bpp except the DVD clips
  SceneKind scene = SceneKind::kPanningTexture;
  int tiles_m = 1;          // Table 6 screen configuration (m x n)
  int tiles_n = 1;
  std::string note;         // what the original content was

  // Skewed-family extensions (zero/false for the Table 4 streams): an
  // explicit scene seed and a custom hot-region layout for
  // kLocalizedDetail scenes.
  uint64_t scene_seed = 0;  // 0: derived from id, as always
  bool custom_hot = false;  // render with `hot` instead of the classic layout
  HotRegion hot;

  int pixels() const { return width * height; }
};

// All 16 streams in Table 4 order.
const std::vector<StreamSpec>& stream_catalog();
const StreamSpec& stream_by_id(int id);

// Orion-style skewed-load family (beyond Table 4): localized-detail scenes
// whose hot-region position, size and drift are seeded parameters, built to
// concentrate coded bits in a minority of tiles of an m x n wall. Every
// `variant` is a different deterministic layout; the same variant always
// regenerates the same stream.
StreamSpec skewed_stream_spec(int variant, int width, int height);

// Number of frames used by default for generated streams. Defaults to 48
// (the paper trims each sequence to 240); override with PDW_FRAMES.
int default_frame_count();

// Generate (or load from cache) the elementary stream for `spec`.
// The cache lives in $PDW_CACHE_DIR (default: <tmp>/pdw_stream_cache).
std::vector<uint8_t> load_stream(const StreamSpec& spec, int frames);

// Average coded frame size in bytes / bits-per-pixel of a generated stream.
struct StreamMetrics {
  double avg_frame_bytes = 0;
  double bpp = 0;
  double bit_rate_mbps = 0;  // at the nominal fps
};
StreamMetrics measure_stream(const StreamSpec& spec,
                             const std::vector<uint8_t>& es, int frames);

}  // namespace pdw::video
