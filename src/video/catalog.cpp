#include "video/catalog.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "enc/encoder.h"

namespace pdw::video {

namespace fs = std::filesystem;

const std::vector<StreamSpec>& stream_catalog() {
  using SK = SceneKind;
  static const std::vector<StreamSpec> kCatalog = {
      // DVD-class clips (the paper's three movie trailers; higher bpp).
      {1, "spr", 720, 480, 24, 0.55, SK::kMovingObjects, 1, 1,
       "Saving Private Ryan clip -> moving-objects scene"},
      {2, "matrix", 720, 480, 24, 0.60, SK::kPanningTexture, 1, 1,
       "The Matrix clip -> panning texture"},
      {3, "t2", 720, 480, 24, 0.50, SK::kMovingObjects, 1, 1,
       "Terminator 2 clip -> moving-objects scene"},
      // XGA animation.
      {4, "anim1", 1024, 768, 30, 0.30, SK::kAnimation, 2, 1,
       "short animation (A. Finkelstein) -> flat-shaded shapes"},
      // HDTV fish-tank captures (Intel MRL).
      {5, "fish1", 1280, 720, 30, 0.30, SK::kMovingObjects, 2, 1,
       "HDTV fish tank shot 1"},
      {6, "fish2", 1280, 720, 30, 0.30, SK::kMovingObjects, 2, 1,
       "HDTV fish tank shot 2"},
      {7, "fish3", 1280, 720, 30, 0.30, SK::kMovingObjects, 2, 1,
       "HDTV fish tank shot 3"},
      {8, "fish4", 1280, 720, 30, 0.30, SK::kMovingObjects, 2, 1,
       "HDTV fish tank shot 4"},
      // Broadcast HDTV captures.
      {9, "fox", 1280, 720, 60, 0.30, SK::kPanningTexture, 2, 1,
       "FOX5 720p broadcast"},
      {10, "nbc", 1920, 1088, 30, 0.30, SK::kMovingObjects, 2, 2,
       "NBC4 1080i broadcast (progressive 1920x1088 here)"},
      {11, "cbs", 1920, 1088, 30, 0.30, SK::kPanningTexture, 2, 2,
       "CBS3 1080i broadcast (progressive 1920x1088 here)"},
      // Quadrupled-resolution animation.
      {12, "anim2", 2048, 1536, 30, 0.30, SK::kAnimation, 3, 2,
       "anim1 rendered at 4x resolution"},
      // Orion Nebula flyby visualizations (UCSD) — localized detail.
      {13, "orion1", 2048, 1536, 30, 0.30, SK::kLocalizedDetail, 3, 2,
       "Orion flyby, lowest resolution"},
      {14, "orion2", 2560, 1920, 30, 0.30, SK::kLocalizedDetail, 3, 3,
       "Orion flyby"},
      {15, "orion3", 3200, 2304, 30, 0.30, SK::kLocalizedDetail, 4, 3,
       "Orion flyby"},
      {16, "orion4", 3840, 2912, 30, 0.30, SK::kLocalizedDetail, 4, 4,
       "Orion flyby, near-IMAX (~100 Mbps at 30 fps)"},
  };
  return kCatalog;
}

const StreamSpec& stream_by_id(int id) {
  const auto& cat = stream_catalog();
  PDW_CHECK_GE(id, 1);
  PDW_CHECK_LE(id, int(cat.size()));
  return cat[size_t(id - 1)];
}

StreamSpec skewed_stream_spec(int variant, int width, int height) {
  PDW_CHECK_GE(variant, 0);
  StreamSpec spec;
  spec.id = 100 + variant;
  spec.name = "skew" + std::to_string(variant);
  spec.width = width;
  spec.height = height;
  spec.fps = 30;
  spec.target_bpp = 0.30;
  spec.scene = SceneKind::kLocalizedDetail;
  spec.note = "seeded hot-region orion-style skew";
  spec.scene_seed = 0x5EED'0000'0000'0000ull + uint64_t(variant);
  spec.custom_hot = true;
  spec.hot = HotRegion::seeded(spec.scene_seed);
  return spec;
}

int default_frame_count() {
  if (const char* env = std::getenv("PDW_FRAMES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 48;
}

namespace {

fs::path cache_dir() {
  if (const char* env = std::getenv("PDW_CACHE_DIR")) return fs::path(env);
  return fs::temp_directory_path() / "pdw_stream_cache";
}

int frame_rate_code_for(double fps) {
  if (fps >= 59.0) return 8;   // 60
  if (fps >= 29.0) return 5;   // 30
  if (fps >= 24.5) return 3;   // 25
  return 2;                    // 24
}

}  // namespace

std::vector<uint8_t> load_stream(const StreamSpec& spec, int frames) {
  const fs::path dir = cache_dir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  char key[160];
  if (spec.scene_seed || spec.custom_hot) {
    std::snprintf(key, sizeof(key), "s%02d_%s_%dx%d_f%d_h%016llx_v6.m2v",
                  spec.id, spec.name.c_str(), spec.width, spec.height, frames,
                  static_cast<unsigned long long>(spec.scene_seed));
  } else {
    std::snprintf(key, sizeof(key), "s%02d_%s_%dx%d_f%d_v6.m2v", spec.id,
                  spec.name.c_str(), spec.width, spec.height, frames);
  }
  const fs::path file = dir / key;

  if (fs::exists(file, ec)) {
    std::ifstream in(file, std::ios::binary);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    if (!bytes.empty()) return bytes;
  }

  enc::EncoderConfig cfg;
  cfg.width = spec.width;
  cfg.height = spec.height;
  cfg.target_bpp = spec.target_bpp;
  cfg.frame_rate_code = frame_rate_code_for(spec.fps);
  cfg.gop_size = 12;
  cfg.b_frames = 2;
  const uint64_t seed =
      spec.scene_seed ? spec.scene_seed : 0xC0FFEE00u + uint64_t(spec.id);
  const auto scene =
      spec.custom_hot
          ? make_localized_scene(spec.width, spec.height, seed, spec.hot)
          : make_scene(spec.scene, spec.width, spec.height, seed);
  enc::Mpeg2Encoder encoder(cfg);
  std::vector<uint8_t> es = encoder.encode(
      frames,
      [&](int index, mpeg2::Frame* out) { scene->render(index, out); });

  std::ofstream out(file, std::ios::binary);
  out.write(reinterpret_cast<const char*>(es.data()),
            std::streamsize(es.size()));
  return es;
}

StreamMetrics measure_stream(const StreamSpec& spec,
                             const std::vector<uint8_t>& es, int frames) {
  StreamMetrics m;
  m.avg_frame_bytes = double(es.size()) / std::max(1, frames);
  m.bpp = m.avg_frame_bytes * 8.0 / spec.pixels();
  m.bit_rate_mbps = m.avg_frame_bytes * 8.0 * spec.fps / 1e6;
  return m;
}

}  // namespace pdw::video
