// Procedural video generators.
//
// The paper's test material (movie clips, HDTV camera captures, Orion Nebula
// visualization flybys) is unavailable, so each stream class is replaced by a
// deterministic synthetic scene with the same *coding-relevant* properties:
// smooth global motion (camera pans), independently moving objects (fish
// tank / film), hard-edged flat regions (animation), and spatially localized
// high-frequency detail (nebula flybys, which drive the per-tile load
// imbalance discussed in the paper's §5.5).
#pragma once

#include <memory>

#include "common/stats.h"
#include "mpeg2/frame.h"

namespace pdw::video {

enum class SceneKind {
  kPanningTexture,   // smooth noise texture under global pan/zoom
  kMovingObjects,    // background + independently moving blobs ("fish tank")
  kAnimation,        // flat-shaded shapes with hard edges
  kLocalizedDetail,  // high-frequency detail concentrated in one region
};

const char* scene_kind_name(SceneKind kind);

class SceneGenerator {
 public:
  virtual ~SceneGenerator() = default;

  // Render the frame at `frame_index` (deterministic: same index => same
  // pixels, so streams regenerate identically across runs and machines).
  virtual void render(int frame_index, mpeg2::Frame* out) const = 0;
};

// Factory. `width`/`height` must be macroblock aligned; `seed` controls all
// randomness in the scene layout.
std::unique_ptr<SceneGenerator> make_scene(SceneKind kind, int width,
                                           int height, uint64_t seed);

}  // namespace pdw::video
