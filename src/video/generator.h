// Procedural video generators.
//
// The paper's test material (movie clips, HDTV camera captures, Orion Nebula
// visualization flybys) is unavailable, so each stream class is replaced by a
// deterministic synthetic scene with the same *coding-relevant* properties:
// smooth global motion (camera pans), independently moving objects (fish
// tank / film), hard-edged flat regions (animation), and spatially localized
// high-frequency detail (nebula flybys, which drive the per-tile load
// imbalance discussed in the paper's §5.5).
#pragma once

#include <memory>

#include "common/stats.h"
#include "mpeg2/frame.h"

namespace pdw::video {

enum class SceneKind {
  kPanningTexture,   // smooth noise texture under global pan/zoom
  kMovingObjects,    // background + independently moving blobs ("fish tank")
  kAnimation,        // flat-shaded shapes with hard edges
  kLocalizedDetail,  // high-frequency detail concentrated in one region
};

const char* scene_kind_name(SceneKind kind);

// Placement of the detailed ("nebula") region of a localized-detail scene,
// as fractions of the frame plus a per-frame pixel drift. The default is the
// classic Orion-stand-in layout: a large ellipse anchored near the top-left.
// The drift lets the hot region wander across tile boundaries over a clip,
// which is what makes a static partition progressively worse.
struct HotRegion {
  float cx = 0.32f;      // ellipse center, fraction of width
  float cy = 0.36f;      // ellipse center, fraction of height
  float rx = 0.40f;      // radius, fraction of width
  float ry = 0.60f;      // radius, fraction of height
  float drift_x = 0.f;   // center drift, pixels per frame
  float drift_y = 0.f;

  // Deterministic seeded layout: center anywhere in the middle of the frame,
  // compact radii, and a slow drift — every seed is a different skew.
  static HotRegion seeded(uint64_t seed);
};

class SceneGenerator {
 public:
  virtual ~SceneGenerator() = default;

  // Render the frame at `frame_index` (deterministic: same index => same
  // pixels, so streams regenerate identically across runs and machines).
  virtual void render(int frame_index, mpeg2::Frame* out) const = 0;
};

// Factory. `width`/`height` must be macroblock aligned; `seed` controls all
// randomness in the scene layout.
std::unique_ptr<SceneGenerator> make_scene(SceneKind kind, int width,
                                           int height, uint64_t seed);

// A localized-detail scene with an explicit hot-region layout (make_scene
// uses the default HotRegion{}).
std::unique_ptr<SceneGenerator> make_localized_scene(int width, int height,
                                                     uint64_t seed,
                                                     const HotRegion& hot);

}  // namespace pdw::video
