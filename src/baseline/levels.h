// Baseline parallelization strategies (paper §3, Table 1).
//
// The paper motivates the hybrid hierarchy by comparing parallelization
// granularities: sequence, GOP, picture, slice, and macroblock level. This
// module turns that qualitative table into measured/modeled numbers for a
// concrete stream and wall:
//   * splitting cost      — measured (start-code scan vs full VLC parse);
//   * inter-decoder comm  — measured from real motion vectors (remote
//     reference traffic), or the reference-picture shipping a picture-level
//     decoder needs;
//   * pixel redistribution— computed from the display geometry (decoded
//     pixels that end up on another node's projector);
//   * frame rate          — modeled with the same link model as the cluster
//     simulator, using measured decode/scan/split costs.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/cluster_sim.h"
#include "wall/geometry.h"

namespace pdw::baseline {

enum class ParallelLevel {
  kSequence,
  kGop,
  kPicture,
  kSlice,
  kMacroblock,       // one-level 1-(m,n)
  kHierarchical,     // the paper's 1-k-(m,n)
};

const char* level_name(ParallelLevel level);

struct LevelReport {
  ParallelLevel level = ParallelLevel::kSequence;
  double split_s_per_picture = 0;        // work at the splitting node
  double interdecoder_bytes = 0;         // per picture, across all decoders
  double redistribution_bytes = 0;       // per picture, across all decoders
  double fps = 0;                        // modeled throughput
  int k = 1;                             // splitters used (hierarchical only)
  std::string notes;
};

// Measured per-stream facts shared by all level models.
struct StreamMeasurements {
  int pictures = 0;
  int gops = 0;
  int ip_pictures = 0;            // I + P count (the reference chain)
  double t_scan = 0;              // start-code scan per picture
  double t_full_decode = 0;       // serial decode per picture
  double t_mb_split = 0;          // macroblock split per picture (m,n geo)
  double t_tile_decode = 0;       // slowest tile decode per picture
  double avg_picture_bytes = 0;
  double frame_pixel_bytes = 0;   // decoded size: 1.5 * W * H
  double mb_exchange_bytes = 0;   // per picture, (m,n) tiling
  double band_exchange_bytes = 0; // per picture, (1,T) horizontal bands
};

StreamMeasurements measure_stream(std::span<const uint8_t> es,
                                  const wall::TileGeometry& geo);

// Evaluate every level of Table 1 (plus the paper's hierarchical system) for
// one stream on the given wall and link.
std::vector<LevelReport> compare_levels(std::span<const uint8_t> es,
                                        const wall::TileGeometry& geo,
                                        const sim::LinkModel& link);

}  // namespace pdw::baseline
