#include "baseline/levels.h"

#include <algorithm>
#include <limits>

#include "common/timing.h"
#include "core/config.h"
#include "core/lockstep.h"
#include "mpeg2/decoder.h"

namespace pdw::baseline {

using sim::LinkModel;

const char* level_name(ParallelLevel level) {
  switch (level) {
    case ParallelLevel::kSequence: return "sequence";
    case ParallelLevel::kGop: return "GOP";
    case ParallelLevel::kPicture: return "picture";
    case ParallelLevel::kSlice: return "slice";
    case ParallelLevel::kMacroblock: return "macroblock 1-(m,n)";
    case ParallelLevel::kHierarchical: return "hierarchical 1-k-(m,n)";
  }
  return "?";
}

StreamMeasurements measure_stream(std::span<const uint8_t> es,
                                  const wall::TileGeometry& geo) {
  StreamMeasurements m;

  // Start-code scan cost (what sequence/GOP/picture/slice splitting needs).
  {
    WallTimer timer;
    const auto spans = scan_pictures(es);
    m.pictures = int(spans.size());
    m.t_scan = timer.seconds() / std::max(1, m.pictures);
    for (const auto& s : spans) {
      m.gops += s.has_gop_header ? 1 : 0;
      m.avg_picture_bytes += double(s.end - s.begin);
    }
    m.avg_picture_bytes /= std::max(1, m.pictures);
  }

  // Serial decode cost and reference-chain length. Two passes, keeping the
  // faster: on a loaded machine a single pass can be preempted mid-picture
  // and report a wildly inflated cost.
  {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      mpeg2::Mpeg2Decoder dec;
      int ip = 0;
      WallTimer timer;
      dec.decode(es,
                 [&](const mpeg2::Frame&, const mpeg2::DecodedPictureInfo& i) {
                   if (i.type != mpeg2::PicType::B) ++ip;
                 });
      best = std::min(best, timer.seconds());
      m.ip_pictures = ip;
    }
    m.t_full_decode = best / std::max(1, m.pictures);
  }
  m.frame_pixel_bytes = 1.5 * double(geo.mb_width() * 16) *
                        double(geo.mb_height() * 16);

  // Macroblock-level split cost + exchange traffic on the target (m,n) wall.
  // Timings are best-of-two passes (same rationale as above); the exchange
  // byte counts are deterministic, so one pass records them.
  {
    double best_split = std::numeric_limits<double>::infinity();
    double best_tile = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      core::LockstepPipeline pipeline(geo, 1, es);
      double split = 0, tile_max = 0, exchange = 0;
      int n = 0;
      pipeline.run(nullptr, [&](const core::PictureTrace& tr) {
        split += tr.split_s;
        double mx = 0;
        for (double d : tr.decode_s) mx = std::max(mx, d);
        tile_max += mx;
        for (uint64_t b : tr.exchange_bytes) exchange += double(b);
        ++n;
      });
      best_split = std::min(best_split, split / std::max(1, n));
      best_tile = std::min(best_tile, tile_max / std::max(1, n));
      m.mb_exchange_bytes = exchange / std::max(1, n);
    }
    m.t_mb_split = best_split;
    m.t_tile_decode = best_tile;
  }

  // Band (slice-level) remote-reference traffic: same analysis with the
  // picture cut into T horizontal bands (adjacent slices grouped together).
  if (geo.tiles() > 1 && geo.mb_height() >= geo.tiles()) {
    wall::TileGeometry bands(geo.mb_width() * 16, geo.mb_height() * 16, 1,
                             geo.tiles(), 0);
    core::LockstepPipeline pipeline(bands, 1, es);
    double exchange = 0;
    int n = 0;
    pipeline.run(nullptr, [&](const core::PictureTrace& tr) {
      for (uint64_t b : tr.exchange_bytes) exchange += double(b);
      ++n;
    });
    m.band_exchange_bytes = exchange / std::max(1, n);
  }
  return m;
}

std::vector<LevelReport> compare_levels(std::span<const uint8_t> es,
                                        const wall::TileGeometry& geo,
                                        const LinkModel& link) {
  const StreamMeasurements m = measure_stream(es, geo);
  const int T = geo.tiles();
  const int mcols = geo.m();
  std::vector<LevelReport> out;

  const double redist_full =
      m.frame_pixel_bytes * double(T - 1) / double(std::max(1, T));
  const double redist_band =
      m.frame_pixel_bytes * double(mcols - 1) / double(std::max(1, mcols));

  // --- Sequence level --------------------------------------------------------
  {
    LevelReport r;
    r.level = ParallelLevel::kSequence;
    r.split_s_per_picture = m.t_scan;
    r.interdecoder_bytes = 0;
    r.redistribution_bytes = redist_full;
    // One sequence in the stream: a single decoder does everything, then
    // ships (T-1)/T of each frame to the wall.
    r.fps = 1.0 / (m.t_full_decode + link.transfer_s(size_t(redist_full)));
    r.notes = "single sequence: no parallelism, full redistribution";
    out.push_back(r);
  }

  // --- GOP level --------------------------------------------------------------
  {
    LevelReport r;
    r.level = ParallelLevel::kGop;
    r.split_s_per_picture = m.t_scan;
    r.interdecoder_bytes = 0;  // closed GOPs are self-contained
    r.redistribution_bytes = redist_full;
    // T decoders on T different GOPs; per-picture node cost is a full decode
    // plus shipping the frame; throughput scales with min(T, #GOPs).
    const double per_pic =
        m.t_full_decode + link.transfer_s(size_t(redist_full));
    const double parallelism = std::min<double>(T, std::max(1, m.gops));
    r.fps = std::min(parallelism / per_pic, 1.0 / m.t_scan);
    r.notes = "latency ~ GOP length; needs closed GOPs";
    out.push_back(r);
  }

  // --- Picture level -----------------------------------------------------------
  {
    LevelReport r;
    r.level = ParallelLevel::kPicture;
    r.split_s_per_picture = m.t_scan;
    // Decoding a P/B picture on another node means fetching whole reference
    // pictures: on average (I+P chain) each picture pulls ~1 reference, B
    // pictures pull 2. Approximate with decoded-frame bytes per picture.
    const double refs_per_picture =
        m.pictures > 0
            ? (double(m.ip_pictures - 1) + 2.0 * (m.pictures - m.ip_pictures)) /
                  m.pictures
            : 0.0;
    r.interdecoder_bytes = refs_per_picture * m.frame_pixel_bytes;
    r.redistribution_bytes = redist_full;
    // The I/P reference chain serializes: consecutive references cannot be
    // decoded concurrently, so at best (pictures / IP-pictures) pictures
    // progress per (decode + ref transfer) step.
    const double chain_ratio =
        m.ip_pictures > 0 ? double(m.pictures) / m.ip_pictures : 1.0;
    const double step =
        m.t_full_decode + link.transfer_s(size_t(m.frame_pixel_bytes));
    const double chain_fps = chain_ratio / step;
    const double node_fps =
        double(T) / (m.t_full_decode +
                     link.transfer_s(size_t(r.interdecoder_bytes / T +
                                            redist_full)));
    r.fps = std::min({chain_fps, node_fps, 1.0 / m.t_scan});
    r.notes = "reference chain serializes I/P decode";
    out.push_back(r);
  }

  // --- Slice level --------------------------------------------------------------
  {
    LevelReport r;
    r.level = ParallelLevel::kSlice;
    r.split_s_per_picture = m.t_scan;  // slices have start codes
    r.interdecoder_bytes = m.band_exchange_bytes;
    r.redistribution_bytes = redist_band;
    // All T decoders work on one picture (a horizontal band each); each then
    // redistributes (m-1)/m of its band across the tile columns.
    const double per_node =
        m.t_full_decode / T +
        link.transfer_s(size_t((m.band_exchange_bytes + redist_band) / T));
    r.fps = std::min(1.0 / per_node, 1.0 / m.t_scan);
    r.notes = "bands of grouped slices; moderate comm";
    out.push_back(r);
  }

  // --- Macroblock level (one-level 1-(m,n)) -------------------------------------
  {
    LevelReport r;
    r.level = ParallelLevel::kMacroblock;
    r.split_s_per_picture = m.t_mb_split;
    r.interdecoder_bytes = m.mb_exchange_bytes;
    r.redistribution_bytes = 0;  // macroblocks are decoded where displayed
    r.fps = std::min(1.0 / m.t_mb_split,
                     1.0 / (m.t_tile_decode +
                            link.transfer_s(size_t(
                                m.mb_exchange_bytes / std::max(1, T)))));
    r.notes = "split requires full VLC parse";
    out.push_back(r);
  }

  // --- Hierarchical (paper) ------------------------------------------------------
  {
    LevelReport r;
    r.level = ParallelLevel::kHierarchical;
    r.k = core::choose_k(m.t_mb_split, m.t_tile_decode);
    r.split_s_per_picture = m.t_mb_split;  // per second-level splitter
    r.interdecoder_bytes = m.mb_exchange_bytes;
    r.redistribution_bytes = 0;
    r.fps = core::predicted_fps(r.k, m.t_mb_split, m.t_tile_decode);
    r.notes = "k chosen as ceil(t_s/t_d)";
    out.push_back(r);
  }

  return out;
}

}  // namespace pdw::baseline
