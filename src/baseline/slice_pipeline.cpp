#include "baseline/slice_pipeline.h"

#include <map>

#include "wall/assembler.h"

namespace pdw::baseline {

using core::TileDisplayInfo;
using mpeg2::TileFrame;

SlicePipeline::SlicePipeline(const wall::TileGeometry& display,
                             std::span<const uint8_t> es)
    : display_(display),
      bands_(display.mb_width() * 16, display.mb_height() * 16, 1,
             display.tiles(), 0),
      es_(es) {
  PDW_CHECK_GE(display.mb_height(), display.tiles())
      << "need at least one macroblock row per band";
}

SlicePipelineStats SlicePipeline::run(const TileDisplayFn& on_display) {
  SlicePipelineStats stats;
  const int T = display_.tiles();

  // Redistribution geometry is static: band b keeps its intersection with
  // display tile b and ships the rest of its band; likewise it receives the
  // remainder of tile b from the other bands. Count shipped bytes once.
  double shipped_pixels = 0;
  double kept_pixels = 0;
  for (int b = 0; b < T; ++b) {
    const wall::MbRect& band = bands_.tile_mbs(b);
    const wall::PixelRect& own = display_.tile_pixels(b);
    const int band_y0 = band.y0 * 16;
    const int band_y1 = std::min(band.y1 * 16, display_.height());
    const double band_pixels =
        double(display_.width()) * double(band_y1 - band_y0);
    const int ky0 = std::max(band_y0, own.y0);
    const int ky1 = std::min(band_y1, std::min(own.y1, display_.height()));
    const int kx1 = std::min(own.x1, display_.width());
    const double kept =
        ky1 > ky0 ? double(kx1 - own.x0) * double(ky1 - ky0) : 0.0;
    shipped_pixels += band_pixels - kept;
    kept_pixels += kept;
  }
  stats.redistribution_bytes_per_picture = shipped_pixels * 1.5;
  stats.kept_fraction =
      kept_pixels / (double(display_.width()) * display_.height());

  // Decode bands with the existing machinery (one "tile" per band). The
  // reference exchange between bands is the slice-level inter-decoder
  // communication of Table 1.
  core::LockstepPipeline pipeline(bands_, 1, es_);

  // Reassemble full frames from the bands, then cut display tiles — the
  // redistribution performed in data (byte counts accounted above).
  struct Pending {
    std::unique_ptr<wall::WallAssembler> assembler;
    int bands = 0;
  };
  std::map<int, Pending> pending;

  double exchange = 0;
  int pictures = 0;
  pipeline.run(
      [&](int band, const TileFrame& tf, const TileDisplayInfo& info) {
        Pending& p = pending[info.display_index];
        if (!p.assembler)
          p.assembler = std::make_unique<wall::WallAssembler>(bands_);
        p.assembler->add_tile(band, tf);
        if (++p.bands != T) return;
        p.assembler->check_coverage();
        const mpeg2::Frame& full = p.assembler->frame();
        // Emit each display tile as a TileFrame cut from the full picture.
        for (int t = 0; t < T; ++t) {
          const wall::MbRect& rect = display_.tile_mbs(t);
          TileFrame out(rect.x0, rect.y0, rect.x1, rect.y1);
          for (int y = out.py0(); y < out.py1(); ++y)
            std::memcpy(out.pixel(0, out.px0(), y), full.y.row(y) + out.px0(),
                        size_t(out.px1() - out.px0()));
          for (int y = out.py0() / 2; y < out.py1() / 2; ++y) {
            std::memcpy(out.pixel(1, out.px0() / 2, y),
                        full.cb.row(y) + out.px0() / 2,
                        size_t((out.px1() - out.px0()) / 2));
            std::memcpy(out.pixel(2, out.px0() / 2, y),
                        full.cr.row(y) + out.px0() / 2,
                        size_t((out.px1() - out.px0()) / 2));
          }
          if (on_display) on_display(t, out, info);
        }
        pending.erase(info.display_index);
      },
      [&](const core::PictureTrace& tr) {
        for (uint64_t b : tr.exchange_bytes) exchange += double(b);
        ++pictures;
      });

  PDW_CHECK(pending.empty()) << "incomplete band frames at end of stream";
  stats.pictures = pictures;
  if (pictures > 0)
    stats.reference_exchange_bytes_per_picture = exchange / pictures;
  return stats;
}

}  // namespace pdw::baseline
