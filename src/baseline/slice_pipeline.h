// Executable slice-level parallel decoder (the paper's §3 "slice level"
// baseline, built for real rather than modeled).
//
// T = m*n decoders each decode one horizontal *band* of grouped slices
// (bands have start codes, so splitting is cheap and needs no SPH), then
// redistribute decoded pixels: each band decoder drives one projector tile,
// so it keeps the intersection of its band with its own tile and ships the
// rest — the "(m-1)/m of a slice" (and more, vertically) the paper charges
// this design with. Remote-reference traffic between bands uses the same
// MEI machinery as the macroblock system.
//
// Output is bit-exact with the serial decoder; what differs from the
// hierarchical system is the communication profile, which this class
// reports so Table 1 can be measured instead of estimated.
#pragma once

#include <functional>

#include "core/lockstep.h"
#include "wall/geometry.h"

namespace pdw::baseline {

struct SlicePipelineStats {
  int pictures = 0;
  // Decoded-pixel bytes shipped between nodes for display, per picture
  // (the redistribution column of Table 1).
  double redistribution_bytes_per_picture = 0;
  // Remote-reference (halo) bytes exchanged between band decoders.
  double reference_exchange_bytes_per_picture = 0;
  // For comparison: the fraction of decoded pixels each node keeps.
  double kept_fraction = 0;
};

class SlicePipeline {
 public:
  // `display` is the projector wall; bands are the horizontal decode
  // partition with one band per tile. Requires mb_height >= tiles.
  SlicePipeline(const wall::TileGeometry& display,
                std::span<const uint8_t> es);

  using TileDisplayFn = std::function<void(
      int tile, const mpeg2::TileFrame&, const core::TileDisplayInfo&)>;

  // Decode the stream; emits one display-tile frame per tile per picture
  // (in display order) and returns the communication statistics.
  SlicePipelineStats run(const TileDisplayFn& on_display);

  const wall::TileGeometry& band_geometry() const { return bands_; }

 private:
  const wall::TileGeometry& display_;
  wall::TileGeometry bands_;
  std::span<const uint8_t> es_;
};

}  // namespace pdw::baseline
