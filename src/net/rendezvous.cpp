#include "net/rendezvous.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.h"

namespace pdw::net {

namespace {

// Datagram layout (little-endian):
//   JOIN:    magic, kind=1, node u32, ip u32, port u32
//   WAIT:    magic, kind=2
//   MAP:     magic, kind=3, count u32, count x (ip u32, port u32)
//   MAP_ACK: magic, kind=4, node u32
constexpr uint32_t kRvMagic = 0x50445752u;  // 'PDWR'
constexpr uint32_t kJoin = 1, kWait = 2, kMap = 3, kMapAck = 4;

void put_u32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint32_t get_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

sockaddr_in to_sockaddr(Endpoint ep) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.ip);
  sa.sin_port = htons(ep.port);
  return sa;
}

int open_udp(uint16_t port, Endpoint* local) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  PDW_CHECK_GE(fd, 0);
  sockaddr_in sa = to_sockaddr(Endpoint{kLoopbackIp, port});
  PDW_CHECK_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  socklen_t len = sizeof(sa);
  PDW_CHECK_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len), 0);
  *local = Endpoint{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
  return fd;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wait up to timeout_s for one datagram. Returns its length, or -1.
ssize_t recv_one(int fd, uint8_t* buf, size_t cap, double timeout_s,
                 sockaddr_in* from) {
  pollfd pfd{fd, POLLIN, 0};
  if (::poll(&pfd, 1, std::max(0, int(timeout_s * 1000))) <= 0) return -1;
  socklen_t slen = sizeof(*from);
  return ::recvfrom(fd, buf, cap, 0, reinterpret_cast<sockaddr*>(from), &slen);
}

}  // namespace

RendezvousStatus rendezvous_join(Endpoint server, int self, Endpoint local,
                                 int nodes, std::vector<Endpoint>* out,
                                 RendezvousConfig cfg) {
  Endpoint bound;
  const int fd = open_udp(0, &bound);
  sockaddr_in srv = to_sockaddr(server);

  uint8_t join[20];
  put_u32(join + 0, kRvMagic);
  put_u32(join + 4, kJoin);
  put_u32(join + 8, uint32_t(self));
  put_u32(join + 12, local.ip);
  put_u32(join + 16, local.port);

  const double deadline = now_s() + cfg.timeout_s;
  double backoff = cfg.backoff_initial_s;
  bool have_map = false;

  while (now_s() < deadline) {
    if (!have_map)
      ::sendto(fd, join, sizeof(join), 0, reinterpret_cast<sockaddr*>(&srv),
               sizeof(srv));
    // After the map arrived, linger briefly re-acking resends (our first
    // MAP_ACK may have been lost); a quiet window means the listener heard.
    const double wait = have_map
                            ? 0.12
                            : std::min(backoff, deadline - now_s());
    backoff = std::min(backoff * 2, cfg.backoff_max_s);

    uint8_t buf[16 + 8 * 512];
    sockaddr_in from{};
    const ssize_t n = recv_one(fd, buf, sizeof(buf), wait, &from);
    if (n < 0) {
      if (have_map) break;  // quiet after MAP: done
      continue;
    }
    if (n < 8 || get_u32(buf + 0) != kRvMagic) continue;
    const uint32_t kind = get_u32(buf + 4);
    if (kind == kWait) continue;
    if (kind != kMap || n < 12) continue;
    const uint32_t count = get_u32(buf + 8);
    if (int(count) != nodes || size_t(n) < 12 + size_t(count) * 8) continue;
    out->resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      (*out)[i].ip = get_u32(buf + 12 + i * 8);
      (*out)[i].port = uint16_t(get_u32(buf + 16 + i * 8));
    }
    uint8_t ack[12];
    put_u32(ack + 0, kRvMagic);
    put_u32(ack + 4, kMapAck);
    put_u32(ack + 8, uint32_t(self));
    ::sendto(fd, ack, sizeof(ack), 0, reinterpret_cast<sockaddr*>(&srv),
             sizeof(srv));
    have_map = true;
  }
  ::close(fd);
  return have_map ? RendezvousStatus::kOk : RendezvousStatus::kTimeout;
}

RendezvousServer::RendezvousServer(int nodes, uint16_t port)
    : nodes_(nodes),
      map_(size_t(nodes)),
      join_source_(size_t(nodes)),
      joined_(size_t(nodes), false),
      acked_(size_t(nodes), false) {
  fd_ = open_udp(port, &local_);
}

RendezvousServer::~RendezvousServer() {
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) ::close(fd_);
}

RendezvousStatus RendezvousServer::serve(RendezvousConfig cfg) {
  const double deadline = now_s() + cfg.timeout_s;
  double next_push = 0;  // MAP resend pacing once everyone joined

  while (now_s() < deadline) {
    const bool all_joined =
        std::all_of(joined_.begin(), joined_.end(), [](bool b) { return b; });
    if (all_joined &&
        std::all_of(acked_.begin(), acked_.end(), [](bool b) { return b; }))
      return RendezvousStatus::kOk;

    uint8_t buf[64];
    sockaddr_in from{};
    const ssize_t n = recv_one(fd_, buf, sizeof(buf), 0.05, &from);
    const double t = now_s();

    if (n >= 8 && get_u32(buf + 0) == kRvMagic) {
      const uint32_t kind = get_u32(buf + 4);
      if (kind == kJoin && n >= 20) {
        const uint32_t node = get_u32(buf + 8);
        if (node < uint32_t(nodes_)) {
          map_[node] = Endpoint{get_u32(buf + 12), uint16_t(get_u32(buf + 16))};
          join_source_[node] = Endpoint{ntohl(from.sin_addr.s_addr),
                                        ntohs(from.sin_port)};
          joined_[node] = true;
          if (!all_joined) {
            // Not complete yet (this JOIN may have completed it; the next
            // loop iteration pushes the map). Tell the joiner to hold on.
            uint8_t wait[8];
            put_u32(wait + 0, kRvMagic);
            put_u32(wait + 4, kWait);
            ::sendto(fd_, wait, sizeof(wait), 0,
                     reinterpret_cast<sockaddr*>(&from), sizeof(from));
          }
        }
      } else if (kind == kMapAck && n >= 12) {
        const uint32_t node = get_u32(buf + 8);
        if (node < uint32_t(nodes_)) acked_[node] = true;
      }
    }

    if (std::all_of(joined_.begin(), joined_.end(),
                    [](bool b) { return b; }) &&
        t >= next_push) {
      if (!transformed_) {
        handout_ = transform_ ? transform_(map_) : map_;
        PDW_CHECK_EQ(int(handout_.size()), nodes_);
        transformed_ = true;
      }
      // Push MAP to every unacked joiner (initial send and loss recovery).
      uint8_t map[12 + 8 * 512];
      put_u32(map + 0, kRvMagic);
      put_u32(map + 4, kMap);
      put_u32(map + 8, uint32_t(nodes_));
      for (int i = 0; i < nodes_; ++i) {
        put_u32(map + 12 + size_t(i) * 8, handout_[size_t(i)].ip);
        put_u32(map + 16 + size_t(i) * 8, handout_[size_t(i)].port);
      }
      const size_t map_len = 12 + size_t(nodes_) * 8;
      for (int i = 0; i < nodes_; ++i) {
        if (acked_[size_t(i)]) continue;
        // MAP goes to the joiner's rendezvous socket (the JOIN source), not
        // its fabric endpoint — they are different sockets.
        sockaddr_in to = to_sockaddr(join_source_[size_t(i)]);
        ::sendto(fd_, map, map_len, 0, reinterpret_cast<sockaddr*>(&to),
                 sizeof(to));
      }
      next_push = t + 0.05;
    }
  }
  return RendezvousStatus::kTimeout;
}

void RendezvousServer::serve_async(RendezvousConfig cfg) {
  thread_ = std::thread([this, cfg] { async_result_ = serve(cfg); });
}

RendezvousStatus RendezvousServer::result() {
  if (thread_.joinable()) thread_.join();
  return async_result_;
}

}  // namespace pdw::net
