// Real-socket fabric backend: the same FabricBackend surface as the
// in-process Fabric, over nonblocking UDP datagrams (ROADMAP item 1, the
// paper's one-OS-process-per-node deployment over Myrinet/GM).
//
// One SocketFabric instance per node (in one process per node, or one per
// node thread when a test hosts the whole wall in-process). Differences from
// the in-process backend, all invisible above ReliableEndpoint:
//
//  * Framing: each Message becomes one or more datagrams carrying the full
//    header (src/type/seq/aux/stream/bulk/tseq/crc) plus fragmentation
//    fields and a header CRC-32. Payloads larger than one datagram are
//    split and reassembled keyed on (src, msg_id); a datagram with a corrupt
//    header is dropped (the payload CRC stays end-to-end in
//    ReliableEndpoint, exactly as over the in-process fabric).
//  * Credits: a sender cannot see a remote receiver's posted buffers, so a
//    bulk message arriving with no credit posted is a *receiver-side drop*
//    (not acked — the sender retransmits until a buffer is posted). send()
//    therefore never returns kNoCredit; the per-link credit accounting is
//    preserved at the consumer end.
//  * Peer death: a dead process answers with ICMP port-unreachable, which
//    IP_RECVERR surfaces on the sender's error queue. take_peer_errors()
//    reports the mapped node ids so the root's heartbeat monitor can treat
//    a killed process exactly like a killed thread.
//  * Local view: counters()/traffic_matrix() report this node's own sends
//    and receives (message-level wire bytes, comparable with the in-process
//    fabric's accounting); datagram-level counts go to obs
//    (socket_datagrams_tx/rx, socket_rx_drops, socket_peer_unreachable,
//    labeled {node = self}).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "net/fabric.h"
#include "obs/metrics.h"

namespace pdw::net {

// A UDP endpoint in host byte order (ip = 0x7f000001 for loopback).
struct Endpoint {
  uint32_t ip = 0;
  uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

inline constexpr uint32_t kLoopbackIp = 0x7f000001u;

// Bounds on SocketFabricConfig::fragment_bytes. The upper bound keeps
// header + payload comfortably under the 64 KiB UDP datagram limit; the
// lower bound keeps fragment counts (u16 on the wire) sane for the largest
// coded pictures.
inline constexpr int kMinFragmentBytes = 4096;
inline constexpr int kMaxFragmentBytes = 56 * 1024;

struct SocketFabricConfig {
  // Socket buffer depth requested via SO_RCVBUF/SO_SNDBUF. Loopback bursts
  // (a whole picture fans out as dozens of 56 KiB fragments) overflow the
  // kernel default and look like network loss; 4 MiB absorbs them.
  int socket_buffer_bytes = 4 << 20;
  // Fragment payload bytes per datagram, clamped to
  // [kMinFragmentBytes, kMaxFragmentBytes]. Receivers reassemble from the
  // per-datagram framing fields, so nodes with different settings still
  // interoperate; smaller fragments model smaller-MTU fabrics.
  int fragment_bytes = kMaxFragmentBytes;
  // Registry for the datagram-level counters (nullptr: process-global).
  obs::MetricsRegistry* metrics = nullptr;
};

class SocketFabric final : public FabricBackend {
 public:
  // Binds a nonblocking UDP socket for `self` on 127.0.0.1:<ephemeral>;
  // local_endpoint() reports the learned port for rendezvous registration.
  SocketFabric(int self, int nodes, SocketFabricConfig cfg = {});
  ~SocketFabric() override;

  SocketFabric(const SocketFabric&) = delete;
  SocketFabric& operator=(const SocketFabric&) = delete;

  int self() const { return self_; }
  Endpoint local_endpoint() const { return local_; }
  // The clamped per-datagram fragment payload size in effect.
  size_t fragment_bytes() const { return frag_bytes_; }

  // Install the node -> endpoint map (from rendezvous, or an impairment
  // proxy's front addresses). Must be called before send().
  void set_peers(std::vector<Endpoint> peers);

  // FabricBackend. post_receive()/receive_for() only operate on this
  // instance's own node; send() sources from it.
  int nodes() const override { return nodes_; }
  void post_receive(int node) override;
  SendStatus send(int src, int dst, Message msg) override;
  RecvStatus receive_for(int node, double timeout_s, Message* out) override;

  // Local fencing: kill(self) makes this node dead (receives report kDead);
  // kill(peer) drops traffic to/from that peer at this node.
  void kill(int node) override;
  bool is_dead(int node) const override;

  NodeCounters counters(int node) const override;
  TrafficMatrix traffic_matrix() const override;
  bool quiescent() const override;
  void shutdown() override;
  std::vector<int> take_peer_errors() override;

  // Datagrams dropped at this receiver because no buffer was posted — the
  // socket analog of the in-process backend's kNoCredit (flow control as a
  // receiver-side drop, recovered by retransmission).
  uint64_t credit_drops() const {
    return credit_drops_.load(std::memory_order_relaxed);
  }

 private:
  struct Reassembly {
    mem::Bytes body;
    std::vector<bool> have;  // per-fragment arrival mask
    size_t missing = 0;      // fragments still outstanding
    Message header;          // fields from the first fragment seen
    double first_seen = 0;   // for stale-entry eviction
  };

  double now() const;
  // Nonblocking drain of every datagram currently queued on the socket.
  void drain_socket();
  // Parse one datagram; queue the (possibly reassembled) message.
  void ingest(const uint8_t* data, size_t len);
  void finish_message(Message msg);
  // Pull ICMP errors off the error queue into peer_errors_.
  void drain_errqueue();
  void note_peer_error(uint32_t ip, uint16_t port);

  const int self_;
  const int nodes_;
  SocketFabricConfig cfg_;
  size_t frag_bytes_ = size_t(kMaxFragmentBytes);
  int fd_ = -1;
  Endpoint local_;
  std::chrono::steady_clock::time_point epoch_;

  std::vector<Endpoint> peers_;

  // Receive-side state: only the owning node's thread touches these.
  std::deque<Message> ready_;
  std::map<uint64_t, Reassembly> partial_;  // (src << 32 | msg_id)
  uint32_t next_msg_id_ = 1;
  int credits_ = 0;

  // Cross-thread state: a coordinator may kill()/shutdown()/read counters
  // while the node thread pumps.
  std::atomic<bool> shutdown_{false};
  std::vector<std::atomic<bool>> fenced_;
  std::atomic<uint64_t> credit_drops_{0};
  // Mirrors of ready_/partial_ sizes so quiescent() is safe to call from a
  // coordinating thread while the owner thread pumps.
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> partial_count_{0};

  mutable std::mutex traffic_mu_;
  TrafficMatrix traffic_;
  std::vector<NodeCounters> counters_;

  std::mutex peer_err_mu_;
  std::vector<int> peer_errors_;

  obs::Counter* m_dgram_tx_ = nullptr;
  obs::Counter* m_dgram_rx_ = nullptr;
  obs::Counter* m_rx_drops_ = nullptr;
  obs::Counter* m_peer_unreachable_ = nullptr;
};

}  // namespace pdw::net
